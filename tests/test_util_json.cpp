// util::parse_json is the read side of every JSON artifact this project
// writes (BENCH_*.json, manifests, telemetry NDJSON); these tests pin the
// accepted grammar and the loud-failure behavior on malformed input.
#include <gtest/gtest.h>

#include <string>

#include "util/error.hpp"
#include "util/json.hpp"

namespace ftc::util {
namespace {

TEST(UtilJson, ParsesScalars) {
    EXPECT_TRUE(parse_json("null").is_null());
    EXPECT_TRUE(parse_json("true").as_bool());
    EXPECT_FALSE(parse_json("false").as_bool());
    EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
    EXPECT_DOUBLE_EQ(parse_json("-3.5e2").as_number(), -350.0);
    EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(UtilJson, ParsesNestedDocument) {
    const json_value doc = parse_json(
        R"({"bench":"table1","runs":[{"label":"dns/100","f_score":0.91,"failed":false}],)"
        R"("empty_obj":{},"empty_arr":[]})");
    EXPECT_EQ(doc.at("bench").as_string(), "table1");
    const auto& runs = doc.at("runs").as_array();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].at("label").as_string(), "dns/100");
    EXPECT_DOUBLE_EQ(runs[0].at("f_score").as_number(), 0.91);
    EXPECT_FALSE(runs[0].at("failed").as_bool());
    EXPECT_TRUE(doc.at("empty_obj").as_object().empty());
    EXPECT_TRUE(doc.at("empty_arr").as_array().empty());
}

TEST(UtilJson, StringEscapes) {
    EXPECT_EQ(parse_json(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
    // BMP \u escape encodes as UTF-8.
    EXPECT_EQ(parse_json(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
    EXPECT_EQ(parse_json(R"("\u20ac")").as_string(), "\xe2\x82\xac");
}

TEST(UtilJson, WhitespaceTolerant) {
    const json_value doc = parse_json("  {\n \"a\" :\t[ 1 , 2 ]\r\n}  ");
    EXPECT_EQ(doc.at("a").as_array().size(), 2u);
}

TEST(UtilJson, LookupHelpers) {
    const json_value doc = parse_json(R"({"n":2,"s":"x","b":true})");
    EXPECT_DOUBLE_EQ(doc.number_or("n", -1), 2.0);
    EXPECT_DOUBLE_EQ(doc.number_or("missing", -1), -1.0);
    EXPECT_EQ(doc.string_or("s", "d"), "x");
    EXPECT_EQ(doc.string_or("missing", "d"), "d");
    EXPECT_TRUE(doc.bool_or("b", false));
    EXPECT_TRUE(doc.bool_or("missing", true));
    EXPECT_EQ(doc.find("missing"), nullptr);
    EXPECT_NE(doc.find("n"), nullptr);
    // A scalar has no members.
    EXPECT_EQ(parse_json("1").find("x"), nullptr);
}

TEST(UtilJson, KindMismatchThrows) {
    const json_value doc = parse_json(R"({"n":2})");
    EXPECT_THROW(doc.at("n").as_string(), ftc::error);
    EXPECT_THROW(doc.at("missing"), ftc::error);
    EXPECT_THROW(doc.as_array(), ftc::error);
}

TEST(UtilJson, MalformedInputThrowsWithOffset) {
    const char* bad[] = {
        "",            // empty
        "{",           // unterminated object
        "[1,]",        // trailing comma is not accepted
        "{\"a\" 1}",   // missing colon
        "\"abc",       // unterminated string
        "tru",         // bad literal
        "01x",         // trailing garbage after number
        "1 2",         // trailing content
        "\"\\q\"",     // unknown escape
        "\"\\u12g4\"", // bad hex digit
        "\"\x01\"",    // raw control character
    };
    for (const char* text : bad) {
        EXPECT_THROW(parse_json(text), ftc::error) << "input: " << text;
    }
    try {
        parse_json("[1, x]");
        FAIL() << "expected ftc::error";
    } catch (const ftc::error& e) {
        EXPECT_NE(std::string{e.what()}.find("byte"), std::string::npos);
    }
}

TEST(UtilJson, DepthBounded) {
    std::string deep;
    for (int i = 0; i < 200; ++i) {
        deep += "[";
    }
    EXPECT_THROW(parse_json(deep), ftc::error);
}

TEST(UtilJson, DuplicateKeysLastWins) {
    // The writer never emits duplicates; the parser keeps the last, which
    // is the common lenient choice.
    EXPECT_DOUBLE_EQ(parse_json(R"({"a":1,"a":2})").at("a").as_number(), 2.0);
}

}  // namespace
}  // namespace ftc::util
