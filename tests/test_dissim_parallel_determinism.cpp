// Determinism proof for the parallel dissimilarity engine: at any thread
// count the matrix is bitwise identical to the serial path, k-NN curves and
// the auto-configured epsilon match exactly, and the full analyze()
// pipeline emits identical cluster labels — across thread counts and
// across repeated runs. Exercised on traces of three different protocol
// generators so the guarantee does not hinge on one value distribution.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "cluster/autoconf.hpp"
#include "core/pipeline.hpp"
#include "dissim/matrix.hpp"
#include "protocols/registry.hpp"
#include "segmentation/nemesys.hpp"
#include "segmentation/segment.hpp"

namespace ftc {
namespace {

constexpr std::uint64_t kSeed = 20220627;
const std::vector<std::string> kProtocols{"DNS", "NTP", "NBNS"};
const std::vector<std::size_t> kThreadCounts{2, 4, 8};

/// Unique >= 2-byte segment values of a ground-truth-segmented trace.
std::vector<byte_vector> unique_values(const std::string& protocol, std::size_t messages) {
    const protocols::trace trace = protocols::generate_trace(protocol, messages, kSeed);
    const auto bytes = segmentation::message_bytes(trace);
    return dissim::condense(bytes, segmentation::segments_from_annotations(trace)).values;
}

TEST(ParallelDeterminism, MatrixBitwiseIdenticalAcrossThreadCounts) {
    for (const std::string& protocol : kProtocols) {
        const std::vector<byte_vector> values = unique_values(protocol, 90);
        ASSERT_GE(values.size(), 10u) << protocol;
        const dissim::dissimilarity_matrix serial(values, {}, 1);
        for (std::size_t threads : kThreadCounts) {
            const dissim::dissimilarity_matrix parallel(values, {}, threads);
            ASSERT_EQ(parallel.size(), serial.size());
            const auto a = serial.data();
            const auto b = parallel.data();
            ASSERT_EQ(a.size(), b.size());
            EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size_bytes()), 0)
                << protocol << " matrix differs at " << threads << " threads";
        }
    }
}

TEST(ParallelDeterminism, KthNnBitwiseIdenticalAcrossThreadCounts) {
    const std::vector<byte_vector> values = unique_values("DNS", 90);
    const dissim::dissimilarity_matrix matrix(values, {}, 1);
    for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
        const std::vector<double> serial = matrix.kth_nn(k, 1);
        for (std::size_t threads : kThreadCounts) {
            const std::vector<double> parallel = matrix.kth_nn(k, threads);
            ASSERT_EQ(parallel.size(), serial.size());
            EXPECT_EQ(std::memcmp(parallel.data(), serial.data(),
                                  serial.size() * sizeof(double)),
                      0)
                << "k=" << k << " threads=" << threads;
        }
    }
}

TEST(ParallelDeterminism, AutoConfigurationSelectsSameEpsilon) {
    for (const std::string& protocol : kProtocols) {
        const std::vector<byte_vector> values = unique_values(protocol, 90);
        cluster::autoconf_options options;
        options.threads = 1;
        const cluster::autoconf_result serial =
            cluster::auto_configure(dissim::dissimilarity_matrix(values, {}, 1), options);
        for (std::size_t threads : kThreadCounts) {
            options.threads = threads;
            const cluster::autoconf_result parallel = cluster::auto_configure(
                dissim::dissimilarity_matrix(values, {}, threads), options);
            EXPECT_EQ(parallel.epsilon, serial.epsilon) << protocol << "@" << threads;
            EXPECT_EQ(parallel.selected_k, serial.selected_k) << protocol << "@" << threads;
            EXPECT_EQ(parallel.min_samples, serial.min_samples) << protocol << "@" << threads;
            EXPECT_EQ(parallel.knees, serial.knees) << protocol << "@" << threads;
        }
    }
}

TEST(ParallelDeterminism, FullPipelineLabelsIdenticalAcrossThreadCounts) {
    const segmentation::nemesys_segmenter segmenter;
    for (const std::string& protocol : kProtocols) {
        const protocols::trace trace = protocols::generate_trace(protocol, 60, kSeed);
        const auto messages = segmentation::message_bytes(trace);

        core::pipeline_options options;
        options.threads = 1;
        const core::pipeline_result serial = core::analyze(messages, segmenter, options);

        for (std::size_t threads : kThreadCounts) {
            options.threads = threads;
            const core::pipeline_result parallel =
                core::analyze(messages, segmenter, options);
            EXPECT_EQ(parallel.final_labels.labels, serial.final_labels.labels)
                << protocol << ": cluster labels differ at " << threads << " threads";
            EXPECT_EQ(parallel.final_labels.cluster_count, serial.final_labels.cluster_count)
                << protocol << "@" << threads;
            EXPECT_EQ(parallel.clustering.config.epsilon, serial.clustering.config.epsilon)
                << protocol << "@" << threads;
        }
    }
}

TEST(ParallelDeterminism, RepeatedParallelRunsAreReproducible) {
    const segmentation::nemesys_segmenter segmenter;
    const protocols::trace trace = protocols::generate_trace("DNS", 60, kSeed);
    const auto messages = segmentation::message_bytes(trace);
    core::pipeline_options options;
    options.threads = 8;
    const core::pipeline_result first = core::analyze(messages, segmenter, options);
    for (int run = 0; run < 3; ++run) {
        const core::pipeline_result again = core::analyze(messages, segmenter, options);
        EXPECT_EQ(again.final_labels.labels, first.final_labels.labels) << "run " << run;
        EXPECT_EQ(again.clustering.config.epsilon, first.clustering.config.epsilon)
            << "run " << run;
    }
}

}  // namespace
}  // namespace ftc
