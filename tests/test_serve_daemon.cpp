// The daemon's HTTP surface end to end over real sockets: job
// submission, status and report retrieval, health and metrics endpoints,
// shedding with Retry-After, and typed HTTP errors for bad requests —
// none of which may take the daemon down.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>

#include "obs/obs.hpp"
#include "serve/daemon.hpp"
#include "serve_test_util.hpp"

namespace ftc::serve {
namespace {

namespace fs = std::filesystem;

#if defined(__unix__) || defined(__APPLE__)

using serve_test::http_exchange;
using serve_test::http_get;
using serve_test::http_post;
using serve_test::response_body;
using serve_test::response_status;

struct daemon_fixture {
    explicit daemon_fixture(const char* name, serve_options options = make_options())
        : journal((fs::remove_all(fs::temp_directory_path() / name),
                   fs::temp_directory_path() / name)),
          sessions(journal, options) {
        sessions.start();
        daemon_options dopt;
        dopt.limits.io_deadline_ms = 2000;
        server.emplace(sessions, nullptr, dopt);
    }

    static serve_options make_options() {
        serve_options options;
        options.sessions = 2;
        options.pipeline_threads = 1;
        return options;
    }

    std::uint16_t port() const { return server->port(); }

    spool journal;
    session_manager sessions;
    std::optional<daemon> server;
};

/// Poll GET /jobs/<id> until the state settles (done/failed) or timeout.
std::string wait_for_job(std::uint16_t port, std::uint64_t id, int patience_ms = 30000) {
    const std::string target = "/jobs/" + std::to_string(id);
    for (int waited = 0; waited < patience_ms; waited += 50) {
        const std::string response = http_get(port, target);
        const std::string body = response_body(response);
        if (body.find("\"state\":\"done\"") != std::string::npos ||
            body.find("\"state\":\"failed\"") != std::string::npos) {
            return body;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return {};
}

TEST(ServeDaemon, SubmitPollFetchReportRoundTrip) {
    daemon_fixture fx("ftc_serve_daemon_roundtrip");
    const byte_vector raw = serve_test::make_capture_bytes("NTP", 40, 5);

    const std::string accepted = http_post(fx.port(), "/jobs", raw);
    EXPECT_EQ(response_status(accepted), 202);
    EXPECT_NE(response_body(accepted).find("\"job\":1"), std::string::npos);

    // Not finished yet (or already done — either way the status endpoint
    // answers 200 with a state).
    EXPECT_EQ(response_status(http_get(fx.port(), "/jobs/1")), 200);

    const std::string body = wait_for_job(fx.port(), 1);
    EXPECT_NE(body.find("\"state\":\"done\""), std::string::npos) << body;

    const std::string report = http_get(fx.port(), "/jobs/1/report");
    EXPECT_EQ(response_status(report), 200);
    EXPECT_NE(response_body(report).find("cluster  kind"), std::string::npos)
        << response_body(report).substr(0, 200);
}

TEST(ServeDaemon, ReportBeforeDoneIsConflictUnknownIsNotFound) {
    daemon_fixture fx("ftc_serve_daemon_conflict");
    EXPECT_EQ(response_status(http_get(fx.port(), "/jobs/99")), 404);
    EXPECT_EQ(response_status(http_get(fx.port(), "/jobs/99/report")), 404);

    const byte_vector garbage(32, std::uint8_t{0x00});
    EXPECT_EQ(response_status(http_post(fx.port(), "/jobs", garbage)), 202);
    const std::string body = wait_for_job(fx.port(), 1);
    EXPECT_NE(body.find("\"state\":\"failed\""), std::string::npos) << body;
    // A failed job's report does not exist: 409 carries the status JSON.
    const std::string report = http_get(fx.port(), "/jobs/1/report");
    EXPECT_EQ(response_status(report), 409);
    EXPECT_NE(response_body(report).find("\"error\""), std::string::npos);
}

TEST(ServeDaemon, ShedsWithRetryAfterWhenNotAccepting) {
    const fs::path dir = fs::temp_directory_path() / "ftc_serve_daemon_shed";
    fs::remove_all(dir);
    spool journal(dir);
    session_manager sessions(journal, daemon_fixture::make_options());
    // Deliberately never started: admission refuses everything, which is
    // exactly the daemon's answer shape under overload.
    daemon server(sessions, nullptr, daemon_options{});
    const byte_vector raw = serve_test::make_capture_bytes("NTP", 10, 1);
    const std::string response = http_post(server.port(), "/jobs", raw);
    EXPECT_EQ(response_status(response), 503);
    EXPECT_NE(response.find("Retry-After: 1\r\n"), std::string::npos) << response;
    EXPECT_NE(response_body(response).find("\"error\""), std::string::npos);
}

TEST(ServeDaemon, HealthzReportsQueueAndPressure) {
    daemon_fixture fx("ftc_serve_daemon_healthz");
    const std::string response = http_get(fx.port(), "/healthz");
    EXPECT_EQ(response_status(response), 200);
    const std::string body = response_body(response);
    EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(body.find("\"queue\":"), std::string::npos);
    EXPECT_NE(body.find("\"pressure\":"), std::string::npos);
}

TEST(ServeDaemon, MetricsServedWhenRecorderInstalled) {
    const fs::path dir = fs::temp_directory_path() / "ftc_serve_daemon_metrics";
    fs::remove_all(dir);
    obs::scoped_recorder recorder;
    recorder.rec().metrics().add("serve.jobs_submitted_total", 3.0);
    spool journal(dir);
    session_manager sessions(journal, daemon_fixture::make_options());
    sessions.start();
    daemon server(sessions, &recorder.rec(), daemon_options{});
    const std::string response = http_get(server.port(), "/metrics");
    EXPECT_EQ(response_status(response), 200);
    EXPECT_NE(response.find("ftc_serve_jobs_submitted_total 3"), std::string::npos)
        << response.substr(0, 400);
}

TEST(ServeDaemon, MetricsWithoutRecorderIs404) {
    daemon_fixture fx("ftc_serve_daemon_nometrics");
    EXPECT_EQ(response_status(http_get(fx.port(), "/metrics")), 404);
}

TEST(ServeDaemon, MalformedAndOversizedRequestsAreTypedErrors) {
    daemon_fixture fx("ftc_serve_daemon_badreq");
    EXPECT_EQ(response_status(http_exchange(fx.port(), "NONSENSE\r\n\r\n")), 400);
    EXPECT_EQ(response_status(http_get(fx.port(), "/no/such/endpoint")), 404);
    EXPECT_EQ(response_status(http_exchange(
                  fx.port(), "DELETE /jobs/1 HTTP/1.0\r\n\r\n")),
              405);
    // A body announcing more than the cap is refused up front.
    const std::string huge = "POST /jobs HTTP/1.0\r\nContent-Length: 999999999999\r\n\r\n";
    EXPECT_EQ(response_status(http_exchange(fx.port(), huge)), 413);
    // And the daemon is still alive and serving.
    EXPECT_EQ(response_status(http_get(fx.port(), "/healthz")), 200);
}

TEST(ServeDaemon, StopIsIdempotentAndReleasesThePort) {
    const fs::path dir = fs::temp_directory_path() / "ftc_serve_daemon_stop";
    fs::remove_all(dir);
    spool journal(dir);
    session_manager sessions(journal, daemon_fixture::make_options());
    sessions.start();
    auto server = std::make_optional<daemon>(sessions, nullptr, daemon_options{});
    const std::uint16_t port = server->port();
    server->stop();
    server->stop();
    server.reset();  // destructor stops a third time
    daemon_options again_opt;
    again_opt.port = port;
    daemon again(sessions, nullptr, again_opt);
    EXPECT_EQ(again.port(), port);
}

#endif  // unix

}  // namespace
}  // namespace ftc::serve
