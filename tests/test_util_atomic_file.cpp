// Unit tests for the atomic whole-file writer (util/atomic_file.hpp).
#include "util/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "util/check.hpp"

namespace ftc::util {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

class AtomicFile : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() / "ftc_atomic_file_test";
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    fs::path dir_;
};

TEST_F(AtomicFile, WritesNewFile) {
    const fs::path target = dir_ / "out.txt";
    atomic_write_file(target, std::string_view{"hello"});
    EXPECT_EQ(slurp(target), "hello");
}

TEST_F(AtomicFile, ReplacesExistingFileCompletely) {
    const fs::path target = dir_ / "out.txt";
    atomic_write_file(target, std::string_view{"a much longer first version"});
    atomic_write_file(target, std::string_view{"short"});
    EXPECT_EQ(slurp(target), "short");
}

TEST_F(AtomicFile, WritesBinaryBytesExactly) {
    const fs::path target = dir_ / "out.bin";
    byte_vector bytes;
    for (int i = 0; i < 256; ++i) {
        bytes.push_back(static_cast<std::uint8_t>(i));
    }
    atomic_write_file(target, byte_view{bytes});
    const std::string back = slurp(target);
    ASSERT_EQ(back.size(), 256u);
    for (int i = 0; i < 256; ++i) {
        EXPECT_EQ(static_cast<std::uint8_t>(back[static_cast<std::size_t>(i)]), i);
    }
}

TEST_F(AtomicFile, LeavesNoTemporaryBehind) {
    const fs::path target = dir_ / "out.txt";
    atomic_write_file(target, std::string_view{"payload"});
    std::size_t entries = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
        (void)entry;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
}

TEST_F(AtomicFile, UnwritableTargetThrowsAndPreservesOriginal) {
    const fs::path target = dir_ / "no_such_subdir" / "out.txt";
    // Parent directory does not exist: the temp file cannot even be created.
    EXPECT_THROW(atomic_write_file(target, std::string_view{"x"}), ftc::error);
    EXPECT_FALSE(fs::exists(target));
}

TEST_F(AtomicFile, EmptyPayloadMakesEmptyFile) {
    const fs::path target = dir_ / "empty.txt";
    atomic_write_file(target, std::string_view{""});
    EXPECT_TRUE(fs::exists(target));
    EXPECT_EQ(fs::file_size(target), 0u);
}

}  // namespace
}  // namespace ftc::util
