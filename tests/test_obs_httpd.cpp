// The --metrics-listen scrape endpoint: address parsing, an end-to-end
// HTTP GET over a real socket against an ephemeral port, and clean
// idempotent shutdown. The registry is poked directly (recorder exists
// even under FTC_OBS_DISABLE), so the suite runs on every build.
#include <gtest/gtest.h>

#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "obs/httpd.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace ftc::obs {
namespace {

TEST(ObsHttpd, ParseListenAddress) {
    const listen_address a = parse_listen_address("127.0.0.1:9464");
    EXPECT_EQ(a.host, "127.0.0.1");
    EXPECT_EQ(a.port, 9464);
    const listen_address local = parse_listen_address("localhost:0");
    EXPECT_EQ(local.host, "127.0.0.1");
    EXPECT_EQ(local.port, 0);

    EXPECT_THROW(parse_listen_address("no-port"), ftc::error);
    EXPECT_THROW(parse_listen_address(":123"), ftc::error);
    EXPECT_THROW(parse_listen_address("host:"), ftc::error);
    EXPECT_THROW(parse_listen_address("h:65536"), ftc::error);
    EXPECT_THROW(parse_listen_address("h:abc"), ftc::error);
}

#if defined(__unix__) || defined(__APPLE__)

/// One blocking GET / against 127.0.0.1:port; returns the raw response.
std::string http_get(std::uint16_t port) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
    const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
    EXPECT_EQ(send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = recv(fd, buf, sizeof buf, 0)) > 0) {
        response.append(buf, static_cast<std::size_t>(n));
    }
    close(fd);
    return response;
}

TEST(ObsHttpd, ServesPrometheusText) {
    scoped_recorder recorder;
    recorder.rec().metrics().add("pcap.datagrams_total", 42.0);
    metrics_server server(&recorder.rec(), parse_listen_address("127.0.0.1:0"));
    ASSERT_GT(server.port(), 0);  // ephemeral port resolved

    const std::string response = http_get(server.port());
    EXPECT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u) << response;
    EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
    EXPECT_NE(response.find("# TYPE ftc_pcap_datagrams_total counter"),
              std::string::npos);
    EXPECT_NE(response.find("# HELP ftc_pcap_datagrams_total"), std::string::npos);
    EXPECT_NE(response.find("ftc_pcap_datagrams_total 42"), std::string::npos);
}

TEST(ObsHttpd, ServesLiveUpdatesAcrossRequests) {
    scoped_recorder recorder;
    metrics_server server(&recorder.rec(), parse_listen_address("localhost:0"));
    recorder.rec().metrics().add("cluster.dbscan_runs_total", 1.0);
    const std::string first = http_get(server.port());
    EXPECT_NE(first.find("ftc_cluster_dbscan_runs_total 1"), std::string::npos);
    recorder.rec().metrics().add("cluster.dbscan_runs_total", 2.0);
    const std::string second = http_get(server.port());
    EXPECT_NE(second.find("ftc_cluster_dbscan_runs_total 3"), std::string::npos);
    EXPECT_GE(server.requests_served(), 2u);
}

TEST(ObsHttpd, StopIsIdempotentAndReleasesPort) {
    scoped_recorder recorder;
    metrics_server server(&recorder.rec(), parse_listen_address("127.0.0.1:0"));
    const std::uint16_t port = server.port();
    server.stop();
    server.stop();  // and the destructor makes a third call
    // The port is free again: a new server can bind it right away.
    metrics_server again(&recorder.rec(),
                         listen_address{"127.0.0.1", port});
    EXPECT_EQ(again.port(), port);
}

TEST(ObsHttpd, BindFailureThrows) {
    scoped_recorder recorder;
    metrics_server holder(&recorder.rec(), parse_listen_address("127.0.0.1:0"));
    // SO_REUSEADDR does not allow two live listeners on one port.
    EXPECT_THROW(metrics_server(&recorder.rec(),
                                listen_address{"127.0.0.1", holder.port()}),
                 ftc::error);
    EXPECT_THROW(metrics_server(&recorder.rec(), listen_address{"999.1.1.1", 0}),
                 ftc::error);
}

#endif  // unix

}  // namespace
}  // namespace ftc::obs
