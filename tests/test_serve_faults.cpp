// Deterministic socket/spool fault sweep (testing/sock_fault.hpp): with
// the Nth server-side I/O operation faulted — short transfer, spurious
// EINTR, connection reset, slow-loris stall, spool corruption — every
// ordinal must end in a completed, reference-identical session or a
// typed per-session error. The daemon itself must survive every one (CI
// runs this binary under ASan/LSan and TSan). The test client speaks raw
// sockets, so only the daemon's util::net operations tick the plan.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "serve/daemon.hpp"
#include "serve_test_util.hpp"
#include "testing/sock_fault.hpp"
#include "util/net.hpp"

namespace ftc::serve {
namespace {

namespace fs = std::filesystem;

#if defined(__unix__) || defined(__APPLE__)

using serve_test::http_get;
using serve_test::http_post;
using serve_test::response_body;
using serve_test::response_status;
using util::net::io_fault;

std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

serve_options sweep_options() {
    serve_options options;
    options.sessions = 1;
    options.pipeline_threads = 1;
    return options;
}

daemon_options sweep_listener() {
    daemon_options dopt;
    // Short deadlines keep stalled-fault rounds quick; plenty for loopback.
    dopt.limits.io_deadline_ms = 400;
    dopt.io_threads = 1;
    return dopt;
}

/// One full daemon lifetime with the Nth server I/O operation faulted.
/// Returns true when the submission was acknowledged (202).
bool faulted_exchange(const fs::path& dir, const byte_vector& capture,
                      std::uint64_t nth, io_fault kind, const std::string& reference) {
    fs::remove_all(dir);
    spool journal(dir);
    session_manager sessions(journal, sweep_options());
    sessions.start();
    daemon server(sessions, nullptr, sweep_listener());

    std::uint64_t job = 0;
    {
        const testing::sock_fault_injector inject =
            testing::sock_fault_injector::fail_nth(nth, kind);
        const std::string response = http_post(server.port(), "/jobs", capture);
        // Reset/stall faults may kill this exchange before the ack — that
        // is the client's problem (it saw the failure); the daemon must
        // just keep serving. A faulted-but-completed exchange must have
        // produced a normal ack.
        if (response_status(response) == 202) {
            job = 1;
        } else {
            EXPECT_TRUE(response.empty() || response_status(response) >= 400)
                << "kind " << static_cast<int>(kind) << " nth " << nth << ": "
                << response;
        }
    }

    sessions.drain();
    // Faults disarmed: the daemon must still answer.
    EXPECT_EQ(response_status(http_get(server.port(), "/healthz")), 200)
        << "daemon dead after kind " << static_cast<int>(kind) << " nth " << nth;
    if (job == 0) {
        return false;
    }
    const std::optional<job_status> status = sessions.status(job);
    EXPECT_TRUE(status.has_value());
    if (status->state == job_state::done) {
        // Completed despite the fault: the retry loops must have healed the
        // transfer completely — the report is the reference, byte for byte.
        EXPECT_EQ(slurp(journal.report_file(job)), reference)
            << "kind " << static_cast<int>(kind) << " nth " << nth;
    } else {
        // The one sanctioned alternative: a typed, journaled, per-job error.
        EXPECT_EQ(status->state, job_state::failed);
        EXPECT_FALSE(status->error.empty());
    }
    return true;
}

TEST(ServeFaults, EverySocketOrdinalHealsOrFailsTyped) {
    const byte_vector capture = serve_test::make_capture_bytes("NTP", 24, 5);
    const fs::path dir = fs::temp_directory_path() / "ftc_serve_faults_sweep";

    // Reference bytes from a fault-free daemon exchange.
    std::string reference;
    {
        fs::remove_all(dir);
        spool journal(dir);
        session_manager sessions(journal, sweep_options());
        sessions.start();
        daemon server(sessions, nullptr, sweep_listener());
        ASSERT_EQ(response_status(http_post(server.port(), "/jobs", capture)), 202);
        sessions.drain();
        ASSERT_EQ(sessions.status(1)->state, job_state::done);
        reference = slurp(journal.report_file(1));
        ASSERT_FALSE(reference.empty());
    }

    // A clean exchange performs a handful of socket operations (accept +
    // chunked head/body reads + the response write); sweep past that so
    // beyond-the-exchange ordinals prove the disarmed path too.
    constexpr std::uint64_t kSweep = 12;
    for (const io_fault kind : {io_fault::short_io, io_fault::fake_eintr,
                                io_fault::reset, io_fault::stall}) {
        std::size_t acknowledged = 0;
        for (std::uint64_t nth = 1; nth <= kSweep; ++nth) {
            if (faulted_exchange(dir, capture, nth, kind, reference)) {
                ++acknowledged;
            }
        }
        // Every kind must have let at least one submission through — the
        // benign kinds (short, eintr) all of them.
        EXPECT_GT(acknowledged, 0u) << "kind " << static_cast<int>(kind);
        if (kind == io_fault::short_io || kind == io_fault::fake_eintr) {
            EXPECT_EQ(acknowledged, kSweep) << "kind " << static_cast<int>(kind);
        }
    }
    fs::remove_all(dir);
}

TEST(ServeFaults, SpoolCorruptionIsCaughtByDigestAndFailsTyped) {
    const byte_vector capture = serve_test::make_capture_bytes("DNS", 30, 9);
    const fs::path dir = fs::temp_directory_path() / "ftc_serve_faults_spool";
    fs::remove_all(dir);
    spool journal(dir);
    session_manager sessions(journal, sweep_options());
    sessions.start();
    daemon server(sessions, nullptr, sweep_listener());

    // Ordinal 1: the first spool write is corrupted — the session must
    // catch it via the payload digest and fail typed, not analyze rot.
    {
        const testing::sock_fault_injector inject =
            testing::sock_fault_injector::fail_nth(1, io_fault::corrupt_spool);
        ASSERT_EQ(response_status(http_post(server.port(), "/jobs", capture)), 202);
    }
    sessions.drain();
    const std::optional<job_status> corrupted = sessions.status(1);
    ASSERT_TRUE(corrupted.has_value());
    EXPECT_EQ(corrupted->state, job_state::failed);
    EXPECT_NE(corrupted->error.find("digest"), std::string::npos) << corrupted->error;

    // Ordinal beyond the exchange's spool writes: nothing fires, the next
    // job completes normally on the same daemon.
    {
        const testing::sock_fault_injector inject =
            testing::sock_fault_injector::fail_nth(5, io_fault::corrupt_spool);
        ASSERT_EQ(response_status(http_post(server.port(), "/jobs", capture)), 202);
    }
    sessions.drain();
    EXPECT_EQ(sessions.status(2)->state, job_state::done);
    EXPECT_EQ(response_status(http_get(server.port(), "/healthz")), 200);
    fs::remove_all(dir);
}

TEST(ServeFaults, EnvArmingMatchesExplicitPlans) {
    EXPECT_EQ(testing::parse_io_fault_kind("short"), io_fault::short_io);
    EXPECT_EQ(testing::parse_io_fault_kind("eintr"), io_fault::fake_eintr);
    EXPECT_EQ(testing::parse_io_fault_kind("reset"), io_fault::reset);
    EXPECT_EQ(testing::parse_io_fault_kind("stall"), io_fault::stall);
    EXPECT_EQ(testing::parse_io_fault_kind("corrupt-spool"), io_fault::corrupt_spool);
    EXPECT_THROW(testing::parse_io_fault_kind("bogus"), ftc::error);
}

#endif  // unix

}  // namespace
}  // namespace ftc::serve
