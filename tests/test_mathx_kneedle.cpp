// Unit tests for Kneedle knee detection (mathx/kneedle.hpp).
#include "mathx/kneedle.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ftc::mathx {
namespace {

/// Piecewise-linear concave curve with a single sharp knee at x = knee_x:
/// rises steeply to (knee_x, plateau) then flattens out.
curve knee_curve(double knee_x, double plateau, std::size_t points) {
    curve c;
    for (std::size_t i = 0; i < points; ++i) {
        const double x = static_cast<double>(i) / static_cast<double>(points - 1);
        c.xs.push_back(x);
        c.ys.push_back(x < knee_x ? plateau * (x / knee_x)
                                  : plateau + (1.0 - plateau) * (x - knee_x) / (1.0 - knee_x));
    }
    return c;
}

TEST(Kneedle, FindsSharpKneeNearTruePosition) {
    const curve c = knee_curve(0.2, 0.9, 101);
    const kneedle_result r = kneedle(c);
    ASSERT_TRUE(r.rightmost().has_value());
    EXPECT_NEAR(*r.rightmost(), 0.2, 0.05);
}

TEST(Kneedle, KneePositionTracksParameter) {
    for (double knee_x : {0.1, 0.3, 0.5, 0.7}) {
        const curve c = knee_curve(knee_x, 0.9, 201);
        const kneedle_result r = kneedle(c);
        ASSERT_TRUE(r.rightmost().has_value()) << "knee_x=" << knee_x;
        EXPECT_NEAR(*r.rightmost(), knee_x, 0.05) << "knee_x=" << knee_x;
    }
}

TEST(Kneedle, StraightLineHasNoKnee) {
    curve c;
    for (int i = 0; i <= 50; ++i) {
        c.xs.push_back(i / 50.0);
        c.ys.push_back(i / 50.0);
    }
    const kneedle_result r = kneedle(c);
    EXPECT_FALSE(r.rightmost().has_value());
}

TEST(Kneedle, TooFewPointsYieldNothing) {
    curve c;
    c.xs = {0.0, 0.5, 1.0};
    c.ys = {0.0, 0.9, 1.0};
    EXPECT_TRUE(kneedle(c).knees.empty());
}

TEST(Kneedle, RejectsNonIncreasingX) {
    curve c;
    c.xs = {0.0, 0.5, 0.5, 0.7, 1.0};
    c.ys = {0.0, 0.2, 0.4, 0.8, 1.0};
    EXPECT_THROW(kneedle(c), precondition_error);
}

TEST(Kneedle, RejectsMismatchedSizes) {
    curve c;
    c.xs = {0.0, 0.5, 1.0};
    c.ys = {0.0, 0.5};
    EXPECT_THROW(kneedle(c), precondition_error);
}

TEST(Kneedle, ConcaveSmoothCurveHasKnee) {
    // y = sqrt(x): concave increasing, curvature maximal near the origin.
    curve c;
    for (int i = 0; i <= 100; ++i) {
        const double x = i / 100.0;
        c.xs.push_back(x);
        c.ys.push_back(std::sqrt(x));
    }
    const kneedle_result r = kneedle(c);
    ASSERT_TRUE(r.rightmost().has_value());
    // Analytic knee of sqrt (max of sqrt(x)-x) is at x = 0.25.
    EXPECT_NEAR(*r.rightmost(), 0.25, 0.1);
}

TEST(Kneedle, ConvexIncreasingElbow) {
    // y = x^2: the Kneedle difference curve of the transformed problem
    // peaks at x = 0.5 (argmax of |y - x| on the unit square).
    curve c;
    for (int i = 0; i <= 100; ++i) {
        const double x = i / 100.0;
        c.xs.push_back(x);
        c.ys.push_back(x * x);
    }
    kneedle_options opt;
    opt.shape = curve_shape::convex_increasing;
    const kneedle_result r = kneedle(c, opt);
    ASSERT_TRUE(r.rightmost().has_value());
    EXPECT_NEAR(*r.rightmost(), 0.5, 0.05);
}

TEST(Kneedle, ConvexDecreasingElbow) {
    // y = 1/(1+10x): convex decreasing, elbow at small x.
    curve c;
    for (int i = 0; i <= 100; ++i) {
        const double x = i / 100.0;
        c.xs.push_back(x);
        c.ys.push_back(1.0 / (1.0 + 10.0 * x));
    }
    kneedle_options opt;
    opt.shape = curve_shape::convex_decreasing;
    const kneedle_result r = kneedle(c, opt);
    ASSERT_TRUE(r.rightmost().has_value());
    EXPECT_LT(*r.rightmost(), 0.4);
}

TEST(Kneedle, ConcaveDecreasingKnee) {
    // y = 1 - x^2: concave decreasing; knee right of center.
    curve c;
    for (int i = 0; i <= 100; ++i) {
        const double x = i / 100.0;
        c.xs.push_back(x);
        c.ys.push_back(1.0 - x * x);
    }
    kneedle_options opt;
    opt.shape = curve_shape::concave_decreasing;
    const kneedle_result r = kneedle(c, opt);
    ASSERT_TRUE(r.rightmost().has_value());
    // Difference-curve maximum of the transformed 1 - x^2 lands at 0.5.
    EXPECT_NEAR(*r.rightmost(), 0.5, 0.05);
}

TEST(Kneedle, RightmostOfMultipleKnees) {
    // Two-step staircase: knees near 0.25 and 0.65; rightmost() must pick
    // the later one.
    curve c;
    for (int i = 0; i <= 200; ++i) {
        const double x = i / 200.0;
        double y;
        if (x < 0.25) {
            y = 0.5 * (x / 0.25);
        } else if (x < 0.45) {
            y = 0.5 + 0.02 * (x - 0.25) / 0.2;
        } else if (x < 0.65) {
            y = 0.52 + 0.43 * (x - 0.45) / 0.2;
        } else {
            y = 0.95 + 0.05 * (x - 0.65) / 0.35;
        }
        c.xs.push_back(x);
        c.ys.push_back(y);
    }
    const kneedle_result r = kneedle(c);
    ASSERT_GE(r.knees.size(), 2u);
    EXPECT_NEAR(*r.rightmost(), 0.65, 0.06);
    EXPECT_NEAR(r.knees.front(), 0.25, 0.06);
}

TEST(Kneedle, HigherSensitivitySuppressesWeakKnees) {
    // A curve with one strong and one weak knee: large S keeps only strong.
    rng rand(3);
    curve c = knee_curve(0.2, 0.85, 301);
    // Add mild noise to create weak local maxima.
    for (double& y : c.ys) {
        y += rand.uniform_real(-0.004, 0.004);
    }
    const kneedle_result loose = kneedle(c, {.sensitivity = 0.5});
    const kneedle_result strict = kneedle(c, {.sensitivity = 15.0});
    EXPECT_GE(loose.knees.size(), strict.knees.size());
}

}  // namespace
}  // namespace ftc::mathx
