// The bounded HTTP/1.0 reader/writer: framing, strict Content-Length,
// size caps, slow-loris deadlines and short-write recovery — each over a
// real socketpair so the util::net retry loops run for real.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "serve/http.hpp"

namespace ftc::serve {
namespace {

#if defined(__unix__) || defined(__APPLE__)

/// RAII AF_UNIX stream pair: fds[0] = test side, fds[1] = server side.
struct sock_pair {
    int fds[2] = {-1, -1};
    sock_pair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
    ~sock_pair() {
        close_client();
        ::close(fds[1]);
    }
    void close_client() {
        if (fds[0] >= 0) {
            ::close(fds[0]);
            fds[0] = -1;
        }
    }
    void send_text(std::string_view text) {
        ASSERT_EQ(::send(fds[0], text.data(), text.size(), 0),
                  static_cast<ssize_t>(text.size()));
    }
};

TEST(ServeHttp, ParsesRequestLineHeadersAndBody) {
    sock_pair pair;
    pair.send_text("POST /jobs HTTP/1.0\r\nContent-Length: 5\r\nX-Label:  trimmed \r\n"
                   "\r\nhello");
    http_request request;
    ASSERT_EQ(read_request(pair.fds[1], http_limits{}, request), read_status::ok);
    EXPECT_EQ(request.method, "POST");
    EXPECT_EQ(request.target, "/jobs");
    ASSERT_EQ(request.headers.size(), 2u);
    EXPECT_EQ(request.headers[0].first, "content-length");  // lowercased
    EXPECT_EQ(request.headers[1].first, "x-label");
    EXPECT_EQ(request.headers[1].second, "trimmed");
    ASSERT_NE(find_header(request, "x-label"), nullptr);
    EXPECT_EQ(std::string(request.body.begin(), request.body.end()), "hello");
}

TEST(ServeHttp, BodySplitAcrossSegmentsIsReassembled) {
    sock_pair pair;
    std::thread writer([&] {
        pair.send_text("POST /jobs HTTP/1.0\r\nContent-Length: 10\r\n\r\n12");
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        pair.send_text("34567");
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        pair.send_text("890");
    });
    http_request request;
    EXPECT_EQ(read_request(pair.fds[1], http_limits{}, request), read_status::ok);
    EXPECT_EQ(std::string(request.body.begin(), request.body.end()), "1234567890");
    writer.join();
}

TEST(ServeHttp, MalformedFramingIsBadRequest) {
    const char* cases[] = {
        "GARBAGE\r\n\r\n",                                  // no method/target
        "GET /x HTTP/1.0\r\nNoColonHere\r\n\r\n",           // bad header
        "GET /x HTTP/1.0\r\nContent-Length: -3\r\n\r\n",    // signed length
        "GET /x HTTP/1.0\r\nContent-Length: 1e3\r\n\r\n",   // non-digit length
        "GET /x FTP/9.9\r\n\r\n",                           // wrong protocol
    };
    for (const char* text : cases) {
        sock_pair pair;
        pair.send_text(text);
        pair.close_client();
        http_request request;
        EXPECT_EQ(read_request(pair.fds[1], http_limits{}, request),
                  read_status::bad_request)
            << text;
    }
}

TEST(ServeHttp, OversizedHeadAndBodyAreTooLarge) {
    http_limits limits;
    limits.max_head_bytes = 64;
    {
        sock_pair pair;
        pair.send_text("GET /" + std::string(100, 'x') + " HTTP/1.0\r\n\r\n");
        http_request request;
        EXPECT_EQ(read_request(pair.fds[1], limits, request), read_status::too_large);
    }
    limits = http_limits{};
    limits.max_body_bytes = 8;
    {
        sock_pair pair;
        // Announcing more than the cap is refused before any body read.
        pair.send_text("POST /jobs HTTP/1.0\r\nContent-Length: 9\r\n\r\n");
        http_request request;
        EXPECT_EQ(read_request(pair.fds[1], limits, request), read_status::too_large);
    }
}

TEST(ServeHttp, SlowLorisTimesOutOnTheSharedHeadDeadline) {
    http_limits limits;
    limits.io_deadline_ms = 120;
    sock_pair pair;
    std::thread dribbler([&] {
        // One byte per poll interval, forever below the deadline's rate.
        const std::string head = "GET /healthz HTTP/1.0\r\n";
        for (char c : head) {
            ::send(pair.fds[0], &c, 1, 0);
            std::this_thread::sleep_for(std::chrono::milliseconds(40));
        }
    });
    http_request request;
    EXPECT_EQ(read_request(pair.fds[1], limits, request), read_status::timeout);
    dribbler.join();
}

TEST(ServeHttp, PeerDisappearingMidBodyIsEof) {
    sock_pair pair;
    pair.send_text("POST /jobs HTTP/1.0\r\nContent-Length: 100\r\n\r\nonly this");
    pair.close_client();
    http_request request;
    EXPECT_EQ(read_request(pair.fds[1], http_limits{}, request), read_status::eof);
}

TEST(ServeHttp, WriteResponseFramesStatusHeadersAndBody) {
    sock_pair pair;
    EXPECT_TRUE(write_response(pair.fds[1], 503, "application/json", "{\"error\":\"x\"}",
                               {{"Retry-After", "7"}}, 1000));
    ::shutdown(pair.fds[1], SHUT_WR);
    std::string response;
    char buf[1024];
    ssize_t n;
    while ((n = ::recv(pair.fds[0], buf, sizeof buf, 0)) > 0) {
        response.append(buf, static_cast<std::size_t>(n));
    }
    EXPECT_EQ(response.rfind("HTTP/1.0 503 Service Unavailable\r\n", 0), 0u) << response;
    EXPECT_NE(response.find("Content-Length: 13\r\n"), std::string::npos);
    EXPECT_NE(response.find("Retry-After: 7\r\n"), std::string::npos);
    EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
    EXPECT_NE(response.find("\r\n\r\n{\"error\":\"x\"}"), std::string::npos);
}

TEST(ServeHttp, WriteToClosedPeerReportsFailureNotSignal) {
    sock_pair pair;
    pair.close_client();
    // MSG_NOSIGNAL path: the dead peer is a return value, not SIGPIPE.
    EXPECT_FALSE(write_response(pair.fds[1], 200, "text/plain",
                                std::string(1 << 16, 'a'), {}, 200));
}

#endif  // unix

TEST(ServeHttp, StatusReasonsCoverEmittedCodes) {
    EXPECT_EQ(status_reason(200), "OK");
    EXPECT_EQ(status_reason(202), "Accepted");
    EXPECT_EQ(status_reason(400), "Bad Request");
    EXPECT_EQ(status_reason(404), "Not Found");
    EXPECT_EQ(status_reason(405), "Method Not Allowed");
    EXPECT_EQ(status_reason(409), "Conflict");
    EXPECT_EQ(status_reason(413), "Payload Too Large");
    EXPECT_EQ(status_reason(503), "Service Unavailable");
    EXPECT_EQ(status_reason(599), "Error");
}

}  // namespace
}  // namespace ftc::serve
