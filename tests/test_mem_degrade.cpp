// Tests of graceful degradation under memory pressure (DESIGN.md §11):
// every rung of the ladder — weighted dedup, triangular/tiled matrix
// storage, the typed out-of-budget exit — must leave clustering output
// bitwise identical to the unpressured run, or fail with a typed error
// carrying partial progress. Never a crash, never a different answer.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <vector>

#include "ckpt/manager.hpp"
#include "core/pipeline.hpp"
#include "dissim/matrix.hpp"
#include "mem/mem.hpp"
#include "protocols/registry.hpp"
#include "segmentation/segment.hpp"
#include "util/check.hpp"
#include "util/diag.hpp"
#include "util/rng.hpp"

namespace ftc {
namespace {

namespace fs = std::filesystem;

std::vector<byte_vector> random_values(std::size_t n, std::uint64_t seed) {
    rng rng(seed);
    std::vector<byte_vector> values;
    values.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        byte_vector v(2 + (rng() % 7));
        for (auto& b : v) {
            b = static_cast<std::uint8_t>(rng());
        }
        values.push_back(std::move(v));
    }
    return values;
}

struct scenario {
    std::vector<byte_vector> messages;
    segmentation::message_segments segments;
};

scenario make_scenario(const char* protocol = "DNS", std::size_t count = 80) {
    const protocols::trace t = protocols::generate_trace(protocol, count, 7);
    return {segmentation::message_bytes(t), segmentation::segments_from_annotations(t)};
}

/// A trace with heavy value duplication: every message is a run of 2-byte
/// segments drawn from a small pool, so the occurrence lists dwarf both the
/// value storage and the (tiny) matrix — the shape that trips rung 1.
scenario make_duplicated_scenario(std::size_t message_count = 100,
                                  std::size_t segments_per_message = 20,
                                  std::size_t pool = 30) {
    rng rng(11);
    scenario s;
    for (std::size_t m = 0; m < message_count; ++m) {
        byte_vector msg;
        std::vector<segmentation::segment> segs;
        for (std::size_t k = 0; k < segments_per_message; ++k) {
            const auto value = static_cast<std::uint16_t>(rng() % pool * 2654435761u);
            segs.push_back({m, msg.size(), 2});
            msg.push_back(static_cast<std::uint8_t>(value >> 8));
            msg.push_back(static_cast<std::uint8_t>(value));
        }
        s.messages.push_back(std::move(msg));
        s.segments.push_back(std::move(segs));
    }
    return s;
}

/// A trace that is almost all *unique* values: the n×n matrix dwarfs every
/// other allocation, giving the budget tests wide, deterministic margins.
scenario make_unique_scenario(std::size_t message_count = 200,
                              std::size_t segments_per_message = 2) {
    rng rng(13);
    scenario s;
    for (std::size_t m = 0; m < message_count; ++m) {
        byte_vector msg;
        std::vector<segmentation::segment> segs;
        for (std::size_t k = 0; k < segments_per_message; ++k) {
            const std::size_t len = 4 + (rng() % 5);
            segs.push_back({m, msg.size(), len});
            for (std::size_t b = 0; b < len; ++b) {
                msg.push_back(static_cast<std::uint8_t>(rng()));
            }
        }
        s.messages.push_back(std::move(msg));
        s.segments.push_back(std::move(segs));
    }
    return s;
}

/// What "identical clustering" means, detached from the pipeline_result so
/// the baseline's tracked storage can be freed before the pressured run.
struct labels_snapshot {
    std::vector<byte_vector> values;
    std::vector<std::size_t> occurrence_counts;
    double epsilon = 0.0;
    std::size_t min_samples = 0;
    std::vector<int> dbscan_labels;
    std::vector<int> final_labels;
    std::size_t cluster_count = 0;
    std::uint64_t peak_bytes = 0;  ///< tracked peak of the producing run
};

labels_snapshot snapshot_run(const scenario& s, const core::pipeline_options& opt = {}) {
    mem::reset_peak();
    const core::pipeline_result r = core::analyze_segments(s.messages, s.segments, opt);
    labels_snapshot snap;
    snap.values = r.unique.values;
    for (std::size_t i = 0; i < r.unique.size(); ++i) {
        snap.occurrence_counts.push_back(r.unique.occurrence_count(i));
    }
    snap.epsilon = r.clustering.config.epsilon;
    snap.min_samples = r.clustering.config.min_samples;
    snap.dbscan_labels = r.clustering.labels.labels;
    snap.final_labels = r.final_labels.labels;
    snap.cluster_count = r.final_labels.cluster_count;
    snap.peak_bytes = mem::peak_bytes();
    return snap;
}

void expect_identical(const labels_snapshot& a, const labels_snapshot& b) {
    EXPECT_EQ(a.values, b.values);
    EXPECT_EQ(a.occurrence_counts, b.occurrence_counts);
    EXPECT_EQ(a.epsilon, b.epsilon);
    EXPECT_EQ(a.min_samples, b.min_samples);
    EXPECT_EQ(a.dbscan_labels, b.dbscan_labels);
    EXPECT_EQ(a.final_labels, b.final_labels);
    EXPECT_EQ(a.cluster_count, b.cluster_count);
}

// --- Rung 1: weighted dedup ------------------------------------------------

TEST(CondenseWeighted, MatchesFullCondenseValuesAndCounts) {
    const scenario s = make_scenario();
    const dissim::unique_segments full = dissim::condense(s.messages, s.segments);
    const dissim::unique_segments weighted =
        dissim::condense_weighted(s.messages, s.segments);

    ASSERT_TRUE(weighted.occurrences_elided);
    ASSERT_FALSE(full.occurrences_elided);
    // Identical values in the identical first-occurrence order: everything
    // downstream (matrix, curves, labels) is bitwise unchanged.
    ASSERT_EQ(weighted.values, full.values);
    EXPECT_TRUE(weighted.occurrences.empty());
    ASSERT_EQ(weighted.multiplicities.size(), full.size());
    for (std::size_t i = 0; i < full.size(); ++i) {
        EXPECT_EQ(weighted.occurrence_count(i), full.occurrence_count(i)) << "value " << i;
    }
    EXPECT_EQ(weighted.total_occurrences(), full.total_occurrences());
    EXPECT_EQ(weighted.short_segments, full.short_segments);
}

TEST(CondenseWeighted, UsesLessTrackedMemoryThanFull) {
    const scenario s = make_duplicated_scenario();
    const dissim::unique_segments full = dissim::condense(s.messages, s.segments);
    const dissim::unique_segments weighted =
        dissim::condense_weighted(s.messages, s.segments);
    EXPECT_LT(weighted.footprint.bytes(), full.footprint.bytes());
}

// --- Rung 2: triangular / tiled matrix storage -----------------------------

TEST(TriangularLayout, BitwiseIdenticalToDense) {
    const std::vector<byte_vector> values = random_values(60, 42);
    const dissim::dissimilarity_matrix dense(values);
    dissim::build_options opts;
    opts.storage = dissim::layout::triangular;
    const dissim::dissimilarity_matrix tri(values, opts);

    ASSERT_EQ(tri.size(), dense.size());
    ASSERT_EQ(tri.storage(), dissim::layout::triangular);
    const std::vector<float> upper_dense = dense.upper_triangle_f32();
    const std::vector<float> upper_tri = tri.upper_triangle_f32();
    ASSERT_EQ(upper_dense.size(), upper_tri.size());
    EXPECT_EQ(0, std::memcmp(upper_dense.data(), upper_tri.data(),
                             upper_dense.size() * sizeof(float)));
    for (std::size_t i = 0; i < dense.size(); ++i) {
        for (std::size_t j = 0; j < dense.size(); ++j) {
            ASSERT_EQ(tri.at(i, j), dense.at(i, j)) << "(" << i << "," << j << ")";
        }
    }
}

TEST(TriangularLayout, KnnCurvesMatchDense) {
    const std::vector<byte_vector> values = random_values(40, 9);
    const dissim::dissimilarity_matrix dense(values);
    dissim::build_options opts;
    opts.storage = dissim::layout::triangular;
    const dissim::dissimilarity_matrix tri(values, opts);
    EXPECT_EQ(tri.kth_nn_many(10), dense.kth_nn_many(10));
    EXPECT_EQ(tri.kth_nn(3), dense.kth_nn(3));
    EXPECT_EQ(tri.upper_triangle(), dense.upper_triangle());
}

TEST(TriangularLayout, TiledBuildCoversTriangleInOrder) {
    const std::vector<byte_vector> values = random_values(31, 5);
    dissim::build_options plain;
    plain.storage = dissim::layout::triangular;
    const dissim::dissimilarity_matrix reference(values, plain);

    std::vector<float> spilled;
    std::size_t next_row = 0;
    dissim::build_options tiled;
    tiled.storage = dissim::layout::triangular;
    tiled.tile_rows = 7;  // deliberately not dividing 31
    tiled.on_tile = [&](std::size_t row_begin, std::size_t row_end, std::size_t n,
                        std::span<const float> cells) {
        EXPECT_EQ(row_begin, next_row);  // seamless row chaining
        EXPECT_EQ(n, values.size());
        std::size_t expected = 0;
        for (std::size_t r = row_begin; r < row_end; ++r) {
            expected += n - 1 - r;
        }
        EXPECT_EQ(cells.size(), expected);
        spilled.insert(spilled.end(), cells.begin(), cells.end());
        next_row = row_end;
    };
    const dissim::dissimilarity_matrix built(values, tiled);

    EXPECT_EQ(next_row, values.size());
    const std::vector<float> upper = reference.upper_triangle_f32();
    ASSERT_EQ(spilled.size(), upper.size());
    EXPECT_EQ(0, std::memcmp(spilled.data(), upper.data(), upper.size() * sizeof(float)));
    EXPECT_EQ(built.upper_triangle_f32(), upper);
}

TEST(TriangularLayout, FromUpperRoundTripsBothLayouts) {
    const std::vector<byte_vector> values = random_values(20, 3);
    const dissim::dissimilarity_matrix dense(values);
    const std::vector<float> upper = dense.upper_triangle_f32();
    const dissim::dissimilarity_matrix as_tri =
        dissim::dissimilarity_matrix::from_upper(upper, values.size(),
                                                 dissim::layout::triangular);
    const dissim::dissimilarity_matrix as_dense =
        dissim::dissimilarity_matrix::from_upper(upper, values.size());
    EXPECT_EQ(as_tri.upper_triangle_f32(), upper);
    EXPECT_EQ(as_dense.upper_triangle_f32(), upper);
    EXPECT_EQ(as_tri.storage(), dissim::layout::triangular);
    EXPECT_EQ(as_dense.storage(), dissim::layout::dense);
}

// --- The ladder end to end -------------------------------------------------

TEST(MemDegrade, TriangularRungPreservesClusteringBitwise) {
    const scenario s = make_scenario("DNS", 100);
    const labels_snapshot baseline = snapshot_run(s);
    const std::uint64_t n = baseline.values.size();
    const std::uint64_t dense_bytes = n * n * sizeof(float);
    ASSERT_GT(baseline.peak_bytes, dense_bytes);

    // A budget the dense matrix cannot fit under but the degraded run can:
    // the triangular layout alone returns half the dense bytes, so a cap a
    // quarter-matrix below the dense peak forces rung 2 with room to spare.
    core::pipeline_options opt;
    opt.max_memory = static_cast<std::size_t>(baseline.peak_bytes - dense_bytes / 4);
    const labels_snapshot degraded = snapshot_run(s, opt);

    expect_identical(baseline, degraded);
    EXPECT_LE(degraded.peak_bytes, opt.max_memory);
}

TEST(MemDegrade, DedupRungPreservesClusteringBitwise) {
    // Occurrence lists dominate this trace (2000 concrete segments, ~30
    // unique values), so a cap below their footprint — but far above the
    // tiny matrix — forces exactly rung 1.
    const scenario s = make_duplicated_scenario();
    const std::uint64_t occurrence_bytes =
        100 * 20 * sizeof(segmentation::segment);  // what the full form would charge
    const labels_snapshot baseline = snapshot_run(s);
    ASSERT_GT(baseline.peak_bytes, occurrence_bytes);

    core::pipeline_options opt;
    opt.max_memory = static_cast<std::size_t>(baseline.peak_bytes - occurrence_bytes / 2);
    mem::reset_peak();
    const core::pipeline_result degraded = core::analyze_segments(s.messages, s.segments, opt);
    EXPECT_TRUE(degraded.unique.occurrences_elided);
    labels_snapshot snap;
    snap.values = degraded.unique.values;
    for (std::size_t i = 0; i < degraded.unique.size(); ++i) {
        snap.occurrence_counts.push_back(degraded.unique.occurrence_count(i));
    }
    snap.epsilon = degraded.clustering.config.epsilon;
    snap.min_samples = degraded.clustering.config.min_samples;
    snap.dbscan_labels = degraded.clustering.labels.labels;
    snap.final_labels = degraded.final_labels.labels;
    snap.cluster_count = degraded.final_labels.cluster_count;
    snap.peak_bytes = baseline.peak_bytes;  // not under test here
    expect_identical(baseline, snap);
}

TEST(MemDegrade, ImpossibleBudgetFailsWithTypedPartialProgress) {
    const scenario s = make_scenario("DNS", 60);
    core::pipeline_options opt;
    opt.max_memory = 64;  // nothing real fits under 64 bytes
    try {
        core::analyze_segments(s.messages, s.segments, opt);
        FAIL() << "expected memory_budget_exceeded_error";
    } catch (const memory_budget_exceeded_error& e) {
        EXPECT_FALSE(e.partial_report().empty());
    }
    EXPECT_EQ(mem::governor::active(), nullptr);  // unwound cleanly
}

TEST(MemDegrade, TiledSpillResumesBitwiseIdentical) {
    const scenario s = make_unique_scenario();
    const fs::path dir = fs::temp_directory_path() / "ftc_test_mem_degrade_spill";
    fs::remove_all(dir);

    const labels_snapshot baseline = snapshot_run(s);
    const std::uint64_t n = baseline.values.size();
    const std::uint64_t dense_bytes = n * n * sizeof(float);
    ASSERT_GT(baseline.peak_bytes, dense_bytes);
    // The reference upper triangle the spilled tiles must reassemble into.
    const std::vector<float> reference_upper = [&] {
        const dissim::unique_segments u = dissim::condense(s.messages, s.segments);
        return dissim::dissimilarity_matrix(u.values).upper_triangle_f32();
    }();

    core::pipeline_options opt;
    opt.max_memory = static_cast<std::size_t>(baseline.peak_bytes - dense_bytes / 4);
    const ckpt::options_fingerprint fp = ckpt::fingerprint(opt, "true", 7);
    {
        ckpt::checkpoint_manager manager(dir, fp);
        manager.on_segments(s.messages, s.segments);
        core::pipeline_options observed = opt;
        observed.observer = &manager;
        core::pipeline_seed seed;
        seed.segments = s.segments;
        const core::pipeline_result pressured =
            core::analyze_seeded(s.messages, nullptr, std::move(seed), observed);
        manager.mark_complete();
        EXPECT_EQ(pressured.final_labels.labels, baseline.final_labels);
    }
    // The pressured build must have spilled at least one tile.
    ASSERT_TRUE(fs::exists(dir / ckpt::checkpoint_manager::tile_file(0)));

    // Resume under the same pressure: the spilled tiles reassemble into the
    // same matrix (bitwise) and the restored run reproduces the baseline.
    diag::error_sink sink(diag::policy::strict);
    ckpt::checkpoint_manager manager(dir, fp);
    const mem::governor governor(opt.max_memory);
    ckpt::restored_state restored = manager.load(s.messages, sink);
    ASSERT_TRUE(restored.seed.matrix.has_value());
    EXPECT_EQ(restored.seed.matrix->storage(), dissim::layout::triangular);
    EXPECT_EQ(restored.seed.matrix->upper_triangle_f32(), reference_upper);
    const core::pipeline_result resumed = core::analyze_seeded(
        restored.has_segments() ? restored.messages : s.messages, nullptr,
        std::move(restored.seed), opt);
    EXPECT_EQ(resumed.final_labels.labels, baseline.final_labels);
    EXPECT_EQ(resumed.final_labels.cluster_count, baseline.cluster_count);
    fs::remove_all(dir);
}

}  // namespace
}  // namespace ftc
