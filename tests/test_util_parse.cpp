// Unit tests for strict CLI numeric parsing (util/parse.hpp): every helper
// must accept exactly one well-formed number spanning the whole string and
// reject the silent-garbage cases atoi/atof let through.
#include "util/parse.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "util/error.hpp"

namespace ftc::util {
namespace {

TEST(ParseU64, AcceptsPlainIntegers) {
    EXPECT_EQ(parse_u64("0", "f"), 0u);
    EXPECT_EQ(parse_u64("42", "f"), 42u);
    EXPECT_EQ(parse_u64("18446744073709551615", "f"),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseU64, RejectsEmptyAndSigns) {
    EXPECT_THROW(parse_u64("", "f"), error);
    EXPECT_THROW(parse_u64("-1", "f"), error);
    EXPECT_THROW(parse_u64("+1", "f"), error);
}

TEST(ParseU64, RejectsTrailingGarbage) {
    EXPECT_THROW(parse_u64("100x", "f"), error);
    EXPECT_THROW(parse_u64("10 ", "f"), error);
    EXPECT_THROW(parse_u64(" 10", "f"), error);
    EXPECT_THROW(parse_u64("1.5", "f"), error);
    EXPECT_THROW(parse_u64("0x10", "f"), error);
}

TEST(ParseU64, RejectsOverflow) {
    EXPECT_THROW(parse_u64("18446744073709551616", "f"), error);
    EXPECT_THROW(parse_u64("99999999999999999999999", "f"), error);
}

TEST(ParseU64, DiagnosticNamesTheFlag) {
    try {
        parse_u64("12q", "--max-segments");
        FAIL() << "expected ftc::error";
    } catch (const error& e) {
        EXPECT_NE(std::string(e.what()).find("--max-segments"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("12q"), std::string::npos);
    }
}

TEST(ParseDouble, AcceptsDecimals) {
    EXPECT_DOUBLE_EQ(parse_double("0", "f"), 0.0);
    EXPECT_DOUBLE_EQ(parse_double("1.5", "f"), 1.5);
    EXPECT_DOUBLE_EQ(parse_double("120", "f"), 120.0);
    EXPECT_DOUBLE_EQ(parse_double("2e3", "f"), 2000.0);
}

TEST(ParseDouble, RejectsGarbageNegativeAndNonFinite) {
    EXPECT_THROW(parse_double("", "f"), error);
    EXPECT_THROW(parse_double("abc", "f"), error);
    EXPECT_THROW(parse_double("1.5s", "f"), error);
    EXPECT_THROW(parse_double("-1", "f"), error);
    EXPECT_THROW(parse_double("inf", "f"), error);
    EXPECT_THROW(parse_double("nan", "f"), error);
    EXPECT_THROW(parse_double("1e999", "f"), error);
}

TEST(ParseSizeBytes, AcceptsSuffixes) {
    EXPECT_EQ(parse_size_bytes("0", "f"), 0u);
    EXPECT_EQ(parse_size_bytes("512", "f"), 512u);
    EXPECT_EQ(parse_size_bytes("512b", "f"), 512u);
    EXPECT_EQ(parse_size_bytes("1K", "f"), 1024u);
    EXPECT_EQ(parse_size_bytes("64M", "f"), 64ull << 20);
    EXPECT_EQ(parse_size_bytes("2GiB", "f"), 2ull << 30);
    EXPECT_EQ(parse_size_bytes("512kb", "f"), 512ull << 10);
    EXPECT_EQ(parse_size_bytes("1T", "f"), 1ull << 40);
}

TEST(ParseSizeBytes, RejectsBadSuffixesAndOverflow) {
    EXPECT_THROW(parse_size_bytes("", "f"), error);
    EXPECT_THROW(parse_size_bytes("64Q", "f"), error);
    EXPECT_THROW(parse_size_bytes("64 M", "f"), error);
    EXPECT_THROW(parse_size_bytes("-64M", "f"), error);
    EXPECT_THROW(parse_size_bytes("M", "f"), error);
    // 2^54 KiB = 2^64 bytes: one past the top.
    EXPECT_THROW(parse_size_bytes("18014398509481984K", "f"), error);
    EXPECT_NO_THROW(parse_size_bytes("18014398509481983K", "f"));
}

}  // namespace
}  // namespace ftc::util
