// Unit tests for analyst-facing cluster reports (core/report.hpp).
#include "core/report.hpp"

#include <gtest/gtest.h>

#include "protocols/registry.hpp"
#include "segmentation/segment.hpp"

namespace ftc::core {
namespace {

/// Build a pipeline_result with hand-placed clusters of unique values.
pipeline_result fake_result(const std::vector<byte_vector>& values,
                            const std::vector<int>& labels,
                            const std::vector<std::size_t>& occurrence_counts) {
    pipeline_result r;
    int max_label = -1;
    for (std::size_t i = 0; i < values.size(); ++i) {
        r.unique.values.push_back(values[i]);
        std::vector<segmentation::segment> occs;
        for (std::size_t o = 0; o < occurrence_counts[i]; ++o) {
            occs.push_back(segmentation::segment{o, 0, values[i].size()});
        }
        r.unique.occurrences.push_back(std::move(occs));
        max_label = std::max(max_label, labels[i]);
    }
    r.final_labels.labels = labels;
    r.final_labels.cluster_count = static_cast<std::size_t>(max_label + 1);
    return r;
}

TEST(Report, CharsClusterDetected) {
    const pipeline_result r = fake_result(
        {
            {'h', 'o', 's', 't', '0', '1'},
            {'h', 'o', 's', 't', '0', '2'},
            {'s', 'e', 'r', 'v', 'e', 'r'},
        },
        {0, 0, 0}, {2, 1, 1});
    const auto summaries = summarize_clusters(r);
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_EQ(summaries[0].kind_hint(), "chars");
    EXPECT_GT(summaries[0].printable_fraction, 0.9);
    EXPECT_EQ(summaries[0].unique_values, 3u);
    EXPECT_EQ(summaries[0].occurrences, 4u);
}

TEST(Report, ConstantClusterDetected) {
    const pipeline_result r =
        fake_result({{0x63, 0x82, 0x53, 0x63}}, {0}, {25});
    const auto summaries = summarize_clusters(r);
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_EQ(summaries[0].kind_hint(), "constant");
    EXPECT_EQ(summaries[0].occurrences, 25u);
    EXPECT_EQ(summaries[0].common_prefix, 4u);
}

TEST(Report, NumericClusterRangeComputed) {
    const pipeline_result r = fake_result(
        {
            {0x00, 0x00, 0x01, 0x00},
            {0x00, 0x00, 0x02, 0x40},
            {0x00, 0x00, 0x03, 0x80},
        },
        {0, 0, 0}, {1, 1, 1});
    const auto summaries = summarize_clusters(r);
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_TRUE(summaries[0].numeric_valid);
    EXPECT_EQ(summaries[0].numeric_min, 0x100u);
    EXPECT_EQ(summaries[0].numeric_max, 0x380u);
    EXPECT_EQ(summaries[0].kind_hint(), "numeric32");
    EXPECT_EQ(summaries[0].common_prefix, 2u);
}

TEST(Report, HighEntropyClusterDetected) {
    std::vector<byte_vector> values;
    // Random-looking 16-byte values with all-distinct bytes.
    for (int v = 0; v < 3; ++v) {
        byte_vector val;
        for (int i = 0; i < 16; ++i) {
            val.push_back(static_cast<std::uint8_t>(16 * v + i * 13 + 7));
        }
        values.push_back(val);
    }
    const pipeline_result r = fake_result(values, {0, 0, 0}, {1, 1, 1});
    const auto summaries = summarize_clusters(r);
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_EQ(summaries[0].mean_entropy, 4.0);  // 16 distinct bytes
    EXPECT_EQ(summaries[0].kind_hint(), "opaque");
}

TEST(Report, MixedLengthClusterHasNoNumericRange) {
    const pipeline_result r =
        fake_result({{1, 2}, {1, 2, 3}}, {0, 0}, {1, 1});
    const auto summaries = summarize_clusters(r);
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_FALSE(summaries[0].numeric_valid);
    EXPECT_EQ(summaries[0].min_length, 2u);
    EXPECT_EQ(summaries[0].max_length, 3u);
}

TEST(Report, NoiseExcludedFromSummaries) {
    const pipeline_result r =
        fake_result({{1, 2}, {3, 4}, {5, 6}}, {0, 0, -1}, {1, 1, 1});
    const auto summaries = summarize_clusters(r);
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_EQ(summaries[0].unique_values, 2u);
}

TEST(Report, RenderedReportContainsClusterRows) {
    const pipeline_result r = fake_result(
        {{'a', 'b', 'c'}, {'x', 'y', 'z'}, {0x00, 0x01}}, {0, 0, 1}, {3, 1, 7});
    const std::string text = render_report(summarize_clusters(r));
    EXPECT_NE(text.find("cluster"), std::string::npos);
    EXPECT_NE(text.find("chars"), std::string::npos);
    EXPECT_NE(text.find("examples:"), std::string::npos);
    EXPECT_NE(text.find("616263"), std::string::npos);  // hex of "abc"
}

TEST(Report, EndToEndOnRealTrace) {
    const protocols::trace t = protocols::generate_trace("DNS", 80, 21);
    const auto messages = segmentation::message_bytes(t);
    const pipeline_result r = analyze_segments(
        messages, segmentation::segments_from_annotations(t), {});
    const auto summaries = summarize_clusters(r);
    EXPECT_FALSE(summaries.empty());
    // DNS must yield at least one chars-like cluster (the encoded names).
    bool has_chars = false;
    for (const auto& s : summaries) {
        if (s.kind_hint() == "chars") {
            has_chars = true;
        }
    }
    EXPECT_TRUE(has_chars);
    const std::string text = render_report(summaries);
    EXPECT_GT(text.size(), 100u);
}

}  // namespace
}  // namespace ftc::core
