// Observability must never change a result: the full pipeline with the
// recorder installed is bitwise identical to the uninstrumented run, at
// threads=1 (legacy serial path) and threads=0 (all hardware lanes).
// Under -DFTC_OBS_DISABLE=ON the same suite proves the compiled-in no-op
// sink path as well.
#include <gtest/gtest.h>

#include <vector>

#include "core/pipeline.hpp"
#include "obs/obs.hpp"
#include "protocols/registry.hpp"
#include "segmentation/segment.hpp"

namespace ftc {
namespace {

core::pipeline_result run_pipeline(std::size_t threads) {
    const protocols::trace truth = protocols::generate_trace("DNS", 120, 7);
    core::pipeline_options opt;
    opt.budget_seconds = 120;
    opt.threads = threads;
    return core::analyze_segments(segmentation::message_bytes(truth),
                                  segmentation::segments_from_annotations(truth), opt);
}

/// Everything result-bearing must match exactly — no tolerance.
void expect_identical(const core::pipeline_result& a, const core::pipeline_result& b) {
    EXPECT_EQ(a.final_labels.labels, b.final_labels.labels);
    EXPECT_EQ(a.final_labels.cluster_count, b.final_labels.cluster_count);
    EXPECT_EQ(a.unique.size(), b.unique.size());
    // Bitwise comparison of the auto-configured parameters.
    EXPECT_EQ(a.clustering.config.epsilon, b.clustering.config.epsilon);
    EXPECT_EQ(a.clustering.config.min_samples, b.clustering.config.min_samples);
    EXPECT_EQ(a.clustering.labels.labels, b.clustering.labels.labels);
}

class ObsDeterminism : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ObsDeterminism, RecorderDoesNotChangeClustering) {
    const std::size_t threads = GetParam();
    const core::pipeline_result baseline = run_pipeline(threads);
    core::pipeline_result observed = [&] {
        obs::scoped_recorder recorder;
        return run_pipeline(threads);
    }();
    expect_identical(baseline, observed);
    // And a run after the recorder is torn down again matches too.
    expect_identical(baseline, run_pipeline(threads));
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, ObsDeterminism,
                         ::testing::Values(std::size_t{1}, std::size_t{0}),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                             return info.param == 1 ? "serial" : "hardware";
                         });

TEST(ObsDeterminism, SerialAndParallelAgreeWithRecorder) {
    // The existing threads-equivalence guarantee must hold with the
    // recorder installed: instrumentation happens outside the math.
    obs::scoped_recorder recorder;
    expect_identical(run_pipeline(1), run_pipeline(0));
}

}  // namespace
}  // namespace ftc
