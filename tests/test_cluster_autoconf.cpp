// Unit tests for epsilon auto-configuration / Algorithm 1
// (cluster/autoconf.hpp).
#include "cluster/autoconf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ftc::cluster {
namespace {

/// Matrix of points on a line with |x_i - x_j| distances.
dissim::dissimilarity_matrix line_matrix(const std::vector<double>& xs) {
    const std::size_t n = xs.size();
    std::vector<double> dense(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            dense[i * n + j] = std::min(1.0, std::abs(xs[i] - xs[j]));
        }
    }
    return dissim::dissimilarity_matrix::from_dense(dense, n);
}

/// Three well-separated tight blobs: intra-blob spacing 0.002, gaps ~0.3.
std::vector<double> blobs_data(rng& rand, std::size_t per_blob) {
    std::vector<double> xs;
    for (double center : {0.1, 0.45, 0.8}) {
        for (std::size_t i = 0; i < per_blob; ++i) {
            xs.push_back(center + rand.uniform_real(-0.01, 0.01));
        }
    }
    return xs;
}

TEST(Autoconf, EpsilonSeparatesWellSeparatedBlobs) {
    rng rand(1);
    const std::vector<double> xs = blobs_data(rand, 30);
    const auto m = line_matrix(xs);
    const autoconf_result cfg = auto_configure(m);
    // The knee must land between the intra-blob scale (points are within
    // 0.02 of their blob center) and the inter-blob gaps (~0.33).
    EXPECT_GT(cfg.epsilon, 0.0);
    EXPECT_LT(cfg.epsilon, 0.3);
    // DBSCAN with the auto parameters must never mix points of different
    // blobs into one cluster (blobs may fray into sub-clusters and noise,
    // but cross-blob contamination would mean epsilon overshot the gap).
    const cluster_labels r = dbscan(m, {cfg.epsilon, cfg.min_samples});
    EXPECT_GE(r.cluster_count, 3u);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        for (std::size_t j = i + 1; j < xs.size(); ++j) {
            if (r.labels[i] != kNoise && r.labels[i] == r.labels[j]) {
                EXPECT_LT(std::abs(xs[i] - xs[j]), 0.1)
                    << "points from different blobs share a cluster";
            }
        }
    }
}

TEST(Autoconf, MinSamplesIsLogOfCount) {
    rng rand(2);
    const auto m = line_matrix(blobs_data(rand, 30));  // n = 90
    const autoconf_result cfg = auto_configure(m);
    EXPECT_EQ(cfg.min_samples,
              static_cast<std::size_t>(std::lround(std::log(90.0))));  // 4 or 5
}

TEST(Autoconf, CandidateRangeFollowsLogN) {
    rng rand(3);
    const auto m = line_matrix(blobs_data(rand, 40));  // n = 120, ln ~ 4.8
    const autoconf_result cfg = auto_configure(m);
    ASSERT_FALSE(cfg.candidates.empty());
    EXPECT_EQ(cfg.candidates.front().k, 2u);
    EXPECT_EQ(cfg.candidates.back().k,
              static_cast<std::size_t>(std::lround(std::log(120.0))));
    // Selected k is one of the candidates.
    bool found = false;
    for (const k_candidate& c : cfg.candidates) {
        if (c.k == cfg.selected_k) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Autoconf, RejectsTinyMatrices) {
    const auto m = line_matrix({0.0, 1.0});
    EXPECT_THROW(auto_configure(m), precondition_error);
}

TEST(Autoconf, DegenerateEqualDistancesFallsBack) {
    // All points identical: kNN distances all zero -> no knee.
    const std::vector<double> xs(10, 0.5);
    const auto m = line_matrix(xs);
    const autoconf_result cfg = auto_configure(m);
    EXPECT_FALSE(cfg.knee_found);
    EXPECT_DOUBLE_EQ(cfg.epsilon, autoconf_options{}.fallback_epsilon);
}

TEST(Autoconf, TrimmedSearchReturnsSmallerEpsilon) {
    rng rand(4);
    const auto m = line_matrix(blobs_data(rand, 30));
    const autoconf_result cfg = auto_configure(m);
    const autoconf_result trimmed = auto_configure_trimmed(m, cfg.epsilon);
    EXPECT_LT(trimmed.epsilon, cfg.epsilon);
    EXPECT_GT(trimmed.epsilon, 0.0);
}

TEST(AutoCluster, SeparatesBlobsWithoutCrossContamination) {
    rng rand(5);
    const std::vector<double> xs = blobs_data(rand, 30);
    const auto m = line_matrix(xs);
    const auto_cluster_result r = auto_cluster(m);
    EXPECT_GE(r.labels.cluster_count, 3u);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        for (std::size_t j = i + 1; j < xs.size(); ++j) {
            if (r.labels.labels[i] != kNoise && r.labels.labels[i] == r.labels.labels[j]) {
                EXPECT_LT(std::abs(xs[i] - xs[j]), 0.1);
            }
        }
    }
}

TEST(AutoCluster, OversizeGuardWalksDownToSplitNestedScales) {
    // Two-scale structure: 5 micro-blobs (spacing 0.001 inside) arranged in
    // a macro-blob region 0.1..0.22 (micro gaps ~0.03), plus a far blob at
    // 0.9. A knee at the macro scale would lump >60% into one cluster; the
    // guard must walk down to the micro scale.
    rng rand(6);
    std::vector<double> xs;
    for (double center : {0.10, 0.13, 0.16, 0.19, 0.22}) {
        for (int i = 0; i < 12; ++i) {
            xs.push_back(center + rand.uniform_real(-0.0005, 0.0005));
        }
    }
    for (int i = 0; i < 12; ++i) {
        xs.push_back(0.9 + rand.uniform_real(-0.0005, 0.0005));
    }
    const auto m = line_matrix(xs);
    const auto_cluster_result r = auto_cluster(m);
    // Regardless of which knee was found first, the guard must leave no
    // cluster holding more than 60% of non-noise points.
    const std::size_t non_noise = m.size() - r.labels.noise_count();
    std::vector<std::size_t> sizes(r.labels.cluster_count, 0);
    for (int l : r.labels.labels) {
        if (l != kNoise) {
            ++sizes[static_cast<std::size_t>(l)];
        }
    }
    for (std::size_t s : sizes) {
        EXPECT_LE(static_cast<double>(s), 0.6 * static_cast<double>(non_noise) + 1.0);
    }
    EXPECT_GE(r.labels.cluster_count, 2u);
}

TEST(AutoCluster, ReconfigurationCountBounded) {
    rng rand(7);
    std::vector<double> xs;
    for (int i = 0; i < 60; ++i) {
        xs.push_back(rand.uniform01());  // uniform: no clean knee anywhere
    }
    const auto m = line_matrix(xs);
    const auto_cluster_result r = auto_cluster(m, {}, 0.6, 4);
    EXPECT_LE(r.reconfigurations, 4u);
}

TEST(AutoCluster, UndersizeGuardEscalatesMicroKnee) {
    // 30 tight pairs (intra-pair distance ~0.0005) scattered 0.03 apart:
    // the sharpest knee sits at the pair scale, where min_samples (=4) can
    // never be met — plain DBSCAN returns zero clusters. The undersize
    // guard must escalate epsilon until clusters form.
    rng rand(11);
    std::vector<double> xs;
    for (int p = 0; p < 30; ++p) {
        const double center = 0.03 * p + rand.uniform_real(-0.002, 0.002);
        xs.push_back(center);
        xs.push_back(center + 0.0005);
    }
    const auto m = line_matrix(xs);
    const auto_cluster_result r = auto_cluster(m);
    EXPECT_GE(r.labels.cluster_count, 1u);
    EXPECT_LT(r.labels.noise_count(), xs.size());
}

TEST(AutoCluster, OversizeWalkNeverAcceptsZeroClusters) {
    // Whatever the guard does, the result must keep at least one cluster
    // when the initial configuration produced one.
    rng rand(12);
    std::vector<double> xs;
    for (int i = 0; i < 80; ++i) {
        xs.push_back(rand.uniform01() * 0.2);  // one diffuse blob
    }
    const auto m = line_matrix(xs);
    const auto_cluster_result r = auto_cluster(m);
    EXPECT_GE(r.labels.cluster_count, 1u);
}

TEST(Autoconf, SmoothedCurvesAreMonotone) {
    rng rand(8);
    const auto m = line_matrix(blobs_data(rand, 25));
    const autoconf_result cfg = auto_configure(m);
    for (const k_candidate& c : cfg.candidates) {
        for (std::size_t i = 1; i < c.smoothed.size(); ++i) {
            EXPECT_GE(c.smoothed[i], c.smoothed[i - 1]);
        }
        EXPECT_GE(c.sharpness, 0.0);
    }
}

}  // namespace
}  // namespace ftc::cluster
