// Structural integration sweep: the full pipeline must hold its invariants
// for EVERY (protocol x segmenter) combination — small traces, no quality
// floors, pure well-formedness. Complements the quality assertions in
// test_core_pipeline.cpp / test_integration_end2end.cpp.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/metrics.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/semantics.hpp"
#include "core/valuegen.hpp"
#include "protocols/registry.hpp"
#include "segmentation/segment.hpp"

namespace ftc {
namespace {

using Param = std::tuple<const char*, const char*>;

class PipelineMatrix : public ::testing::TestWithParam<Param> {
protected:
    std::string protocol() const { return std::get<0>(GetParam()); }
    std::string segmenter() const { return std::get<1>(GetParam()); }
};

TEST_P(PipelineMatrix, InvariantsHoldEndToEnd) {
    const std::size_t count = 40;
    const protocols::trace truth = protocols::generate_trace(protocol(), count, 77);
    const auto messages = segmentation::message_bytes(truth);

    core::pipeline_options opt;
    opt.budget_seconds = 120;
    core::pipeline_result result = [&] {
        if (segmenter() == "true") {
            return core::analyze_segments(
                messages, segmentation::segments_from_annotations(truth), opt);
        }
        const auto seg = segmentation::make_segmenter(segmenter());
        return core::analyze(messages, *seg, opt);
    }();

    // Labels form a partition of the unique segments.
    ASSERT_EQ(result.final_labels.labels.size(), result.unique.size());
    for (const int label : result.final_labels.labels) {
        EXPECT_TRUE(label == cluster::kNoise ||
                    (label >= 0 &&
                     label < static_cast<int>(result.final_labels.cluster_count)));
    }
    std::size_t membership = 0;
    for (const auto& members : result.final_labels.members()) {
        membership += members.size();
    }
    EXPECT_EQ(membership + result.final_labels.noise_count(), result.unique.size());

    // Unique values really are unique, >=2 bytes, and their occurrences
    // point at matching bytes.
    std::set<byte_vector> seen;
    for (std::size_t i = 0; i < result.unique.size(); ++i) {
        const byte_vector& value = result.unique.values[i];
        EXPECT_GE(value.size(), 2u);
        EXPECT_TRUE(seen.insert(value).second);
        for (const segmentation::segment& occ : result.unique.occurrences[i]) {
            const byte_view bytes = segmentation::segment_bytes(messages, occ);
            EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), value.begin(), value.end()));
        }
    }

    // Metrics well-formed against ground truth.
    const core::typed_segments typed = core::assign_types(truth, result.unique);
    const core::clustering_quality q =
        core::evaluate_clustering(result.final_labels, typed, truth.total_bytes());
    EXPECT_GE(q.precision, 0.0);
    EXPECT_LE(q.precision, 1.0);
    EXPECT_GE(q.recall, 0.0);
    EXPECT_LE(q.recall, 1.0);
    EXPECT_GE(q.coverage, 0.0);
    EXPECT_LE(q.coverage, 1.0);
    EXPECT_LE(q.f_score, 1.0);

    // Reports, semantics and value models never crash on any combination.
    const auto summaries = core::summarize_clusters(result);
    EXPECT_EQ(summaries.size(), [&] {
        std::size_t non_empty = 0;
        for (const auto& members : result.final_labels.members()) {
            non_empty += members.empty() ? 0 : 1;
        }
        return non_empty;
    }());
    (void)core::render_report(summaries);
    (void)core::deduce_semantics(messages, result);
    const core::cluster_value_models models = core::learn_value_models(result);
    EXPECT_EQ(models.models.size(), summaries.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, PipelineMatrix,
    ::testing::Combine(::testing::Values("NTP", "DNS", "NBNS", "DHCP", "SMB", "AWDL", "AU"),
                       ::testing::Values("true", "NEMESYS", "CSP", "Netzob")),
    [](const ::testing::TestParamInfo<Param>& info) {
        return std::string(std::get<0>(info.param)) + "_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace ftc
