// Unit and property tests for the CSP segmenter (segmentation/csp.hpp).
#include "segmentation/csp.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "protocols/registry.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ftc::segmentation {
namespace {

/// Trace whose messages all share the constant 0x63 0x82 0x53 0x63 at a
/// fixed position, surrounded by random bytes.
std::vector<byte_vector> trace_with_constant(rng& rand, std::size_t count) {
    std::vector<byte_vector> out;
    for (std::size_t i = 0; i < count; ++i) {
        byte_vector msg = rand.bytes(6);
        put_u32_be(msg, 0x63825363);
        put_bytes(msg, rand.bytes(6));
        out.push_back(std::move(msg));
    }
    return out;
}

TEST(Csp, MinesSharedConstantAsPattern) {
    rng rand(5);
    const auto messages = trace_with_constant(rand, 40);
    const csp_segmenter seg;
    const std::vector<byte_vector> patterns = seg.mine_patterns(messages, {});
    const byte_vector cookie{0x63, 0x82, 0x53, 0x63};
    bool found = false;
    for (const byte_vector& p : patterns) {
        if (p == cookie ||
            std::search(p.begin(), p.end(), cookie.begin(), cookie.end()) != p.end()) {
            found = true;
        }
    }
    EXPECT_TRUE(found) << "the magic-cookie constant was not mined";
}

TEST(Csp, PrefersMaximalPatterns) {
    rng rand(6);
    const auto messages = trace_with_constant(rand, 40);
    csp_options opt;
    opt.max_pattern_length = 4;
    const csp_segmenter seg(opt);
    const std::vector<byte_vector> patterns = seg.mine_patterns(messages, {});
    // No mined pattern may be a strict substring of another mined pattern.
    for (const byte_vector& a : patterns) {
        for (const byte_vector& b : patterns) {
            if (a.size() < b.size()) {
                EXPECT_EQ(std::search(b.begin(), b.end(), a.begin(), a.end()), b.end())
                    << "pattern contained in a longer mined pattern";
            }
        }
    }
}

TEST(Csp, BoundariesAtPatternEdges) {
    rng rand(7);
    const auto messages = trace_with_constant(rand, 40);
    const csp_segmenter seg;
    const message_segments out = seg.run(messages, {});
    // The constant sits at offsets [6, 10): most messages must have
    // boundaries there (random bytes can coincidentally extend a pattern,
    // so allow a few exceptions).
    std::size_t with_edges = 0;
    for (const auto& per_message : out) {
        bool start_edge = false;
        bool end_edge = false;
        for (const segment& s : per_message) {
            if (s.offset == 6) {
                start_edge = true;
            }
            if (s.offset + s.length == 10 || s.offset == 10) {
                end_edge = true;
            }
        }
        if (start_edge && end_edge) {
            ++with_edges;
        }
    }
    EXPECT_GT(with_edges, messages.size() * 3 / 4);
}

TEST(Csp, RandomTraceWithoutPatternsDegenerates) {
    // Pure random messages share no frequent n-grams: every message stays
    // one segment (the paper's small-trace weakness, in the extreme).
    rng rand(8);
    std::vector<byte_vector> messages;
    for (int i = 0; i < 30; ++i) {
        messages.push_back(rand.bytes(32));
    }
    const csp_segmenter seg;
    const message_segments out = seg.run(messages, {});
    std::size_t total = 0;
    for (const auto& per_message : out) {
        total += per_message.size();
    }
    EXPECT_EQ(total, messages.size());
}

TEST(Csp, SupportThresholdGovernsMining) {
    rng rand(9);
    // Constant present in only 30 % of messages.
    std::vector<byte_vector> messages;
    for (int i = 0; i < 40; ++i) {
        byte_vector msg = rand.bytes(5);
        if (i % 10 < 3) {
            put_u32_be(msg, 0xcafebabe);
        } else {
            put_bytes(msg, rand.bytes(4));
        }
        put_bytes(msg, rand.bytes(5));
        messages.push_back(std::move(msg));
    }
    csp_options strict;
    strict.min_support = 0.6;
    csp_options lenient;
    lenient.min_support = 0.2;
    const auto strict_patterns = csp_segmenter(strict).mine_patterns(messages, {});
    const auto lenient_patterns = csp_segmenter(lenient).mine_patterns(messages, {});
    EXPECT_GE(lenient_patterns.size(), strict_patterns.size());
}

TEST(Csp, RejectsInvalidOptions) {
    csp_options bad;
    bad.min_pattern_length = 1;
    const csp_segmenter seg(bad);
    EXPECT_THROW(seg.mine_patterns({{1, 2, 3}}, {}), precondition_error);
    csp_options inverted;
    inverted.min_pattern_length = 4;
    inverted.max_pattern_length = 2;
    EXPECT_THROW(csp_segmenter(inverted).mine_patterns({{1, 2, 3}}, {}), precondition_error);
}

TEST(Csp, DeadlineAborts) {
    rng rand(1);
    std::vector<byte_vector> messages;
    for (int i = 0; i < 512; ++i) {
        messages.push_back(rand.bytes(256));
    }
    const csp_segmenter seg;
    const deadline expired(0.0);
    EXPECT_THROW(seg.run(messages, expired), budget_exceeded_error);
}

// Property sweep across protocols: valid segmentation everywhere.
class CspInvariants
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {};

TEST_P(CspInvariants, SegmentsCoverMessagesExactly) {
    const auto [proto, seed] = GetParam();
    const protocols::trace t = protocols::generate_trace(proto, 30, seed);
    const std::vector<byte_vector> messages = message_bytes(t);
    const csp_segmenter seg;
    const message_segments out = seg.run(messages, {});
    EXPECT_NO_THROW(validate_segmentation(messages, out));
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, CspInvariants,
    ::testing::Combine(::testing::Values("NTP", "DNS", "NBNS", "DHCP", "SMB", "AWDL", "AU"),
                       ::testing::Values(3ull, 77ull)),
    [](const ::testing::TestParamInfo<std::tuple<const char*, std::uint64_t>>& info) {
        return std::string(std::get<0>(info.param)) + "_seed" +
               std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace ftc::segmentation
