// Unit tests for segment condensation and the dissimilarity matrix
// (dissim/matrix.hpp).
#include "dissim/matrix.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "dissim/canberra.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ftc::dissim {
namespace {

using segmentation::segment;

TEST(Condense, DeduplicatesValuesAndCountsOccurrences) {
    const std::vector<byte_vector> messages{
        {0x01, 0x02, 0x01, 0x02},
        {0x01, 0x02, 0x09, 0x09},
    };
    const segmentation::message_segments segs{
        {{0, 0, 2}, {0, 2, 2}},
        {{1, 0, 2}, {1, 2, 2}},
    };
    const unique_segments u = condense(messages, segs);
    ASSERT_EQ(u.size(), 2u);
    // Value {01,02} occurs three times, {09,09} once.
    std::size_t total = 0;
    bool found_triple = false;
    for (std::size_t i = 0; i < u.size(); ++i) {
        total += u.occurrences[i].size();
        if (u.values[i] == byte_vector{0x01, 0x02}) {
            EXPECT_EQ(u.occurrences[i].size(), 3u);
            found_triple = true;
        }
    }
    EXPECT_TRUE(found_triple);
    EXPECT_EQ(total, 4u);
    EXPECT_EQ(u.short_segments, 0u);
}

TEST(Condense, ExcludesShortSegments) {
    const std::vector<byte_vector> messages{{0xaa, 0x01, 0x02}};
    const segmentation::message_segments segs{
        {{0, 0, 1}, {0, 1, 2}},
    };
    const unique_segments u = condense(messages, segs, 2);
    EXPECT_EQ(u.size(), 1u);
    EXPECT_EQ(u.short_segments, 1u);
    EXPECT_EQ(u.values[0], (byte_vector{0x01, 0x02}));
}

TEST(Condense, MinLengthConfigurable) {
    const std::vector<byte_vector> messages{{0xaa, 0x01, 0x02}};
    const segmentation::message_segments segs{
        {{0, 0, 1}, {0, 1, 2}},
    };
    const unique_segments u = condense(messages, segs, 1);
    EXPECT_EQ(u.size(), 2u);
    EXPECT_EQ(u.short_segments, 0u);
}

TEST(Condense, AllShortSegmentsYieldEmptyResult) {
    const std::vector<byte_vector> messages{{0x01, 0x02, 0x03}};
    const segmentation::message_segments segs{
        {{0, 0, 1}, {0, 1, 1}, {0, 2, 1}},
    };
    const unique_segments u = condense(messages, segs, 2);
    EXPECT_EQ(u.size(), 0u);
    EXPECT_TRUE(u.values.empty());
    EXPECT_TRUE(u.occurrences.empty());
    EXPECT_EQ(u.short_segments, 3u);
}

TEST(Condense, DuplicateOnlyTraceCondensesToOneValue) {
    // Every message carries the same two-byte value: one unique segment,
    // with one occurrence per concrete appearance.
    const std::vector<byte_vector> messages{
        {0xca, 0xfe, 0xca, 0xfe},
        {0xca, 0xfe},
        {0xca, 0xfe},
    };
    const segmentation::message_segments segs{
        {{0, 0, 2}, {0, 2, 2}},
        {{1, 0, 2}},
        {{2, 0, 2}},
    };
    const unique_segments u = condense(messages, segs);
    ASSERT_EQ(u.size(), 1u);
    EXPECT_EQ(u.values[0], (byte_vector{0xca, 0xfe}));
    EXPECT_EQ(u.occurrences[0].size(), 4u);
    EXPECT_EQ(u.short_segments, 0u);
}

TEST(Condense, EmptySegmentationYieldsEmptyResult) {
    const std::vector<byte_vector> messages{{0x01, 0x02}};
    const unique_segments u = condense(messages, segmentation::message_segments{});
    EXPECT_EQ(u.size(), 0u);
    EXPECT_EQ(u.short_segments, 0u);
}

TEST(Matrix, SymmetricWithZeroDiagonal) {
    const std::vector<byte_vector> values{{1, 2}, {3, 4}, {1, 2, 3}};
    const dissimilarity_matrix m(values);
    ASSERT_EQ(m.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(m.at(i, i), 0.0);
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_DOUBLE_EQ(m.at(i, j), m.at(j, i));
        }
    }
}

TEST(Matrix, EntriesMatchDirectComputation) {
    const std::vector<byte_vector> values{{1, 2}, {3, 4}, {1, 2, 3}};
    const dissimilarity_matrix m(values);
    for (std::size_t i = 0; i < values.size(); ++i) {
        for (std::size_t j = 0; j < values.size(); ++j) {
            const double expected =
                i == j ? 0.0
                       : sliding_canberra_dissimilarity(values[i], values[j]);
            EXPECT_NEAR(m.at(i, j), expected, 1e-6);
        }
    }
}

TEST(Matrix, KthNnMatchesBruteForce) {
    rng rand(5);
    std::vector<byte_vector> values;
    for (int i = 0; i < 20; ++i) {
        values.push_back(rand.bytes(2 + rand.uniform(0, 6)));
    }
    const dissimilarity_matrix m(values);
    for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
        const std::vector<double> knn = m.kth_nn(k);
        ASSERT_EQ(knn.size(), values.size());
        for (std::size_t i = 0; i < values.size(); ++i) {
            std::vector<double> row;
            for (std::size_t j = 0; j < values.size(); ++j) {
                if (j != i) {
                    row.push_back(m.at(i, j));
                }
            }
            std::sort(row.begin(), row.end());
            EXPECT_NEAR(knn[i], row[k - 1], 1e-9) << "i=" << i << " k=" << k;
        }
    }
}

TEST(Matrix, KthNnClampsLargeK) {
    const std::vector<byte_vector> values{{1, 2}, {3, 4}, {5, 6}};
    const dissimilarity_matrix m(values);
    const std::vector<double> knn = m.kth_nn(99);
    ASSERT_EQ(knn.size(), 3u);  // clamped to k = n-1 = 2
}

TEST(Matrix, KthNnRejectsZeroK) {
    const std::vector<byte_vector> values{{1, 2}, {3, 4}};
    const dissimilarity_matrix m(values);
    EXPECT_THROW(m.kth_nn(0), precondition_error);
}

TEST(Matrix, KthNnOnTinyMatrixIsEmpty) {
    const std::vector<byte_vector> one{{1, 2}};
    const dissimilarity_matrix m(one);
    EXPECT_TRUE(m.kth_nn(1).empty());
}

TEST(Matrix, EmptyInputGivesEmptyMatrix) {
    const std::vector<byte_vector> none;
    const dissimilarity_matrix m(none);
    EXPECT_EQ(m.size(), 0u);
    EXPECT_TRUE(m.data().empty());
    EXPECT_TRUE(m.kth_nn(1).empty());
    EXPECT_TRUE(m.kth_nn(5).empty());
    EXPECT_TRUE(m.upper_triangle().empty());
}

TEST(Matrix, KthNnOnSingleElementIsEmptyForAnyK) {
    const std::vector<byte_vector> one{{1, 2}};
    const dissimilarity_matrix m(one);
    EXPECT_TRUE(m.kth_nn(1).empty());
    EXPECT_TRUE(m.kth_nn(2).empty());  // k == n
    EXPECT_TRUE(m.kth_nn(10).empty());
}

TEST(Matrix, KthNnOnTwoElements) {
    // With n = 2 the only neighbour is the other element; every k >= n-1
    // clamps to it.
    const std::vector<byte_vector> values{{1, 2}, {9, 9}};
    const dissimilarity_matrix m(values);
    const double expected = m.at(0, 1);
    ASSERT_GT(expected, 0.0);
    for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
        const std::vector<double> knn = m.kth_nn(k);
        ASSERT_EQ(knn.size(), 2u) << "k=" << k;
        EXPECT_DOUBLE_EQ(knn[0], expected);
        EXPECT_DOUBLE_EQ(knn[1], expected);
    }
}

TEST(Matrix, KthNnKEqualToNClampsToFurthestNeighbour) {
    const std::vector<byte_vector> values{{1, 2}, {3, 4}, {200, 200}};
    const dissimilarity_matrix m(values);
    const std::vector<double> clamped = m.kth_nn(values.size());  // k = n -> n-1
    const std::vector<double> furthest = m.kth_nn(values.size() - 1);
    ASSERT_EQ(clamped.size(), values.size());
    EXPECT_EQ(clamped, furthest);
}

TEST(Matrix, UpperTriangleHasExpectedSize) {
    const std::vector<byte_vector> values{{1, 2}, {3, 4}, {5, 6}, {7, 8}};
    const dissimilarity_matrix m(values);
    const std::vector<double> tri = m.upper_triangle();
    EXPECT_EQ(tri.size(), 6u);
    for (double d : tri) {
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, 1.0);
    }
}

TEST(Matrix, DeadlineAborts) {
    rng rand(1);
    std::vector<byte_vector> values;
    for (int i = 0; i < 600; ++i) {
        values.push_back(rand.bytes(16));
    }
    const deadline expired(0.0);
    EXPECT_THROW(dissimilarity_matrix(values, expired), budget_exceeded_error);
}

}  // namespace
}  // namespace ftc::dissim
