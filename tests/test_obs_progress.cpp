// The seqlock progress counters behind --progress and the telemetry
// sampler. Writers are the pipeline stages (relaxed atomics per work
// block); the single reader is the sampler thread. Under FTC_OBS_DISABLE
// every hook is a no-op and progress_now() reports "no stage".
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/progress.hpp"

namespace ftc::obs {
namespace {

#ifdef FTC_OBS_DISABLE

TEST(ObsProgress, CompiledOutReportsNoStage) {
    progress_stage("anything", 100);
    progress_add(5);
    const progress_snapshot p = progress_now();
    EXPECT_EQ(p.stage, nullptr);
    EXPECT_EQ(p.done, 0u);
    EXPECT_EQ(p.total, 0u);
}

#else

TEST(ObsProgress, StageAnnounceAndTick) {
    progress_stage("stage.one", 10);
    progress_add(3);
    progress_add(4);
    const progress_snapshot p = progress_now();
    ASSERT_NE(p.stage, nullptr);
    EXPECT_STREQ(p.stage, "stage.one");
    EXPECT_EQ(p.done, 7u);
    EXPECT_EQ(p.total, 10u);
}

TEST(ObsProgress, NewStageResetsDoneAndBumpsSeq) {
    progress_stage("stage.a", 5);
    progress_add(5);
    const progress_snapshot a = progress_now();
    progress_stage("stage.b", 0);  // unknown total
    const progress_snapshot b = progress_now();
    EXPECT_STREQ(b.stage, "stage.b");
    EXPECT_EQ(b.done, 0u);
    EXPECT_EQ(b.total, 0u);
    EXPECT_GT(b.stage_seq, a.stage_seq);
}

TEST(ObsProgress, ConcurrentTicksAllCounted) {
    progress_stage("stage.parallel", 4 * 10000);
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([] {
            for (int i = 0; i < 10000; ++i) {
                progress_add(1);
            }
        });
    }
    // A racing reader must always see a coherent snapshot: the announced
    // stage (no torn pointer) and done within [0, total].
    for (int i = 0; i < 1000; ++i) {
        const progress_snapshot p = progress_now();
        if (p.stage != nullptr) {
            EXPECT_STREQ(p.stage, "stage.parallel");
            EXPECT_LE(p.done, p.total);
        }
    }
    for (std::thread& w : writers) {
        w.join();
    }
    const progress_snapshot p = progress_now();
    EXPECT_EQ(p.done, 4u * 10000u);
}

TEST(ObsProgress, DoneMonotonicWithinStage) {
    progress_stage("stage.mono", 100);
    std::uint64_t last = 0;
    for (int i = 0; i < 100; ++i) {
        progress_add(1);
        const progress_snapshot p = progress_now();
        EXPECT_GE(p.done, last);
        last = p.done;
    }
    EXPECT_EQ(last, 100u);
}

#endif  // FTC_OBS_DISABLE

}  // namespace
}  // namespace ftc::obs
