// Unit tests for stopwatch and cooperative deadlines (util/stopwatch.hpp).
#include "util/stopwatch.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace ftc {
namespace {

TEST(Stopwatch, ElapsedGrowsMonotonically) {
    stopwatch w;
    const double t1 = w.elapsed_seconds();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const double t2 = w.elapsed_seconds();
    EXPECT_GE(t1, 0.0);
    EXPECT_GT(t2, t1);
}

TEST(Stopwatch, ElapsedNeverDecreases) {
    // Regression guard for the steady-clock audit: with a non-monotonic
    // clock source a step adjustment mid-run makes elapsed_seconds() go
    // backwards. Sample tightly so even a small step would be caught.
    stopwatch w;
    double last = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double now = w.elapsed_seconds();
        ASSERT_GE(now, last) << "elapsed went backwards at sample " << i;
        last = now;
    }
}

TEST(Stopwatch, ResetRestartsClock) {
    stopwatch w;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    w.reset();
    EXPECT_LT(w.elapsed_seconds(), 0.01);
}

TEST(Deadline, UnlimitedNeverExpires) {
    const deadline dl;
    EXPECT_FALSE(dl.expired());
    EXPECT_NO_THROW(dl.check("noop"));
}

TEST(Deadline, BoundedExpiresAfterBudget) {
    const deadline dl(0.02);
    EXPECT_FALSE(dl.expired());
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    EXPECT_TRUE(dl.expired());
    EXPECT_THROW(dl.check("test operation"), budget_exceeded_error);
}

TEST(Deadline, CheckMessageNamesOperation) {
    const deadline dl(0.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    try {
        dl.check("Netzob pairwise alignment");
        FAIL() << "expected budget_exceeded_error";
    } catch (const budget_exceeded_error& e) {
        EXPECT_NE(std::string(e.what()).find("Netzob pairwise alignment"), std::string::npos);
    }
}

TEST(Deadline, BudgetExceededIsAnFtcError) {
    // Callers catching ftc::error must see budget exhaustion too.
    const deadline dl(0.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_THROW(dl.check("x"), error);
}

}  // namespace
}  // namespace ftc
