// Unit tests for frame/capture building (pcap/encap.hpp).
#include "pcap/encap.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ftc::pcap {
namespace {

const mac_address kMacA{0x02, 0, 0, 0, 0, 1};
const mac_address kMacB{0x02, 0, 0, 0, 0, 2};

flow_key udp_flow() {
    return {make_ipv4(10, 1, 1, 1), make_ipv4(10, 1, 1, 2), 40000, 123, transport::udp};
}

flow_key tcp_flow() {
    return {make_ipv4(10, 1, 1, 1), make_ipv4(10, 1, 1, 2), 40001, 445, transport::tcp};
}

TEST(Encap, UdpFrameDecapsulatesToSamePayload) {
    const byte_vector payload{0x11, 0x22, 0x33};
    const byte_vector frame = build_udp_frame(kMacA, kMacB, udp_flow(), payload);
    capture cap;
    cap.link = linktype::ethernet;
    cap.packets.push_back({0, 0, frame});
    const auto datagrams = extract_datagrams(cap);
    ASSERT_EQ(datagrams.size(), 1u);
    EXPECT_EQ(datagrams[0].payload, payload);
    EXPECT_EQ(datagrams[0].flow, udp_flow());
}

TEST(Encap, TcpFrameCarriesSequenceNumber) {
    const byte_vector frame =
        build_tcp_frame(kMacA, kMacB, tcp_flow(), 0xabcd1234, byte_vector{1});
    const tcp_header tcp =
        parse_tcp(byte_view{frame}.subspan(ethernet_header::size + 20));
    EXPECT_EQ(tcp.seq, 0xabcd1234u);
}

TEST(Encap, NbssWrapEncodesLength) {
    const byte_vector msg(300, 0x41);
    const byte_vector framed = wrap_nbss(msg);
    ASSERT_EQ(framed.size(), 304u);
    EXPECT_EQ(framed[0], 0x00);
    EXPECT_EQ((framed[1] << 16) | (framed[2] << 8) | framed[3], 300);
}

TEST(Encap, NbssRejectsOversizedMessage) {
    const byte_vector huge(1 << 17, 0x00);
    EXPECT_THROW(wrap_nbss(huge), precondition_error);
}

TEST(Encap, CaptureBuilderUdpRoundTrip) {
    capture_builder builder(linktype::ethernet);
    builder.add_message(udp_flow(), byte_vector{1, 2, 3});
    builder.add_message(udp_flow().reversed(), byte_vector{4, 5});
    const capture cap = std::move(builder).finish();
    ASSERT_EQ(cap.packets.size(), 2u);
    const auto datagrams = extract_datagrams(cap);
    ASSERT_EQ(datagrams.size(), 2u);
    EXPECT_EQ(datagrams[0].payload, (byte_vector{1, 2, 3}));
    EXPECT_EQ(datagrams[1].payload, (byte_vector{4, 5}));
    EXPECT_EQ(datagrams[1].flow, udp_flow().reversed());
}

TEST(Encap, CaptureBuilderTcpSequencesPerFlow) {
    capture_builder builder(linktype::ethernet);
    builder.add_message(tcp_flow(), byte_vector{0xff, 'S', 'M', 'B', 1});
    builder.add_message(tcp_flow(), byte_vector{0xff, 'S', 'M', 'B', 2});
    const capture cap = std::move(builder).finish();
    ASSERT_EQ(cap.packets.size(), 2u);
    const auto datagrams = extract_datagrams(cap);
    ASSERT_EQ(datagrams.size(), 2u);
    // NBSS prefix is part of the reassembled message.
    EXPECT_EQ(datagrams[0].payload.size(), 4u + 5u);
    EXPECT_EQ(datagrams[0].payload[4], 0xff);
    EXPECT_EQ(datagrams[0].payload.back(), 1);
    EXPECT_EQ(datagrams[1].payload.back(), 2);
}

TEST(Encap, CaptureBuilderTimestampsAdvance) {
    capture_builder builder(linktype::ethernet);
    for (int i = 0; i < 3; ++i) {
        builder.add_message(udp_flow(), byte_vector{static_cast<std::uint8_t>(i)});
    }
    const capture cap = std::move(builder).finish();
    EXPECT_LT(cap.packets[0].ts_usec + cap.packets[0].ts_sec * 1000000.0,
              cap.packets[2].ts_usec + cap.packets[2].ts_sec * 1000000.0);
}

TEST(Encap, CaptureBuilderRawRequiresRawLink) {
    capture_builder eth(linktype::ethernet);
    EXPECT_THROW(eth.add_raw(byte_vector{1}), precondition_error);
    capture_builder raw(linktype::user0);
    EXPECT_THROW(raw.add_message(udp_flow(), byte_vector{1}), precondition_error);
    raw.add_raw(byte_vector{0x42});
    const capture cap = std::move(raw).finish();
    ASSERT_EQ(cap.packets.size(), 1u);
    EXPECT_EQ(cap.packets[0].data, (byte_vector{0x42}));
}

TEST(Encap, FullFileRoundTripThroughDisk) {
    capture_builder builder(linktype::ethernet);
    builder.add_message(udp_flow(), byte_vector{9, 8, 7});
    const capture cap = std::move(builder).finish();
    const auto path = std::filesystem::temp_directory_path() / "ftclust_encap_roundtrip.pcap";
    write_file(path, cap);
    const capture loaded = read_file(path);
    const auto datagrams = extract_datagrams(loaded);
    ASSERT_EQ(datagrams.size(), 1u);
    EXPECT_EQ(datagrams[0].payload, (byte_vector{9, 8, 7}));
    std::filesystem::remove(path);
}

}  // namespace
}  // namespace ftc::pcap
