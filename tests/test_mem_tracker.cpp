// Unit tests for the tracked-allocation subsystem (mem/mem.hpp): always-on
// accounting, the scoped governor, charge RAII semantics, the tracking
// allocator, and deterministic allocation-fault plans.
#include "mem/mem.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <thread>
#include <utility>

#include "testing/alloc_fault.hpp"
#include "util/error.hpp"

namespace ftc::mem {
namespace {

/// Every test works in deltas from the entry footprint: accounting is
/// process-global and other fixtures may leave tracked storage alive.
struct baseline {
    std::uint64_t bytes = current_bytes();
};

TEST(MemTracker, ChargeAndReleaseMoveTheCounters) {
    const baseline base;
    on_charge(1000, "test");
    EXPECT_EQ(current_bytes(), base.bytes + 1000);
    EXPECT_GE(peak_bytes(), base.bytes + 1000);
    on_release(1000);
    EXPECT_EQ(current_bytes(), base.bytes);
}

TEST(MemTracker, ReleaseSaturatesAtZero) {
    const baseline base;
    on_release(std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(current_bytes(), 0u);
    // Restore the entry footprint so later tests' deltas stay valid.
    if (base.bytes > 0) {
        on_charge(base.bytes, "test.restore");
    }
}

TEST(MemTracker, ResetPeakDropsToCurrent) {
    on_charge(4096, "test");
    on_release(4096);
    reset_peak();
    EXPECT_EQ(peak_bytes(), current_bytes());
}

TEST(MemTracker, TrackedAllocationsCounts) {
    const std::uint64_t before = tracked_allocations();
    on_charge(1, "test");
    on_release(1);
    EXPECT_GT(tracked_allocations(), before);
}

TEST(MemCharge, RaiiChargesAndReleases) {
    const baseline base;
    {
        const charge c(512, "test");
        EXPECT_EQ(c.bytes(), 512u);
        EXPECT_EQ(current_bytes(), base.bytes + 512);
    }
    EXPECT_EQ(current_bytes(), base.bytes);
}

TEST(MemCharge, CopyRecharges) {
    const baseline base;
    const charge a(100, "test");
    {
        const charge b(a);  // NOLINT(performance-unnecessary-copy-initialization)
        EXPECT_EQ(current_bytes(), base.bytes + 200);
    }
    EXPECT_EQ(current_bytes(), base.bytes + 100);
}

TEST(MemCharge, MoveTransfers) {
    const baseline base;
    charge a(100, "test");
    const charge b(std::move(a));
    EXPECT_EQ(current_bytes(), base.bytes + 100);
    EXPECT_EQ(a.bytes(), 0u);  // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(b.bytes(), 100u);
}

TEST(MemCharge, ReleaseIsIdempotent) {
    const baseline base;
    charge c(100, "test");
    c.release();
    c.release();
    EXPECT_EQ(current_bytes(), base.bytes);
}

TEST(MemVector, AllocationsAreTracked) {
    const baseline base;
    {
        mem::vector<float> v;
        v.assign(1024, 0.0f);
        EXPECT_GE(current_bytes(), base.bytes + 1024 * sizeof(float));
    }
    EXPECT_EQ(current_bytes(), base.bytes);
}

TEST(Governor, LimitThrowsTypedError) {
    const governor g(current_bytes() + 100);
    EXPECT_NO_THROW({
        const charge ok(50, "test");
    });
    EXPECT_THROW(
        {
            const charge too_big(200, "test");
        },
        memory_budget_exceeded_error);
    // A tripped charge must not leak into the books.
    EXPECT_LE(current_bytes(), g.limit());
}

TEST(Governor, IsABudgetExceededError) {
    const governor g(current_bytes() + 1);
    // Callers with generic partial-progress handling catch the base type.
    EXPECT_THROW(
        {
            const charge c(100, "test");
        },
        budget_exceeded_error);
}

TEST(Governor, NestsInnermostWins) {
    EXPECT_EQ(governor::active(), nullptr);
    const governor outer(current_bytes() + 1000000);
    {
        const governor inner(current_bytes() + 10);
        EXPECT_EQ(governor::active(), &inner);
        EXPECT_TRUE(would_exceed(100));
        EXPECT_FALSE(would_exceed(5));
    }
    EXPECT_EQ(governor::active(), &outer);
    EXPECT_FALSE(would_exceed(100));
}

TEST(Governor, InstallIsPerThreadAndInvisibleToOtherThreads) {
    // The stack is thread_local: a serve worker's per-session governor must
    // not leak a limit onto sibling workers sharing the process counters.
    ASSERT_EQ(governor::active(), nullptr);
    const governor mine(current_bytes() + 10);
    EXPECT_TRUE(would_exceed(100));

    const governor* seen = &mine;  // sentinel: must be overwritten by the thread
    bool exceeded = true;
    std::thread other([&] {
        seen = governor::active();
        exceeded = would_exceed(100);
        // A nested governor installed on this thread unwinds here, leaving
        // the spawning thread's stack untouched.
        const governor theirs(current_bytes() + 10);
        EXPECT_EQ(governor::active(), &theirs);
    });
    other.join();
    EXPECT_EQ(seen, nullptr);
    EXPECT_FALSE(exceeded);
    EXPECT_EQ(governor::active(), &mine);
}

TEST(Governor, UnlimitedGovernorNeverExceeds) {
    const governor g(0);
    EXPECT_FALSE(would_exceed(std::numeric_limits<std::uint64_t>::max()));
    EXPECT_NO_THROW({
        const charge c(1u << 20, "test");
    });
}

TEST(Governor, WouldExceedFalseWithoutGovernor) {
    ASSERT_EQ(governor::active(), nullptr);
    EXPECT_FALSE(would_exceed(std::numeric_limits<std::uint64_t>::max()));
}

TEST(FaultPlan, FailNthTripsExactlyOnce) {
    const testing::alloc_fault_injector inject = testing::alloc_fault_injector::fail_nth(3);
    EXPECT_NO_THROW({ const charge a(1, "test"); });
    EXPECT_NO_THROW({ const charge b(1, "test"); });
    EXPECT_THROW({ const charge c(1, "test"); }, memory_budget_exceeded_error);
    // One-shot: the countdown does not re-arm.
    EXPECT_NO_THROW({ const charge d(1, "test"); });
}

TEST(FaultPlan, FailAboveBytesActsAsHardCeiling) {
    const baseline base;
    const testing::alloc_fault_injector inject =
        testing::alloc_fault_injector::fail_above(base.bytes + 100);
    EXPECT_NO_THROW({
        const charge ok(50, "test");
    });
    EXPECT_THROW(
        {
            const charge too_big(200, "test");
        },
        memory_budget_exceeded_error);
}

TEST(FaultPlan, InjectorRestoresPreviousPlanOnDestruction) {
    ASSERT_FALSE(get_fault_plan().armed());
    {
        const testing::alloc_fault_injector inject =
            testing::alloc_fault_injector::fail_nth(1000);
        EXPECT_TRUE(get_fault_plan().armed());
        EXPECT_EQ(get_fault_plan().fail_nth, 1000u);
    }
    EXPECT_FALSE(get_fault_plan().armed());
}

TEST(FaultPlan, EnvArmingParsesBothKnobs) {
    ASSERT_FALSE(get_fault_plan().armed());
    ::setenv("FTC_ALLOC_FAIL_NTH", "7", 1);
    ::setenv("FTC_ALLOC_FAIL_ABOVE_BYTES", "64M", 1);
    EXPECT_TRUE(testing::arm_alloc_faults_from_env());
    EXPECT_EQ(get_fault_plan().fail_nth, 7u);
    EXPECT_EQ(get_fault_plan().fail_above_bytes, 64ull << 20);
    set_fault_plan({});
    ::unsetenv("FTC_ALLOC_FAIL_NTH");
    ::unsetenv("FTC_ALLOC_FAIL_ABOVE_BYTES");
    EXPECT_FALSE(testing::arm_alloc_faults_from_env());
    EXPECT_FALSE(get_fault_plan().armed());
}

}  // namespace
}  // namespace ftc::mem
