// Unit tests for endian-explicit serialization (util/byteio.hpp).
#include "util/byteio.hpp"

#include <gtest/gtest.h>

namespace ftc {
namespace {

TEST(ByteIo, PutU8AppendsSingleByte) {
    byte_vector out;
    put_u8(out, 0xab);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0xab);
}

TEST(ByteIo, PutU16BigEndianOrdersHighByteFirst) {
    byte_vector out;
    put_u16_be(out, 0x1234);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 0x12);
    EXPECT_EQ(out[1], 0x34);
}

TEST(ByteIo, PutU16LittleEndianOrdersLowByteFirst) {
    byte_vector out;
    put_u16_le(out, 0x1234);
    EXPECT_EQ(out[0], 0x34);
    EXPECT_EQ(out[1], 0x12);
}

TEST(ByteIo, PutU32BothEndiannesses) {
    byte_vector be;
    byte_vector le;
    put_u32_be(be, 0x01020304);
    put_u32_le(le, 0x01020304);
    EXPECT_EQ(be, (byte_vector{0x01, 0x02, 0x03, 0x04}));
    EXPECT_EQ(le, (byte_vector{0x04, 0x03, 0x02, 0x01}));
}

TEST(ByteIo, PutU64BothEndiannesses) {
    byte_vector be;
    byte_vector le;
    put_u64_be(be, 0x0102030405060708ULL);
    put_u64_le(le, 0x0102030405060708ULL);
    EXPECT_EQ(be, (byte_vector{1, 2, 3, 4, 5, 6, 7, 8}));
    EXPECT_EQ(le, (byte_vector{8, 7, 6, 5, 4, 3, 2, 1}));
}

TEST(ByteIo, RoundTripAllWidthsBigEndian) {
    byte_vector out;
    put_u8(out, 0x7f);
    put_u16_be(out, 0xbeef);
    put_u32_be(out, 0xdeadbeef);
    put_u64_be(out, 0x0123456789abcdefULL);
    EXPECT_EQ(get_u8(out, 0), 0x7f);
    EXPECT_EQ(get_u16_be(out, 1), 0xbeef);
    EXPECT_EQ(get_u32_be(out, 3), 0xdeadbeef);
    EXPECT_EQ(get_u64_be(out, 7), 0x0123456789abcdefULL);
}

TEST(ByteIo, RoundTripAllWidthsLittleEndian) {
    byte_vector out;
    put_u16_le(out, 0xbeef);
    put_u32_le(out, 0xdeadbeef);
    put_u64_le(out, 0x0123456789abcdefULL);
    EXPECT_EQ(get_u16_le(out, 0), 0xbeef);
    EXPECT_EQ(get_u32_le(out, 2), 0xdeadbeef);
    EXPECT_EQ(get_u64_le(out, 6), 0x0123456789abcdefULL);
}

TEST(ByteIo, PutBytesAndChars) {
    byte_vector out;
    const byte_vector data{0x01, 0x02};
    put_bytes(out, data);
    put_chars(out, "AB");
    EXPECT_EQ(out, (byte_vector{0x01, 0x02, 'A', 'B'}));
}

TEST(ByteIo, PutFillRepeatsValue) {
    byte_vector out;
    put_fill(out, 3, 0xcc);
    EXPECT_EQ(out, (byte_vector{0xcc, 0xcc, 0xcc}));
}

TEST(ByteIo, ReadersThrowOnOverrun) {
    const byte_vector data{0x01, 0x02, 0x03};
    EXPECT_THROW(get_u8(data, 3), parse_error);
    EXPECT_THROW(get_u16_be(data, 2), parse_error);
    EXPECT_THROW(get_u16_le(data, 2), parse_error);
    EXPECT_THROW(get_u32_be(data, 0), parse_error);
    EXPECT_THROW(get_u32_le(data, 0), parse_error);
    EXPECT_THROW(get_u64_be(data, 0), parse_error);
}

TEST(ByteIo, GetSliceValidatesBounds) {
    const byte_vector data{1, 2, 3, 4};
    const byte_view slice = get_slice(data, 1, 2);
    ASSERT_EQ(slice.size(), 2u);
    EXPECT_EQ(slice[0], 2);
    EXPECT_EQ(slice[1], 3);
    EXPECT_THROW(get_slice(data, 3, 2), parse_error);
    EXPECT_THROW(get_slice(data, 5, 0), parse_error);
}

TEST(ByteIo, GetSliceOfFullRangeAndEmpty) {
    const byte_vector data{1, 2};
    EXPECT_EQ(get_slice(data, 0, 2).size(), 2u);
    EXPECT_EQ(get_slice(data, 2, 0).size(), 0u);
}

}  // namespace
}  // namespace ftc
