// Unit tests of the sparse epsilon-neighborhood engine (dissim/sparse.hpp):
// every query it serves must agree bit for bit with the dense matrix
// adapter over the same values, at any thread count, any cap covering the
// request, and whether lists were freshly built or adopted from a
// checkpoint. Also covers the satellite contract of cluster::autoconf over
// capped lists: identical parameters when the cap covers k_max, a typed
// knn_cap_error when it does not.
#include "dissim/sparse.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cluster/autoconf.hpp"
#include "dissim/matrix.hpp"

namespace ftc::dissim {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// Random corpus with a spread of lengths (so bucket pruning engages) and
/// byte values away from zero (so Canberra terms stay well-conditioned).
std::vector<byte_vector> random_corpus(std::size_t n, std::uint64_t seed,
                                       std::size_t min_len = 2, std::size_t max_len = 20) {
    std::uint64_t rng = seed;
    std::vector<byte_vector> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t len = min_len + splitmix64(rng) % (max_len - min_len + 1);
        byte_vector v(len);
        for (std::size_t j = 0; j < len; ++j) {
            v[j] = static_cast<std::uint8_t>(splitmix64(rng) % 256);
        }
        out.push_back(std::move(v));
    }
    return out;
}

sparse_neighborhood make_sparse(const std::vector<byte_vector>& values, std::size_t cap,
                                std::size_t threads = 1) {
    sparse_build_options opts;
    opts.knn_cap = cap;
    opts.threads = threads;
    return sparse_neighborhood(values, opts);
}

const double kEpsilonGrid[] = {0.0, 0.01, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0};

TEST(SparseNeighborhood, NeighborsWithinMatchesDenseOnEpsilonGrid) {
    const auto values = random_corpus(120, 11);
    const dissimilarity_matrix matrix(values);
    const matrix_neighborhood dense(matrix);
    const sparse_neighborhood sparse = make_sparse(values, cluster::knn_k_max(values.size()));
    for (const double eps : kEpsilonGrid) {
        for (std::size_t i = 0; i < values.size(); ++i) {
            EXPECT_EQ(sparse.neighbors_within(i, eps), dense.neighbors_within(i, eps))
                << "i=" << i << " eps=" << eps;
        }
    }
}

TEST(SparseNeighborhood, KthNnMatchesDenseForEveryCoveredK) {
    const auto values = random_corpus(90, 23);
    const dissimilarity_matrix matrix(values);
    const std::size_t k_max = cluster::knn_k_max(values.size());
    const sparse_neighborhood sparse = make_sparse(values, k_max);
    for (std::size_t k = 1; k <= k_max; ++k) {
        EXPECT_EQ(sparse.kth_nn(k), matrix.kth_nn(k)) << "k=" << k;
    }
    EXPECT_EQ(sparse.kth_nn_many(k_max), matrix.kth_nn_many(k_max));
}

TEST(SparseNeighborhood, DissimilarityMatchesMatrixCells) {
    const auto values = random_corpus(60, 37);
    const dissimilarity_matrix matrix(values);
    const sparse_neighborhood sparse = make_sparse(values, 3);
    for (std::size_t i = 0; i < values.size(); ++i) {
        for (std::size_t j = 0; j < values.size(); ++j) {
            EXPECT_EQ(sparse.dissimilarity(i, j), matrix.at(i, j)) << i << "," << j;
        }
    }
    // A second sweep is served from the pair memo — still the same bits.
    for (std::size_t i = 0; i < values.size(); ++i) {
        for (std::size_t j = i + 1; j < values.size(); ++j) {
            EXPECT_EQ(sparse.dissimilarity(i, j), matrix.at(i, j));
        }
    }
}

TEST(SparseNeighborhood, LengthLowerBoundIsConservative) {
    const auto values = random_corpus(80, 41, 2, 40);
    const dissimilarity_matrix matrix(values);
    for (std::size_t i = 0; i < values.size(); ++i) {
        for (std::size_t j = i + 1; j < values.size(); ++j) {
            const float lb =
                sparse_neighborhood::length_lower_bound(values[i].size(), values[j].size());
            EXPECT_LE(static_cast<double>(lb), matrix.at(i, j))
                << values[i].size() << " vs " << values[j].size();
        }
    }
    EXPECT_EQ(sparse_neighborhood::length_lower_bound(7, 7), 0.0f);
    EXPECT_GE(sparse_neighborhood::length_lower_bound(2, 200), 0.0f);
    EXPECT_LT(sparse_neighborhood::length_lower_bound(2, 200), 1.0f);
}

TEST(SparseNeighborhood, BucketPruningSkipsPairsWithoutChangingResults) {
    // Two tight same-length families far apart in length: the lower bound
    // between families exceeds any intra-family k-NN threshold, so the
    // builder must never score a cross-family pair.
    std::vector<byte_vector> values;
    std::uint64_t rng = 53;
    for (std::size_t i = 0; i < 60; ++i) {
        const std::size_t len = (i % 2 == 0) ? 4 : 64;
        byte_vector v(len, static_cast<std::uint8_t>(160));
        v[splitmix64(rng) % len] = static_cast<std::uint8_t>(161 + splitmix64(rng) % 3);
        values.push_back(std::move(v));
    }
    const sparse_neighborhood sparse = make_sparse(values, cluster::knn_k_max(values.size()));
    const std::uint64_t all_pairs =
        static_cast<std::uint64_t>(values.size()) * (values.size() - 1) / 2;
    EXPECT_LT(sparse.pairs_scored(), all_pairs);
    EXPECT_EQ(sparse.bucket_count(), 2u);

    const dissimilarity_matrix matrix(values);
    const matrix_neighborhood dense(matrix);
    for (const double eps : kEpsilonGrid) {
        for (std::size_t i = 0; i < values.size(); ++i) {
            EXPECT_EQ(sparse.neighbors_within(i, eps), dense.neighbors_within(i, eps));
        }
    }
}

TEST(SparseNeighborhood, ListsAreBitwiseIdenticalAcrossThreadCounts) {
    const auto values = random_corpus(150, 67);
    const std::size_t cap = cluster::knn_k_max(values.size());
    const sparse_neighborhood serial = make_sparse(values, cap, 1);
    for (const std::size_t threads : {2u, 5u}) {
        const sparse_neighborhood parallel = make_sparse(values, cap, threads);
        ASSERT_EQ(parallel.capped().lists.size(), serial.capped().lists.size());
        for (std::size_t i = 0; i < serial.capped().lists.size(); ++i) {
            const auto& a = serial.capped().lists[i];
            const auto& b = parallel.capped().lists[i];
            ASSERT_EQ(a.size(), b.size()) << "i=" << i;
            for (std::size_t k = 0; k < a.size(); ++k) {
                EXPECT_EQ(a[k].id, b[k].id) << "i=" << i << " k=" << k;
                EXPECT_EQ(a[k].d, b[k].d) << "i=" << i << " k=" << k;
            }
        }
    }
}

TEST(SparseNeighborhood, AdoptedListsServeIdenticalQueries) {
    const auto values = random_corpus(70, 71);
    const std::size_t cap = cluster::knn_k_max(values.size());
    const sparse_neighborhood built = make_sparse(values, cap);
    capped_neighbors copy = built.capped();
    const sparse_neighborhood adopted(values, std::move(copy));
    EXPECT_EQ(adopted.knn_cap(), built.knn_cap());
    EXPECT_EQ(adopted.kth_nn_many(cap), built.kth_nn_many(cap));
    for (const double eps : kEpsilonGrid) {
        for (std::size_t i = 0; i < values.size(); ++i) {
            EXPECT_EQ(adopted.neighbors_within(i, eps), built.neighbors_within(i, eps));
        }
    }
}

TEST(SparseNeighborhood, RangeQueriesBeyondTheCapRescanExactly) {
    // A tiny cap forces the range path off the capped lists for any
    // realistic epsilon; answers must still match dense exactly, and a
    // repeated query (served from the rescan cache) must not drift.
    const auto values = random_corpus(80, 83);
    const dissimilarity_matrix matrix(values);
    const matrix_neighborhood dense(matrix);
    const sparse_neighborhood sparse = make_sparse(values, 2);
    for (const double eps : {0.3, 0.8, 1.0}) {
        for (std::size_t i = 0; i < values.size(); ++i) {
            const auto first = sparse.neighbors_within(i, eps);
            EXPECT_EQ(first, dense.neighbors_within(i, eps));
            EXPECT_EQ(sparse.neighbors_within(i, eps), first);
        }
    }
}

TEST(SparseAutoconf, MatchesDenseWhenCapCoversKmax) {
    const auto values = random_corpus(130, 97);
    const dissimilarity_matrix matrix(values);
    const sparse_neighborhood sparse = make_sparse(values, cluster::knn_k_max(values.size()));
    const cluster::autoconf_result from_dense = cluster::auto_configure(matrix);
    const cluster::autoconf_result from_sparse = cluster::auto_configure(sparse);
    EXPECT_EQ(from_sparse.epsilon, from_dense.epsilon);
    EXPECT_EQ(from_sparse.min_samples, from_dense.min_samples);
    EXPECT_EQ(from_sparse.selected_k, from_dense.selected_k);
    EXPECT_EQ(from_sparse.knee_found, from_dense.knee_found);

    const cluster::auto_cluster_result dense_cluster = cluster::auto_cluster(matrix);
    const cluster::auto_cluster_result sparse_cluster = cluster::auto_cluster(sparse);
    EXPECT_EQ(sparse_cluster.labels.labels, dense_cluster.labels.labels);
    EXPECT_EQ(sparse_cluster.labels.cluster_count, dense_cluster.labels.cluster_count);
    EXPECT_EQ(sparse_cluster.config.epsilon, dense_cluster.config.epsilon);
}

TEST(SparseAutoconf, UnderCappedSourceThrowsTypedError) {
    const auto values = random_corpus(200, 101);
    const std::size_t k_max = cluster::knn_k_max(values.size());
    ASSERT_GT(k_max, 2u);
    const sparse_neighborhood sparse = make_sparse(values, 2);
    EXPECT_THROW(sparse.kth_nn(k_max), knn_cap_error);
    EXPECT_THROW(sparse.kth_nn_many(k_max), knn_cap_error);
    EXPECT_THROW(cluster::auto_configure(sparse), knn_cap_error);
    // Covered requests still work on the same under-capped source.
    EXPECT_EQ(sparse.kth_nn(2).size(), values.size());
}

TEST(SparseNeighborhood, ParseAndNameRoundTripModes) {
    EXPECT_EQ(parse_neighborhood_mode("dense"), neighborhood_mode::dense);
    EXPECT_EQ(parse_neighborhood_mode("sparse"), neighborhood_mode::sparse);
    EXPECT_EQ(parse_neighborhood_mode("auto"), neighborhood_mode::auto_);
    EXPECT_STREQ(neighborhood_mode_name(neighborhood_mode::sparse), "sparse");
    EXPECT_THROW(parse_neighborhood_mode("bogus"), precondition_error);
}

}  // namespace
}  // namespace ftc::dissim
