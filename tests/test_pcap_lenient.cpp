// Golden corrupt-trace tests for the lenient ingestion path: fault-injected
// captures must complete with quarantined-record counts, cluster exactly
// like the clean subset of messages, and still fail fast in strict mode.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.hpp"
#include "pcap/decap.hpp"
#include "pcap/pcap.hpp"
#include "protocols/registry.hpp"
#include "segmentation/nemesys.hpp"
#include "segmentation/segment.hpp"
#include "testing/corrupter.hpp"

namespace ftc {
namespace {

struct golden_trace {
    byte_vector clean_bytes;
    byte_vector corrupt_bytes;
    testing::corruption_log log;
};

golden_trace make_golden(const char* protocol, std::size_t messages, std::uint64_t seed) {
    golden_trace g;
    g.clean_bytes = pcap::to_pcap_bytes(
        protocols::trace_to_capture(protocols::generate_trace(protocol, messages, seed)));
    testing::corruption_options opt;
    opt.fault_fraction = 0.1;  // the acceptance scenario: 10% of records
    opt.seed = seed;
    g.corrupt_bytes = testing::corrupt_pcap_bytes(g.clean_bytes, opt, &g.log);
    return g;
}

std::vector<byte_vector> payloads_of(const pcap::capture& cap, diag::error_sink& sink) {
    std::vector<byte_vector> out;
    for (pcap::datagram& d : pcap::extract_datagrams(cap, {}, sink)) {
        out.push_back(std::move(d.payload));
    }
    return out;
}

/// The messages of the clean capture minus the fault-injected records.
std::vector<byte_vector> clean_subset(const golden_trace& g) {
    diag::error_sink sink(diag::policy::lenient);
    const pcap::capture cap = pcap::from_pcap_bytes(g.clean_bytes, sink);
    std::vector<byte_vector> out;
    for (std::size_t i = 0; i < cap.packets.size(); ++i) {
        if (g.log.faulted(i)) {
            continue;
        }
        diag::error_sink one(diag::policy::lenient);
        pcap::capture single;
        single.link = cap.link;
        single.packets.push_back(cap.packets[i]);
        for (pcap::datagram& d : pcap::extract_datagrams(single, {}, one)) {
            out.push_back(std::move(d.payload));
        }
    }
    return out;
}

class PcapLenientGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(PcapLenientGolden, QuarantinesFaultsAndKeepsSurvivors) {
    const golden_trace g = make_golden(GetParam(), 60, 5);
    ASSERT_GT(g.log.faults.size(), 0u);

    diag::error_sink sink(diag::policy::lenient);
    const pcap::capture cap = pcap::from_pcap_bytes(g.corrupt_bytes, sink);
    const std::vector<byte_vector> survivors = payloads_of(cap, sink);

    // Every fault produced exactly one quarantined record, and the
    // surviving messages are exactly the clean subset, in order.
    EXPECT_EQ(sink.quarantined(), g.log.faults.size());
    EXPECT_EQ(survivors, clean_subset(g));

    // The quarantine summary names the counts.
    const std::string summary = sink.summary();
    EXPECT_NE(summary.find("quarantined"), std::string::npos) << summary;
}

TEST_P(PcapLenientGolden, StrictModeThrowsAtFirstBadRecord) {
    const golden_trace g = make_golden(GetParam(), 60, 5);
    ASSERT_GT(g.log.faults.size(), 0u);
    EXPECT_THROW(pcap::from_pcap_bytes(g.corrupt_bytes), parse_error);

    diag::error_sink strict(diag::policy::strict);
    EXPECT_THROW(pcap::from_pcap_bytes(g.corrupt_bytes, strict), parse_error);
    // Strict mode records nothing: it failed fast like the legacy reader.
    EXPECT_EQ(strict.quarantined(), 0u);
}

TEST_P(PcapLenientGolden, StrictModeIsByteIdenticalOnCleanInput) {
    const golden_trace g = make_golden(GetParam(), 60, 5);
    const pcap::capture legacy = pcap::from_pcap_bytes(g.clean_bytes);
    diag::error_sink strict(diag::policy::strict);
    const pcap::capture sinked = pcap::from_pcap_bytes(g.clean_bytes, strict);
    ASSERT_EQ(sinked.packets.size(), legacy.packets.size());
    for (std::size_t i = 0; i < legacy.packets.size(); ++i) {
        EXPECT_EQ(sinked.packets[i].data, legacy.packets[i].data);
        EXPECT_EQ(sinked.packets[i].ts_sec, legacy.packets[i].ts_sec);
        EXPECT_EQ(sinked.packets[i].ts_usec, legacy.packets[i].ts_usec);
    }
}

TEST_P(PcapLenientGolden, CorruptTraceClustersLikeCleanSubset) {
    const golden_trace g = make_golden(GetParam(), 60, 5);
    ASSERT_GT(g.log.faults.size(), 0u);

    diag::error_sink sink(diag::policy::lenient);
    const std::vector<byte_vector> survivors =
        payloads_of(pcap::from_pcap_bytes(g.corrupt_bytes, sink), sink);
    const std::vector<byte_vector> subset = clean_subset(g);
    ASSERT_EQ(survivors, subset);

    const segmentation::nemesys_segmenter segmenter;
    const core::pipeline_result corrupt_run = core::analyze(survivors, segmenter, {});
    const core::pipeline_result clean_run = core::analyze(subset, segmenter, {});
    EXPECT_EQ(corrupt_run.final_labels.labels, clean_run.final_labels.labels);
    EXPECT_EQ(corrupt_run.final_labels.cluster_count, clean_run.final_labels.cluster_count);
}

INSTANTIATE_TEST_SUITE_P(Protocols, PcapLenientGolden, ::testing::Values("DNS", "DHCP"));

TEST(PcapLenient, ResynchronizesAfterCorruptLengthField) {
    // Corrupt only length fields: the reader must quarantine each faulted
    // record and resynchronize on the next plausible header.
    const byte_vector clean = pcap::to_pcap_bytes(
        protocols::trace_to_capture(protocols::generate_trace("DNS", 40, 8)));
    testing::corruption_options opt;
    opt.fault_fraction = 0.15;
    opt.seed = 21;
    opt.flip_bits = false;
    opt.truncate_records = false;
    testing::corruption_log log;
    const byte_vector corrupt = testing::corrupt_pcap_bytes(clean, opt, &log);
    ASSERT_GT(log.faults.size(), 0u);

    diag::error_sink sink(diag::policy::lenient);
    const pcap::capture cap = pcap::from_pcap_bytes(corrupt, sink);
    const std::size_t total = pcap::from_pcap_bytes(clean).packets.size();
    EXPECT_EQ(cap.packets.size(), total - log.faults.size());
    EXPECT_EQ(sink.count(diag::category::record), sink.diagnostics().size());
    EXPECT_EQ(sink.quarantined(), log.faults.size());
}

TEST(PcapLenient, TruncatedTailIsQuarantinedNotFatal) {
    const byte_vector clean = pcap::to_pcap_bytes(
        protocols::trace_to_capture(protocols::generate_trace("DNS", 10, 8)));
    byte_vector truncated = clean;
    truncated.resize(truncated.size() - 5);  // cut into the last record

    EXPECT_THROW(pcap::from_pcap_bytes(truncated), parse_error);

    diag::error_sink sink(diag::policy::lenient);
    const pcap::capture cap = pcap::from_pcap_bytes(truncated, sink);
    EXPECT_EQ(cap.packets.size(), 9u);
    EXPECT_EQ(sink.quarantined(), 1u);
}

TEST(PcapLenient, GlobalHeaderErrorsStayFatal) {
    diag::error_sink sink(diag::policy::lenient);
    const byte_vector junk(64, 0x00);
    EXPECT_THROW(pcap::from_pcap_bytes(junk, sink), parse_error);
    const byte_vector tiny(8, 0x00);
    EXPECT_THROW(pcap::from_pcap_bytes(tiny, sink), parse_error);
}

TEST(PcapLenient, SegmentLenientQuarantinesEmptyMessages) {
    const std::vector<byte_vector> messages = {
        byte_vector{1, 2, 3, 4, 5, 6},
        byte_vector{},  // unsegmentable
        byte_vector{9, 8, 7, 6, 5, 4},
    };
    const segmentation::nemesys_segmenter segmenter;
    diag::error_sink sink(diag::policy::lenient);
    const segmentation::lenient_segmentation out =
        segmentation::segment_lenient(segmenter, messages, deadline(), sink);
    ASSERT_EQ(out.messages.size(), 2u);
    EXPECT_EQ(out.surviving, (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(out.segments.size(), 2u);
    EXPECT_EQ(sink.count(diag::category::segmentation), 1u);
    EXPECT_EQ(sink.quarantined(), 1u);

    // Strict mode passes empties through untouched (legacy behavior).
    diag::error_sink strict(diag::policy::strict);
    const segmentation::lenient_segmentation all =
        segmentation::segment_lenient(segmenter, messages, deadline(), strict);
    EXPECT_EQ(all.messages.size(), 3u);
    EXPECT_TRUE(strict.empty());
}

}  // namespace
}  // namespace ftc
