// Fault-isolated session execution: accepted jobs produce reports
// byte-identical to the batch pipeline, failures are typed and per-job,
// admission control sheds politely, and recovery replays journaled jobs
// to the same bytes.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "pcap/decap.hpp"
#include "pcap/pcap.hpp"
#include "segmentation/segment.hpp"
#include "serve/session.hpp"
#include "serve_test_util.hpp"
#include "util/stopwatch.hpp"

namespace ftc::serve {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const char* name) {
    const fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    return dir;
}

std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// What `ftclust analyze --report-out` writes for the same capture bytes
/// and session options — the reference the daemon must hit byte for byte.
std::string batch_report(const byte_vector& raw, const serve_options& options) {
    diag::error_sink sink(diag::policy::lenient);
    const pcap::capture cap = pcap::from_pcap_bytes(raw, sink);
    std::vector<byte_vector> messages;
    for (pcap::datagram& d : pcap::extract_datagrams(cap, {}, sink)) {
        messages.push_back(std::move(d.payload));
    }
    const auto segmenter = segmentation::make_segmenter(options.segmenter);
    const deadline dl(options.session_budget_seconds);
    segmentation::lenient_segmentation segmented =
        segmentation::segment_lenient(*segmenter, messages, dl, sink);
    core::pipeline_options opt;
    opt.budget_seconds = options.session_budget_seconds;
    opt.threads = options.pipeline_threads;
    core::pipeline_seed seed;
    seed.segments = std::move(segmented.segments);
    const core::pipeline_result result =
        core::analyze_seeded(segmented.messages, nullptr, std::move(seed), opt);
    return core::render_report(core::summarize_clusters(result));
}

serve_options small_options() {
    serve_options options;
    options.sessions = 2;
    options.pipeline_threads = 1;
    options.session_budget_seconds = 60;
    return options;
}

TEST(ServeSession, CompletedJobMatchesBatchReportByteForByte) {
    const byte_vector raw = serve_test::make_capture_bytes("NTP", 40, 5);
    spool journal(fresh_dir("ftc_serve_session_batch"));
    session_manager sessions(journal, small_options());
    sessions.start();

    const admission verdict = sessions.submit(byte_view{raw.data(), raw.size()});
    ASSERT_TRUE(verdict.accepted) << verdict.reason;
    sessions.drain();

    const std::optional<job_status> status = sessions.status(verdict.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, job_state::done);
    EXPECT_EQ(slurp(journal.report_file(verdict.id)), batch_report(raw, small_options()));
}

TEST(ServeSession, MalformedPayloadIsTypedPerJobFailure) {
    spool journal(fresh_dir("ftc_serve_session_bad"));
    session_manager sessions(journal, small_options());
    sessions.start();

    const byte_vector garbage(64, std::uint8_t{0xAB});
    const admission verdict = sessions.submit(byte_view{garbage.data(), garbage.size()});
    ASSERT_TRUE(verdict.accepted);
    sessions.drain();

    const std::optional<job_status> status = sessions.status(verdict.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, job_state::failed);
    EXPECT_FALSE(status->error.empty());

    // The failure is journaled, and the pool keeps serving: a good job
    // after a bad one completes normally.
    diag::error_sink sink(diag::policy::lenient);
    const std::vector<spool_entry> entries = journal.scan(sink);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].phase, job_phase::failed);

    const byte_vector good = serve_test::make_capture_bytes("NTP", 30, 2);
    const admission second = sessions.submit(byte_view{good.data(), good.size()});
    ASSERT_TRUE(second.accepted);
    sessions.drain();
    EXPECT_EQ(sessions.status(second.id)->state, job_state::done);
}

TEST(ServeSession, SubmitBeforeStartIsShed) {
    spool journal(fresh_dir("ftc_serve_session_unstarted"));
    session_manager sessions(journal, small_options());
    const byte_vector raw = serve_test::make_capture_bytes("NTP", 10, 1);
    const admission verdict = sessions.submit(byte_view{raw.data(), raw.size()});
    EXPECT_FALSE(verdict.accepted);
    EXPECT_EQ(verdict.reason, "stopping");
    // Nothing was journaled for a shed submission.
    diag::error_sink sink(diag::policy::lenient);
    EXPECT_TRUE(journal.scan(sink).empty());
}

TEST(ServeSession, MemoryProjectionShedsBeforeAccepting) {
    spool journal(fresh_dir("ftc_serve_session_memshed"));
    serve_options options = small_options();
    options.max_memory = 1024;  // tiny ceiling: any real capture projects past it
    session_manager sessions(journal, options);
    sessions.start();
    const byte_vector raw = serve_test::make_capture_bytes("DNS", 40, 9);
    const admission verdict = sessions.submit(byte_view{raw.data(), raw.size()});
    EXPECT_FALSE(verdict.accepted);
    EXPECT_EQ(verdict.reason, "memory-pressure");
}

TEST(ServeSession, RecoverReplaysJournaledJobsToIdenticalReports) {
    const fs::path dir = fresh_dir("ftc_serve_session_recover");
    const byte_vector raw = serve_test::make_capture_bytes("DNS", 50, 7);
    // Journal a job as a crashed daemon would have: accepted, never run.
    {
        spool journal(dir);
        (void)journal.append(byte_view{raw.data(), raw.size()});
    }
    spool journal(dir);
    session_manager sessions(journal, small_options());
    diag::error_sink sink(diag::policy::lenient);
    EXPECT_EQ(sessions.recover(sink), 1u);
    sessions.start();
    sessions.drain();

    const std::optional<job_status> status = sessions.status(1);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, job_state::done);
    EXPECT_TRUE(status->recovered);
    EXPECT_EQ(slurp(journal.report_file(1)), batch_report(raw, small_options()));
}

TEST(ServeSession, PressureDegradesSessionsResultNeutrally) {
    const fs::path dir = fresh_dir("ftc_serve_session_degrade");
    const byte_vector raw = serve_test::make_capture_bytes("NTP", 40, 5);
    // Journal two jobs before the manager exists: with one worker and a
    // depth-2 queue, the first session starts while the second still
    // queues — a deterministic half-full pressure window.
    {
        spool seeded(dir);
        (void)seeded.append(byte_view{raw.data(), raw.size()});
        (void)seeded.append(byte_view{raw.data(), raw.size()});
    }
    spool journal(dir);
    serve_options options = small_options();
    options.sessions = 1;
    options.queue_depth = 2;
    session_manager sessions(journal, options);
    diag::error_sink sink(diag::policy::lenient);
    EXPECT_EQ(sessions.recover(sink), 2u);
    EXPECT_EQ(sessions.pressure_level(), 1);
    sessions.start();
    sessions.drain();

    const std::optional<job_status> first = sessions.status(1);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->state, job_state::done);
    EXPECT_TRUE(first->degraded);
    EXPECT_EQ(sessions.status(2)->state, job_state::done);
    // Degradation (sparse neighborhood, tightened cap) is result-neutral:
    // both reports still match the unpressured batch reference.
    const std::string reference = batch_report(raw, small_options());
    EXPECT_EQ(slurp(journal.report_file(1)), reference);
    EXPECT_EQ(slurp(journal.report_file(2)), reference);
}

TEST(ServeSession, StopLeavesQueuedJobsJournaledForReplay) {
    spool journal(fresh_dir("ftc_serve_session_stopqueue"));
    serve_options options = small_options();
    options.sessions = 1;
    options.queue_depth = 8;
    session_manager sessions(journal, options);
    sessions.start();
    const byte_vector raw = serve_test::make_capture_bytes("NTP", 30, 3);
    const admission a = sessions.submit(byte_view{raw.data(), raw.size()});
    const admission b = sessions.submit(byte_view{raw.data(), raw.size()});
    ASSERT_TRUE(a.accepted);
    ASSERT_TRUE(b.accepted);
    sessions.stop();

    // Whatever did not finish is still journaled `accepted`; nothing is
    // lost between stop and the next start.
    diag::error_sink sink(diag::policy::lenient);
    std::size_t unfinished = 0;
    for (const spool_entry& entry : journal.scan(sink)) {
        EXPECT_NE(entry.phase, job_phase::failed);
        unfinished += entry.phase == job_phase::accepted ? 1 : 0;
    }
    spool reopened(journal.dir());
    session_manager second(reopened, options);
    EXPECT_EQ(second.recover(sink), unfinished);
    second.start();
    second.drain();
    EXPECT_EQ(second.status(a.id)->state, job_state::done);
    EXPECT_EQ(second.status(b.id)->state, job_state::done);
}

}  // namespace
}  // namespace ftc::serve
