// Property tests: every protocol generator round-trips through its
// dissector and through real pcap encapsulation (protocols/registry.hpp).
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "pcap/decap.hpp"
#include "protocols/registry.hpp"
#include "util/check.hpp"

namespace ftc::protocols {
namespace {

using Param = std::tuple<const char*, std::uint64_t>;

class ProtocolRoundTrip : public ::testing::TestWithParam<Param> {
protected:
    std::string protocol() const { return std::get<0>(GetParam()); }
    std::uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(ProtocolRoundTrip, AnnotationsAreValid) {
    const trace t = generate_trace(protocol(), 40, seed());
    ASSERT_EQ(t.messages.size(), 40u);
    for (const annotated_message& msg : t.messages) {
        EXPECT_NO_THROW(validate_annotations(msg));
        EXPECT_FALSE(msg.bytes.empty());
    }
}

TEST_P(ProtocolRoundTrip, DissectorAgreesWithGenerator) {
    const trace t = generate_trace(protocol(), 40, seed());
    for (const annotated_message& msg : t.messages) {
        const std::vector<field_annotation> dissected = dissect(protocol(), msg.bytes);
        ASSERT_EQ(dissected.size(), msg.fields.size())
            << protocol() << ": field count mismatch";
        for (std::size_t f = 0; f < dissected.size(); ++f) {
            EXPECT_EQ(dissected[f].offset, msg.fields[f].offset)
                << protocol() << " field " << f << " (" << msg.fields[f].name << ")";
            EXPECT_EQ(dissected[f].length, msg.fields[f].length)
                << protocol() << " field " << f << " (" << msg.fields[f].name << ")";
            EXPECT_EQ(dissected[f].type, msg.fields[f].type)
                << protocol() << " field " << f << " (" << msg.fields[f].name << ")";
        }
    }
}

TEST_P(ProtocolRoundTrip, GeneratedMessagesAreUnique) {
    const trace t = generate_trace(protocol(), 60, seed());
    std::set<byte_vector> seen;
    for (const annotated_message& msg : t.messages) {
        EXPECT_TRUE(seen.insert(msg.bytes).second);
    }
}

TEST_P(ProtocolRoundTrip, SameSeedReproducesTrace) {
    const trace a = generate_trace(protocol(), 20, seed());
    const trace b = generate_trace(protocol(), 20, seed());
    ASSERT_EQ(a.messages.size(), b.messages.size());
    for (std::size_t i = 0; i < a.messages.size(); ++i) {
        EXPECT_EQ(a.messages[i].bytes, b.messages[i].bytes);
    }
}

TEST_P(ProtocolRoundTrip, PcapRoundTripPreservesPayloads) {
    const trace t = generate_trace(protocol(), 30, seed());
    const pcap::capture cap = trace_to_capture(t);
    // Through real file bytes, not just in-memory structures.
    const pcap::capture reparsed = pcap::from_pcap_bytes(pcap::to_pcap_bytes(cap));
    const std::vector<byte_vector> payloads = capture_payloads(reparsed);
    ASSERT_EQ(payloads.size(), t.messages.size());
    for (std::size_t i = 0; i < payloads.size(); ++i) {
        if (protocol() == "SMB") {
            // SMB payloads keep their NBSS session prefix after reassembly.
            ASSERT_GE(payloads[i].size(), 4u);
            const byte_vector body(payloads[i].begin() + 4, payloads[i].end());
            EXPECT_EQ(body, t.messages[i].bytes);
        } else {
            EXPECT_EQ(payloads[i], t.messages[i].bytes);
        }
    }
}

TEST_P(ProtocolRoundTrip, WiresharkPathRebuildsGroundTruth) {
    // Generator -> pcap -> payload extraction -> dissector must yield the
    // exact ground truth the generator annotated (the substitution for the
    // paper's Wireshark-dissector pipeline).
    const trace t = generate_trace(protocol(), 25, seed());
    const pcap::capture cap = trace_to_capture(t);
    const trace rebuilt = trace_from_payloads(protocol(), capture_payloads(cap));
    ASSERT_EQ(rebuilt.messages.size(), t.messages.size());
    for (std::size_t i = 0; i < t.messages.size(); ++i) {
        EXPECT_EQ(rebuilt.messages[i].bytes, t.messages[i].bytes);
        ASSERT_EQ(rebuilt.messages[i].fields.size(), t.messages[i].fields.size());
        for (std::size_t f = 0; f < t.messages[i].fields.size(); ++f) {
            EXPECT_EQ(rebuilt.messages[i].fields[f].offset, t.messages[i].fields[f].offset);
            EXPECT_EQ(rebuilt.messages[i].fields[f].length, t.messages[i].fields[f].length);
            EXPECT_EQ(rebuilt.messages[i].fields[f].type, t.messages[i].fields[f].type);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolRoundTrip,
    ::testing::Combine(::testing::Values("NTP", "DNS", "NBNS", "DHCP", "SMB", "AWDL", "AU"),
                       ::testing::Values(1ull, 42ull, 20260706ull)),
    [](const ::testing::TestParamInfo<Param>& info) {
        return std::string(std::get<0>(info.param)) + "_seed" +
               std::to_string(std::get<1>(info.param));
    });

TEST(Registry, KnowsAllProtocols) {
    const auto names = protocol_names();
    EXPECT_EQ(names.size(), 7u);
    for (const auto name : names) {
        EXPECT_NO_THROW(make_source(name, 1));
    }
}

TEST(Registry, RejectsUnknownProtocol) {
    EXPECT_THROW(make_source("QUIC", 1), precondition_error);
    EXPECT_THROW(dissect("QUIC", byte_vector{}), precondition_error);
}

TEST(Registry, PaperTraceSizes) {
    EXPECT_EQ(paper_trace_size("NTP"), 1000u);
    EXPECT_EQ(paper_trace_size("AWDL"), 768u);
    EXPECT_EQ(paper_trace_size("AU"), 123u);
}

TEST(Registry, LinktypesMatchEncapsulation) {
    EXPECT_EQ(protocol_linktype("NTP"), pcap::linktype::ethernet);
    EXPECT_EQ(protocol_linktype("SMB"), pcap::linktype::ethernet);
    EXPECT_EQ(protocol_linktype("AWDL"), pcap::linktype::ieee802_11);
    EXPECT_EQ(protocol_linktype("AU"), pcap::linktype::user0);
}

TEST(Trace, DeduplicateDropsRepeatedPayloads) {
    trace t;
    t.protocol = "X";
    annotated_message m;
    m.bytes = {1, 2, 3};
    m.fields = {{0, 3, field_type::bytes, "b"}};
    t.messages = {m, m, m};
    const trace d = deduplicate(t);
    EXPECT_EQ(d.messages.size(), 1u);
}

TEST(Trace, TruncateKeepsPrefix) {
    trace t = generate_trace("NTP", 10, 3);
    const trace cut = truncate(t, 4);
    ASSERT_EQ(cut.messages.size(), 4u);
    EXPECT_EQ(cut.messages[0].bytes, t.messages[0].bytes);
    EXPECT_EQ(truncate(t, 100).messages.size(), 10u);
}

TEST(Trace, TotalBytesSumsMessageSizes) {
    const trace t = generate_trace("NTP", 5, 1);
    EXPECT_EQ(t.total_bytes(), 5u * 48u);
}

}  // namespace
}  // namespace ftc::protocols
