// Unit and property tests for DBSCAN (cluster/dbscan.hpp).
#include "cluster/dbscan.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ftc::cluster {
namespace {

/// Matrix from points on a line: d(i,j) = |x_i - x_j| (clamped to [0,1]).
dissim::dissimilarity_matrix line_matrix(const std::vector<double>& xs) {
    const std::size_t n = xs.size();
    std::vector<double> dense(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            dense[i * n + j] = std::min(1.0, std::abs(xs[i] - xs[j]));
        }
    }
    return dissim::dissimilarity_matrix::from_dense(dense, n);
}

TEST(Dbscan, TwoBlobsAndOutlier) {
    // Blob A at 0.0..0.03, blob B at 0.5..0.53, outlier at 0.9.
    const std::vector<double> xs{0.00, 0.01, 0.02, 0.03, 0.50, 0.51, 0.52, 0.53, 0.90};
    const auto m = line_matrix(xs);
    const cluster_labels r = dbscan(m, {.epsilon = 0.05, .min_samples = 3});
    EXPECT_EQ(r.cluster_count, 2u);
    EXPECT_EQ(r.noise_count(), 1u);
    EXPECT_EQ(r.labels[8], kNoise);
    // Blob members share labels.
    EXPECT_EQ(r.labels[0], r.labels[3]);
    EXPECT_EQ(r.labels[4], r.labels[7]);
    EXPECT_NE(r.labels[0], r.labels[4]);
}

TEST(Dbscan, EverythingOneClusterAtLargeEpsilon) {
    const std::vector<double> xs{0.0, 0.1, 0.2, 0.3, 0.4};
    const auto m = line_matrix(xs);
    const cluster_labels r = dbscan(m, {.epsilon = 0.5, .min_samples = 2});
    EXPECT_EQ(r.cluster_count, 1u);
    EXPECT_EQ(r.noise_count(), 0u);
}

TEST(Dbscan, EverythingNoiseAtTinyEpsilon) {
    const std::vector<double> xs{0.0, 0.2, 0.4, 0.6, 0.8};
    const auto m = line_matrix(xs);
    const cluster_labels r = dbscan(m, {.epsilon = 0.01, .min_samples = 2});
    EXPECT_EQ(r.cluster_count, 0u);
    EXPECT_EQ(r.noise_count(), 5u);
}

TEST(Dbscan, MinSamplesControlsDensityRequirement) {
    // Chain of 3 points, each 0.05 apart.
    const std::vector<double> xs{0.0, 0.05, 0.10};
    const auto m = line_matrix(xs);
    // min_samples=2: every point has one neighbour within eps -> chain forms.
    EXPECT_EQ(dbscan(m, {.epsilon = 0.06, .min_samples = 2}).cluster_count, 1u);
    // min_samples=4 (more than the 3 points): nothing can be a core point.
    EXPECT_EQ(dbscan(m, {.epsilon = 0.06, .min_samples = 4}).cluster_count, 0u);
}

TEST(Dbscan, BorderPointJoinsCluster) {
    // Dense core 0.00..0.02 plus a border point at 0.055 reachable from the
    // core but itself not core (needs 4 points within 0.04).
    const std::vector<double> xs{0.00, 0.01, 0.02, 0.055};
    const auto m = line_matrix(xs);
    const cluster_labels r = dbscan(m, {.epsilon = 0.04, .min_samples = 4});
    // Points 0..2 plus border all within one cluster? Core at 0.02 sees
    // {0.00,0.01,0.02,0.055} -> 4 neighbours -> core; border joins.
    EXPECT_EQ(r.cluster_count, 1u);
    EXPECT_EQ(r.labels[3], r.labels[0]);
}

TEST(Dbscan, ChainingThroughCorePoints) {
    // Points every 0.03: all mutually reachable through neighbours.
    std::vector<double> xs;
    for (int i = 0; i < 10; ++i) {
        xs.push_back(0.03 * i);
    }
    const auto m = line_matrix(xs);
    const cluster_labels r = dbscan(m, {.epsilon = 0.035, .min_samples = 3});
    EXPECT_EQ(r.cluster_count, 1u);
    EXPECT_EQ(r.noise_count(), 0u);
}

TEST(Dbscan, EmptyMatrix) {
    const auto m = dissim::dissimilarity_matrix::from_dense({}, 0);
    const cluster_labels r = dbscan(m, {.epsilon = 0.1, .min_samples = 2});
    EXPECT_EQ(r.cluster_count, 0u);
    EXPECT_TRUE(r.labels.empty());
}

TEST(Dbscan, RejectsInvalidParams) {
    const auto m = line_matrix({0.0, 0.5});
    EXPECT_THROW(dbscan(m, {.epsilon = -0.1, .min_samples = 2}), precondition_error);
    EXPECT_THROW(dbscan(m, {.epsilon = 0.1, .min_samples = 0}), precondition_error);
}

TEST(Dbscan, MembersPartitionNonNoise) {
    const std::vector<double> xs{0.0, 0.01, 0.02, 0.5, 0.51, 0.52, 0.95};
    const auto m = line_matrix(xs);
    const cluster_labels r = dbscan(m, {.epsilon = 0.05, .min_samples = 2});
    const auto members = r.members();
    std::size_t covered = 0;
    std::set<std::size_t> seen;
    for (const auto& cluster : members) {
        for (std::size_t idx : cluster) {
            EXPECT_TRUE(seen.insert(idx).second) << "index in two clusters";
            ++covered;
        }
    }
    EXPECT_EQ(covered + r.noise_count(), xs.size());
}

// Property sweep: structural invariants across random data and parameters.
class DbscanProps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DbscanProps, LabelsAreWellFormed) {
    rng rand(GetParam());
    std::vector<double> xs;
    const std::size_t n = 5 + rand.uniform(0, 60);
    for (std::size_t i = 0; i < n; ++i) {
        xs.push_back(rand.uniform01());
    }
    const auto m = line_matrix(xs);
    const dbscan_params params{rand.uniform_real(0.01, 0.3), 2 + rand.uniform(0, 4)};
    const cluster_labels r = dbscan(m, params);
    ASSERT_EQ(r.labels.size(), n);
    for (int label : r.labels) {
        EXPECT_TRUE(label == kNoise ||
                    (label >= 0 && label < static_cast<int>(r.cluster_count)));
    }
    // Every cluster id in [0, cluster_count) is actually used.
    std::vector<bool> used(r.cluster_count, false);
    for (int label : r.labels) {
        if (label != kNoise) {
            used[static_cast<std::size_t>(label)] = true;
        }
    }
    for (bool u : used) {
        EXPECT_TRUE(u);
    }
    // Every cluster contains at least one core point.
    for (const auto& members : r.members()) {
        bool has_core = false;
        for (std::size_t i : members) {
            std::size_t neighbours = 0;
            for (std::size_t j = 0; j < n; ++j) {
                if (m.at(i, j) <= params.epsilon) {
                    ++neighbours;
                }
            }
            if (neighbours >= params.min_samples) {
                has_core = true;
                break;
            }
        }
        EXPECT_TRUE(has_core);
    }
    // No noise point is within epsilon of enough points to be core.
    for (std::size_t i = 0; i < n; ++i) {
        if (r.labels[i] != kNoise) {
            continue;
        }
        std::size_t neighbours = 0;
        for (std::size_t j = 0; j < n; ++j) {
            if (m.at(i, j) <= params.epsilon) {
                ++neighbours;
            }
        }
        EXPECT_LT(neighbours, params.min_samples);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbscanProps, ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace ftc::cluster
