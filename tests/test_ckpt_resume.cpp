// Integration tests of checkpoint save/load/resume (ckpt/manager.hpp): a
// resumed run must be bitwise identical to an uninterrupted one — across
// thread counts and kernel backends — and damaged snapshots must cost
// exactly their own stage.
#include "ckpt/manager.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/pipeline.hpp"
#include "dissim/kernel.hpp"
#include "protocols/registry.hpp"
#include "testing/corrupter.hpp"
#include "util/check.hpp"
#include "util/diag.hpp"

namespace ftc::ckpt {
namespace {

namespace fs = std::filesystem;

struct scenario {
    std::vector<byte_vector> messages;
    segmentation::message_segments segments;
    core::pipeline_options options;
    options_fingerprint fp;
};

scenario make_scenario(const char* protocol = "DNS", std::size_t count = 60,
                       std::uint64_t seed = 7) {
    const protocols::trace t = protocols::generate_trace(protocol, count, seed);
    scenario s;
    s.messages = segmentation::message_bytes(t);
    s.segments = segmentation::segments_from_annotations(t);
    s.fp = fingerprint(s.options, "true", seed);
    return s;
}

/// Uninterrupted reference run (no checkpointing).
core::pipeline_result reference_run(const scenario& s) {
    return core::analyze_segments(s.messages, s.segments, s.options);
}

/// Checkpointed run: snapshot every stage into \p dir, like the CLI does.
core::pipeline_result checkpointed_run(const scenario& s, const fs::path& dir) {
    checkpoint_manager manager(dir, s.fp);
    manager.on_segments(s.messages, s.segments);
    core::pipeline_options opt = s.options;
    opt.observer = &manager;
    core::pipeline_seed seed;
    seed.segments = s.segments;
    core::pipeline_result result = core::analyze_seeded(s.messages, nullptr,
                                                        std::move(seed), opt);
    manager.mark_complete();
    return result;
}

/// Resume from whatever \p dir holds and run to completion.
core::pipeline_result resumed_run(const scenario& s, const fs::path& dir,
                                  diag::error_sink& sink,
                                  std::vector<std::string>* restored_stages = nullptr,
                                  std::size_t threads = 0) {
    checkpoint_manager manager(dir, s.fp);
    restored_state restored = manager.load(s.messages, sink);
    if (restored_stages != nullptr) {
        *restored_stages = restored.stages;
    }
    core::pipeline_options opt = s.options;
    opt.observer = &manager;
    opt.threads = threads;
    core::pipeline_seed seed = std::move(restored.seed);
    const std::vector<byte_vector>& messages =
        restored.has_segments() ? restored.messages : s.messages;
    if (!seed.segments.has_value()) {
        seed.segments = s.segments;
    }
    return core::analyze_seeded(messages, nullptr, std::move(seed), opt);
}

void expect_identical(const core::pipeline_result& a, const core::pipeline_result& b) {
    EXPECT_EQ(a.unique.values, b.unique.values);
    EXPECT_EQ(a.unique.occurrences, b.unique.occurrences);
    EXPECT_EQ(a.clustering.labels.labels, b.clustering.labels.labels);
    EXPECT_EQ(a.clustering.labels.cluster_count, b.clustering.labels.cluster_count);
    // Exact double equality on purpose: resume promises bitwise identity.
    EXPECT_EQ(a.clustering.config.epsilon, b.clustering.config.epsilon);
    EXPECT_EQ(a.clustering.config.min_samples, b.clustering.config.min_samples);
    EXPECT_EQ(a.final_labels.labels, b.final_labels.labels);
    EXPECT_EQ(a.final_labels.cluster_count, b.final_labels.cluster_count);
    EXPECT_EQ(a.refinement.merges.size(), b.refinement.merges.size());
    EXPECT_EQ(a.refinement.splits.size(), b.refinement.splits.size());
}

class CkptResume : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() / "ftc_ckpt_resume_test";
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    fs::path dir_;
};

TEST_F(CkptResume, CheckpointedRunMatchesPlainRunAndWritesAllFiles) {
    const scenario s = make_scenario();
    const core::pipeline_result plain = reference_run(s);
    const core::pipeline_result observed = checkpointed_run(s, dir_);
    // Observing a run must not change it.
    expect_identical(plain, observed);
    EXPECT_TRUE(fs::exists(dir_ / checkpoint_manager::kSegmentsFile));
    EXPECT_TRUE(fs::exists(dir_ / checkpoint_manager::kMatrixFile));
    EXPECT_TRUE(fs::exists(dir_ / checkpoint_manager::kClusteringFile));
    EXPECT_TRUE(fs::exists(dir_ / checkpoint_manager::kManifestFile));
}

TEST_F(CkptResume, FullResumeIsBitwiseIdentical) {
    const scenario s = make_scenario();
    const core::pipeline_result plain = reference_run(s);
    checkpointed_run(s, dir_);

    diag::error_sink sink(diag::policy::lenient);
    std::vector<std::string> restored;
    const core::pipeline_result resumed = resumed_run(s, dir_, sink, &restored);
    EXPECT_EQ(restored,
              (std::vector<std::string>{"segmentation", "dissimilarity", "clustering"}));
    EXPECT_TRUE(sink.empty());
    expect_identical(plain, resumed);
}

TEST_F(CkptResume, ResumeIsIdenticalAcrossThreadCountsAndKernelBackends) {
    const scenario s = make_scenario();
    const core::pipeline_result plain = reference_run(s);

    // Checkpoint written by a serial scalar run ...
    {
        dissim::kernel::scoped_backend scalar(dissim::kernel::backend::scalar);
        checkpointed_run(s, dir_);
    }
    // ... resumed under every other (threads, backend) shape. Drop the
    // matrix snapshot in a second pass so the recompute also crosses shapes.
    for (const std::size_t threads : {std::size_t{1}, std::size_t{0}}) {
        for (const auto backend :
             {dissim::kernel::backend::scalar, dissim::kernel::backend::lut}) {
            dissim::kernel::scoped_backend use(backend);
            diag::error_sink sink(diag::policy::lenient);
            const core::pipeline_result resumed =
                resumed_run(s, dir_, sink, nullptr, threads);
            expect_identical(plain, resumed);
        }
    }
    fs::remove(dir_ / checkpoint_manager::kMatrixFile);
    {
        dissim::kernel::scoped_backend lut(dissim::kernel::backend::lut);
        diag::error_sink sink(diag::policy::lenient);
        std::vector<std::string> restored;
        const core::pipeline_result resumed =
            resumed_run(s, dir_, sink, &restored, /*threads=*/0);
        EXPECT_EQ(restored, (std::vector<std::string>{"segmentation", "clustering"}));
        expect_identical(plain, resumed);
    }
}

TEST_F(CkptResume, CorruptedMatrixFileCostsOnlyThatStage) {
    const scenario s = make_scenario();
    const core::pipeline_result plain = reference_run(s);
    checkpointed_run(s, dir_);

    // Mangle matrix.ckpt with the corrupter; the per-section digests must
    // catch it, quarantine the file, and recompute only dissimilarity.
    testing::flip_random_bits_in_file(dir_ / checkpoint_manager::kMatrixFile, 16, 99);

    diag::error_sink sink(diag::policy::lenient);
    std::vector<std::string> restored;
    const core::pipeline_result resumed = resumed_run(s, dir_, sink, &restored);
    EXPECT_EQ(restored, (std::vector<std::string>{"segmentation", "clustering"}));
    ASSERT_EQ(sink.quarantined(), 1u);
    EXPECT_EQ(sink.diagnostics()[0].cat, diag::category::checkpoint);
    expect_identical(plain, resumed);
}

TEST_F(CkptResume, CorruptedCheckpointThrowsUnderStrictSink) {
    const scenario s = make_scenario();
    checkpointed_run(s, dir_);
    testing::flip_random_bits_in_file(dir_ / checkpoint_manager::kClusteringFile, 8, 5);

    checkpoint_manager manager(dir_, s.fp);
    diag::error_sink strict(diag::policy::strict);
    EXPECT_THROW(manager.load(s.messages, strict), parse_error);
}

TEST_F(CkptResume, FingerprintMismatchRestoresNothing) {
    const scenario s = make_scenario();
    checkpointed_run(s, dir_);

    // Same input, different result-shaping options -> different identity.
    scenario other = s;
    other.options.min_segment_length = 3;
    other.fp = fingerprint(other.options, "true", 7);

    checkpoint_manager manager(dir_, other.fp);
    diag::error_sink sink(diag::policy::lenient);
    restored_state restored = manager.load(other.messages, sink);
    EXPECT_TRUE(restored.stages.empty());
    EXPECT_TRUE(restored.seed.empty());
    EXPECT_EQ(sink.quarantined(), 3u);  // all three files rejected
}

TEST_F(CkptResume, EmptyDirectoryRestoresNothingSilently) {
    const scenario s = make_scenario();
    checkpoint_manager manager(dir_, s.fp);
    diag::error_sink sink(diag::policy::lenient);
    restored_state restored = manager.load(s.messages, sink);
    EXPECT_TRUE(restored.stages.empty());
    EXPECT_TRUE(sink.empty());  // a fresh directory is not damage
}

TEST_F(CkptResume, PartialCheckpointSeedsOnlyCompletedStages) {
    const scenario s = make_scenario();
    const core::pipeline_result plain = reference_run(s);
    checkpointed_run(s, dir_);
    // Simulate a run killed during clustering: that snapshot never landed.
    fs::remove(dir_ / checkpoint_manager::kClusteringFile);

    diag::error_sink sink(diag::policy::lenient);
    std::vector<std::string> restored;
    const core::pipeline_result resumed = resumed_run(s, dir_, sink, &restored);
    EXPECT_EQ(restored, (std::vector<std::string>{"segmentation", "dissimilarity"}));
    EXPECT_TRUE(sink.empty());
    expect_identical(plain, resumed);
}

TEST_F(CkptResume, ManifestTracksLifecycle) {
    const scenario s = make_scenario();
    checkpointed_run(s, dir_);
    std::ifstream in(dir_ / checkpoint_manager::kManifestFile);
    const std::string manifest{std::istreambuf_iterator<char>(in),
                               std::istreambuf_iterator<char>()};
    EXPECT_NE(manifest.find("\"status\":\"complete\""), std::string::npos) << manifest;
    EXPECT_NE(manifest.find("\"stage\":\"clustering\""), std::string::npos) << manifest;
}

}  // namespace
}  // namespace ftc::ckpt
