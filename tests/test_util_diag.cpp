// Unit tests for the structured diagnostics sink (util/diag.hpp).
#include "util/diag.hpp"

#include <gtest/gtest.h>

namespace ftc::diag {
namespace {

diagnostic record_fault(std::size_t index, const char* detail) {
    return {category::record, severity::error, index, 24 + 16 * index, detail};
}

TEST(Diag, StrictFailThrowsParseError) {
    error_sink sink(policy::strict);
    EXPECT_FALSE(sink.lenient());
    try {
        sink.fail(record_fault(0, "pcap: truncated record header"));
        FAIL() << "expected parse_error";
    } catch (const parse_error& e) {
        EXPECT_STREQ(e.what(), "pcap: truncated record header");
    }
    // Nothing was recorded: strict mode fails fast like the legacy code.
    EXPECT_TRUE(sink.empty());
}

TEST(Diag, LenientFailQuarantines) {
    error_sink sink(policy::lenient);
    EXPECT_TRUE(sink.lenient());
    EXPECT_NO_THROW(sink.fail(record_fault(3, "bad record")));
    EXPECT_EQ(sink.quarantined(), 1u);
    ASSERT_EQ(sink.diagnostics().size(), 1u);
    EXPECT_EQ(sink.diagnostics()[0].record_index, 3u);
    EXPECT_EQ(sink.diagnostics()[0].sev, severity::error);
}

TEST(Diag, ReportNeverThrows) {
    error_sink strict(policy::strict);
    EXPECT_NO_THROW(strict.report({category::decap, severity::error, 1, 0, "runt frame"}));
    EXPECT_NO_THROW(strict.report({category::decap, severity::note, 2, 0, "skipped ARP"}));
    EXPECT_EQ(strict.diagnostics().size(), 2u);
    EXPECT_EQ(strict.quarantined(), 1u);  // only the severity::error entry
}

TEST(Diag, CountsPerCategory) {
    error_sink sink(policy::lenient);
    sink.fail(record_fault(0, "a"));
    sink.fail(record_fault(1, "b"));
    sink.report({category::decap, severity::error, 2, 0, "c"});
    sink.report({category::segmentation, severity::warning, 3, 0, "d"});
    EXPECT_EQ(sink.count(category::record), 2u);
    EXPECT_EQ(sink.count(category::decap), 1u);
    EXPECT_EQ(sink.count(category::segmentation), 1u);
    EXPECT_EQ(sink.count(category::file_header), 0u);
    EXPECT_EQ(sink.quarantined(), 3u);
}

TEST(Diag, SummaryRollsUpCountsAndSeverities) {
    error_sink sink(policy::lenient);
    EXPECT_EQ(sink.summary(), "");

    sink.fail(record_fault(0, "bad"));
    sink.report({category::decap, severity::error, 1, 0, "checksum"});
    sink.report({category::decap, severity::error, 2, 0, "checksum"});
    sink.report({category::record, severity::note, 3, 0, "snapped"});
    const std::string summary = sink.summary();
    EXPECT_NE(summary.find("quarantined 3 records"), std::string::npos) << summary;
    EXPECT_NE(summary.find("1 record"), std::string::npos) << summary;
    EXPECT_NE(summary.find("2 decap"), std::string::npos) << summary;
    EXPECT_NE(summary.find("1 note"), std::string::npos) << summary;
}

TEST(Diag, MergePreservesOrder) {
    error_sink a(policy::lenient);
    error_sink b(policy::lenient);
    a.fail(record_fault(0, "first"));
    b.report({category::decap, severity::error, 1, 0, "second"});
    a.merge(b);
    ASSERT_EQ(a.diagnostics().size(), 2u);
    EXPECT_EQ(a.diagnostics()[0].detail, "first");
    EXPECT_EQ(a.diagnostics()[1].detail, "second");
}

TEST(Diag, CategoryAndSeverityNames) {
    EXPECT_EQ(category_name(category::record), "record");
    EXPECT_EQ(category_name(category::decap), "decap");
    EXPECT_EQ(category_name(category::file_header), "file-header");
    EXPECT_EQ(category_name(category::segmentation), "segmentation");
    EXPECT_EQ(category_name(category::resource), "resource");
    EXPECT_EQ(severity_name(severity::note), "note");
    EXPECT_EQ(severity_name(severity::warning), "warning");
    EXPECT_EQ(severity_name(severity::error), "error");
}

}  // namespace
}  // namespace ftc::diag
