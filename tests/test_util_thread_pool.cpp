// Unit tests for the parallel-execution subsystem (util/thread_pool.hpp):
// pool lifecycle, block coverage, exception propagation, range/grain edge
// cases, and cooperative deadline aborts mid-fan-out.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace ftc::util {
namespace {

TEST(ThreadPool, StartupAndShutdown) {
    // Construction spawns workers, destruction joins them; repeated
    // create/destroy cycles must not leak or deadlock.
    for (int round = 0; round < 3; ++round) {
        thread_pool pool(4);
        EXPECT_EQ(pool.thread_count(), 4u);
    }
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency) {
    EXPECT_GE(hardware_threads(), 1u);
    EXPECT_EQ(resolve_threads(0), hardware_threads());
    EXPECT_EQ(resolve_threads(1), 1u);
    EXPECT_EQ(resolve_threads(7), 7u);
    thread_pool pool;  // 0 = hardware
    EXPECT_EQ(pool.thread_count(), hardware_threads());
}

TEST(ThreadPool, AbsurdThreadCountsAreClamped) {
    // A negative CLI value wrapped through size_t must not take the
    // process down trying to spawn SIZE_MAX workers.
    EXPECT_EQ(resolve_threads(static_cast<std::size_t>(-1)), max_threads());
    EXPECT_GE(max_threads(), 64u);
    std::atomic<std::size_t> covered{0};
    parallel_for(100, 10, static_cast<std::size_t>(-1),
                 [&](std::size_t begin, std::size_t end) {
                     covered.fetch_add(end - begin, std::memory_order_relaxed);
                 });
    EXPECT_EQ(covered.load(), 100u);
}

TEST(ThreadPool, SingleLanePoolHasNoWorkers) {
    thread_pool pool(1);
    EXPECT_EQ(pool.thread_count(), 1u);
    std::vector<std::size_t> order;
    pool.parallel_for(10, 3, [&](std::size_t begin, std::size_t end) {
        order.push_back(begin);
        order.push_back(end);
    });
    // Serial path: blocks in order on the calling thread.
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 3, 3, 6, 6, 9, 9, 10}));
}

TEST(ThreadPool, EveryIndexProcessedExactlyOnce) {
    constexpr std::size_t n = 10'000;
    thread_pool pool(8);
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, 64, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        }
    });
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, PoolIsReusableAcrossCalls) {
    thread_pool pool(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallel_for(100, 7, [&](std::size_t begin, std::size_t end) {
            std::size_t local = 0;
            for (std::size_t i = begin; i < end; ++i) {
                local += i;
            }
            sum.fetch_add(local, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 100u * 99u / 2u);
    }
}

TEST(ThreadPool, EmptyRangeNeverInvokesBody) {
    thread_pool pool(4);
    std::atomic<int> calls{0};
    pool.parallel_for(0, 16, [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
    parallel_for(0, 16, 4, [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, GrainLargerThanRangeIsOneBlock) {
    thread_pool pool(4);
    std::atomic<int> calls{0};
    std::size_t seen_begin = 99, seen_end = 99;
    pool.parallel_for(5, 1000, [&](std::size_t begin, std::size_t end) {
        ++calls;
        seen_begin = begin;
        seen_end = end;
    });
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(seen_begin, 0u);
    EXPECT_EQ(seen_end, 5u);
}

TEST(ThreadPool, GrainZeroTreatedAsOne) {
    thread_pool pool(2);
    std::atomic<std::size_t> calls{0};
    pool.parallel_for(9, 0, [&](std::size_t begin, std::size_t end) {
        EXPECT_EQ(end, begin + 1);
        ++calls;
    });
    EXPECT_EQ(calls.load(), 9u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
    thread_pool pool(4);
    EXPECT_THROW(pool.parallel_for(100, 1,
                                   [&](std::size_t begin, std::size_t) {
                                       if (begin == 42) {
                                           throw std::runtime_error("lane failure");
                                       }
                                   }),
                 std::runtime_error);
    // The pool survives a failed fan-out and keeps working.
    std::atomic<std::size_t> done{0};
    pool.parallel_for(50, 5, [&](std::size_t begin, std::size_t end) {
        done.fetch_add(end - begin, std::memory_order_relaxed);
    });
    EXPECT_EQ(done.load(), 50u);
}

TEST(ThreadPool, ExceptionStopsRemainingBlocks) {
    // After one block throws, other lanes stop taking new blocks: with 256
    // pending blocks and an immediate failure, only a small prefix of the
    // fan-out (bounded by lanes in flight) can still run.
    thread_pool pool(4);
    std::atomic<std::size_t> executed{0};
    try {
        pool.parallel_for(256, 1, [&](std::size_t begin, std::size_t) {
            if (begin == 0) {
                throw std::runtime_error("abort fan-out");
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            executed.fetch_add(1, std::memory_order_relaxed);
        });
        FAIL() << "expected the fan-out to rethrow";
    } catch (const std::runtime_error&) {
    }
    EXPECT_LT(executed.load(), 256u);
}

TEST(ThreadPool, DeadlineAbortsMidFanout) {
    // Cooperative deadline checks inside the body abort the whole
    // parallel_for with the library's budget_exceeded_error.
    thread_pool pool(4);
    const deadline expired(0.0);
    std::atomic<std::size_t> blocks{0};
    EXPECT_THROW(pool.parallel_for(128, 1,
                                   [&](std::size_t, std::size_t) {
                                       blocks.fetch_add(1, std::memory_order_relaxed);
                                       expired.check("parallel stage");
                                   }),
                 budget_exceeded_error);
    EXPECT_LT(blocks.load(), 128u);
}

TEST(ThreadPool, FreeFunctionMatchesSerialResult) {
    // parallel_for writes f(i) into disjoint slots; any thread count must
    // produce the identical vector.
    constexpr std::size_t n = 4096;
    std::vector<std::uint64_t> serial(n), parallel(n);
    const auto f = [](std::size_t i) { return i * 2654435761u + 17u; };
    parallel_for(n, 64, 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            serial[i] = f(i);
        }
    });
    for (std::size_t threads : {2u, 4u, 8u}) {
        parallel.assign(n, 0);
        parallel_for(n, 64, threads, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                parallel[i] = f(i);
            }
        });
        EXPECT_EQ(parallel, serial) << "threads=" << threads;
    }
}

TEST(ThreadPool, FreeFunctionPropagatesExceptions) {
    EXPECT_THROW(parallel_for(10, 2, 4,
                              [](std::size_t begin, std::size_t) {
                                  if (begin >= 4) {
                                      throw std::runtime_error("boom");
                                  }
                              }),
                 std::runtime_error);
    EXPECT_THROW(parallel_for(10, 2, 1,
                              [](std::size_t begin, std::size_t) {
                                  if (begin >= 4) {
                                      throw std::runtime_error("boom");
                                  }
                              }),
                 std::runtime_error);
}

}  // namespace
}  // namespace ftc::util
