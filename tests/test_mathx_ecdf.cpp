// Unit and property tests for the ECDF (mathx/ecdf.hpp).
#include "mathx/ecdf.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ftc::mathx {
namespace {

TEST(Ecdf, KnownFractions) {
    const std::vector<double> samples{1.0, 2.0, 2.0, 4.0};
    const ecdf e(samples);
    EXPECT_DOUBLE_EQ(e(0.5), 0.0);
    EXPECT_DOUBLE_EQ(e(1.0), 0.25);
    EXPECT_DOUBLE_EQ(e(2.0), 0.75);
    EXPECT_DOUBLE_EQ(e(3.0), 0.75);
    EXPECT_DOUBLE_EQ(e(4.0), 1.0);
    EXPECT_DOUBLE_EQ(e(100.0), 1.0);
}

TEST(Ecdf, RejectsEmptySample) {
    EXPECT_THROW(ecdf(std::vector<double>{}), precondition_error);
}

TEST(Ecdf, SortedSamplesAreSorted) {
    const ecdf e(std::vector<double>{3.0, 1.0, 2.0});
    EXPECT_EQ(e.sorted_samples(), (std::vector<double>{1.0, 2.0, 3.0}));
    EXPECT_EQ(e.sample_count(), 3u);
}

TEST(Ecdf, CurveCollapsesDuplicatesAndEndsAtOne) {
    const ecdf e(std::vector<double>{1.0, 2.0, 2.0, 4.0});
    const curve c = e.as_curve();
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c.xs, (std::vector<double>{1.0, 2.0, 4.0}));
    EXPECT_EQ(c.ys, (std::vector<double>{0.25, 0.75, 1.0}));
}

TEST(Ecdf, TrimmedBelowKeepsStrictSubset) {
    const ecdf e(std::vector<double>{1.0, 2.0, 3.0, 4.0});
    const ecdf t = e.trimmed_below(3.0);
    EXPECT_EQ(t.sorted_samples(), (std::vector<double>{1.0, 2.0}));
    EXPECT_THROW(e.trimmed_below(0.5), precondition_error);
}

TEST(Ecdf, ResampleUniformSpansRange) {
    const ecdf e(std::vector<double>{0.0, 1.0, 2.0, 3.0, 4.0});
    const curve r = resample_uniform(e.as_curve(), 9);
    ASSERT_EQ(r.size(), 9u);
    EXPECT_DOUBLE_EQ(r.xs.front(), 0.0);
    EXPECT_DOUBLE_EQ(r.xs.back(), 4.0);
    // Evenly spaced x.
    for (std::size_t i = 1; i < r.xs.size(); ++i) {
        EXPECT_NEAR(r.xs[i] - r.xs[i - 1], 0.5, 1e-12);
    }
    // y stays within [0, 1] and non-decreasing.
    for (std::size_t i = 1; i < r.ys.size(); ++i) {
        EXPECT_GE(r.ys[i] + 1e-12, r.ys[i - 1]);
    }
}

TEST(Ecdf, ResampleDegenerateSingleLevel) {
    curve c;
    c.xs = {2.0};
    c.ys = {1.0};
    const curve r = resample_uniform(c, 4);
    ASSERT_EQ(r.size(), 4u);
    for (double x : r.xs) {
        EXPECT_DOUBLE_EQ(x, 2.0);
    }
}

TEST(Ecdf, ResampleValidatesArguments) {
    EXPECT_THROW(resample_uniform(curve{}, 4), precondition_error);
    curve c;
    c.xs = {1.0, 2.0};
    c.ys = {0.5, 1.0};
    EXPECT_THROW(resample_uniform(c, 1), precondition_error);
}

// Property sweep: ECDF invariants over random samples.
class EcdfProps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EcdfProps, MonotoneWithUnitRangeAndExactAtSamples) {
    rng rand(GetParam());
    std::vector<double> samples;
    const std::size_t n = 2 + rand.uniform(0, 200);
    for (std::size_t i = 0; i < n; ++i) {
        samples.push_back(rand.uniform_real(0.0, 5.0));
    }
    const ecdf e(samples);
    // Monotone in the query point.
    double prev = 0.0;
    for (double x = -1.0; x <= 6.0; x += 0.25) {
        const double y = e(x);
        EXPECT_GE(y, prev);
        EXPECT_GE(y, 0.0);
        EXPECT_LE(y, 1.0);
        prev = y;
    }
    // Curve ys strictly increase and end at exactly 1.
    const curve c = e.as_curve();
    for (std::size_t i = 1; i < c.size(); ++i) {
        EXPECT_GT(c.xs[i], c.xs[i - 1]);
        EXPECT_GT(c.ys[i], c.ys[i - 1]);
    }
    EXPECT_DOUBLE_EQ(c.ys.back(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdfProps, ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace ftc::mathx
