// Integration tests of the --neighborhood modes through core::analyze and
// the checkpoint manager: the sparse engine must leave every pipeline
// output byte-identical to the dense default, the auto threshold must pick
// dense for small corpora, and a sparse run must checkpoint/resume through
// neighbors.ckpt exactly like a dense run does through matrix.ckpt.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/manager.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "protocols/registry.hpp"
#include "segmentation/segment.hpp"
#include "util/diag.hpp"

namespace ftc {
namespace {

namespace fs = std::filesystem;

struct scenario {
    std::vector<byte_vector> messages;
    segmentation::message_segments segments;
};

scenario make_scenario(const char* protocol = "DNS", std::size_t count = 60,
                       std::uint64_t seed = 7) {
    const protocols::trace t = protocols::generate_trace(protocol, count, seed);
    return {segmentation::message_bytes(t), segmentation::segments_from_annotations(t)};
}

core::pipeline_result run_with_mode(const scenario& s, dissim::neighborhood_mode mode,
                                    std::size_t threads = 1) {
    core::pipeline_options opt;
    opt.neighborhood = mode;
    opt.threads = threads;
    return core::analyze_segments(s.messages, s.segments, opt);
}

void expect_identical(const core::pipeline_result& a, const core::pipeline_result& b) {
    EXPECT_EQ(a.unique.values, b.unique.values);
    EXPECT_EQ(a.clustering.labels.labels, b.clustering.labels.labels);
    EXPECT_EQ(a.clustering.labels.cluster_count, b.clustering.labels.cluster_count);
    // Exact double equality on purpose: the engines promise bitwise parity.
    EXPECT_EQ(a.clustering.config.epsilon, b.clustering.config.epsilon);
    EXPECT_EQ(a.clustering.config.min_samples, b.clustering.config.min_samples);
    EXPECT_EQ(a.clustering.config.selected_k, b.clustering.config.selected_k);
    EXPECT_EQ(a.final_labels.labels, b.final_labels.labels);
    EXPECT_EQ(a.final_labels.cluster_count, b.final_labels.cluster_count);
}

TEST(PipelineSparse, SparseAndDenseReportsAreByteIdentical) {
    const scenario s = make_scenario();
    const core::pipeline_result dense = run_with_mode(s, dissim::neighborhood_mode::dense);
    const core::pipeline_result sparse = run_with_mode(s, dissim::neighborhood_mode::sparse);
    expect_identical(dense, sparse);
    const std::string dense_report =
        core::render_report(core::summarize_clusters(dense));
    const std::string sparse_report =
        core::render_report(core::summarize_clusters(sparse));
    EXPECT_EQ(dense_report, sparse_report);
}

TEST(PipelineSparse, SparseResultsIdenticalAcrossThreadCountsAndProtocols) {
    for (const char* protocol : {"DHCP", "NTP"}) {
        const scenario s = make_scenario(protocol, 50, 11);
        const core::pipeline_result serial =
            run_with_mode(s, dissim::neighborhood_mode::sparse, 1);
        const core::pipeline_result parallel =
            run_with_mode(s, dissim::neighborhood_mode::sparse, 4);
        expect_identical(serial, parallel);
        const core::pipeline_result dense =
            run_with_mode(s, dissim::neighborhood_mode::dense, 1);
        expect_identical(dense, serial);
    }
}

/// Observer that records which dissimilarity snapshot hook fired.
struct mode_probe : core::stage_observer {
    bool saw_matrix = false;
    bool saw_neighbors = false;
    void on_matrix(const dissim::unique_segments&, const dissim::dissimilarity_matrix&,
                   const std::vector<std::vector<double>>&) override {
        saw_matrix = true;
    }
    void on_neighbors(const dissim::unique_segments&, const dissim::capped_neighbors&,
                      const std::vector<std::vector<double>>&) override {
        saw_neighbors = true;
    }
};

TEST(PipelineSparse, AutoModePicksDenseBelowTheUniqueThreshold) {
    const scenario s = make_scenario();
    core::pipeline_options opt;
    mode_probe probe;
    opt.observer = &probe;
    opt.neighborhood = dissim::neighborhood_mode::auto_;
    (void)core::analyze_segments(s.messages, s.segments, opt);
    EXPECT_TRUE(probe.saw_matrix);
    EXPECT_FALSE(probe.saw_neighbors);

    mode_probe forced;
    opt.observer = &forced;
    opt.neighborhood = dissim::neighborhood_mode::sparse;
    (void)core::analyze_segments(s.messages, s.segments, opt);
    EXPECT_TRUE(forced.saw_neighbors);
    EXPECT_FALSE(forced.saw_matrix);
}

class PipelineSparseCkpt : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() / "ftc_pipeline_sparse_ckpt";
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    fs::path dir_;
};

TEST_F(PipelineSparseCkpt, SparseRunResumesThroughNeighborsCkpt) {
    const scenario s = make_scenario();
    core::pipeline_options opt;
    opt.neighborhood = dissim::neighborhood_mode::sparse;
    const ckpt::options_fingerprint fp = ckpt::fingerprint(opt, "true", 7);
    const core::pipeline_result reference = core::analyze_segments(s.messages, s.segments, opt);

    {
        ckpt::checkpoint_manager manager(dir_, fp);
        manager.on_segments(s.messages, s.segments);
        core::pipeline_options copt = opt;
        copt.observer = &manager;
        core::pipeline_seed seed;
        seed.segments = s.segments;
        (void)core::analyze_seeded(s.messages, nullptr, std::move(seed), copt);
    }
    EXPECT_TRUE(fs::exists(dir_ / ckpt::checkpoint_manager::kNeighborsFile));
    EXPECT_FALSE(fs::exists(dir_ / ckpt::checkpoint_manager::kMatrixFile));

    // Drop the clustering snapshot so the resume actually consumes the
    // adopted neighbor lists instead of skipping straight to the labels.
    fs::remove(dir_ / ckpt::checkpoint_manager::kClusteringFile);

    diag::error_sink sink(diag::policy::lenient);
    ckpt::checkpoint_manager manager(dir_, fp);
    ckpt::restored_state restored = manager.load(s.messages, sink);
    EXPECT_EQ(restored.stages,
              (std::vector<std::string>{"segmentation", "dissimilarity"}));
    ASSERT_TRUE(restored.seed.neighbors.has_value());
    EXPECT_FALSE(restored.seed.matrix.has_value());

    core::pipeline_options ropt = opt;
    ropt.observer = &manager;
    const core::pipeline_result resumed =
        core::analyze_seeded(restored.messages, nullptr, std::move(restored.seed), ropt);
    expect_identical(reference, resumed);
}

TEST_F(PipelineSparseCkpt, SparseSnapshotResumesIdenticallyIntoADenseModeRun) {
    // The neighborhood mode is deliberately outside the ckpt fingerprint:
    // a snapshot written by a sparse run must seed a dense-mode resume and
    // still land on the same bits.
    const scenario s = make_scenario();
    core::pipeline_options opt;
    opt.neighborhood = dissim::neighborhood_mode::sparse;
    const ckpt::options_fingerprint fp_sparse = ckpt::fingerprint(opt, "true", 7);
    core::pipeline_options dense_opt;
    dense_opt.neighborhood = dissim::neighborhood_mode::dense;
    EXPECT_EQ(ckpt::fingerprint(dense_opt, "true", 7), fp_sparse);

    {
        ckpt::checkpoint_manager manager(dir_, fp_sparse);
        manager.on_segments(s.messages, s.segments);
        core::pipeline_options copt = opt;
        copt.observer = &manager;
        core::pipeline_seed seed;
        seed.segments = s.segments;
        (void)core::analyze_seeded(s.messages, nullptr, std::move(seed), copt);
    }
    fs::remove(dir_ / ckpt::checkpoint_manager::kClusteringFile);

    diag::error_sink sink(diag::policy::lenient);
    ckpt::checkpoint_manager manager(dir_, fp_sparse);
    ckpt::restored_state restored = manager.load(s.messages, sink);
    ASSERT_TRUE(restored.seed.neighbors.has_value());
    const core::pipeline_result resumed =
        core::analyze_seeded(restored.messages, nullptr, std::move(restored.seed), dense_opt);
    const core::pipeline_result dense_reference =
        core::analyze_segments(s.messages, s.segments, dense_opt);
    expect_identical(dense_reference, resumed);
}

}  // namespace
}  // namespace ftc
