// Unit tests for the pcap file format reader/writer (pcap/pcap.hpp).
#include "pcap/pcap.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ftc::pcap {
namespace {

capture sample_capture() {
    capture cap;
    cap.link = linktype::ethernet;
    packet p1;
    p1.ts_sec = 1300000000;
    p1.ts_usec = 123456;
    p1.data = {0x01, 0x02, 0x03};
    packet p2;
    p2.ts_sec = 1300000001;
    p2.ts_usec = 0;
    p2.data = {};
    cap.packets = {p1, p2};
    return cap;
}

TEST(PcapFormat, InMemoryRoundTrip) {
    const capture original = sample_capture();
    const byte_vector bytes = to_pcap_bytes(original);
    const capture parsed = from_pcap_bytes(bytes);
    EXPECT_EQ(parsed.link, original.link);
    ASSERT_EQ(parsed.packets.size(), 2u);
    EXPECT_EQ(parsed.packets[0].ts_sec, 1300000000u);
    EXPECT_EQ(parsed.packets[0].ts_usec, 123456u);
    EXPECT_EQ(parsed.packets[0].data, (byte_vector{0x01, 0x02, 0x03}));
    EXPECT_TRUE(parsed.packets[1].data.empty());
}

TEST(PcapFormat, GlobalHeaderLayout) {
    const byte_vector bytes = to_pcap_bytes(sample_capture());
    ASSERT_GE(bytes.size(), 24u);
    EXPECT_EQ(get_u32_be(bytes, 0), 0xa1b2c3d4u);  // magic
    EXPECT_EQ(get_u16_be(bytes, 4), 2u);           // version major
    EXPECT_EQ(get_u16_be(bytes, 6), 4u);           // version minor
    EXPECT_EQ(get_u32_be(bytes, 20), 1u);          // linktype ethernet
}

TEST(PcapFormat, ReadsLittleEndianFiles) {
    // Hand-build a byte-swapped (little-endian producer) file.
    byte_vector bytes;
    put_u32_le(bytes, 0xa1b2c3d4);  // magic stored in LE order
    put_u16_le(bytes, 2);
    put_u16_le(bytes, 4);
    put_u32_le(bytes, 0);
    put_u32_le(bytes, 0);
    put_u32_le(bytes, 65535);
    put_u32_le(bytes, 147);  // user0
    put_u32_le(bytes, 42);   // ts_sec
    put_u32_le(bytes, 7);    // ts_usec
    put_u32_le(bytes, 2);    // incl_len
    put_u32_le(bytes, 2);    // orig_len
    bytes.push_back(0xaa);
    bytes.push_back(0xbb);
    const capture parsed = from_pcap_bytes(bytes);
    EXPECT_EQ(parsed.link, linktype::user0);
    ASSERT_EQ(parsed.packets.size(), 1u);
    EXPECT_EQ(parsed.packets[0].ts_sec, 42u);
    EXPECT_EQ(parsed.packets[0].data, (byte_vector{0xaa, 0xbb}));
}

TEST(PcapFormat, ReadsNanosecondMagic) {
    byte_vector bytes;
    put_u32_be(bytes, 0xa1b23c4d);
    put_u16_be(bytes, 2);
    put_u16_be(bytes, 4);
    put_u32_be(bytes, 0);
    put_u32_be(bytes, 0);
    put_u32_be(bytes, 65535);
    put_u32_be(bytes, 1);
    const capture parsed = from_pcap_bytes(bytes);
    EXPECT_TRUE(parsed.packets.empty());
}

TEST(PcapFormat, NanosecondTimestampsAreDownscaled) {
    byte_vector bytes;
    put_u32_be(bytes, 0xa1b23c4d);  // nanosecond magic
    put_u16_be(bytes, 2);
    put_u16_be(bytes, 4);
    put_u32_be(bytes, 0);
    put_u32_be(bytes, 0);
    put_u32_be(bytes, 65535);
    put_u32_be(bytes, 147);        // user0
    put_u32_be(bytes, 42);         // ts_sec
    put_u32_be(bytes, 123456789);  // 123456789 ns = 123456 us
    put_u32_be(bytes, 1);          // incl_len
    put_u32_be(bytes, 1);          // orig_len
    bytes.push_back(0xcc);
    const capture parsed = from_pcap_bytes(bytes);
    ASSERT_EQ(parsed.packets.size(), 1u);
    EXPECT_EQ(parsed.packets[0].ts_sec, 42u);
    EXPECT_EQ(parsed.packets[0].ts_usec, 123456u);
}

TEST(PcapFormat, NanosecondSwappedMagicAlsoDownscales) {
    byte_vector bytes;
    put_u32_le(bytes, 0xa1b23c4d);  // ns magic in little-endian producer order
    put_u16_le(bytes, 2);
    put_u16_le(bytes, 4);
    put_u32_le(bytes, 0);
    put_u32_le(bytes, 0);
    put_u32_le(bytes, 65535);
    put_u32_le(bytes, 147);
    put_u32_le(bytes, 7);
    put_u32_le(bytes, 999999999);  // just under a second
    put_u32_le(bytes, 1);
    put_u32_le(bytes, 1);
    bytes.push_back(0xdd);
    const capture parsed = from_pcap_bytes(bytes);
    ASSERT_EQ(parsed.packets.size(), 1u);
    EXPECT_EQ(parsed.packets[0].ts_usec, 999999u);
}

TEST(PcapFormat, ImplausibleRecordLengthRejectedBeforeAllocation) {
    // A corrupt incl_len of ~3.2 GB must throw a parse error without ever
    // attempting the allocation.
    byte_vector bytes;
    put_u32_be(bytes, 0xa1b2c3d4);
    put_u16_be(bytes, 2);
    put_u16_be(bytes, 4);
    put_u32_be(bytes, 0);
    put_u32_be(bytes, 0);
    put_u32_be(bytes, 65535);
    put_u32_be(bytes, 147);
    put_u32_be(bytes, 1);           // ts_sec
    put_u32_be(bytes, 2);           // ts_usec
    put_u32_be(bytes, 0xc0000000);  // absurd incl_len
    put_u32_be(bytes, 0xc0000000);  // orig_len
    put_fill(bytes, 32, 0xee);
    EXPECT_THROW(from_pcap_bytes(bytes), parse_error);
}

TEST(PcapFormat, RecordLengthBoundFollowsSnaplen) {
    // A record larger than the 256 KiB floor parses when the global header
    // announces a matching snaplen...
    capture cap;
    cap.link = linktype::user0;
    cap.snaplen = 2u * 1024 * 1024;
    packet p;
    p.data.assign(300u * 1024, 0x5a);
    cap.packets.push_back(std::move(p));
    const capture parsed = from_pcap_bytes(to_pcap_bytes(cap));
    ASSERT_EQ(parsed.packets.size(), 1u);
    EXPECT_EQ(parsed.packets[0].data.size(), 300u * 1024);

    // ...but is rejected when the stated snaplen is small.
    capture lying = parsed;
    lying.snaplen = 65535;
    EXPECT_THROW(from_pcap_bytes(to_pcap_bytes(lying)), parse_error);
}

TEST(PcapFormat, RejectsBadMagic) {
    byte_vector bytes(24, 0x00);
    EXPECT_THROW(from_pcap_bytes(bytes), parse_error);
}

TEST(PcapFormat, RejectsShortHeader) {
    const byte_vector bytes(10, 0x00);
    EXPECT_THROW(from_pcap_bytes(bytes), parse_error);
}

TEST(PcapFormat, RejectsUnsupportedVersion) {
    byte_vector bytes;
    put_u32_be(bytes, 0xa1b2c3d4);
    put_u16_be(bytes, 3);  // future major version
    put_u16_be(bytes, 0);
    put_fill(bytes, 16, 0);
    EXPECT_THROW(from_pcap_bytes(bytes), parse_error);
}

TEST(PcapFormat, RejectsTruncatedRecordHeader) {
    byte_vector bytes = to_pcap_bytes(sample_capture());
    bytes.resize(24 + 8);  // half a record header
    EXPECT_THROW(from_pcap_bytes(bytes), parse_error);
}

TEST(PcapFormat, RejectsTruncatedPacketBody) {
    byte_vector bytes = to_pcap_bytes(sample_capture());
    bytes.resize(24 + 16 + 1);  // record announces 3 bytes, only 1 present
    EXPECT_THROW(from_pcap_bytes(bytes), parse_error);
}

TEST(PcapFormat, FileRoundTrip) {
    const auto path = std::filesystem::temp_directory_path() / "ftclust_test_roundtrip.pcap";
    const capture original = sample_capture();
    write_file(path, original);
    const capture parsed = read_file(path);
    EXPECT_EQ(parsed.packets.size(), original.packets.size());
    EXPECT_EQ(parsed.packets[0].data, original.packets[0].data);
    std::filesystem::remove(path);
}

TEST(PcapFormat, ReadMissingFileThrows) {
    EXPECT_THROW(read_file("/nonexistent/dir/nothing.pcap"), error);
}

TEST(PcapFormat, WriteToInvalidPathThrows) {
    EXPECT_THROW(write_file("/nonexistent/dir/out.pcap", sample_capture()), error);
}

TEST(PcapFormat, LargeRandomCaptureRoundTrip) {
    rng rand(99);
    capture cap;
    cap.link = linktype::user0;
    for (int i = 0; i < 200; ++i) {
        packet p;
        p.ts_sec = static_cast<std::uint32_t>(1300000000 + i);
        p.ts_usec = static_cast<std::uint32_t>(rand.uniform(0, 999999));
        p.data = rand.bytes(rand.uniform(0, 300));
        cap.packets.push_back(std::move(p));
    }
    const capture parsed = from_pcap_bytes(to_pcap_bytes(cap));
    ASSERT_EQ(parsed.packets.size(), cap.packets.size());
    for (std::size_t i = 0; i < cap.packets.size(); ++i) {
        EXPECT_EQ(parsed.packets[i].data, cap.packets[i].data);
        EXPECT_EQ(parsed.packets[i].ts_usec, cap.packets[i].ts_usec);
    }
}

}  // namespace
}  // namespace ftc::pcap
