// Unit tests for the FieldHunter baseline (fieldhunter/fieldhunter.hpp).
#include "fieldhunter/fieldhunter.hpp"

#include <gtest/gtest.h>

#include "protocols/registry.hpp"
#include "util/rng.hpp"

namespace ftc::fieldhunter {
namespace {

using pcap::flow_key;
using pcap::make_ipv4;
using pcap::transport;

flow_key client_flow(std::uint8_t host, std::uint16_t sport) {
    return {make_ipv4(10, 0, 0, host), make_ipv4(10, 0, 1, 1), sport, 99, transport::udp};
}

bool has_field(const fh_result& r, fh_kind kind, std::size_t offset) {
    for (const fh_field& f : r.fields) {
        if (f.kind == kind && f.offset == offset) {
            return true;
        }
    }
    return false;
}

TEST(FieldHunter, FindsMessageTypeFromDirectionCorrelation) {
    // Request byte 0 is 0x01 or 0x03; response byte 0 is request + 1.
    rng rand(1);
    std::vector<fh_message> messages;
    for (int i = 0; i < 20; ++i) {
        const std::uint8_t req_type = i % 2 == 0 ? 0x01 : 0x03;
        fh_message req;
        req.flow = client_flow(2, static_cast<std::uint16_t>(10000 + i));
        req.is_request = true;
        req.bytes = {req_type, 0x00};
        put_bytes(req.bytes, rand.bytes(6));
        fh_message resp;
        resp.flow = req.flow.reversed();
        resp.is_request = false;
        resp.bytes = {static_cast<std::uint8_t>(req_type + 1), 0x00};
        put_bytes(resp.bytes, rand.bytes(6));
        messages.push_back(std::move(req));
        messages.push_back(std::move(resp));
    }
    const fh_result r = infer(messages);
    EXPECT_TRUE(has_field(r, fh_kind::msg_type, 0));
}

TEST(FieldHunter, FindsLengthField) {
    // 16-bit big-endian total length at offset 2.
    rng rand(2);
    std::vector<fh_message> messages;
    for (int i = 0; i < 30; ++i) {
        const std::size_t body = 8 + rand.uniform(0, 60);
        fh_message m;
        m.flow = client_flow(3, static_cast<std::uint16_t>(11000 + i));
        m.is_request = true;
        m.bytes = {0xaa, 0xbb};
        put_u16_be(m.bytes, static_cast<std::uint16_t>(4 + body));
        put_bytes(m.bytes, rand.bytes(body));
        messages.push_back(std::move(m));
    }
    const fh_result r = infer(messages);
    // The length lives at [2, 4); the rule may pick any window containing
    // it (a wider window that includes constant prefix bytes correlates
    // equally well).
    bool found = false;
    for (const fh_field& f : r.fields) {
        if (f.kind == fh_kind::msg_len && f.offset <= 2 && f.offset + f.width >= 4) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(FieldHunter, FindsTransactionId) {
    // Random 4-byte id at offset 0, echoed verbatim by the response.
    rng rand(3);
    std::vector<fh_message> messages;
    for (int i = 0; i < 16; ++i) {
        const std::uint32_t txid = static_cast<std::uint32_t>(rand());
        fh_message req;
        req.flow = client_flow(4, static_cast<std::uint16_t>(12000 + i));
        req.is_request = true;
        put_u32_be(req.bytes, txid);
        put_fill(req.bytes, 4, 0x11);
        fh_message resp;
        resp.flow = req.flow.reversed();
        resp.is_request = false;
        put_u32_be(resp.bytes, txid);
        put_fill(resp.bytes, 4, 0x22);
        messages.push_back(std::move(req));
        messages.push_back(std::move(resp));
    }
    const fh_result r = infer(messages);
    EXPECT_TRUE(has_field(r, fh_kind::trans_id, 0));
}

TEST(FieldHunter, FindsHostId) {
    // 4-byte value at offset 4 that is a function of the source host.
    std::vector<fh_message> messages;
    for (int i = 0; i < 24; ++i) {
        const std::uint8_t host = static_cast<std::uint8_t>(2 + (i % 3));
        fh_message m;
        m.flow = client_flow(host, static_cast<std::uint16_t>(13000 + i));
        m.is_request = true;
        put_u32_be(m.bytes, 0x01020304);  // constant bytes get skipped
        put_u32_be(m.bytes, 0xbeef0000u + host);
        messages.push_back(std::move(m));
    }
    const fh_result r = infer(messages);
    EXPECT_TRUE(has_field(r, fh_kind::host_id, 4));
}

TEST(FieldHunter, FindsSessionId) {
    // 4-byte value constant per flow but shared across both hosts'
    // messages of that flow; differs across flows from the same host.
    std::vector<fh_message> messages;
    for (int session = 0; session < 6; ++session) {
        const flow_key flow = client_flow(2, static_cast<std::uint16_t>(14000 + session));
        for (int i = 0; i < 4; ++i) {
            fh_message m;
            m.flow = i % 2 == 0 ? flow : flow.reversed();
            m.is_request = i % 2 == 0;
            put_u32_be(m.bytes, 0x05060708);
            put_u32_be(m.bytes, 0xcafe0000u + static_cast<std::uint32_t>(session));
            messages.push_back(std::move(m));
        }
    }
    const fh_result r = infer(messages);
    EXPECT_TRUE(has_field(r, fh_kind::session_id, 4));
}

TEST(FieldHunter, FindsAccumulator) {
    // Per-flow monotonically increasing 4-byte counter at offset 4.
    std::vector<fh_message> messages;
    for (int flow_idx = 0; flow_idx < 2; ++flow_idx) {
        const flow_key flow = client_flow(2, static_cast<std::uint16_t>(15000 + flow_idx));
        for (int i = 0; i < 6; ++i) {
            fh_message m;
            m.flow = flow;
            m.is_request = true;
            put_u32_be(m.bytes, 0xffffffff);  // constant filler
            put_u32_be(m.bytes, static_cast<std::uint32_t>(1000 * flow_idx + i * 7));
            messages.push_back(std::move(m));
        }
    }
    const fh_result r = infer(messages);
    // The counter occupies [4, 8); the rule may latch onto any window that
    // overlaps it (e.g. the varying low bytes only).
    bool found = false;
    for (const fh_field& f : r.fields) {
        if (f.kind == fh_kind::accumulator && f.offset < 8 && f.offset + f.width > 4) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(FieldHunter, DirectionFlagIsNotAHostId) {
    // Many hosts sharing only two values (a request/response flag) must not
    // pass the Host-ID rule: an identifier has to *identify* its host.
    std::vector<fh_message> messages;
    for (int i = 0; i < 40; ++i) {
        const std::uint8_t host = static_cast<std::uint8_t>(2 + (i % 10));
        fh_message m;
        m.flow = client_flow(host, static_cast<std::uint16_t>(17000 + i));
        m.is_request = true;
        put_u32_be(m.bytes, 0x01020304);
        // All hosts carry the same "flag" value; two hosts use the variant.
        put_u32_be(m.bytes, host <= 3 ? 0x00000100u : 0x00008180u);
        messages.push_back(std::move(m));
    }
    const fh_result r = infer(messages);
    EXPECT_FALSE(has_field(r, fh_kind::host_id, 4));
}

TEST(FieldHunter, NoFlowContextDisablesContextRules) {
    // AWDL/AU situation: no flow context. Host/session/accumulator and the
    // transaction pairing cannot apply.
    rng rand(4);
    std::vector<fh_message> messages;
    for (int i = 0; i < 20; ++i) {
        fh_message m;
        m.has_flow = false;
        m.is_request = true;
        put_u32_be(m.bytes, static_cast<std::uint32_t>(i));  // looks like an accumulator
        put_bytes(m.bytes, rand.bytes(8));
        messages.push_back(std::move(m));
    }
    const fh_result r = infer(messages);
    for (const fh_field& f : r.fields) {
        EXPECT_NE(f.kind, fh_kind::host_id);
        EXPECT_NE(f.kind, fh_kind::session_id);
        EXPECT_NE(f.kind, fh_kind::accumulator);
        EXPECT_NE(f.kind, fh_kind::trans_id);
        EXPECT_NE(f.kind, fh_kind::msg_type);
    }
}

TEST(FieldHunter, CoverageAccountsTypedBytes) {
    rng rand(5);
    std::vector<fh_message> messages;
    for (int i = 0; i < 16; ++i) {
        const std::uint32_t txid = static_cast<std::uint32_t>(rand());
        fh_message req;
        req.flow = client_flow(4, static_cast<std::uint16_t>(16000 + i));
        req.is_request = true;
        put_u32_be(req.bytes, txid);
        put_fill(req.bytes, 12, 0x00);
        fh_message resp = req;
        resp.flow = req.flow.reversed();
        resp.is_request = false;
        messages.push_back(std::move(req));
        messages.push_back(std::move(resp));
    }
    const fh_result r = infer(messages);
    EXPECT_EQ(r.total_bytes, 32u * 16u);
    if (!r.fields.empty()) {
        EXPECT_GT(r.typed_bytes, 0u);
        EXPECT_LE(r.typed_bytes, r.total_bytes);
        EXPECT_GT(r.coverage(), 0.0);
        EXPECT_LT(r.coverage(), 1.0);
    }
}

TEST(FieldHunter, EmptyInputYieldsEmptyResult) {
    const fh_result r = infer({});
    EXPECT_TRUE(r.fields.empty());
    EXPECT_EQ(r.total_bytes, 0u);
    EXPECT_DOUBLE_EQ(r.coverage(), 0.0);
}

TEST(FieldHunter, ClaimedOffsetsDoNotOverlap) {
    const protocols::trace t = protocols::generate_trace("DNS", 200, 9);
    const fh_result r = infer(from_trace(t));
    std::vector<bool> claimed(512, false);
    for (const fh_field& f : r.fields) {
        for (std::size_t i = f.offset; i < f.offset + f.width; ++i) {
            ASSERT_LT(i, claimed.size());
            EXPECT_FALSE(claimed[i]) << "offset " << i << " claimed twice";
            claimed[i] = true;
        }
    }
}

TEST(FieldHunter, CoverageOnRealProtocolsStaysLow) {
    // The paper's point: FieldHunter types only a few fields per message
    // (~3 % average coverage) while clustering covers most bytes.
    double total_coverage = 0.0;
    int count = 0;
    for (const char* proto : {"NTP", "DNS", "DHCP"}) {
        const protocols::trace t = protocols::generate_trace(proto, 300, 17);
        const fh_result r = infer(from_trace(t));
        EXPECT_LT(r.coverage(), 0.35) << proto;
        total_coverage += r.coverage();
        ++count;
    }
    EXPECT_LT(total_coverage / count, 0.2);
}

TEST(FieldHunter, AwdlAndAuYieldNoContextFields) {
    for (const char* proto : {"AWDL", "AU"}) {
        const protocols::trace t = protocols::generate_trace(proto, 60, 19);
        const fh_result r = infer(from_trace(t));
        for (const fh_field& f : r.fields) {
            EXPECT_TRUE(f.kind == fh_kind::msg_len) << proto << ": context rule fired";
        }
    }
}

TEST(FieldHunter, DnsTransactionIdFound) {
    const protocols::trace t = protocols::generate_trace("DNS", 300, 23);
    const fh_result r = infer(from_trace(t));
    EXPECT_TRUE(has_field(r, fh_kind::trans_id, 0)) << "DNS txid at offset 0 not found";
}

TEST(FieldHunter, KindNamesStable) {
    EXPECT_STREQ(to_string(fh_kind::msg_type), "MSG-Type");
    EXPECT_STREQ(to_string(fh_kind::accumulator), "Accumulator");
}

}  // namespace
}  // namespace ftc::fieldhunter
