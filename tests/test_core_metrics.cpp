// Unit tests for the combinatorial clustering metrics (core/metrics.hpp),
// including the paper's three-term false-negative definition (Sec. IV-A).
#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ftc::core {
namespace {

using protocols::field_type;

/// Build typed_segments with one synthetic occurrence per unique value.
typed_segments make_typed(const std::vector<field_type>& types,
                          const std::vector<std::size_t>& occurrence_counts = {},
                          std::size_t value_length = 4) {
    typed_segments out;
    out.types = types;
    for (std::size_t i = 0; i < types.size(); ++i) {
        out.unique.values.push_back(byte_vector(value_length, static_cast<std::uint8_t>(i)));
        std::vector<segmentation::segment> occs;
        const std::size_t count =
            occurrence_counts.empty() ? 1 : occurrence_counts[i];
        for (std::size_t o = 0; o < count; ++o) {
            occs.push_back(segmentation::segment{o, 0, value_length});
        }
        out.unique.occurrences.push_back(std::move(occs));
    }
    return out;
}

cluster::cluster_labels make_labels(std::vector<int> labels) {
    cluster::cluster_labels out;
    int max_label = -1;
    for (int l : labels) {
        max_label = std::max(max_label, l);
    }
    out.labels = std::move(labels);
    out.cluster_count = static_cast<std::size_t>(max_label + 1);
    return out;
}

TEST(FBeta, KnownValues) {
    // beta = 1 reduces to the harmonic mean.
    EXPECT_NEAR(f_beta(0.5, 0.5, 1.0), 0.5, 1e-12);
    // beta = 1/4 weighs precision 4x: with P=1, R=0.5:
    // (1+1/16)*1*0.5 / (1/16*1 + 0.5) = 0.53125/0.5625 = 0.9444...
    EXPECT_NEAR(f_beta(1.0, 0.5, 0.25), 0.94444444444, 1e-9);
    EXPECT_DOUBLE_EQ(f_beta(0.0, 0.0, 0.25), 0.0);
}

TEST(Metrics, PerfectClusteringScoresOne) {
    // Two types, each its own cluster.
    const typed_segments ts = make_typed(
        {field_type::timestamp, field_type::timestamp, field_type::id, field_type::id});
    const auto labels = make_labels({0, 0, 1, 1});
    const clustering_quality q = evaluate_clustering(labels, ts, 100);
    EXPECT_DOUBLE_EQ(q.precision, 1.0);
    EXPECT_DOUBLE_EQ(q.recall, 1.0);
    EXPECT_DOUBLE_EQ(q.f_score, 1.0);
    EXPECT_EQ(q.true_positives, 2u);
    EXPECT_EQ(q.false_positives, 0u);
    EXPECT_EQ(q.false_negatives, 0u);
}

TEST(Metrics, MixedClusterComputesHandCheckedCounts) {
    // One cluster with 3 timestamps + 1 id; one cluster with 2 ids.
    // TP+FP = C(4,2)+C(2,2) = 6+1 = 7.
    // TP = C(3,2) + C(1,2)=0 + C(2,2)=1 -> 3+0+1 = 4. FP = 3.
    // FN (cross-cluster, halved): timestamps: (3-3)*3 = 0;
    //   ids: cluster0: (3-1)*1 = 2; cluster1: (3-2)*2 = 2 -> doubled 4 -> 2.
    const typed_segments ts =
        make_typed({field_type::timestamp, field_type::timestamp, field_type::timestamp,
                    field_type::id, field_type::id, field_type::id});
    const auto labels = make_labels({0, 0, 0, 0, 1, 1});
    const clustering_quality q = evaluate_clustering(labels, ts, 100);
    EXPECT_EQ(q.true_positives, 4u);
    EXPECT_EQ(q.false_positives, 3u);
    EXPECT_EQ(q.false_negatives, 2u);
    EXPECT_NEAR(q.precision, 4.0 / 7.0, 1e-12);
    EXPECT_NEAR(q.recall, 4.0 / 6.0, 1e-12);
}

TEST(Metrics, NoiseContributesBothFnTerms) {
    // 4 timestamps: 2 clustered together, 2 in noise.
    // TP = 1. FN: noise-internal pairs C(2,2) = 1;
    // cross (cluster vs noise): cluster term (4-2)*2/2 = 2 doubled form:
    //   cluster0: (4-2)*2 = 4; noise term: (4-2)*2 = 4 -> (4+4)/2 = 4.
    // Total FN = 1 + 4 = 5... but the true pair count is C(4,2)=6 = TP+FN.
    const typed_segments ts =
        make_typed({field_type::timestamp, field_type::timestamp, field_type::timestamp,
                    field_type::timestamp});
    const auto labels = make_labels({0, 0, -1, -1});
    const clustering_quality q = evaluate_clustering(labels, ts, 100);
    EXPECT_EQ(q.true_positives, 1u);
    EXPECT_EQ(q.false_positives, 0u);
    EXPECT_EQ(q.false_negatives, 5u);
    EXPECT_EQ(q.noise_count, 2u);
    EXPECT_NEAR(q.recall, 1.0 / 6.0, 1e-12);
}

TEST(Metrics, AllNoiseGivesZeroScores) {
    const typed_segments ts = make_typed({field_type::id, field_type::id});
    const auto labels = make_labels({-1, -1});
    const clustering_quality q = evaluate_clustering(labels, ts, 100);
    EXPECT_DOUBLE_EQ(q.precision, 0.0);
    EXPECT_DOUBLE_EQ(q.recall, 0.0);
    EXPECT_DOUBLE_EQ(q.f_score, 0.0);
    EXPECT_DOUBLE_EQ(q.clustered_coverage, 0.0);
    EXPECT_GT(q.coverage, 0.0);  // the values were analyzed, just not clustered
}

TEST(Metrics, TpPlusFnEqualsTruePairsAcrossScenarios) {
    // Invariant: TP + FN = sum over types of C(|t_l|, 2), independent of
    // how the clustering scattered the segments.
    const typed_segments ts =
        make_typed({field_type::timestamp, field_type::timestamp, field_type::timestamp,
                    field_type::id, field_type::id, field_type::chars});
    const std::uint64_t true_pairs = 3 + 1 + 0;  // C(3,2) + C(2,2) + C(1,2)
    for (const auto& labels :
         {make_labels({0, 0, 0, 1, 1, 2}), make_labels({0, 1, 2, 0, 1, 2}),
          make_labels({-1, 0, 0, 0, -1, 0}), make_labels({-1, -1, -1, -1, -1, -1}),
          make_labels({0, 0, 0, 0, 0, 0})}) {
        const clustering_quality q = evaluate_clustering(labels, ts, 100);
        EXPECT_EQ(q.true_positives + q.false_negatives, true_pairs);
    }
}

TEST(Metrics, CoverageCountsAnalyzedAndClusteredBytes) {
    // Value 0: 3 occurrences of 4 bytes (clustered), value 1: 2 occurrences
    // (noise), value 2: 1 occurrence (clustered). Analyzed = all of them;
    // clustered excludes the noise value.
    const typed_segments ts =
        make_typed({field_type::id, field_type::id, field_type::id}, {3, 2, 1}, 4);
    const auto labels = make_labels({0, -1, 0});
    const clustering_quality q = evaluate_clustering(labels, ts, 64);
    EXPECT_NEAR(q.coverage, (3 * 4 + 2 * 4 + 1 * 4) / 64.0, 1e-12);
    EXPECT_NEAR(q.clustered_coverage, (3 * 4 + 1 * 4) / 64.0, 1e-12);
}

TEST(Metrics, RejectsLabelCountMismatch) {
    const typed_segments ts = make_typed({field_type::id});
    const auto labels = make_labels({0, 0});
    EXPECT_THROW(evaluate_clustering(labels, ts, 10), precondition_error);
}

TEST(AssignTypes, MajorityOverlapWins) {
    // Message: [0,4) timestamp, [4,8) id. A shifted segment [2,8) overlaps
    // the id field by 4 bytes and the timestamp by 2 -> id wins.
    protocols::trace t;
    t.protocol = "X";
    protocols::annotated_message m;
    m.bytes = byte_vector(8, 0xaa);
    m.fields = {{0, 4, field_type::timestamp, "ts"}, {4, 4, field_type::id, "id"}};
    t.messages.push_back(m);

    dissim::unique_segments u;
    u.values.push_back(byte_vector(6, 0xaa));
    u.occurrences.push_back({segmentation::segment{0, 2, 6}});
    const typed_segments ts = assign_types(t, std::move(u));
    ASSERT_EQ(ts.types.size(), 1u);
    EXPECT_EQ(ts.types[0], field_type::id);
}

TEST(AssignTypes, VotesAcrossOccurrences) {
    // The same value occurs twice over timestamp bytes and once over id
    // bytes -> timestamp wins the vote.
    protocols::trace t;
    t.protocol = "X";
    for (int i = 0; i < 2; ++i) {
        protocols::annotated_message m;
        m.bytes = byte_vector(4, 0xbb);
        m.fields = {{0, 4, field_type::timestamp, "ts"}};
        t.messages.push_back(m);
    }
    protocols::annotated_message m_id;
    m_id.bytes = byte_vector(4, 0xbb);
    m_id.fields = {{0, 4, field_type::id, "id"}};
    t.messages.push_back(m_id);

    dissim::unique_segments u;
    u.values.push_back(byte_vector(4, 0xbb));
    u.occurrences.push_back({segmentation::segment{0, 0, 4}, segmentation::segment{1, 0, 4},
                             segmentation::segment{2, 0, 4}});
    const typed_segments ts = assign_types(t, std::move(u));
    EXPECT_EQ(ts.types[0], field_type::timestamp);
}

TEST(AssignTypes, RejectsOutOfRangeSegments) {
    protocols::trace t;
    t.protocol = "X";
    dissim::unique_segments u;
    u.values.push_back(byte_vector(2, 0));
    u.occurrences.push_back({segmentation::segment{5, 0, 2}});
    EXPECT_THROW(assign_types(t, std::move(u)), precondition_error);
}

}  // namespace
}  // namespace ftc::core
