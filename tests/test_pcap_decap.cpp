// Unit tests for frame decapsulation and TCP reassembly (pcap/decap.hpp).
#include "pcap/decap.hpp"

#include <gtest/gtest.h>

#include "pcap/encap.hpp"
#include "util/check.hpp"

namespace ftc::pcap {
namespace {

const mac_address kMacA{0x02, 0, 0, 0, 0, 1};
const mac_address kMacB{0x02, 0, 0, 0, 0, 2};

flow_key udp_flow() {
    return {make_ipv4(10, 0, 0, 1), make_ipv4(10, 0, 0, 2), 5000, 53, transport::udp};
}

flow_key tcp_flow() {
    return {make_ipv4(10, 0, 0, 1), make_ipv4(10, 0, 0, 2), 5000, 445, transport::tcp};
}

TEST(Checksum, Rfc1071KnownVector) {
    // Classic example: checksum of 00 01 f2 03 f4 f5 f6 f7 is 0x220d.
    const byte_vector data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
    EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, OddLengthPadsWithZero) {
    const byte_vector even{0x12, 0x34, 0x00, 0x00};
    const byte_vector odd{0x12, 0x34, 0x00};
    EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(Checksum, ValidHeaderSumsToZero) {
    const byte_vector frame = build_udp_frame(kMacA, kMacB, udp_flow(), byte_vector{1, 2, 3});
    const byte_view ip = byte_view{frame}.subspan(ethernet_header::size, 20);
    EXPECT_EQ(internet_checksum(ip), 0);
}

TEST(Decap, ParsesEthernetHeader) {
    const byte_vector frame = build_udp_frame(kMacA, kMacB, udp_flow(), byte_vector{});
    const ethernet_header eth = parse_ethernet(frame);
    EXPECT_EQ(eth.src, kMacA);
    EXPECT_EQ(eth.dst, kMacB);
    EXPECT_EQ(eth.ethertype, 0x0800);
    EXPECT_THROW(parse_ethernet(byte_vector{1, 2, 3}), parse_error);
}

TEST(Decap, ParsesIpv4Header) {
    const byte_vector frame =
        build_udp_frame(kMacA, kMacB, udp_flow(), byte_vector{9, 9}, /*ip_id=*/77);
    const byte_view ip_bytes = byte_view{frame}.subspan(ethernet_header::size);
    const ipv4_header ip = parse_ipv4(ip_bytes);
    EXPECT_EQ(ip.header_length, 20);
    EXPECT_EQ(ip.protocol, 17);
    EXPECT_EQ(ip.identification, 77);
    EXPECT_EQ(ip.src.dotted(), "10.0.0.1");
    EXPECT_EQ(ip.dst.dotted(), "10.0.0.2");
    EXPECT_EQ(ip.total_length, 20 + 8 + 2);
}

TEST(Decap, RejectsCorruptIpv4Checksum) {
    byte_vector frame = build_udp_frame(kMacA, kMacB, udp_flow(), byte_vector{9, 9});
    frame[ethernet_header::size + 10] ^= 0xff;  // clobber checksum
    const byte_view ip_bytes = byte_view{frame}.subspan(ethernet_header::size);
    EXPECT_THROW(parse_ipv4(ip_bytes, /*verify_checksum=*/true), parse_error);
    EXPECT_NO_THROW(parse_ipv4(ip_bytes, /*verify_checksum=*/false));
}

TEST(Decap, RejectsNonIpv4AndBadIhl) {
    byte_vector junk(20, 0);
    junk[0] = 0x60;  // version 6
    EXPECT_THROW(parse_ipv4(junk), parse_error);
    junk[0] = 0x43;  // version 4, IHL 3 (below minimum)
    EXPECT_THROW(parse_ipv4(junk), parse_error);
}

TEST(Decap, ParsesUdpHeader) {
    const byte_vector frame = build_udp_frame(kMacA, kMacB, udp_flow(), byte_vector{1, 2, 3});
    const byte_view udp_bytes =
        byte_view{frame}.subspan(ethernet_header::size + 20);
    const udp_header udp = parse_udp(udp_bytes);
    EXPECT_EQ(udp.src_port, 5000);
    EXPECT_EQ(udp.dst_port, 53);
    EXPECT_EQ(udp.length, 8 + 3);
    EXPECT_THROW(parse_udp(byte_vector{1, 2}), parse_error);
}

TEST(Decap, ParsesTcpHeader) {
    const byte_vector frame =
        build_tcp_frame(kMacA, kMacB, tcp_flow(), 0x1000, byte_vector{1});
    const byte_view tcp_bytes =
        byte_view{frame}.subspan(ethernet_header::size + 20);
    const tcp_header tcp = parse_tcp(tcp_bytes);
    EXPECT_EQ(tcp.src_port, 5000);
    EXPECT_EQ(tcp.dst_port, 445);
    EXPECT_EQ(tcp.seq, 0x1000u);
    EXPECT_EQ(tcp.data_offset, 20);
    EXPECT_EQ(tcp.flags & 0x08, 0x08);  // PSH
    EXPECT_THROW(parse_tcp(byte_vector(10, 0)), parse_error);
}

TEST(Framer, NbssFramesByLengthPrefix) {
    byte_vector msg{0xff, 'S', 'M', 'B', 0x72};
    const byte_vector framed = wrap_nbss(msg);
    EXPECT_EQ(framed.size(), msg.size() + 4);
    const auto len = nbss_framer(framed);
    ASSERT_TRUE(len.has_value());
    EXPECT_EQ(*len, framed.size());
    // Incomplete stream: no frame yet.
    EXPECT_FALSE(nbss_framer(byte_view{framed}.subspan(0, 3)).has_value());
    EXPECT_FALSE(nbss_framer(byte_view{framed}.subspan(0, framed.size() - 1)).has_value());
}

TEST(Reassembly, InOrderSegmentsProduceMessages) {
    tcp_reassembler r;
    const flow_key flow = tcp_flow();
    const byte_vector m1 = wrap_nbss(byte_vector{0x01, 0x02});
    const byte_vector m2 = wrap_nbss(byte_vector{0x03});
    // First segment carries m1 + half of m2.
    byte_vector seg1(m1.begin(), m1.end());
    seg1.insert(seg1.end(), m2.begin(), m2.begin() + 2);
    const byte_vector seg2(m2.begin() + 2, m2.end());
    auto out1 = r.feed(flow, 1000, seg1, nbss_framer);
    ASSERT_EQ(out1.size(), 1u);
    EXPECT_EQ(out1[0], m1);
    auto out2 = r.feed(flow, 1000 + static_cast<std::uint32_t>(seg1.size()), seg2, nbss_framer);
    ASSERT_EQ(out2.size(), 1u);
    EXPECT_EQ(out2[0], m2);
}

TEST(Reassembly, OutOfOrderSegmentsAreBuffered) {
    tcp_reassembler r;
    const flow_key flow = tcp_flow();
    const byte_vector msg = wrap_nbss(byte_vector{1, 2, 3, 4, 5, 6});
    const std::uint32_t base = 5000;
    const byte_vector first(msg.begin(), msg.begin() + 4);
    const byte_vector second(msg.begin() + 4, msg.end());
    // Deliver the tail first.
    EXPECT_TRUE(r.feed(flow, base + 4, second, nbss_framer).empty());
    auto out = r.feed(flow, base, first, nbss_framer);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], msg);
}

TEST(Reassembly, RetransmissionsAreDropped) {
    tcp_reassembler r;
    const flow_key flow = tcp_flow();
    const byte_vector msg = wrap_nbss(byte_vector{1, 2, 3});
    auto out = r.feed(flow, 100, msg, nbss_framer);
    ASSERT_EQ(out.size(), 1u);
    // Same segment again: already consumed, must not produce a duplicate.
    EXPECT_TRUE(r.feed(flow, 100, msg, nbss_framer).empty());
}

TEST(Reassembly, FlowsAreIndependent) {
    tcp_reassembler r;
    const flow_key f1 = tcp_flow();
    flow_key f2 = tcp_flow();
    f2.src_port = 6000;
    const byte_vector msg = wrap_nbss(byte_vector{1, 2});
    const byte_vector half(msg.begin(), msg.begin() + 3);
    const byte_vector rest(msg.begin() + 3, msg.end());
    EXPECT_TRUE(r.feed(f1, 10, half, nbss_framer).empty());
    // A complete message on f2 is unaffected by f1's partial state.
    EXPECT_EQ(r.feed(f2, 99, msg, nbss_framer).size(), 1u);
    EXPECT_EQ(r.feed(f1, 10 + 3, rest, nbss_framer).size(), 1u);
}

TEST(Extract, UdpDatagramsCarryFlowAndPayload) {
    capture cap;
    cap.link = linktype::ethernet;
    packet p;
    p.data = build_udp_frame(kMacA, kMacB, udp_flow(), byte_vector{0xde, 0xad});
    cap.packets.push_back(p);
    const auto datagrams = extract_datagrams(cap);
    ASSERT_EQ(datagrams.size(), 1u);
    EXPECT_EQ(datagrams[0].payload, (byte_vector{0xde, 0xad}));
    EXPECT_EQ(datagrams[0].flow.src_port, 5000);
    EXPECT_EQ(datagrams[0].flow.proto, transport::udp);
}

TEST(Extract, CorruptChecksumPacketSkipped) {
    capture cap;
    cap.link = linktype::ethernet;
    packet p;
    p.data = build_udp_frame(kMacA, kMacB, udp_flow(), byte_vector{0xde, 0xad});
    p.data[ethernet_header::size + 10] ^= 0x55;
    cap.packets.push_back(p);
    EXPECT_TRUE(extract_datagrams(cap).empty());
    extract_options lenient;
    lenient.verify_checksums = false;
    EXPECT_EQ(extract_datagrams(cap, lenient).size(), 1u);
}

TEST(Extract, NonIpv4EthertypeSkipped) {
    capture cap;
    cap.link = linktype::ethernet;
    packet p;
    p.data = build_udp_frame(kMacA, kMacB, udp_flow(), byte_vector{1});
    p.data[12] = 0x86;  // 0x86dd = IPv6
    p.data[13] = 0xdd;
    cap.packets.push_back(p);
    EXPECT_TRUE(extract_datagrams(cap).empty());
}

TEST(Extract, RawLinktypeTreatsRecordsAsMessages) {
    capture cap;
    cap.link = linktype::user0;
    packet p;
    p.data = {0xca, 0xfe};
    cap.packets.push_back(p);
    const auto datagrams = extract_datagrams(cap);
    ASSERT_EQ(datagrams.size(), 1u);
    EXPECT_EQ(datagrams[0].payload, (byte_vector{0xca, 0xfe}));
}

TEST(Extract, TcpStreamSplitAcrossPackets) {
    capture cap;
    cap.link = linktype::ethernet;
    const byte_vector smb{0xff, 'S', 'M', 'B', 0x72, 0x00};
    const byte_vector framed = wrap_nbss(smb);
    const byte_vector part1(framed.begin(), framed.begin() + 5);
    const byte_vector part2(framed.begin() + 5, framed.end());
    packet p1;
    p1.data = build_tcp_frame(kMacA, kMacB, tcp_flow(), 0x1000, part1);
    packet p2;
    p2.data = build_tcp_frame(kMacA, kMacB, tcp_flow(),
                              0x1000 + static_cast<std::uint32_t>(part1.size()), part2);
    cap.packets = {p1, p2};
    const auto datagrams = extract_datagrams(cap);
    ASSERT_EQ(datagrams.size(), 1u);
    EXPECT_EQ(datagrams[0].payload, framed);
    EXPECT_EQ(datagrams[0].flow.proto, transport::tcp);
}

TEST(Extract, RuntFramesSkipped) {
    capture cap;
    cap.link = linktype::ethernet;
    packet p;
    p.data = {0x01, 0x02};
    cap.packets.push_back(p);
    EXPECT_TRUE(extract_datagrams(cap).empty());
}

TEST(FlowKey, ReversedSwapsEndpoints) {
    const flow_key f = udp_flow();
    const flow_key r = f.reversed();
    EXPECT_EQ(r.src_ip, f.dst_ip);
    EXPECT_EQ(r.dst_port, f.src_port);
    EXPECT_EQ(r.reversed(), f);
}

TEST(Ipv4Address, DottedRendering) {
    EXPECT_EQ(make_ipv4(192, 168, 1, 17).dotted(), "192.168.1.17");
    EXPECT_EQ(make_ipv4(0, 0, 0, 0).dotted(), "0.0.0.0");
    EXPECT_EQ(make_ipv4(255, 255, 255, 255).dotted(), "255.255.255.255");
}

}  // namespace
}  // namespace ftc::pcap
