// Unit and property tests for the Netzob-style alignment segmenter
// (segmentation/netzob.hpp).
#include "segmentation/netzob.hpp"

#include <gtest/gtest.h>

#include "protocols/registry.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ftc::segmentation {
namespace {

TEST(Netzob, PairwiseScoreIdenticalStrings) {
    const netzob_segmenter seg;
    const byte_vector a{1, 2, 3, 4};
    EXPECT_EQ(seg.pairwise_score(a, a), 4 * 2);  // 4 matches * match_score
}

TEST(Netzob, PairwiseScoreAllDifferent) {
    const netzob_segmenter seg;
    const byte_vector a{1, 2, 3};
    const byte_vector b{10, 20, 30};
    EXPECT_EQ(seg.pairwise_score(a, b), -3);  // 3 mismatches beat gap pairs
}

TEST(Netzob, PairwiseScorePrefersAlignmentOverGaps) {
    const netzob_segmenter seg;
    // b = a with one inserted byte: best alignment = 4 matches + 1 gap.
    const byte_vector a{1, 2, 3, 4};
    const byte_vector b{1, 2, 99, 3, 4};
    EXPECT_EQ(seg.pairwise_score(a, b), 4 * 2 - 2);
}

TEST(Netzob, PairwiseScoreEmptyString) {
    const netzob_segmenter seg;
    const byte_vector a{1, 2, 3};
    EXPECT_EQ(seg.pairwise_score(a, byte_vector{}), -6);  // 3 gaps
}

TEST(Netzob, StaticDynamicAlternationRecovered) {
    // Messages: constant 4-byte magic, 4 random bytes, constant 2-byte
    // suffix. Column classification must place boundaries at offsets 4 & 8.
    rng rand(3);
    std::vector<byte_vector> messages;
    for (int i = 0; i < 24; ++i) {
        byte_vector msg;
        put_u32_be(msg, 0x11223344);
        put_bytes(msg, rand.bytes(4));
        put_u16_be(msg, 0xaabb);
        messages.push_back(std::move(msg));
    }
    const netzob_segmenter seg;
    const message_segments out = seg.run(messages, {});
    validate_segmentation(messages, out);
    std::size_t with_both = 0;
    for (const auto& per_message : out) {
        bool at4 = false;
        bool at8 = false;
        for (const segment& s : per_message) {
            if (s.offset == 4) {
                at4 = true;
            }
            if (s.offset == 8) {
                at8 = true;
            }
        }
        if (at4 && at8) {
            ++with_both;
        }
    }
    EXPECT_GT(with_both, messages.size() * 3 / 4);
}

TEST(Netzob, IdenticalMessagesStayWhole) {
    const std::vector<byte_vector> messages(10, byte_vector{1, 2, 3, 4, 5});
    const netzob_segmenter seg;
    const message_segments out = seg.run(messages, {});
    for (const auto& per_message : out) {
        EXPECT_EQ(per_message.size(), 1u);  // all columns static -> one field
    }
}

TEST(Netzob, SingleMessageIsOneSegment) {
    const std::vector<byte_vector> messages{{1, 2, 3}};
    const netzob_segmenter seg;
    const message_segments out = seg.run(messages, {});
    ASSERT_EQ(out.size(), 1u);
    ASSERT_EQ(out[0].size(), 1u);
    EXPECT_EQ(out[0][0].length, 3u);
}

TEST(Netzob, VariableLengthMessagesAlign) {
    // A fixed prefix with an optional extension: alignment handles the
    // length difference via gaps and output must still cover each message.
    rng rand(4);
    std::vector<byte_vector> messages;
    for (int i = 0; i < 20; ++i) {
        byte_vector msg;
        put_u32_be(msg, 0xfeedf00d);
        put_bytes(msg, rand.bytes(2));
        if (i % 2 == 0) {
            put_u32_be(msg, 0xcafe0000 + static_cast<std::uint32_t>(i));
        }
        messages.push_back(std::move(msg));
    }
    const netzob_segmenter seg;
    const message_segments out = seg.run(messages, {});
    EXPECT_NO_THROW(validate_segmentation(messages, out));
}

TEST(Netzob, RejectsEmptyTrace) {
    const netzob_segmenter seg;
    EXPECT_THROW(seg.run({}, {}), precondition_error);
}

TEST(Netzob, DeadlineReproducesPaperFails) {
    // Large trace of long messages: the quadratic pairwise stage must hit
    // the budget and raise — the paper's "fails" entries for DHCP/SMB@1000.
    rng rand(1);
    std::vector<byte_vector> messages;
    for (int i = 0; i < 400; ++i) {
        messages.push_back(rand.bytes(300));
    }
    const netzob_segmenter seg;
    const deadline tight(0.05);
    EXPECT_THROW(seg.run(messages, tight), budget_exceeded_error);
}

// Property sweep on small traces (alignment is expensive).
class NetzobInvariants
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {};

TEST_P(NetzobInvariants, SegmentsCoverMessagesExactly) {
    const auto [proto, seed] = GetParam();
    const protocols::trace t = protocols::generate_trace(proto, 16, seed);
    const std::vector<byte_vector> messages = message_bytes(t);
    const netzob_segmenter seg;
    const message_segments out = seg.run(messages, deadline(30.0));
    EXPECT_NO_THROW(validate_segmentation(messages, out));
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, NetzobInvariants,
    ::testing::Combine(::testing::Values("NTP", "DNS", "NBNS", "AWDL", "AU"),
                       ::testing::Values(3ull)),
    [](const ::testing::TestParamInfo<std::tuple<const char*, std::uint64_t>>& info) {
        return std::string(std::get<0>(info.param)) + "_seed" +
               std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace ftc::segmentation
