// Unit tests for cooperative resource budgeting (util/budget.hpp).
#include "util/budget.hpp"

#include <gtest/gtest.h>

namespace ftc {
namespace {

TEST(Budget, UnlimitedByDefault) {
    resource_budget budget;
    EXPECT_NO_THROW(budget.check("op"));
    EXPECT_NO_THROW(budget.charge_segments(1'000'000, "op"));
    EXPECT_NO_THROW(budget.charge_bytes(1'000'000'000, "op"));
    EXPECT_EQ(budget.segments_used(), 1'000'000u);
    EXPECT_EQ(budget.bytes_used(), 1'000'000'000u);
}

TEST(Budget, SegmentCapThrowsWithProgress) {
    resource_limits limits;
    limits.max_segments = 10;
    resource_budget budget(limits);
    EXPECT_NO_THROW(budget.charge_segments(10, "stage"));
    try {
        budget.charge_segments(1, "stage");
        FAIL() << "expected budget_exceeded_error";
    } catch (const budget_exceeded_error& e) {
        EXPECT_NE(std::string{e.what()}.find("segment cap (10)"), std::string::npos);
        EXPECT_NE(e.partial_report().find("segments 11"), std::string::npos)
            << e.partial_report();
    }
}

TEST(Budget, ByteCapThrowsWithProgress) {
    resource_limits limits;
    limits.max_bytes = 100;
    resource_budget budget(limits);
    EXPECT_NO_THROW(budget.charge_bytes(60, "ingest"));
    try {
        budget.charge_bytes(60, "ingest");
        FAIL() << "expected budget_exceeded_error";
    } catch (const budget_exceeded_error& e) {
        EXPECT_NE(std::string{e.what()}.find("byte cap (100)"), std::string::npos);
        EXPECT_NE(e.partial_report().find("bytes 120"), std::string::npos);
    }
}

TEST(Budget, ExpiredDeadlineThrowsFromCheck) {
    resource_limits limits;
    limits.deadline_seconds = 1e-9;
    resource_budget budget(limits);
    // The nano-deadline has certainly elapsed by now.
    try {
        budget.check("pipeline");
        FAIL() << "expected budget_exceeded_error";
    } catch (const budget_exceeded_error& e) {
        EXPECT_NE(std::string{e.what()}.find("wall-clock deadline"), std::string::npos);
        EXPECT_FALSE(e.partial_report().empty());
    }
}

TEST(Budget, WallClockHandsDownDeadline) {
    resource_limits limits;
    limits.deadline_seconds = 1e-9;
    const resource_budget budget(limits);
    EXPECT_TRUE(budget.wall_clock().expired());
    EXPECT_THROW(budget.wall_clock().check("stage"), budget_exceeded_error);

    const resource_budget unlimited;
    EXPECT_FALSE(unlimited.wall_clock().expired());
}

TEST(Budget, ProgressMentionsAllCounters) {
    resource_budget budget;
    budget.charge_segments(7, "s");
    budget.charge_bytes(42, "b");
    const std::string progress = budget.progress();
    EXPECT_NE(progress.find("segments 7"), std::string::npos) << progress;
    EXPECT_NE(progress.find("bytes 42"), std::string::npos) << progress;
    EXPECT_NE(progress.find("elapsed "), std::string::npos) << progress;
}

TEST(Budget, ErrorCarriesOptionalPartialReport) {
    const budget_exceeded_error plain("ran out");
    EXPECT_TRUE(plain.partial_report().empty());
    const budget_exceeded_error detailed("ran out", "segments 5, bytes 10");
    EXPECT_EQ(detailed.partial_report(), "segments 5, bytes 10");
}

}  // namespace
}  // namespace ftc
