// Unit and property tests for curve smoothing (mathx/smoothing.hpp).
#include "mathx/smoothing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ftc::mathx {
namespace {

TEST(Whittaker, LambdaZeroIsIdentity) {
    const std::vector<double> y{1.0, 3.0, 2.0, 5.0, 4.0};
    EXPECT_EQ(whittaker_smooth(y, 0.0), y);
}

TEST(Whittaker, ShortSequencesReturnedUnchanged) {
    const std::vector<double> one{2.0};
    const std::vector<double> two{2.0, 3.0};
    EXPECT_EQ(whittaker_smooth(one, 10.0), one);
    EXPECT_EQ(whittaker_smooth(two, 10.0), two);
}

TEST(Whittaker, RejectsNegativeLambda) {
    EXPECT_THROW(whittaker_smooth(std::vector<double>{1, 2, 3}, -1.0), precondition_error);
}

TEST(Whittaker, ReproducesLinearTrendExactly) {
    // The second-difference penalty vanishes on straight lines, so any
    // lambda must return them unchanged (up to numeric noise).
    std::vector<double> y;
    for (int i = 0; i < 50; ++i) {
        y.push_back(0.3 * i - 2.0);
    }
    for (double lambda : {0.1, 10.0, 10000.0}) {
        const std::vector<double> z = whittaker_smooth(y, lambda);
        for (std::size_t i = 0; i < y.size(); ++i) {
            EXPECT_NEAR(z[i], y[i], 1e-8) << "lambda=" << lambda << " i=" << i;
        }
    }
}

TEST(Whittaker, ReducesNoiseVariance) {
    rng rand(7);
    std::vector<double> clean;
    std::vector<double> noisy;
    for (int i = 0; i < 200; ++i) {
        const double v = std::sin(i * 0.05);
        clean.push_back(v);
        noisy.push_back(v + rand.uniform_real(-0.2, 0.2));
    }
    const std::vector<double> smoothed = whittaker_smooth(noisy, 50.0);
    double err_noisy = 0.0;
    double err_smooth = 0.0;
    for (std::size_t i = 0; i < clean.size(); ++i) {
        err_noisy += (noisy[i] - clean[i]) * (noisy[i] - clean[i]);
        err_smooth += (smoothed[i] - clean[i]) * (smoothed[i] - clean[i]);
    }
    EXPECT_LT(err_smooth, 0.5 * err_noisy);
}

TEST(Whittaker, LargerLambdaSmoothsMore) {
    rng rand(9);
    std::vector<double> noisy;
    for (int i = 0; i < 128; ++i) {
        noisy.push_back(rand.uniform_real(0.0, 1.0));
    }
    auto roughness = [](const std::vector<double>& v) {
        double r = 0.0;
        for (std::size_t i = 2; i < v.size(); ++i) {
            const double d2 = v[i] - 2 * v[i - 1] + v[i - 2];
            r += d2 * d2;
        }
        return r;
    };
    const double r1 = roughness(whittaker_smooth(noisy, 1.0));
    const double r2 = roughness(whittaker_smooth(noisy, 100.0));
    EXPECT_LT(r2, r1);
}

TEST(Gaussian, SigmaZeroOrEmptyIsIdentity) {
    const std::vector<double> y{1.0, 2.0, 3.0};
    EXPECT_EQ(gaussian_filter1d(y, 0.0), y);
    EXPECT_EQ(gaussian_filter1d(std::vector<double>{}, 1.0), std::vector<double>{});
}

TEST(Gaussian, PreservesConstantSequences) {
    const std::vector<double> y(32, 3.5);
    const std::vector<double> z = gaussian_filter1d(y, 0.6);
    for (double v : z) {
        EXPECT_NEAR(v, 3.5, 1e-12);
    }
}

TEST(Gaussian, SmoothsASpike) {
    std::vector<double> y(21, 0.0);
    y[10] = 1.0;
    const std::vector<double> z = gaussian_filter1d(y, 1.0);
    // Peak is reduced, neighbours raised, symmetric.
    EXPECT_LT(z[10], 1.0);
    EXPECT_GT(z[9], 0.0);
    EXPECT_NEAR(z[9], z[11], 1e-12);
    EXPECT_GT(z[10], z[9]);
    // Mass approximately preserved (kernel is normalized).
    double sum = 0.0;
    for (double v : z) {
        sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(Gaussian, ReflectBoundaryKeepsEndsReasonable) {
    // A ramp filtered with reflect boundaries must stay within data range.
    std::vector<double> y;
    for (int i = 0; i < 16; ++i) {
        y.push_back(static_cast<double>(i));
    }
    const std::vector<double> z = gaussian_filter1d(y, 1.5);
    for (double v : z) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 15.0);
    }
}

/// Dense reference solve of (I + lambda D2'D2) z = y via Gauss elimination.
std::vector<double> whittaker_dense_reference(const std::vector<double>& y, double lambda) {
    const std::size_t n = y.size();
    // Build A.
    std::vector<double> a(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        a[i * n + i] = 1.0;
    }
    for (std::size_t r = 0; r + 2 < n; ++r) {
        const double coeff[3] = {1.0, -2.0, 1.0};
        for (int p = 0; p < 3; ++p) {
            for (int q = 0; q < 3; ++q) {
                a[(r + static_cast<std::size_t>(p)) * n + (r + static_cast<std::size_t>(q))] +=
                    lambda * coeff[p] * coeff[q];
            }
        }
    }
    // Gaussian elimination with the right-hand side.
    std::vector<double> rhs = y;
    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot.
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row) {
            if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col])) {
                pivot = row;
            }
        }
        for (std::size_t k = 0; k < n; ++k) {
            std::swap(a[col * n + k], a[pivot * n + k]);
        }
        std::swap(rhs[col], rhs[pivot]);
        for (std::size_t row = col + 1; row < n; ++row) {
            const double f = a[row * n + col] / a[col * n + col];
            for (std::size_t k = col; k < n; ++k) {
                a[row * n + k] -= f * a[col * n + k];
            }
            rhs[row] -= f * rhs[col];
        }
    }
    std::vector<double> z(n);
    for (std::size_t ri = n; ri > 0; --ri) {
        const std::size_t i = ri - 1;
        double v = rhs[i];
        for (std::size_t k = i + 1; k < n; ++k) {
            v -= a[i * n + k] * z[k];
        }
        z[i] = v / a[i * n + i];
    }
    return z;
}

TEST(Whittaker, BandedSolverMatchesDenseReference) {
    rng rand(13);
    for (const std::size_t n : {std::size_t{3}, std::size_t{7}, std::size_t{25}}) {
        for (const double lambda : {0.5, 10.0, 300.0}) {
            std::vector<double> y;
            for (std::size_t i = 0; i < n; ++i) {
                y.push_back(rand.uniform_real(-2.0, 2.0));
            }
            const std::vector<double> banded = whittaker_smooth(y, lambda);
            const std::vector<double> dense = whittaker_dense_reference(y, lambda);
            for (std::size_t i = 0; i < n; ++i) {
                EXPECT_NEAR(banded[i], dense[i], 1e-9)
                    << "n=" << n << " lambda=" << lambda << " i=" << i;
            }
        }
    }
}

// Property sweep: smoothing never escapes the input value range by much.
class SmoothingProps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmoothingProps, WhittakerStaysNearInputRange) {
    rng rand(GetParam());
    std::vector<double> y;
    const std::size_t n = 10 + rand.uniform(0, 100);
    for (std::size_t i = 0; i < n; ++i) {
        y.push_back(rand.uniform_real(-1.0, 1.0));
    }
    const std::vector<double> z = whittaker_smooth(y, rand.uniform_real(0.1, 100.0));
    ASSERT_EQ(z.size(), y.size());
    const double lo = ftc::min_value(y) - 0.5;
    const double hi = ftc::max_value(y) + 0.5;
    for (double v : z) {
        EXPECT_GE(v, lo);
        EXPECT_LE(v, hi);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmoothingProps, ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace ftc::mathx
