// Unit and property tests for the NEMESYS segmenter
// (segmentation/nemesys.hpp).
#include "segmentation/nemesys.hpp"

#include <gtest/gtest.h>

#include "protocols/registry.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ftc::segmentation {
namespace {

TEST(Nemesys, BitCongruenceKnownValues) {
    // Equal bytes -> congruence 1; complementary bytes -> 0.
    const byte_vector msg{0x55, 0x55, 0xaa, 0xaa};
    const std::vector<double> bc = nemesys_segmenter::bit_congruence(msg);
    ASSERT_EQ(bc.size(), 3u);
    EXPECT_DOUBLE_EQ(bc[0], 1.0);
    EXPECT_DOUBLE_EQ(bc[1], 0.0);  // 0x55 ^ 0xaa = 0xff: all 8 bits differ
    EXPECT_DOUBLE_EQ(bc[2], 1.0);
}

TEST(Nemesys, BitCongruencePartialOverlap) {
    // 0x0f ^ 0x0e = 0x01: one differing bit -> 7/8.
    const byte_vector msg{0x0f, 0x0e};
    const std::vector<double> bc = nemesys_segmenter::bit_congruence(msg);
    ASSERT_EQ(bc.size(), 1u);
    EXPECT_DOUBLE_EQ(bc[0], 7.0 / 8.0);
}

TEST(Nemesys, BitCongruenceTinyMessages) {
    EXPECT_TRUE(nemesys_segmenter::bit_congruence(byte_vector{}).empty());
    EXPECT_TRUE(nemesys_segmenter::bit_congruence(byte_vector{0x42}).empty());
}

TEST(Nemesys, BoundaryAtSharpContentChange) {
    // 8 identical low bytes then 8 identical high bytes: the congruence
    // collapses exactly at the junction, which must produce a boundary
    // near offset 8.
    byte_vector msg;
    put_fill(msg, 8, 0x01);
    put_fill(msg, 8, 0xfe);
    const nemesys_segmenter seg;
    const std::vector<std::size_t> bounds = seg.boundaries(msg);
    bool near_junction = false;
    for (std::size_t b : bounds) {
        if (b >= 7 && b <= 9) {
            near_junction = true;
        }
    }
    EXPECT_TRUE(near_junction) << "no boundary near the 8/8 junction";
}

TEST(Nemesys, UniformMessageHasFewBoundaries) {
    const byte_vector msg(32, 0x41);
    const nemesys_segmenter seg;
    EXPECT_TRUE(seg.boundaries(msg).empty());
}

TEST(Nemesys, CharRunsAreNotShredded) {
    // ASCII text embedded between binary fields: the char-merge refinement
    // must not leave boundaries strictly inside the text run.
    byte_vector msg;
    put_u32_be(msg, 0xdeadbeef);
    put_chars(msg, "fileserver01");
    put_u32_be(msg, 0x00000000);
    nemesys_options opt;
    const nemesys_segmenter seg(opt);
    for (std::size_t b : seg.boundaries(msg)) {
        EXPECT_FALSE(b > 5 && b < 4 + 12 - 1)
            << "boundary at " << b << " splits the char run";
    }
}

TEST(Nemesys, NullPaddingIsolated) {
    // Content, then 8 nulls, then content: null run becomes its own segment.
    byte_vector msg;
    put_u32_be(msg, 0x12345678);
    put_fill(msg, 8, 0x00);
    put_u32_be(msg, 0x9abcdef0);
    const nemesys_segmenter seg;
    const std::vector<std::size_t> bounds = seg.boundaries(msg);
    EXPECT_NE(std::find(bounds.begin(), bounds.end(), 4u), bounds.end());
    EXPECT_NE(std::find(bounds.begin(), bounds.end(), 12u), bounds.end());
}

TEST(Nemesys, TinyMessagesYieldSingleSegment) {
    const nemesys_segmenter seg;
    const std::vector<byte_vector> messages{{0x01}, {0x01, 0x02}};
    const message_segments out = seg.run(messages, {});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].size(), 1u);
    EXPECT_EQ(out[0][0].length, 1u);
    EXPECT_EQ(out[1].size(), 1u);
}

TEST(Nemesys, DeadlineAborts) {
    rng rand(1);
    std::vector<byte_vector> messages;
    for (int i = 0; i < 4096; ++i) {
        messages.push_back(rand.bytes(64));
    }
    const nemesys_segmenter seg;
    const deadline expired(0.0);
    EXPECT_THROW(seg.run(messages, expired), budget_exceeded_error);
}

// Property sweep: NEMESYS output is a valid segmentation for every
// protocol and several seeds.
class NemesysInvariants
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {};

TEST_P(NemesysInvariants, SegmentsCoverMessagesExactly) {
    const auto [proto, seed] = GetParam();
    const protocols::trace t = protocols::generate_trace(proto, 30, seed);
    const std::vector<byte_vector> messages = message_bytes(t);
    const nemesys_segmenter seg;
    const message_segments out = seg.run(messages, {});
    EXPECT_NO_THROW(validate_segmentation(messages, out));
    // Heuristic quality floor: the segmenter actually splits messages
    // rather than returning them whole.
    std::size_t total_segments = 0;
    for (const auto& per_message : out) {
        total_segments += per_message.size();
    }
    EXPECT_GT(total_segments, messages.size());
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, NemesysInvariants,
    ::testing::Combine(::testing::Values("NTP", "DNS", "NBNS", "DHCP", "SMB", "AWDL", "AU"),
                       ::testing::Values(3ull, 77ull)),
    [](const ::testing::TestParamInfo<std::tuple<const char*, std::uint64_t>>& info) {
        return std::string(std::get<0>(info.param)) + "_seed" +
               std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace ftc::segmentation
