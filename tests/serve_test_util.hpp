// Shared helpers of the serve test suites: synthetic captures and a raw
// blocking HTTP/1.0 client. The client deliberately uses bare sockets —
// not util::net — so an armed I/O fault plan ticks only on the *daemon's*
// socket operations and the sweep in test_serve_faults stays
// deterministic.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "pcap/pcap.hpp"
#include "protocols/registry.hpp"
#include "util/byteio.hpp"

namespace ftc::serve_test {

/// A small deterministic capture as raw pcap bytes.
inline byte_vector make_capture_bytes(std::string_view protocol, std::size_t messages,
                                      std::uint64_t seed) {
    return pcap::to_pcap_bytes(
        protocols::trace_to_capture(protocols::generate_trace(protocol, messages, seed)));
}

#if defined(__unix__) || defined(__APPLE__)

/// Connect, send \p request verbatim, read until EOF. Returns the raw
/// response ("" when the daemon dropped the connection without a reply).
inline std::string http_exchange(std::uint16_t port, const std::string& request) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd);
        return {};
    }
    std::size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
        if (n <= 0) {
            break;
        }
        sent += static_cast<std::size_t>(n);
    }
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

inline std::string http_get(std::uint16_t port, const std::string& target) {
    return http_exchange(port, "GET " + target + " HTTP/1.0\r\n\r\n");
}

inline std::string http_post(std::uint16_t port, const std::string& target,
                             const byte_vector& body) {
    std::string request = "POST " + target + " HTTP/1.0\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n";
    request.append(reinterpret_cast<const char*>(body.data()), body.size());
    return http_exchange(port, request);
}

/// Status code of a raw response, or 0 when it is not parseable.
inline int response_status(const std::string& response) {
    if (response.rfind("HTTP/1.0 ", 0) != 0 || response.size() < 12) {
        return 0;
    }
    return std::stoi(response.substr(9, 3));
}

/// Everything after the blank line.
inline std::string response_body(const std::string& response) {
    const std::size_t at = response.find("\r\n\r\n");
    return at == std::string::npos ? std::string{} : response.substr(at + 4);
}

#endif  // unix

}  // namespace ftc::serve_test
