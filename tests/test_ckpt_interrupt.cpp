// Tests of graceful interruption: the resource-budget deadline or a stop
// request tripping mid-pipeline must leave a consistent partial-progress
// report, an interrupted checkpoint manifest, and obs counters that all
// tell the same story — then resume must complete bitwise identically.
#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <random>
#include <span>
#include <string>

#include "ckpt/manager.hpp"
#include "core/pipeline.hpp"
#include "mem/mem.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "protocols/registry.hpp"
#include "util/budget.hpp"
#include "util/check.hpp"
#include "util/interrupt.hpp"

namespace ftc {
namespace {

namespace fs = std::filesystem;

struct scenario {
    std::vector<byte_vector> messages;
    segmentation::message_segments segments;
};

scenario make_scenario() {
    // Large enough that the dissimilarity matrix dominates the runtime, so
    // a nano-deadline reliably trips inside that stage's parallel fan-out.
    const protocols::trace t = protocols::generate_trace("DHCP", 120, 11);
    return {segmentation::message_bytes(t), segmentation::segments_from_annotations(t)};
}

std::string slurp(const fs::path& path) {
    std::ifstream in(path);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Extract "segments N" / "bytes N" numbers from a partial report.
std::uint64_t report_number(const std::string& report, const std::string& key) {
    const std::size_t at = report.find(key + " ");
    if (at == std::string::npos) {
        return ~0ull;
    }
    return std::stoull(report.substr(at + key.size() + 1));
}

TEST(CkptInterrupt, DeadlineMidMatrixParallelReportsConsistentProgress) {
    const scenario s = make_scenario();
    const fs::path dir = fs::temp_directory_path() / "ftc_ckpt_interrupt_deadline";
    fs::remove_all(dir);

    obs::scoped_recorder recorder;
    ckpt::checkpoint_manager manager(dir, {1, 2});
    manager.on_segments(s.messages, s.segments);

    core::pipeline_options opt;
    opt.budget_seconds = 1e-6;  // trips during the matrix fan-out
    opt.threads = 0;            // parallel mode: lanes rethrow via the pool
    opt.observer = &manager;
    core::pipeline_seed seed;
    seed.segments = s.segments;

    std::size_t total_segments = 0;
    for (const auto& per_message : s.segments) {
        total_segments += per_message.size();
    }
    std::size_t total_bytes = 0;
    for (const auto& m : s.messages) {
        total_bytes += m.size();
    }

    try {
        core::analyze_seeded(s.messages, nullptr, std::move(seed), opt);
        FAIL() << "expected budget_exceeded_error";
    } catch (const budget_exceeded_error& e) {
        // The report's numbers and the obs counters come from the same
        // charge events — they must agree exactly.
        const std::string report = e.partial_report();
        EXPECT_EQ(report_number(report, "segments"), total_segments) << report;
        EXPECT_EQ(report_number(report, "bytes"), total_bytes) << report;
        EXPECT_NE(report.find("reached stage dissimilarity"), std::string::npos) << report;

        const obs::metrics_snapshot m = recorder.rec().metrics().snapshot();
        EXPECT_EQ(m.counters.at("budget.segments"), static_cast<double>(total_segments));
        EXPECT_EQ(m.counters.at("budget.bytes"), static_cast<double>(total_bytes));
        // The unique-segment gauge was published before the matrix started
        // and again by the unwinding path; both agree with the report.
        if (report.find("unique segments") != std::string::npos) {
            EXPECT_EQ(m.gauges.at("pipeline.unique_segments"),
                      static_cast<double>(report_number(report, "with")));
        }
    }

    // The interrupted manifest recorded the stage the trip lost; the
    // segmentation snapshot (completed before the trip) is still there.
    const std::string manifest = slurp(dir / ckpt::checkpoint_manager::kManifestFile);
    EXPECT_NE(manifest.find("\"status\":\"interrupted\""), std::string::npos) << manifest;
    EXPECT_NE(manifest.find("\"stage\":\"dissimilarity\""), std::string::npos) << manifest;
    EXPECT_TRUE(fs::exists(dir / ckpt::checkpoint_manager::kSegmentsFile));
    EXPECT_FALSE(fs::exists(dir / ckpt::checkpoint_manager::kMatrixFile));
    fs::remove_all(dir);
}

TEST(CkptInterrupt, StopRequestRaisesInterruptedErrorAndResumeCompletes) {
    const scenario s = make_scenario();
    const fs::path dir = fs::temp_directory_path() / "ftc_ckpt_interrupt_stop";
    fs::remove_all(dir);

    const core::pipeline_result plain = core::analyze_segments(s.messages, s.segments, {});

    // Interrupted checkpointed run: the stop request surfaces as
    // interrupted_error (not a budget trip) from the first check point.
    {
        scoped_interrupt_clear guard;
        ckpt::checkpoint_manager manager(dir, {1, 2});
        manager.on_segments(s.messages, s.segments);
        core::pipeline_options opt;
        opt.observer = &manager;
        core::pipeline_seed seed;
        seed.segments = s.segments;
        request_interrupt(15);
        EXPECT_THROW(core::analyze_seeded(s.messages, nullptr, std::move(seed), opt),
                     interrupted_error);
        const std::string manifest = slurp(dir / ckpt::checkpoint_manager::kManifestFile);
        EXPECT_NE(manifest.find("\"status\":\"interrupted\""), std::string::npos)
            << manifest;
    }

    // Flag cleared: resume from the surviving snapshots and finish; the
    // result matches the never-interrupted run exactly.
    {
        ckpt::checkpoint_manager manager(dir, {1, 2});
        diag::error_sink sink(diag::policy::lenient);
        ckpt::restored_state restored = manager.load(s.messages, sink);
        ASSERT_TRUE(restored.has_segments());
        core::pipeline_options opt;
        opt.observer = &manager;
        const core::pipeline_result resumed = core::analyze_seeded(
            restored.messages, nullptr, std::move(restored.seed), opt);
        manager.mark_complete();
        EXPECT_EQ(plain.final_labels.labels, resumed.final_labels.labels);
        EXPECT_EQ(plain.final_labels.cluster_count, resumed.final_labels.cluster_count);
        EXPECT_EQ(plain.clustering.config.epsilon, resumed.clustering.config.epsilon);
        const std::string manifest = slurp(dir / ckpt::checkpoint_manager::kManifestFile);
        EXPECT_NE(manifest.find("\"status\":\"complete\""), std::string::npos) << manifest;
    }
    fs::remove_all(dir);
}

/// Almost-all-unique segment values: the dense n×n matrix dominates the
/// run's peak, so a max_memory just below that peak deterministically
/// forces the tiled triangular build (the mem-degrade spill recipe).
scenario make_tile_scenario() {
    std::minstd_rand rng(13);
    scenario s;
    for (std::size_t m = 0; m < 200; ++m) {
        byte_vector msg;
        std::vector<segmentation::segment> segs;
        for (std::size_t k = 0; k < 2; ++k) {
            const std::size_t len = 4 + (rng() % 5);
            segs.push_back({m, msg.size(), len});
            for (std::size_t b = 0; b < len; ++b) {
                msg.push_back(static_cast<std::uint8_t>(rng()));
            }
        }
        s.messages.push_back(std::move(msg));
        s.segments.push_back(std::move(segs));
    }
    return s;
}

void sigterm_to_interrupt(int sig) { request_interrupt(sig); }

/// Delegates every announcement to the checkpoint manager, but delivers a
/// real SIGTERM right after the first spilled tile reaches disk — the kill
/// arrives while the tile stream is mid-flight, exactly the window where a
/// torn write would poison the checkpoint.
class sigterm_after_first_tile final : public core::stage_observer {
public:
    explicit sigterm_after_first_tile(core::stage_observer& inner) : inner_(inner) {}

    void on_segments(const std::vector<byte_vector>& messages,
                     const segmentation::message_segments& segments) override {
        inner_.on_segments(messages, segments);
    }
    void on_matrix(const dissim::unique_segments& unique,
                   const dissim::dissimilarity_matrix& matrix,
                   const std::vector<std::vector<double>>& knn_curves) override {
        inner_.on_matrix(unique, matrix, knn_curves);
    }
    void on_neighbors(const dissim::unique_segments& unique,
                      const dissim::capped_neighbors& neighbors,
                      const std::vector<std::vector<double>>& knn_curves) override {
        inner_.on_neighbors(unique, neighbors, knn_curves);
    }
    bool wants_matrix_tiles() const override { return inner_.wants_matrix_tiles(); }
    void on_matrix_tile(std::size_t row_begin, std::size_t row_end, std::size_t n,
                        std::span<const float> cells) override {
        inner_.on_matrix_tile(row_begin, row_end, n, cells);
        if (++tiles == 1) {
            std::raise(SIGTERM);
        }
    }
    void on_clustering(const cluster::auto_cluster_result& clustering) override {
        inner_.on_clustering(clustering);
    }
    void on_interrupted(const char* stage) override { inner_.on_interrupted(stage); }

    int tiles = 0;

private:
    core::stage_observer& inner_;
};

TEST(CkptInterrupt, SigtermDuringTileWriteLeavesNoTornFiles) {
    const scenario s = make_tile_scenario();
    const fs::path dir = fs::temp_directory_path() / "ftc_ckpt_interrupt_sigterm_tile";
    fs::remove_all(dir);

    // Baseline: peak (to size the pressure) and the reference labels.
    mem::reset_peak();
    const core::pipeline_result plain = core::analyze_segments(s.messages, s.segments, {});
    const std::uint64_t peak = mem::peak_bytes();
    const std::uint64_t n = plain.unique.size();
    const std::uint64_t dense_bytes = n * n * sizeof(float);
    ASSERT_GT(peak, dense_bytes);

    core::pipeline_options opt;
    opt.max_memory = static_cast<std::size_t>(peak - dense_bytes / 4);
    const ckpt::options_fingerprint fp = ckpt::fingerprint(opt, "true", 7);

    // SIGTERM lands via the CLI's own handler contract: the signal sets the
    // interrupt flag, the run unwinds at the next check point while tiles
    // may still be streaming.
    using handler = void (*)(int);
    const handler previous = std::signal(SIGTERM, sigterm_to_interrupt);
    ASSERT_NE(previous, SIG_ERR);
    int tiles_before_signal = 0;
    {
        scoped_interrupt_clear guard;
        ckpt::checkpoint_manager manager(dir, fp);
        manager.on_segments(s.messages, s.segments);
        sigterm_after_first_tile killer(manager);
        core::pipeline_options observed = opt;
        observed.observer = &killer;
        core::pipeline_seed seed;
        seed.segments = s.segments;
        EXPECT_THROW(core::analyze_seeded(s.messages, nullptr, std::move(seed), observed),
                     interrupted_error);
        tiles_before_signal = killer.tiles;
        EXPECT_EQ(interrupt_signal(), SIGTERM);
    }
    std::signal(SIGTERM, previous);
    // The signal really did land inside the tile stream.
    ASSERT_GE(tiles_before_signal, 1);
    ASSERT_TRUE(fs::exists(dir / ckpt::checkpoint_manager::tile_file(0)));

    // Invariant #1: every file in the checkpoint dir is complete or absent
    // — atomic_write_file's temp files never survive the unwind.
    for (const fs::directory_entry& entry : fs::recursive_directory_iterator(dir)) {
        EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
    }
    const std::string manifest = slurp(dir / ckpt::checkpoint_manager::kManifestFile);
    EXPECT_NE(manifest.find("\"status\":\"interrupted\""), std::string::npos) << manifest;

    // Invariant #2: a strict-policy load accepts everything that survived —
    // nothing on disk is torn, half-renamed, or internally inconsistent.
    diag::error_sink strict(diag::policy::strict);
    ckpt::checkpoint_manager manager(dir, fp);
    ckpt::restored_state restored = manager.load(s.messages, strict);
    ASSERT_TRUE(restored.has_segments());

    // Invariant #3: the flag is cleared, and resuming from the survivors
    // reproduces the uninterrupted run exactly.
    const core::pipeline_result resumed = core::analyze_seeded(
        restored.messages, nullptr, std::move(restored.seed), opt);
    manager.mark_complete();
    EXPECT_EQ(plain.final_labels.labels, resumed.final_labels.labels);
    EXPECT_EQ(plain.final_labels.cluster_count, resumed.final_labels.cluster_count);
    fs::remove_all(dir);
}

TEST(CkptInterrupt, InterruptCounterPublishedOnStopRequest) {
    scoped_interrupt_clear guard;
    obs::scoped_recorder recorder;
    resource_budget budget;
    request_interrupt();
    EXPECT_THROW(budget.check("stage"), interrupted_error);
    const obs::metrics_snapshot m = recorder.rec().metrics().snapshot();
    EXPECT_EQ(m.counters.at("budget.interrupted_total"), 1.0);
}

}  // namespace
}  // namespace ftc
