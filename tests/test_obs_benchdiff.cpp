// The bench-history diff behind tools/bench_compare: golden JSON strings
// drive parse_bench_report + compare + render_compare, pinning the
// regression semantics CI gates on (quality drops are absolute, cost moves
// are relative and noise-gated, missing/newly-failing runs always regress).
#include <gtest/gtest.h>

#include <string>

#include "obs/benchdiff.hpp"
#include "util/error.hpp"

namespace ftc::obs {
namespace {

/// A minimal two-run table1 report; tweak fields per test via replace().
std::string report(double f_score, double elapsed, bool failed = false) {
    std::string json = R"({
      "bench": "table1",
      "meta": {"git_sha": "abc123def456", "timestamp": "2026-08-09T00:00:00Z",
               "hostname": "ci", "build_type": "Release",
               "kernel_backend": "avx2", "threads": 8},
      "runs": [
        {"label": "dns/100", "failed": FAILED, "f_score": FSCORE,
         "precision": 0.9, "recall": 0.85, "coverage": 0.8,
         "elapsed_seconds": ELAPSED, "peak_bytes": 1000000},
        {"label": "ntp/100", "failed": false, "f_score": 0.95,
         "precision": 0.95, "recall": 0.95, "coverage": 0.9,
         "elapsed_seconds": 1.0, "peak_bytes": 2000000}
      ]
    })";
    const auto replace = [&json](const std::string& key, const std::string& value) {
        json.replace(json.find(key), key.size(), value);
    };
    replace("FAILED", failed ? "true" : "false");
    replace("FSCORE", std::to_string(f_score));
    replace("ELAPSED", std::to_string(elapsed));
    return json;
}

TEST(ObsBenchdiff, ParsesReportAndMeta) {
    const bench_file f = parse_bench_report(report(0.91, 2.0), "BENCH_table1.json");
    EXPECT_EQ(f.bench, "table1");
    EXPECT_EQ(f.path, "BENCH_table1.json");
    EXPECT_EQ(f.meta.git_sha, "abc123def456");
    EXPECT_EQ(f.meta.hostname, "ci");
    EXPECT_EQ(f.meta.kernel_backend, "avx2");
    EXPECT_EQ(f.meta.threads, 8u);
    ASSERT_EQ(f.runs.size(), 2u);
    EXPECT_EQ(f.runs[0].label, "dns/100");
    EXPECT_DOUBLE_EQ(f.runs[0].f_score, 0.91);
    EXPECT_DOUBLE_EQ(f.runs[0].peak_bytes, 1000000.0);
}

TEST(ObsBenchdiff, PreMetaFileFallsBackToUnknown) {
    const bench_file f = parse_bench_report(
        R"({"bench":"table1","runs":[{"label":"dns/100","f_score":0.9}]})");
    EXPECT_EQ(f.meta.git_sha, "unknown");
    EXPECT_EQ(f.meta.hostname, "unknown");
    EXPECT_EQ(f.meta.threads, 0u);
    EXPECT_FALSE(f.runs[0].failed);  // omitted fields default quietly
}

TEST(ObsBenchdiff, MalformedInputThrows) {
    EXPECT_THROW(parse_bench_report("{not json", "bad.json"), ftc::error);
    EXPECT_THROW(parse_bench_report(R"({"runs":[]})"), ftc::error);      // no bench
    EXPECT_THROW(parse_bench_report(R"({"bench":"t"})"), ftc::error);    // no runs
    EXPECT_THROW(parse_bench_report("[1,2,3]"), ftc::error);             // not object
    EXPECT_THROW(load_bench_report("/nonexistent-dir-xyz/b.json"), ftc::error);
}

TEST(ObsBenchdiff, IdenticalFilesHaveNoRegression) {
    const bench_file base = parse_bench_report(report(0.91, 2.0));
    const compare_result r = compare(base, base);
    EXPECT_FALSE(r.has_regression());
    EXPECT_EQ(r.regressions, 0u);
    EXPECT_EQ(r.improvements, 0u);
    EXPECT_TRUE(r.deltas.empty());
}

TEST(ObsBenchdiff, QualityDropBeyondToleranceRegresses) {
    const bench_file base = parse_bench_report(report(0.91, 2.0));
    // Inside the 0.01 absolute tolerance: quiet.
    EXPECT_FALSE(compare(base, parse_bench_report(report(0.905, 2.0))).has_regression());
    // Past it: regression on f_score for that run only.
    const compare_result r = compare(base, parse_bench_report(report(0.85, 2.0)));
    ASSERT_EQ(r.regressions, 1u);
    EXPECT_EQ(r.deltas[0].label, "dns/100");
    EXPECT_EQ(r.deltas[0].metric, "f_score");
    EXPECT_EQ(r.deltas[0].level, bench_delta::severity::regression);
    // A quality gain is an improvement, never a regression.
    const compare_result up = compare(base, parse_bench_report(report(0.97, 2.0)));
    EXPECT_FALSE(up.has_regression());
    EXPECT_EQ(up.improvements, 1u);
}

TEST(ObsBenchdiff, TimeRegressionIsRelativeAndIgnorable) {
    const bench_file base = parse_bench_report(report(0.91, 2.0));
    // +20% is inside the default 30% noise gate.
    EXPECT_FALSE(compare(base, parse_bench_report(report(0.91, 2.4))).has_regression());
    // +100% regresses...
    const bench_file slow = parse_bench_report(report(0.91, 4.0));
    EXPECT_TRUE(compare(base, slow).has_regression());
    // ...unless time is ignored (the CI default against a committed baseline).
    compare_options opt;
    opt.ignore_time = true;
    EXPECT_FALSE(compare(base, slow, opt).has_regression());
    // A big speedup reports as an improvement.
    const compare_result fast = compare(base, parse_bench_report(report(0.91, 0.5)));
    EXPECT_FALSE(fast.has_regression());
    EXPECT_EQ(fast.improvements, 1u);
    EXPECT_EQ(fast.deltas[0].metric, "elapsed_seconds");
}

TEST(ObsBenchdiff, MissingRunAlwaysRegresses) {
    const bench_file base = parse_bench_report(report(0.91, 2.0));
    const bench_file only_ntp = parse_bench_report(
        R"({"bench":"table1","runs":[{"label":"ntp/100","f_score":0.95,)"
        R"("precision":0.95,"recall":0.95,"coverage":0.9,)"
        R"("elapsed_seconds":1.0,"peak_bytes":2000000}]})");
    const compare_result r = compare(base, only_ntp);
    ASSERT_GE(r.regressions, 1u);
    EXPECT_EQ(r.deltas[0].label, "dns/100");
    EXPECT_EQ(r.deltas[0].metric, "status");
    EXPECT_NE(r.deltas[0].message.find("missing"), std::string::npos);
}

TEST(ObsBenchdiff, NewlyFailingRegressesAndRecoveryImproves) {
    const bench_file ok = parse_bench_report(report(0.91, 2.0));
    const bench_file broken = parse_bench_report(report(0.0, 0.0, /*failed=*/true));
    const compare_result r = compare(ok, broken);
    ASSERT_GE(r.regressions, 1u);
    EXPECT_EQ(r.deltas[0].metric, "status");
    EXPECT_NE(r.deltas[0].message.find("newly failing"), std::string::npos);
    // The reverse direction is an improvement, and the failed row's zeroed
    // numbers must not generate bogus quality/cost regressions.
    const compare_result back = compare(broken, ok);
    EXPECT_FALSE(back.has_regression());
    EXPECT_GE(back.improvements, 1u);
}

TEST(ObsBenchdiff, NewRunIsInfoOnly) {
    const bench_file base = parse_bench_report(
        R"({"bench":"table1","runs":[{"label":"dns/100","f_score":0.91,)"
        R"("precision":0.9,"recall":0.85,"coverage":0.8,)"
        R"("elapsed_seconds":2.0,"peak_bytes":1000000}]})");
    const compare_result r = compare(base, parse_bench_report(report(0.91, 2.0)));
    EXPECT_FALSE(r.has_regression());
    ASSERT_EQ(r.deltas.size(), 1u);
    EXPECT_EQ(r.deltas[0].level, bench_delta::severity::info);
    EXPECT_EQ(r.deltas[0].label, "ntp/100");
}

TEST(ObsBenchdiff, RegressionsSortBeforeImprovements) {
    const bench_file base = parse_bench_report(report(0.91, 2.0));
    // f_score drops (regression) while time halves (improvement).
    const compare_result r = compare(base, parse_bench_report(report(0.80, 0.5)));
    ASSERT_GE(r.deltas.size(), 2u);
    EXPECT_EQ(r.deltas[0].level, bench_delta::severity::regression);
    EXPECT_EQ(r.deltas.back().level, bench_delta::severity::improvement);
}

TEST(ObsBenchdiff, RenderContainsMetaAndVerdict) {
    const bench_file base = parse_bench_report(report(0.91, 2.0), "baseline.json");
    const bench_file bad = parse_bench_report(report(0.80, 2.0), "candidate.json");
    const compare_result r = compare(base, bad);
    const std::string text = render_compare(base, bad, r);
    EXPECT_NE(text.find("bench: table1"), std::string::npos);
    EXPECT_NE(text.find("baseline.json"), std::string::npos);
    EXPECT_NE(text.find("abc123def456"), std::string::npos);
    EXPECT_NE(text.find("[REGRESSION] dns/100"), std::string::npos);
    EXPECT_NE(text.find("verdict: REGRESSION"), std::string::npos);

    const std::string clean = render_compare(base, base, compare(base, base));
    EXPECT_NE(clean.find("no differences beyond thresholds"), std::string::npos);
    EXPECT_NE(clean.find("verdict: ok"), std::string::npos);
}

}  // namespace
}  // namespace ftc::obs
