// Unit tests for hex rendering/parsing (util/hex.hpp).
#include "util/hex.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ftc {
namespace {

TEST(Hex, EncodeKnownBytes) {
    EXPECT_EQ(to_hex(byte_vector{0xd2, 0x3d, 0x19}), "d23d19");
    EXPECT_EQ(to_hex(byte_vector{}), "");
    EXPECT_EQ(to_hex(byte_vector{0x00, 0xff}), "00ff");
}

TEST(Hex, DecodeKnownStrings) {
    EXPECT_EQ(from_hex("d23d19"), (byte_vector{0xd2, 0x3d, 0x19}));
    EXPECT_EQ(from_hex("D23D19"), (byte_vector{0xd2, 0x3d, 0x19}));
    EXPECT_EQ(from_hex(""), byte_vector{});
}

TEST(Hex, DecodeRejectsOddLength) {
    EXPECT_THROW(from_hex("abc"), parse_error);
}

TEST(Hex, DecodeRejectsNonHexDigits) {
    EXPECT_THROW(from_hex("zz"), parse_error);
    EXPECT_THROW(from_hex("0g"), parse_error);
}

TEST(Hex, PrintableAsciiPredicate) {
    EXPECT_TRUE(is_printable_ascii(' '));
    EXPECT_TRUE(is_printable_ascii('A'));
    EXPECT_TRUE(is_printable_ascii('~'));
    EXPECT_FALSE(is_printable_ascii(0x1f));
    EXPECT_FALSE(is_printable_ascii(0x7f));
    EXPECT_FALSE(is_printable_ascii(0x00));
}

TEST(Hex, HexdumpShowsOffsetsHexAndGutter) {
    byte_vector data;
    for (int i = 0; i < 20; ++i) {
        data.push_back(static_cast<std::uint8_t>('A' + i));
    }
    const std::string dump = hexdump(data);
    EXPECT_NE(dump.find("00000000"), std::string::npos);
    EXPECT_NE(dump.find("00000010"), std::string::npos);
    EXPECT_NE(dump.find("41 "), std::string::npos);
    EXPECT_NE(dump.find("|ABCDEFGHIJKLMNOP|"), std::string::npos);
}

TEST(Hex, HexdumpMasksUnprintableBytes) {
    const std::string dump = hexdump(byte_vector{0x00, 'A', 0xff});
    EXPECT_NE(dump.find("|.A.|"), std::string::npos);
}

TEST(Hex, HexdumpEmptyInputYieldsEmptyString) {
    EXPECT_EQ(hexdump(byte_vector{}), "");
}

// Property sweep: decode(encode(x)) == x for random byte strings.
class HexRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HexRoundTrip, EncodeDecodeIsIdentity) {
    rng rand(GetParam());
    const std::size_t len = rand.uniform(0, 64);
    const byte_vector data = rand.bytes(len);
    EXPECT_EQ(from_hex(to_hex(data)), data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HexRoundTrip, ::testing::Range<std::uint64_t>(0, 16));

}  // namespace
}  // namespace ftc
