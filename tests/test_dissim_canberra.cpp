// Unit and property tests for the Canberra dissimilarity (dissim/canberra.hpp).
#include "dissim/canberra.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ftc::dissim {
namespace {

TEST(Canberra, DistanceKnownValues) {
    // |1-3|/(1+3) + |2-2|/(2+2) = 0.5.
    const byte_vector x{1, 2};
    const byte_vector y{3, 2};
    EXPECT_DOUBLE_EQ(canberra_distance(x, y), 0.5);
}

TEST(Canberra, ZeroPairsContributeNothing) {
    const byte_vector x{0, 0, 4};
    const byte_vector y{0, 0, 4};
    EXPECT_DOUBLE_EQ(canberra_distance(x, y), 0.0);
    // 0 vs nonzero contributes a full unit: |0-5|/(0+5) = 1.
    const byte_vector z{0, 0, 4};
    const byte_vector w{5, 0, 4};
    EXPECT_DOUBLE_EQ(canberra_distance(z, w), 1.0);
}

TEST(Canberra, DistanceRejectsLengthMismatch) {
    EXPECT_THROW(canberra_distance(byte_vector{1}, byte_vector{1, 2}), precondition_error);
}

TEST(Canberra, DissimilarityNormalizedByLength) {
    const byte_vector x{1, 2};
    const byte_vector y{3, 2};
    EXPECT_DOUBLE_EQ(canberra_dissimilarity(x, y), 0.25);
}

TEST(Canberra, DissimilarityRejectsEmpty) {
    EXPECT_THROW(canberra_dissimilarity(byte_vector{}, byte_vector{}), precondition_error);
}

TEST(Canberra, IdenticalVectorsHaveZeroDissimilarity) {
    const byte_vector x{0xd2, 0x3d, 0x19, 0x00};
    EXPECT_DOUBLE_EQ(canberra_dissimilarity(x, x), 0.0);
    EXPECT_DOUBLE_EQ(sliding_canberra_dissimilarity(x, x), 0.0);
}

TEST(Canberra, MaximallyDifferentVectorsReachOne) {
    const byte_vector x{0, 0, 0};
    const byte_vector y{255, 255, 255};
    EXPECT_DOUBLE_EQ(canberra_dissimilarity(x, y), 1.0);
}

TEST(Sliding, EqualLengthFallsBackToPlainCanberra) {
    const byte_vector x{1, 2, 3};
    const byte_vector y{3, 2, 1};
    EXPECT_DOUBLE_EQ(sliding_canberra_dissimilarity(x, y), canberra_dissimilarity(x, y));
}

TEST(Sliding, PerfectEmbeddingScoresByLengthRatio) {
    // s embedded exactly in l: d_min = 0, penalty p = 1 - m/n.
    const byte_vector s{10, 20};
    const byte_vector l{99, 10, 20, 99};  // m=2, n=4 -> p = 0.5, d = (0 + 2*0.5)/4 = 0.25
    EXPECT_DOUBLE_EQ(sliding_canberra_dissimilarity(s, l), 0.25);
    EXPECT_DOUBLE_EQ(sliding_canberra_dissimilarity(l, s), 0.25);
}

TEST(Sliding, ChoosesBestWindow) {
    const byte_vector s{50, 60};
    const byte_vector l{50, 61, 0, 255};  // best at offset 0
    const double d = sliding_canberra_dissimilarity(s, l);
    // d_min = (0 + 1/121)/2 ~ 0.00413; with m=2, n=4.
    const double d_min = (1.0 / 121.0) / 2.0;
    const double p = 1.0 - 0.5 * (1.0 - d_min);
    EXPECT_NEAR(d, (2 * d_min + 2 * p) / 4.0, 1e-12);
}

TEST(Sliding, CloserLengthsPenalizedLess) {
    const byte_vector s{1, 2, 3, 4};
    const byte_vector near{1, 2, 3, 4, 9};
    const byte_vector far{1, 2, 3, 4, 9, 9, 9, 9, 9, 9};
    EXPECT_LT(sliding_canberra_dissimilarity(s, near), sliding_canberra_dissimilarity(s, far));
}

TEST(Sliding, RejectsEmptySegments) {
    EXPECT_THROW(sliding_canberra_dissimilarity(byte_vector{}, byte_vector{1}),
                 precondition_error);
}

// Property sweep: metric axioms over random segments.
class CanberraProps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CanberraProps, SymmetryRangeAndIdentity) {
    rng rand(GetParam());
    for (int trial = 0; trial < 50; ++trial) {
        const byte_vector a = rand.bytes(1 + rand.uniform(0, 15));
        const byte_vector b = rand.bytes(1 + rand.uniform(0, 15));
        const double dab = sliding_canberra_dissimilarity(a, b);
        const double dba = sliding_canberra_dissimilarity(b, a);
        EXPECT_DOUBLE_EQ(dab, dba);
        EXPECT_GE(dab, 0.0);
        EXPECT_LE(dab, 1.0);
        EXPECT_DOUBLE_EQ(sliding_canberra_dissimilarity(a, a), 0.0);
    }
}

TEST_P(CanberraProps, EqualLengthZeroOnlyForIdentical) {
    rng rand(GetParam());
    const byte_vector a = rand.bytes(8);
    byte_vector b = a;
    b[3] = static_cast<std::uint8_t>(b[3] ^ 0x01);
    EXPECT_GT(canberra_dissimilarity(a, b), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanberraProps, ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace ftc::dissim
