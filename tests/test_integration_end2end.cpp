// End-to-end integration: generator -> pcap file on disk -> extraction ->
// dissection -> clustering pipeline -> metrics, plus failure injection.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/metrics.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "fieldhunter/fieldhunter.hpp"
#include "pcap/pcap.hpp"
#include "protocols/registry.hpp"
#include "segmentation/segment.hpp"
#include "util/check.hpp"

namespace ftc {
namespace {

class EndToEnd : public ::testing::TestWithParam<const char*> {};

TEST_P(EndToEnd, FullLoopThroughPcapFile) {
    const std::string proto = GetParam();
    const std::size_t n = proto == "AU" ? 123 : 120;
    const protocols::trace original = protocols::generate_trace(proto, n, 2026);

    // Write the capture to a real file and read it back.
    const auto path = std::filesystem::temp_directory_path() /
                      ("ftclust_e2e_" + proto + ".pcap");
    pcap::write_file(path, protocols::trace_to_capture(original));
    const pcap::capture loaded = pcap::read_file(path);
    std::filesystem::remove(path);

    // Rebuild ground truth from wire bytes alone.
    const protocols::trace rebuilt =
        protocols::trace_from_payloads(proto, protocols::capture_payloads(loaded));
    ASSERT_EQ(rebuilt.messages.size(), original.messages.size());

    // Cluster on ground-truth segmentation and demand the paper's shape:
    // high precision for every protocol.
    const auto messages = segmentation::message_bytes(rebuilt);
    const core::pipeline_result result = core::analyze_segments(
        messages, segmentation::segments_from_annotations(rebuilt), {});
    // Flow/type context lives in the original trace (extraction does not
    // recover request/response direction for annotations).
    const core::typed_segments typed = core::assign_types(rebuilt, result.unique);
    const core::clustering_quality q =
        core::evaluate_clustering(result.final_labels, typed, rebuilt.total_bytes());
    // SMB suffers the paper's timestamp/signature confusion; DHCP@120 mixes
    // its 4-byte addresses and numbers at this small trace size.
    const double floor = (proto == "SMB" || proto == "DHCP") ? 0.25 : 0.6;
    EXPECT_GE(q.precision, floor) << proto;
    // DHCP messages are mostly zero padding (sname/file areas), which the
    // pipeline rightly leaves unclustered; its byte coverage is low.
    const double coverage_floor = proto == "DHCP" ? 0.04 : 0.1;
    EXPECT_GT(q.coverage, coverage_floor) << proto;
    EXPECT_GE(result.final_labels.cluster_count, 2u) << proto;
}

INSTANTIATE_TEST_SUITE_P(Protocols, EndToEnd,
                         ::testing::Values("NTP", "DNS", "NBNS", "DHCP", "SMB", "AWDL", "AU"));

TEST(Integration, HeuristicSegmentersKeepPrecisionOnDns) {
    const protocols::trace t = protocols::generate_trace("DNS", 100, 99);
    const auto messages = segmentation::message_bytes(t);
    for (const char* seg_name : {"NEMESYS", "CSP"}) {
        const auto segmenter = segmentation::make_segmenter(seg_name);
        core::pipeline_options opt;
        opt.budget_seconds = 60;
        const core::pipeline_result r = core::analyze(messages, *segmenter, opt);
        const core::typed_segments typed = core::assign_types(t, r.unique);
        const core::clustering_quality q =
            core::evaluate_clustering(r.final_labels, typed, t.total_bytes());
        EXPECT_GE(q.precision, 0.4) << seg_name;
    }
}

TEST(Integration, ClusteringCoverageBeatsFieldHunter) {
    // The headline comparison (paper Sec. IV-D): clustering covers far more
    // message bytes than FieldHunter's rule-based typing.
    const protocols::trace t = protocols::generate_trace("NTP", 300, 7);
    const auto messages = segmentation::message_bytes(t);
    const core::pipeline_result r = core::analyze_segments(
        messages, segmentation::segments_from_annotations(t), {});
    const core::typed_segments typed = core::assign_types(t, r.unique);
    const core::clustering_quality q =
        core::evaluate_clustering(r.final_labels, typed, t.total_bytes());
    const fieldhunter::fh_result fh = fieldhunter::infer(fieldhunter::from_trace(t));
    EXPECT_GT(q.coverage, 2.0 * fh.coverage());
}

TEST(Integration, CorruptPcapFileRejected) {
    const auto path = std::filesystem::temp_directory_path() / "ftclust_corrupt.pcap";
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a pcap file at all";
    }
    EXPECT_THROW(pcap::read_file(path), parse_error);
    std::filesystem::remove(path);
}

TEST(Integration, TruncatedPcapFileRejected) {
    const protocols::trace t = protocols::generate_trace("NTP", 5, 1);
    byte_vector bytes = pcap::to_pcap_bytes(protocols::trace_to_capture(t));
    bytes.resize(bytes.size() - 7);
    EXPECT_THROW(pcap::from_pcap_bytes(bytes), parse_error);
}

TEST(Integration, TinyTraceStillConfigures) {
    // n < e^2 means round(ln n) < 2: the k range degenerates to {2} and the
    // pipeline must still produce a configuration.
    const protocols::trace t = protocols::generate_trace("NTP", 6, 3);
    const auto messages = segmentation::message_bytes(t);
    const core::pipeline_result r = core::analyze_segments(
        messages, segmentation::segments_from_annotations(t), {});
    EXPECT_GE(r.clustering.config.min_samples, 2u);
    EXPECT_GT(r.clustering.config.epsilon, 0.0);
}

TEST(Integration, ZeroLengthMessagesHandled) {
    // Degenerate message list with an empty message: segmenters must not
    // crash; the empty message simply contributes no segments.
    std::vector<byte_vector> messages{{}, {1, 2, 3, 4, 5, 6, 7, 8}, {9, 9, 1, 2, 3, 4, 5, 6}};
    const auto seg = segmentation::make_segmenter("NEMESYS");
    const segmentation::message_segments out = seg->run(messages, {});
    EXPECT_TRUE(out[0].empty());
    EXPECT_FALSE(out[1].empty());
}

TEST(Integration, ReportRendersForEveryProtocol) {
    for (const char* proto : {"NTP", "DNS", "AWDL"}) {
        const protocols::trace t = protocols::generate_trace(proto, 60, 5);
        const auto messages = segmentation::message_bytes(t);
        const core::pipeline_result r = core::analyze_segments(
            messages, segmentation::segments_from_annotations(t), {});
        const std::string report = core::render_report(core::summarize_clusters(r));
        EXPECT_GT(report.size(), 50u) << proto;
    }
}

TEST(Integration, DeduplicationMatchesPaperPreprocessing) {
    // Duplicate messages in a capture are dropped in preprocessing; the
    // pipeline input after dedup has only distinct payloads.
    protocols::trace t = protocols::generate_trace("NTP", 30, 8);
    protocols::trace doubled = t;
    for (const auto& m : t.messages) {
        doubled.messages.push_back(m);
    }
    const protocols::trace deduped = protocols::deduplicate(doubled);
    EXPECT_EQ(deduped.messages.size(), t.messages.size());
}

}  // namespace
}  // namespace ftc
