// The crash-durable job journal: append/transition round-trips, id
// continuation across reopen, and quarantine of damaged metadata or
// payloads — one corrupt spool file fails one job, never the scan.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#if defined(__unix__)
#include <unistd.h>
#endif

#include "serve/spool.hpp"
#include "util/diag.hpp"
#include "util/error.hpp"

namespace ftc::serve {
namespace {

namespace fs = std::filesystem;

byte_vector bytes(std::string_view text) {
    return byte_vector(text.begin(), text.end());
}

fs::path fresh_dir(const char* name) {
    const fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    return dir;
}

TEST(ServeSpool, AppendJournalsPayloadAndMetadata) {
    const fs::path dir = fresh_dir("ftc_serve_spool_append");
    spool journal(dir);
    const std::uint64_t id = journal.append(bytes("capture-bytes"));
    EXPECT_EQ(id, 1u);
    EXPECT_TRUE(fs::exists(journal.payload_file(id)));
    EXPECT_TRUE(fs::exists(journal.meta_file(id)));

    diag::error_sink sink(diag::policy::lenient);
    const std::vector<spool_entry> entries = journal.scan(sink);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].id, 1u);
    EXPECT_EQ(entries[0].phase, job_phase::accepted);
    EXPECT_EQ(entries[0].payload_bytes, 13u);
    const byte_vector back = journal.read_payload(id, entries[0].payload_digest);
    EXPECT_EQ(back, bytes("capture-bytes"));
}

TEST(ServeSpool, TransitionsPersistAcrossReopen) {
    const fs::path dir = fresh_dir("ftc_serve_spool_reopen");
    {
        spool journal(dir);
        (void)journal.append(bytes("one"));
        (void)journal.append(bytes("two"));
        (void)journal.append(bytes("three"));
        journal.mark_done(1);
        journal.mark_failed(2, "synthetic failure");
    }
    spool reopened(dir);
    diag::error_sink sink(diag::policy::lenient);
    const std::vector<spool_entry> entries = reopened.scan(sink);
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].phase, job_phase::done);
    EXPECT_EQ(entries[1].phase, job_phase::failed);
    EXPECT_EQ(entries[1].error, "synthetic failure");
    EXPECT_EQ(entries[2].phase, job_phase::accepted);
    // Replayed transitions work on adopted entries too.
    reopened.mark_done(3);
    // Ids continue after the highest journaled one.
    EXPECT_EQ(reopened.append(bytes("four")), 4u);
}

TEST(ServeSpool, DamagedMetadataIsQuarantinedPerJob) {
    const fs::path dir = fresh_dir("ftc_serve_spool_badmeta");
    {
        spool journal(dir);
        (void)journal.append(bytes("kept"));
        (void)journal.append(bytes("damaged"));
    }
    {
        std::ofstream out(dir / "job-2.json", std::ios::trunc);
        out << "{ not json";
    }
    spool journal(dir);
    diag::error_sink sink(diag::policy::lenient);
    const std::vector<spool_entry> entries = journal.scan(sink);
    ASSERT_EQ(entries.size(), 1u);  // job 2 quarantined, job 1 intact
    EXPECT_EQ(entries[0].id, 1u);
    EXPECT_EQ(sink.count(diag::category::spool), 1u);

    // Strict policy turns the same damage into a throw.
    diag::error_sink strict(diag::policy::strict);
    EXPECT_THROW((void)journal.scan(strict), ftc::error);
}

TEST(ServeSpool, PayloadDigestMismatchDowngradesToFailed) {
    const fs::path dir = fresh_dir("ftc_serve_spool_rot");
    std::uint64_t id = 0;
    {
        spool journal(dir);
        id = journal.append(bytes("pristine payload"));
    }
    {
        std::fstream f(dir / "job-1.pcap", std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(0);
        f.put('X');  // bit rot
    }
    spool journal(dir);
    diag::error_sink sink(diag::policy::lenient);
    const std::vector<spool_entry> entries = journal.scan(sink);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].phase, job_phase::failed);
    EXPECT_NE(entries[0].error.find("digest"), std::string::npos);
    EXPECT_EQ(sink.count(diag::category::spool), 1u);
    EXPECT_THROW((void)journal.read_payload(id, entries[0].payload_digest),
                 ftc::parse_error);
}

TEST(ServeSpool, UnwritableDirectoryFailsAtConstruction) {
#if defined(__unix__)
    if (::geteuid() == 0) {
        GTEST_SKIP() << "root ignores directory permissions";
    }
    const fs::path dir = fresh_dir("ftc_serve_spool_ro");
    fs::create_directories(dir);
    fs::permissions(dir, fs::perms::owner_read | fs::perms::owner_exec);
    EXPECT_THROW(spool{dir}, ftc::error);
    fs::permissions(dir, fs::perms::owner_all);
#else
    GTEST_SKIP() << "permission probe is unix-only";
#endif
}

}  // namespace
}  // namespace ftc::serve
