// Integration-level tests of the full analysis pipeline (core/pipeline.hpp).
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "protocols/registry.hpp"
#include "segmentation/nemesys.hpp"
#include "util/check.hpp"

namespace ftc::core {
namespace {

TEST(Pipeline, GroundTruthNtpClustersWithHighPrecision) {
    const protocols::trace t = protocols::generate_trace("NTP", 150, 42);
    const auto messages = segmentation::message_bytes(t);
    const pipeline_result r =
        analyze_segments(messages, segmentation::segments_from_annotations(t), {});
    const typed_segments typed = assign_types(t, r.unique);
    const clustering_quality q = evaluate_clustering(r.final_labels, typed, t.total_bytes());
    EXPECT_GE(q.precision, 0.9);
    EXPECT_GE(q.f_score, 0.85);
    EXPECT_GE(r.final_labels.cluster_count, 2u);
}

TEST(Pipeline, GroundTruthDnsClustersWithHighPrecision) {
    const protocols::trace t = protocols::generate_trace("DNS", 150, 42);
    const auto messages = segmentation::message_bytes(t);
    const pipeline_result r =
        analyze_segments(messages, segmentation::segments_from_annotations(t), {});
    const typed_segments typed = assign_types(t, r.unique);
    const clustering_quality q = evaluate_clustering(r.final_labels, typed, t.total_bytes());
    EXPECT_GE(q.precision, 0.9);
    EXPECT_GE(q.f_score, 0.85);
}

TEST(Pipeline, StageOutputsAreConsistent) {
    const protocols::trace t = protocols::generate_trace("DNS", 60, 7);
    const auto messages = segmentation::message_bytes(t);
    const pipeline_result r =
        analyze_segments(messages, segmentation::segments_from_annotations(t), {});
    // Labels cover exactly the unique segments.
    EXPECT_EQ(r.final_labels.labels.size(), r.unique.size());
    EXPECT_EQ(r.clustering.labels.labels.size(), r.unique.size());
    // Every occurrence references a valid message/offset.
    for (const auto& occs : r.unique.occurrences) {
        EXPECT_FALSE(occs.empty());
        for (const auto& seg : occs) {
            ASSERT_LT(seg.message_index, messages.size());
            EXPECT_LE(seg.offset + seg.length, messages[seg.message_index].size());
            EXPECT_GE(seg.length, 2u);
        }
    }
    // Unique values are in fact distinct.
    for (std::size_t i = 0; i < r.unique.size(); ++i) {
        for (std::size_t j = i + 1; j < r.unique.size(); ++j) {
            EXPECT_NE(r.unique.values[i], r.unique.values[j]);
        }
    }
    EXPECT_GT(r.elapsed_seconds, 0.0);
}

TEST(Pipeline, RefinementToggle) {
    const protocols::trace t = protocols::generate_trace("NTP", 80, 11);
    const auto messages = segmentation::message_bytes(t);
    pipeline_options with;
    with.apply_refinement = true;
    pipeline_options without;
    without.apply_refinement = false;
    const pipeline_result a =
        analyze_segments(messages, segmentation::segments_from_annotations(t), with);
    const pipeline_result b =
        analyze_segments(messages, segmentation::segments_from_annotations(t), without);
    // Without refinement the final labels are the raw DBSCAN labels.
    EXPECT_EQ(b.final_labels.labels, b.clustering.labels.labels);
    EXPECT_TRUE(b.refinement.merges.empty());
    EXPECT_TRUE(b.refinement.splits.empty());
    // With refinement, the audit trail matches the label change.
    if (a.refinement.merges.empty() && a.refinement.splits.empty()) {
        EXPECT_EQ(a.final_labels.labels, a.clustering.labels.labels);
    }
}

TEST(Pipeline, MinSegmentLengthExcludesShortSegments) {
    const protocols::trace t = protocols::generate_trace("NTP", 60, 13);
    const auto messages = segmentation::message_bytes(t);
    pipeline_options opt;
    opt.min_segment_length = 2;
    const pipeline_result r =
        analyze_segments(messages, segmentation::segments_from_annotations(t), opt);
    // NTP has four 1-byte fields per message: they must all be excluded.
    EXPECT_GT(r.unique.short_segments, 0u);
    for (const byte_vector& v : r.unique.values) {
        EXPECT_GE(v.size(), 2u);
    }
}

TEST(Pipeline, RunsWithHeuristicSegmenter) {
    const protocols::trace t = protocols::generate_trace("DNS", 60, 5);
    const auto messages = segmentation::message_bytes(t);
    const segmentation::nemesys_segmenter seg;
    const pipeline_result r = analyze(messages, seg, {});
    EXPECT_GT(r.unique.size(), 0u);
    EXPECT_EQ(r.final_labels.labels.size(), r.unique.size());
}

TEST(Pipeline, EmptyTraceRejected) {
    EXPECT_THROW(analyze_segments({}, {}, {}), precondition_error);
}

TEST(Pipeline, TooUniformTraceRejected) {
    // All messages identical -> one unique segment -> cannot cluster.
    const std::vector<byte_vector> messages(5, byte_vector{1, 2, 3, 4});
    segmentation::message_segments segs;
    for (std::size_t m = 0; m < messages.size(); ++m) {
        segs.push_back({segmentation::segment{m, 0, 4}});
    }
    EXPECT_THROW(analyze_segments(messages, segs, {}), precondition_error);
}

TEST(Pipeline, BudgetExceededPropagates) {
    const protocols::trace t = protocols::generate_trace("SMB", 200, 3);
    const auto messages = segmentation::message_bytes(t);
    pipeline_options opt;
    opt.budget_seconds = 1e-9;
    EXPECT_THROW(
        analyze_segments(messages, segmentation::segments_from_annotations(t), opt),
        budget_exceeded_error);
}

TEST(Pipeline, BudgetExceededCarriesPartialProgress) {
    const protocols::trace t = protocols::generate_trace("SMB", 200, 3);
    const auto messages = segmentation::message_bytes(t);
    pipeline_options opt;
    opt.budget_seconds = 1e-9;
    try {
        analyze_segments(messages, segmentation::segments_from_annotations(t), opt);
        FAIL() << "expected budget_exceeded_error";
    } catch (const budget_exceeded_error& e) {
        EXPECT_NE(e.partial_report().find("reached stage"), std::string::npos)
            << e.partial_report();
        EXPECT_NE(e.partial_report().find("segments "), std::string::npos);
    }
}

TEST(Pipeline, SegmentCapRaisesTypedError) {
    const protocols::trace t = protocols::generate_trace("DNS", 50, 3);
    const auto messages = segmentation::message_bytes(t);
    pipeline_options opt;
    opt.max_segments = 10;  // far below what 50 DNS messages produce
    try {
        analyze_segments(messages, segmentation::segments_from_annotations(t), opt);
        FAIL() << "expected budget_exceeded_error";
    } catch (const budget_exceeded_error& e) {
        EXPECT_NE(std::string{e.what()}.find("segment cap"), std::string::npos);
        EXPECT_FALSE(e.partial_report().empty());
    }
}

TEST(Pipeline, ByteCapRaisesTypedError) {
    const protocols::trace t = protocols::generate_trace("DNS", 50, 3);
    const auto messages = segmentation::message_bytes(t);
    pipeline_options opt;
    opt.max_bytes = 64;
    EXPECT_THROW(
        analyze_segments(messages, segmentation::segments_from_annotations(t), opt),
        budget_exceeded_error);
}

TEST(Pipeline, GenerousCapsDoNotChangeResults) {
    const protocols::trace t = protocols::generate_trace("DNS", 60, 3);
    const auto messages = segmentation::message_bytes(t);
    pipeline_options plain;
    pipeline_options capped;
    capped.max_segments = 1u << 20;
    capped.max_bytes = 1u << 30;
    capped.budget_seconds = 120;
    const pipeline_result a =
        analyze_segments(messages, segmentation::segments_from_annotations(t), plain);
    const pipeline_result b =
        analyze_segments(messages, segmentation::segments_from_annotations(t), capped);
    EXPECT_EQ(a.final_labels.labels, b.final_labels.labels);
}

TEST(Pipeline, OversizeGuardReportsReconfigurations) {
    // SMB's high-entropy content triggers the walk-down (paper Sec. III-E).
    const protocols::trace t = protocols::generate_trace("SMB", 150, 42);
    const auto messages = segmentation::message_bytes(t);
    const pipeline_result r =
        analyze_segments(messages, segmentation::segments_from_annotations(t), {});
    if (r.clustering.reclustered) {
        EXPECT_GE(r.clustering.reconfigurations, 1u);
    }
    EXPECT_GT(r.clustering.config.epsilon, 0.0);
    EXPECT_LT(r.clustering.config.epsilon, 1.0);
}

}  // namespace
}  // namespace ftc::core
