// Allocation-fault injection sweep (testing/alloc_fault.hpp): with the Nth
// tracked allocation failing, for every reachable N, the pipeline must
// either complete with output identical to the fault-free run or unwind
// with the typed memory error — never crash, never leak (CI runs this
// binary under ASan/LSan), never leave a torn checkpoint file.
#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "ckpt/manager.hpp"
#include "core/pipeline.hpp"
#include "mem/mem.hpp"
#include "protocols/registry.hpp"
#include "segmentation/segment.hpp"
#include "testing/alloc_fault.hpp"
#include "util/check.hpp"
#include "util/diag.hpp"

namespace ftc {
namespace {

namespace fs = std::filesystem;

struct scenario {
    std::vector<byte_vector> messages;
    segmentation::message_segments segments;
};

scenario make_scenario(std::size_t count = 60) {
    const protocols::trace t = protocols::generate_trace("DNS", count, 7);
    return {segmentation::message_bytes(t), segmentation::segments_from_annotations(t)};
}

/// How many tracked allocations one fault-free pipeline run performs.
std::uint64_t allocations_per_run(const scenario& s) {
    const std::uint64_t before = mem::tracked_allocations();
    const core::pipeline_result r = core::analyze_segments(s.messages, s.segments);
    (void)r;
    return mem::tracked_allocations() - before;
}

TEST(AllocFaults, EveryTrackedSiteUnwindsCleanly) {
    const scenario s = make_scenario();
    const core::pipeline_result reference =
        core::analyze_segments(s.messages, s.segments);
    const std::uint64_t per_run = allocations_per_run(s);
    ASSERT_GT(per_run, 0u);

    // Sweep the whole run in strides (every ordinal for the first few, then
    // coarser — the suite must stay fast), plus the exact last allocation.
    std::vector<std::uint64_t> ordinals;
    for (std::uint64_t n = 1; n <= per_run; n += (n < 16 ? 1 : 7)) {
        ordinals.push_back(n);
    }
    ordinals.push_back(per_run);
    ordinals.push_back(per_run + 10);  // beyond the run: must complete

    std::size_t completed = 0;
    std::size_t unwound = 0;
    for (const std::uint64_t nth : ordinals) {
        const std::uint64_t entry_bytes = mem::current_bytes();
        const testing::alloc_fault_injector inject =
            testing::alloc_fault_injector::fail_nth(nth);
        try {
            const core::pipeline_result r =
                core::analyze_segments(s.messages, s.segments);
            // The fault either hit outside this run (fine) or the run
            // completed in spite of it — output must be the reference.
            EXPECT_EQ(r.final_labels.labels, reference.final_labels.labels);
            EXPECT_EQ(r.unique.values, reference.unique.values);
            ++completed;
        } catch (const memory_budget_exceeded_error&) {
            ++unwound;  // the one sanctioned failure mode
        }
        // Whatever happened, every tracked byte must have been released.
        EXPECT_EQ(mem::current_bytes(), entry_bytes) << "leak at ordinal " << nth;
    }
    // The sweep must have exercised both outcomes.
    EXPECT_GT(unwound, 0u);
    EXPECT_GT(completed, 0u);
}

TEST(AllocFaults, HardCeilingUnwindsCleanly) {
    const scenario s = make_scenario();
    mem::reset_peak();
    const core::pipeline_result reference =
        core::analyze_segments(s.messages, s.segments);
    const std::uint64_t peak = mem::peak_bytes();

    // A ceiling below the fault-free peak must fail typed; one above it
    // must not fire at all.
    for (const std::uint64_t ceiling : {peak / 2, peak * 2}) {
        const std::uint64_t entry_bytes = mem::current_bytes();
        const testing::alloc_fault_injector inject =
            testing::alloc_fault_injector::fail_above(ceiling);
        try {
            const core::pipeline_result r =
                core::analyze_segments(s.messages, s.segments);
            EXPECT_GT(ceiling, peak);
            EXPECT_EQ(r.final_labels.labels, reference.final_labels.labels);
        } catch (const memory_budget_exceeded_error& e) {
            EXPECT_LT(ceiling, peak);
            EXPECT_FALSE(e.partial_report().empty());
        }
        EXPECT_EQ(mem::current_bytes(), entry_bytes);
    }
}

TEST(AllocFaults, CheckpointFilesNeverTorn) {
    const scenario s = make_scenario();
    const fs::path dir = fs::temp_directory_path() / "ftc_test_mem_faults_ckpt";
    const ckpt::options_fingerprint fp = ckpt::fingerprint({}, "true", 7);

    // Crash the checkpointed run at a spread of allocation ordinals; after
    // every attempt the directory must load without tripping strict
    // validation — every file is either absent or complete, never torn.
    for (const std::uint64_t nth : {1ull, 9ull, 33ull, 61ull, 97ull}) {
        fs::remove_all(dir);
        {
            const testing::alloc_fault_injector inject =
                testing::alloc_fault_injector::fail_nth(nth);
            try {
                ckpt::checkpoint_manager manager(dir, fp);
                manager.on_segments(s.messages, s.segments);
                core::pipeline_options opt;
                opt.observer = &manager;
                core::pipeline_seed seed;
                seed.segments = s.segments;
                const core::pipeline_result r =
                    core::analyze_seeded(s.messages, nullptr, std::move(seed), opt);
                manager.mark_complete();
            } catch (const memory_budget_exceeded_error&) {
                // expected for small ordinals
            }
        }
        diag::error_sink sink(diag::policy::strict);
        ckpt::checkpoint_manager loader(dir, fp);
        EXPECT_NO_THROW({
            const ckpt::restored_state restored = loader.load(s.messages, sink);
            (void)restored;
        }) << "torn checkpoint after fault at ordinal " << nth;
    }
    fs::remove_all(dir);
}

}  // namespace
}  // namespace ftc
