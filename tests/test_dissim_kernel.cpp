// Bitwise-identity and pruning-correctness proof for the optimized Canberra
// kernel layer (dissim/kernel.hpp, DESIGN.md §9): every backend — scalar
// reference, portable LUT, SIMD when available — must produce bit-for-bit
// the same dissimilarities, matrices and final clusterings, serial and
// parallel, and early-exit pruning must never change d_min.
#include "dissim/kernel.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "dissim/canberra.hpp"
#include "dissim/matrix.hpp"
#include "protocols/registry.hpp"
#include "segmentation/nemesys.hpp"
#include "segmentation/segment.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ftc::dissim {
namespace {

constexpr std::uint64_t kSeed = 20220627;

/// Backends to sweep: scalar and LUT always, SIMD when this build/CPU has it.
std::vector<kernel::backend> available_backends() {
    std::vector<kernel::backend> out{kernel::backend::scalar, kernel::backend::lut};
    if (kernel::simd_available()) {
        out.push_back(kernel::backend::simd);
    }
    return out;
}

/// Bitwise double equality (EXPECT_EQ on doubles compares values, which is
/// what we want here — all results are finite and never -0.0 — but memcmp
/// makes the bit-level claim explicit).
bool same_bits(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

TEST(KernelTable, TermsBitwiseMatchScalarArithmetic) {
    const double* lut = kernel::term_table();
    for (int x = 0; x < 256; ++x) {
        for (int y = 0; y < 256; ++y) {
            const double xi = x;
            const double yi = y;
            const double denom = xi + yi;
            const double expected = denom != 0.0 ? (xi > yi ? xi - yi : yi - xi) / denom : 0.0;
            ASSERT_TRUE(same_bits(lut[x * 256 + y], expected)) << x << "," << y;
        }
    }
}

TEST(KernelDispatch, ReportsAndForcesBackends) {
    const kernel::backend original = kernel::active();
    kernel::force(kernel::backend::scalar);
    EXPECT_EQ(kernel::active(), kernel::backend::scalar);
    kernel::force(kernel::backend::lut);
    EXPECT_EQ(kernel::active(), kernel::backend::lut);
    if (!kernel::simd_available()) {
        EXPECT_THROW(kernel::force(kernel::backend::simd), precondition_error);
    } else {
        kernel::force(kernel::backend::simd);
        EXPECT_EQ(kernel::active(), kernel::backend::simd);
    }
    kernel::reset();
    EXPECT_EQ(kernel::active(),
              kernel::simd_available() ? kernel::backend::simd : kernel::backend::lut);
    kernel::force(original);
    EXPECT_STREQ(kernel::backend_name(kernel::backend::scalar), "scalar");
    EXPECT_STREQ(kernel::backend_name(kernel::backend::lut), "lut");
    EXPECT_STREQ(kernel::backend_name(kernel::backend::simd), "simd");
}

TEST(KernelDispatch, ScopedBackendRestores) {
    kernel::reset();
    const kernel::backend before = kernel::active();
    {
        kernel::scoped_backend forced(kernel::backend::scalar);
        EXPECT_EQ(kernel::active(), kernel::backend::scalar);
    }
    EXPECT_EQ(kernel::active(), before);
}

TEST(KernelPreconditions, MatchReferenceKernels) {
    kernel::scoped_backend forced(kernel::backend::lut);
    EXPECT_THROW(kernel::equal_dissimilarity(byte_vector{}, byte_vector{}),
                 precondition_error);
    EXPECT_THROW(kernel::equal_dissimilarity(byte_vector{1}, byte_vector{1, 2}),
                 precondition_error);
    EXPECT_THROW(kernel::sliding_dissimilarity(byte_vector{}, byte_vector{1}),
                 precondition_error);
}

// Property sweep: randomized segment pairs, lengths 1–64, including the
// degenerate distributions the LUT rows must get exactly right (all-zero
// bytes hit the 0/0 term, saturated 0xff bytes the table's last row).
class KernelBitwiseProps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelBitwiseProps, AllBackendsMatchScalarBitwise) {
    rng rand(GetParam());
    for (int trial = 0; trial < 60; ++trial) {
        byte_vector a = rand.bytes(1 + rand.uniform(0, 63));
        byte_vector b = rand.bytes(1 + rand.uniform(0, 63));
        switch (trial % 5) {
            case 1:
                std::fill(a.begin(), a.end(), std::uint8_t{0});
                break;
            case 2:
                std::fill(b.begin(), b.end(), std::uint8_t{0xff});
                break;
            case 3:
                std::fill(a.begin(), a.end(), std::uint8_t{0});
                std::fill(b.begin(), b.end(), std::uint8_t{0xff});
                break;
            case 4:
                std::fill(a.begin(), a.end(), std::uint8_t{0});
                std::fill(b.begin(), b.end(), std::uint8_t{0});
                break;
            default:
                break;
        }
        const double reference = sliding_canberra_dissimilarity(a, b);
        for (kernel::backend be : available_backends()) {
            kernel::scoped_backend forced(be);
            const double d = kernel::sliding_dissimilarity(a, b);
            ASSERT_TRUE(same_bits(d, reference))
                << kernel::backend_name(be) << " differs: |a|=" << a.size()
                << " |b|=" << b.size() << " trial=" << trial;
            if (a.size() == b.size()) {
                ASSERT_TRUE(same_bits(kernel::equal_dissimilarity(a, b),
                                      canberra_dissimilarity(a, b)))
                    << kernel::backend_name(be);
            }
            EXPECT_GE(d, 0.0);
            EXPECT_LE(d, 1.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelBitwiseProps, ::testing::Range<std::uint64_t>(0, 8));

TEST(KernelPruning, PrunesWindowsWithoutChangingDMin) {
    // The shorter segment embeds perfectly at offset 0; every later window
    // of the high-entropy tail exceeds the bound almost immediately, so the
    // pruned loop must abandon them — and still return the reference value.
    rng rand(7);
    byte_vector l = rand.bytes(192);
    byte_vector s(l.begin(), l.begin() + 48);
    kernel::stats st;
    kernel::scoped_backend forced(kernel::backend::lut);
    const double d = kernel::sliding_dissimilarity(s, l, &st);
    ASSERT_TRUE(same_bits(d, sliding_canberra_dissimilarity(s, l)));
    EXPECT_EQ(st.invocations, 1u);
    EXPECT_EQ(st.equal_fast_path, 0u);
    EXPECT_GT(st.windows_total, 0u);
    // A perfect window at offset 0 makes best == 0, so the loop stops after
    // the first window and prunes nothing; perturb one byte so the first
    // window is near-perfect (tiny nonzero bound) and every random tail
    // window must blow past it.
    byte_vector perturbed(l.begin(), l.begin() + 48);
    perturbed[5] = static_cast<std::uint8_t>(perturbed[5] ^ 0x01);
    kernel::stats st2;
    const double d2 = kernel::sliding_dissimilarity(perturbed, l, &st2);
    ASSERT_TRUE(same_bits(d2, sliding_canberra_dissimilarity(perturbed, l)));
    EXPECT_GT(st2.windows_pruned, 0u);
    EXPECT_LE(st2.windows_pruned, st2.windows_total);
}

TEST(KernelPruning, RandomizedPruningNeverChangesResult) {
    rng rand(11);
    std::uint64_t pruned_somewhere = 0;
    for (int trial = 0; trial < 40; ++trial) {
        const byte_vector s = rand.bytes(2 + rand.uniform(0, 30));
        const byte_vector l = rand.bytes(static_cast<std::size_t>(s.size()) + 1 +
                                         rand.uniform(0, 96));
        const double reference = sliding_canberra_dissimilarity(s, l);
        for (kernel::backend be : available_backends()) {
            kernel::scoped_backend forced(be);
            kernel::stats st;
            ASSERT_TRUE(same_bits(kernel::sliding_dissimilarity(s, l, &st), reference))
                << kernel::backend_name(be) << " trial=" << trial;
            if (be != kernel::backend::scalar) {
                pruned_somewhere += st.windows_pruned;
            }
        }
    }
    EXPECT_GT(pruned_somewhere, 0u) << "the sweep never exercised the pruning path";
}

TEST(KernelStats, EqualPathCountsFastPathHits) {
    kernel::scoped_backend forced(kernel::backend::lut);
    kernel::stats st;
    const byte_vector a{1, 2, 3, 4};
    const byte_vector b{4, 3, 2, 1};
    kernel::sliding_dissimilarity(a, b, &st);
    kernel::equal_dissimilarity(a, b, &st);
    EXPECT_EQ(st.invocations, 2u);
    EXPECT_EQ(st.equal_fast_path, 2u);
    EXPECT_EQ(st.windows_total, 0u);
    kernel::stats other;
    other.invocations = 3;
    other.windows_pruned = 5;
    st.merge(other);
    EXPECT_EQ(st.invocations, 5u);
    EXPECT_EQ(st.windows_pruned, 5u);
}

TEST(KernelBatch, EqualBatchBitwiseMatchesSingleCalls) {
    rng rand(23);
    for (int trial = 0; trial < 48; ++trial) {
        const std::size_t m = 1 + static_cast<std::size_t>(rand.uniform(0, 63));
        const byte_vector x = rand.bytes(m);
        // Cycle through every batch size so partial and full batches (the
        // eight-chain fast loop) are both exercised.
        const std::size_t count = static_cast<std::size_t>(trial) % kernel::kEqualBatch + 1;
        std::vector<byte_vector> partners;
        for (std::size_t k = 0; k < count; ++k) {
            partners.push_back(rand.bytes(m));
        }
        if (trial % 4 == 0) {
            std::fill(partners[0].begin(), partners[0].end(), std::uint8_t{0});
        }
        std::vector<byte_view> views(partners.begin(), partners.end());
        for (kernel::backend be : available_backends()) {
            kernel::scoped_backend forced(be);
            double out[kernel::kEqualBatch];
            kernel::stats st;
            kernel::equal_dissimilarity_batch(x, views.data(), count, out, &st);
            EXPECT_EQ(st.invocations, count);
            EXPECT_EQ(st.equal_fast_path, count);
            for (std::size_t k = 0; k < count; ++k) {
                ASSERT_TRUE(same_bits(out[k], canberra_dissimilarity(x, partners[k])))
                    << kernel::backend_name(be) << " lane " << k << " m=" << m
                    << " count=" << count;
            }
        }
    }
}

TEST(KernelBatch, SlidingBatchBitwiseMatchesSingleCalls) {
    rng rand(29);
    for (int trial = 0; trial < 48; ++trial) {
        const byte_vector a = rand.bytes(1 + static_cast<std::size_t>(rand.uniform(0, 31)));
        const std::size_t count = static_cast<std::size_t>(trial) % kernel::kSlideBatch + 1;
        // Mixed-length partners: shorter, equal (falls through to the equal
        // path) and longer than a, as the matrix's sliding batches see.
        std::vector<byte_vector> partners;
        for (std::size_t k = 0; k < count; ++k) {
            partners.push_back(k % 3 == 0
                                   ? rand.bytes(a.size())
                                   : rand.bytes(1 + static_cast<std::size_t>(
                                                        rand.uniform(0, 63))));
        }
        std::vector<byte_view> views(partners.begin(), partners.end());
        for (kernel::backend be : available_backends()) {
            kernel::scoped_backend forced(be);
            double out[kernel::kSlideBatch];
            kernel::stats st;
            kernel::sliding_dissimilarity_batch(a, views.data(), count, out, &st);
            EXPECT_EQ(st.invocations, count);
            for (std::size_t k = 0; k < count; ++k) {
                ASSERT_TRUE(
                    same_bits(out[k], sliding_canberra_dissimilarity(a, partners[k])))
                    << kernel::backend_name(be) << " lane " << k << " |a|=" << a.size()
                    << " |b|=" << partners[k].size();
            }
        }
    }
}

TEST(KernelBatch, Preconditions) {
    kernel::scoped_backend forced(kernel::backend::lut);
    const byte_vector x{1, 2, 3};
    byte_view views[kernel::kEqualBatch];
    for (byte_view& v : views) {
        v = byte_view{x};
    }
    double out[kernel::kEqualBatch];
    EXPECT_THROW(kernel::equal_dissimilarity_batch(x, views, 0, out), precondition_error);
    EXPECT_THROW(kernel::equal_dissimilarity_batch(x, views, kernel::kEqualBatch + 1, out),
                 precondition_error);
    EXPECT_THROW(kernel::sliding_dissimilarity_batch(x, views, 0, out), precondition_error);
    EXPECT_THROW(
        kernel::sliding_dissimilarity_batch(x, views, kernel::kSlideBatch + 1, out),
        precondition_error);
    const byte_vector shorter{7, 8};
    views[kernel::kEqualBatch - 1] = byte_view{shorter};
    EXPECT_THROW(kernel::equal_dissimilarity_batch(x, views, kernel::kEqualBatch, out),
                 precondition_error);
}

/// Unique >= 2-byte segment values of a ground-truth-segmented trace.
std::vector<byte_vector> unique_values(const std::string& protocol, std::size_t messages) {
    const protocols::trace trace = protocols::generate_trace(protocol, messages, kSeed);
    const auto bytes = segmentation::message_bytes(trace);
    return condense(bytes, segmentation::segments_from_annotations(trace)).values;
}

TEST(KernelMatrix, BitwiseIdenticalAcrossBackendsAndThreadCounts) {
    for (const std::string protocol : {"DNS", "DHCP"}) {
        const std::vector<byte_vector> values = unique_values(protocol, 70);
        ASSERT_GE(values.size(), 10u) << protocol;
        kernel::scoped_backend scalar_ref(kernel::backend::scalar);
        const dissimilarity_matrix reference(values, {}, 1);
        for (kernel::backend be : available_backends()) {
            kernel::scoped_backend forced(be);
            for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
                const dissimilarity_matrix m(values, {}, threads);
                ASSERT_EQ(m.size(), reference.size());
                EXPECT_EQ(std::memcmp(m.data().data(), reference.data().data(),
                                      reference.data().size_bytes()),
                          0)
                    << protocol << ": " << kernel::backend_name(be) << "@" << threads
                    << " differs from serial scalar";
            }
        }
    }
}

TEST(KernelMatrix, KthNnManyBitwiseMatchesPerKExtraction) {
    const std::vector<byte_vector> values = unique_values("DNS", 70);
    const dissimilarity_matrix m(values, {}, 1);
    const std::size_t k_max = 6;
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        const auto curves = m.kth_nn_many(k_max, threads);
        ASSERT_EQ(curves.size(), k_max);
        for (std::size_t k = 1; k <= k_max; ++k) {
            const std::vector<double> single = m.kth_nn(k, 1);
            ASSERT_EQ(curves[k - 1].size(), single.size());
            EXPECT_EQ(std::memcmp(curves[k - 1].data(), single.data(),
                                  single.size() * sizeof(double)),
                      0)
                << "k=" << k << " threads=" << threads;
        }
    }
}

TEST(KernelMatrix, KthNnManyDegenerateSizes) {
    const dissimilarity_matrix empty(std::vector<byte_vector>{}, {}, 1);
    const auto none = empty.kth_nn_many(3);
    ASSERT_EQ(none.size(), 3u);
    for (const auto& curve : none) {
        EXPECT_TRUE(curve.empty());
    }
    EXPECT_THROW(empty.kth_nn_many(0), precondition_error);
    // k_max beyond n-1 clamps like kth_nn does.
    const std::vector<byte_vector> values{{1, 2}, {200, 9}, {1, 3}};
    const dissimilarity_matrix m(values, {}, 1);
    const auto curves = m.kth_nn_many(10);
    ASSERT_EQ(curves.size(), 10u);
    for (std::size_t k = 3; k <= 10; ++k) {
        EXPECT_EQ(curves[k - 1], curves[1]) << "k=" << k << " should clamp to n-1=2";
    }
}

TEST(KernelPipeline, FinalClusteringIdenticalAcrossBackends) {
    const segmentation::nemesys_segmenter segmenter;
    const protocols::trace trace = protocols::generate_trace("DNS", 60, kSeed);
    const auto messages = segmentation::message_bytes(trace);

    core::pipeline_options options;
    options.threads = 1;
    kernel::scoped_backend scalar_ref(kernel::backend::scalar);
    const core::pipeline_result reference = core::analyze(messages, segmenter, options);

    for (kernel::backend be : available_backends()) {
        kernel::scoped_backend forced(be);
        for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
            options.threads = threads;
            const core::pipeline_result r = core::analyze(messages, segmenter, options);
            EXPECT_EQ(r.final_labels.labels, reference.final_labels.labels)
                << kernel::backend_name(be) << "@" << threads;
            EXPECT_EQ(r.clustering.config.epsilon, reference.clustering.config.epsilon)
                << kernel::backend_name(be) << "@" << threads;
            EXPECT_EQ(r.clustering.config.min_samples,
                      reference.clustering.config.min_samples)
                << kernel::backend_name(be) << "@" << threads;
        }
    }
}

}  // namespace
}  // namespace ftc::dissim
