// Unit tests for post-clustering semantic deduction (core/semantics.hpp) —
// the paper's Sec. V future-work extension.
#include "core/semantics.hpp"

#include <gtest/gtest.h>

#include "protocols/registry.hpp"
#include "segmentation/segment.hpp"
#include "util/rng.hpp"

namespace ftc::core {
namespace {

/// Build a pipeline_result whose single cluster contains the given values,
/// each occurring once per listed message index.
pipeline_result fake_result(const std::vector<byte_vector>& messages,
                            const std::vector<byte_vector>& values,
                            const std::vector<std::vector<std::size_t>>& occurrences_at,
                            const std::vector<int>& labels) {
    pipeline_result r;
    int max_label = -1;
    for (std::size_t i = 0; i < values.size(); ++i) {
        r.unique.values.push_back(values[i]);
        std::vector<segmentation::segment> occs;
        for (const std::size_t msg : occurrences_at[i]) {
            occs.push_back(segmentation::segment{msg, 0, values[i].size()});
        }
        r.unique.occurrences.push_back(std::move(occs));
        max_label = std::max(max_label, labels[i]);
    }
    (void)messages;
    r.final_labels.labels = labels;
    r.final_labels.cluster_count = static_cast<std::size_t>(max_label + 1);
    return r;
}

TEST(Semantics, DetectsLengthField) {
    // Messages of growing size; cluster values = message length (2-byte BE).
    std::vector<byte_vector> messages;
    std::vector<byte_vector> values;
    std::vector<std::vector<std::size_t>> occs;
    std::vector<int> labels;
    for (std::size_t i = 0; i < 12; ++i) {
        const std::size_t len = 20 + 7 * i;
        messages.push_back(byte_vector(len, 0x55));
        byte_vector v;
        put_u16_be(v, static_cast<std::uint16_t>(len));
        values.push_back(v);
        occs.push_back({i});
        labels.push_back(0);
    }
    const pipeline_result r = fake_result(messages, values, occs, labels);
    const auto tags = deduce_semantics(messages, r);
    ASSERT_EQ(tags.size(), 1u);
    EXPECT_EQ(tags[0].role, semantic_role::length_field);
    EXPECT_TRUE(tags[0].big_endian);
    EXPECT_GT(tags[0].confidence, 0.95);
}

TEST(Semantics, DetectsLittleEndianLengthField) {
    std::vector<byte_vector> messages;
    std::vector<byte_vector> values;
    std::vector<std::vector<std::size_t>> occs;
    std::vector<int> labels;
    // Lengths straddle the 256 boundary so that only the little-endian
    // interpretation correlates (big-endian reads of the LE bytes jump).
    for (std::size_t i = 0; i < 12; ++i) {
        const std::size_t len = 200 + 11 * i;
        messages.push_back(byte_vector(len, 0x55));
        byte_vector v;
        put_u16_le(v, static_cast<std::uint16_t>(len));
        values.push_back(v);
        occs.push_back({i});
        labels.push_back(0);
    }
    const pipeline_result r = fake_result(messages, values, occs, labels);
    const auto tags = deduce_semantics(messages, r);
    ASSERT_EQ(tags.size(), 1u);
    EXPECT_EQ(tags[0].role, semantic_role::length_field);
    EXPECT_FALSE(tags[0].big_endian);
}

TEST(Semantics, DetectsCounterField) {
    // Equal-length messages carrying an increasing 4-byte counter.
    std::vector<byte_vector> messages(12, byte_vector(32, 0));
    std::vector<byte_vector> values;
    std::vector<std::vector<std::size_t>> occs;
    std::vector<int> labels;
    for (std::size_t i = 0; i < 12; ++i) {
        byte_vector v;
        put_u32_be(v, static_cast<std::uint32_t>(100 + 13 * i));
        values.push_back(v);
        occs.push_back({i});
        labels.push_back(0);
    }
    const pipeline_result r = fake_result(messages, values, occs, labels);
    const auto tags = deduce_semantics(messages, r);
    ASSERT_EQ(tags.size(), 1u);
    EXPECT_EQ(tags[0].role, semantic_role::counter_field);
    EXPECT_GE(tags[0].confidence, 0.95);
}

TEST(Semantics, DetectsConstant) {
    std::vector<byte_vector> messages(10, byte_vector(16, 0));
    std::vector<std::vector<std::size_t>> occs{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}};
    const pipeline_result r = fake_result(
        messages, {byte_vector{0x63, 0x82, 0x53, 0x63}}, occs, {0});
    const auto tags = deduce_semantics(messages, r);
    ASSERT_EQ(tags.size(), 1u);
    EXPECT_EQ(tags[0].role, semantic_role::constant_field);
}

TEST(Semantics, DetectsEchoedValues) {
    // Each value occurs in exactly two adjacent messages (request/response
    // echo), values themselves random -> neither counter nor length.
    rng rand(3);
    std::vector<byte_vector> messages(24, byte_vector(16, 0));
    std::vector<byte_vector> values;
    std::vector<std::vector<std::size_t>> occs;
    std::vector<int> labels;
    for (std::size_t i = 0; i < 12; ++i) {
        values.push_back(rand.bytes(4));
        occs.push_back({2 * i, 2 * i + 1});
        labels.push_back(0);
    }
    const pipeline_result r = fake_result(messages, values, occs, labels);
    const auto tags = deduce_semantics(messages, r);
    ASSERT_EQ(tags.size(), 1u);
    EXPECT_EQ(tags[0].role, semantic_role::echo_field);
    EXPECT_GT(tags[0].confidence, 0.5);
}

TEST(Semantics, RandomClusterGetsNoTag) {
    // Random values, one occurrence each, random message sizes: no rule.
    rng rand(5);
    std::vector<byte_vector> messages;
    std::vector<byte_vector> values;
    std::vector<std::vector<std::size_t>> occs;
    std::vector<int> labels;
    for (std::size_t i = 0; i < 16; ++i) {
        messages.push_back(byte_vector(16 + rand.uniform(0, 64), 0x11));
        values.push_back(rand.bytes(4));
        occs.push_back({i});
        labels.push_back(0);
    }
    const pipeline_result r = fake_result(messages, values, occs, labels);
    EXPECT_TRUE(deduce_semantics(messages, r).empty());
}

TEST(Semantics, SmallClustersAreSkipped) {
    std::vector<byte_vector> messages(4, byte_vector(8, 0));
    const pipeline_result r = fake_result(
        messages, {byte_vector{0, 10}, byte_vector{0, 20}}, {{0}, {1}}, {0, 0});
    EXPECT_TRUE(deduce_semantics(messages, r).empty());
}

TEST(Semantics, WideValuesSkipNumericRules) {
    // 16-byte values cannot be interpreted numerically; with one occurrence
    // each there is no echo either.
    rng rand(7);
    std::vector<byte_vector> messages(12, byte_vector(32, 0));
    std::vector<byte_vector> values;
    std::vector<std::vector<std::size_t>> occs;
    std::vector<int> labels;
    for (std::size_t i = 0; i < 12; ++i) {
        values.push_back(rand.bytes(16));
        occs.push_back({i});
        labels.push_back(0);
    }
    const pipeline_result r = fake_result(messages, values, occs, labels);
    EXPECT_TRUE(deduce_semantics(messages, r).empty());
}

TEST(Semantics, RoleNamesStable) {
    EXPECT_STREQ(to_string(semantic_role::length_field), "length field");
    EXPECT_STREQ(to_string(semantic_role::counter_field), "counter field");
    EXPECT_STREQ(to_string(semantic_role::constant_field), "constant");
    EXPECT_STREQ(to_string(semantic_role::echo_field), "echoed value");
}

TEST(Semantics, RenderProducesOneLinePerTag) {
    semantic_tag tag;
    tag.cluster_id = 3;
    tag.role = semantic_role::length_field;
    tag.confidence = 0.97;
    tag.detail = "r=0.97";
    const std::string text = render_semantics({tag});
    EXPECT_NE(text.find("cluster 3"), std::string::npos);
    EXPECT_NE(text.find("length field"), std::string::npos);
    EXPECT_EQ(render_semantics({}), "no semantic roles deduced\n");
}

TEST(Semantics, EndToEndFindsDnsEchoOrCounters) {
    // On a real DNS trace the txid cluster is an echoed value (query &
    // response share it) — at least one echo/counter/length tag must appear.
    const protocols::trace t = protocols::generate_trace("DNS", 150, 9);
    const auto messages = segmentation::message_bytes(t);
    const pipeline_result r = core::analyze_segments(
        messages, segmentation::segments_from_annotations(t), {});
    const auto tags = deduce_semantics(messages, r);
    EXPECT_FALSE(tags.empty());
}

}  // namespace
}  // namespace ftc::core
