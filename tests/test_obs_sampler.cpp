// The background telemetry sampler: determinism (clustering is bitwise
// identical with the sampler on, off, or compiled out), the NDJSON schema
// of every emitted line, the final-sample guarantee on abnormal exit paths
// (budget trip, interrupt), and progress monotonicity across the series.
//
// The whole suite also runs under -DFTC_OBS_DISABLE=ON (CI's compiled-out
// build): the sampler still emits samples there — time, memory, a final
// status — it just sees no registry counters and no progress.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "core/pipeline.hpp"
#include "obs/progress.hpp"
#include "obs/sampler.hpp"
#include "protocols/registry.hpp"
#include "segmentation/segment.hpp"
#include "util/error.hpp"
#include "util/interrupt.hpp"
#include "util/json.hpp"

namespace ftc {
namespace {

core::pipeline_result run_pipeline(std::size_t threads, double budget = 120) {
    const protocols::trace truth = protocols::generate_trace("DNS", 120, 7);
    core::pipeline_options opt;
    opt.budget_seconds = budget;
    opt.threads = threads;
    return core::analyze_segments(segmentation::message_bytes(truth),
                                  segmentation::segments_from_annotations(truth), opt);
}

void expect_identical(const core::pipeline_result& a, const core::pipeline_result& b) {
    EXPECT_EQ(a.final_labels.labels, b.final_labels.labels);
    EXPECT_EQ(a.final_labels.cluster_count, b.final_labels.cluster_count);
    EXPECT_EQ(a.unique.size(), b.unique.size());
    EXPECT_EQ(a.clustering.config.epsilon, b.clustering.config.epsilon);
    EXPECT_EQ(a.clustering.config.min_samples, b.clustering.config.min_samples);
}

std::string temp_path(const char* name) {
    return (std::filesystem::temp_directory_path() /
            (std::string{"ftc_sampler_"} + name + "_" +
             std::to_string(::getpid()) + ".ndjson"))
        .string();
}

std::vector<util::json_value> read_ndjson(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::vector<util::json_value> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty()) {
            lines.push_back(util::parse_json(line));
        }
    }
    return lines;
}

struct file_cleanup {
    std::string path;
    ~file_cleanup() { std::remove(path.c_str()); }
};

class SamplerDeterminism : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SamplerDeterminism, SamplerDoesNotChangeClustering) {
    const std::size_t threads = GetParam();
    const core::pipeline_result baseline = run_pipeline(threads);
    const std::string path = temp_path("determinism");
    const file_cleanup cleanup{path};
    core::pipeline_result observed = [&] {
        obs::sampler_options opt;
        opt.telemetry_path = path;
        opt.interval = std::chrono::milliseconds{10};
        opt.progress = true;  // exercise the render path too
        opt.force_plain = true;
        obs::sampler sampler(nullptr, std::move(opt));
        core::pipeline_result r = run_pipeline(threads);
        sampler.set_status("ok");
        return r;
    }();
    expect_identical(baseline, observed);
    // And once more with the sampler gone.
    expect_identical(baseline, run_pipeline(threads));
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, SamplerDeterminism,
                         ::testing::Values(std::size_t{1}, std::size_t{0}),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                             return info.param == 1 ? "serial" : "hardware";
                         });

TEST(ObsSampler, NdjsonSchemaAndFinalSample) {
    const std::string path = temp_path("schema");
    const file_cleanup cleanup{path};
    {
        obs::scoped_recorder recorder;
        obs::sampler_options opt;
        opt.telemetry_path = path;
        opt.interval = std::chrono::milliseconds{10};
        obs::sampler sampler(&recorder.rec(), std::move(opt));
        run_pipeline(1);
        sampler.set_status("ok");
    }
    const std::vector<util::json_value> lines = read_ndjson(path);
    ASSERT_FALSE(lines.empty());
    std::uint64_t expected_seq = 0;
    double last_t = -1.0;
    std::size_t finals = 0;
    for (const util::json_value& line : lines) {
        EXPECT_EQ(line.at("schema").as_string(), "ftc.telemetry.v1");
        EXPECT_DOUBLE_EQ(line.at("seq").as_number(),
                         static_cast<double>(expected_seq++));
        const double t = line.at("t_seconds").as_number();
        EXPECT_GE(t, last_t);
        last_t = t;
        EXPECT_TRUE(line.at("final").is_bool());
        EXPECT_TRUE(line.at("status").is_string());
        const util::json_value& mem = line.at("mem");
        EXPECT_TRUE(mem.at("tracked_bytes").is_number());
        EXPECT_TRUE(mem.at("tracked_peak_bytes").is_number());
        EXPECT_TRUE(mem.at("rss_peak_bytes").is_number());
        if (line.at("final").as_bool()) {
            ++finals;
        }
        if (const util::json_value* progress = line.find("progress")) {
            EXPECT_TRUE(progress->at("stage").is_string());
            EXPECT_TRUE(progress->at("done").is_number());
            EXPECT_TRUE(progress->at("total").is_number());
            EXPECT_TRUE(progress->at("stage_seq").is_number());
        }
#ifndef FTC_OBS_DISABLE
        // Recorder attached: counters/gauges objects must be present.
        EXPECT_NE(line.find("counters"), nullptr);
        EXPECT_NE(line.find("gauges"), nullptr);
#endif
    }
    // Exactly one final sample, and it is the last line.
    EXPECT_EQ(finals, 1u);
    EXPECT_TRUE(lines.back().at("final").as_bool());
    EXPECT_EQ(lines.back().at("status").as_string(), "ok");
}

TEST(ObsSampler, ProgressMonotonicPerStage) {
    const std::string path = temp_path("monotonic");
    const file_cleanup cleanup{path};
    {
        obs::sampler_options opt;
        opt.telemetry_path = path;
        opt.interval = std::chrono::milliseconds{5};
        obs::sampler sampler(nullptr, std::move(opt));
        run_pipeline(1);
        sampler.set_status("ok");
    }
    double last_stage_seq = -1.0;
    double last_done = 0.0;
    for (const util::json_value& line : read_ndjson(path)) {
        const util::json_value* progress = line.find("progress");
        if (progress == nullptr) {
            continue;
        }
        const double stage_seq = progress->at("stage_seq").as_number();
        const double done = progress->at("done").as_number();
        EXPECT_GE(stage_seq, last_stage_seq);
        if (stage_seq == last_stage_seq) {
            // Within one stage the done counter never goes backwards.
            EXPECT_GE(done, last_done);
        }
        last_stage_seq = stage_seq;
        last_done = done;
        const double total = progress->at("total").as_number();
        if (total > 0) {
            EXPECT_LE(done, total);
        }
    }
}

TEST(ObsSampler, BudgetTripStillEmitsFinalStatusSample) {
    const std::string path = temp_path("budget");
    const file_cleanup cleanup{path};
    bool tripped = false;
    try {
        obs::sampler_options opt;
        opt.telemetry_path = path;
        opt.interval = std::chrono::milliseconds{5};
        obs::sampler sampler(nullptr, std::move(opt));
        sampler.set_status("error");
        try {
            run_pipeline(1, 1e-9);  // guaranteed to trip immediately
        } catch (const budget_exceeded_error&) {
            tripped = true;
            sampler.set_status("budget-exceeded");
            throw;  // the unwind through ~sampler emits the final sample
        }
    } catch (const budget_exceeded_error&) {
    }
    ASSERT_TRUE(tripped);
    const std::vector<util::json_value> lines = read_ndjson(path);
    ASSERT_FALSE(lines.empty());
    EXPECT_TRUE(lines.back().at("final").as_bool());
    EXPECT_EQ(lines.back().at("status").as_string(), "budget-exceeded");
}

TEST(ObsSampler, InterruptStillEmitsFinalStatusSample) {
    const std::string path = temp_path("interrupt");
    const file_cleanup cleanup{path};
    const scoped_interrupt_clear guard;
    bool interrupted = false;
    try {
        obs::sampler_options opt;
        opt.telemetry_path = path;
        opt.interval = std::chrono::milliseconds{5};
        obs::sampler sampler(nullptr, std::move(opt));
        request_interrupt(SIGINT);
        try {
            run_pipeline(1);  // first cancellation point raises
        } catch (const interrupted_error&) {
            interrupted = true;
            sampler.set_status("interrupted");
            throw;
        }
    } catch (const interrupted_error&) {
    }
    ASSERT_TRUE(interrupted);
    const std::vector<util::json_value> lines = read_ndjson(path);
    ASSERT_FALSE(lines.empty());
    EXPECT_TRUE(lines.back().at("final").as_bool());
    EXPECT_EQ(lines.back().at("status").as_string(), "interrupted");
}

TEST(ObsSampler, UnwritablePathThrows) {
    obs::sampler_options opt;
    opt.telemetry_path = "/nonexistent-dir-xyz/telemetry.ndjson";
    EXPECT_THROW(obs::sampler(nullptr, std::move(opt)), ftc::error);
}

TEST(ObsSampler, FullDiskCountsWriteErrorsInsteadOfDroppingSilently) {
#if defined(__linux__)
    // /dev/full opens fine and fails every write with ENOSPC — the exact
    // shape of a telemetry disk filling up mid-run. The sampler must keep
    // running and count every dropped line, in its own accessor and in the
    // telemetry.write_errors obs counter.
    obs::scoped_recorder recorder;
    obs::sampler_options opt;
    opt.telemetry_path = "/dev/full";
    opt.interval = std::chrono::milliseconds(10);
    obs::sampler sampler(&recorder.rec(), std::move(opt));
    sampler.set_status("ok");
    sampler.stop();  // at minimum the final sample was written (and failed)
    EXPECT_GE(sampler.write_errors(), 1u);
    const obs::metrics_snapshot m = recorder.rec().metrics().snapshot();
    EXPECT_GE(m.counters.at("telemetry.write_errors"),
              static_cast<double>(sampler.write_errors()));
#else
    GTEST_SKIP() << "/dev/full is linux-only";
#endif
}

TEST(ObsSampler, StopIsIdempotent) {
    const std::string path = temp_path("idempotent");
    const file_cleanup cleanup{path};
    obs::sampler_options opt;
    opt.telemetry_path = path;
    obs::sampler sampler(nullptr, std::move(opt));
    sampler.set_status("ok");
    sampler.stop();
    sampler.stop();  // second stop (and the destructor) must be no-ops
    const std::vector<util::json_value> lines = read_ndjson(path);
    std::size_t finals = 0;
    for (const util::json_value& line : lines) {
        finals += line.at("final").as_bool() ? 1 : 0;
    }
    EXPECT_EQ(finals, 1u);
}

TEST(ObsSampler, RenderProgressLineFormats) {
    obs::progress_snapshot p;
    p.stage = "dissim.matrix";
    p.done = 50;
    p.total = 200;
    obs::progress_estimate est;
    est.rate_per_second = 1234.0;
    est.eta_seconds = 90.0;
    const std::string plain = obs::render_progress_line(p, est, false);
    EXPECT_NE(plain.find("[dissim.matrix]"), std::string::npos);
    EXPECT_NE(plain.find("50/200"), std::string::npos);
    EXPECT_NE(plain.find("25%"), std::string::npos);
    EXPECT_NE(plain.find("1.2k/s"), std::string::npos);
    EXPECT_NE(plain.find("eta 1.5m"), std::string::npos);
    EXPECT_EQ(plain.back(), '\n');
    const std::string tty = obs::render_progress_line(p, est, true);
    EXPECT_EQ(tty.rfind("\r\x1b[K", 0), 0u);  // starts with the overwrite
    EXPECT_EQ(tty.find('\n'), std::string::npos);
    // Unknown stage / unknown rate renders without the optional parts.
    const std::string idle = obs::render_progress_line({}, {}, false);
    EXPECT_NE(idle.find("[idle]"), std::string::npos);
    EXPECT_EQ(idle.find("eta"), std::string::npos);
}

}  // namespace
}  // namespace ftc
