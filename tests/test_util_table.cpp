// Unit tests for the text table renderer (util/table.hpp).
#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ftc {
namespace {

TEST(Table, RendersHeaderRuleAndRows) {
    text_table t({"proto", "P", "R"});
    t.add_row({"NTP", "1.00", "0.96"});
    t.add_row({"DNS", "0.99", "0.95"});
    const std::string out = t.render();
    EXPECT_NE(out.find("proto"), std::string::npos);
    EXPECT_NE(out.find("NTP"), std::string::npos);
    EXPECT_NE(out.find("0.95"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsMismatchedRowWidth) {
    text_table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), precondition_error);
}

TEST(Table, RejectsEmptyHeader) {
    EXPECT_THROW(text_table({}), precondition_error);
}

TEST(Table, AlignmentPadsCorrectly) {
    text_table t({"name", "value"});
    t.set_align(0, align::left);
    t.add_row({"x", "123456"});
    const std::string out = t.render();
    // Left-aligned "x" appears at line start followed by padding.
    EXPECT_NE(out.find("\nx    "), std::string::npos);
}

TEST(Table, SetAlignRejectsOutOfRange) {
    text_table t({"a"});
    EXPECT_THROW(t.set_align(1, align::left), precondition_error);
}

TEST(Table, ColumnsWidenToFitCells) {
    text_table t({"h"});
    t.add_row({"a-very-long-cell"});
    const std::string out = t.render();
    EXPECT_NE(out.find("a-very-long-cell"), std::string::npos);
}

TEST(Table, FormatFixedRounds) {
    EXPECT_EQ(format_fixed(0.9273, 2), "0.93");
    EXPECT_EQ(format_fixed(1.0, 2), "1.00");
    EXPECT_EQ(format_fixed(0.1234, 3), "0.123");
}

TEST(Table, FormatPercentRounds) {
    EXPECT_EQ(format_percent(0.873), "87%");
    EXPECT_EQ(format_percent(1.0), "100%");
    EXPECT_EQ(format_percent(0.006), "1%");
    EXPECT_EQ(format_percent(0.0), "0%");
}

}  // namespace
}  // namespace ftc
