// Unit tests of the checkpoint wire format (ckpt/format.hpp): lossless
// round trips, digest verification, and rejection of damaged input.
#include "ckpt/format.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <utility>

#include "protocols/registry.hpp"
#include "segmentation/segment.hpp"
#include "util/check.hpp"

namespace ftc::ckpt {
namespace {

segments_payload sample_segments() {
    segments_payload p;
    p.surviving = {0, 2, 3};
    p.segments = {
        {{0, 0, 4}, {0, 4, 2}},
        {{1, 0, 3}, {1, 3, 3}},
        {{2, 0, 6}},
    };
    return p;
}

dissim::unique_segments sample_unique() {
    dissim::unique_segments u;
    u.values = {{1, 2, 3}, {4, 5}, {6, 7, 8, 9}};
    u.occurrences = {
        {{0, 0, 3}},
        {{0, 3, 2}, {1, 0, 2}},
        {{2, 0, 4}},
    };
    u.short_segments = 5;
    return u;
}

dissim::dissimilarity_matrix sample_matrix() {
    const std::vector<double> dense = {
        0.0, 0.25, 0.5,   //
        0.25, 0.0, 0.125,  //
        0.5, 0.125, 0.0,
    };
    return dissim::dissimilarity_matrix::from_dense(dense, 3);
}

cluster::auto_cluster_result sample_clustering() {
    cluster::auto_cluster_result c;
    c.labels.labels = {0, 0, 1, cluster::kNoise, 1};
    c.labels.cluster_count = 2;
    c.config.epsilon = 0.0421875;
    c.config.min_samples = 3;
    c.config.selected_k = 4;
    c.config.knee_found = true;
    c.config.knees = {0.0421875, 0.125};
    c.reconfigurations = 1;
    c.reclustered = true;
    return c;
}

TEST(CkptFormat, SectionContainerRoundTrips) {
    std::vector<section> in;
    in.push_back({1, {1, 2, 3}});
    in.push_back({4, {}});
    in.push_back({6, {255}});
    const byte_vector file = encode_sections(in);
    const std::vector<section> out = decode_sections(file);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].id, 1u);
    EXPECT_EQ(out[0].payload, (byte_vector{1, 2, 3}));
    EXPECT_EQ(out[1].id, 4u);
    EXPECT_TRUE(out[1].payload.empty());
    EXPECT_EQ(out[2].payload, byte_vector{255});
}

TEST(CkptFormat, EveryPayloadBitFlipIsDetected) {
    // The per-section digest must catch a single flipped bit anywhere in
    // any payload byte.
    std::vector<section> in;
    in.push_back({2, {10, 20, 30, 40, 50}});
    const byte_vector file = encode_sections(in);
    const std::size_t payload_start = file.size() - 5;
    for (std::size_t byte_at = payload_start; byte_at < file.size(); ++byte_at) {
        for (int bit = 0; bit < 8; ++bit) {
            byte_vector damaged = file;
            damaged[byte_at] ^= static_cast<std::uint8_t>(1 << bit);
            EXPECT_THROW(decode_sections(damaged), parse_error)
                << "flip at byte " << byte_at << " bit " << bit;
        }
    }
}

TEST(CkptFormat, RejectsBadMagicVersionAndTruncation) {
    const byte_vector file = encode_sections({{1, {9, 9, 9}}});

    byte_vector bad_magic = file;
    bad_magic[0] ^= 0xff;
    EXPECT_THROW(decode_sections(bad_magic), parse_error);

    byte_vector bad_version = file;
    bad_version[8] = 99;
    EXPECT_THROW(decode_sections(bad_version), parse_error);

    for (std::size_t cut = 0; cut < file.size(); ++cut) {
        const byte_view truncated{file.data(), cut};
        EXPECT_THROW(decode_sections(truncated), parse_error) << "cut at " << cut;
    }

    byte_vector trailing = file;
    trailing.push_back(0);
    EXPECT_THROW(decode_sections(trailing), parse_error);
}

TEST(CkptFormat, FingerprintRoundTripsAndRejectsShortPayload) {
    const options_fingerprint fp{0x1122334455667788ull, 0x99aabbccddeeff00ull};
    EXPECT_EQ(decode_fingerprint(encode_fingerprint(fp)), fp);
    EXPECT_THROW(decode_fingerprint(byte_view{encode_fingerprint(fp).data(), 15}),
                 parse_error);
}

TEST(CkptFormat, FingerprintIgnoresSpeedKnobsButNotResultKnobs) {
    core::pipeline_options a;
    core::pipeline_options b = a;
    b.threads = 7;
    b.budget_seconds = 1.0;
    b.max_segments = 100;
    b.max_bytes = 1000;
    // Speed/limit knobs do not change what a run computes -> same identity.
    EXPECT_EQ(fingerprint(a, "NEMESYS", 1), fingerprint(b, "NEMESYS", 1));

    core::pipeline_options c = a;
    c.min_segment_length = 3;
    EXPECT_NE(fingerprint(a, "NEMESYS", 1), fingerprint(c, "NEMESYS", 1));

    core::pipeline_options d = a;
    d.oversize_fraction = 0.5;
    EXPECT_NE(fingerprint(a, "NEMESYS", 1), fingerprint(d, "NEMESYS", 1));

    EXPECT_NE(fingerprint(a, "NEMESYS", 1), fingerprint(a, "CSP", 1));
    EXPECT_NE(fingerprint(a, "NEMESYS", 1), fingerprint(a, "NEMESYS", 2));
}

TEST(CkptFormat, SegmentsRoundTrip) {
    const segments_payload in = sample_segments();
    const segments_payload out = decode_segments(encode_segments(in));
    EXPECT_EQ(out.surviving, in.surviving);
    EXPECT_EQ(out.segments, in.segments);
}

TEST(CkptFormat, SegmentsRejectSurvivorCountMismatch) {
    segments_payload p = sample_segments();
    p.surviving.pop_back();
    EXPECT_THROW(decode_segments(encode_segments(p)), parse_error);
}

TEST(CkptFormat, UniqueRoundTrip) {
    const dissim::unique_segments in = sample_unique();
    const dissim::unique_segments out = decode_unique(encode_unique(in));
    EXPECT_EQ(out.values, in.values);
    EXPECT_EQ(out.occurrences, in.occurrences);
    EXPECT_EQ(out.short_segments, in.short_segments);
}

TEST(CkptFormat, MatrixRoundTripIsBitwise) {
    const dissim::dissimilarity_matrix in = sample_matrix();
    const dissim::dissimilarity_matrix out = decode_matrix(encode_matrix(in));
    ASSERT_EQ(out.size(), in.size());
    ASSERT_EQ(out.data().size(), in.data().size());
    EXPECT_EQ(std::memcmp(out.data().data(), in.data().data(),
                          in.data().size() * sizeof(float)),
              0);
}

TEST(CkptFormat, MatrixRejectsOutOfRangeAndNaN) {
    byte_vector payload = encode_matrix(sample_matrix());
    // Overwrite the first f32 entry (after the u64 size) with 2.0f.
    const float big = 2.0f;
    std::memcpy(payload.data() + 8, &big, sizeof big);
    EXPECT_THROW(decode_matrix(payload), parse_error);

    const float nan = std::numeric_limits<float>::quiet_NaN();
    std::memcpy(payload.data() + 8, &nan, sizeof nan);
    EXPECT_THROW(decode_matrix(payload), parse_error);
}

TEST(CkptFormat, MatrixRejectsForgedSize) {
    byte_vector payload = encode_matrix(sample_matrix());
    payload[0] = 0xff;  // claims a huge n without the bytes to back it
    payload[1] = 0xff;
    EXPECT_THROW(decode_matrix(payload), parse_error);
}

TEST(CkptFormat, KnnRoundTripIsBitwise) {
    const std::vector<std::vector<double>> in = {
        {0.0, 0.1, 0.25},
        {0.5, 0.50000000001, 1.0},
    };
    EXPECT_EQ(decode_knn(encode_knn(in)), in);
}

dissim::capped_neighbors sample_neighbors() {
    // Shape for n = 4, cap = 2: every list holds min(cap, n-1) = 2 entries,
    // ascending by (d, id), ids never the point itself.
    dissim::capped_neighbors nb;
    nb.cap = 2;
    nb.lists = {
        {{1, 0.0f}, {2, 0.125f}},
        {{0, 0.0f}, {3, 0.5f}},
        {{0, 0.125f}, {1, 0.25f}},
        {{1, 0.5f}, {2, 0.75f}},
    };
    return nb;
}

TEST(CkptFormat, NeighborsRoundTripIsBitwise) {
    const dissim::capped_neighbors in = sample_neighbors();
    const dissim::capped_neighbors out = decode_neighbors(encode_neighbors(in));
    ASSERT_EQ(out.size(), in.size());
    EXPECT_EQ(out.cap, in.cap);
    for (std::size_t i = 0; i < in.size(); ++i) {
        ASSERT_EQ(out.lists[i].size(), in.lists[i].size());
        for (std::size_t k = 0; k < in.lists[i].size(); ++k) {
            EXPECT_EQ(out.lists[i][k].id, in.lists[i][k].id);
            EXPECT_EQ(out.lists[i][k].d, in.lists[i][k].d);
        }
    }
}

TEST(CkptFormat, NeighborsRejectStructuralDamage) {
    {
        // Truncated list: length no longer min(cap, n-1).
        dissim::capped_neighbors bad = sample_neighbors();
        bad.lists[1].pop_back();
        EXPECT_THROW(decode_neighbors(encode_neighbors(bad)), parse_error);
    }
    {
        // Self-referential neighbor id.
        dissim::capped_neighbors bad = sample_neighbors();
        bad.lists[2][0].id = 2;
        EXPECT_THROW(decode_neighbors(encode_neighbors(bad)), parse_error);
    }
    {
        // Out-of-range id.
        dissim::capped_neighbors bad = sample_neighbors();
        bad.lists[0][1].id = 9;
        EXPECT_THROW(decode_neighbors(encode_neighbors(bad)), parse_error);
    }
    {
        // Distance outside [0, 1].
        dissim::capped_neighbors bad = sample_neighbors();
        bad.lists[3][1].d = 1.5f;
        EXPECT_THROW(decode_neighbors(encode_neighbors(bad)), parse_error);
    }
    {
        // Descending (d, id) order.
        dissim::capped_neighbors bad = sample_neighbors();
        std::swap(bad.lists[0][0], bad.lists[0][1]);
        EXPECT_THROW(decode_neighbors(encode_neighbors(bad)), parse_error);
    }
}

TEST(CkptFormat, ClusteringRoundTrip) {
    const cluster::auto_cluster_result in = sample_clustering();
    const cluster::auto_cluster_result out = decode_clustering(encode_clustering(in));
    EXPECT_EQ(out.labels.labels, in.labels.labels);
    EXPECT_EQ(out.labels.cluster_count, in.labels.cluster_count);
    EXPECT_EQ(out.config.epsilon, in.config.epsilon);
    EXPECT_EQ(out.config.min_samples, in.config.min_samples);
    EXPECT_EQ(out.config.selected_k, in.config.selected_k);
    EXPECT_EQ(out.config.knee_found, in.config.knee_found);
    EXPECT_EQ(out.config.knees, in.config.knees);
    EXPECT_EQ(out.reconfigurations, in.reconfigurations);
    EXPECT_EQ(out.reclustered, in.reclustered);
}

TEST(CkptFormat, ClusteringRejectsOutOfRangeLabels) {
    cluster::auto_cluster_result c = sample_clustering();
    c.labels.labels[0] = 5;  // >= cluster_count
    EXPECT_THROW(decode_clustering(encode_clustering(c)), parse_error);
    c.labels.labels[0] = -2;  // not kNoise, not a cluster id
    EXPECT_THROW(decode_clustering(encode_clustering(c)), parse_error);
}

TEST(CkptFormat, RealMatrixRoundTripsLosslessly) {
    // A matrix computed from a real synthesized trace, not a toy: the wire
    // form must preserve every float bit pattern the kernel produced.
    const protocols::trace t = protocols::generate_trace("DNS", 40, 3);
    const auto messages = segmentation::message_bytes(t);
    const auto segs = segmentation::segments_from_annotations(t);
    const dissim::unique_segments unique = dissim::condense(messages, segs);
    const dissim::dissimilarity_matrix matrix(unique.values);

    const dissim::dissimilarity_matrix back = decode_matrix(encode_matrix(matrix));
    ASSERT_EQ(back.size(), matrix.size());
    EXPECT_EQ(std::memcmp(back.data().data(), matrix.data().data(),
                          matrix.data().size() * sizeof(float)),
              0);

    const dissim::unique_segments unique_back = decode_unique(encode_unique(unique));
    EXPECT_EQ(unique_back.values, unique.values);
    EXPECT_EQ(unique_back.occurrences, unique.occurrences);
}

}  // namespace
}  // namespace ftc::ckpt
