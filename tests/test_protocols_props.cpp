// Protocol-specific structural properties of the generated workloads.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "protocols/au.hpp"
#include "protocols/awdl.hpp"
#include "protocols/dhcp.hpp"
#include "protocols/dns.hpp"
#include "protocols/nbns.hpp"
#include "protocols/ntp.hpp"
#include "protocols/registry.hpp"
#include "protocols/smb.hpp"
#include "util/byteio.hpp"
#include "util/check.hpp"

namespace ftc::protocols {
namespace {

TEST(Ntp, MessagesAreAlways48Bytes) {
    const trace t = generate_trace("NTP", 50, 7);
    for (const auto& m : t.messages) {
        EXPECT_EQ(m.bytes.size(), 48u);
    }
}

TEST(Ntp, TimestampsShareEraPrefix) {
    // The high bytes of the 2011-era transmit timestamps must be stable —
    // the static prefix visible in the paper's Fig. 3 (d2 3d ...).
    const trace t = generate_trace("NTP", 50, 7);
    for (const auto& m : t.messages) {
        const std::uint64_t xmit = get_u64_be(m.bytes, 40);
        if (xmit != 0) {
            EXPECT_EQ(xmit >> 56, 0xd2u);
        }
    }
}

TEST(Ntp, ClientServerModesAlternate) {
    ntp_generator gen(5);
    const annotated_message req = gen.next();
    const annotated_message resp = gen.next();
    EXPECT_EQ(req.bytes[0] & 0x07, 3);  // client
    EXPECT_EQ(resp.bytes[0] & 0x07, 4);  // server
    EXPECT_TRUE(req.is_request);
    EXPECT_FALSE(resp.is_request);
    // Response origin timestamp echoes the request transmit timestamp.
    EXPECT_EQ(get_u64_be(resp.bytes, 24), get_u64_be(req.bytes, 40));
    // Response flow is the reverse of the request flow.
    EXPECT_EQ(resp.flow, req.flow.reversed());
}

TEST(Ntp, DissectorRejectsWrongSizeAndMode) {
    EXPECT_THROW(dissect_ntp(byte_vector(47, 0)), parse_error);
    byte_vector msg(48, 0);
    msg[0] = 0x00;  // mode 0: implausible
    EXPECT_THROW(dissect_ntp(msg), parse_error);
}

TEST(Dns, NameEncodingKnownValue) {
    const byte_vector encoded = encode_dns_name("mail.example.com");
    byte_vector expected;
    expected.push_back(4);
    put_chars(expected, "mail");
    expected.push_back(7);
    put_chars(expected, "example");
    expected.push_back(3);
    put_chars(expected, "com");
    expected.push_back(0);
    EXPECT_EQ(encoded, expected);
}

TEST(Dns, QueriesPrecedeResponsesWithSharedTxid) {
    dns_generator gen(11);
    const annotated_message q = gen.next();
    const annotated_message r = gen.next();
    EXPECT_EQ(get_u16_be(q.bytes, 0), get_u16_be(r.bytes, 0));
    EXPECT_EQ(get_u16_be(q.bytes, 2), 0x0100);
    EXPECT_EQ(get_u16_be(r.bytes, 2), 0x8180);
    EXPECT_GE(get_u16_be(r.bytes, 6), 1u);  // at least one answer
}

TEST(Dns, DissectorRejectsMalformedNames) {
    // Label length 0x40 (> 63, not a pointer) is invalid.
    byte_vector msg(12, 0);
    msg[5] = 1;  // qdcount = 1
    msg.push_back(0x40);
    msg.push_back('x');
    EXPECT_THROW(dissect_dns(msg), parse_error);
}

TEST(Dns, DissectorRejectsTrailingGarbage) {
    dns_generator gen(3);
    annotated_message q = gen.next();
    q.bytes.push_back(0xff);
    EXPECT_THROW(dissect_dns(q.bytes), parse_error);
}

TEST(Nbns, NameEncodingIs34Bytes) {
    const byte_vector encoded = encode_netbios_name("FILESERVER01", 0x00);
    ASSERT_EQ(encoded.size(), 34u);
    EXPECT_EQ(encoded[0], 0x20);
    EXPECT_EQ(encoded.back(), 0x00);
    // Half-ASCII: all label chars in 'A'..'P'.
    for (std::size_t i = 1; i < 33; ++i) {
        EXPECT_GE(encoded[i], 'A');
        EXPECT_LE(encoded[i], 'P');
    }
}

TEST(Nbns, EncodingRejectsLongNames) {
    EXPECT_THROW(encode_netbios_name("ANAMEWAYTOOLONGFORNETBIOS", 0), precondition_error);
}

TEST(Nbns, SuffixDistinguishesServices) {
    const byte_vector a = encode_netbios_name("HOST", 0x00);
    const byte_vector b = encode_netbios_name("HOST", 0x20);
    EXPECT_NE(a, b);
}

TEST(Dhcp, FixedHeaderLayout) {
    const trace t = generate_trace("DHCP", 20, 13);
    for (const auto& m : t.messages) {
        ASSERT_GE(m.bytes.size(), 241u);
        EXPECT_TRUE(m.bytes[0] == 1 || m.bytes[0] == 2);  // op
        EXPECT_EQ(m.bytes[1], 1);                          // htype ethernet
        EXPECT_EQ(m.bytes[2], 6);                          // hlen
        EXPECT_EQ(get_u32_be(m.bytes, 236), 0x63825363u);  // magic cookie
        EXPECT_EQ(m.bytes.back(), 255u);                   // end option
    }
}

TEST(Dhcp, DoraCycleSharesTransactionId) {
    dhcp_generator gen(17);
    const annotated_message discover = gen.next();
    const annotated_message offer = gen.next();
    const annotated_message request = gen.next();
    const annotated_message ack = gen.next();
    const std::uint32_t xid = get_u32_be(discover.bytes, 4);
    EXPECT_EQ(get_u32_be(offer.bytes, 4), xid);
    EXPECT_EQ(get_u32_be(request.bytes, 4), xid);
    EXPECT_EQ(get_u32_be(ack.bytes, 4), xid);
    // Server messages carry the offered address in yiaddr.
    EXPECT_NE(get_u32_be(offer.bytes, 16), 0u);
    EXPECT_EQ(get_u32_be(offer.bytes, 16), get_u32_be(ack.bytes, 16));
}

TEST(Dhcp, DissectorRejectsMissingCookie) {
    byte_vector msg(241, 0);
    EXPECT_THROW(dissect_dhcp(msg), parse_error);
}

TEST(Smb, HeaderMagicAndSignatureEntropy) {
    const trace t = generate_trace("SMB", 64, 23);
    std::set<byte_vector> signatures;
    for (const auto& m : t.messages) {
        ASSERT_GE(m.bytes.size(), 32u);
        EXPECT_EQ(m.bytes[0], 0xff);
        EXPECT_EQ(m.bytes[1], 'S');
        signatures.insert(byte_vector(m.bytes.begin() + 14, m.bytes.begin() + 22));
    }
    // Signed sessions carry random (distinct) signatures, unsigned sessions
    // zeroed ones: expect many distinct values plus the zero signature (the
    // paper's confusion source requires high-entropy signature content).
    EXPECT_GT(signatures.size(), 20u);
    EXPECT_TRUE(signatures.count(byte_vector(8, 0x00)) == 1);
}

TEST(Smb, FiletimesShareHighBytes) {
    // FILETIME fields are little-endian with near-constant top bytes 0x01cc:
    // the last wire byte must be 0x01 and the second-to-last 0xcc.
    smb_generator gen(29);
    bool saw_filetime = false;
    for (int i = 0; i < 16; ++i) {
        const annotated_message m = gen.next();
        for (const field_annotation& f : m.fields) {
            if (f.type == field_type::timestamp) {
                saw_filetime = true;
                EXPECT_EQ(m.bytes[f.offset + 7], 0x01);
                EXPECT_EQ(m.bytes[f.offset + 6], 0xcc);
            }
        }
    }
    EXPECT_TRUE(saw_filetime);
}

TEST(Smb, DissectorRejectsUnknownCommand) {
    smb_generator gen(1);
    annotated_message m = gen.next();
    m.bytes[4] = 0x99;  // unsupported command
    EXPECT_THROW(dissect_smb(m.bytes), parse_error);
}

TEST(Awdl, ActionFrameHeaderAndTlvWalk) {
    const trace t = generate_trace("AWDL", 40, 31);
    for (const auto& m : t.messages) {
        EXPECT_EQ(m.bytes[0], 0x7f);  // vendor-specific category
        EXPECT_EQ(m.bytes[4], 0x08);  // AWDL action frame type
        // TLV walk terminates exactly at the end (dissector validates).
        EXPECT_NO_THROW(dissect_awdl(m.bytes));
    }
}

TEST(Awdl, MessagesHaveNoIpFlowContext) {
    const trace t = generate_trace("AWDL", 5, 31);
    for (const auto& m : t.messages) {
        EXPECT_EQ(m.flow.src_ip.value, 0u);
    }
}

TEST(Awdl, TruncatedTlvRejected) {
    awdl_generator gen(2);
    annotated_message m = gen.next();
    m.bytes.resize(m.bytes.size() - 1);
    EXPECT_THROW(dissect_awdl(m.bytes), parse_error);
}

TEST(Au, MeasurementsLookStaticInHighBytesRandomInLowBytes) {
    // The paper's AU challenge: 32-bit measurements whose high bytes are
    // near-constant per session while low bytes fluctuate.
    au_generator gen(37);
    std::size_t measured = 0;
    for (int i = 0; i < 30; ++i) {
        const annotated_message m = gen.next();
        std::set<std::uint16_t> highs;
        std::set<std::uint16_t> lows;
        for (const field_annotation& f : m.fields) {
            if (f.type != field_type::measurement) {
                continue;
            }
            ++measured;
            highs.insert(get_u16_be(m.bytes, f.offset));
            lows.insert(get_u16_be(m.bytes, f.offset + 2));
        }
        if (!highs.empty()) {
            EXPECT_LE(highs.size(), 2u) << "high bytes should be near-constant";
            EXPECT_GE(lows.size(), 3u) << "low bytes should fluctuate";
        }
    }
    EXPECT_GT(measured, 0u);
}

TEST(Au, AuthTagTailsEveryMessage) {
    const trace t = generate_trace("AU", 30, 41);
    for (const auto& m : t.messages) {
        const field_annotation& last = m.fields.back();
        EXPECT_EQ(last.type, field_type::signature);
        EXPECT_EQ(last.length, 16u);
        EXPECT_EQ(last.offset + last.length, m.bytes.size());
    }
}

TEST(Au, DissectorRejectsBadMagicAndLength) {
    au_generator gen(1);
    annotated_message m = gen.next();
    byte_vector bad = m.bytes;
    bad[0] = 0x00;
    EXPECT_THROW(dissect_au(bad), parse_error);
    byte_vector cut = m.bytes;
    cut.pop_back();
    EXPECT_THROW(dissect_au(cut), parse_error);
}

TEST(FieldTypes, NamesAreStable) {
    EXPECT_STREQ(to_string(field_type::timestamp), "timestamp");
    EXPECT_STREQ(to_string(field_type::signature), "signature");
    EXPECT_STREQ(to_string(field_type::chars), "chars");
    EXPECT_STREQ(to_string(field_type::measurement), "measurement");
}

TEST(Validation, DetectsGapsOverlapsAndShortCoverage) {
    annotated_message m;
    m.bytes = {1, 2, 3, 4};
    m.fields = {{0, 2, field_type::bytes, "a"}, {2, 2, field_type::bytes, "b"}};
    EXPECT_NO_THROW(validate_annotations(m));
    m.fields[1].offset = 3;  // gap
    EXPECT_THROW(validate_annotations(m), error);
    m.fields[1].offset = 1;  // overlap
    EXPECT_THROW(validate_annotations(m), error);
    m.fields = {{0, 2, field_type::bytes, "a"}};  // short coverage
    EXPECT_THROW(validate_annotations(m), error);
    m.fields = {{0, 2, field_type::bytes, "a"}, {2, 0, field_type::bytes, "z"}};
    EXPECT_THROW(validate_annotations(m), error);  // zero length
}

}  // namespace
}  // namespace ftc::protocols
