// Unit tests for descriptive statistics (util/stats.hpp).
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace ftc {
namespace {

TEST(Stats, MeanOfKnownValues) {
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) {
    EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, MedianOddAndEven) {
    EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(median(std::vector<double>{}), 0.0);
    EXPECT_DOUBLE_EQ(median(std::vector<double>{7.0}), 7.0);
}

TEST(Stats, MedianDoesNotMutateInput) {
    const std::vector<double> v{3.0, 1.0, 2.0};
    (void)median(v);
    EXPECT_EQ(v, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(Stats, StddevPopulationFormula) {
    // Population sigma of {2, 4, 4, 4, 5, 5, 7, 9} is exactly 2.
    const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(stddev(v), 2.0);
    EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(Stats, MinMaxThrowOnEmpty) {
    const std::vector<double> v{3.0, -1.0, 2.0};
    EXPECT_DOUBLE_EQ(min_value(v), -1.0);
    EXPECT_DOUBLE_EQ(max_value(v), 3.0);
    EXPECT_THROW(min_value(std::vector<double>{}), precondition_error);
    EXPECT_THROW(max_value(std::vector<double>{}), precondition_error);
}

TEST(Stats, PercentRankKnownValues) {
    const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    // 5 values below 5.5, none equal.
    EXPECT_DOUBLE_EQ(percent_rank(v, 5.5), 50.0);
    // Everything below 100.
    EXPECT_DOUBLE_EQ(percent_rank(v, 100.0), 100.0);
    // Nothing below 0.
    EXPECT_DOUBLE_EQ(percent_rank(v, 0.0), 0.0);
    // Ties get half weight: value 5 has 4 below + 1 equal -> 45 %.
    EXPECT_DOUBLE_EQ(percent_rank(v, 5.0), 45.0);
}

TEST(Stats, PercentRankEmptyIsZero) {
    EXPECT_DOUBLE_EQ(percent_rank(std::vector<double>{}, 1.0), 0.0);
}

TEST(Stats, ByteEntropyExtremes) {
    const std::vector<std::uint8_t> constant(64, 0x41);
    EXPECT_DOUBLE_EQ(byte_entropy(constant), 0.0);
    // Two equally frequent symbols -> exactly 1 bit.
    std::vector<std::uint8_t> two;
    for (int i = 0; i < 32; ++i) {
        two.push_back(0x00);
        two.push_back(0xff);
    }
    EXPECT_DOUBLE_EQ(byte_entropy(two), 1.0);
    // All 256 values once -> 8 bits.
    std::vector<std::uint8_t> all;
    for (int i = 0; i < 256; ++i) {
        all.push_back(static_cast<std::uint8_t>(i));
    }
    EXPECT_DOUBLE_EQ(byte_entropy(all), 8.0);
    EXPECT_DOUBLE_EQ(byte_entropy(std::vector<std::uint8_t>{}), 0.0);
}

TEST(Stats, PearsonPerfectAndInverse) {
    const std::vector<double> x{1, 2, 3, 4, 5};
    const std::vector<double> y{2, 4, 6, 8, 10};
    const std::vector<double> z{10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVarianceIsZero) {
    const std::vector<double> x{1, 2, 3};
    const std::vector<double> c{5, 5, 5};
    EXPECT_DOUBLE_EQ(pearson(x, c), 0.0);
    EXPECT_DOUBLE_EQ(pearson(c, x), 0.0);
}

TEST(Stats, PearsonRejectsLengthMismatch) {
    const std::vector<double> x{1, 2, 3};
    const std::vector<double> y{1, 2};
    EXPECT_THROW(pearson(x, y), precondition_error);
}

TEST(Stats, ToDoublesConverts) {
    const std::vector<std::uint8_t> v{1, 2, 255};
    const std::vector<double> d = to_doubles(std::span<const std::uint8_t>{v});
    EXPECT_EQ(d, (std::vector<double>{1.0, 2.0, 255.0}));
}

}  // namespace
}  // namespace ftc
