// Unit tests for the deterministic pcap fault injector (testing/corrupter.hpp).
#include "testing/corrupter.hpp"

#include <gtest/gtest.h>

#include "pcap/decap.hpp"
#include "pcap/pcap.hpp"
#include "protocols/registry.hpp"

namespace ftc::testing {
namespace {

byte_vector dns_capture_bytes(std::size_t messages = 40, std::uint64_t seed = 3) {
    return pcap::to_pcap_bytes(
        protocols::trace_to_capture(protocols::generate_trace("DNS", messages, seed)));
}

TEST(Corrupter, ZeroFractionIsIdentity) {
    const byte_vector clean = dns_capture_bytes();
    corruption_options opt;
    opt.fault_fraction = 0.0;
    corruption_log log;
    EXPECT_EQ(corrupt_pcap_bytes(clean, opt, &log), clean);
    EXPECT_TRUE(log.faults.empty());
}

TEST(Corrupter, SameSeedSameOutput) {
    const byte_vector clean = dns_capture_bytes();
    corruption_options opt;
    opt.fault_fraction = 0.3;
    opt.seed = 42;
    corruption_log log_a;
    corruption_log log_b;
    const byte_vector a = corrupt_pcap_bytes(clean, opt, &log_a);
    const byte_vector b = corrupt_pcap_bytes(clean, opt, &log_b);
    EXPECT_EQ(a, b);
    ASSERT_EQ(log_a.faults.size(), log_b.faults.size());
    for (std::size_t i = 0; i < log_a.faults.size(); ++i) {
        EXPECT_EQ(log_a.faults[i].kind, log_b.faults[i].kind);
        EXPECT_EQ(log_a.faults[i].record_index, log_b.faults[i].record_index);
    }
    EXPECT_GT(log_a.faults.size(), 0u);
}

TEST(Corrupter, DifferentSeedsDiffer) {
    const byte_vector clean = dns_capture_bytes();
    corruption_options opt;
    opt.fault_fraction = 0.3;
    opt.seed = 1;
    const byte_vector a = corrupt_pcap_bytes(clean, opt);
    opt.seed = 2;
    const byte_vector b = corrupt_pcap_bytes(clean, opt);
    EXPECT_NE(a, b);
}

TEST(Corrupter, LogMatchesInjectedKinds) {
    const byte_vector clean = dns_capture_bytes(60, 9);
    corruption_options opt;
    opt.fault_fraction = 0.5;
    opt.seed = 7;
    corruption_log log;
    corrupt_pcap_bytes(clean, opt, &log);
    EXPECT_EQ(log.count(fault_kind::bit_flip) + log.count(fault_kind::snap) +
                  log.count(fault_kind::length_garbage),
              log.faults.size());
    for (const fault& f : log.faults) {
        EXPECT_TRUE(log.faulted(f.record_index));
    }
    EXPECT_FALSE(log.faulted(SIZE_MAX));
}

TEST(Corrupter, RestrictedKindsAreHonored) {
    const byte_vector clean = dns_capture_bytes(60, 9);
    corruption_options opt;
    opt.fault_fraction = 0.5;
    opt.seed = 7;
    opt.flip_bits = false;
    opt.truncate_records = false;  // only corrupt_lengths remain
    corruption_log log;
    corrupt_pcap_bytes(clean, opt, &log);
    EXPECT_GT(log.faults.size(), 0u);
    EXPECT_EQ(log.count(fault_kind::length_garbage), log.faults.size());
}

TEST(Corrupter, EveryFaultIsDetectedByLenientIngestion) {
    // The corrupter's core guarantee: no fault can silently alter a
    // surviving message. Every faulted record must be quarantined either by
    // the pcap reader or by decapsulation.
    const byte_vector clean = dns_capture_bytes(80, 11);
    corruption_options opt;
    opt.fault_fraction = 0.25;
    opt.seed = 123;
    corruption_log log;
    const byte_vector corrupt = corrupt_pcap_bytes(clean, opt, &log);
    ASSERT_GT(log.faults.size(), 0u);

    diag::error_sink sink(diag::policy::lenient);
    const pcap::capture cap = pcap::from_pcap_bytes(corrupt, sink);
    const auto datagrams = pcap::extract_datagrams(cap, {}, sink);

    const std::size_t total_records = pcap::from_pcap_bytes(clean).packets.size();
    EXPECT_EQ(datagrams.size(), total_records - log.faults.size());
    EXPECT_EQ(sink.quarantined(), log.faults.size());
}

TEST(Corrupter, RejectsNonPcapInput) {
    const byte_vector junk(64, 0xab);
    EXPECT_THROW(corrupt_pcap_bytes(junk, {}), parse_error);
    EXPECT_THROW(corrupt_pcap_bytes(byte_vector{0x01, 0x02}, {}), parse_error);
}

TEST(Corrupter, FileRoundTrip) {
    const auto in_path = std::filesystem::temp_directory_path() / "ftclust_corrupter_in.pcap";
    const auto out_path =
        std::filesystem::temp_directory_path() / "ftclust_corrupter_out.pcap";
    pcap::write_file(in_path,
                     protocols::trace_to_capture(protocols::generate_trace("DNS", 20, 3)));
    corruption_options opt;
    opt.fault_fraction = 0.2;
    corruption_log log;
    corrupt_pcap_file(in_path, out_path, opt, &log);
    EXPECT_TRUE(std::filesystem::exists(out_path));
    diag::error_sink sink(diag::policy::lenient);
    const pcap::capture cap = pcap::read_file(out_path, sink);
    EXPECT_GT(cap.packets.size(), 0u);
    std::filesystem::remove(in_path);
    std::filesystem::remove(out_path);
}

}  // namespace
}  // namespace ftc::testing
