// Unit tests for the ftc::obs metrics registry (obs/obs.hpp): exact sums
// under concurrent sharded writes, deterministic merge order, gauge
// last-write-wins, histogram bucketing and the disabled-path contract.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "util/thread_pool.hpp"

namespace ftc::obs {
namespace {

TEST(ObsRegistry, CounterAddAccumulates) {
    registry reg;
    reg.add("a", 1.0);
    reg.add("a", 2.0);
    reg.add("b", 0.5);
    const metrics_snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_DOUBLE_EQ(snap.counters.at("a"), 3.0);
    EXPECT_DOUBLE_EQ(snap.counters.at("b"), 0.5);
}

TEST(ObsRegistry, ConcurrentIncrementsSumExactly) {
    // One shard per writer thread: integer-valued increments must merge to
    // the exact total (doubles are exact for integers up to 2^53).
    registry reg;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg] {
            for (int i = 0; i < kPerThread; ++i) {
                reg.add("hits", 1.0);
            }
        });
    }
    for (std::thread& t : threads) {
        t.join();
    }
    EXPECT_DOUBLE_EQ(reg.snapshot().counters.at("hits"),
                     static_cast<double>(kThreads) * kPerThread);
}

TEST(ObsRegistry, ThreadPoolWorkersWriteToOwnShards) {
    // The instrumented fan-out path: pool workers each hit their own shard;
    // the snapshot still sums exactly.
    scoped_recorder recorder;
    constexpr std::size_t kCount = 4096;
    util::parallel_for(kCount, 16, 0, [&recorder](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            recorder.rec().metrics().add("work_items", 1.0);
        }
    });
    EXPECT_DOUBLE_EQ(recorder.rec().metrics().snapshot().counters.at("work_items"),
                     static_cast<double>(kCount));
}

TEST(ObsRegistry, SnapshotMergeIsDeterministic) {
    registry reg;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&reg, t] {
            reg.add("shared", 1.0);
            reg.add("per_thread_" + std::to_string(t), static_cast<double>(t));
            reg.observe("latency", 1e-4);
        });
    }
    for (std::thread& t : threads) {
        t.join();
    }
    // Two scrapes of an idle registry are identical, element for element.
    const metrics_snapshot a = reg.snapshot();
    const metrics_snapshot b = reg.snapshot();
    EXPECT_EQ(a.counters, b.counters);
    EXPECT_EQ(a.gauges, b.gauges);
    ASSERT_EQ(a.histograms.size(), b.histograms.size());
    for (const auto& [name, hist] : a.histograms) {
        const histogram_snapshot& other = b.histograms.at(name);
        EXPECT_EQ(hist.buckets, other.buckets);
        EXPECT_DOUBLE_EQ(hist.sum, other.sum);
        EXPECT_EQ(hist.count, other.count);
    }
    // And names come out sorted, independent of insertion order.
    std::string last;
    for (const auto& [name, value] : a.counters) {
        (void)value;
        EXPECT_LT(last, name);
        last = name;
    }
}

TEST(ObsRegistry, GaugeLastWriteWins) {
    registry reg;
    reg.set("depth", 3.0);
    reg.set("depth", 7.0);
    EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("depth"), 7.0);
}

TEST(ObsRegistry, HistogramBucketsAndSum) {
    registry reg;
    reg.observe("t", 5e-7);   // <= 1e-6 -> bucket 0
    reg.observe("t", 5e-3);   // <= 1e-2 -> bucket 4
    reg.observe("t", 120.0);  // > 60    -> +Inf bucket
    const histogram_snapshot h = reg.snapshot().histograms.at("t");
    EXPECT_EQ(h.count, 3u);
    EXPECT_DOUBLE_EQ(h.sum, 5e-7 + 5e-3 + 120.0);
    EXPECT_EQ(h.buckets[0], 1u);
    EXPECT_EQ(h.buckets[4], 1u);
    EXPECT_EQ(h.buckets[kHistogramBucketCount - 1], 1u);
    std::uint64_t total = 0;
    for (const std::uint64_t b : h.buckets) {
        total += b;
    }
    EXPECT_EQ(total, h.count);
}

TEST(ObsRegistry, HooksAreNoOpsWithoutRecorder) {
    // No recorder installed: the inline hooks must silently do nothing.
    ASSERT_EQ(current(), nullptr);
    counter_add("ignored", 1.0);
    gauge_set("ignored", 1.0);
    observe("ignored", 1.0);
    span sp("ignored");
    sp.count("ignored", 42);
    EXPECT_FALSE(sp.enabled());
}

TEST(ObsRegistry, ScopedRecorderInstallsAndRestores) {
#ifdef FTC_OBS_DISABLE
    // Compiled-in no-op sink: the recorder exists but is never installed.
    scoped_recorder recorder;
    EXPECT_EQ(current(), nullptr);
#else
    ASSERT_EQ(current(), nullptr);
    {
        scoped_recorder recorder;
        EXPECT_EQ(current(), &recorder.rec());
        counter_add("seen", 1.0);
        EXPECT_DOUBLE_EQ(recorder.rec().metrics().snapshot().counters.at("seen"), 1.0);
    }
    EXPECT_EQ(current(), nullptr);
#endif
}

TEST(ObsRegistry, SparseCountersHaveRegisteredHelp) {
    // Every counter the sparse neighborhood engine emits must carry help
    // text so the Prometheus exposition renders a # HELP line for it —
    // tools/doc_lint pairs these names with the documentation, and this
    // assertion keeps the seeded registry from drifting out from under it.
    for (const char* name : {
             "dissim.sparse.builds_total",
             "dissim.sparse.pairs_scored_total",
             "dissim.sparse.pairs_skipped_total",
             "dissim.sparse.buckets_pruned_total",
             "dissim.sparse.range_rescans_total",
             "dissim.sparse.cache_hits_total",
             "dissim.sparse.ondemand_pairs_total",
         }) {
        EXPECT_FALSE(metric_help(name).empty()) << name;
    }
}

TEST(ObsRegistry, SequentialRecordersDoNotLeakState) {
    // TLS shard caches are epoch-keyed: a second recorder on the same
    // thread must start from zero, not inherit the first one's shard.
    for (int round = 0; round < 2; ++round) {
        scoped_recorder recorder;
        recorder.rec().metrics().add("round", 1.0);
        EXPECT_DOUBLE_EQ(recorder.rec().metrics().snapshot().counters.at("round"), 1.0);
    }
}

}  // namespace
}  // namespace ftc::obs
