// Unit tests for the cooperative stop flag (util/interrupt.hpp) and its
// wiring into deadline/resource_budget cancellation points.
#include "util/interrupt.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/budget.hpp"
#include "util/stopwatch.hpp"

namespace ftc {
namespace {

TEST(Interrupt, FlagLifecycle) {
    scoped_interrupt_clear guard;
    EXPECT_FALSE(interrupt_requested());
    EXPECT_EQ(interrupt_signal(), 0);

    request_interrupt(15);  // SIGTERM
    EXPECT_TRUE(interrupt_requested());
    EXPECT_EQ(interrupt_signal(), 15);

    clear_interrupt();
    EXPECT_FALSE(interrupt_requested());
    EXPECT_EQ(interrupt_signal(), 0);
}

TEST(Interrupt, ProgrammaticRequestHasNoSignal) {
    scoped_interrupt_clear guard;
    request_interrupt();
    EXPECT_TRUE(interrupt_requested());
    EXPECT_EQ(interrupt_signal(), 0);
}

TEST(Interrupt, SignalZeroStillRegistersAsRequest) {
    scoped_interrupt_clear guard;
    request_interrupt(0);  // 0 would alias "not interrupted"; mapped to -1
    EXPECT_TRUE(interrupt_requested());
    EXPECT_EQ(interrupt_signal(), 0);
}

TEST(Interrupt, DeadlineCheckThrowsInterruptedError) {
    scoped_interrupt_clear guard;
    const deadline unlimited;  // no wall-clock budget at all
    EXPECT_NO_THROW(unlimited.check("stage"));
    request_interrupt(2);  // SIGINT
    EXPECT_TRUE(unlimited.expired());
    try {
        unlimited.check("stage");
        FAIL() << "expected interrupted_error";
    } catch (const interrupted_error& e) {
        EXPECT_NE(std::string{e.what()}.find("interrupted"), std::string::npos);
    }
}

TEST(Interrupt, InterruptedErrorIsABudgetExceededError) {
    // Every existing catch(budget_exceeded_error) site must also handle a
    // stop request — that is what makes the cancellation points free.
    scoped_interrupt_clear guard;
    request_interrupt();
    const deadline unlimited;
    EXPECT_THROW(unlimited.check("stage"), budget_exceeded_error);
}

TEST(Interrupt, BudgetCheckThrowsInterruptedWithProgress) {
    scoped_interrupt_clear guard;
    resource_budget budget;
    budget.charge_segments(7, "stage");
    budget.charge_bytes(1234, "stage");
    request_interrupt(15);
    try {
        budget.check("pipeline");
        FAIL() << "expected interrupted_error";
    } catch (const interrupted_error& e) {
        EXPECT_NE(std::string{e.what()}.find("interrupted by stop request"),
                  std::string::npos);
        EXPECT_NE(e.partial_report().find("segments 7"), std::string::npos);
        EXPECT_NE(e.partial_report().find("bytes 1234"), std::string::npos);
    }
}

TEST(Interrupt, InterruptWinsOverExpiredDeadline) {
    // An interrupted run must report "interrupted", not whichever deadline
    // happened to lapse at the same moment.
    scoped_interrupt_clear guard;
    resource_limits limits;
    limits.deadline_seconds = 1e-9;
    resource_budget budget(limits);
    request_interrupt();
    EXPECT_THROW(budget.check("pipeline"), interrupted_error);
}

TEST(Interrupt, ScopedClearRearms) {
    {
        scoped_interrupt_clear guard;
        request_interrupt(9);
        EXPECT_TRUE(interrupt_requested());
    }
    EXPECT_FALSE(interrupt_requested());
}

}  // namespace
}  // namespace ftc
