// Build provenance sanity: these values feed `ftclust version`, the bench
// meta stamp and the run manifest, so they must always be present and
// well-formed — even in a build without a git checkout ("unknown").
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "util/build_info.hpp"

namespace ftc::util {
namespace {

TEST(UtilBuildInfo, FieldsAreNonEmpty) {
    EXPECT_NE(std::string{build_git_sha()}, "");
    EXPECT_NE(std::string{build_type()}, "");
    EXPECT_NE(std::string{build_version()}, "");
    EXPECT_FALSE(run_hostname().empty());
}

TEST(UtilBuildInfo, ShaIsHexOrUnknown) {
    const std::string sha = build_git_sha();
    if (sha != "unknown") {
        EXPECT_GE(sha.size(), 7u);
        for (char c : sha) {
            EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c))) << sha;
        }
    }
}

TEST(UtilBuildInfo, VersionStringCombinesVersionAndSha) {
    const std::string v = build_version_string();
    EXPECT_EQ(v, std::string{build_version()} + "+g" + build_git_sha());
}

TEST(UtilBuildInfo, Iso8601Shape) {
    const std::string t = iso8601_utc_now();
    // "2026-08-09T12:34:56Z"
    ASSERT_EQ(t.size(), 20u);
    EXPECT_EQ(t[4], '-');
    EXPECT_EQ(t[7], '-');
    EXPECT_EQ(t[10], 'T');
    EXPECT_EQ(t[13], ':');
    EXPECT_EQ(t[16], ':');
    EXPECT_EQ(t[19], 'Z');
    for (const std::size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u, 11u, 12u, 14u, 15u, 17u, 18u}) {
        EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(t[i]))) << t;
    }
}

}  // namespace
}  // namespace ftc::util
