// Unit tests for the segment model (segmentation/segment.hpp).
#include "segmentation/segment.hpp"

#include <gtest/gtest.h>

#include "protocols/registry.hpp"
#include "util/check.hpp"

namespace ftc::segmentation {
namespace {

TEST(SegmentModel, SegmentBytesSlicesCorrectly) {
    const std::vector<byte_vector> messages{{1, 2, 3, 4, 5}};
    const segment s{0, 1, 3};
    const byte_view bytes = segment_bytes(messages, s);
    ASSERT_EQ(bytes.size(), 3u);
    EXPECT_EQ(bytes[0], 2);
    EXPECT_EQ(bytes[2], 4);
}

TEST(SegmentModel, SegmentBytesValidatesBounds) {
    const std::vector<byte_vector> messages{{1, 2, 3}};
    EXPECT_THROW(segment_bytes(messages, segment{1, 0, 1}), precondition_error);
    EXPECT_THROW(segment_bytes(messages, segment{0, 2, 2}), precondition_error);
}

TEST(SegmentModel, ValidateAcceptsExactCover) {
    const std::vector<byte_vector> messages{{1, 2, 3, 4}, {5, 6}};
    const message_segments segs{
        {{0, 0, 2}, {0, 2, 2}},
        {{1, 0, 2}},
    };
    EXPECT_NO_THROW(validate_segmentation(messages, segs));
}

TEST(SegmentModel, ValidateRejectsGap) {
    const std::vector<byte_vector> messages{{1, 2, 3, 4}};
    const message_segments segs{{{0, 0, 2}, {0, 3, 1}}};
    EXPECT_THROW(validate_segmentation(messages, segs), error);
}

TEST(SegmentModel, ValidateRejectsOverlap) {
    const std::vector<byte_vector> messages{{1, 2, 3, 4}};
    const message_segments segs{{{0, 0, 3}, {0, 2, 2}}};
    EXPECT_THROW(validate_segmentation(messages, segs), error);
}

TEST(SegmentModel, ValidateRejectsShortCoverAndZeroLength) {
    const std::vector<byte_vector> messages{{1, 2, 3, 4}};
    EXPECT_THROW(validate_segmentation(messages, {{{0, 0, 3}}}), error);
    EXPECT_THROW(validate_segmentation(messages, {{{0, 0, 0}, {0, 0, 4}}}), error);
}

TEST(SegmentModel, ValidateRejectsWrongMessageIndexOrCount) {
    const std::vector<byte_vector> messages{{1, 2}};
    EXPECT_THROW(validate_segmentation(messages, {{{1, 0, 2}}}), error);
    EXPECT_THROW(validate_segmentation(messages, {}), error);
}

TEST(SegmentModel, GroundTruthSegmentsMatchAnnotations) {
    const protocols::trace t = protocols::generate_trace("NTP", 5, 3);
    const message_segments segs = segments_from_annotations(t);
    const std::vector<byte_vector> messages = message_bytes(t);
    EXPECT_NO_THROW(validate_segmentation(messages, segs));
    ASSERT_EQ(segs.size(), 5u);
    EXPECT_EQ(segs[0].size(), t.messages[0].fields.size());
    for (std::size_t f = 0; f < segs[0].size(); ++f) {
        EXPECT_EQ(segs[0][f].offset, t.messages[0].fields[f].offset);
        EXPECT_EQ(segs[0][f].length, t.messages[0].fields[f].length);
    }
}

TEST(SegmentModel, FactoryKnowsAllSegmenters) {
    EXPECT_EQ(make_segmenter("NEMESYS")->name(), "NEMESYS");
    EXPECT_EQ(make_segmenter("CSP")->name(), "CSP");
    EXPECT_EQ(make_segmenter("Netzob")->name(), "Netzob");
    EXPECT_THROW(make_segmenter("Wireshark"), precondition_error);
}

}  // namespace
}  // namespace ftc::segmentation
