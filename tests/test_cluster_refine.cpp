// Unit tests for cluster refinement: merge & split (cluster/refine.hpp).
#include "cluster/refine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ftc::cluster {
namespace {

dissim::dissimilarity_matrix line_matrix(const std::vector<double>& xs) {
    const std::size_t n = xs.size();
    std::vector<double> dense(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            dense[i * n + j] = std::min(1.0, std::abs(xs[i] - xs[j]));
        }
    }
    return dissim::dissimilarity_matrix::from_dense(dense, n);
}

cluster_labels make_labels(std::vector<int> labels) {
    cluster_labels out;
    int max_label = -1;
    for (int l : labels) {
        max_label = std::max(max_label, l);
    }
    out.labels = std::move(labels);
    out.cluster_count = static_cast<std::size_t>(max_label + 1);
    return out;
}

TEST(Merge, AdjacentEqualDensityClustersMerge) {
    // Two halves of one uniform blob, split artificially: spacing 0.01
    // everywhere, including across the split -> link distance equals the
    // intra-cluster scale, densities identical -> must merge.
    std::vector<double> xs;
    std::vector<int> labels;
    for (int i = 0; i < 10; ++i) {
        xs.push_back(0.01 * i);
        labels.push_back(0);
    }
    for (int i = 0; i < 10; ++i) {
        xs.push_back(0.1 + 0.01 * (i + 1));
        labels.push_back(1);
    }
    const auto m = line_matrix(xs);
    const refine_result r = merge_clusters(m, make_labels(labels));
    EXPECT_EQ(r.labels.cluster_count, 1u);
    ASSERT_EQ(r.merges.size(), 1u);
    EXPECT_GT(r.merges[0].link_dissimilarity, 0.0);
}

TEST(Merge, DistantClustersStaySeparate) {
    std::vector<double> xs;
    std::vector<int> labels;
    for (int i = 0; i < 10; ++i) {
        xs.push_back(0.001 * i);
        labels.push_back(0);
    }
    for (int i = 0; i < 10; ++i) {
        xs.push_back(0.8 + 0.001 * i);
        labels.push_back(1);
    }
    const auto m = line_matrix(xs);
    const refine_result r = merge_clusters(m, make_labels(labels));
    EXPECT_EQ(r.labels.cluster_count, 2u);
    EXPECT_TRUE(r.merges.empty());
}

TEST(Merge, DissimilarDensityClustersStaySeparate) {
    // Tight cluster (spacing 0.0005, 12 members) next to a loose one
    // (spacing 0.04, 8 members). The loose cluster is smaller, so the
    // epsilon of condition 1 spans both; the local densities around the
    // link segments then differ by far more than the 0.01 threshold, and
    // the cluster-wide 1-NN medians differ by more than 0.002 (condition 2)
    // -> no merge.
    std::vector<double> xs;
    std::vector<int> labels;
    for (int i = 0; i < 12; ++i) {
        xs.push_back(0.0005 * i);
        labels.push_back(0);
    }
    for (int i = 0; i < 8; ++i) {
        xs.push_back(0.02 + 0.04 * i);
        labels.push_back(1);
    }
    const auto m = line_matrix(xs);
    const refine_result r = merge_clusters(m, make_labels(labels));
    EXPECT_EQ(r.labels.cluster_count, 2u);
}

TEST(Merge, TransitiveMergingViaUnionFind) {
    // Three consecutive slices of one uniform blob -> all three collapse.
    std::vector<double> xs;
    std::vector<int> labels;
    for (int c = 0; c < 3; ++c) {
        for (int i = 0; i < 8; ++i) {
            xs.push_back(0.01 * (c * 8 + i));
            labels.push_back(c);
        }
    }
    const auto m = line_matrix(xs);
    const refine_result r = merge_clusters(m, make_labels(labels));
    EXPECT_EQ(r.labels.cluster_count, 1u);
    EXPECT_GE(r.merges.size(), 2u);
}

TEST(Merge, NoiseLabelsUntouched) {
    std::vector<double> xs{0.0, 0.01, 0.02, 0.5, 0.51, 0.52, 0.9};
    std::vector<int> labels{0, 0, 0, 1, 1, 1, kNoise};
    const auto m = line_matrix(xs);
    const refine_result r = merge_clusters(m, make_labels(labels));
    EXPECT_EQ(r.labels.labels[6], kNoise);
}

TEST(Merge, SingleClusterPassesThrough) {
    const auto m = line_matrix({0.0, 0.01, 0.02});
    const refine_result r = merge_clusters(m, make_labels({0, 0, 0}));
    EXPECT_EQ(r.labels.cluster_count, 1u);
    EXPECT_TRUE(r.merges.empty());
}

TEST(Merge, DegenerateSingletonClustersIgnored) {
    const auto m = line_matrix({0.0, 0.001, 0.002, 0.003});
    // Cluster 1 is a singleton: no density information -> never merged.
    const refine_result r = merge_clusters(m, make_labels({0, 0, 0, 1}));
    EXPECT_EQ(r.labels.cluster_count, 2u);
}

TEST(Split, PolarizedOccurrencesSplit) {
    // One cluster of 20 values: 17 appear once, 3 appear 400 times each.
    // |c| = 17 + 1200 = 1217, F = ln|c| ~ 7.1; PR(F) = 85%? -> need > 95 %:
    // use 39 rare + 3 frequent -> PR = 39.5/42*100 ~ 94 -> push to 60 rare.
    std::vector<int> labels(63, 0);
    std::vector<std::size_t> occurrences(63, 1);
    occurrences[60] = 400;
    occurrences[61] = 400;
    occurrences[62] = 400;
    const refine_result r = split_clusters(make_labels(labels), occurrences);
    ASSERT_EQ(r.splits.size(), 1u);
    EXPECT_EQ(r.labels.cluster_count, 2u);
    EXPECT_EQ(r.splits[0].high_side, 3u);
    EXPECT_EQ(r.splits[0].low_side, 60u);
    // The three frequent values share the new cluster id.
    EXPECT_EQ(r.labels.labels[60], r.labels.labels[61]);
    EXPECT_NE(r.labels.labels[60], r.labels.labels[0]);
}

TEST(Split, UniformOccurrencesDoNotSplit) {
    std::vector<int> labels(30, 0);
    std::vector<std::size_t> occurrences(30, 5);
    const refine_result r = split_clusters(make_labels(labels), occurrences);
    EXPECT_TRUE(r.splits.empty());
    EXPECT_EQ(r.labels.cluster_count, 1u);
}

TEST(Split, SmallClustersSkipped) {
    std::vector<int> labels{0, 0};
    std::vector<std::size_t> occurrences{1, 1000};
    const refine_result r = split_clusters(make_labels(labels), occurrences);
    EXPECT_TRUE(r.splits.empty());
}

TEST(Split, RequiresOccurrencePerLabel) {
    std::vector<int> labels{0, 0, 0};
    std::vector<std::size_t> occurrences{1, 1};
    EXPECT_THROW(split_clusters(make_labels(labels), occurrences), precondition_error);
}

TEST(Refine, MergeThenSplitComposition) {
    // Uniform blob split in two (will merge back) where a few values are
    // hugely frequent (will split off).
    std::vector<double> xs;
    std::vector<int> labels;
    std::vector<std::size_t> occurrences;
    for (int i = 0; i < 60; ++i) {
        xs.push_back(0.01 * i);
        labels.push_back(i < 30 ? 0 : 1);
        occurrences.push_back(1);
    }
    occurrences[0] = 500;
    occurrences[1] = 500;
    const auto m = line_matrix(xs);
    const refine_result r = refine(m, make_labels(labels), occurrences);
    EXPECT_GE(r.merges.size(), 1u);
    EXPECT_EQ(r.splits.size(), 1u);
    // Net effect: one merged cluster split into frequent/infrequent halves.
    EXPECT_EQ(r.labels.cluster_count, 2u);
}

TEST(Merge, MaxMergedFractionBlocksOversizedMerge) {
    // Two mergeable halves of a uniform blob; with max_merged_fraction the
    // merge (which would cover 100% of non-noise points) must be rejected.
    std::vector<double> xs;
    std::vector<int> labels;
    for (int i = 0; i < 20; ++i) {
        xs.push_back(0.01 * i);
        labels.push_back(i < 10 ? 0 : 1);
    }
    const auto m = line_matrix(xs);
    refine_options opt;
    opt.max_merged_fraction = 0.6;
    const refine_result blocked = merge_clusters(m, make_labels(labels), opt);
    EXPECT_EQ(blocked.labels.cluster_count, 2u);
    EXPECT_TRUE(blocked.merges.empty());
    // Without the cap the same input merges.
    const refine_result merged = merge_clusters(m, make_labels(labels));
    EXPECT_EQ(merged.labels.cluster_count, 1u);
}

TEST(Merge, MaxMergedFractionAllowsSmallMerges) {
    // Two small adjacent clusters plus one large distant cluster: merging
    // the small ones stays below the fraction and must still happen.
    std::vector<double> xs;
    std::vector<int> labels;
    for (int i = 0; i < 8; ++i) {
        xs.push_back(0.01 * i);
        labels.push_back(0);
    }
    for (int i = 0; i < 8; ++i) {
        xs.push_back(0.08 + 0.01 * (i + 1));
        labels.push_back(1);
    }
    for (int i = 0; i < 40; ++i) {
        xs.push_back(0.8 + 0.0005 * i);
        labels.push_back(2);
    }
    const auto m = line_matrix(xs);
    refine_options opt;
    opt.max_merged_fraction = 0.6;
    const refine_result r = merge_clusters(m, make_labels(labels), opt);
    EXPECT_EQ(r.labels.cluster_count, 2u);
    ASSERT_EQ(r.merges.size(), 1u);
}

TEST(Refine, NoClustersIsANoop) {
    const auto m = line_matrix({0.3, 0.6, 0.9});
    cluster_labels input;
    input.labels = {kNoise, kNoise, kNoise};
    input.cluster_count = 0;
    const refine_result r = refine(m, input, {1, 1, 1});
    EXPECT_EQ(r.labels.cluster_count, 0u);
    EXPECT_TRUE(r.merges.empty());
    EXPECT_TRUE(r.splits.empty());
}

}  // namespace
}  // namespace ftc::cluster
