// Unit tests for learned value-generation models (core/valuegen.hpp) —
// the paper's Sec. V fuzzing/misbehavior-detection extension.
#include "core/valuegen.hpp"

#include <gtest/gtest.h>

#include <set>

#include "protocols/registry.hpp"
#include "segmentation/segment.hpp"
#include "util/check.hpp"

namespace ftc::core {
namespace {

TEST(ValueModel, RejectsEmptyTrainingSets) {
    EXPECT_THROW(value_model({}), precondition_error);
    EXPECT_THROW(value_model({byte_vector{}}), precondition_error);
}

TEST(ValueModel, ConstantPrefixDetected) {
    const std::vector<byte_vector> values{
        {0xd2, 0x3d, 0x19, 0x10},
        {0xd2, 0x3d, 0x19, 0x77},
        {0xd2, 0x3d, 0x19, 0xab},
    };
    const value_model model(values);
    EXPECT_EQ(model.constant_prefix(), 3u);
    EXPECT_TRUE(model.fixed_length());
    EXPECT_EQ(model.max_length(), 4u);
}

TEST(ValueModel, SamplesPreserveConstantPrefix) {
    const std::vector<byte_vector> values{
        {0xd2, 0x3d, 0x19, 0x10},
        {0xd2, 0x3d, 0x19, 0x77},
        {0xd2, 0x3d, 0x19, 0xab},
    };
    const value_model model(values);
    rng rand(3);
    for (int i = 0; i < 50; ++i) {
        const byte_vector s = model.sample(rand);
        ASSERT_EQ(s.size(), 4u);
        EXPECT_EQ(s[0], 0xd2);
        EXPECT_EQ(s[1], 0x3d);
        EXPECT_EQ(s[2], 0x19);
        // Final byte comes from the observed population.
        EXPECT_TRUE(s[3] == 0x10 || s[3] == 0x77 || s[3] == 0xab);
    }
}

TEST(ValueModel, SampleLengthsFollowTraining) {
    const std::vector<byte_vector> values{
        {1, 2},
        {1, 2},
        {1, 2},
        {1, 2, 3, 4},
    };
    const value_model model(values);
    EXPECT_FALSE(model.fixed_length());
    rng rand(5);
    std::set<std::size_t> lengths;
    for (int i = 0; i < 100; ++i) {
        lengths.insert(model.sample(rand).size());
    }
    EXPECT_EQ(lengths, (std::set<std::size_t>{2, 4}));
}

TEST(ValueModel, LikelihoodRanksInDistributionHigher) {
    std::vector<byte_vector> values;
    rng rand(7);
    for (int i = 0; i < 40; ++i) {
        byte_vector v{0xca, 0xfe};
        v.push_back(static_cast<std::uint8_t>(rand.uniform(0, 15)));  // low nibble only
        v.push_back(static_cast<std::uint8_t>(rand.uniform(0, 15)));
        values.push_back(v);
    }
    const value_model model(values);
    const double in_dist = model.log_likelihood(byte_vector{0xca, 0xfe, 0x05, 0x0a});
    const double out_dist = model.log_likelihood(byte_vector{0x00, 0x00, 0xff, 0xff});
    EXPECT_GT(in_dist, out_dist);
}

TEST(ValueModel, UnseenBytesAreSmoothedNotImpossible) {
    const value_model model({byte_vector{1, 1}, byte_vector{1, 2}});
    const double score = model.log_likelihood(byte_vector{9, 9});
    EXPECT_GT(score, -64.0);
    EXPECT_LT(score, 0.0);
}

TEST(ValueModel, LongerThanTrainingUsesUniformPrior) {
    const value_model model({byte_vector{1, 2}});
    const double score = model.log_likelihood(byte_vector{1, 2, 3, 4});
    EXPECT_GT(score, -64.0);
}

TEST(ValueModel, SampledValuesScoreWell) {
    // Property: values the model generates must score at least as well as
    // alien random values, on average.
    rng rand(11);
    std::vector<byte_vector> values;
    for (int i = 0; i < 30; ++i) {
        byte_vector v{0x10, 0x20};
        put_bytes(v, rand.bytes(2));
        values.push_back(v);
    }
    const value_model model(values);
    double sampled_sum = 0.0;
    double alien_sum = 0.0;
    for (int i = 0; i < 40; ++i) {
        sampled_sum += model.log_likelihood(model.sample(rand));
        alien_sum += model.log_likelihood(rand.bytes(4));
    }
    EXPECT_GT(sampled_sum, alien_sum);
}

TEST(ValueModels, LearnedPerCluster) {
    const protocols::trace t = protocols::generate_trace("NTP", 120, 13);
    const auto messages = segmentation::message_bytes(t);
    const pipeline_result r = analyze_segments(
        messages, segmentation::segments_from_annotations(t), {});
    const cluster_value_models models = learn_value_models(r);
    EXPECT_EQ(models.cluster_ids.size(), models.models.size());
    EXPECT_GT(models.models.size(), 0u);
    // Every model can sample and self-score.
    rng rand(17);
    for (std::size_t i = 0; i < models.models.size(); ++i) {
        const byte_vector sample = models.models[i].sample(rand);
        EXPECT_FALSE(sample.empty());
        const auto score =
            score_against_cluster(models, models.cluster_ids[i], sample);
        ASSERT_TRUE(score.has_value());
        EXPECT_LT(*score, 0.0);
    }
    EXPECT_FALSE(score_against_cluster(models, 424242, byte_vector{1}).has_value());
}

TEST(ValueModels, MisbehaviorDetectionSeparatesAnomalies) {
    // Misbehavior detection sketch: NTP timestamp cluster — a value with a
    // wrong era prefix must score clearly below in-era values.
    const protocols::trace t = protocols::generate_trace("NTP", 150, 19);
    const auto messages = segmentation::message_bytes(t);
    const pipeline_result r = analyze_segments(
        messages, segmentation::segments_from_annotations(t), {});
    const cluster_value_models models = learn_value_models(r);
    // Find the 8-byte cluster (timestamps).
    for (std::size_t i = 0; i < models.models.size(); ++i) {
        const value_model& model = models.models[i];
        if (model.max_length() == 8 && model.fixed_length() && model.constant_prefix() >= 1) {
            rng rand(23);
            byte_vector normal{0xd2, 0x3d, 0x19, 0x40};
            put_bytes(normal, rand.bytes(4));
            byte_vector anomalous{0x00, 0x00, 0x00, 0x01};
            put_bytes(anomalous, rand.bytes(4));
            EXPECT_GT(model.log_likelihood(normal), model.log_likelihood(anomalous));
            return;
        }
    }
    GTEST_SKIP() << "no fixed 8-byte cluster found in this run";
}

}  // namespace
}  // namespace ftc::core
