// Unit tests for the ftc::obs span tracer and exporters (obs/export.hpp):
// span nesting/depth accounting, Chrome trace-event JSON well-formedness,
// Prometheus text shape and run-manifest serialization.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>

#include "obs/obs.hpp"

namespace ftc::obs {
namespace {

/// Minimal recursive-descent JSON syntax checker — enough to assert the
/// exporters emit structurally valid JSON without a parser dependency.
class json_checker {
public:
    explicit json_checker(std::string_view text) : text_(text) {}

    bool valid() {
        skip_ws();
        if (!value()) {
            return false;
        }
        skip_ws();
        return pos_ == text_.size();
    }

private:
    bool value() {
        if (pos_ >= text_.size()) {
            return false;
        }
        switch (text_[pos_]) {
            case '{':
                return object();
            case '[':
                return array();
            case '"':
                return string();
            case 't':
                return literal("true");
            case 'f':
                return literal("false");
            case 'n':
                return literal("null");
            default:
                return number();
        }
    }

    bool object() {
        ++pos_;  // '{'
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skip_ws();
            if (!string()) {
                return false;
            }
            skip_ws();
            if (peek() != ':') {
                return false;
            }
            ++pos_;
            skip_ws();
            if (!value()) {
                return false;
            }
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool array() {
        ++pos_;  // '['
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skip_ws();
            if (!value()) {
                return false;
            }
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool string() {
        if (peek() != '"') {
            return false;
        }
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size()) {
                    return false;
                }
            }
            ++pos_;
        }
        return false;
    }

    bool number() {
        const std::size_t start = pos_;
        if (peek() == '-') {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) {
            return false;
        }
        pos_ += word.size();
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
            ++pos_;
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

TEST(ObsTrace, SpansRecordNestingDepth) {
    trace_snapshot snap;
    {
        scoped_recorder scoped;
        {
            span outer("stage");
            {
                span inner("sub");
                { span innermost("subsub"); }
            }
            { span sibling("sub2"); }
        }
        snap = scoped.rec().trace();
    }
#ifdef FTC_OBS_DISABLE
    EXPECT_TRUE(snap.spans.empty());
#else
    ASSERT_EQ(snap.spans.size(), 4u);
    // Sorted by (tid, start, depth): parent first, then children in order.
    EXPECT_EQ(snap.spans[0].name, "stage");
    EXPECT_EQ(snap.spans[0].depth, 0u);
    EXPECT_EQ(snap.spans[1].name, "sub");
    EXPECT_EQ(snap.spans[1].depth, 1u);
    EXPECT_EQ(snap.spans[2].name, "subsub");
    EXPECT_EQ(snap.spans[2].depth, 2u);
    EXPECT_EQ(snap.spans[3].name, "sub2");
    EXPECT_EQ(snap.spans[3].depth, 1u);
    // A parent's wall time covers its children.
    EXPECT_LE(snap.spans[0].start_ns, snap.spans[1].start_ns);
    EXPECT_GE(snap.spans[0].start_ns + snap.spans[0].wall_ns,
              snap.spans[1].start_ns + snap.spans[1].wall_ns);
#endif
}

#ifndef FTC_OBS_DISABLE

TEST(ObsTrace, ThreadsGetDistinctTids) {
    scoped_recorder scoped;
    {
        span main_span("main");
        std::thread worker([] { span s("worker"); });
        worker.join();
    }
    const trace_snapshot snap = scoped.rec().trace();
    ASSERT_EQ(snap.spans.size(), 2u);
    EXPECT_NE(snap.spans[0].tid, snap.spans[1].tid);
}

TEST(ObsTrace, SpanCountsAreExported) {
    scoped_recorder scoped;
    {
        span s("stage");
        s.count("segments", 42);
        s.count("pairs", 7);
    }
    const trace_snapshot snap = scoped.rec().trace();
    ASSERT_EQ(snap.spans.size(), 1u);
    ASSERT_EQ(snap.spans[0].args.size(), 2u);
    EXPECT_EQ(snap.spans[0].args[0].key, "segments");
    EXPECT_EQ(snap.spans[0].args[0].value, 42u);
    EXPECT_EQ(snap.spans[0].args[1].key, "pairs");
    EXPECT_EQ(snap.spans[0].args[1].value, 7u);
}

TEST(ObsTrace, ChromeTraceIsValidJson) {
    scoped_recorder scoped;
    {
        span outer("dissimilarity");
        outer.count("pairs", 100);
        { span inner("dissim.matrix"); }
    }
    const std::string json = to_chrome_trace(scoped.rec().trace());
    EXPECT_TRUE(json_checker(json).valid()) << json;
    // Trace-event essentials: complete events with µs timestamps.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dissimilarity\""), std::string::npos);
    EXPECT_NE(json.find("\"dissim.matrix\""), std::string::npos);
    EXPECT_NE(json.find("\"pairs\":100"), std::string::npos);
}

TEST(ObsTrace, PrometheusDumpHasTypedFamilies) {
    scoped_recorder scoped;
    scoped.rec().metrics().add("pcap.datagrams_total", 3.0);
    scoped.rec().metrics().set("pipeline.unique_segments", 17.0);
    scoped.rec().metrics().observe("threadpool.block_seconds", 2e-3);
    const std::string text = to_prometheus(scoped.rec().metrics().snapshot());
    EXPECT_NE(text.find("# TYPE ftc_pcap_datagrams_total counter"), std::string::npos);
    EXPECT_NE(text.find("ftc_pcap_datagrams_total 3"), std::string::npos);
    EXPECT_NE(text.find("# TYPE ftc_pipeline_unique_segments gauge"), std::string::npos);
    EXPECT_NE(text.find("# TYPE ftc_threadpool_block_seconds histogram"),
              std::string::npos);
    EXPECT_NE(text.find("ftc_threadpool_block_seconds_bucket{le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("ftc_threadpool_block_seconds_count 1"), std::string::npos);
}

TEST(ObsTrace, CollectStagesKeepsMainThreadOrder) {
    scoped_recorder scoped;
    {
        { span a("pcap.decap"); }
        { span b("segmentation"); }
        {
            span c("dissimilarity");
            { span sub("dissim.matrix"); }  // depth 1: not a stage
        }
        std::thread worker([] { span w("worker-stage"); });
        worker.join();  // other thread: not a stage either
    }
    const std::vector<manifest_stage> stages = collect_stages(scoped.rec().trace());
    ASSERT_EQ(stages.size(), 3u);
    EXPECT_EQ(stages[0].name, "pcap.decap");
    EXPECT_EQ(stages[1].name, "segmentation");
    EXPECT_EQ(stages[2].name, "dissimilarity");
}

#endif  // FTC_OBS_DISABLE

TEST(ObsTrace, ManifestSerializesAllSections) {
    run_manifest m;
    m.version = "1.0.0";
    m.command = "run";
    m.options = {{"segmenter", "NEMESYS"}, {"mode", "strict"}};
    m.input_path = "dns.pcap";
    m.input_bytes = 1234;
    m.input_digest = 0xdeadbeefcafef00dULL;
    m.threads = 4;
    m.stages.push_back({"segmentation", 0.5, 0.4, {{"messages", 100}}});
    m.metrics.counters["budget.segments"] = 100.0;
    m.metrics.gauges["pipeline.unique_segments"] = 42.0;
    m.quarantined = 2;
    m.quarantine_by_category = {{"record", 2}};
    m.peak_rss_bytes = 1 << 20;
    m.elapsed_seconds = 0.75;
    m.messages = 100;
    m.unique_segments = 42;
    m.clusters = 7;
    m.noise = 3;
    m.epsilon = 0.16;
    m.min_samples = 6;

    const std::string json = to_json(m);
    EXPECT_TRUE(json_checker(json).valid()) << json;
    for (const char* key :
         {"\"tool\"", "\"version\"", "\"command\"", "\"status\"", "\"options\"",
          "\"input\"", "\"digest_fnv1a64\"", "\"seed\"", "\"threads\"", "\"stages\"",
          "\"quarantine\"", "\"resources\"", "\"peak_rss_bytes\"", "\"result\"",
          "\"counters\"", "\"gauges\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
    }
    EXPECT_NE(json.find("\"seed\":null"), std::string::npos);
    EXPECT_NE(json.find("\"clusters\":7"), std::string::npos);
    EXPECT_NE(json.find("\"segmentation\""), std::string::npos);
}

TEST(ObsTrace, JsonEscapeHandlesControlCharacters) {
    std::string out;
    json_escape(out, "a\"b\\c\n\t\x01");
    EXPECT_EQ(out, "a\\\"b\\\\c\\n\\t\\u0001");
}

TEST(ObsTrace, Fnv1a64MatchesReferenceVectors) {
    // Classic FNV-1a test vectors.
    EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a64("foobar", 6), 0x85944171f73967e8ULL);
}

}  // namespace
}  // namespace ftc::obs
