// Unit and property tests for the deterministic RNG (util/rng.hpp).
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ftc {
namespace {

TEST(Rng, SameSeedSameSequence) {
    rng a(7);
    rng b(7);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDiverge) {
    rng a(1);
    rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, UniformRespectsInclusiveBounds) {
    rng rand(3);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rand.uniform(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, UniformSingletonRange) {
    rng rand(3);
    EXPECT_EQ(rand.uniform(42, 42), 42u);
}

TEST(Rng, UniformRejectsInvertedRange) {
    rng rand(3);
    EXPECT_THROW(rand.uniform(9, 5), precondition_error);
}

TEST(Rng, UniformCoversWholeRange) {
    rng rand(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        seen.insert(rand.uniform(0, 7));
    }
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
    rng rand(5);
    for (int i = 0; i < 1000; ++i) {
        const double v = rand.uniform01();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformRealRespectsBounds) {
    rng rand(5);
    for (int i = 0; i < 200; ++i) {
        const double v = rand.uniform_real(-2.5, 3.5);
        EXPECT_GE(v, -2.5);
        EXPECT_LT(v, 3.5);
    }
}

TEST(Rng, ChanceExtremes) {
    rng rand(9);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rand.chance(0.0));
        EXPECT_TRUE(rand.chance(1.0));
    }
}

TEST(Rng, BytesHaveRequestedLength) {
    rng rand(1);
    EXPECT_EQ(rand.bytes(0).size(), 0u);
    EXPECT_EQ(rand.bytes(17).size(), 17u);
}

TEST(Rng, PickRejectsEmptyAndReturnsMember) {
    rng rand(1);
    const std::vector<int> values{10, 20, 30};
    for (int i = 0; i < 50; ++i) {
        const int v = rand.pick(values);
        EXPECT_TRUE(v == 10 || v == 20 || v == 30);
    }
    const std::vector<int> empty;
    EXPECT_THROW(rand.pick(empty), precondition_error);
}

TEST(Rng, ShufflePreservesMultiset) {
    rng rand(2);
    std::vector<int> values{1, 2, 2, 3, 4, 5, 5, 5};
    std::vector<int> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    rand.shuffle(values);
    std::sort(values.begin(), values.end());
    EXPECT_EQ(values, sorted);
}

TEST(Rng, SmallCountWithinBounds) {
    rng rand(4);
    for (int i = 0; i < 200; ++i) {
        const std::size_t v = rand.small_count(2, 6);
        EXPECT_GE(v, 2u);
        EXPECT_LE(v, 6u);
    }
}

TEST(Rng, ZipfIndexInRangeAndSkewed) {
    rng rand(6);
    std::size_t low = 0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i) {
        const std::size_t v = rand.zipf_index(20);
        EXPECT_LT(v, 20u);
        if (v < 5) {
            ++low;
        }
    }
    // The first quarter of the population should receive well over its
    // uniform share (25 %) of draws.
    EXPECT_GT(low, static_cast<std::size_t>(0.4 * trials));
}

TEST(Rng, ZipfIndexSingleton) {
    rng rand(6);
    EXPECT_EQ(rand.zipf_index(1), 0u);
    EXPECT_THROW(rand.zipf_index(0), precondition_error);
}

// Property sweep across seeds: mean of uniform01 stays near 0.5.
class RngMoments : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngMoments, Uniform01MeanNearHalf) {
    rng rand(GetParam());
    double sum = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        sum += rand.uniform01();
    }
    EXPECT_NEAR(sum / n, 0.5, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngMoments, ::testing::Values(1, 2, 3, 42, 1337, 9999));

}  // namespace
}  // namespace ftc
