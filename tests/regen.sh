#!/bin/sh
# Regenerate the test list from the directory contents.
cd "$(dirname "$0")"
{
  echo "# One test binary per source file; each registers as one CTest entry"
  echo "# running its full gtest suite. Regenerate with tests/regen.sh."
  echo "set(FTC_TEST_SOURCES"
  ls test_*.cpp | sed 's/^/  /'
  echo ")"
  echo ""
  echo 'foreach(src ${FTC_TEST_SOURCES})'
  echo '  get_filename_component(name ${src} NAME_WE)'
  echo '  add_executable(${name} ${src})'
  echo '  target_link_libraries(${name} PRIVATE'
  echo '    ftc_core ftc_fieldhunter ftc_warnings GTest::gtest GTest::gtest_main)'
  echo '  add_test(NAME ${name} COMMAND ${name})'
  echo 'endforeach()'
} > CMakeLists.txt
