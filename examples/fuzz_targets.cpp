/// \file fuzz_targets.cpp
/// Deriving a fuzzing configuration from pseudo data types — the use case
/// the paper motivates ("particularly relevant for use in fuzzing and
/// misbehavior detection"). Clusters give, per field candidate, a value
/// domain: fixed-width numeric ranges, text alphabets, constants to keep
/// intact, and high-entropy blobs to leave alone (checksums/signatures
/// rarely pay off under mutation). The example emits a mutation plan plus
/// a small seed corpus of mutated messages.
///
/// Usage: fuzz_targets [protocol] [messages]
#include <cstdio>
#include <cstdlib>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/valuegen.hpp"
#include "protocols/registry.hpp"
#include "segmentation/nemesys.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace {

using namespace ftc;

/// Mutation strategy for one pseudo data type.
struct mutation_rule {
    int cluster_id = 0;
    std::string strategy;
    std::string rationale;
};

mutation_rule plan_for(const core::cluster_summary& s) {
    mutation_rule rule;
    rule.cluster_id = s.cluster_id;
    const std::string kind = s.kind_hint();
    if (kind == "constant") {
        rule.strategy = "keep";
        rule.rationale = "constant across trace; changing it likely drops the message early";
    } else if (kind == "chars") {
        rule.strategy = "grow-and-garble";
        rule.rationale = "text field; try oversize strings, format specifiers, delimiters";
    } else if (kind == "high-entropy") {
        rule.strategy = "keep";
        rule.rationale = "random content (checksum/signature/nonce); mutations are rejected";
    } else if (s.numeric_valid) {
        rule.strategy = "boundary-numbers";
        rule.rationale = "numeric domain [" + std::to_string(s.numeric_min) + ", " +
                         std::to_string(s.numeric_max) + "]; probe 0, max, off-by-one, sign bit";
    } else {
        rule.strategy = "bit-flips";
        rule.rationale = "opaque field; low-rate bit flips";
    }
    return rule;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string protocol = argc > 1 ? argv[1] : "DNS";
    const std::size_t count = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 200;

    try {
        const protocols::trace trace = protocols::generate_trace(protocol, count, 17);
        const auto messages = segmentation::message_bytes(trace);

        // Unknown-protocol setting: heuristic segmentation.
        const segmentation::nemesys_segmenter segmenter;
        const core::pipeline_result result = core::analyze(messages, segmenter, {});
        const auto summaries = core::summarize_clusters(result);

        std::printf("fuzzing plan for %s derived from %zu pseudo data types:\n\n",
                    protocol.c_str(), summaries.size());
        std::printf("%-8s %-14s %-18s %s\n", "cluster", "kind", "strategy", "rationale");
        for (const core::cluster_summary& s : summaries) {
            const mutation_rule rule = plan_for(s);
            std::printf("%-8d %-14s %-18s %s\n", s.cluster_id, s.kind_hint().c_str(),
                        rule.strategy.c_str(), rule.rationale.c_str());
        }

        // Emit a seed corpus: take real messages and mutate only the
        // segments whose cluster strategy allows it.
        rng rand(99);
        std::printf("\nsample mutations (original -> mutated, changed segments marked):\n");
        std::size_t emitted = 0;
        for (std::size_t v = 0; v < result.unique.size() && emitted < 5; ++v) {
            const int label = result.final_labels.labels[v];
            if (label < 0) {
                continue;
            }
            const core::cluster_summary* summary = nullptr;
            for (const core::cluster_summary& s : summaries) {
                if (s.cluster_id == label) {
                    summary = &s;
                }
            }
            if (summary == nullptr) {
                continue;
            }
            const mutation_rule rule = plan_for(*summary);
            if (rule.strategy == "keep") {
                continue;
            }
            const segmentation::segment seg = result.unique.occurrences[v].front();
            byte_vector mutated = messages[seg.message_index];
            if (rule.strategy == "boundary-numbers") {
                for (std::size_t i = 0; i < seg.length; ++i) {
                    mutated[seg.offset + i] = 0xff;  // numeric max probe
                }
            } else if (rule.strategy == "grow-and-garble") {
                for (std::size_t i = 0; i < seg.length; ++i) {
                    mutated[seg.offset + i] = static_cast<std::uint8_t>('%');  // fmt probe
                }
            } else {
                mutated[seg.offset + rand.uniform(0, seg.length - 1)] ^= 0x80;
            }
            std::printf("  msg %3zu seg [%zu,+%zu) %-18s %s -> %s\n", seg.message_index,
                        seg.offset, seg.length, rule.strategy.c_str(),
                        to_hex(byte_view{messages[seg.message_index]}.subspan(seg.offset,
                                                                              seg.length))
                            .c_str(),
                        to_hex(byte_view{mutated}.subspan(seg.offset, seg.length)).c_str());
            ++emitted;
        }

        // Learned value generation (paper Sec. V): sample plausible field
        // values from each cluster's per-position byte model — useful as
        // valid-looking fuzzing inputs that pass superficial parsers.
        const core::cluster_value_models models = core::learn_value_models(result);
        std::printf("\nmodel-generated plausible values per cluster:\n");
        for (std::size_t i = 0; i < models.models.size() && i < 6; ++i) {
            std::printf("  cluster %d:", models.cluster_ids[i]);
            for (int s = 0; s < 3; ++s) {
                std::printf(" %s", to_hex(models.models[i].sample(rand)).c_str());
            }
            std::printf("\n");
        }

        std::printf(
            "\nThe plan touches %zu of %zu clusters; constants and high-entropy\n"
            "fields are left intact, concentrating fuzzing effort where the\n"
            "protocol actually interprets values.\n",
            [&] {
                std::size_t n = 0;
                for (const auto& s : summaries) {
                    if (plan_for(s).strategy != "keep") {
                        ++n;
                    }
                }
                return n;
            }(),
            summaries.size());
        return 0;
    } catch (const error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
