/// \file fuzz_pcap_decap.cpp
/// Fuzz target for the lenient ingestion path: arbitrary bytes through
/// from_pcap_bytes and Ethernet/IPv4/UDP/TCP decapsulation.
///
/// Four input families per iteration, all derived from a seeded ftc::rng so
/// every run is reproducible:
///   1. pure random bytes (usually not even a pcap header),
///   2. a valid generated capture corrupted by ftc::testing::corrupter,
///   3. a valid capture truncated at a random byte,
///   4. a valid capture with random single-byte mutations anywhere
///      (including the global and record headers).
/// The invariant under test: lenient-mode ingestion never crashes, never
/// reads out of bounds (run under ASan/UBSan in CI), and only ever fails
/// by throwing ftc::parse_error for inputs whose global header is beyond
/// repair. Registered in ctest as a fixed-seed smoke run.
///
/// Usage: fuzz_pcap_decap [iterations] [seed]
#include <cstdio>
#include <cstdlib>

#include "pcap/decap.hpp"
#include "pcap/pcap.hpp"
#include "protocols/registry.hpp"
#include "testing/corrupter.hpp"
#include "util/rng.hpp"

namespace {

using namespace ftc;

/// One ingestion attempt; returns a label for the outcome tally.
const char* ingest(byte_view bytes) {
    diag::error_sink sink(diag::policy::lenient);
    try {
        const pcap::capture cap = pcap::from_pcap_bytes(bytes, sink);
        const auto datagrams = pcap::extract_datagrams(cap, {}, sink);
        (void)datagrams;
        return sink.quarantined() > 0 ? "quarantined" : "clean";
    } catch (const parse_error&) {
        return "rejected";  // unrecoverable global header
    }
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t iterations =
        argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 400;
    const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 7;

    try {
        rng rand(seed);
        // Two base captures: UDP/Ethernet (DNS) and TCP/NBSS (SMB) so both
        // decapsulation paths are exercised.
        const byte_vector dns_bytes = pcap::to_pcap_bytes(
            protocols::trace_to_capture(protocols::generate_trace("DNS", 40, 5)));
        const byte_vector smb_bytes = pcap::to_pcap_bytes(
            protocols::trace_to_capture(protocols::generate_trace("SMB", 25, 5)));

        std::size_t clean = 0;
        std::size_t quarantined = 0;
        std::size_t rejected = 0;
        for (std::size_t i = 0; i < iterations; ++i) {
            const byte_vector& base = rand.chance(0.5) ? dns_bytes : smb_bytes;
            byte_vector input;
            switch (rand.uniform(0, 3)) {
                case 0:
                    input = rand.bytes(rand.uniform(0, 600));
                    break;
                case 1: {
                    testing::corruption_options opt;
                    opt.fault_fraction = rand.uniform_real(0.05, 0.6);
                    opt.seed = rand();
                    input = testing::corrupt_pcap_bytes(base, opt);
                    break;
                }
                case 2:
                    input = base;
                    input.resize(rand.uniform(0, input.size()));
                    break;
                default: {
                    input = base;
                    const std::size_t mutations = rand.uniform(1, 24);
                    for (std::size_t m = 0; m < mutations && !input.empty(); ++m) {
                        input[rand.uniform(0, input.size() - 1)] = rand.byte();
                    }
                    break;
                }
            }
            const char* outcome = ingest(input);
            if (outcome[0] == 'c') {
                ++clean;
            } else if (outcome[0] == 'q') {
                ++quarantined;
            } else {
                ++rejected;
            }
        }
        std::printf("fuzz_pcap_decap: %zu iterations, %zu clean, %zu quarantined, "
                    "%zu rejected, 0 crashes\n",
                    iterations, clean, quarantined, rejected);
        return 0;
    } catch (const error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
