/// \file quickstart.cpp
/// The 60-second tour of ftclust: synthesize a trace of a binary protocol,
/// write/read it through a real pcap file, run the full field-type
/// clustering pipeline, and print the pseudo data type report an analyst
/// would start from.
///
/// Usage: quickstart [protocol] [messages]
///   protocol: NTP (default), DNS, NBNS, DHCP, SMB, AWDL, AU
///   messages: trace size (default 200)
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/metrics.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "pcap/pcap.hpp"
#include "protocols/registry.hpp"
#include "segmentation/segment.hpp"

int main(int argc, char** argv) {
    using namespace ftc;
    const std::string protocol = argc > 1 ? argv[1] : "NTP";
    const std::size_t count = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 200;

    try {
        // 1. Record a trace. Here we synthesize one; with real traffic you
        //    would start from a capture file directly.
        std::printf("== generating %zu unique %s messages\n", count, protocol.c_str());
        const protocols::trace trace = protocols::generate_trace(protocol, count, 1);

        // 2. Round-trip through a pcap file, exactly as an analyst would
        //    load recorded traffic.
        const auto path =
            std::filesystem::temp_directory_path() / ("ftclust_quickstart.pcap");
        pcap::write_file(path, protocols::trace_to_capture(trace));
        const pcap::capture capture = pcap::read_file(path);
        std::filesystem::remove(path);
        std::printf("== wrote and re-read %zu packets via %s\n", capture.packets.size(),
                    path.c_str());

        // 3. Extract application messages and recover ground truth from the
        //    wire bytes (stand-in for Wireshark dissectors).
        const protocols::trace truth =
            protocols::trace_from_payloads(protocol, protocols::capture_payloads(capture));

        // 4. Segment the messages. The quickstart uses perfect ground-truth
        //    segmentation; see compare_segmenters for the heuristic ones.
        const auto messages = segmentation::message_bytes(truth);
        segmentation::message_segments segments =
            segmentation::segments_from_annotations(truth);

        // 5. Cluster segments into pseudo data types: Canberra
        //    dissimilarity -> epsilon auto-configuration -> DBSCAN ->
        //    refinement. Everything is automatic; no parameters needed.
        const core::pipeline_result result =
            core::analyze_segments(messages, std::move(segments), {});
        std::printf("== clustered %zu unique segments into %zu pseudo data types "
                    "(eps %.3f, %.1fs)\n",
                    result.unique.size(), result.final_labels.cluster_count,
                    result.clustering.config.epsilon, result.elapsed_seconds);

        // 6. Print the analyst-facing report.
        std::printf("\n%s", core::render_report(core::summarize_clusters(result)).c_str());

        // 7. Because this trace has ground truth, score the clustering.
        const core::typed_segments typed = core::assign_types(truth, result.unique);
        const core::clustering_quality q =
            core::evaluate_clustering(result.final_labels, typed, truth.total_bytes());
        std::printf("\nagainst ground truth: precision %.2f, recall %.2f, F1/4 %.2f, "
                    "coverage %.0f%%\n",
                    q.precision, q.recall, q.f_score, 100 * q.coverage);
        return 0;
    } catch (const error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
