/// \file compare_segmenters.cpp
/// Side-by-side comparison of the three heuristic segmenters (Netzob-style
/// alignment, NEMESYS, CSP) on one protocol trace — the paper's Sec. IV-C
/// question: which segmenter suits which protocol?
///
/// Shows, per segmenter: segment statistics, boundary agreement with the
/// true fields, clustering quality on top of the segmentation, and an
/// annotated example message.
///
/// Usage: compare_segmenters [protocol] [messages]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/metrics.hpp"
#include "core/pipeline.hpp"
#include "protocols/registry.hpp"
#include "segmentation/segment.hpp"
#include "util/hex.hpp"
#include "util/table.hpp"

namespace {

using namespace ftc;

/// Render one message with '|' at segment boundaries.
std::string render_boundaries(const byte_vector& msg,
                              const std::vector<segmentation::segment>& segs) {
    std::string out;
    for (const segmentation::segment& s : segs) {
        if (s.offset > 0) {
            out += '|';
        }
        out += to_hex(byte_view{msg}.subspan(s.offset, std::min<std::size_t>(s.length, 24)));
        if (s.length > 24) {
            out += "..";
        }
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string protocol = argc > 1 ? argv[1] : "NTP";
    const std::size_t count = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 100;

    try {
        const protocols::trace truth = protocols::generate_trace(protocol, count, 5);
        const auto messages = segmentation::message_bytes(truth);
        std::printf("comparing segmenters on %s (%zu messages)\n\n", protocol.c_str(), count);

        // True boundaries for agreement statistics.
        std::vector<std::vector<std::size_t>> true_bounds(messages.size());
        for (std::size_t m = 0; m < truth.messages.size(); ++m) {
            for (const protocols::field_annotation& f : truth.messages[m].fields) {
                if (f.offset > 0) {
                    true_bounds[m].push_back(f.offset);
                }
            }
        }

        text_table table({"segmenter", "segs/msg", "bound. precision", "bound. recall", "P",
                          "R", "F1/4", "cov.", "time"});
        table.set_align(0, align::left);

        for (const char* name : {"Netzob", "NEMESYS", "CSP"}) {
            const auto segmenter = segmentation::make_segmenter(name);
            segmentation::message_segments segs;
            try {
                segs = segmenter->run(messages, deadline(120.0));
            } catch (const budget_exceeded_error&) {
                table.add_row({name, "-", "-", "-", "-", "-", "fails", "-", "-"});
                continue;
            }

            // Boundary agreement.
            std::size_t inferred = 0;
            std::size_t matched = 0;
            std::size_t truth_total = 0;
            for (std::size_t m = 0; m < messages.size(); ++m) {
                truth_total += true_bounds[m].size();
                for (const segmentation::segment& s : segs[m]) {
                    if (s.offset == 0) {
                        continue;
                    }
                    ++inferred;
                    if (std::find(true_bounds[m].begin(), true_bounds[m].end(), s.offset) !=
                        true_bounds[m].end()) {
                        ++matched;
                    }
                }
            }
            std::size_t total_segments = 0;
            for (const auto& per_message : segs) {
                total_segments += per_message.size();
            }

            // Clustering quality on this segmentation.
            core::pipeline_options opt;
            opt.budget_seconds = 120.0;
            const core::pipeline_result r =
                core::analyze_segments(messages, std::move(segs), opt);
            const core::typed_segments typed = core::assign_types(truth, r.unique);
            const core::clustering_quality q =
                core::evaluate_clustering(r.final_labels, typed, truth.total_bytes());

            table.add_row(
                {name,
                 format_fixed(static_cast<double>(total_segments) /
                                  static_cast<double>(messages.size()),
                              1),
                 inferred > 0 ? format_fixed(static_cast<double>(matched) /
                                                 static_cast<double>(inferred),
                                             2)
                              : "-",
                 truth_total > 0 ? format_fixed(static_cast<double>(matched) /
                                                    static_cast<double>(truth_total),
                                                2)
                                 : "-",
                 format_fixed(q.precision, 2), format_fixed(q.recall, 2),
                 format_fixed(q.f_score, 2), format_percent(q.coverage),
                 format_fixed(r.elapsed_seconds, 1) + "s"});
        }
        std::fputs(table.render().c_str(), stdout);

        // Annotated example: the first message under each segmenter.
        std::printf("\nexample segmentations of message 0 ('|' = inferred boundary):\n");
        std::printf("  %-8s %s\n", "true", render_boundaries(messages[0], [&] {
                        return segmentation::segments_from_annotations(truth)[0];
                    }()).c_str());
        for (const char* name : {"Netzob", "NEMESYS", "CSP"}) {
            try {
                const auto segmenter = segmentation::make_segmenter(name);
                const auto segs = segmenter->run(messages, deadline(120.0));
                std::printf("  %-8s %s\n", name,
                            render_boundaries(messages[0], segs[0]).c_str());
            } catch (const budget_exceeded_error&) {
                std::printf("  %-8s (fails)\n", name);
            }
        }
        return 0;
    } catch (const error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
