/// \file unknown_protocol.cpp
/// Reverse engineering an *unknown* protocol: the scenario the paper is
/// built for. We treat AWDL — a proprietary link-layer protocol without IP
/// encapsulation — as a black box: no dissector, no ground truth, no flow
/// context. The pipeline segments the frames heuristically (NEMESYS),
/// clusters the segments into pseudo data types, and the example then walks
/// the clusters like an analyst would: looking at value domains, shared
/// prefixes and kind hints to form hypotheses about field semantics.
///
/// Usage: unknown_protocol [messages]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/semantics.hpp"
#include "protocols/registry.hpp"
#include "segmentation/nemesys.hpp"
#include "util/hex.hpp"

int main(int argc, char** argv) {
    using namespace ftc;
    const std::size_t count = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 300;

    try {
        // The "capture": AWDL action frames. In a real engagement this is a
        // monitor-mode capture; the analysis below uses nothing but the
        // frame bytes.
        const protocols::trace capture = protocols::generate_trace("AWDL", count, 7);
        std::vector<byte_vector> frames = segmentation::message_bytes(capture);
        std::printf("captured %zu frames of an unknown protocol (%zu bytes total)\n\n",
                    frames.size(), capture.total_bytes());

        // Step 1: heuristic segmentation — no specification available.
        const segmentation::nemesys_segmenter segmenter;
        // Step 2+3: dissimilarity, auto-configured DBSCAN, refinement.
        const core::pipeline_result result = core::analyze(frames, segmenter, {});

        std::printf("NEMESYS produced %zu unique field candidates; clustering found %zu "
                    "pseudo data types (%zu values are noise)\n\n",
                    result.unique.size(), result.final_labels.cluster_count,
                    result.final_labels.noise_count());

        // Step 4: the analyst's walk over the clusters.
        auto summaries = core::summarize_clusters(result);
        std::sort(summaries.begin(), summaries.end(),
                  [](const core::cluster_summary& a, const core::cluster_summary& b) {
                      return a.occurrences > b.occurrences;
                  });
        std::printf("%s\n", core::render_report(summaries).c_str());

        std::printf("analyst hypotheses derived from the clusters:\n");
        for (const core::cluster_summary& s : summaries) {
            std::string hypothesis;
            const std::string kind = s.kind_hint();
            if (kind == "chars") {
                hypothesis = "text field - likely a name or service string";
            } else if (kind == "constant") {
                hypothesis = "protocol constant - magic value or fixed header field";
            } else if (kind == "high-entropy") {
                hypothesis = "random content - nonce, key material or checksum";
            } else if (s.numeric_valid && s.common_prefix >= s.min_length / 2) {
                hypothesis = "counter/timestamp-like - shared high bytes, varying low bytes";
            } else if (kind.rfind("numeric", 0) == 0) {
                hypothesis = "numeric field - length, metric or identifier";
            } else {
                hypothesis = "opaque structure - needs follow-up analysis";
            }
            std::printf("  cluster %d (%zux, %s): %s\n", s.cluster_id, s.occurrences,
                        kind.c_str(), hypothesis.c_str());
        }

        // Step 5: deduce field semantics from occurrence patterns (length
        // fields, counters, constants, echoed values).
        std::printf("\ndeduced semantics:\n%s",
                    core::render_semantics(core::deduce_semantics(frames, result)).c_str());

        std::printf(
            "\nNote: AWDL has no IP encapsulation, so context-based approaches\n"
            "(FieldHunter's Host-ID/Session-ID/Trans-ID rules) cannot run at all\n"
            "here - clustering by value similarity is what remains applicable.\n");
        return 0;
    } catch (const error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
