/// \file fuzz_ckpt_load.cpp
/// Fuzz target for checkpoint loading: arbitrary bytes through the ckpt
/// wire-format decoders and checkpoint_manager::load.
///
/// Four input families per iteration, all derived from a seeded ftc::rng so
/// every run is reproducible:
///   1. pure random bytes (usually not even the FTCKPT01 magic),
///   2. a valid checkpoint file with random bit flips
///      (ftc::testing::flip_random_bits — the per-section digests must
///      catch every one of them),
///   3. a valid checkpoint file truncated at a random byte,
///   4. a valid checkpoint file with random single-byte mutations anywhere
///      (including the magic, version and section headers).
/// The invariant under test: a checkpoint load never crashes, never reads
/// out of bounds (run under ASan/UBSan in CI) and never allocates from a
/// forged section count — damaged input is only ever *rejected*, by
/// throwing ftc::parse_error from the decoders or by lenient quarantine
/// through checkpoint_manager::load. Registered in ctest as a fixed-seed
/// smoke run.
///
/// Usage: fuzz_ckpt_load [iterations] [seed]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "ckpt/manager.hpp"
#include "core/pipeline.hpp"
#include "protocols/registry.hpp"
#include "testing/corrupter.hpp"
#include "util/rng.hpp"

namespace {

using namespace ftc;
namespace fs = std::filesystem;

/// Feed \p bytes straight into the section container and payload decoders.
/// Returns a label for the outcome tally.
const char* decode(byte_view bytes) {
    try {
        const std::vector<ckpt::section> sections = ckpt::decode_sections(bytes);
        // A container that survived its digests still carries payloads of
        // every kind; each payload decoder must hold the same no-crash
        // invariant on its own.
        for (const ckpt::section& s : sections) {
            try {
                switch (static_cast<ckpt::section_id>(s.id)) {
                    case ckpt::section_id::fingerprint:
                        (void)ckpt::decode_fingerprint(byte_view{s.payload});
                        break;
                    case ckpt::section_id::segments:
                        (void)ckpt::decode_segments(byte_view{s.payload});
                        break;
                    case ckpt::section_id::unique:
                        (void)ckpt::decode_unique(byte_view{s.payload});
                        break;
                    case ckpt::section_id::matrix:
                        (void)ckpt::decode_matrix(byte_view{s.payload});
                        break;
                    case ckpt::section_id::knn:
                        (void)ckpt::decode_knn(byte_view{s.payload});
                        break;
                    case ckpt::section_id::clustering:
                        (void)ckpt::decode_clustering(byte_view{s.payload});
                        break;
                    default:
                        break;  // unknown section ids are a loader concern
                }
            } catch (const parse_error&) {
                return "payload-rejected";
            }
        }
        return "decoded";
    } catch (const parse_error&) {
        return "rejected";
    }
}

/// Plant \p bytes as \p filename inside \p dir and run a full lenient
/// checkpoint_manager::load against it.
const char* load_planted(const fs::path& dir, const char* filename, byte_view bytes,
                         const ckpt::options_fingerprint& fp,
                         const std::vector<byte_vector>& messages) {
    fs::remove_all(dir);
    fs::create_directories(dir);
    {
        std::ofstream out(dir / filename, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
    }
    ckpt::checkpoint_manager manager(dir, fp);
    diag::error_sink sink(diag::policy::lenient);
    const ckpt::restored_state restored = manager.load(messages, sink);
    if (sink.quarantined() > 0) {
        return "quarantined";
    }
    return restored.stages.empty() ? "ignored" : "restored";
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t iterations =
        argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 300;
    const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 7;

    try {
        rng rand(seed);

        // One real checkpoint as the mutation corpus: every file kind, with
        // payloads a genuine pipeline run produced.
        const protocols::trace t = protocols::generate_trace("DNS", 40, 5);
        const std::vector<byte_vector> messages = segmentation::message_bytes(t);
        const segmentation::message_segments segments =
            segmentation::segments_from_annotations(t);
        const core::pipeline_options options;
        const ckpt::options_fingerprint fp = ckpt::fingerprint(options, "true", 5);
        const fs::path base_dir = fs::temp_directory_path() / "ftc_fuzz_ckpt_base";
        fs::remove_all(base_dir);
        {
            ckpt::checkpoint_manager manager(base_dir, fp);
            manager.on_segments(messages, segments);
            core::pipeline_options opt = options;
            opt.observer = &manager;
            core::pipeline_seed pseed;
            pseed.segments = segments;
            (void)core::analyze_seeded(messages, nullptr, std::move(pseed), opt);
            manager.mark_complete();
        }
        const char* kFiles[] = {ckpt::checkpoint_manager::kSegmentsFile,
                                ckpt::checkpoint_manager::kMatrixFile,
                                ckpt::checkpoint_manager::kClusteringFile};
        byte_vector base[3];
        for (int f = 0; f < 3; ++f) {
            std::ifstream in(base_dir / kFiles[f], std::ios::binary);
            base[f].assign(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
        }
        const fs::path fuzz_dir = fs::temp_directory_path() / "ftc_fuzz_ckpt_load";

        std::size_t decoded = 0;
        std::size_t rejected = 0;
        std::size_t restored = 0;
        std::size_t quarantined = 0;
        for (std::size_t i = 0; i < iterations; ++i) {
            const std::size_t f = rand.uniform(0, 2);
            byte_vector input;
            switch (rand.uniform(0, 3)) {
                case 0:
                    input = rand.bytes(rand.uniform(0, 600));
                    break;
                case 1:
                    input = testing::flip_random_bits(byte_view{base[f]},
                                                      rand.uniform(1, 32), rand());
                    break;
                case 2:
                    input = base[f];
                    input.resize(rand.uniform(0, input.size()));
                    break;
                default: {
                    input = base[f];
                    const std::size_t mutations = rand.uniform(1, 24);
                    for (std::size_t m = 0; m < mutations && !input.empty(); ++m) {
                        input[rand.uniform(0, input.size() - 1)] = rand.byte();
                    }
                    break;
                }
            }

            const char* outcome = decode(byte_view{input});
            if (outcome[0] == 'd') {
                ++decoded;
            } else {
                ++rejected;
            }
            outcome = load_planted(fuzz_dir, kFiles[f], byte_view{input}, fp, messages);
            if (outcome[0] == 'q') {
                ++quarantined;
            } else if (outcome[0] == 'r') {
                ++restored;
            }
        }
        fs::remove_all(base_dir);
        fs::remove_all(fuzz_dir);
        std::printf("fuzz_ckpt_load: %zu iterations, %zu decoded, %zu rejected, "
                    "%zu restored, %zu quarantined, 0 crashes\n",
                    iterations, decoded, rejected, restored, quarantined);
        return 0;
    } catch (const error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
