#include "ckpt/format.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "mem/mem.hpp"
#include "obs/export.hpp"
#include "util/check.hpp"

namespace ftc::ckpt {

namespace {

constexpr std::size_t kHeaderSize = 8 + 4 + 4;        // magic + version + count
constexpr std::size_t kSectionHeaderSize = 4 + 8 + 8;  // id + size + digest

void put_f64(byte_vector& out, double v) {
    put_u64_le(out, std::bit_cast<std::uint64_t>(v));
}

void put_f32(byte_vector& out, float v) {
    put_u32_le(out, std::bit_cast<std::uint32_t>(v));
}

/// Cursor over a payload with overflow-safe bounds checks: every read
/// validates against the bytes actually present, so a forged count can at
/// worst raise parse_error, never index out of bounds or balloon memory
/// (allocations are bounded by the payload size that backs them).
class reader {
public:
    explicit reader(byte_view data) : data_(data) {}

    std::uint8_t u8() { return get_u8(data_, take(1)); }
    std::uint32_t u32() { return get_u32_le(data_, take(4)); }
    std::uint64_t u64() { return get_u64_le(data_, take(8)); }
    double f64() { return std::bit_cast<double>(u64()); }
    float f32() { return std::bit_cast<float>(u32()); }

    byte_view bytes(std::size_t n) { return get_slice(data_, take(n), n); }

    /// A count of elements each at least \p elem_size bytes on the wire;
    /// rejects counts the remaining payload cannot possibly hold *before*
    /// any allocation sized by them.
    std::size_t count(std::size_t elem_size) {
        const std::uint64_t n = u64();
        if (elem_size == 0 || n > remaining() / elem_size) {
            throw parse_error(message("ckpt: element count ", n, " exceeds remaining payload ",
                                      remaining(), " bytes"));
        }
        return static_cast<std::size_t>(n);
    }

    std::size_t remaining() const { return data_.size() - offset_; }

    void expect_end() const {
        if (offset_ != data_.size()) {
            throw parse_error(message("ckpt: ", remaining(), " trailing bytes in section"));
        }
    }

private:
    std::size_t take(std::size_t n) {
        if (n > remaining()) {
            throw parse_error(message("ckpt: truncated section (need ", n, " bytes at offset ",
                                      offset_, ", have ", remaining(), ")"));
        }
        const std::size_t at = offset_;
        offset_ += n;
        return at;
    }

    byte_view data_;
    std::size_t offset_ = 0;
};

}  // namespace

options_fingerprint fingerprint(const core::pipeline_options& options,
                                std::string_view segmenter_name,
                                std::uint64_t input_digest) {
    // Canonical serialization of every knob that shapes stage outputs.
    // Appending new knobs to the END keeps old checkpoints rejectable (the
    // digest changes) rather than silently misinterpreted.
    byte_vector canon;
    put_chars(canon, "ftclust-options-v1");
    put_u64_le(canon, options.min_segment_length);
    put_u64_le(canon, std::bit_cast<std::uint64_t>(options.autoconf.kneedle_sensitivity));
    put_u64_le(canon, std::bit_cast<std::uint64_t>(options.autoconf.smoothing_lambda));
    put_u64_le(canon, std::bit_cast<std::uint64_t>(options.autoconf.fallback_epsilon));
    put_u64_le(canon, std::bit_cast<std::uint64_t>(options.refine.eps_rho_threshold));
    put_u64_le(canon, std::bit_cast<std::uint64_t>(options.refine.neighbor_density_threshold));
    put_u64_le(canon, std::bit_cast<std::uint64_t>(options.refine.percent_rank_threshold));
    put_u64_le(canon, std::bit_cast<std::uint64_t>(options.refine.max_merged_fraction));
    put_u8(canon, options.apply_refinement ? 1 : 0);
    put_u64_le(canon, std::bit_cast<std::uint64_t>(options.oversize_fraction));
    put_chars(canon, segmenter_name);
    return {obs::fnv1a64(canon.data(), canon.size()), input_digest};
}

byte_vector encode_sections(const std::vector<section>& sections) {
    byte_vector out;
    for (char c : kMagic) {
        put_u8(out, static_cast<std::uint8_t>(c));
    }
    put_u32_le(out, kFormatVersion);
    put_u32_le(out, static_cast<std::uint32_t>(sections.size()));
    for (const section& s : sections) {
        put_u32_le(out, s.id);
        put_u64_le(out, s.payload.size());
        put_u64_le(out, obs::fnv1a64(s.payload.data(), s.payload.size()));
        put_bytes(out, s.payload);
    }
    return out;
}

std::vector<section> decode_sections(byte_view file) {
    if (file.size() < kHeaderSize) {
        throw parse_error("ckpt: file shorter than header");
    }
    if (std::memcmp(file.data(), kMagic, sizeof kMagic) != 0) {
        throw parse_error("ckpt: bad magic (not a ftclust checkpoint)");
    }
    const std::uint32_t version = get_u32_le(file, 8);
    if (version != kFormatVersion) {
        throw parse_error(message("ckpt: unsupported format version ", version, " (expected ",
                                  kFormatVersion, ")"));
    }
    const std::uint32_t count = get_u32_le(file, 12);
    std::vector<section> out;
    std::size_t offset = kHeaderSize;
    for (std::uint32_t i = 0; i < count; ++i) {
        if (file.size() - offset < kSectionHeaderSize) {
            throw parse_error(message("ckpt: truncated section header ", i));
        }
        section s;
        s.id = get_u32_le(file, offset);
        const std::uint64_t size = get_u64_le(file, offset + 4);
        const std::uint64_t digest = get_u64_le(file, offset + 12);
        offset += kSectionHeaderSize;
        if (size > file.size() - offset) {
            throw parse_error(
                message("ckpt: section ", i, " claims ", size, " payload bytes, file has ",
                        file.size() - offset, " left"));
        }
        const byte_view payload = file.subspan(offset, static_cast<std::size_t>(size));
        offset += static_cast<std::size_t>(size);
        if (obs::fnv1a64(payload.data(), payload.size()) != digest) {
            throw parse_error(message("ckpt: section ", i, " (id ", s.id,
                                      ") digest mismatch — file damaged"));
        }
        s.payload.assign(payload.begin(), payload.end());
        out.push_back(std::move(s));
    }
    if (offset != file.size()) {
        throw parse_error(message("ckpt: ", file.size() - offset, " trailing bytes after last "
                                  "section"));
    }
    return out;
}

// ---------------------------------------------------------------------------
// fingerprint
// ---------------------------------------------------------------------------

byte_vector encode_fingerprint(const options_fingerprint& fp) {
    byte_vector out;
    put_u64_le(out, fp.options_digest);
    put_u64_le(out, fp.input_digest);
    return out;
}

options_fingerprint decode_fingerprint(byte_view payload) {
    reader r(payload);
    options_fingerprint fp;
    fp.options_digest = r.u64();
    fp.input_digest = r.u64();
    r.expect_end();
    return fp;
}

// ---------------------------------------------------------------------------
// segments
// ---------------------------------------------------------------------------

namespace {

void put_segment(byte_vector& out, const segmentation::segment& seg) {
    put_u64_le(out, seg.message_index);
    put_u64_le(out, seg.offset);
    put_u64_le(out, seg.length);
}

segmentation::segment read_segment(reader& r) {
    segmentation::segment seg;
    seg.message_index = static_cast<std::size_t>(r.u64());
    seg.offset = static_cast<std::size_t>(r.u64());
    seg.length = static_cast<std::size_t>(r.u64());
    return seg;
}

}  // namespace

byte_vector encode_segments(const segments_payload& p) {
    byte_vector out;
    put_u64_le(out, p.surviving.size());
    for (std::size_t idx : p.surviving) {
        put_u64_le(out, idx);
    }
    put_u64_le(out, p.segments.size());
    for (const std::vector<segmentation::segment>& per_message : p.segments) {
        put_u64_le(out, per_message.size());
        for (const segmentation::segment& seg : per_message) {
            put_segment(out, seg);
        }
    }
    return out;
}

segments_payload decode_segments(byte_view payload) {
    reader r(payload);
    segments_payload p;
    const std::size_t survivors = r.count(8);
    p.surviving.reserve(survivors);
    for (std::size_t i = 0; i < survivors; ++i) {
        p.surviving.push_back(static_cast<std::size_t>(r.u64()));
    }
    const std::size_t messages = r.count(8);
    p.segments.reserve(messages);
    for (std::size_t m = 0; m < messages; ++m) {
        const std::size_t segs = r.count(24);
        std::vector<segmentation::segment> per_message;
        per_message.reserve(segs);
        for (std::size_t s = 0; s < segs; ++s) {
            per_message.push_back(read_segment(r));
        }
        p.segments.push_back(std::move(per_message));
    }
    r.expect_end();
    if (p.segments.size() != p.surviving.size()) {
        throw parse_error(message("ckpt: segments for ", p.segments.size(),
                                  " messages but ", p.surviving.size(), " surviving indices"));
    }
    return p;
}

// ---------------------------------------------------------------------------
// unique
// ---------------------------------------------------------------------------

byte_vector encode_unique(const dissim::unique_segments& unique) {
    byte_vector out;
    // Leading form byte (v2): 0 = full occurrence lists, 1 = the weighted
    // (memory-degraded) form carrying only per-value multiplicities. The
    // degraded form must round-trip as degraded — resuming it as "full with
    // empty occurrences" would silently break every position consumer.
    put_u8(out, unique.occurrences_elided ? 1 : 0);
    put_u64_le(out, unique.values.size());
    for (const byte_vector& v : unique.values) {
        put_u64_le(out, v.size());
        put_bytes(out, v);
    }
    if (unique.occurrences_elided) {
        for (const std::uint32_t m : unique.multiplicities) {
            put_u32_le(out, m);
        }
    } else {
        for (const std::vector<segmentation::segment>& occs : unique.occurrences) {
            put_u64_le(out, occs.size());
            for (const segmentation::segment& seg : occs) {
                put_segment(out, seg);
            }
        }
    }
    put_u64_le(out, unique.short_segments);
    return out;
}

dissim::unique_segments decode_unique(byte_view payload) {
    reader r(payload);
    dissim::unique_segments unique;
    const std::uint8_t form = r.u8();
    if (form > 1) {
        throw parse_error(message("ckpt: unknown unique-segment form ", form));
    }
    unique.occurrences_elided = form == 1;
    const std::size_t n = r.count(8);
    unique.values.reserve(n);
    std::uint64_t value_bytes = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t len = r.count(1);
        const byte_view bytes = r.bytes(len);
        unique.values.emplace_back(bytes.begin(), bytes.end());
        value_bytes += len;
    }
    std::uint64_t occ_bytes = 0;
    if (unique.occurrences_elided) {
        unique.multiplicities.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t m = r.u32();
            if (m == 0) {
                throw parse_error("ckpt: unique value with zero multiplicity");
            }
            unique.multiplicities.push_back(m);
        }
        occ_bytes = static_cast<std::uint64_t>(n) * sizeof(std::uint32_t);
    } else {
        unique.occurrences.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t occs = r.count(24);
            if (occs == 0) {
                throw parse_error("ckpt: unique value without occurrences");
            }
            std::vector<segmentation::segment> per_value;
            per_value.reserve(occs);
            for (std::size_t s = 0; s < occs; ++s) {
                per_value.push_back(read_segment(r));
                occ_bytes += sizeof(segmentation::segment);
            }
            unique.occurrences.push_back(std::move(per_value));
        }
    }
    unique.short_segments = static_cast<std::size_t>(r.u64());
    r.expect_end();
    // A restored snapshot occupies the same storage a computed one would;
    // charge it so a resumed run's memory accounting matches a fresh run's.
    unique.footprint = mem::charge(value_bytes + occ_bytes, "ckpt.unique");
    return unique;
}

// ---------------------------------------------------------------------------
// matrix
// ---------------------------------------------------------------------------

byte_vector encode_matrix(const dissim::dissimilarity_matrix& matrix) {
    byte_vector out;
    put_u64_le(out, matrix.size());
    for (float d : matrix.upper_triangle_f32()) {
        put_f32(out, d);
    }
    return out;
}

dissim::dissimilarity_matrix decode_matrix(byte_view payload) {
    reader r(payload);
    const std::uint64_t n = r.u64();
    // n*(n-1)/2 f32 entries must follow exactly; checking against the
    // remaining bytes first keeps a forged n from driving an n*n alloc.
    if (n < 3 || n > (1u << 24) || n * (n - 1) / 2 > r.remaining() / 4) {
        throw parse_error(message("ckpt: implausible matrix size ", n));
    }
    const std::size_t pairs = static_cast<std::size_t>(n * (n - 1) / 2);
    std::vector<float> upper;
    upper.reserve(pairs);
    for (std::size_t i = 0; i < pairs; ++i) {
        const float d = r.f32();
        if (!(d >= 0.0f && d <= 1.0f)) {  // NaN fails both comparisons
            throw parse_error(message("ckpt: matrix entry ", i, " outside [0, 1]"));
        }
        upper.push_back(d);
    }
    r.expect_end();
    // Restore into whichever layout the active memory governor can afford:
    // the cell values are identical either way (layout is a footprint knob,
    // dissim/matrix.hpp), so this only decides whether the resume that
    // needed --max-memory the first time still fits the second time.
    const dissim::layout storage =
        mem::would_exceed(n * n * sizeof(float)) ? dissim::layout::triangular
                                                 : dissim::layout::dense;
    return dissim::dissimilarity_matrix::from_upper(upper, static_cast<std::size_t>(n),
                                                    storage);
}

// ---------------------------------------------------------------------------
// matrix tiles (spilled triangular builds)
// ---------------------------------------------------------------------------

byte_vector encode_matrix_tile(const matrix_tile_payload& tile) {
    byte_vector out;
    put_u64_le(out, tile.row_begin);
    put_u64_le(out, tile.row_end);
    put_u64_le(out, tile.n);
    put_u64_le(out, tile.cells.size());
    for (const float d : tile.cells) {
        put_f32(out, d);
    }
    return out;
}

matrix_tile_payload decode_matrix_tile(byte_view payload) {
    reader r(payload);
    matrix_tile_payload tile;
    tile.row_begin = r.u64();
    tile.row_end = r.u64();
    tile.n = r.u64();
    if (tile.n < 3 || tile.n > (1u << 24) || tile.row_begin >= tile.row_end ||
        tile.row_end > tile.n) {
        throw parse_error(message("ckpt: implausible tile rows [", tile.row_begin, ", ",
                                  tile.row_end, ") of ", tile.n));
    }
    // Row r of the upper triangle holds n-1-r cells; the count must match
    // the row range exactly, or the reassembled triangle would shear.
    std::uint64_t expected = 0;
    for (std::uint64_t row = tile.row_begin; row < tile.row_end; ++row) {
        expected += tile.n - 1 - row;
    }
    const std::size_t cells = r.count(4);
    if (cells != expected) {
        throw parse_error(message("ckpt: tile holds ", cells, " cells, rows [",
                                  tile.row_begin, ", ", tile.row_end, ") need ", expected));
    }
    tile.cells.reserve(cells);
    for (std::size_t i = 0; i < cells; ++i) {
        const float d = r.f32();
        if (!(d >= 0.0f && d <= 1.0f)) {
            throw parse_error(message("ckpt: tile cell ", i, " outside [0, 1]"));
        }
        tile.cells.push_back(d);
    }
    r.expect_end();
    return tile;
}

byte_vector encode_matrix_tiled(const matrix_tiled_marker& marker) {
    byte_vector out;
    put_u64_le(out, marker.n);
    put_u64_le(out, marker.tile_count);
    return out;
}

matrix_tiled_marker decode_matrix_tiled(byte_view payload) {
    reader r(payload);
    matrix_tiled_marker marker;
    marker.n = r.u64();
    marker.tile_count = r.u64();
    r.expect_end();
    if (marker.n < 3 || marker.n > (1u << 24) || marker.tile_count == 0 ||
        marker.tile_count > marker.n) {
        throw parse_error(message("ckpt: implausible tiled-matrix marker (n ", marker.n,
                                  ", ", marker.tile_count, " tiles)"));
    }
    return marker;
}

// ---------------------------------------------------------------------------
// knn
// ---------------------------------------------------------------------------

byte_vector encode_knn(const std::vector<std::vector<double>>& curves) {
    byte_vector out;
    put_u64_le(out, curves.size());
    for (const std::vector<double>& curve : curves) {
        put_u64_le(out, curve.size());
        for (double d : curve) {
            put_f64(out, d);
        }
    }
    return out;
}

std::vector<std::vector<double>> decode_knn(byte_view payload) {
    reader r(payload);
    const std::size_t count = r.count(8);
    std::vector<std::vector<double>> curves;
    curves.reserve(count);
    for (std::size_t c = 0; c < count; ++c) {
        const std::size_t len = r.count(8);
        std::vector<double> curve;
        curve.reserve(len);
        for (std::size_t i = 0; i < len; ++i) {
            const double d = r.f64();
            if (!(d >= 0.0 && d <= 1.0)) {
                throw parse_error("ckpt: k-NN distance outside [0, 1]");
            }
            curve.push_back(d);
        }
        curves.push_back(std::move(curve));
    }
    r.expect_end();
    return curves;
}

// ---------------------------------------------------------------------------
// neighbors
// ---------------------------------------------------------------------------

byte_vector encode_neighbors(const dissim::capped_neighbors& neighbors) {
    byte_vector out;
    put_u64_le(out, neighbors.lists.size());
    put_u32_le(out, neighbors.cap);
    for (const std::vector<dissim::neighbor>& list : neighbors.lists) {
        put_u64_le(out, list.size());
        for (const dissim::neighbor& nb : list) {
            put_u32_le(out, nb.id);
            put_f32(out, nb.d);
        }
    }
    return out;
}

dissim::capped_neighbors decode_neighbors(byte_view payload) {
    reader r(payload);
    const std::size_t n = r.count(12);  // each point carries >= a u64 + u32
    dissim::capped_neighbors out;
    out.cap = r.u32();
    if (n >= 2 && out.cap < 1) {
        throw parse_error("ckpt: neighbor cap must be at least 1");
    }
    const std::size_t want = std::min<std::size_t>(out.cap, n >= 1 ? n - 1 : 0);
    out.lists.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t len = r.count(8);
        if (len != want) {
            throw parse_error("ckpt: neighbor list length does not match the cap");
        }
        std::vector<dissim::neighbor> list;
        list.reserve(len);
        for (std::size_t k = 0; k < len; ++k) {
            dissim::neighbor nb;
            nb.id = r.u32();
            nb.d = r.f32();
            if (nb.id >= n || nb.id == i) {
                throw parse_error("ckpt: neighbor id out of range");
            }
            if (!(nb.d >= 0.0f && nb.d <= 1.0f)) {
                throw parse_error("ckpt: neighbor distance outside [0, 1]");
            }
            if (k > 0 && (nb.d < list.back().d ||
                          (nb.d == list.back().d && nb.id <= list.back().id))) {
                throw parse_error("ckpt: neighbor list not ascending by (d, id)");
            }
            list.push_back(nb);
        }
        out.lists.push_back(std::move(list));
    }
    r.expect_end();
    return out;
}

// ---------------------------------------------------------------------------
// clustering
// ---------------------------------------------------------------------------

byte_vector encode_clustering(const cluster::auto_cluster_result& clustering) {
    byte_vector out;
    put_u64_le(out, clustering.labels.labels.size());
    for (int label : clustering.labels.labels) {
        put_u32_le(out, static_cast<std::uint32_t>(label));
    }
    put_u64_le(out, clustering.labels.cluster_count);
    put_f64(out, clustering.config.epsilon);
    put_u64_le(out, clustering.config.min_samples);
    put_u64_le(out, clustering.config.selected_k);
    put_u8(out, clustering.config.knee_found ? 1 : 0);
    put_u64_le(out, clustering.config.knees.size());
    for (double knee : clustering.config.knees) {
        put_f64(out, knee);
    }
    put_u64_le(out, clustering.reconfigurations);
    put_u8(out, clustering.reclustered ? 1 : 0);
    return out;
}

cluster::auto_cluster_result decode_clustering(byte_view payload) {
    reader r(payload);
    cluster::auto_cluster_result out;
    const std::size_t n = r.count(4);
    out.labels.labels.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        out.labels.labels.push_back(static_cast<int>(r.u32()));
    }
    out.labels.cluster_count = static_cast<std::size_t>(r.u64());
    if (out.labels.cluster_count > n) {
        throw parse_error("ckpt: cluster count exceeds label count");
    }
    // Labels index per-cluster arrays downstream (members(), refinement);
    // a label outside [0, cluster_count) or != kNoise would be an
    // out-of-bounds write waiting to happen.
    for (int label : out.labels.labels) {
        if (label != cluster::kNoise &&
            (label < 0 || static_cast<std::size_t>(label) >= out.labels.cluster_count)) {
            throw parse_error(message("ckpt: label ", label, " outside [0, ",
                                      out.labels.cluster_count, ")"));
        }
    }
    out.config.epsilon = r.f64();
    if (!(out.config.epsilon >= 0.0 && out.config.epsilon <= 1.0)) {
        throw parse_error("ckpt: epsilon outside [0, 1]");
    }
    out.config.min_samples = static_cast<std::size_t>(r.u64());
    out.config.selected_k = static_cast<std::size_t>(r.u64());
    out.config.knee_found = r.u8() != 0;
    const std::size_t knees = r.count(8);
    out.config.knees.reserve(knees);
    for (std::size_t i = 0; i < knees; ++i) {
        const double knee = r.f64();
        if (std::isnan(knee)) {
            throw parse_error("ckpt: NaN knee");
        }
        out.config.knees.push_back(knee);
    }
    out.reconfigurations = static_cast<std::size_t>(r.u64());
    out.reclustered = r.u8() != 0;
    r.expect_end();
    return out;
}

}  // namespace ftc::ckpt
