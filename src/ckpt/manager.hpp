/// \file manager.hpp
/// Crash-resilient checkpoint/resume for the analysis pipeline.
///
/// checkpoint_manager implements core::stage_observer: after each expensive
/// stage completes it persists that stage's output into its own file in the
/// checkpoint directory —
///
///   segments.ckpt    surviving-message indices + segmentation
///   matrix.ckpt      unique segments, dissimilarity matrix, k-NN curves
///   neighbors.ckpt   unique segments, capped neighbor lists (sparse mode)
///   clustering.ckpt  auto-configuration + DBSCAN outcome
///   manifest.json    status (in-progress | interrupted | complete) + stage
///
/// Every file is written atomically (ftc::util::atomic_write_file: tmp,
/// fsync, rename), so a crash — or a SIGKILL — at any instant leaves either
/// the previous complete snapshot or the new one, never a torn file.
///
/// load() validates each file independently against the current run's
/// fingerprint (options digest + input digest): a missing, damaged or
/// mismatched file is quarantined through ftc::diag::error_sink (category
/// checkpoint) and only that stage is recomputed; the surviving snapshots
/// still seed the run. Because every pipeline stage is bitwise
/// deterministic, mixing restored and recomputed stages yields output
/// identical to an uninterrupted run — across thread counts and kernel
/// backends (DESIGN.md §10).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/format.hpp"
#include "core/pipeline.hpp"
#include "util/diag.hpp"

namespace ftc::ckpt {

/// Stage snapshots restored from a checkpoint directory.
struct restored_state {
    /// Seed for core::analyze_seeded; restored stages present, rest empty.
    core::pipeline_seed seed;
    /// Surviving messages (reconstructed via the stored surviving indices)
    /// when segments were restored; empty otherwise.
    std::vector<byte_vector> messages;
    /// Original indices of `messages` (segments restored only).
    std::vector<std::size_t> surviving;
    /// Which stages were restored, pipeline order: any subset of
    /// "segmentation", "dissimilarity", "clustering".
    std::vector<std::string> stages;

    bool has_segments() const { return seed.segments.has_value(); }
};

/// Stage-boundary checkpointer; also the resume loader.
class checkpoint_manager final : public core::stage_observer {
public:
    /// Creates \p dir (and parents) if needed; throws ftc::error when the
    /// directory cannot be created or is not writable — a checkpointed run
    /// that cannot checkpoint should fail before doing hours of work.
    checkpoint_manager(std::filesystem::path dir, options_fingerprint fp);

    /// Surviving-message indices to record with the segmentation snapshot
    /// (lenient ingestion may drop messages; resume must know which). The
    /// identity mapping is assumed when never called.
    void set_surviving(std::vector<std::size_t> surviving);

    /// Restore whatever valid snapshots \p dir holds. \p all_messages is
    /// the full ingested message list (pre-quarantine); restored surviving
    /// indices are applied to it and the restored segmentation is validated
    /// against the reconstructed messages. Damaged/mismatched files are
    /// reported to \p sink (category checkpoint): lenient quarantines and
    /// recomputes, strict throws.
    restored_state load(const std::vector<byte_vector>& all_messages, diag::error_sink& sink);

    // stage_observer: persist each stage the moment it completes.
    void on_segments(const std::vector<byte_vector>& messages,
                     const segmentation::message_segments& segments) override;
    void on_matrix(const dissim::unique_segments& unique,
                   const dissim::dissimilarity_matrix& matrix,
                   const std::vector<std::vector<double>>& knn_curves) override;
    void on_neighbors(const dissim::unique_segments& unique,
                      const dissim::capped_neighbors& neighbors,
                      const std::vector<std::vector<double>>& knn_curves) override;
    void on_clustering(const cluster::auto_cluster_result& clustering) override;
    void on_interrupted(const char* stage) override;

    /// Memory-pressured triangular builds spill each completed tile into
    /// its own matrix_tile_<k>.ckpt the moment it is final — bounding both
    /// crash-lost work and the serialization buffer on_matrix would
    /// otherwise need for the whole triangle at once.
    bool wants_matrix_tiles() const override { return true; }
    void on_matrix_tile(std::size_t row_begin, std::size_t row_end, std::size_t n,
                        std::span<const float> cells) override;

    /// Name of the k-th spilled tile file within the checkpoint directory.
    static std::string tile_file(std::size_t k) {
        return "matrix_tile_" + std::to_string(k) + ".ckpt";
    }

    /// Mark the run finished (manifest status "complete").
    void mark_complete();

    const std::filesystem::path& dir() const { return dir_; }

    static constexpr const char* kSegmentsFile = "segments.ckpt";
    static constexpr const char* kMatrixFile = "matrix.ckpt";
    static constexpr const char* kNeighborsFile = "neighbors.ckpt";
    static constexpr const char* kClusteringFile = "clustering.ckpt";
    static constexpr const char* kManifestFile = "manifest.json";

private:
    void write_sections(const char* filename, std::vector<section> sections);
    void write_manifest(const char* status, const char* stage);
    dissim::dissimilarity_matrix load_tiled_matrix(const matrix_tiled_marker& marker);

    std::filesystem::path dir_;
    options_fingerprint fp_;
    std::vector<std::size_t> surviving_;
    std::string last_stage_ = "none";
    std::size_t tiles_spilled_ = 0;  ///< tiles written for the current matrix
};

}  // namespace ftc::ckpt
