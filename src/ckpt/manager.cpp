#include "ckpt/manager.hpp"

#include <fstream>
#include <optional>
#include <utility>

#include "mem/mem.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"

namespace ftc::ckpt {

namespace {

/// Read a whole checkpoint file; nullopt when it does not exist (a fresh
/// directory is not damage), throws ftc::error on I/O failure.
std::optional<byte_vector> read_file(const std::filesystem::path& path) {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
        return std::nullopt;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw ftc::error("ckpt: cannot open " + path.string());
    }
    byte_vector bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    if (in.bad()) {
        throw ftc::error("ckpt: cannot read " + path.string());
    }
    return bytes;
}

/// Decode one checkpoint file and verify its leading fingerprint section
/// against the current run. Returns the non-fingerprint sections.
std::vector<section> checked_sections(byte_view file, const options_fingerprint& expected) {
    std::vector<section> sections = decode_sections(file);
    if (sections.empty() ||
        sections.front().id != static_cast<std::uint32_t>(section_id::fingerprint)) {
        throw parse_error("ckpt: first section is not the fingerprint");
    }
    const options_fingerprint fp = decode_fingerprint(sections.front().payload);
    if (!(fp == expected)) {
        throw parse_error(
            "ckpt: fingerprint mismatch — checkpoint was written for different "
            "options or input; refusing to resume from it");
    }
    sections.erase(sections.begin());
    return sections;
}

const section* find_section(const std::vector<section>& sections, section_id id) {
    for (const section& s : sections) {
        if (s.id == static_cast<std::uint32_t>(id)) {
            return &s;
        }
    }
    return nullptr;
}

}  // namespace

checkpoint_manager::checkpoint_manager(std::filesystem::path dir, options_fingerprint fp)
    : dir_(std::move(dir)), fp_(fp) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        throw ftc::error("ckpt: cannot create checkpoint directory " + dir_.string() + ": " +
                         ec.message());
    }
    if (!std::filesystem::is_directory(dir_)) {
        throw ftc::error("ckpt: " + dir_.string() + " is not a directory");
    }
}

void checkpoint_manager::set_surviving(std::vector<std::size_t> surviving) {
    surviving_ = std::move(surviving);
}

void checkpoint_manager::write_sections(const char* filename, std::vector<section> sections) {
    sections.insert(sections.begin(),
                    section{static_cast<std::uint32_t>(section_id::fingerprint),
                            encode_fingerprint(fp_)});
    const byte_vector file = encode_sections(sections);
    // The serialized image is a real, sometimes matrix-sized buffer; charge
    // it so the governor (and the fault injector) see checkpoint writes as
    // the allocation spike they are. Scoped: released as soon as the write
    // lands.
    const mem::charge file_charge(file.size(), "ckpt.write");
    util::atomic_write_file(dir_ / filename, byte_view{file});
    obs::counter_add("ckpt.files_written_total", 1.0);
    obs::counter_add("ckpt.bytes_written_total", static_cast<double>(file.size()));
}

void checkpoint_manager::write_manifest(const char* status, const char* stage) {
    obs::json_writer w;
    w.begin_object();
    w.key("tool");
    w.value("ftclust");
    w.key("kind");
    w.value("checkpoint");
    w.key("format_version");
    w.value(static_cast<std::uint64_t>(kFormatVersion));
    w.key("status");
    w.value(status);
    w.key("stage");
    w.value(stage);
    w.key("options_digest");
    w.value(fp_.options_digest);
    w.key("input_digest");
    w.value(fp_.input_digest);
    w.end_object();
    util::atomic_write_file(dir_ / kManifestFile, std::string_view{w.take()});
}

void checkpoint_manager::on_segments(const std::vector<byte_vector>& messages,
                                     const segmentation::message_segments& segments) {
    obs::span sp("ckpt.save.segments");
    segments_payload p;
    p.surviving = surviving_;
    if (p.surviving.empty()) {
        p.surviving.resize(messages.size());
        for (std::size_t i = 0; i < messages.size(); ++i) {
            p.surviving[i] = i;
        }
    }
    p.segments = segments;
    write_sections(kSegmentsFile,
                   {{static_cast<std::uint32_t>(section_id::segments), encode_segments(p)}});
    last_stage_ = "segmentation";
    write_manifest("in-progress", last_stage_.c_str());
}

void checkpoint_manager::on_matrix_tile(std::size_t row_begin, std::size_t row_end,
                                        std::size_t n, std::span<const float> cells) {
    obs::span sp("ckpt.save.matrix_tile");
    matrix_tile_payload tile;
    tile.row_begin = row_begin;
    tile.row_end = row_end;
    tile.n = n;
    tile.cells.assign(cells.begin(), cells.end());
    write_sections(tile_file(tiles_spilled_).c_str(),
                   {{static_cast<std::uint32_t>(section_id::matrix_tile),
                     encode_matrix_tile(tile)}});
    ++tiles_spilled_;
    obs::counter_add("ckpt.tiles_spilled_total", 1.0);
}

void checkpoint_manager::on_matrix(const dissim::unique_segments& unique,
                                   const dissim::dissimilarity_matrix& matrix,
                                   const std::vector<std::vector<double>>& knn_curves) {
    obs::span sp("ckpt.save.matrix");
    std::vector<section> sections;
    sections.push_back(
        {static_cast<std::uint32_t>(section_id::unique), encode_unique(unique)});
    if (tiles_spilled_ > 0) {
        // Every cell already sits in the spilled tile files (written
        // atomically as each tile completed); re-serializing the whole
        // triangle here would momentarily double the matrix footprint —
        // exactly what a memory-pressured run cannot afford. The marker
        // tells load() where the cells live.
        matrix_tiled_marker marker;
        marker.n = matrix.size();
        marker.tile_count = tiles_spilled_;
        sections.push_back({static_cast<std::uint32_t>(section_id::matrix_tiled),
                            encode_matrix_tiled(marker)});
    } else {
        sections.push_back(
            {static_cast<std::uint32_t>(section_id::matrix), encode_matrix(matrix)});
    }
    if (!knn_curves.empty()) {
        sections.push_back(
            {static_cast<std::uint32_t>(section_id::knn), encode_knn(knn_curves)});
    }
    write_sections(kMatrixFile, std::move(sections));
    last_stage_ = "dissimilarity";
    write_manifest("in-progress", last_stage_.c_str());
}

void checkpoint_manager::on_neighbors(const dissim::unique_segments& unique,
                                      const dissim::capped_neighbors& neighbors,
                                      const std::vector<std::vector<double>>& knn_curves) {
    obs::span sp("ckpt.save.neighbors");
    // Sparse runs snapshot the capped lists instead of a matrix — typically
    // orders of magnitude smaller, and it resumes into an adopted
    // sparse_neighborhood serving bitwise the same values. Its own file
    // (never matrix.ckpt) keeps pre-sparse loaders oblivious: they see no
    // matrix snapshot and recompute, which is always correct.
    std::vector<section> sections;
    sections.push_back(
        {static_cast<std::uint32_t>(section_id::unique), encode_unique(unique)});
    sections.push_back({static_cast<std::uint32_t>(section_id::neighbors),
                        encode_neighbors(neighbors)});
    if (!knn_curves.empty()) {
        sections.push_back(
            {static_cast<std::uint32_t>(section_id::knn), encode_knn(knn_curves)});
    }
    write_sections(kNeighborsFile, std::move(sections));
    last_stage_ = "dissimilarity";
    write_manifest("in-progress", last_stage_.c_str());
}

void checkpoint_manager::on_clustering(const cluster::auto_cluster_result& clustering) {
    obs::span sp("ckpt.save.clustering");
    write_sections(kClusteringFile, {{static_cast<std::uint32_t>(section_id::clustering),
                                      encode_clustering(clustering)}});
    last_stage_ = "clustering";
    write_manifest("in-progress", last_stage_.c_str());
}

dissim::dissimilarity_matrix checkpoint_manager::load_tiled_matrix(
    const matrix_tiled_marker& marker) {
    obs::span sp("ckpt.load.tiles");
    sp.count("tiles", marker.tile_count);
    // Tiles must chain seamlessly over [0, n): each file carries its row
    // range, and any gap, overlap, or missing file fails the whole matrix
    // (the caller quarantines and recomputes — a half-trusted matrix is
    // worse than none). Cells concatenate into the triangular layout
    // directly: a run resuming a tiled spill is by definition under the
    // memory pressure that chose that layout.
    std::vector<float> cells;
    std::uint64_t next_row = 0;
    for (std::uint64_t k = 0; k < marker.tile_count; ++k) {
        const auto file = read_file(dir_ / tile_file(static_cast<std::size_t>(k)));
        if (!file.has_value()) {
            throw parse_error(message("ckpt: spilled tile file ", tile_file(k), " missing"));
        }
        std::vector<section> sections = checked_sections(*file, fp_);
        const section* tile_section = find_section(sections, section_id::matrix_tile);
        if (tile_section == nullptr) {
            throw parse_error(message("ckpt: ", tile_file(k), " has no tile section"));
        }
        matrix_tile_payload tile = decode_matrix_tile(tile_section->payload);
        if (tile.n != marker.n || tile.row_begin != next_row) {
            throw parse_error(message("ckpt: tile ", k, " covers rows [", tile.row_begin,
                                      ", ", tile.row_end, ") of ", tile.n, ", expected rows "
                                      "from ", next_row, " of ", marker.n));
        }
        next_row = tile.row_end;
        cells.insert(cells.end(), tile.cells.begin(), tile.cells.end());
    }
    if (next_row != marker.n) {
        throw parse_error(message("ckpt: spilled tiles stop at row ", next_row, " of ",
                                  marker.n));
    }
    return dissim::dissimilarity_matrix::from_upper(
        cells, static_cast<std::size_t>(marker.n), dissim::layout::triangular);
}

void checkpoint_manager::on_interrupted(const char* stage) {
    // Async contexts reach this via the cooperative cancellation points,
    // never from inside a signal handler, so file I/O is safe here. The
    // completed-stage snapshots are already on disk; only the fact and the
    // lost stage need recording.
    write_manifest("interrupted", stage);
    obs::counter_add("ckpt.interrupted_total", 1.0);
}

void checkpoint_manager::mark_complete() {
    write_manifest("complete", last_stage_.c_str());
}

restored_state checkpoint_manager::load(const std::vector<byte_vector>& all_messages,
                                        diag::error_sink& sink) {
    obs::span sp("ckpt.load");
    restored_state out;

    // Each file validates independently; a damaged one costs exactly its
    // own stage. quarantine() routes the failure through the sink so strict
    // mode throws and lenient mode records-and-recomputes, like every other
    // ingestion fault in the codebase.
    const auto quarantine = [&](const char* file, const std::string& why) {
        sink.fail({diag::category::checkpoint, diag::severity::error, 0, 0,
                   "checkpoint " + (dir_ / file).string() + ": " + why});
        obs::counter_add("ckpt.sections_rejected_total", 1.0);
    };

    // segments.ckpt -> seed.segments (+ surviving-message reconstruction).
    try {
        if (const auto file = read_file(dir_ / kSegmentsFile)) {
            std::vector<section> sections = checked_sections(*file, fp_);
            const section* seg = find_section(sections, section_id::segments);
            if (seg == nullptr) {
                throw parse_error("ckpt: segments section missing");
            }
            segments_payload p = decode_segments(seg->payload);
            std::vector<byte_vector> messages;
            messages.reserve(p.surviving.size());
            for (std::size_t idx : p.surviving) {
                if (idx >= all_messages.size()) {
                    throw parse_error(message("ckpt: surviving index ", idx,
                                              " beyond message count ", all_messages.size()));
                }
                messages.push_back(all_messages[idx]);
            }
            // The decoded ranges must actually segment the reconstructed
            // messages — the one property digests cannot vouch for.
            segmentation::validate_segmentation(messages, p.segments);
            out.messages = std::move(messages);
            out.surviving = std::move(p.surviving);
            out.seed.segments = std::move(p.segments);
            out.stages.emplace_back("segmentation");
        }
    } catch (const budget_exceeded_error&) {
        throw;
    } catch (const ftc::error& e) {
        quarantine(kSegmentsFile, e.what());
    }

    // matrix.ckpt -> seed.unique + seed.matrix (+ optional seed.knn_curves).
    try {
        if (const auto file = read_file(dir_ / kMatrixFile)) {
            std::vector<section> sections = checked_sections(*file, fp_);
            const section* uniq = find_section(sections, section_id::unique);
            const section* mat = find_section(sections, section_id::matrix);
            const section* tiled = find_section(sections, section_id::matrix_tiled);
            if (uniq == nullptr || (mat == nullptr && tiled == nullptr)) {
                throw parse_error("ckpt: unique/matrix section missing");
            }
            dissim::unique_segments unique = decode_unique(uniq->payload);
            dissim::dissimilarity_matrix matrix =
                mat != nullptr ? decode_matrix(mat->payload)
                               : load_tiled_matrix(decode_matrix_tiled(tiled->payload));
            if (matrix.size() != unique.size()) {
                throw parse_error(message("ckpt: matrix of ", matrix.size(), " rows for ",
                                          unique.size(), " unique segments"));
            }
            // k-NN curves are an optimization, not state: a damaged curve
            // set costs one batched row scan, not the whole matrix.
            if (const section* knn = find_section(sections, section_id::knn)) {
                out.seed.knn_curves = decode_knn(knn->payload);
            }
            out.seed.unique = std::move(unique);
            out.seed.matrix = std::move(matrix);
            out.stages.emplace_back("dissimilarity");
        }
    } catch (const budget_exceeded_error&) {
        throw;
    } catch (const ftc::error& e) {
        quarantine(kMatrixFile, e.what());
    }

    // neighbors.ckpt -> seed.unique + seed.neighbors (sparse-mode snapshot).
    // The matrix snapshot wins when both restored: it carries every pair,
    // not just the capped lists. Either seeds a bitwise-identical resume.
    try {
        if (!out.seed.matrix.has_value()) {
            if (const auto file = read_file(dir_ / kNeighborsFile)) {
                std::vector<section> sections = checked_sections(*file, fp_);
                const section* uniq = find_section(sections, section_id::unique);
                const section* nbrs = find_section(sections, section_id::neighbors);
                if (uniq == nullptr || nbrs == nullptr) {
                    throw parse_error("ckpt: unique/neighbors section missing");
                }
                dissim::unique_segments unique = decode_unique(uniq->payload);
                dissim::capped_neighbors neighbors = decode_neighbors(nbrs->payload);
                if (neighbors.size() != unique.size()) {
                    throw parse_error(message("ckpt: neighbor lists for ", neighbors.size(),
                                              " points but ", unique.size(),
                                              " unique segments"));
                }
                if (const section* knn = find_section(sections, section_id::knn)) {
                    out.seed.knn_curves = decode_knn(knn->payload);
                }
                out.seed.unique = std::move(unique);
                out.seed.neighbors = std::move(neighbors);
                out.stages.emplace_back("dissimilarity");
            }
        }
    } catch (const budget_exceeded_error&) {
        throw;
    } catch (const ftc::error& e) {
        quarantine(kNeighborsFile, e.what());
    }

    // clustering.ckpt -> seed.clustering.
    try {
        if (const auto file = read_file(dir_ / kClusteringFile)) {
            std::vector<section> sections = checked_sections(*file, fp_);
            const section* clu = find_section(sections, section_id::clustering);
            if (clu == nullptr) {
                throw parse_error("ckpt: clustering section missing");
            }
            cluster::auto_cluster_result clustering = decode_clustering(clu->payload);
            // When the matrix was restored too, the label vector must index
            // it; when it was not, the deterministic recompute reproduces
            // the same unique-segment count (same input + options, enforced
            // by the fingerprint), so the check happens where it can.
            if (out.seed.matrix.has_value() &&
                clustering.labels.labels.size() != out.seed.matrix->size()) {
                throw parse_error(message("ckpt: ", clustering.labels.labels.size(),
                                          " labels for a ", out.seed.matrix->size(),
                                          "-row matrix"));
            }
            if (out.seed.neighbors.has_value() &&
                clustering.labels.labels.size() != out.seed.neighbors->size()) {
                throw parse_error(message("ckpt: ", clustering.labels.labels.size(),
                                          " labels for ", out.seed.neighbors->size(),
                                          " neighbor lists"));
            }
            out.seed.clustering = std::move(clustering);
            out.stages.emplace_back("clustering");
        }
    } catch (const budget_exceeded_error&) {
        throw;
    } catch (const ftc::error& e) {
        quarantine(kClusteringFile, e.what());
    }

    obs::counter_add("ckpt.stages_restored_total", static_cast<double>(out.stages.size()));
    return out;
}

}  // namespace ftc::ckpt
