/// \file format.hpp
/// The ftclust checkpoint wire format (ftc::ckpt).
///
/// A checkpoint file is a digest-verified container of typed sections:
///
///   magic "FTCKPT01" (8 bytes)
///   format version   (u32 le)
///   section count    (u32 le)
///   per section:  id (u32 le), payload size (u64 le),
///                 FNV-1a64 digest of the payload (u64 le), payload bytes
///
/// All integers are little-endian; doubles and floats travel as their IEEE
/// bit patterns (u64/u32 le), so a round trip restores the exact bits and a
/// resumed run can be bitwise identical to an uninterrupted one. Every
/// decoder is bounds-checked and throws ftc::parse_error on damage —
/// arbitrary bytes must never crash a loader (see fuzz_ckpt_load).
///
/// The first section of every file is the *fingerprint*: a digest of the
/// pipeline options that shape stage outputs plus a digest of the raw input
/// bytes. A checkpoint whose fingerprint does not match the current run is
/// rejected wholesale — resuming segment state of trace A into a run over
/// trace B would silently corrupt results. Thread counts, kernel backend
/// and resource budgets are deliberately NOT part of the fingerprint: every
/// stage is bitwise deterministic across those, so resuming on a different
/// machine shape is exactly the supported use case.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "cluster/autoconf.hpp"
#include "core/pipeline.hpp"
#include "dissim/matrix.hpp"
#include "dissim/neighborhood.hpp"
#include "segmentation/segment.hpp"
#include "util/byteio.hpp"

namespace ftc::ckpt {

/// File magic, first 8 bytes of every checkpoint file.
inline constexpr char kMagic[8] = {'F', 'T', 'C', 'K', 'P', 'T', '0', '1'};

/// Bumped on any incompatible layout change; loaders reject other versions.
/// v2: unique payload gains a leading form byte (full occurrences vs.
/// memory-degraded multiplicities), and a tiled triangular matrix build may
/// replace the matrix section with a matrix_tiled marker plus one
/// matrix_tile_<k>.ckpt file per spilled tile.
inline constexpr std::uint32_t kFormatVersion = 2;

/// Section type tags.
enum class section_id : std::uint32_t {
    fingerprint = 1,   ///< options + input digests (first section, mandatory)
    segments = 2,      ///< surviving indices + message segmentation
    unique = 3,        ///< condensed unique segments
    matrix = 4,        ///< dissimilarity matrix upper triangle (f32)
    knn = 5,           ///< batched k-NN curves for the epsilon sweep
    clustering = 6,    ///< auto-configuration + DBSCAN outcome
    matrix_tile = 7,   ///< one spilled tile of a tiled triangular build
    matrix_tiled = 8,  ///< marker: matrix lives in matrix_tile_<k>.ckpt files
    neighbors = 9,     ///< capped sparse neighbor lists (sparse mode)
};

/// One decoded section: tag plus raw (digest-verified) payload.
struct section {
    std::uint32_t id = 0;
    byte_vector payload;
};

/// Identity of a run for resume purposes: what was analyzed (input_digest,
/// FNV-1a64 of the raw capture bytes) and with which result-shaping options
/// (options_digest over a canonical serialization of pipeline options and
/// the segmenter name).
struct options_fingerprint {
    std::uint64_t options_digest = 0;
    std::uint64_t input_digest = 0;

    bool operator==(const options_fingerprint&) const = default;
};

/// Digest the result-shaping pipeline options (+ segmenter name) into a
/// fingerprint. Excludes threads, budgets and the observer pointer: they
/// change how fast a run finishes, never what it computes.
options_fingerprint fingerprint(const core::pipeline_options& options,
                                std::string_view segmenter_name,
                                std::uint64_t input_digest);

// ---------------------------------------------------------------------------
// Container encode/decode
// ---------------------------------------------------------------------------

/// Serialize sections into one checkpoint file image (header + digests).
byte_vector encode_sections(const std::vector<section>& sections);

/// Parse and digest-verify a checkpoint file image. Throws ftc::parse_error
/// on bad magic, unknown version, truncation, or a section whose payload
/// does not match its recorded digest.
std::vector<section> decode_sections(byte_view file);

// ---------------------------------------------------------------------------
// Section payload codecs (each throws ftc::parse_error on malformed input)
// ---------------------------------------------------------------------------

byte_vector encode_fingerprint(const options_fingerprint& fp);
options_fingerprint decode_fingerprint(byte_view payload);

/// Segmentation snapshot: the lenient-ingestion surviving-message indices
/// plus the segmentation of those surviving messages.
struct segments_payload {
    std::vector<std::size_t> surviving;
    segmentation::message_segments segments;
};

byte_vector encode_segments(const segments_payload& p);
segments_payload decode_segments(byte_view payload);

byte_vector encode_unique(const dissim::unique_segments& unique);
dissim::unique_segments decode_unique(byte_view payload);

/// Matrix travels as its upper triangle in f32 (the storage precision), so
/// the restored matrix is bitwise identical to the saved one — whatever
/// layout either side used. The decoder picks the in-memory layout by
/// projecting the dense footprint against the active ftc::mem governor:
/// a resume under the same memory pressure that forced the triangular
/// build restores into the triangular layout again.
byte_vector encode_matrix(const dissim::dissimilarity_matrix& matrix);
dissim::dissimilarity_matrix decode_matrix(byte_view payload);

/// One spilled tile of a tiled triangular matrix build: upper-triangle rows
/// [row_begin, row_end) of an n-element matrix as a contiguous cell run
/// (dissim::tile_sink semantics).
struct matrix_tile_payload {
    std::uint64_t row_begin = 0;
    std::uint64_t row_end = 0;
    std::uint64_t n = 0;
    std::vector<float> cells;
};

byte_vector encode_matrix_tile(const matrix_tile_payload& tile);
matrix_tile_payload decode_matrix_tile(byte_view payload);

/// Marker replacing the matrix section when tiles were spilled: the matrix
/// is reassembled from `tile_count` matrix_tile_<k>.ckpt files.
struct matrix_tiled_marker {
    std::uint64_t n = 0;
    std::uint64_t tile_count = 0;
};

byte_vector encode_matrix_tiled(const matrix_tiled_marker& marker);
matrix_tiled_marker decode_matrix_tiled(byte_view payload);

byte_vector encode_knn(const std::vector<std::vector<double>>& curves);
std::vector<std::vector<double>> decode_knn(byte_view payload);

/// Capped sparse neighbor lists (dissim::capped_neighbors): the persistable
/// substrate of a sparse_neighborhood. Ids and distances travel as u32/f32
/// bit patterns, so an adopted resume serves bitwise the values a fresh
/// build would. The decoder enforces every structural invariant the sparse
/// engine relies on: list length min(cap, n-1), ids in range and never the
/// point itself, distances in [0, 1], ascending (d, id) order.
byte_vector encode_neighbors(const dissim::capped_neighbors& neighbors);
dissim::capped_neighbors decode_neighbors(byte_view payload);

/// Clustering snapshot. k_candidate diagnostics are not persisted: nothing
/// downstream of clustering consumes them (they exist for tests and the
/// Fig. 2 bench), and they would multiply the file size.
byte_vector encode_clustering(const cluster::auto_cluster_result& clustering);
cluster::auto_cluster_result decode_clustering(byte_view payload);

}  // namespace ftc::ckpt
