#include "fieldhunter/fieldhunter.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "protocols/registry.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace ftc::fieldhunter {

namespace {

/// Read a candidate field value at (offset, width, endianness); nullopt
/// when the message is too short.
std::optional<std::uint64_t> value_at(const byte_vector& bytes, std::size_t offset,
                                      std::size_t width, bool big_endian) {
    if (offset + width > bytes.size()) {
        return std::nullopt;
    }
    std::uint64_t v = 0;
    if (big_endian) {
        for (std::size_t i = 0; i < width; ++i) {
            v = (v << 8) | bytes[offset + i];
        }
    } else {
        for (std::size_t i = width; i > 0; --i) {
            v = (v << 8) | bytes[offset + i - 1];
        }
    }
    return v;
}

/// Request/response transaction pairs, matched per flow in arrival order.
std::vector<std::pair<std::size_t, std::size_t>> pair_transactions(
    const std::vector<fh_message>& messages) {
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    std::map<pcap::flow_key, std::vector<std::size_t>> pending;
    for (std::size_t i = 0; i < messages.size(); ++i) {
        const fh_message& m = messages[i];
        if (!m.has_flow) {
            continue;
        }
        if (m.is_request) {
            pending[m.flow].push_back(i);
        } else {
            auto it = pending.find(m.flow.reversed());
            if (it != pending.end() && !it->second.empty()) {
                pairs.emplace_back(it->second.front(), i);
                it->second.erase(it->second.begin());
            }
        }
    }
    return pairs;
}

}  // namespace

const char* to_string(fh_kind kind) {
    switch (kind) {
        case fh_kind::msg_type: return "MSG-Type";
        case fh_kind::msg_len: return "MSG-Len";
        case fh_kind::trans_id: return "Trans-ID";
        case fh_kind::host_id: return "Host-ID";
        case fh_kind::session_id: return "Session-ID";
        case fh_kind::accumulator: return "Accumulator";
    }
    return "?";
}

std::vector<fh_message> from_trace(const protocols::trace& input) {
    std::vector<fh_message> out;
    out.reserve(input.messages.size());
    const bool has_flow = protocols::protocol_linktype(input.protocol) ==
                          pcap::linktype::ethernet;
    for (const protocols::annotated_message& msg : input.messages) {
        fh_message m;
        m.bytes = msg.bytes;
        m.flow = msg.flow;
        m.is_request = msg.is_request;
        m.has_flow = has_flow;
        out.push_back(std::move(m));
    }
    return out;
}

fh_result infer(const std::vector<fh_message>& messages, const fh_options& options) {
    fh_result result;
    for (const fh_message& m : messages) {
        result.total_bytes += m.bytes.size();
    }
    if (messages.empty()) {
        return result;
    }

    const auto pairs = pair_transactions(messages);
    const bool any_flow =
        std::any_of(messages.begin(), messages.end(), [](const fh_message& m) {
            return m.has_flow;
        });

    const std::size_t max_len =
        std::max_element(messages.begin(), messages.end(), [](const auto& a, const auto& b) {
            return a.bytes.size() < b.bytes.size();
        })->bytes.size();
    const std::size_t max_offset = std::min(options.max_offset, max_len);

    // Which byte offsets are already claimed by an accepted field.
    std::vector<bool> claimed(max_offset, false);
    auto range_free = [&](std::size_t offset, std::size_t width) {
        for (std::size_t i = offset; i < offset + width && i < claimed.size(); ++i) {
            if (claimed[i]) {
                return false;
            }
        }
        return true;
    };
    auto claim = [&](std::size_t offset, std::size_t width, fh_kind kind, bool big_endian,
                     double score) {
        for (std::size_t i = offset; i < offset + width && i < claimed.size(); ++i) {
            claimed[i] = true;
        }
        result.fields.push_back({offset, width, big_endian, kind, score});
        // Coverage: this field exists in every message long enough.
        for (const fh_message& m : messages) {
            if (offset + width <= m.bytes.size()) {
                result.typed_bytes += width;
            }
        }
    };

    const double n_msgs = static_cast<double>(messages.size());
    auto offset_support = [&](std::size_t offset, std::size_t width) {
        std::size_t have = 0;
        for (const fh_message& m : messages) {
            if (offset + width <= m.bytes.size()) {
                ++have;
            }
        }
        return static_cast<double>(have) / n_msgs;
    };

    // Fraction of messages whose bytes at [offset, offset+width) are all
    // printable ASCII — used to keep text content out of the binary rules.
    auto printable_fraction = [&](std::size_t offset, std::size_t width) {
        std::size_t have = 0;
        std::size_t printable = 0;
        for (const fh_message& m : messages) {
            if (offset + width > m.bytes.size()) {
                continue;
            }
            ++have;
            bool all = true;
            for (std::size_t i = 0; i < width; ++i) {
                const std::uint8_t b = m.bytes[offset + i];
                if (b < 0x20 || b > 0x7e) {
                    all = false;
                    break;
                }
            }
            printable += all ? 1 : 0;
        }
        return have > 0 ? static_cast<double>(printable) / static_cast<double>(have) : 0.0;
    };
    auto looks_textual = [&](std::size_t offset, std::size_t width) {
        return printable_fraction(offset, width) > options.max_printable_fraction;
    };

    // FieldHunter infers *the* field of each kind — "typically one or two
    // fields per message" (DSN-W'22 paper, Sec. IV-D). Each rule therefore
    // collects candidates and claims only its best one: highest score,
    // widest field on ties, then lowest offset.
    struct rule_candidate {
        std::size_t offset = 0;
        std::size_t width = 0;
        bool big_endian = true;
        double score = 0.0;
    };
    auto claim_best = [&](std::vector<rule_candidate>& candidates, fh_kind kind) {
        const auto best = std::max_element(
            candidates.begin(), candidates.end(),
            [](const rule_candidate& a, const rule_candidate& b) {
                if (a.score != b.score) {
                    return a.score < b.score;
                }
                if (a.width != b.width) {
                    return a.width < b.width;
                }
                return a.offset > b.offset;
            });
        if (best != candidates.end()) {
            claim(best->offset, best->width, kind, best->big_endian, best->score);
        }
        candidates.clear();
    };
    std::vector<rule_candidate> candidates;

    static constexpr std::size_t kWidths[] = {4, 2, 1};

    // ---- Rule: MSG-Type (needs request/response pairs) ----
    for (std::size_t width : {std::size_t{1}, std::size_t{2}}) {
        for (std::size_t offset = 0; offset + width <= max_offset; ++offset) {
            if (!range_free(offset, width) || pairs.empty()) {
                continue;
            }
            if (offset_support(offset, width) < options.min_offset_support ||
                looks_textual(offset, width)) {
                continue;
            }
            std::set<std::uint64_t> req_values;
            std::set<std::uint64_t> resp_values;
            std::map<std::uint64_t, std::map<std::uint64_t, std::size_t>> joint;
            std::size_t usable = 0;
            for (const auto& [req, resp] : pairs) {
                const auto rv = value_at(messages[req].bytes, offset, width, true);
                const auto sv = value_at(messages[resp].bytes, offset, width, true);
                if (!rv || !sv) {
                    continue;
                }
                ++usable;
                req_values.insert(*rv);
                resp_values.insert(*sv);
                ++joint[*rv][*sv];
            }
            if (usable < 8 || req_values.empty()) {
                continue;
            }
            if (req_values.size() > options.max_type_cardinality ||
                resp_values.size() > options.max_type_cardinality) {
                continue;
            }
            if (req_values.size() < 2 && resp_values.size() < 2) {
                continue;  // constant bytes are keywords, not message types
            }
            if (req_values.size() * 4 > usable && resp_values.size() * 4 > usable) {
                continue;  // near-unique values: identifiers, not type codes
            }
            // Average concentration of the response value given the request
            // value (categorical correlation).
            double weighted = 0.0;
            for (const auto& [rv, dist] : joint) {
                std::size_t total = 0;
                std::size_t best = 0;
                for (const auto& [sv, count] : dist) {
                    total += count;
                    best = std::max(best, count);
                }
                weighted += static_cast<double>(best);
            }
            const double concentration = weighted / static_cast<double>(usable);
            if (concentration >= options.min_type_correlation) {
                candidates.push_back({offset, width, true, concentration});
            }
        }
    }
    claim_best(candidates, fh_kind::msg_type);

    // ---- Rule: MSG-Len (numeric correlation with message length) ----
    for (std::size_t width : {std::size_t{2}, std::size_t{4}}) {
        for (bool big_endian : {true, false}) {
            for (std::size_t offset = 0; offset + width <= max_offset; ++offset) {
                if (!range_free(offset, width)) {
                    continue;
                }
                std::vector<double> values;
                std::vector<double> lengths;
                for (const fh_message& m : messages) {
                    if (const auto v = value_at(m.bytes, offset, width, big_endian)) {
                        values.push_back(static_cast<double>(*v));
                        lengths.push_back(static_cast<double>(m.bytes.size()));
                    }
                }
                if (values.size() < std::max<std::size_t>(
                                        8, static_cast<std::size_t>(
                                               options.min_offset_support * n_msgs))) {
                    continue;
                }
                // Degenerate unless both sides vary.
                if (stddev(values) == 0.0 || stddev(lengths) == 0.0) {
                    continue;
                }
                const double rho = pearson(values, lengths);
                if (rho >= options.min_len_correlation) {
                    candidates.push_back({offset, width, big_endian, rho});
                }
            }
        }
    }
    claim_best(candidates, fh_kind::msg_len);

    // ---- Rule: Trans-ID (request value echoed by the response) ----
    for (std::size_t width : kWidths) {
        if (width == 1) {
            continue;  // single bytes echo too easily by chance
        }
        for (std::size_t offset = 0; offset + width <= max_offset; ++offset) {
            if (!range_free(offset, width) || pairs.empty() ||
                looks_textual(offset, width)) {
                continue;
            }
            std::size_t usable = 0;
            std::size_t echoed = 0;
            std::set<std::uint64_t> distinct;
            for (const auto& [req, resp] : pairs) {
                const auto rv = value_at(messages[req].bytes, offset, width, true);
                const auto sv = value_at(messages[resp].bytes, offset, width, true);
                if (!rv || !sv) {
                    continue;
                }
                ++usable;
                if (*rv == *sv) {
                    ++echoed;
                }
                distinct.insert(*rv);
            }
            if (usable < 8) {
                continue;
            }
            const double echo = static_cast<double>(echoed) / static_cast<double>(usable);
            const double distinct_ratio =
                static_cast<double>(distinct.size()) / static_cast<double>(usable);
            if (echo >= options.min_transid_echo &&
                distinct_ratio >= options.min_transid_distinct) {
                candidates.push_back({offset, width, true, echo * distinct_ratio});
            }
        }
    }
    claim_best(candidates, fh_kind::trans_id);

    // ---- Rules: Host-ID / Session-ID (need flow context) ----
    if (any_flow) {
        std::vector<rule_candidate> host_candidates;
        std::vector<rule_candidate> session_candidates;
        for (std::size_t width : kWidths) {
            if (width == 1) {
                continue;
            }
            for (std::size_t offset = 0; offset + width <= max_offset; ++offset) {
                if (!range_free(offset, width) || looks_textual(offset, width)) {
                    continue;
                }
                std::map<std::uint32_t, std::set<std::uint64_t>> per_host;
                std::map<std::uint32_t, std::size_t> host_messages;
                std::map<pcap::flow_key, std::set<std::uint64_t>> per_session;
                std::map<pcap::flow_key, std::size_t> session_messages;
                std::set<std::uint64_t> all_values;
                std::size_t usable = 0;
                for (const fh_message& m : messages) {
                    if (!m.has_flow) {
                        continue;
                    }
                    const auto v = value_at(m.bytes, offset, width, true);
                    if (!v) {
                        continue;
                    }
                    ++usable;
                    per_host[m.flow.src_ip.value].insert(*v);
                    ++host_messages[m.flow.src_ip.value];
                    pcap::flow_key session = m.is_request ? m.flow : m.flow.reversed();
                    per_session[session].insert(*v);
                    ++session_messages[session];
                    all_values.insert(*v);
                }
                if (usable < 8 || all_values.size() < 2) {
                    continue;
                }
                // Consistency is only evidence when a group holds several
                // messages: count the multi-message groups and require at
                // least two of them (a group of one is trivially constant).
                // An identifier must also *identify*: the distinct values
                // must scale with the number of groups, otherwise the field
                // is a shared flag (e.g. a direction bit), not an id.
                auto consistent = [&all_values](const auto& groups, const auto& counts,
                                                std::size_t min_group) {
                    std::size_t multi = 0;
                    for (const auto& [key, values] : groups) {
                        if (values.size() != 1) {
                            return false;
                        }
                        if (counts.at(key) >= min_group) {
                            ++multi;
                        }
                    }
                    return multi >= 2 && 2 * all_values.size() >= groups.size();
                };
                if (per_host.size() >= 2 && consistent(per_host, host_messages, 2)) {
                    host_candidates.push_back({offset, width, true, 1.0});
                    continue;
                }
                // A session with a single request/response exchange echoes
                // every payload byte, so demand several messages per flow.
                if (per_session.size() >= 2 &&
                    consistent(per_session, session_messages, 3)) {
                    session_candidates.push_back({offset, width, true, 1.0});
                }
            }
        }
        claim_best(host_candidates, fh_kind::host_id);
        claim_best(session_candidates, fh_kind::session_id);
    }

    // ---- Rule: Accumulator (monotone per directed flow) ----
    if (any_flow) {
        for (std::size_t width : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
            for (bool big_endian : {true, false}) {
                for (std::size_t offset = 0; offset + width <= max_offset; ++offset) {
                    if (!range_free(offset, width)) {
                        continue;
                    }
                    std::map<pcap::flow_key, std::vector<std::uint64_t>> per_flow;
                    for (const fh_message& m : messages) {
                        if (!m.has_flow) {
                            continue;
                        }
                        if (const auto v = value_at(m.bytes, offset, width, big_endian)) {
                            per_flow[m.flow].push_back(*v);
                        }
                    }
                    std::size_t checked_flows = 0;
                    bool all_monotone = true;
                    bool any_increase = false;
                    for (const auto& [flow, seq] : per_flow) {
                        if (seq.size() < 3) {
                            continue;
                        }
                        ++checked_flows;
                        for (std::size_t i = 1; i < seq.size(); ++i) {
                            if (seq[i] < seq[i - 1]) {
                                all_monotone = false;
                                break;
                            }
                            if (seq[i] > seq[i - 1]) {
                                any_increase = true;
                            }
                        }
                        if (!all_monotone) {
                            break;
                        }
                    }
                    if (checked_flows >= 1 && all_monotone && any_increase) {
                        candidates.push_back({offset, width, big_endian, 1.0});
                    }
                }
            }
        }
        claim_best(candidates, fh_kind::accumulator);
    }

    std::sort(result.fields.begin(), result.fields.end(),
              [](const fh_field& a, const fh_field& b) { return a.offset < b.offset; });
    return result;
}

}  // namespace ftc::fieldhunter
