/// \file fieldhunter.hpp
/// Re-implementation of FieldHunter (Bermudez, Tongaonkar, Iliofotou,
/// Mellia, Munafò — Computer Communications 2016: "Towards Automatic
/// Protocol Field Inference"), the paper's state-of-the-art baseline.
///
/// FieldHunter infers a *fixed set* of concrete field types at *fixed
/// message offsets* from request/response transactions:
///   MSG-Type  — small value set, categorically correlated across the
///               request/response direction,
///   MSG-Len   — numeric value correlating with the message length,
///   Trans-ID  — request value echoed in the response, random across
///               transactions,
///   Host-ID   — constant per source host, differing across hosts,
///   Session-ID— constant per flow, differing across flows,
///   Accumulator — monotonically increasing per flow (counters, clocks).
///
/// Both limitations the paper exploits are inherent here: fields at
/// variable offsets are invisible, and everything except MSG-Type/MSG-Len
/// requires flow context — for protocols without IP encapsulation (AWDL,
/// AU) the context rules cannot apply. Typical coverage is a few percent
/// of the message bytes (paper Sec. IV-D: 3 % on average, vs 87 % for the
/// clustering method).
#pragma once

#include <string>
#include <vector>

#include "pcap/decap.hpp"
#include "protocols/field.hpp"
#include "util/byteio.hpp"

namespace ftc::fieldhunter {

/// One message with the flow context FieldHunter requires.
struct fh_message {
    byte_vector bytes;
    pcap::flow_key flow;
    bool is_request = true;
    bool has_flow = true;  ///< false for non-IP captures (AWDL/AU)
};

/// Build FieldHunter input from an annotated trace (annotations unused).
std::vector<fh_message> from_trace(const protocols::trace& input);

/// Field types FieldHunter can emit.
enum class fh_kind {
    msg_type,
    msg_len,
    trans_id,
    host_id,
    session_id,
    accumulator,
};

const char* to_string(fh_kind kind);

/// One inferred field.
struct fh_field {
    std::size_t offset = 0;
    std::size_t width = 1;
    bool big_endian = true;
    fh_kind kind = fh_kind::msg_type;
    double score = 0.0;  ///< rule-specific confidence (correlation etc.)
};

/// Inference tunables (defaults follow the FieldHunter paper's choices
/// where stated).
struct fh_options {
    std::size_t max_offset = 512;       ///< deepest offset examined
    double min_offset_support = 0.3;    ///< messages that must reach offset
    std::size_t max_type_cardinality = 16;  ///< MSG-Type distinct value cap
    double min_type_correlation = 0.8;  ///< MSG-Type direction correlation
    double min_len_correlation = 0.8;   ///< MSG-Len Pearson threshold
    double min_transid_echo = 0.9;      ///< Trans-ID echo fraction
    double min_transid_distinct = 0.66; ///< Trans-ID distinct/pairs ratio
    /// Candidate values that are mostly printable text are excluded from
    /// the binary-field rules (MSG-Type, Trans-ID, Host-ID, Session-ID):
    /// echoed text fields (names, paths) would otherwise masquerade as ids.
    double max_printable_fraction = 0.7;
};

/// Inference result with coverage accounting.
struct fh_result {
    std::vector<fh_field> fields;
    std::uint64_t typed_bytes = 0;
    std::uint64_t total_bytes = 0;

    double coverage() const {
        return total_bytes > 0
                   ? static_cast<double>(typed_bytes) / static_cast<double>(total_bytes)
                   : 0.0;
    }
};

/// Run FieldHunter over a message set.
fh_result infer(const std::vector<fh_message>& messages, const fh_options& options = {});

}  // namespace ftc::fieldhunter
