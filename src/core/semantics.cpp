#include "core/semantics.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/check.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ftc::core {

namespace {

/// Numeric value of a segment under one endianness, if it is narrow enough.
std::optional<std::uint64_t> numeric_value(byte_view bytes, bool big_endian,
                                           std::size_t max_width) {
    if (bytes.empty() || bytes.size() > max_width) {
        return std::nullopt;
    }
    std::uint64_t v = 0;
    if (big_endian) {
        for (std::uint8_t b : bytes) {
            v = (v << 8) | b;
        }
    } else {
        for (std::size_t i = bytes.size(); i > 0; --i) {
            v = (v << 8) | bytes[i - 1];
        }
    }
    return v;
}

/// All (message_index, numeric value) observations of one cluster, ordered
/// by message index (trace order = time order for our captures).
struct observations {
    std::vector<double> values;
    std::vector<double> message_lengths;
    std::vector<std::size_t> message_indices;
};

observations collect(const std::vector<byte_vector>& messages, const pipeline_result& result,
                     const std::vector<std::size_t>& members, bool big_endian,
                     std::size_t max_width) {
    observations out;
    for (const std::size_t value_idx : members) {
        const auto v =
            numeric_value(byte_view{result.unique.values[value_idx]}, big_endian, max_width);
        if (!v) {
            continue;
        }
        for (const segmentation::segment& occ : result.unique.occurrences[value_idx]) {
            out.values.push_back(static_cast<double>(*v));
            out.message_lengths.push_back(
                static_cast<double>(messages[occ.message_index].size()));
            out.message_indices.push_back(occ.message_index);
        }
    }
    // Order by trace position for the counter rule.
    std::vector<std::size_t> order(out.values.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return out.message_indices[a] < out.message_indices[b];
    });
    observations sorted;
    for (const std::size_t i : order) {
        sorted.values.push_back(out.values[i]);
        sorted.message_lengths.push_back(out.message_lengths[i]);
        sorted.message_indices.push_back(out.message_indices[i]);
    }
    return sorted;
}

}  // namespace

const char* to_string(semantic_role role) {
    switch (role) {
        case semantic_role::length_field: return "length field";
        case semantic_role::counter_field: return "counter field";
        case semantic_role::constant_field: return "constant";
        case semantic_role::echo_field: return "echoed value";
    }
    return "?";
}

std::vector<semantic_tag> deduce_semantics(const std::vector<byte_vector>& messages,
                                           const pipeline_result& result,
                                           const semantics_options& options) {
    std::vector<semantic_tag> tags;
    const auto clusters = result.final_labels.members();

    for (std::size_t c = 0; c < clusters.size(); ++c) {
        const std::vector<std::size_t>& members = clusters[c];
        if (members.empty()) {
            continue;
        }
        std::size_t occurrences = 0;
        for (const std::size_t idx : members) {
            occurrences += result.unique.occurrence_count(idx);
        }
        if (occurrences < options.min_occurrences) {
            continue;
        }

        // Rule: constant field — one value, many occurrences.
        if (members.size() == 1) {
            semantic_tag tag;
            tag.cluster_id = static_cast<int>(c);
            tag.role = semantic_role::constant_field;
            tag.confidence = 1.0;
            tag.detail = message("one value in ", occurrences, " occurrences");
            tags.push_back(std::move(tag));
            continue;
        }

        // The remaining rules read *where* each value occurred (message
        // index per occurrence); a memory-degraded run kept only counts,
        // so they gracefully sit out — a reduced but valid deduction set.
        if (result.unique.occurrences_elided) {
            continue;
        }

        bool tagged = false;
        for (const bool big_endian : {true, false}) {
            const observations obs =
                collect(messages, result, members, big_endian, options.max_numeric_width);
            if (obs.values.size() < options.min_occurrences) {
                continue;
            }

            // Rule: length field — value tracks the carrying message's size.
            if (stddev(obs.values) > 0.0 && stddev(obs.message_lengths) > 0.0) {
                const double rho = pearson(obs.values, obs.message_lengths);
                if (rho >= options.min_length_correlation) {
                    semantic_tag tag;
                    tag.cluster_id = static_cast<int>(c);
                    tag.role = semantic_role::length_field;
                    tag.confidence = rho;
                    tag.big_endian = big_endian;
                    tag.detail = message("value/length correlation r=", format_fixed(rho, 2),
                                         big_endian ? " (big-endian)" : " (little-endian)");
                    tags.push_back(std::move(tag));
                    tagged = true;
                    break;
                }
            }

            // Rule: counter field — values non-decreasing in trace order.
            std::size_t in_order = 0;
            std::size_t pairs = 0;
            bool any_increase = false;
            for (std::size_t i = 1; i < obs.values.size(); ++i) {
                ++pairs;
                if (obs.values[i] >= obs.values[i - 1]) {
                    ++in_order;
                    any_increase = any_increase || obs.values[i] > obs.values[i - 1];
                }
            }
            if (pairs >= options.min_occurrences - 1 && any_increase) {
                const double monotonicity =
                    static_cast<double>(in_order) / static_cast<double>(pairs);
                if (monotonicity >= options.min_counter_monotonicity) {
                    semantic_tag tag;
                    tag.cluster_id = static_cast<int>(c);
                    tag.role = semantic_role::counter_field;
                    tag.confidence = monotonicity;
                    tag.big_endian = big_endian;
                    tag.detail =
                        message(format_fixed(100.0 * monotonicity, 0),
                                "% of consecutive occurrences in increasing order",
                                big_endian ? " (big-endian)" : " (little-endian)");
                    tags.push_back(std::move(tag));
                    tagged = true;
                    break;
                }
            }
        }
        if (tagged) {
            continue;
        }

        // Rule: echoed value — the same values recur in nearby messages
        // (request/response echo like transaction ids or names).
        std::size_t echo_values = 0;
        std::size_t multi_values = 0;
        for (const std::size_t idx : members) {
            const auto& occs = result.unique.occurrences[idx];
            if (occs.size() < 2) {
                continue;
            }
            ++multi_values;
            std::set<std::size_t> msgs;
            for (const auto& occ : occs) {
                msgs.insert(occ.message_index);
            }
            if (msgs.size() < 2) {
                continue;
            }
            // Close together: the span of messages carrying this value is
            // much smaller than the trace.
            const std::size_t span = *msgs.rbegin() - *msgs.begin();
            if (span <= std::max<std::size_t>(4, messages.size() / 16)) {
                ++echo_values;
            }
        }
        if (multi_values >= 3 && 2 * echo_values >= multi_values) {
            semantic_tag tag;
            tag.cluster_id = static_cast<int>(c);
            tag.role = semantic_role::echo_field;
            tag.confidence = static_cast<double>(echo_values) /
                             static_cast<double>(multi_values);
            tag.detail = message(echo_values, " of ", multi_values,
                                 " repeated values recur within a short message window");
            tags.push_back(std::move(tag));
        }
    }
    return tags;
}

std::string render_semantics(const std::vector<semantic_tag>& tags) {
    if (tags.empty()) {
        return "no semantic roles deduced\n";
    }
    std::string out;
    for (const semantic_tag& tag : tags) {
        out += message("cluster ", tag.cluster_id, ": ", to_string(tag.role), " (confidence ",
                       format_fixed(tag.confidence, 2), "; ", tag.detail, ")\n");
    }
    return out;
}

}  // namespace ftc::core
