#include "core/report.hpp"

#include <algorithm>

#include "util/hex.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ftc::core {

std::string cluster_summary::kind_hint() const {
    // Encoded text fields (DNS labels, length-prefixed strings) carry a few
    // structural non-printable bytes, so "mostly printable" is the signal.
    if (printable_fraction > 0.75) {
        return "chars";
    }
    if (unique_values == 1 || (numeric_valid && numeric_min == numeric_max)) {
        return "constant";
    }
    if (mean_entropy > 7.0 && max_length >= 8) {
        return "high-entropy";
    }
    if (numeric_valid) {
        return "numeric" + std::to_string(min_length * 8);
    }
    return "opaque";
}

std::vector<cluster_summary> summarize_clusters(const pipeline_result& result) {
    std::vector<cluster_summary> out;
    const auto members = result.final_labels.members();
    for (std::size_t c = 0; c < members.size(); ++c) {
        if (members[c].empty()) {
            continue;
        }
        cluster_summary s;
        s.cluster_id = static_cast<int>(c);
        s.unique_values = members[c].size();
        s.min_length = SIZE_MAX;
        std::size_t printable = 0;
        std::size_t total_bytes = 0;
        std::vector<double> entropies;
        bool fixed_width = true;
        std::size_t width = 0;
        for (const std::size_t idx : members[c]) {
            const byte_vector& value = result.unique.values[idx];
            s.occurrences += result.unique.occurrence_count(idx);
            s.min_length = std::min(s.min_length, value.size());
            s.max_length = std::max(s.max_length, value.size());
            if (width == 0) {
                width = value.size();
            } else if (width != value.size()) {
                fixed_width = false;
            }
            for (std::uint8_t b : value) {
                printable += is_printable_ascii(b) ? 1 : 0;
            }
            total_bytes += value.size();
            entropies.push_back(byte_entropy(value));
        }
        s.printable_fraction =
            total_bytes > 0 ? static_cast<double>(printable) / static_cast<double>(total_bytes)
                            : 0.0;
        s.mean_entropy = mean(entropies);

        // Shared prefix across all values.
        const byte_vector& first = result.unique.values[members[c].front()];
        std::size_t prefix = first.size();
        for (const std::size_t idx : members[c]) {
            const byte_vector& value = result.unique.values[idx];
            std::size_t p = 0;
            const std::size_t limit = std::min(prefix, value.size());
            while (p < limit && value[p] == first[p]) {
                ++p;
            }
            prefix = p;
        }
        s.common_prefix = prefix;

        // Numeric interpretation for fixed widths up to 8 bytes.
        if (fixed_width && width >= 1 && width <= 8) {
            s.numeric_valid = true;
            s.numeric_min = UINT64_MAX;
            s.numeric_max = 0;
            for (const std::size_t idx : members[c]) {
                const byte_vector& value = result.unique.values[idx];
                std::uint64_t v = 0;
                for (std::uint8_t b : value) {
                    v = (v << 8) | b;
                }
                s.numeric_min = std::min(s.numeric_min, v);
                s.numeric_max = std::max(s.numeric_max, v);
            }
        }

        for (std::size_t e = 0; e < std::min<std::size_t>(4, members[c].size()); ++e) {
            s.examples.push_back(to_hex(result.unique.values[members[c][e]]));
        }
        out.push_back(std::move(s));
    }
    return out;
}

std::string render_quarantine(const diag::error_sink& sink, std::size_t max_entries) {
    if (sink.empty()) {
        return {};
    }
    std::string out = "ingestion: " + sink.summary() + "\n";
    text_table table({"category", "severity", "record", "offset", "detail"});
    table.set_align(0, align::left);
    table.set_align(1, align::left);
    table.set_align(4, align::left);
    const auto& entries = sink.diagnostics();
    const std::size_t shown = std::min(max_entries, entries.size());
    for (std::size_t i = 0; i < shown; ++i) {
        const diag::diagnostic& d = entries[i];
        table.add_row({std::string{diag::category_name(d.cat)},
                       std::string{diag::severity_name(d.sev)},
                       std::to_string(d.record_index), std::to_string(d.byte_offset),
                       d.detail});
    }
    out += table.render();
    if (shown < entries.size()) {
        out += "  ... " + std::to_string(entries.size() - shown) + " more\n";
    }
    return out;
}

std::string render_report(const std::vector<cluster_summary>& summaries) {
    text_table table({"cluster", "kind", "uniq", "occur", "len", "printable", "entropy",
                      "prefix"});
    table.set_align(1, align::left);
    for (const cluster_summary& s : summaries) {
        const std::string len = s.min_length == s.max_length
                                    ? std::to_string(s.min_length)
                                    : std::to_string(s.min_length) + "-" +
                                          std::to_string(s.max_length);
        table.add_row({std::to_string(s.cluster_id), s.kind_hint(),
                       std::to_string(s.unique_values), std::to_string(s.occurrences), len,
                       format_fixed(s.printable_fraction, 2), format_fixed(s.mean_entropy, 1),
                       std::to_string(s.common_prefix)});
    }
    std::string out = table.render();
    out += "\nexamples:\n";
    for (const cluster_summary& s : summaries) {
        out += "  cluster " + std::to_string(s.cluster_id) + ":";
        for (const std::string& e : s.examples) {
            out += ' ';
            out += e;
        }
        out += '\n';
    }
    return out;
}

}  // namespace ftc::core
