/// \file valuegen.hpp
/// Value-generation models learned from cluster contents — the paper's
/// second future-work item (Sec. V): "automatically learn value generation
/// rules from the cluster contents ... to predict probable field values for
/// fuzzing and misbehavior detection".
///
/// For each pseudo data type the model captures, per value position, the
/// byte distribution observed in the cluster, plus the length distribution.
/// Sampling the model produces *plausible* field values (static prefixes
/// stay intact, variable positions draw from the observed byte population);
/// scoring a value yields a plausibility measure usable for misbehavior
/// detection (a value that the model considers near-impossible is an
/// anomaly).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/pipeline.hpp"
#include "util/rng.hpp"

namespace ftc::core {

/// Per-position byte statistics of one cluster.
class value_model {
public:
    /// Learn a model from the given values (all values of one cluster).
    /// Throws ftc::precondition_error on empty input.
    explicit value_model(const std::vector<byte_vector>& values);

    /// Sample a new value: pick an observed length, then per position draw
    /// from that position's byte distribution. Constant positions always
    /// reproduce their byte.
    byte_vector sample(rng& rand) const;

    /// Mean per-byte log2-likelihood of \p value under the model, in
    /// [-infinity, 0]; higher is more plausible. Unseen bytes at a position
    /// are smoothed with a small floor rather than scored impossible.
    double log_likelihood(byte_view value) const;

    /// True if every training value has the same length.
    bool fixed_length() const { return lengths_.size() == 1; }

    /// Number of leading positions that are constant across training values.
    std::size_t constant_prefix() const { return constant_prefix_; }

    /// Longest training length.
    std::size_t max_length() const { return positions_.size(); }

private:
    struct position_stats {
        std::array<std::uint32_t, 256> counts{};
        std::uint32_t total = 0;
    };

    std::vector<position_stats> positions_;  ///< indexed by byte position
    std::vector<std::size_t> lengths_;       ///< distinct observed lengths
    std::vector<std::uint32_t> length_counts_;
    std::size_t constant_prefix_ = 0;
};

/// A learned model per final cluster of a pipeline run.
struct cluster_value_models {
    std::vector<int> cluster_ids;
    std::vector<value_model> models;
};

/// Learn value models for every non-empty final cluster.
cluster_value_models learn_value_models(const pipeline_result& result);

/// Misbehavior check: score \p value against cluster \p cluster_id's model.
/// Returns the mean per-byte log2-likelihood, or nullopt for unknown ids.
std::optional<double> score_against_cluster(const cluster_value_models& models,
                                            int cluster_id, byte_view value);

}  // namespace ftc::core
