/// \file pipeline.hpp
/// The paper's end-to-end method (Fig. 1): preprocess -> segment ->
/// dissimilarity -> auto-configuration -> DBSCAN -> refinement, producing
/// clusters of *pseudo data types*.
///
/// This is the primary public entry point of ftclust:
///
/// \code
///   auto trace    = ftc::protocols::generate_trace("NTP", 1000, seed);
///   auto messages = ftc::segmentation::message_bytes(trace);
///   auto result   = ftc::core::analyze(messages,
///                                      ftc::segmentation::nemesys_segmenter{},
///                                      {});
///   for (auto& cluster : result.clusters()) { ... }
/// \endcode
#pragma once

#include <optional>

#include "cluster/autoconf.hpp"
#include "cluster/refine.hpp"
#include "dissim/matrix.hpp"
#include "segmentation/segment.hpp"

namespace ftc::core {

/// Options of the full analysis pipeline.
struct pipeline_options {
    /// Minimum segment length considered for clustering (paper: 2 — one-byte
    /// segments are excluded).
    std::size_t min_segment_length = 2;
    /// Epsilon auto-configuration tunables.
    cluster::autoconf_options autoconf;
    /// Refinement thresholds.
    cluster::refine_options refine;
    /// Run the merge/split refinement stage (paper Sec. III-F).
    bool apply_refinement = true;
    /// Oversized-cluster guard threshold (paper: 0.6).
    double oversize_fraction = 0.6;
    /// Wall-clock budget in seconds; 0 = unlimited. Exceeding it raises
    /// ftc::budget_exceeded_error (the paper's "fails") whose
    /// partial_report() names the stage reached and the volume processed.
    double budget_seconds = 0.0;
    /// Cap on the total number of segments entering the dissimilarity
    /// stage; 0 = unlimited. Crossing it raises ftc::budget_exceeded_error
    /// before the quadratic stages can blow up memory.
    std::size_t max_segments = 0;
    /// Cap on total message payload bytes; 0 = unlimited.
    std::size_t max_bytes = 0;
    /// Worker threads for the dissimilarity-matrix, k-NN and epsilon-sweep
    /// hot paths: 0 = one lane per hardware thread, 1 = the exact legacy
    /// serial path. The parallel stages are pure fan-outs over independent
    /// work items, so clustering output is bitwise identical at any
    /// setting (see tests/test_dissim_parallel_determinism.cpp).
    std::size_t threads = 0;
};

/// Everything the pipeline produced, stage by stage.
struct pipeline_result {
    segmentation::message_segments segments;      ///< segmenter output
    dissim::unique_segments unique;               ///< >=2-byte unique values
    cluster::auto_cluster_result clustering;      ///< auto-config + DBSCAN
    cluster::refine_result refinement;            ///< merge/split audit trail
    cluster::cluster_labels final_labels;         ///< labels after refinement
    double elapsed_seconds = 0.0;

    /// Member indices (into unique.values) per final cluster.
    std::vector<std::vector<std::size_t>> clusters() const {
        return final_labels.members();
    }
};

/// Run the pipeline on raw messages with the given segmenter.
pipeline_result analyze(const std::vector<byte_vector>& messages,
                        const segmentation::segmenter& segmenter,
                        const pipeline_options& options = {});

/// Run the pipeline on a pre-computed segmentation (e.g. ground truth).
pipeline_result analyze_segments(const std::vector<byte_vector>& messages,
                                 segmentation::message_segments segments,
                                 const pipeline_options& options = {});

}  // namespace ftc::core
