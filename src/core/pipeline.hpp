/// \file pipeline.hpp
/// The paper's end-to-end method (Fig. 1): preprocess -> segment ->
/// dissimilarity -> auto-configuration -> DBSCAN -> refinement, producing
/// clusters of *pseudo data types*.
///
/// This is the primary public entry point of ftclust:
///
/// \code
///   auto trace    = ftc::protocols::generate_trace("NTP", 1000, seed);
///   auto messages = ftc::segmentation::message_bytes(trace);
///   auto result   = ftc::core::analyze(messages,
///                                      ftc::segmentation::nemesys_segmenter{},
///                                      {});
///   for (auto& cluster : result.clusters()) { ... }
/// \endcode
#pragma once

#include <optional>

#include "cluster/autoconf.hpp"
#include "cluster/refine.hpp"
#include "dissim/matrix.hpp"
#include "dissim/neighborhood.hpp"
#include "segmentation/segment.hpp"

namespace ftc::core {

/// Stage-boundary observer: the pipeline announces each stage output the
/// moment it is fully materialized, before the next stage starts. This is
/// the hook the checkpoint subsystem (ftc::ckpt::checkpoint_manager)
/// implements to persist crash-resilient snapshots; observers must not
/// mutate the passed state. on_* fires only for stages the pipeline
/// actually *computed* — stages restored from a pipeline_seed are not
/// re-announced (their snapshot already exists).
class stage_observer {
public:
    virtual ~stage_observer() = default;

    /// Segmentation finished: \p segments is a valid segmentation of
    /// \p messages.
    virtual void on_segments(const std::vector<byte_vector>& /*messages*/,
                             const segmentation::message_segments& /*segments*/) {}

    /// Dissimilarity stage finished: condensed unique segments, the full
    /// pairwise matrix, and the batched k-NN curves
    /// (kth_nn_many(cluster::knn_k_max(n))) the epsilon sweep consumes.
    /// Fires only in dense mode; sparse builds announce on_neighbors.
    virtual void on_matrix(const dissim::unique_segments& /*unique*/,
                           const dissim::dissimilarity_matrix& /*matrix*/,
                           const std::vector<std::vector<double>>& /*knn_curves*/) {}

    /// Dissimilarity stage finished in sparse mode: condensed unique
    /// segments, the capped neighbor lists (the persistable substrate of
    /// the sparse source), and the batched k-NN curves. The dense/sparse
    /// split mirrors what each mode materializes — an observer persisting
    /// snapshots stores the matrix in one case and the lists in the other,
    /// and either snapshot resumes into a bitwise-identical run.
    virtual void on_neighbors(const dissim::unique_segments& /*unique*/,
                              const dissim::capped_neighbors& /*neighbors*/,
                              const std::vector<std::vector<double>>& /*knn_curves*/) {}

    /// Opt into per-tile matrix announcements: when true and the matrix is
    /// built in the memory-lean triangular layout, the pipeline tiles the
    /// construction and fires on_matrix_tile for every completed tile, so
    /// an observer can spill finished cells incrementally instead of
    /// buffering the whole triangle again at on_matrix time.
    virtual bool wants_matrix_tiles() const { return false; }

    /// One completed tile of a tiled triangular build: upper-triangle rows
    /// [row_begin, row_end) as a contiguous, final cell run (see
    /// dissim::tile_sink). Fires before on_matrix; tiles cover the triangle
    /// exactly, in row order.
    virtual void on_matrix_tile(std::size_t /*row_begin*/, std::size_t /*row_end*/,
                                std::size_t /*n*/, std::span<const float> /*cells*/) {}

    /// Auto-configuration + DBSCAN (incl. both guards) finished.
    virtual void on_clustering(const cluster::auto_cluster_result& /*clustering*/) {}

    /// The run is unwinding on a budget trip or stop request; \p stage is
    /// the stage that was running. Completed stages were already announced,
    /// so an observer persisting snapshots only needs to record the fact.
    virtual void on_interrupted(const char* /*stage*/) {}
};

/// Precomputed stage outputs a resumed run starts from (produced by
/// ftc::ckpt::checkpoint_manager::load, or by tests). Each present stage is
/// used verbatim and its computation skipped; absent stages are computed as
/// usual. Consistency contract: `matrix` requires `unique` (it indexes its
/// values), `knn_curves` and `clustering` require `matrix`. Because every
/// stage is deterministic, a run seeded with any prefix of a previous run's
/// outputs produces bitwise-identical final results.
struct pipeline_seed {
    std::optional<segmentation::message_segments> segments;
    std::optional<dissim::unique_segments> unique;
    std::optional<dissim::dissimilarity_matrix> matrix;
    /// Sparse-mode dissimilarity snapshot (capped neighbor lists). Requires
    /// `unique`; when both `matrix` and `neighbors` are present the matrix
    /// wins (it carries strictly more information). Adopted regardless of
    /// pipeline_options::neighborhood — the modes are result-identical, so
    /// a snapshot from either is a valid seed for both.
    std::optional<dissim::capped_neighbors> neighbors;
    std::optional<std::vector<std::vector<double>>> knn_curves;
    std::optional<cluster::auto_cluster_result> clustering;

    bool empty() const {
        return !segments.has_value() && !unique.has_value() && !matrix.has_value() &&
               !neighbors.has_value() && !knn_curves.has_value() && !clustering.has_value();
    }
};

/// Options of the full analysis pipeline.
struct pipeline_options {
    /// Minimum segment length considered for clustering (paper: 2 — one-byte
    /// segments are excluded).
    std::size_t min_segment_length = 2;
    /// Epsilon auto-configuration tunables.
    cluster::autoconf_options autoconf;
    /// Refinement thresholds.
    cluster::refine_options refine;
    /// Run the merge/split refinement stage (paper Sec. III-F).
    bool apply_refinement = true;
    /// Oversized-cluster guard threshold (paper: 0.6).
    double oversize_fraction = 0.6;
    /// Wall-clock budget in seconds; 0 = unlimited. Exceeding it raises
    /// ftc::budget_exceeded_error (the paper's "fails") whose
    /// partial_report() names the stage reached and the volume processed.
    double budget_seconds = 0.0;
    /// Cap on the total number of segments entering the dissimilarity
    /// stage; 0 = unlimited. Crossing it raises ftc::budget_exceeded_error
    /// before the quadratic stages can blow up memory.
    std::size_t max_segments = 0;
    /// Cap on total message payload bytes; 0 = unlimited.
    std::size_t max_bytes = 0;
    /// Cap on the tracked heap footprint in bytes; 0 = unlimited. Enforced
    /// by installing a ftc::mem::governor for the run (unless the caller
    /// already installed one — the innermost governor wins). Under
    /// projected pressure the pipeline degrades instead of dying: weighted
    /// condensation (occurrence lists elided, counts kept), then the
    /// triangular tiled matrix layout — both provably result-identical —
    /// and only when even the degraded footprint cannot fit does the run
    /// end in ftc::memory_budget_exceeded_error with a partial-progress
    /// report (DESIGN.md §11). A limit never changes clustering output,
    /// only how (or whether) the run reaches it.
    std::size_t max_memory = 0;
    /// Which epsilon-neighborhood construction feeds DBSCAN and autoconf
    /// (DESIGN.md §13): dense always builds the pairwise matrix, sparse
    /// always builds capped neighbor lists, auto picks sparse at scale
    /// (>= dissim::kSparseAutoUniques unique segments) and dense below.
    /// Result-neutral by construction — byte-identical cluster reports
    /// either way — so it is NOT part of the checkpoint fingerprint,
    /// exactly like the thread count.
    dissim::neighborhood_mode neighborhood = dissim::neighborhood_mode::auto_;
    /// Worker threads for the dissimilarity-matrix, k-NN and epsilon-sweep
    /// hot paths: 0 = one lane per hardware thread, 1 = the exact legacy
    /// serial path. The parallel stages are pure fan-outs over independent
    /// work items, so clustering output is bitwise identical at any
    /// setting (see tests/test_dissim_parallel_determinism.cpp).
    std::size_t threads = 0;
    /// Stage-boundary observer (checkpointing); nullptr = none. Not owned;
    /// must outlive the run. Observing a run does not change its result.
    stage_observer* observer = nullptr;
};

/// Everything the pipeline produced, stage by stage.
struct pipeline_result {
    segmentation::message_segments segments;      ///< segmenter output
    dissim::unique_segments unique;               ///< >=2-byte unique values
    cluster::auto_cluster_result clustering;      ///< auto-config + DBSCAN
    cluster::refine_result refinement;            ///< merge/split audit trail
    cluster::cluster_labels final_labels;         ///< labels after refinement
    double elapsed_seconds = 0.0;

    /// Member indices (into unique.values) per final cluster.
    std::vector<std::vector<std::size_t>> clusters() const {
        return final_labels.members();
    }
};

/// Run the pipeline on raw messages with the given segmenter.
pipeline_result analyze(const std::vector<byte_vector>& messages,
                        const segmentation::segmenter& segmenter,
                        const pipeline_options& options = {});

/// Run the pipeline on a pre-computed segmentation (e.g. ground truth).
pipeline_result analyze_segments(const std::vector<byte_vector>& messages,
                                 segmentation::message_segments segments,
                                 const pipeline_options& options = {});

/// Run the pipeline starting from whatever stage outputs \p seed already
/// carries (checkpoint resume): present stages are adopted verbatim,
/// absent ones computed. \p segmenter may be null when seed.segments is
/// present; otherwise it performs the segmentation stage. analyze and
/// analyze_segments are thin wrappers over this entry point.
pipeline_result analyze_seeded(const std::vector<byte_vector>& messages,
                               const segmentation::segmenter* segmenter, pipeline_seed seed,
                               const pipeline_options& options = {});

}  // namespace ftc::core
