/// \file report.hpp
/// Analyst-facing cluster reports: pseudo data type summaries and value
/// domains (the follow-up analysis the paper envisions in Sec. III and V).
///
/// Clustering yields *pseudo data types* — groups of segments with the same
/// (unknown) type. The report characterizes each cluster so an analyst can
/// infer the semantics: value counts, length range, printable-character
/// share, entropy, shared prefix bytes, and the numeric value range for
/// fixed-width clusters. This also directly feeds fuzzing: the value domain
/// of a cluster bounds the mutations worth trying.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "util/diag.hpp"

namespace ftc::core {

/// Summary of one pseudo-data-type cluster.
struct cluster_summary {
    int cluster_id = 0;
    std::size_t unique_values = 0;
    std::size_t occurrences = 0;    ///< concrete segments across the trace
    std::size_t min_length = 0;
    std::size_t max_length = 0;
    double printable_fraction = 0.0;  ///< share of printable ASCII bytes
    double mean_entropy = 0.0;        ///< mean byte entropy of the values
    std::size_t common_prefix = 0;    ///< shared leading bytes of all values
    /// Numeric range interpretation (big-endian) for clusters whose values
    /// all have the same width of at most 8 bytes; 0/0 otherwise.
    std::uint64_t numeric_min = 0;
    std::uint64_t numeric_max = 0;
    bool numeric_valid = false;
    std::vector<std::string> examples;  ///< up to 4 hex-rendered values

    /// Heuristic human label: "chars", "constant", "numeric<width>",
    /// "high-entropy", or "opaque".
    std::string kind_hint() const;
};

/// Summarize every final cluster of a pipeline result.
std::vector<cluster_summary> summarize_clusters(const pipeline_result& result);

/// Render summaries as an aligned text table (one row per cluster) followed
/// by example values.
std::string render_report(const std::vector<cluster_summary>& summaries);

/// Render ingestion diagnostics as a quarantine report: the sink's one-line
/// rollup, then a table of the first \p max_entries diagnostics (category,
/// severity, record index, byte offset, detail). Returns the empty string
/// when the sink holds no diagnostics, so callers can append it
/// unconditionally.
std::string render_quarantine(const diag::error_sink& sink, std::size_t max_entries = 12);

}  // namespace ftc::core
