#include "core/pipeline.hpp"

#include "obs/obs.hpp"
#include "util/budget.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace ftc::core {

namespace {

resource_budget make_budget(const pipeline_options& options) {
    resource_limits limits;
    limits.deadline_seconds = options.budget_seconds;
    limits.max_segments = options.max_segments;
    limits.max_bytes = options.max_bytes;
    return resource_budget(limits);
}

/// Rethrow \p e with a partial-progress report naming the pipeline stage
/// that was running and how much work had been done by then. The dynamic
/// type is preserved: a stop request must still surface as
/// ftc::interrupted_error so callers can tell it from a tripped deadline.
[[noreturn]] void rethrow_with_progress(const budget_exceeded_error& e, const char* stage,
                                        const resource_budget& budget,
                                        std::size_t unique_segments) {
    // The counters in this report are the same values the budget already
    // published into the obs registry at charge time (see
    // resource_budget::charge_*); mirror the stage marker there too so the
    // manifest and this message describe one run from one source.
    obs::gauge_set("pipeline.unique_segments", static_cast<double>(unique_segments));
    std::string partial = e.partial_report();
    if (partial.empty()) {
        partial = budget.progress();
    }
    partial += message("; reached stage ", stage);
    if (unique_segments > 0) {
        partial += message(" with ", unique_segments, " unique segments");
    }
    if (dynamic_cast<const interrupted_error*>(&e) != nullptr) {
        throw interrupted_error(e.what(), std::move(partial));
    }
    throw budget_exceeded_error(e.what(), std::move(partial));
}

pipeline_result analyze_seeded_budgeted(const std::vector<byte_vector>& messages,
                                        const segmentation::segmenter* segmenter,
                                        pipeline_seed seed, const pipeline_options& options,
                                        resource_budget& budget) {
    expects(!messages.empty(), "analyze: empty trace");
    const stopwatch watch;
    const deadline& dl = budget.wall_clock();
    stage_observer* hook = options.observer;

    pipeline_result result;

    const char* stage = "segmentation";
    try {
        // Segmentation: adopt the seeded segmentation, or run the segmenter.
        if (seed.segments.has_value()) {
            result.segments = std::move(*seed.segments);
        } else {
            expects(segmenter != nullptr,
                    "analyze_seeded: need a segmenter when no segmentation is seeded");
            obs::span sp("segmentation");
            sp.count("messages", messages.size());
            result.segments = segmenter->run(messages, dl);
            if (hook != nullptr) {
                hook->on_segments(messages, result.segments);
            }
        }

        stage = "dissimilarity";
        std::size_t total_bytes = 0;
        std::size_t total_segments = 0;
        for (const byte_vector& m : messages) {
            total_bytes += m.size();
        }
        for (const auto& segs : result.segments) {
            total_segments += segs.size();
        }
        budget.charge_bytes(total_bytes, "pipeline");
        budget.charge_segments(total_segments, "pipeline");

        // Dissimilarity stage: unique >=2-byte segments, pairwise matrix,
        // and (when observed or seeded) the batched k-NN curves the epsilon
        // sweep consumes — computed once here and handed both to the
        // observer's snapshot and to auto-configuration below, so a
        // checkpointed run does the extraction exactly as often as a plain
        // one.
        const std::size_t threads = util::resolve_threads(options.threads);
        std::optional<dissim::dissimilarity_matrix> matrix_storage;
        std::vector<std::vector<double>> knn_curves;
        if (seed.unique.has_value() && seed.matrix.has_value()) {
            result.unique = std::move(*seed.unique);
            matrix_storage.emplace(std::move(*seed.matrix));
            if (seed.knn_curves.has_value()) {
                knn_curves = std::move(*seed.knn_curves);
            }
            obs::gauge_set("pipeline.unique_segments",
                           static_cast<double>(result.unique.size()));
        } else {
            obs::span sp("dissimilarity");
            result.unique =
                dissim::condense(messages, result.segments, options.min_segment_length);
            expects(result.unique.size() >= 3,
                    "analyze: fewer than 3 unique segments; trace too uniform to cluster");
            sp.count("segments", total_segments);
            sp.count("unique_segments", result.unique.size());
            sp.count("pairs", result.unique.size() * (result.unique.size() - 1) / 2);
            obs::gauge_set("pipeline.unique_segments",
                           static_cast<double>(result.unique.size()));
            matrix_storage.emplace(result.unique.values, dl, threads);
            if (hook != nullptr) {
                knn_curves = matrix_storage->kth_nn_many(
                    cluster::knn_k_max(result.unique.size()), threads);
                hook->on_matrix(result.unique, *matrix_storage, knn_curves);
            }
        }
        const dissim::dissimilarity_matrix& matrix = *matrix_storage;

        // Auto-configuration + DBSCAN with the oversized-cluster guard.
        // pipeline_options::threads governs the whole run, including the
        // epsilon sweep inside auto-configuration.
        stage = "clustering";
        budget.check("pipeline clustering");
        if (seed.clustering.has_value()) {
            expects(seed.clustering->labels.labels.size() == result.unique.size(),
                    "analyze_seeded: seeded clustering does not label the unique segments");
            result.clustering = std::move(*seed.clustering);
        } else {
            obs::span sp("clustering");
            cluster::autoconf_options autoconf = options.autoconf;
            autoconf.threads = threads;
            autoconf.precomputed_knn = knn_curves.empty() ? nullptr : &knn_curves;
            result.clustering =
                cluster::auto_cluster(matrix, autoconf, options.oversize_fraction);
            if (sp.enabled()) {
                sp.count("clusters", result.clustering.labels.cluster_count);
                sp.count("noise", result.clustering.labels.noise_count());
                sp.count("reconfigurations", result.clustering.reconfigurations);
            }
            if (hook != nullptr) {
                hook->on_clustering(result.clustering);
            }
        }

        // Refinement. After the oversized-cluster guard walked the epsilon
        // down, merging must not re-create an oversized cluster.
        stage = "refinement";
        budget.check("pipeline refinement");
        {
            obs::span sp("refinement");
            if (options.apply_refinement) {
                std::vector<std::size_t> occurrence_counts;
                occurrence_counts.reserve(result.unique.size());
                for (const auto& occs : result.unique.occurrences) {
                    occurrence_counts.push_back(occs.size());
                }
                cluster::refine_options refine_opts = options.refine;
                if (result.clustering.reclustered && refine_opts.max_merged_fraction <= 0.0) {
                    refine_opts.max_merged_fraction = options.oversize_fraction;
                }
                result.refinement = cluster::refine(matrix, result.clustering.labels,
                                                    occurrence_counts, refine_opts);
                result.final_labels = result.refinement.labels;
            } else {
                result.final_labels = result.clustering.labels;
            }
            sp.count("clusters", result.final_labels.cluster_count);
            sp.count("merges", result.refinement.merges.size());
            sp.count("splits", result.refinement.splits.size());
        }
    } catch (const budget_exceeded_error& e) {
        // Completed stages were announced (and checkpointed) as they
        // finished; tell the observer which stage the trip lost so it can
        // mark its manifest interrupted before the run unwinds.
        if (hook != nullptr) {
            hook->on_interrupted(stage);
        }
        rethrow_with_progress(e, stage, budget, result.unique.size());
    }

    result.elapsed_seconds = watch.elapsed_seconds();
    return result;
}

}  // namespace

pipeline_result analyze_segments(const std::vector<byte_vector>& messages,
                                 segmentation::message_segments segments,
                                 const pipeline_options& options) {
    pipeline_seed seed;
    seed.segments = std::move(segments);
    return analyze_seeded(messages, nullptr, std::move(seed), options);
}

pipeline_result analyze(const std::vector<byte_vector>& messages,
                        const segmentation::segmenter& segmenter,
                        const pipeline_options& options) {
    return analyze_seeded(messages, &segmenter, {}, options);
}

pipeline_result analyze_seeded(const std::vector<byte_vector>& messages,
                               const segmentation::segmenter* segmenter, pipeline_seed seed,
                               const pipeline_options& options) {
    resource_budget budget = make_budget(options);
    return analyze_seeded_budgeted(messages, segmenter, std::move(seed), options, budget);
}

}  // namespace ftc::core
