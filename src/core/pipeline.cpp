#include "core/pipeline.hpp"

#include <optional>

#include "dissim/sparse.hpp"
#include "mem/mem.hpp"
#include "obs/obs.hpp"
#include "util/budget.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace ftc::core {

namespace {

resource_budget make_budget(const pipeline_options& options) {
    resource_limits limits;
    limits.deadline_seconds = options.budget_seconds;
    limits.max_segments = options.max_segments;
    limits.max_bytes = options.max_bytes;
    limits.max_memory = options.max_memory;
    return resource_budget(limits);
}

/// Rethrow \p e with a partial-progress report naming the pipeline stage
/// that was running and how much work had been done by then. The dynamic
/// type is preserved: a stop request must still surface as
/// ftc::interrupted_error so callers can tell it from a tripped deadline.
[[noreturn]] void rethrow_with_progress(const budget_exceeded_error& e, const char* stage,
                                        const resource_budget& budget,
                                        std::size_t unique_segments) {
    // The counters in this report are the same values the budget already
    // published into the obs registry at charge time (see
    // resource_budget::charge_*); mirror the stage marker there too so the
    // manifest and this message describe one run from one source.
    obs::gauge_set("pipeline.unique_segments", static_cast<double>(unique_segments));
    std::string partial = e.partial_report();
    if (partial.empty()) {
        partial = budget.progress();
    }
    partial += message("; reached stage ", stage);
    if (unique_segments > 0) {
        partial += message(" with ", unique_segments, " unique segments");
    }
    if (dynamic_cast<const interrupted_error*>(&e) != nullptr) {
        throw interrupted_error(e.what(), std::move(partial));
    }
    // Memory pressure keeps its own type too: the CLI maps it to the
    // memory-exceeded manifest status, and callers retrying with a larger
    // --max-memory need to tell it from a tripped deadline.
    if (dynamic_cast<const memory_budget_exceeded_error*>(&e) != nullptr) {
        throw memory_budget_exceeded_error(e.what(), std::move(partial));
    }
    throw budget_exceeded_error(e.what(), std::move(partial));
}

pipeline_result analyze_seeded_budgeted(const std::vector<byte_vector>& messages,
                                        const segmentation::segmenter* segmenter,
                                        pipeline_seed seed, const pipeline_options& options,
                                        resource_budget& budget) {
    expects(!messages.empty(), "analyze: empty trace");
    const stopwatch watch;
    const deadline& dl = budget.wall_clock();
    stage_observer* hook = options.observer;

    // The max_memory axis is enforced by a governor, not by charge calls on
    // the budget object: tracked allocations happen deep inside stages and
    // libraries, and the governor catches all of them. An already-active
    // governor (installed by the CLI, or a nesting caller) wins — the
    // innermost scope is the one the analyst configured most recently.
    std::optional<mem::governor> governor;
    if (options.max_memory > 0 && mem::governor::active() == nullptr) {
        governor.emplace(options.max_memory);
    }

    pipeline_result result;

    const char* stage = "segmentation";
    try {
        // Segmentation: adopt the seeded segmentation, or run the segmenter.
        if (seed.segments.has_value()) {
            result.segments = std::move(*seed.segments);
        } else {
            expects(segmenter != nullptr,
                    "analyze_seeded: need a segmenter when no segmentation is seeded");
            obs::span sp("segmentation");
            sp.count("messages", messages.size());
            result.segments = segmenter->run(messages, dl);
            if (hook != nullptr) {
                hook->on_segments(messages, result.segments);
            }
        }

        stage = "dissimilarity";
        std::size_t total_bytes = 0;
        std::size_t total_segments = 0;
        for (const byte_vector& m : messages) {
            total_bytes += m.size();
        }
        for (const auto& segs : result.segments) {
            total_segments += segs.size();
        }
        budget.charge_bytes(total_bytes, "pipeline");
        budget.charge_segments(total_segments, "pipeline");

        // Dissimilarity stage: unique >=2-byte segments, pairwise matrix,
        // and (when observed or seeded) the batched k-NN curves the epsilon
        // sweep consumes — computed once here and handed both to the
        // observer's snapshot and to auto-configuration below, so a
        // checkpointed run does the extraction exactly as often as a plain
        // one.
        const std::size_t threads = util::resolve_threads(options.threads);
        std::optional<dissim::dissimilarity_matrix> matrix_storage;
        std::optional<dissim::sparse_neighborhood> sparse_storage;
        std::vector<std::vector<double>> knn_curves;
        if (seed.unique.has_value() && seed.matrix.has_value()) {
            result.unique = std::move(*seed.unique);
            matrix_storage.emplace(std::move(*seed.matrix));
            if (seed.knn_curves.has_value()) {
                knn_curves = std::move(*seed.knn_curves);
            }
            obs::gauge_set("pipeline.unique_segments",
                           static_cast<double>(result.unique.size()));
        } else if (seed.unique.has_value() && seed.neighbors.has_value()) {
            // Sparse-mode snapshot: adopt the capped lists verbatim (the
            // adopt constructor revalidates shape; the ckpt decoder already
            // enforced the deep invariants). The adopted source serves the
            // same bits a fresh build would, so the resumed run is
            // byte-identical — regardless of the mode this run requested.
            result.unique = std::move(*seed.unique);
            sparse_storage.emplace(result.unique.values, std::move(*seed.neighbors));
            if (seed.knn_curves.has_value()) {
                knn_curves = std::move(*seed.knn_curves);
            }
            obs::gauge_set("pipeline.unique_segments",
                           static_cast<double>(result.unique.size()));
        } else {
            obs::span sp("dissimilarity");
            // Degradation rung 1 — weighted condensation. The full form
            // materializes one segment struct per concrete segment; project
            // that storage against the governor and, when it would not fit,
            // keep only per-value multiplicities. values (and therefore the
            // matrix and the clustering) are bitwise identical either way.
            const std::uint64_t occurrence_bytes =
                static_cast<std::uint64_t>(total_segments) * sizeof(segmentation::segment);
            const bool elide = mem::would_exceed(occurrence_bytes);
            result.unique =
                elide ? dissim::condense_weighted(messages, result.segments,
                                                  options.min_segment_length)
                      : dissim::condense(messages, result.segments,
                                         options.min_segment_length);
            expects(result.unique.size() >= 3,
                    "analyze: fewer than 3 unique segments; trace too uniform to cluster");
            sp.count("segments", total_segments);
            sp.count("unique_segments", result.unique.size());
            sp.count("pairs", result.unique.size() * (result.unique.size() - 1) / 2);
            sp.count("occurrences_elided", elide ? 1 : 0);
            obs::gauge_set("pipeline.unique_segments",
                           static_cast<double>(result.unique.size()));

            // Neighborhood mode: the sparse engine (rung 0 of the memory
            // ladder — it never allocates the O(n^2) matrix) when forced or
            // when auto crosses the scale threshold; the matrix below it.
            // Both produce byte-identical cluster reports (DESIGN.md §13),
            // so this choice moves cost, never results.
            const std::size_t n = result.unique.size();
            const bool use_sparse =
                options.neighborhood == dissim::neighborhood_mode::sparse ||
                (options.neighborhood == dissim::neighborhood_mode::auto_ &&
                 n >= dissim::kSparseAutoUniques);
            if (use_sparse) {
                dissim::sparse_build_options sopts;
                sopts.knn_cap = cluster::knn_k_max(n);
                sopts.threads = threads;
                sparse_storage.emplace(result.unique.values, sopts, dl);
                if (elide) {
                    obs::counter_add("mem.degrade.dedup_total", 1.0);
                }
                if (hook != nullptr) {
                    knn_curves = sparse_storage->kth_nn_many(cluster::knn_k_max(n), threads);
                    hook->on_neighbors(result.unique, sparse_storage->capped(), knn_curves);
                }
                mem::publish_gauges();
            } else {
                // Degradation rung 2 — triangular tiled matrix. When the dense
                // n*n layout would cross the budget, store the upper triangle
                // only (identical cells, half the bytes) and, under an observer
                // that spills tiles, bound crash-lost work to one tile. If even
                // the triangle cannot fit, its tracked allocation raises
                // memory_budget_exceeded_error — rung 3, the typed exit.
                dissim::build_options bopts;
                bopts.threads = threads;
                if (mem::would_exceed(static_cast<std::uint64_t>(n) * n * sizeof(float))) {
                    bopts.storage = dissim::layout::triangular;
                    obs::counter_add("mem.degrade.triangular_total", 1.0);
                    if (hook != nullptr && hook->wants_matrix_tiles()) {
                        // ~4 MiB of cells per tile: big enough that spill I/O
                        // stays a rounding error, small enough that a crash
                        // loses minutes, not hours. The spill path charges each
                        // serialized tile against the budget too, so cap the
                        // tile at half the headroom left once the triangle
                        // itself is allocated — a tile the budget cannot absorb
                        // would turn the degradation rung into the very failure
                        // it exists to avoid. Deterministic in n and the limit.
                        std::uint64_t tile_bytes = 4u << 20;
                        if (const mem::governor* g = mem::governor::active();
                            g != nullptr && g->limit() > 0) {
                            const std::uint64_t after_triangle =
                                mem::current_bytes() +
                                static_cast<std::uint64_t>(n) * (n - 1) / 2 * sizeof(float);
                            const std::uint64_t headroom =
                                g->limit() > after_triangle ? g->limit() - after_triangle : 0;
                            tile_bytes = std::clamp<std::uint64_t>(headroom / 2, 4096, tile_bytes);
                        }
                        bopts.tile_rows = std::max<std::size_t>(
                            1, static_cast<std::size_t>(tile_bytes) / sizeof(float) /
                                   std::max<std::size_t>(1, n));
                        bopts.on_tile = [hook](std::size_t row_begin, std::size_t row_end,
                                               std::size_t nn, std::span<const float> cells) {
                            hook->on_matrix_tile(row_begin, row_end, nn, cells);
                        };
                    }
                }
                if (elide) {
                    obs::counter_add("mem.degrade.dedup_total", 1.0);
                }
                matrix_storage.emplace(result.unique.values, bopts, dl);
                if (hook != nullptr) {
                    knn_curves = matrix_storage->kth_nn_many(
                        cluster::knn_k_max(result.unique.size()), threads);
                    hook->on_matrix(result.unique, *matrix_storage, knn_curves);
                }
                mem::publish_gauges();
            }
        }
        // Every consumer below this point sees only the source interface;
        // which construction backs it is invisible to the results.
        std::optional<dissim::matrix_neighborhood> matrix_view;
        if (!sparse_storage.has_value()) {
            matrix_view.emplace(*matrix_storage);
        }
        const dissim::neighborhood_source& source =
            sparse_storage.has_value()
                ? static_cast<const dissim::neighborhood_source&>(*sparse_storage)
                : static_cast<const dissim::neighborhood_source&>(*matrix_view);

        // Auto-configuration + DBSCAN with the oversized-cluster guard.
        // pipeline_options::threads governs the whole run, including the
        // epsilon sweep inside auto-configuration.
        stage = "clustering";
        budget.check("pipeline clustering");
        if (seed.clustering.has_value()) {
            expects(seed.clustering->labels.labels.size() == result.unique.size(),
                    "analyze_seeded: seeded clustering does not label the unique segments");
            result.clustering = std::move(*seed.clustering);
        } else {
            obs::span sp("clustering");
            cluster::autoconf_options autoconf = options.autoconf;
            autoconf.threads = threads;
            autoconf.precomputed_knn = knn_curves.empty() ? nullptr : &knn_curves;
            result.clustering =
                cluster::auto_cluster(source, autoconf, options.oversize_fraction);
            if (sp.enabled()) {
                sp.count("clusters", result.clustering.labels.cluster_count);
                sp.count("noise", result.clustering.labels.noise_count());
                sp.count("reconfigurations", result.clustering.reconfigurations);
            }
            if (hook != nullptr) {
                hook->on_clustering(result.clustering);
            }
        }

        // Refinement. After the oversized-cluster guard walked the epsilon
        // down, merging must not re-create an oversized cluster.
        stage = "refinement";
        budget.check("pipeline refinement");
        {
            obs::span sp("refinement");
            if (options.apply_refinement) {
                std::vector<std::size_t> occurrence_counts;
                occurrence_counts.reserve(result.unique.size());
                for (std::size_t i = 0; i < result.unique.size(); ++i) {
                    occurrence_counts.push_back(result.unique.occurrence_count(i));
                }
                cluster::refine_options refine_opts = options.refine;
                if (result.clustering.reclustered && refine_opts.max_merged_fraction <= 0.0) {
                    refine_opts.max_merged_fraction = options.oversize_fraction;
                }
                result.refinement = cluster::refine(source, result.clustering.labels,
                                                    occurrence_counts, refine_opts);
                result.final_labels = result.refinement.labels;
            } else {
                result.final_labels = result.clustering.labels;
            }
            sp.count("clusters", result.final_labels.cluster_count);
            sp.count("merges", result.refinement.merges.size());
            sp.count("splits", result.refinement.splits.size());
        }
    } catch (const budget_exceeded_error& e) {
        // Completed stages were announced (and checkpointed) as they
        // finished; tell the observer which stage the trip lost so it can
        // mark its manifest interrupted before the run unwinds.
        if (hook != nullptr) {
            hook->on_interrupted(stage);
        }
        mem::publish_gauges();
        rethrow_with_progress(e, stage, budget, result.unique.size());
    }

    mem::publish_gauges();
    result.elapsed_seconds = watch.elapsed_seconds();
    return result;
}

}  // namespace

pipeline_result analyze_segments(const std::vector<byte_vector>& messages,
                                 segmentation::message_segments segments,
                                 const pipeline_options& options) {
    pipeline_seed seed;
    seed.segments = std::move(segments);
    return analyze_seeded(messages, nullptr, std::move(seed), options);
}

pipeline_result analyze(const std::vector<byte_vector>& messages,
                        const segmentation::segmenter& segmenter,
                        const pipeline_options& options) {
    return analyze_seeded(messages, &segmenter, {}, options);
}

pipeline_result analyze_seeded(const std::vector<byte_vector>& messages,
                               const segmentation::segmenter* segmenter, pipeline_seed seed,
                               const pipeline_options& options) {
    resource_budget budget = make_budget(options);
    return analyze_seeded_budgeted(messages, segmenter, std::move(seed), options, budget);
}

}  // namespace ftc::core
