#include "core/pipeline.hpp"

#include "util/check.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace ftc::core {

pipeline_result analyze_segments(const std::vector<byte_vector>& messages,
                                 segmentation::message_segments segments,
                                 const pipeline_options& options) {
    expects(!messages.empty(), "analyze: empty trace");
    const stopwatch watch;
    const deadline dl = options.budget_seconds > 0.0 ? deadline(options.budget_seconds)
                                                     : deadline();

    pipeline_result result;
    result.segments = std::move(segments);

    // Dissimilarity stage: unique >=2-byte segments, pairwise matrix.
    result.unique = dissim::condense(messages, result.segments, options.min_segment_length);
    expects(result.unique.size() >= 3,
            "analyze: fewer than 3 unique segments; trace too uniform to cluster");
    const std::size_t threads = util::resolve_threads(options.threads);
    const dissim::dissimilarity_matrix matrix(result.unique.values, dl, threads);

    // Auto-configuration + DBSCAN with the oversized-cluster guard.
    // pipeline_options::threads governs the whole run, including the
    // epsilon sweep inside auto-configuration.
    cluster::autoconf_options autoconf = options.autoconf;
    autoconf.threads = threads;
    result.clustering =
        cluster::auto_cluster(matrix, autoconf, options.oversize_fraction);

    // Refinement. After the oversized-cluster guard walked the epsilon
    // down, merging must not re-create an oversized cluster.
    if (options.apply_refinement) {
        std::vector<std::size_t> occurrence_counts;
        occurrence_counts.reserve(result.unique.size());
        for (const auto& occs : result.unique.occurrences) {
            occurrence_counts.push_back(occs.size());
        }
        cluster::refine_options refine_opts = options.refine;
        if (result.clustering.reclustered && refine_opts.max_merged_fraction <= 0.0) {
            refine_opts.max_merged_fraction = options.oversize_fraction;
        }
        result.refinement = cluster::refine(matrix, result.clustering.labels,
                                            occurrence_counts, refine_opts);
        result.final_labels = result.refinement.labels;
    } else {
        result.final_labels = result.clustering.labels;
    }

    result.elapsed_seconds = watch.elapsed_seconds();
    return result;
}

pipeline_result analyze(const std::vector<byte_vector>& messages,
                        const segmentation::segmenter& segmenter,
                        const pipeline_options& options) {
    const deadline dl = options.budget_seconds > 0.0 ? deadline(options.budget_seconds)
                                                     : deadline();
    segmentation::message_segments segments = segmenter.run(messages, dl);
    return analyze_segments(messages, std::move(segments), options);
}

}  // namespace ftc::core
