/// \file metrics.hpp
/// Combinatorial clustering quality metrics (paper Sec. IV-A).
///
/// Precision/recall are defined over pairs of unique segments following
/// Manning et al.: a true positive is a same-type pair placed in the same
/// cluster. False negatives include pairs split across clusters, pairs lost
/// to noise, and noise-vs-clustered pairs (the paper's three FN terms).
/// The overall score is F_{1/4}, weighting precision four times as much as
/// recall, and *coverage* is the fraction of all trace bytes covered by
/// clustered segments.
#pragma once

#include <vector>

#include "cluster/dbscan.hpp"
#include "dissim/matrix.hpp"
#include "protocols/field.hpp"

namespace ftc::core {

/// Unique segments with ground-truth data types.
struct typed_segments {
    dissim::unique_segments unique;
    /// Majority ground-truth type per unique value (byte-overlap vote over
    /// all of the value's occurrences).
    std::vector<protocols::field_type> types;
};

/// Determine the ground-truth type of every unique segment by maximal byte
/// overlap with the trace's annotated fields, majority-voted across the
/// value's occurrences. Works for heuristic segments with shifted
/// boundaries as well as for perfect ones.
typed_segments assign_types(const protocols::trace& truth,
                            dissim::unique_segments unique);

/// Pairwise clustering statistics.
struct clustering_quality {
    double precision = 0.0;
    double recall = 0.0;
    double f_score = 0.0;  ///< F_{1/4}
    /// Fraction of all trace bytes covered by the segments that enter the
    /// analysis (>= 2-byte segments, all their occurrences). This is the
    /// paper's coverage notion: "the ratio between the number of inferred
    /// bytes and all bytes of all messages in a trace" — bytes about whose
    /// structure the method can make a statement.
    double coverage = 0.0;
    /// Stricter variant: only bytes of segments whose value landed in a
    /// cluster (noise excluded).
    double clustered_coverage = 0.0;
    std::uint64_t true_positives = 0;
    std::uint64_t false_positives = 0;
    std::uint64_t false_negatives = 0;
    std::size_t cluster_count = 0;
    std::size_t noise_count = 0;
};

/// F_beta score (harmonic mean weighted by beta; beta = 1/4 favours
/// precision). Returns 0 when both inputs are 0.
double f_beta(double precision, double recall, double beta);

/// Evaluate a clustering of typed unique segments against the ground truth.
/// \p total_trace_bytes is the byte count of all messages (coverage
/// denominator).
clustering_quality evaluate_clustering(const cluster::cluster_labels& labels,
                                       const typed_segments& segments,
                                       std::size_t total_trace_bytes);

}  // namespace ftc::core
