#include "core/metrics.hpp"

#include <algorithm>
#include <array>
#include <map>

#include "util/check.hpp"

namespace ftc::core {

namespace {

using protocols::field_type;
using protocols::field_type_count;

/// Byte overlap of [a_off, a_off+a_len) with [b_off, b_off+b_len).
std::size_t overlap(std::size_t a_off, std::size_t a_len, std::size_t b_off, std::size_t b_len) {
    const std::size_t lo = std::max(a_off, b_off);
    const std::size_t hi = std::min(a_off + a_len, b_off + b_len);
    return hi > lo ? hi - lo : 0;
}

std::uint64_t pairs_of(std::uint64_t n) { return n * (n - 1) / 2; }

}  // namespace

typed_segments assign_types(const protocols::trace& truth, dissim::unique_segments unique) {
    typed_segments out;
    out.unique = std::move(unique);
    // Type votes are cast per occurrence position against the annotated
    // fields of the carrying message — the weighted (occurrence-elided)
    // form cannot be scored. Evaluation runs against synthesized ground
    // truth, which is never large enough to trip the dedup rung, so this is
    // a contract statement, not a reachable limitation.
    expects(!out.unique.occurrences_elided,
            "assign_types: ground-truth scoring needs full occurrence lists "
            "(rerun without the memory-degraded dedup rung)");
    out.types.reserve(out.unique.size());
    for (const std::vector<segmentation::segment>& occs : out.unique.occurrences) {
        std::array<std::size_t, field_type_count> votes{};
        for (const segmentation::segment& seg : occs) {
            expects(seg.message_index < truth.messages.size(),
                    "assign_types: segment outside trace");
            const protocols::annotated_message& msg = truth.messages[seg.message_index];
            for (const protocols::field_annotation& f : msg.fields) {
                const std::size_t ov = overlap(seg.offset, seg.length, f.offset, f.length);
                votes[static_cast<std::size_t>(f.type)] += ov;
            }
        }
        std::size_t best = 0;
        for (std::size_t t = 1; t < votes.size(); ++t) {
            if (votes[t] > votes[best]) {
                best = t;
            }
        }
        out.types.push_back(static_cast<field_type>(best));
    }
    return out;
}

double f_beta(double precision, double recall, double beta) {
    const double b2 = beta * beta;
    const double denom = b2 * precision + recall;
    if (denom == 0.0) {
        return 0.0;
    }
    return (1.0 + b2) * precision * recall / denom;
}

clustering_quality evaluate_clustering(const cluster::cluster_labels& labels,
                                       const typed_segments& segments,
                                       std::size_t total_trace_bytes) {
    expects(labels.labels.size() == segments.unique.size(),
            "evaluate_clustering: label count must match unique segment count");
    clustering_quality q;
    q.cluster_count = labels.cluster_count;
    q.noise_count = labels.noise_count();

    const std::size_t n = labels.labels.size();

    // t_l: unique segments per type across the whole input (incl. noise).
    std::array<std::uint64_t, field_type_count> type_totals{};
    for (std::size_t i = 0; i < n; ++i) {
        ++type_totals[static_cast<std::size_t>(segments.types[i])];
    }

    // Per cluster: size and per-type membership t_{i,l}.
    std::vector<std::uint64_t> cluster_sizes(labels.cluster_count, 0);
    std::vector<std::array<std::uint64_t, field_type_count>> cluster_types(
        labels.cluster_count);
    std::array<std::uint64_t, field_type_count> noise_types{};
    for (std::size_t i = 0; i < n; ++i) {
        const int label = labels.labels[i];
        const auto type = static_cast<std::size_t>(segments.types[i]);
        if (label == cluster::kNoise) {
            ++noise_types[type];
        } else {
            ++cluster_sizes[static_cast<std::size_t>(label)];
            ++cluster_types[static_cast<std::size_t>(label)][type];
        }
    }

    // TP + FP = sum_i C(|c_i|, 2); TP = sum_i sum_l C(|t_il|, 2).
    std::uint64_t tp_fp = 0;
    std::uint64_t tp = 0;
    for (std::size_t c = 0; c < labels.cluster_count; ++c) {
        tp_fp += pairs_of(cluster_sizes[c]);
        for (std::uint64_t t : cluster_types[c]) {
            tp += pairs_of(t);
        }
    }
    q.true_positives = tp;
    q.false_positives = tp_fp - tp;

    // FN: cross-cluster missed pairs (halved), noise-internal same-type
    // pairs, and noise-vs-elsewhere same-type pairs (halved) — the paper's
    // three terms implemented verbatim. The halved terms are accumulated in
    // doubled form first to stay in integer arithmetic.
    std::uint64_t fn_doubled = 0;
    for (std::size_t c = 0; c < labels.cluster_count; ++c) {
        for (std::size_t l = 0; l < field_type_count; ++l) {
            const std::uint64_t t_il = cluster_types[c][l];
            fn_doubled += (type_totals[l] - t_il) * t_il;
        }
    }
    std::uint64_t fn = 0;
    for (std::size_t l = 0; l < field_type_count; ++l) {
        fn += pairs_of(noise_types[l]);
        fn_doubled += (type_totals[l] - noise_types[l]) * noise_types[l];
    }
    fn += fn_doubled / 2;
    q.false_negatives = fn;

    q.precision = (tp + q.false_positives) > 0
                      ? static_cast<double>(tp) / static_cast<double>(tp + q.false_positives)
                      : 0.0;
    q.recall = (tp + fn) > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0.0;
    q.f_score = f_beta(q.precision, q.recall, 0.25);

    // Coverage: bytes of every occurrence of every analyzed unique value
    // (the paper's "inferred bytes"); clustered_coverage restricts to
    // values that landed in a cluster.
    std::uint64_t analyzed = 0;
    std::uint64_t clustered = 0;
    for (std::size_t i = 0; i < n; ++i) {
        // Every occurrence of value i spans exactly values[i].size() bytes
        // (the value IS those bytes), so the sum collapses to a product —
        // and stays computable from multiplicities alone.
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(segments.unique.occurrence_count(i)) *
            segments.unique.values[i].size();
        analyzed += bytes;
        if (labels.labels[i] != cluster::kNoise) {
            clustered += bytes;
        }
    }
    if (total_trace_bytes > 0) {
        q.coverage = static_cast<double>(analyzed) / static_cast<double>(total_trace_bytes);
        q.clustered_coverage =
            static_cast<double>(clustered) / static_cast<double>(total_trace_bytes);
    }
    return q;
}

}  // namespace ftc::core
