#include "core/valuegen.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ftc::core {

value_model::value_model(const std::vector<byte_vector>& values) {
    expects(!values.empty(), "value_model: no training values");
    std::size_t max_len = 0;
    for (const byte_vector& v : values) {
        expects(!v.empty(), "value_model: empty training value");
        max_len = std::max(max_len, v.size());
    }
    positions_.resize(max_len);
    for (const byte_vector& v : values) {
        const auto it = std::find(lengths_.begin(), lengths_.end(), v.size());
        if (it == lengths_.end()) {
            lengths_.push_back(v.size());
            length_counts_.push_back(1);
        } else {
            ++length_counts_[static_cast<std::size_t>(it - lengths_.begin())];
        }
        for (std::size_t i = 0; i < v.size(); ++i) {
            ++positions_[i].counts[v[i]];
            ++positions_[i].total;
        }
    }
    // Constant prefix: positions seen in every value with a single byte.
    const auto n = static_cast<std::uint32_t>(values.size());
    for (const position_stats& p : positions_) {
        if (p.total != n) {
            break;
        }
        const std::uint32_t top = *std::max_element(p.counts.begin(), p.counts.end());
        if (top != n) {
            break;
        }
        ++constant_prefix_;
    }
}

byte_vector value_model::sample(rng& rand) const {
    // Draw a length proportional to its observed frequency.
    std::uint32_t total = 0;
    for (const std::uint32_t c : length_counts_) {
        total += c;
    }
    std::uint32_t pick = static_cast<std::uint32_t>(rand.uniform(1, total));
    std::size_t length = lengths_.back();
    for (std::size_t i = 0; i < lengths_.size(); ++i) {
        if (pick <= length_counts_[i]) {
            length = lengths_[i];
            break;
        }
        pick -= length_counts_[i];
    }

    byte_vector out;
    out.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
        const position_stats& p = positions_[i];
        std::uint32_t draw = static_cast<std::uint32_t>(rand.uniform(1, p.total));
        std::uint8_t byte = 0;
        for (std::size_t b = 0; b < p.counts.size(); ++b) {
            if (draw <= p.counts[b]) {
                byte = static_cast<std::uint8_t>(b);
                break;
            }
            draw -= p.counts[b];
        }
        out.push_back(byte);
    }
    return out;
}

double value_model::log_likelihood(byte_view value) const {
    if (value.empty()) {
        return -64.0;
    }
    double sum = 0.0;
    for (std::size_t i = 0; i < value.size(); ++i) {
        double p;
        if (i >= positions_.size() || positions_[i].total == 0) {
            p = 1.0 / 256.0;  // beyond any training value: uniform prior
        } else {
            const position_stats& stats = positions_[i];
            // Laplace-style smoothing so unseen bytes stay scoreable.
            p = (static_cast<double>(stats.counts[value[i]]) + 0.5) /
                (static_cast<double>(stats.total) + 128.0);
        }
        sum += std::log2(p);
    }
    return sum / static_cast<double>(value.size());
}

cluster_value_models learn_value_models(const pipeline_result& result) {
    cluster_value_models out;
    const auto members = result.final_labels.members();
    for (std::size_t c = 0; c < members.size(); ++c) {
        if (members[c].empty()) {
            continue;
        }
        std::vector<byte_vector> values;
        values.reserve(members[c].size());
        for (const std::size_t idx : members[c]) {
            values.push_back(result.unique.values[idx]);
        }
        out.cluster_ids.push_back(static_cast<int>(c));
        out.models.emplace_back(values);
    }
    return out;
}

std::optional<double> score_against_cluster(const cluster_value_models& models,
                                            int cluster_id, byte_view value) {
    for (std::size_t i = 0; i < models.cluster_ids.size(); ++i) {
        if (models.cluster_ids[i] == cluster_id) {
            return models.models[i].log_likelihood(value);
        }
    }
    return std::nullopt;
}

}  // namespace ftc::core
