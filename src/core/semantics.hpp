/// \file semantics.hpp
/// Post-clustering semantic deduction — the paper's first future-work item
/// (Sec. V): "combine our data type clustering with the deduction of intra-
/// and inter-message semantics similar to FieldHunter. This would enable
/// the interpretation of, e.g., length fields and message counter fields."
///
/// Unlike FieldHunter, which tests fixed byte offsets, these rules operate
/// on *clusters*: every occurrence of a pseudo data type contributes
/// evidence regardless of where in its message it sits. That makes the
/// deduction applicable to variable-offset fields — exactly what the
/// clustering step buys us.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace ftc::core {

/// Semantic roles deducible from cluster occurrence patterns.
enum class semantic_role {
    length_field,   ///< numeric value correlates with its message's length
    counter_field,  ///< numeric value increases with message order
    constant_field, ///< single value throughout the trace (magic/keyword)
    echo_field,     ///< same value recurs in several messages close together
};

const char* to_string(semantic_role role);

/// One deduced semantic tag for a cluster.
struct semantic_tag {
    int cluster_id = 0;
    semantic_role role = semantic_role::constant_field;
    double confidence = 0.0;  ///< rule-specific score in [0, 1]
    bool big_endian = true;   ///< numeric interpretation that matched
    std::string detail;       ///< human-readable evidence summary
};

/// Deduction thresholds.
struct semantics_options {
    /// Pearson threshold for the length-field rule.
    double min_length_correlation = 0.8;
    /// Fraction of in-order consecutive occurrence pairs required for the
    /// counter rule.
    double min_counter_monotonicity = 0.95;
    /// Minimum occurrences before any rule may fire on a cluster.
    std::size_t min_occurrences = 8;
    /// Maximum numeric width (bytes) for value interpretation.
    std::size_t max_numeric_width = 8;
};

/// Deduce semantics for every final cluster of a pipeline run.
/// \p messages must be the same message list the pipeline analyzed.
std::vector<semantic_tag> deduce_semantics(const std::vector<byte_vector>& messages,
                                           const pipeline_result& result,
                                           const semantics_options& options = {});

/// Render tags as readable lines ("cluster 3: length field (r=0.97, ...)").
std::string render_semantics(const std::vector<semantic_tag>& tags);

}  // namespace ftc::core
