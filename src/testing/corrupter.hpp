/// \file corrupter.hpp
/// Deterministic fault injection for pcap capture files.
///
/// Drives the resilience tests: takes a well-formed pcap byte stream and
/// damages a chosen fraction of its records in ways real captures get
/// damaged — bit flips, truncated record bodies, corrupted length fields.
/// Every fault kind is *detectable* by the ingestion stack by design:
///
///  - bit_flip targets the checksum-protected IPv4 header, so the damaged
///    frame fails checksum verification during decapsulation;
///  - snap cuts the record body short (rewriting incl_len consistently but
///    leaving orig_len), so decapsulation sees an inconsistent IP/UDP
///    length and drops the frame;
///  - length_garbage overwrites incl_len with an implausible value, so the
///    pcap record reader quarantines the record and resynchronizes.
///
/// That guarantee is what lets the golden tests assert that a lenient run
/// over a corrupted trace clusters exactly like the clean subset: no fault
/// can silently alter a surviving message. All randomness flows through an
/// explicitly seeded ftc::rng, so a (bytes, options) pair always yields
/// the same corrupted file.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "util/byteio.hpp"

namespace ftc::testing {

/// The ways one record can be damaged.
enum class fault_kind {
    bit_flip,        ///< flip one bit inside the IPv4 header
    snap,            ///< truncate the record body (consistent incl_len)
    length_garbage,  ///< overwrite incl_len with an implausible value
};

/// One injected fault.
struct fault {
    fault_kind kind = fault_kind::bit_flip;
    std::size_t record_index = 0;
};

/// Audit trail of a corruption run.
struct corruption_log {
    std::vector<fault> faults;  ///< in record order

    std::size_t count(fault_kind kind) const;

    /// True if \p record_index received a fault.
    bool faulted(std::size_t record_index) const;
};

/// Knobs of corrupt_pcap_bytes.
struct corruption_options {
    double fault_fraction = 0.1;  ///< share of records to damage
    std::uint64_t seed = 1;       ///< rng seed; same seed -> same output
    bool flip_bits = true;        ///< enable fault_kind::bit_flip
    bool truncate_records = true; ///< enable fault_kind::snap
    bool corrupt_lengths = true;  ///< enable fault_kind::length_garbage
};

/// Return a damaged copy of the pcap byte stream \p pcap_bytes. Throws
/// ftc::parse_error if the input is not a well-formed pcap file (the
/// corrupter needs clean framing to aim its faults). Records the injected
/// faults into \p log when non-null.
byte_vector corrupt_pcap_bytes(byte_view pcap_bytes, const corruption_options& options,
                               corruption_log* log = nullptr);

/// File-to-file convenience wrapper around corrupt_pcap_bytes.
void corrupt_pcap_file(const std::filesystem::path& in_path,
                       const std::filesystem::path& out_path,
                       const corruption_options& options, corruption_log* log = nullptr);

/// Format-agnostic damage: return a copy of \p bytes with \p flips single
/// bits flipped at seeded-random positions (positions may repeat; flipping
/// the same bit twice restores it, which real damage also does). Used to
/// mangle checkpoint files, whose per-section digests must detect any flip.
/// Throws ftc::precondition_error for empty input when flips > 0.
byte_vector flip_random_bits(byte_view bytes, std::size_t flips, std::uint64_t seed);

/// In-place file variant of flip_random_bits (not atomic — damage is the
/// point).
void flip_random_bits_in_file(const std::filesystem::path& path, std::size_t flips,
                              std::uint64_t seed);

}  // namespace ftc::testing
