/// \file alloc_fault.hpp
/// Deterministic allocation-fault injection (the ftc::testing front end of
/// the ftc::mem fault plan).
///
/// The memory-governance contract says every pipeline stage either
/// completes, degrades, or exits with a typed error when an allocation
/// fails — no crash, no leak, no torn output file. That contract is only
/// worth stating if it can be *driven*: this injector makes the Nth tracked
/// allocation (or every tracked allocation past a byte high-water mark)
/// throw ftc::memory_budget_exceeded_error at exactly the site a real
/// out-of-budget condition would, so a test can sweep N across a run and
/// prove the unwinding path from every tracked allocation site
/// (tests/test_mem_faults.cpp). Determinism: tracked sites are coarse,
/// coordinator-thread container allocations, so the same run hits the same
/// ordinals in the same order at any thread count.
#pragma once

#include <cstdint>

#include "mem/mem.hpp"

namespace ftc::testing {

/// RAII installer of a mem::fault_plan; restores the previous plan (usually
/// none) on destruction so a throwing test cannot poison its neighbours.
class alloc_fault_injector {
public:
    /// Fail the \p nth tracked allocation from now (1-based).
    static alloc_fault_injector fail_nth(std::uint64_t nth) {
        mem::fault_plan plan;
        plan.fail_nth = nth;
        return alloc_fault_injector(plan);
    }

    /// Fail every tracked allocation that would push the tracked footprint
    /// above \p bytes — a simulated hard heap ceiling.
    static alloc_fault_injector fail_above(std::uint64_t bytes) {
        mem::fault_plan plan;
        plan.fail_above_bytes = bytes;
        return alloc_fault_injector(plan);
    }

    explicit alloc_fault_injector(const mem::fault_plan& plan)
        : previous_(mem::get_fault_plan()) {
        mem::set_fault_plan(plan);
    }

    alloc_fault_injector(alloc_fault_injector&& other) noexcept
        : previous_(other.previous_), armed_(other.armed_) {
        other.armed_ = false;
    }

    alloc_fault_injector(const alloc_fault_injector&) = delete;
    alloc_fault_injector& operator=(const alloc_fault_injector&) = delete;
    alloc_fault_injector& operator=(alloc_fault_injector&&) = delete;

    ~alloc_fault_injector() {
        if (armed_) {
            mem::set_fault_plan(previous_);
        }
    }

private:
    mem::fault_plan previous_;
    bool armed_ = true;
};

/// Arm a process-wide fault plan from the environment:
///   FTC_ALLOC_FAIL_NTH=N          fail the Nth tracked allocation
///   FTC_ALLOC_FAIL_ABOVE_BYTES=B  fail tracked allocations past B bytes
/// Returns true when a plan was armed. The CLI calls this at startup so CI
/// can smoke-test the full binary's unwinding path without a special build.
/// Values must parse strictly (util/parse.hpp); a malformed value throws.
bool arm_alloc_faults_from_env();

}  // namespace ftc::testing
