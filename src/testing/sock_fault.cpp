#include "testing/sock_fault.hpp"

#include <cstdlib>
#include <cstring>

#include "util/error.hpp"
#include "util/parse.hpp"

namespace ftc::testing {

util::net::io_fault parse_io_fault_kind(const char* name) {
    if (std::strcmp(name, "short") == 0) {
        return util::net::io_fault::short_io;
    }
    if (std::strcmp(name, "eintr") == 0) {
        return util::net::io_fault::fake_eintr;
    }
    if (std::strcmp(name, "reset") == 0) {
        return util::net::io_fault::reset;
    }
    if (std::strcmp(name, "stall") == 0) {
        return util::net::io_fault::stall;
    }
    if (std::strcmp(name, "corrupt-spool") == 0) {
        return util::net::io_fault::corrupt_spool;
    }
    throw ftc::error(std::string{"FTC_SOCK_FAIL_KIND: unknown fault kind '"} + name +
                     "' (expected short|eintr|reset|stall|corrupt-spool)");
}

bool arm_sock_faults_from_env() {
    util::net::io_fault_plan plan;
    if (const char* nth = std::getenv("FTC_SOCK_FAIL_NTH")) {
        plan.fail_nth = util::parse_u64(nth, "FTC_SOCK_FAIL_NTH");
    }
    plan.kind = util::net::io_fault::reset;
    if (const char* kind = std::getenv("FTC_SOCK_FAIL_KIND")) {
        plan.kind = parse_io_fault_kind(kind);
    }
    if (!plan.armed()) {
        return false;
    }
    util::net::set_io_fault_plan(plan);
    return true;
}

}  // namespace ftc::testing
