#include "testing/alloc_fault.hpp"

#include <cstdlib>

#include "util/parse.hpp"

namespace ftc::testing {

bool arm_alloc_faults_from_env() {
    mem::fault_plan plan;
    if (const char* nth = std::getenv("FTC_ALLOC_FAIL_NTH")) {
        plan.fail_nth = util::parse_u64(nth, "FTC_ALLOC_FAIL_NTH");
    }
    if (const char* above = std::getenv("FTC_ALLOC_FAIL_ABOVE_BYTES")) {
        plan.fail_above_bytes = util::parse_size_bytes(above, "FTC_ALLOC_FAIL_ABOVE_BYTES");
    }
    if (!plan.armed()) {
        return false;
    }
    mem::set_fault_plan(plan);
    return true;
}

}  // namespace ftc::testing
