/// \file sock_fault.hpp
/// Deterministic socket/spool fault injection (the ftc::testing front end
/// of the ftc::util::net I/O fault plan).
///
/// The serve daemon's robustness contract says every connection and every
/// session either completes with reference-identical output or unwinds
/// with a typed per-session error — the daemon itself never exits. Like
/// the allocation injector, that contract is only worth stating if it can
/// be driven: this injector makes the Nth tracked socket operation (or the
/// Nth spool journal write) observe a short transfer, a simulated EINTR, a
/// peer reset, a stalled deadline, or on-disk spool corruption, so a test
/// can sweep N across a serving session and prove the handling path from
/// every I/O site (tests/test_serve_faults.cpp). Determinism: the
/// countdown only ticks on operations in the fault kind's domain, so the
/// same request sequence hits the same ordinals in the same order.
#pragma once

#include <cstdint>

#include "util/net.hpp"

namespace ftc::testing {

/// RAII installer of a util::net::io_fault_plan; restores the previous
/// plan (usually none) on destruction so a throwing test cannot poison its
/// neighbours.
class sock_fault_injector {
public:
    /// Make the \p nth tracked operation (1-based) of \p kind's domain
    /// observe \p kind.
    static sock_fault_injector fail_nth(std::uint64_t nth, util::net::io_fault kind) {
        util::net::io_fault_plan plan;
        plan.fail_nth = nth;
        plan.kind = kind;
        return sock_fault_injector(plan);
    }

    explicit sock_fault_injector(const util::net::io_fault_plan& plan)
        : previous_(util::net::get_io_fault_plan()) {
        util::net::set_io_fault_plan(plan);
    }

    sock_fault_injector(sock_fault_injector&& other) noexcept
        : previous_(other.previous_), armed_(other.armed_) {
        other.armed_ = false;
    }

    sock_fault_injector(const sock_fault_injector&) = delete;
    sock_fault_injector& operator=(const sock_fault_injector&) = delete;
    sock_fault_injector& operator=(sock_fault_injector&&) = delete;

    ~sock_fault_injector() {
        if (armed_) {
            util::net::set_io_fault_plan(previous_);
        }
    }

private:
    util::net::io_fault_plan previous_;
    bool armed_ = true;
};

/// Parse a fault-kind name ("short" | "eintr" | "reset" | "stall" |
/// "corrupt-spool"); throws ftc::error on anything else.
util::net::io_fault parse_io_fault_kind(const char* name);

/// Arm a process-wide I/O fault plan from the environment:
///   FTC_SOCK_FAIL_NTH=N      fault the Nth tracked operation
///   FTC_SOCK_FAIL_KIND=KIND  short | eintr | reset | stall | corrupt-spool
///                            (default reset)
/// Returns true when a plan was armed. The CLI calls this at startup so CI
/// can smoke-test the full daemon's handling paths without a special
/// build. Values must parse strictly; a malformed value throws.
bool arm_sock_faults_from_env();

}  // namespace ftc::testing
