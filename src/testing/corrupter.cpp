#include "testing/corrupter.hpp"

#include <algorithm>
#include <fstream>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ftc::testing {

namespace {

constexpr std::size_t kGlobalHeaderSize = 24;
constexpr std::size_t kRecordHeaderSize = 16;
constexpr std::size_t kEthernetSize = 14;
constexpr std::uint32_t kLinkEthernet = 1;
constexpr std::uint32_t kLinkRawIp = 101;
/// Implausible incl_len used by length_garbage: 1 GiB, far beyond the
/// reader's 64 MiB hard ceiling, so it is quarantined on every input.
constexpr std::uint32_t kGarbageLength = 0x40000000;

/// Location of one record in the source byte stream.
struct record_ref {
    std::size_t header_offset = 0;
    std::size_t body_offset = 0;
    std::uint32_t incl_len = 0;
};

}  // namespace

std::size_t corruption_log::count(fault_kind kind) const {
    std::size_t n = 0;
    for (const fault& f : faults) {
        if (f.kind == kind) {
            ++n;
        }
    }
    return n;
}

bool corruption_log::faulted(std::size_t record_index) const {
    for (const fault& f : faults) {
        if (f.record_index == record_index) {
            return true;
        }
    }
    return false;
}

byte_vector corrupt_pcap_bytes(byte_view pcap_bytes, const corruption_options& options,
                               corruption_log* log) {
    expects(options.fault_fraction >= 0.0 && options.fault_fraction <= 1.0,
            "corrupt_pcap_bytes: fault_fraction must be in [0, 1]");
    if (pcap_bytes.size() < kGlobalHeaderSize) {
        throw parse_error("corrupter: input too short for a pcap global header");
    }
    const std::uint32_t magic_be = get_u32_be(pcap_bytes, 0);
    bool little_endian = false;
    switch (magic_be) {
        case 0xa1b2c3d4u:
        case 0xa1b23c4du:
            break;
        case 0xd4c3b2a1u:
        case 0x4d3cb2a1u:
            little_endian = true;
            break;
        default:
            throw parse_error("corrupter: input is not a pcap file");
    }
    auto u32 = [&](std::size_t off) {
        return little_endian ? get_u32_le(pcap_bytes, off) : get_u32_be(pcap_bytes, off);
    };
    auto put_u32 = [&](byte_vector& out, std::uint32_t v) {
        if (little_endian) {
            put_u32_le(out, v);
        } else {
            put_u32_be(out, v);
        }
    };
    const std::uint32_t link = u32(20);

    // Index the records of the (clean) input.
    std::vector<record_ref> records;
    std::size_t offset = kGlobalHeaderSize;
    while (offset < pcap_bytes.size()) {
        if (offset + kRecordHeaderSize > pcap_bytes.size()) {
            throw parse_error("corrupter: input has a truncated record header");
        }
        record_ref r;
        r.header_offset = offset;
        r.body_offset = offset + kRecordHeaderSize;
        r.incl_len = u32(offset + 8);
        if (r.body_offset + r.incl_len > pcap_bytes.size()) {
            throw parse_error("corrupter: input has a truncated record body");
        }
        offset = r.body_offset + r.incl_len;
        records.push_back(r);
    }

    std::vector<fault_kind> enabled;
    if (options.flip_bits) {
        enabled.push_back(fault_kind::bit_flip);
    }
    if (options.truncate_records) {
        enabled.push_back(fault_kind::snap);
    }
    if (options.corrupt_lengths) {
        enabled.push_back(fault_kind::length_garbage);
    }

    rng rand(options.seed);
    byte_vector out;
    out.reserve(pcap_bytes.size());
    put_bytes(out, pcap_bytes.subspan(0, kGlobalHeaderSize));

    // Offset of the IPv4 header within a record body, or SIZE_MAX when the
    // frame cannot carry one.
    auto ipv4_offset = [&](const record_ref& r) -> std::size_t {
        if (link == kLinkRawIp) {
            return r.incl_len >= 20 ? 0 : SIZE_MAX;
        }
        if (link != kLinkEthernet || r.incl_len < kEthernetSize + 20) {
            return SIZE_MAX;
        }
        const std::size_t type_off = r.body_offset + 12;
        const std::uint16_t ethertype =
            static_cast<std::uint16_t>((pcap_bytes[type_off] << 8) | pcap_bytes[type_off + 1]);
        return ethertype == 0x0800 ? kEthernetSize : SIZE_MAX;
    };

    auto applicable = [&](fault_kind kind, const record_ref& r) {
        switch (kind) {
            case fault_kind::bit_flip:
                return ipv4_offset(r) != SIZE_MAX;
            case fault_kind::snap:
                return r.incl_len >= 1;
            case fault_kind::length_garbage:
                return true;
        }
        return false;
    };

    for (std::size_t i = 0; i < records.size(); ++i) {
        const record_ref& r = records[i];
        const byte_view header = pcap_bytes.subspan(r.header_offset, kRecordHeaderSize);
        const byte_view body = pcap_bytes.subspan(r.body_offset, r.incl_len);

        bool inject = !enabled.empty() && rand.chance(options.fault_fraction);
        fault_kind kind = fault_kind::bit_flip;
        if (inject) {
            // Prefer the drawn kind; degrade to another enabled kind when
            // the record cannot carry it (e.g. bit_flip on a non-IP frame).
            kind = enabled[static_cast<std::size_t>(rand.uniform(0, enabled.size() - 1))];
            if (!applicable(kind, r)) {
                inject = false;
                for (const fault_kind candidate : enabled) {
                    if (applicable(candidate, r)) {
                        kind = candidate;
                        inject = true;
                        break;
                    }
                }
            }
        }
        if (!inject) {
            put_bytes(out, header);
            put_bytes(out, body);
            continue;
        }

        switch (kind) {
            case fault_kind::bit_flip: {
                const std::size_t ip_off = ipv4_offset(r);
                const std::uint8_t ihl =
                    static_cast<std::uint8_t>(body[ip_off] & 0x0f);
                const std::size_t header_len =
                    std::min<std::size_t>(std::max<std::size_t>(ihl, 5) * 4,
                                          r.incl_len - ip_off);
                const std::size_t victim =
                    ip_off + static_cast<std::size_t>(rand.uniform(0, header_len - 1));
                const std::uint8_t mask =
                    static_cast<std::uint8_t>(1u << rand.uniform(0, 7));
                put_bytes(out, header);
                const std::size_t body_start = out.size();
                put_bytes(out, body);
                out[body_start + victim] ^= mask;
                break;
            }
            case fault_kind::snap: {
                const std::uint32_t new_len =
                    static_cast<std::uint32_t>(rand.uniform(0, r.incl_len - 1));
                put_bytes(out, header.subspan(0, 8));  // timestamps
                put_u32(out, new_len);                 // incl_len, consistent
                put_bytes(out, header.subspan(12, 4)); // orig_len untouched
                put_bytes(out, body.subspan(0, new_len));
                break;
            }
            case fault_kind::length_garbage: {
                const std::uint32_t garbage =
                    kGarbageLength | static_cast<std::uint32_t>(rand.uniform(1, 0xffff));
                put_bytes(out, header.subspan(0, 8));
                put_u32(out, garbage);                 // implausible incl_len
                put_bytes(out, header.subspan(12, 4));
                put_bytes(out, body);                  // bytes left in place
                break;
            }
        }
        if (log != nullptr) {
            log->faults.push_back({kind, i});
        }
    }
    return out;
}

void corrupt_pcap_file(const std::filesystem::path& in_path,
                       const std::filesystem::path& out_path,
                       const corruption_options& options, corruption_log* log) {
    std::ifstream in(in_path, std::ios::binary | std::ios::ate);
    if (!in) {
        throw error(message("corrupter: cannot open for reading: ", in_path.string()));
    }
    const std::streamsize size = in.tellg();
    in.seekg(0);
    byte_vector bytes(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char*>(bytes.data()), size);
    if (!in) {
        throw error(message("corrupter: read failed: ", in_path.string()));
    }
    const byte_vector corrupted = corrupt_pcap_bytes(bytes, options, log);
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw error(message("corrupter: cannot open for writing: ", out_path.string()));
    }
    out.write(reinterpret_cast<const char*>(corrupted.data()),
              static_cast<std::streamsize>(corrupted.size()));
    if (!out) {
        throw error(message("corrupter: write failed: ", out_path.string()));
    }
}

byte_vector flip_random_bits(byte_view bytes, std::size_t flips, std::uint64_t seed) {
    expects(!bytes.empty() || flips == 0, "flip_random_bits: nothing to flip");
    byte_vector out(bytes.begin(), bytes.end());
    rng gen(seed);
    for (std::size_t i = 0; i < flips; ++i) {
        const std::size_t byte_at =
            static_cast<std::size_t>(gen.uniform(0, out.size() - 1));
        const std::uint8_t bit = static_cast<std::uint8_t>(1u << gen.uniform(0, 7));
        out[byte_at] ^= bit;
    }
    return out;
}

void flip_random_bits_in_file(const std::filesystem::path& path, std::size_t flips,
                              std::uint64_t seed) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
        throw error(message("corrupter: cannot open for reading: ", path.string()));
    }
    const std::streamsize size = in.tellg();
    in.seekg(0);
    byte_vector bytes(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char*>(bytes.data()), size);
    if (!in) {
        throw error(message("corrupter: read failed: ", path.string()));
    }
    const byte_vector damaged = flip_random_bits(bytes, flips, seed);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw error(message("corrupter: cannot open for writing: ", path.string()));
    }
    out.write(reinterpret_cast<const char*>(damaged.data()),
              static_cast<std::streamsize>(damaged.size()));
    if (!out) {
        throw error(message("corrupter: write failed: ", path.string()));
    }
}

}  // namespace ftc::testing
