#include "serve/spool.hpp"

#include <algorithm>
#include <fstream>
#include <system_error>

#include "obs/export.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/net.hpp"
#include "util/parse.hpp"

namespace ftc::serve {

namespace {

constexpr std::string_view kMetaPrefix = "job-";
constexpr std::string_view kMetaSuffix = ".json";

byte_vector read_file_bytes(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw parse_error("spool: cannot open " + path.string());
    }
    byte_vector bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    if (in.bad()) {
        throw parse_error("spool: cannot read " + path.string());
    }
    return bytes;
}

std::string meta_json(const spool_entry& entry) {
    obs::json_writer w;
    w.begin_object();
    w.key("schema");
    w.value("ftc.spool.v1");
    w.key("id");
    w.value(entry.id);
    w.key("state");
    w.value(job_phase_name(entry.phase));
    w.key("payload_bytes");
    w.value(entry.payload_bytes);
    w.key("payload_digest");
    // Digests exceed 2^53; store as a string so the double-backed JSON
    // parser round-trips them exactly.
    w.value(std::to_string(entry.payload_digest));
    if (!entry.error.empty()) {
        w.key("error");
        w.value(std::string_view{entry.error});
    }
    w.end_object();
    return w.take();
}

spool_entry parse_meta(const std::string& text) {
    const util::json_value doc = util::parse_json(text);
    if (doc.string_or("schema", "") != "ftc.spool.v1") {
        throw parse_error("spool: unknown metadata schema");
    }
    spool_entry entry;
    entry.id = static_cast<std::uint64_t>(doc.at("id").as_number());
    const std::string& state = doc.at("state").as_string();
    if (state == "accepted") {
        entry.phase = job_phase::accepted;
    } else if (state == "done") {
        entry.phase = job_phase::done;
    } else if (state == "failed") {
        entry.phase = job_phase::failed;
    } else {
        throw parse_error("spool: unknown job state '" + state + "'");
    }
    entry.payload_bytes = static_cast<std::uint64_t>(doc.at("payload_bytes").as_number());
    const std::string& digest = doc.at("payload_digest").as_string();
    entry.payload_digest = util::parse_u64(digest.c_str(), "payload_digest");
    entry.error = doc.string_or("error", "");
    return entry;
}

}  // namespace

std::string_view job_phase_name(job_phase phase) {
    switch (phase) {
        case job_phase::accepted:
            return "accepted";
        case job_phase::done:
            return "done";
        case job_phase::failed:
            return "failed";
    }
    return "unknown";
}

spool::spool(std::filesystem::path dir) : dir_(std::move(dir)) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        throw ftc::error("spool: cannot create directory " + dir_.string() + ": " +
                         ec.message());
    }
    // Fail at startup when the directory is not writable: probe with the
    // same atomic writer every journal write will use.
    const std::filesystem::path probe = dir_ / ".spool-probe";
    util::atomic_write_file(probe, std::string_view{"ok"});
    std::filesystem::remove(probe, ec);

    // Adopt the journaled entries (replayed jobs transition through
    // mark_done/mark_failed like fresh ones) and continue ids after the
    // highest, so replayed and new jobs never collide.
    diag::error_sink ignore(diag::policy::lenient);
    entries_ = scan(ignore);
    for (const spool_entry& entry : entries_) {
        next_id_ = std::max(next_id_, entry.id + 1);
    }
}

std::filesystem::path spool::payload_file(std::uint64_t id) const {
    return dir_ / (std::string(kMetaPrefix) + std::to_string(id) + ".pcap");
}

std::filesystem::path spool::meta_file(std::uint64_t id) const {
    return dir_ / (std::string(kMetaPrefix) + std::to_string(id) + std::string(kMetaSuffix));
}

std::filesystem::path spool::report_file(std::uint64_t id) const {
    return dir_ / (std::string(kMetaPrefix) + std::to_string(id) + ".report");
}

std::filesystem::path spool::checkpoint_dir(std::uint64_t id) const {
    return dir_ / (std::string(kMetaPrefix) + std::to_string(id) + ".ckpt");
}

void spool::write_meta(const spool_entry& entry) {
    util::atomic_write_file(meta_file(entry.id), std::string_view{meta_json(entry)});
}

std::uint64_t spool::append(byte_view payload) {
    const std::lock_guard<std::mutex> lock(mutex_);
    spool_entry entry;
    entry.id = next_id_++;
    entry.payload_bytes = payload.size();
    entry.payload_digest = obs::fnv1a64(payload.data(), payload.size());
    // Payload before metadata: a crash between the two leaves an orphan
    // payload file (harmless, no metadata points at it), never metadata
    // naming a payload that does not exist.
    util::atomic_write_file(payload_file(entry.id), payload);
    if (util::net::consume_io_fault(util::net::io_op::spool_op) ==
        util::net::io_fault::corrupt_spool) {
        // Injected on-disk corruption: flip one payload byte in place so
        // the digest check catches it exactly like real bit rot.
        std::fstream f(payload_file(entry.id),
                       std::ios::binary | std::ios::in | std::ios::out);
        if (f && !payload.empty()) {
            char byte = 0;
            f.read(&byte, 1);
            f.seekp(0);
            byte = static_cast<char>(byte ^ 0x40);
            f.write(&byte, 1);
        }
    }
    write_meta(entry);
    entries_.push_back(entry);
    return entry.id;
}

void spool::mark_done(std::uint64_t id) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (spool_entry& entry : entries_) {
        if (entry.id == id) {
            entry.phase = job_phase::done;
            entry.error.clear();
            write_meta(entry);
            return;
        }
    }
    throw ftc::error("spool: mark_done on unknown job " + std::to_string(id));
}

void spool::mark_failed(std::uint64_t id, std::string_view error) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (spool_entry& entry : entries_) {
        if (entry.id == id) {
            entry.phase = job_phase::failed;
            entry.error = std::string(error);
            write_meta(entry);
            return;
        }
    }
    throw ftc::error("spool: mark_failed on unknown job " + std::to_string(id));
}

std::vector<spool_entry> spool::scan(diag::error_sink& sink) const {
    std::vector<spool_entry> out;
    std::error_code ec;
    for (const auto& dirent : std::filesystem::directory_iterator(dir_, ec)) {
        const std::string name = dirent.path().filename().string();
        if (name.rfind(kMetaPrefix, 0) != 0 || name.size() <= kMetaSuffix.size() ||
            name.compare(name.size() - kMetaSuffix.size(), kMetaSuffix.size(),
                         kMetaSuffix) != 0) {
            continue;
        }
        spool_entry entry;
        try {
            const byte_vector raw = read_file_bytes(dirent.path());
            entry = parse_meta(std::string(raw.begin(), raw.end()));
        } catch (const ftc::error& e) {
            sink.fail({diag::category::spool, diag::severity::error, 0, 0,
                       "spool metadata " + name + ": " + e.what()});
            continue;  // lenient: the job is lost but named; strict threw
        }
        // Verify the payload is still the bytes that were journaled. A
        // mismatch downgrades the job to failed (typed, per job) instead of
        // feeding damaged input into a session.
        if (entry.phase == job_phase::accepted) {
            try {
                (void)read_payload(entry.id, entry.payload_digest);
            } catch (const ftc::error& e) {
                sink.fail({diag::category::spool, diag::severity::error, 0, 0,
                           "spool payload of job " + std::to_string(entry.id) + ": " +
                               e.what()});
                entry.phase = job_phase::failed;
                entry.error = std::string("spool payload damaged: ") + e.what();
            }
        }
        out.push_back(std::move(entry));
    }
    std::sort(out.begin(), out.end(),
              [](const spool_entry& a, const spool_entry& b) { return a.id < b.id; });
    return out;
}

byte_vector spool::read_payload(std::uint64_t id, std::uint64_t expected_digest) const {
    byte_vector payload = read_file_bytes(payload_file(id));
    const std::uint64_t digest = obs::fnv1a64(payload.data(), payload.size());
    if (digest != expected_digest) {
        throw parse_error("spool: payload digest mismatch for job " + std::to_string(id) +
                          " (journaled " + std::to_string(expected_digest) + ", on disk " +
                          std::to_string(digest) + ")");
    }
    return payload;
}

}  // namespace ftc::serve
