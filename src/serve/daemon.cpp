#include "serve/daemon.hpp"

#include <fstream>

#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/net.hpp"

namespace ftc::serve {

namespace {

/// Parse "/jobs/<digits>[/report]" — returns false for anything else.
bool parse_job_target(std::string_view target, std::uint64_t& id, bool& want_report) {
    constexpr std::string_view kPrefix = "/jobs/";
    if (target.rfind(kPrefix, 0) != 0) {
        return false;
    }
    target.remove_prefix(kPrefix.size());
    want_report = false;
    constexpr std::string_view kReport = "/report";
    if (target.size() > kReport.size() &&
        target.compare(target.size() - kReport.size(), kReport.size(), kReport) == 0) {
        want_report = true;
        target.remove_suffix(kReport.size());
    }
    if (target.empty() || target.size() > 19) {
        return false;
    }
    std::uint64_t value = 0;
    for (char c : target) {
        if (c < '0' || c > '9') {
            return false;
        }
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    id = value;
    return true;
}

std::string error_json(std::string_view reason) {
    obs::json_writer w;
    w.begin_object();
    w.key("error");
    w.value(reason);
    w.end_object();
    return w.take();
}

std::string status_json(const job_status& status) {
    obs::json_writer w;
    w.begin_object();
    w.key("job");
    w.value(status.id);
    w.key("state");
    w.value(job_state_name(status.state));
    w.key("degraded");
    w.value(status.degraded);
    w.key("recovered");
    w.value(status.recovered);
    if (!status.error.empty()) {
        w.key("error");
        w.value(std::string_view{status.error});
    }
    w.end_object();
    return w.take();
}

}  // namespace

daemon::daemon(session_manager& sessions, obs::recorder* recorder, daemon_options options)
    : sessions_(sessions), recorder_(recorder), options_(std::move(options)) {
    listen_fd_ = util::net::listen_tcp(options_.host, options_.port, 16, &port_,
                                       "serve-listen");
    if (options_.io_threads == 0) {
        options_.io_threads = 1;
    }
    io_threads_.reserve(options_.io_threads);
    for (std::size_t i = 0; i < options_.io_threads; ++i) {
        io_threads_.emplace_back([this] { io_loop(); });
    }
}

daemon::~daemon() { stop(); }

void daemon::stop() noexcept {
    if (stopping_.exchange(true, std::memory_order_relaxed)) {
        return;
    }
    for (std::thread& t : io_threads_) {
        if (t.joinable()) {
            t.join();
        }
    }
    io_threads_.clear();
    util::net::close_fd(listen_fd_);
    listen_fd_ = -1;
}

void daemon::io_loop() {
    while (!stopping_.load(std::memory_order_relaxed)) {
        const int client = util::net::accept_client(listen_fd_, 200);
        if (client < 0) {
            continue;  // timeout or transient accept error: keep serving
        }
        // One connection is one bounded request/response exchange; any
        // exception is a that-connection problem, never the daemon's.
        try {
            handle_connection(client);
        } catch (const std::exception&) {
            obs::counter_add("serve.http_errors_total", 1.0);
        }
        util::net::close_fd(client);
    }
}

void daemon::respond_json(
    int fd, int status, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& extra) {
    if (status >= 400) {
        obs::counter_add("serve.http_errors_total", 1.0);
    }
    write_response(fd, status, "application/json", body, extra,
                   options_.limits.io_deadline_ms);
}

void daemon::handle_connection(int fd) {
    http_request request;
    const read_status rs = read_request(fd, options_.limits, request);
    requests_.fetch_add(1, std::memory_order_relaxed);
    obs::counter_add("serve.requests_total", 1.0);
    switch (rs) {
        case read_status::ok:
            break;
        case read_status::bad_request:
            respond_json(fd, 400, error_json("malformed request"));
            return;
        case read_status::too_large:
            respond_json(fd, 413, error_json("request exceeds configured limits"));
            return;
        default:
            // eof / timeout / reset: the peer is gone or stalled; there is
            // nobody left worth writing an error to.
            obs::counter_add("serve.http_errors_total", 1.0);
            return;
    }

    if (request.method == "POST" && request.target == "/jobs") {
        const admission verdict = sessions_.submit(
            byte_view{request.body.data(), request.body.size()});
        if (!verdict.accepted) {
            respond_json(
                fd, 503, error_json(verdict.reason),
                {{"Retry-After",
                  std::to_string(sessions_.options().retry_after_seconds)}});
            return;
        }
        obs::json_writer w;
        w.begin_object();
        w.key("job");
        w.value(verdict.id);
        w.key("state");
        w.value("queued");
        w.end_object();
        respond_json(fd, 202, w.take());
        return;
    }

    std::uint64_t id = 0;
    bool want_report = false;
    if (parse_job_target(request.target, id, want_report)) {
        if (request.method != "GET") {
            respond_json(fd, 405, error_json("use GET"));
            return;
        }
        const std::optional<job_status> status = sessions_.status(id);
        if (!status.has_value()) {
            respond_json(fd, 404, error_json("unknown job"));
            return;
        }
        if (!want_report) {
            respond_json(fd, 200, status_json(*status));
            return;
        }
        if (status->state != job_state::done) {
            respond_json(fd, 409, status_json(*status));
            return;
        }
        std::ifstream in(sessions_.journal().report_file(id), std::ios::binary);
        std::string report((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
        if (!in.is_open()) {
            respond_json(fd, 404, error_json("report file missing"));
            return;
        }
        write_response(fd, 200, "text/plain; charset=utf-8", report, {},
                       options_.limits.io_deadline_ms);
        return;
    }

    if (request.method == "GET" && request.target == "/healthz") {
        obs::json_writer w;
        w.begin_object();
        w.key("status");
        w.value("ok");
        w.key("queue");
        w.value(static_cast<std::uint64_t>(sessions_.queued()));
        w.key("active");
        w.value(static_cast<std::uint64_t>(sessions_.active()));
        w.key("pressure");
        w.value(static_cast<std::int64_t>(sessions_.pressure_level()));
        w.end_object();
        respond_json(fd, 200, w.take());
        return;
    }

    if (request.method == "GET" && request.target == "/metrics") {
        if (recorder_ == nullptr) {
            respond_json(fd, 404, error_json("metrics recorder not enabled"));
            return;
        }
        const std::string body = obs::to_prometheus(recorder_->metrics().snapshot());
        write_response(fd, 200, "text/plain; version=0.0.4", body, {},
                       options_.limits.io_deadline_ms);
        return;
    }

    respond_json(fd, 404, error_json("no such endpoint"));
}

}  // namespace ftc::serve
