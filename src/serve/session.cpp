#include "serve/session.hpp"

#include <utility>

#include "ckpt/manager.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "mem/mem.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "pcap/decap.hpp"
#include "pcap/pcap.hpp"
#include "segmentation/segment.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace ftc::serve {

std::string_view job_state_name(job_state state) {
    switch (state) {
        case job_state::queued:
            return "queued";
        case job_state::running:
            return "running";
        case job_state::done:
            return "done";
        case job_state::failed:
            return "failed";
    }
    return "unknown";
}

session_manager::session_manager(spool& sp, serve_options options)
    : spool_(sp), options_(std::move(options)) {
    if (options_.sessions == 0) {
        options_.sessions = 1;
    }
    if (options_.queue_depth == 0) {
        options_.queue_depth = 1;
    }
}

session_manager::~session_manager() { stop(); }

std::size_t session_manager::recover(diag::error_sink& sink) {
    std::size_t replayed = 0;
    for (const spool_entry& entry : spool_.scan(sink)) {
        job_status status;
        status.id = entry.id;
        status.recovered = true;
        status.error = entry.error;
        switch (entry.phase) {
            case job_phase::done:
                status.state = job_state::done;
                break;
            case job_phase::failed:
                status.state = job_state::failed;
                break;
            case job_phase::accepted: {
                status.state = job_state::queued;
                const std::lock_guard<std::mutex> lock(queue_mutex_);
                queue_.push_back({entry.id, entry.payload_digest, true});
                ++replayed;
                break;
            }
        }
        set_status(status);
    }
    if (replayed > 0) {
        obs::counter_add("serve.jobs_recovered_total", static_cast<double>(replayed));
        queue_cv_.notify_all();
    }
    return replayed;
}

void session_manager::start() {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    if (started_ || stopping_) {
        return;
    }
    started_ = true;
    workers_.reserve(options_.sessions);
    for (std::size_t i = 0; i < options_.sessions; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

void session_manager::stop() noexcept {
    {
        const std::lock_guard<std::mutex> lock(queue_mutex_);
        if (stopping_) {
            return;
        }
        stopping_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& worker : workers_) {
        if (worker.joinable()) {
            worker.join();
        }
    }
    workers_.clear();
}

admission session_manager::submit(byte_view payload) {
    admission result;
    {
        const std::lock_guard<std::mutex> lock(queue_mutex_);
        if (stopping_ || !started_) {
            result.reason = "stopping";
        } else if (queue_.size() >= options_.queue_depth) {
            result.reason = "queue-full";
        }
    }
    // Project the payload's working set against the process ceiling while
    // *not* holding the queue lock (mem counters are atomics). The factor
    // is deliberately coarse: ingest + segmentation + occurrence lists of
    // a capture run a small multiple of its size; a precise projection is
    // the governor's job once the session runs — this check only keeps
    // admissions from overcommitting what the governor would refuse later.
    if (result.reason.empty() && options_.max_memory > 0 &&
        mem::current_bytes() + 4 * static_cast<std::uint64_t>(payload.size()) >
            options_.max_memory) {
        result.reason = "memory-pressure";
    }
    if (!result.reason.empty()) {
        obs::counter_add("serve.jobs_shed_total", 1.0);
        return result;
    }

    // Journal first, acknowledge second: once append() returns, the job
    // survives kill -9 even if the enqueue below never happens (recover()
    // picks it up).
    const std::uint64_t digest = obs::fnv1a64(payload.data(), payload.size());
    const std::uint64_t id = spool_.append(payload);
    job_status status;
    status.id = id;
    status.state = job_state::queued;
    set_status(status);
    {
        const std::lock_guard<std::mutex> lock(queue_mutex_);
        queue_.push_back({id, digest, false});
        obs::gauge_set("serve.queue_depth", static_cast<double>(queue_.size()));
    }
    queue_cv_.notify_one();
    obs::counter_add("serve.jobs_submitted_total", 1.0);
    result.accepted = true;
    result.id = id;
    return result;
}

std::optional<job_status> session_manager::status(std::uint64_t id) const {
    const std::lock_guard<std::mutex> lock(status_mutex_);
    const auto it = status_.find(id);
    if (it == status_.end()) {
        return std::nullopt;
    }
    return it->second;
}

int session_manager::pressure_level() const {
    {
        const std::lock_guard<std::mutex> lock(queue_mutex_);
        if (options_.queue_depth > 1 && queue_.size() * 2 >= options_.queue_depth) {
            return 1;
        }
    }
    if (options_.max_memory > 0 &&
        mem::current_bytes() * 4 >= static_cast<std::uint64_t>(options_.max_memory) * 3) {
        return 1;
    }
    return 0;
}

std::size_t session_manager::queued() const {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    return queue_.size();
}

std::size_t session_manager::active() const {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    return active_;
}

void session_manager::drain() {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void session_manager::set_status(const job_status& status) {
    const std::lock_guard<std::mutex> lock(status_mutex_);
    status_[status.id] = status;
}

std::size_t session_manager::session_memory_cap(int pressure) const {
    std::size_t cap = options_.session_max_memory;
    if (cap == 0) {
        cap = options_.max_memory;
    }
    if (pressure >= 1 && cap > 0) {
        // Degraded: each session may push the tracked footprint only
        // halfway to its normal ceiling, trading earlier in-session
        // degradation (dedup, tiled matrix) for admission headroom.
        cap -= cap / 2;
    }
    return cap;
}

void session_manager::worker_loop() {
    for (;;) {
        pending_job job;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (stopping_) {
                return;
            }
            job = queue_.front();
            queue_.pop_front();
            ++active_;
            obs::gauge_set("serve.queue_depth", static_cast<double>(queue_.size()));
            obs::gauge_set("serve.active_sessions", static_cast<double>(active_));
        }
        run_session(job);
        {
            const std::lock_guard<std::mutex> lock(queue_mutex_);
            --active_;
            obs::gauge_set("serve.active_sessions", static_cast<double>(active_));
        }
        idle_cv_.notify_all();
    }
}

void session_manager::run_session(const pending_job& job) {
    job_status status;
    status.id = job.id;
    status.state = job_state::running;
    status.recovered = job.recovered;

    // The degradation decision is taken once, at session start, so the
    // whole session runs one consistent configuration (and the checkpoint
    // fingerprint — which excludes these knobs — stays valid either way).
    const int pressure = pressure_level();
    status.degraded = pressure >= 1;
    set_status(status);
    if (status.degraded) {
        obs::counter_add("serve.sessions_degraded_total", 1.0);
    }

    const obs::span session_span("serve.session");
    diag::error_sink sink(options_.lenient ? diag::policy::lenient
                                           : diag::policy::strict);
    try {
        const byte_vector raw = spool_.read_payload(job.id, job.digest);

        core::pipeline_options opt;
        opt.budget_seconds = options_.session_budget_seconds;
        opt.threads = options_.pipeline_threads;
        opt.neighborhood = status.degraded ? dissim::neighborhood_mode::sparse
                                           : options_.neighborhood;
        opt.max_memory = session_memory_cap(pressure);

        // Per-session governor on this worker thread: every tracked charge
        // the session makes is checked against the shared footprint, so the
        // combined sessions can never push it past the process ceiling.
        std::optional<mem::governor> governor;
        if (opt.max_memory > 0) {
            governor.emplace(opt.max_memory);
        }

        const pcap::capture cap = pcap::from_pcap_bytes(raw, sink);
        std::vector<byte_vector> messages;
        for (pcap::datagram& d : pcap::extract_datagrams(cap, {}, sink)) {
            messages.push_back(std::move(d.payload));
        }
        if (messages.size() < 3) {
            throw parse_error("not enough messages to analyze");
        }

        const auto segmenter = segmentation::make_segmenter(options_.segmenter);

        // Checkpointing is always on in serve: the journal entry plus the
        // stage snapshots are what make kill -9 cost at most one stage.
        ckpt::checkpoint_manager manager(
            spool_.checkpoint_dir(job.id),
            ckpt::fingerprint(opt, options_.segmenter,
                              obs::fnv1a64(raw.data(), raw.size())));
        opt.observer = &manager;

        std::vector<byte_vector> segmented_messages;
        core::pipeline_seed seed;
        ckpt::restored_state restored = manager.load(messages, sink);
        seed = std::move(restored.seed);
        if (restored.has_segments()) {
            segmented_messages = std::move(restored.messages);
            manager.set_surviving(std::move(restored.surviving));
        }

        const deadline dl = options_.session_budget_seconds > 0
                                ? deadline(options_.session_budget_seconds)
                                : deadline();
        core::pipeline_result result;
        try {
            if (!seed.segments.has_value()) {
                segmentation::lenient_segmentation segmented =
                    segmentation::segment_lenient(*segmenter, messages, dl, sink);
                segmented_messages = std::move(segmented.messages);
                manager.set_surviving(segmented.surviving);
                manager.on_segments(segmented_messages, segmented.segments);
                seed.segments = std::move(segmented.segments);
            }
            result = core::analyze_seeded(segmented_messages, nullptr, std::move(seed), opt);
        } catch (const interrupted_error&) {
            if (!seed.segments.has_value()) {
                manager.on_interrupted("segmentation");
            }
            throw;
        }
        manager.mark_complete();

        // The report bytes are exactly what `ftclust analyze --report-out`
        // writes for the same capture and options — the crash-recovery
        // acceptance test diffs the two.
        const std::string report = core::render_report(core::summarize_clusters(result));
        util::atomic_write_file(spool_.report_file(job.id), std::string_view{report});
        spool_.mark_done(job.id);
        status.state = job_state::done;
        set_status(status);
        obs::counter_add("serve.jobs_completed_total", 1.0);
        return;
    } catch (const interrupted_error&) {
        // Daemon-wide stop request, not a job failure: the journal entry
        // stays `accepted`, so the next start replays it from its last
        // stage checkpoint.
        status.state = job_state::queued;
        set_status(status);
        return;
    } catch (const ftc::error& e) {
        status.error = e.what();
    } catch (const std::exception& e) {
        status.error = e.what();
    }

    // Typed per-session failure: journal it, surface it, keep serving.
    status.state = job_state::failed;
    try {
        spool_.mark_failed(job.id, status.error);
    } catch (const ftc::error& journal_error) {
        // Even the failure record could not be journaled (disk gone?):
        // the in-memory status still carries both stories.
        status.error += std::string("; additionally: ") + journal_error.what();
    }
    set_status(status);
    obs::counter_add("serve.jobs_failed_total", 1.0);
}

}  // namespace ftc::serve
