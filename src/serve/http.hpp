/// \file http.hpp
/// Bounded HTTP/1.0 request reading and response writing for the serve
/// daemon (ftc::serve).
///
/// This extends the single-purpose scrape responder (obs/httpd) into a
/// small request surface the daemon can route on: method, target, headers
/// and a Content-Length-framed body. The robustness contract does the
/// heavy lifting:
///
///  - every read and write goes through util::net, so EINTR and partial
///    transfers are retried and every wait is deadline-bounded;
///  - the request head and body are size-capped (http_limits) — an
///    oversized or malformed request is a typed outcome (bad_request /
///    too_large), never an allocation blowup;
///  - a peer that trickles bytes slower than the deadline (slow-loris) is
///    a `timeout` outcome and the connection is dropped;
///  - responses are HTTP/1.0 `Connection: close` with an exact
///    Content-Length, written with the same retry loops — a response is
///    complete or the connection is visibly dead, never silently truncated.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/byteio.hpp"

namespace ftc::serve {

/// Per-connection safety bounds.
struct http_limits {
    std::size_t max_head_bytes = 8192;          ///< request line + headers
    std::size_t max_body_bytes = 64 * 1024 * 1024;  ///< POST body cap
    int io_deadline_ms = 5000;  ///< total patience for head, and per body read
};

/// One parsed request. Header names are lowercased; values are trimmed.
struct http_request {
    std::string method;  ///< "GET", "POST", ...
    std::string target;  ///< origin-form, e.g. "/jobs/3/report"
    std::vector<std::pair<std::string, std::string>> headers;
    byte_vector body;
};

/// Outcome of read_request; everything except `ok` ends the connection
/// (after an error response where one is still possible).
enum class read_status {
    ok,
    eof,          ///< peer closed before a full request arrived
    bad_request,  ///< malformed request line / headers / Content-Length
    too_large,    ///< head or body exceeds its cap
    timeout,      ///< deadline expired (slow-loris or stalled transfer)
    reset,        ///< connection reset mid-request
};

/// Read and parse one request from \p fd under \p limits.
read_status read_request(int fd, const http_limits& limits, http_request& out);

/// First header with lowercase name \p name, or nullptr.
const std::string* find_header(const http_request& request, std::string_view name);

/// Reason phrase for the status codes this server emits.
std::string_view status_reason(int code);

/// Write a complete HTTP/1.0 response (status line, Content-Type,
/// Content-Length, Connection: close, \p extra_headers, body). Returns
/// false when the peer vanished or the write deadline expired.
bool write_response(int fd, int status, std::string_view content_type,
                    std::string_view body,
                    const std::vector<std::pair<std::string, std::string>>& extra_headers,
                    int io_deadline_ms);

}  // namespace ftc::serve
