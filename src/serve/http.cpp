#include "serve/http.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>

#include "util/net.hpp"
#include "util/parse.hpp"

namespace ftc::serve {

namespace {

using util::net::io_result;

std::string lowercase(std::string_view text) {
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return out;
}

std::string_view trim(std::string_view text) {
    while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
        text.remove_prefix(1);
    }
    while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
        text.remove_suffix(1);
    }
    return text;
}

/// Strictly parse a Content-Length value (digits only, no sign, fits u64).
bool parse_content_length(std::string_view text, std::uint64_t& out) {
    if (text.empty() || text.size() > 19) {
        return false;
    }
    std::uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9') {
            return false;
        }
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = value;
    return true;
}

/// Parse "METHOD SP TARGET SP HTTP/x.y" + header lines out of \p head.
bool parse_head(std::string_view head, http_request& out) {
    const std::size_t line_end = head.find("\r\n");
    if (line_end == std::string_view::npos) {
        return false;
    }
    const std::string_view request_line = head.substr(0, line_end);
    const std::size_t sp1 = request_line.find(' ');
    const std::size_t sp2 = sp1 == std::string_view::npos
                                ? std::string_view::npos
                                : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos || sp1 == 0 ||
        sp2 == sp1 + 1) {
        return false;
    }
    const std::string_view version = request_line.substr(sp2 + 1);
    if (version.rfind("HTTP/", 0) != 0) {
        return false;
    }
    out.method = std::string(request_line.substr(0, sp1));
    out.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));

    std::size_t pos = line_end + 2;
    while (pos < head.size()) {
        const std::size_t next = head.find("\r\n", pos);
        if (next == std::string_view::npos) {
            return false;
        }
        if (next == pos) {
            break;  // blank line: end of headers
        }
        const std::string_view line = head.substr(pos, next - pos);
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos || colon == 0) {
            return false;
        }
        out.headers.emplace_back(lowercase(trim(line.substr(0, colon))),
                                 std::string(trim(line.substr(colon + 1))));
        pos = next + 2;
    }
    return true;
}

read_status map_failure(const io_result& r) {
    switch (r.st) {
        case io_result::status::eof:
            return read_status::eof;
        case io_result::status::timeout:
            return read_status::timeout;
        default:
            return read_status::reset;
    }
}

}  // namespace

read_status read_request(int fd, const http_limits& limits, http_request& out) {
    out = http_request{};
    // The whole head shares one deadline: a peer trickling one byte per
    // poll period (slow-loris) runs out of patience here, not per-read.
    const auto head_deadline = std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(limits.io_deadline_ms);
    std::string buf;
    std::size_t head_end = std::string::npos;
    while (head_end == std::string::npos) {
        if (buf.size() >= limits.max_head_bytes) {
            return read_status::too_large;
        }
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            head_deadline - std::chrono::steady_clock::now());
        if (left.count() <= 0) {
            return read_status::timeout;
        }
        char chunk[2048];
        const std::size_t cap =
            std::min(sizeof chunk, limits.max_head_bytes - buf.size());
        const io_result r =
            util::net::read_some(fd, chunk, cap, static_cast<int>(left.count()));
        if (!r.ok()) {
            return map_failure(r);
        }
        buf.append(chunk, r.n);
        head_end = buf.find("\r\n\r\n");
    }

    if (!parse_head(std::string_view{buf}.substr(0, head_end + 2), out)) {
        return read_status::bad_request;
    }

    std::uint64_t content_length = 0;
    if (const std::string* value = find_header(out, "content-length")) {
        if (!parse_content_length(*value, content_length)) {
            return read_status::bad_request;
        }
    }
    if (content_length > limits.max_body_bytes) {
        return read_status::too_large;
    }

    // Whatever followed the blank line is body; read the rest bounded.
    const std::size_t body_start = head_end + 4;
    const std::size_t already = buf.size() - body_start;
    if (already > content_length) {
        return read_status::bad_request;  // more body than announced
    }
    out.body.assign(buf.begin() + static_cast<std::ptrdiff_t>(body_start), buf.end());
    out.body.reserve(static_cast<std::size_t>(content_length));
    while (out.body.size() < content_length) {
        std::uint8_t chunk[16384];
        const std::size_t cap = std::min(
            sizeof chunk, static_cast<std::size_t>(content_length) - out.body.size());
        const io_result r = util::net::read_some(fd, chunk, cap, limits.io_deadline_ms);
        if (!r.ok()) {
            return map_failure(r);
        }
        out.body.insert(out.body.end(), chunk, chunk + r.n);
    }
    return read_status::ok;
}

const std::string* find_header(const http_request& request, std::string_view name) {
    for (const auto& [key, value] : request.headers) {
        if (key == name) {
            return &value;
        }
    }
    return nullptr;
}

std::string_view status_reason(int code) {
    switch (code) {
        case 200:
            return "OK";
        case 202:
            return "Accepted";
        case 400:
            return "Bad Request";
        case 404:
            return "Not Found";
        case 405:
            return "Method Not Allowed";
        case 409:
            return "Conflict";
        case 413:
            return "Payload Too Large";
        case 503:
            return "Service Unavailable";
        default:
            return "Error";
    }
}

bool write_response(int fd, int status, std::string_view content_type,
                    std::string_view body,
                    const std::vector<std::pair<std::string, std::string>>& extra_headers,
                    int io_deadline_ms) {
    std::string response = "HTTP/1.0 " + std::to_string(status) + " " +
                           std::string(status_reason(status)) + "\r\n";
    response += "Content-Type: " + std::string(content_type) + "\r\n";
    response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    for (const auto& [key, value] : extra_headers) {
        response += key + ": " + value + "\r\n";
    }
    response += "Connection: close\r\n\r\n";
    response += body;
    return util::net::write_all(fd, response.data(), response.size(), io_deadline_ms).ok();
}

}  // namespace ftc::serve
