/// \file spool.hpp
/// Crash-durable job journal of the serve daemon (ftc::serve::spool).
///
/// Every accepted job is journaled to the spool directory *before* the
/// daemon acknowledges it, so acceptance survives kill -9:
///
///   job-<id>.pcap   the submitted capture bytes, verbatim
///   job-<id>.json   metadata: id, state (accepted|done|failed), payload
///                   digest + size, error text for failed jobs
///   job-<id>.report the finished analyst report (written once, at done)
///   job-<id>.ckpt/  the session's checkpoint directory (ftc::ckpt)
///
/// All writes go through util::atomic_write_file (tmp + fsync + rename), so
/// a crash at any instant leaves complete files or none. On restart,
/// scan() walks the directory: jobs not yet `done`/`failed` are the replay
/// set, and because each carries its checkpoint directory, re-running one
/// costs at most the stage that was in flight — and, every stage being
/// bitwise deterministic, produces output identical to an uninterrupted
/// run. Damaged metadata or a payload whose digest no longer matches is
/// quarantined through ftc::diag (category spool) — one corrupt spool file
/// fails one job, typed, never the daemon.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "util/byteio.hpp"
#include "util/diag.hpp"

namespace ftc::serve {

/// Durable lifecycle states of a journaled job.
enum class job_phase {
    accepted,  ///< journaled, not yet finished — the replay set
    done,      ///< report written
    failed,    ///< ended in a typed per-session error (recorded)
};

std::string_view job_phase_name(job_phase phase);

/// One journaled job as read back from its metadata file.
struct spool_entry {
    std::uint64_t id = 0;
    job_phase phase = job_phase::accepted;
    std::uint64_t payload_bytes = 0;
    std::uint64_t payload_digest = 0;  ///< FNV-1a 64 of the payload file
    std::string error;                 ///< failed jobs: the typed error text
};

/// The job journal over one spool directory. Thread-safe: submissions and
/// worker state transitions serialize on an internal mutex; the files
/// themselves are only ever replaced atomically.
class spool {
public:
    /// Creates \p dir (and parents) if needed; throws ftc::error when it
    /// cannot be created or written — a daemon that cannot journal must
    /// fail at startup, not on the first job. Existing entries are kept
    /// (that is the point); new ids continue after the highest on disk.
    explicit spool(std::filesystem::path dir);

    spool(const spool&) = delete;
    spool& operator=(const spool&) = delete;

    /// Journal a new job: payload first, then metadata (state accepted).
    /// Returns the assigned id. Throws ftc::error when the journal cannot
    /// be written. An armed corrupt_spool I/O fault flips one payload byte
    /// after the write, simulating on-disk corruption for the fault sweep.
    std::uint64_t append(byte_view payload);

    /// Transition a job to done (its report was written) / failed.
    void mark_done(std::uint64_t id);
    void mark_failed(std::uint64_t id, std::string_view error);

    /// Read back every journaled job, sorted by id. Unreadable or
    /// malformed metadata is quarantined through \p sink (category spool)
    /// and the job skipped; a payload-digest mismatch is reported the same
    /// way but the entry is returned as failed so the daemon can surface
    /// the loss per job.
    std::vector<spool_entry> scan(diag::error_sink& sink) const;

    /// The payload bytes of job \p id; throws ftc::parse_error when the
    /// file is unreadable or its digest does not match \p expected_digest.
    byte_vector read_payload(std::uint64_t id, std::uint64_t expected_digest) const;

    std::filesystem::path payload_file(std::uint64_t id) const;
    std::filesystem::path meta_file(std::uint64_t id) const;
    std::filesystem::path report_file(std::uint64_t id) const;
    std::filesystem::path checkpoint_dir(std::uint64_t id) const;

    const std::filesystem::path& dir() const { return dir_; }

private:
    void write_meta(const spool_entry& entry);

    std::filesystem::path dir_;
    mutable std::mutex mutex_;
    std::uint64_t next_id_ = 1;
    std::vector<spool_entry> entries_;  ///< in-memory mirror (id-sorted)
};

}  // namespace ftc::serve
