/// \file daemon.hpp
/// HTTP front door of `ftclust serve` (ftc::serve::daemon).
///
/// A small pool of I/O threads accepts local HTTP/1.0 connections and
/// routes them onto the session manager:
///
///   POST /jobs              submit a capture (body = pcap bytes)
///                           202 {"job": id}  — journaled before the ack
///                           503 {"error": reason} + Retry-After when shed
///   GET  /jobs/<id>         job status JSON (404 for unknown ids)
///   GET  /jobs/<id>/report  the finished analyst report
///                           (409 while queued/running, 404 unknown)
///   GET  /healthz           {"status","queue","active","pressure"}
///   GET  /metrics           Prometheus text exposition (404 when the
///                           daemon runs without a metrics recorder)
///
/// Every connection is bounded: head and body caps, one deadline for the
/// whole request head (slow-loris defense), deadline-bounded writes. A
/// misbehaving client costs one connection, never a worker session. The
/// daemon never exits on a connection error; stop() (or destruction)
/// closes the listener and joins the I/O threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "serve/http.hpp"
#include "serve/session.hpp"

namespace ftc::obs {
class recorder;
}  // namespace ftc::obs

namespace ftc::serve {

/// Listener configuration; session behavior lives in serve_options.
struct daemon_options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral, read back via port()
    std::size_t io_threads = 2;
    http_limits limits;
};

class daemon {
public:
    /// Binds the listener (throws ftc::error on failure) and starts the
    /// I/O threads. \p recorder may be nullptr: /metrics then answers 404
    /// and counters fall back to the ambient obs hooks.
    daemon(session_manager& sessions, obs::recorder* recorder, daemon_options options);
    ~daemon();

    daemon(const daemon&) = delete;
    daemon& operator=(const daemon&) = delete;

    std::uint16_t port() const { return port_; }
    std::uint64_t requests_served() const {
        return requests_.load(std::memory_order_relaxed);
    }

    /// Stop accepting, close the listener, join the I/O threads.
    void stop() noexcept;

private:
    void io_loop();
    void handle_connection(int fd);
    void respond_json(int fd, int status, const std::string& body,
                      const std::vector<std::pair<std::string, std::string>>& extra = {});

    session_manager& sessions_;
    obs::recorder* recorder_;
    daemon_options options_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> requests_{0};
    std::vector<std::thread> io_threads_;
};

}  // namespace ftc::serve
