/// \file session.hpp
/// Fault-isolated session execution for the serve daemon
/// (ftc::serve::session_manager).
///
/// The manager owns a bounded job queue and a small pool of worker
/// threads. Each accepted job is journaled to the spool *before* the
/// caller hears "accepted", then executed as one *session*: the exact
/// batch-analyze flow (ingest, segmentation, seeded pipeline) run under
/// its own nested mem::governor, its own diag::error_sink, its own
/// wall-clock budget and its own checkpoint directory. The isolation
/// contract:
///
///  - a session failure is a typed, per-job outcome (journaled as
///    `failed` with the error text) — it never unwinds the daemon;
///  - admission control sheds *before* accepting: a full queue, a
///    stopping daemon or a memory projection past the process ceiling is
///    a polite refusal (the daemon answers 503 + Retry-After), never an
///    OOM later;
///  - under pressure (deep queue or high tracked footprint) sessions are
///    degraded first — the epsilon-neighborhood engine is forced to
///    sparse and the per-session memory cap tightened — and only when
///    degradation cannot help are submissions refused. Every degradation
///    step is result-neutral: the engines are bitwise-identical, so
///    reports match an unpressured run byte for byte;
///  - kill -9 at any instant costs at most the stage in flight:
///    recover() replays journaled-but-unfinished jobs through their
///    checkpoint directories, and, every stage being deterministic, the
///    replayed report is identical to an uninterrupted one.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dissim/neighborhood.hpp"
#include "serve/spool.hpp"
#include "util/byteio.hpp"
#include "util/diag.hpp"

namespace ftc::serve {

/// Daemon-level configuration shared by every session.
struct serve_options {
    std::string segmenter = "NEMESYS";  ///< segmentation algorithm for all jobs
    std::size_t sessions = 2;           ///< worker threads (concurrent sessions)
    std::size_t queue_depth = 8;        ///< accepted-but-unstarted jobs bound
    bool lenient = true;                ///< quarantine malformed input per job
    double session_budget_seconds = 120;  ///< per-session wall clock (0 = none)
    std::size_t pipeline_threads = 1;     ///< --threads of each session's pipeline
    dissim::neighborhood_mode neighborhood = dissim::neighborhood_mode::auto_;
    std::size_t max_memory = 0;  ///< process-wide tracked-heap ceiling (0 = off)
    /// Tracked-footprint ceiling a single session's charges may reach;
    /// 0 derives it from max_memory. Tightened further when degraded.
    std::size_t session_max_memory = 0;
    int retry_after_seconds = 1;  ///< advisory Retry-After on shed responses
};

/// In-memory lifecycle of a job (the durable one lives in the spool).
enum class job_state {
    queued,   ///< journaled, waiting for a worker
    running,  ///< a session is executing it
    done,     ///< report written, journaled done
    failed,   ///< typed per-session error, journaled failed
};

std::string_view job_state_name(job_state state);

/// Snapshot of one job as served by GET /jobs/<id>.
struct job_status {
    std::uint64_t id = 0;
    job_state state = job_state::queued;
    bool degraded = false;   ///< ran with pressure-forced sparse neighborhood
    bool recovered = false;  ///< replayed from the spool after a restart
    std::string error;       ///< failed jobs: the typed error text
};

/// Outcome of submit(): accepted (with the journaled id) or shed.
struct admission {
    bool accepted = false;
    std::uint64_t id = 0;
    std::string reason;  ///< shed reason: "queue-full", "memory-pressure", "stopping"
};

/// The session pool. Construction wires the spool; call recover() to
/// re-enqueue journaled unfinished jobs, then start() to spawn workers.
/// stop() (idempotent, also run by the destructor) stops accepting,
/// wakes the workers and joins them; queued-but-unstarted jobs stay
/// journaled `accepted` and replay on the next start.
class session_manager {
public:
    session_manager(spool& sp, serve_options options);
    ~session_manager();

    session_manager(const session_manager&) = delete;
    session_manager& operator=(const session_manager&) = delete;

    /// Scan the spool and adopt every journaled job: done/failed entries
    /// become queryable statuses, unfinished ones are re-enqueued (marked
    /// recovered). Returns the number re-enqueued. Call before start().
    std::size_t recover(diag::error_sink& sink);

    void start();
    void stop() noexcept;

    /// Admission control + journaling. On acceptance the job is durable
    /// before this returns.
    admission submit(byte_view payload);

    /// Status of a known job (journaled or in flight), or nullopt.
    std::optional<job_status> status(std::uint64_t id) const;

    /// 0 = normal, 1 = degraded (new sessions forced to sparse
    /// neighborhood + tightened memory cap). Published as a health field.
    int pressure_level() const;

    std::size_t queued() const;
    std::size_t active() const;
    const serve_options& options() const { return options_; }
    const spool& journal() const { return spool_; }

    /// Block until no job is queued or running (test convenience).
    void drain();

private:
    struct pending_job {
        std::uint64_t id = 0;
        std::uint64_t digest = 0;
        bool recovered = false;
    };

    void worker_loop();
    void run_session(const pending_job& job);
    void set_status(const job_status& status);
    std::size_t session_memory_cap(int pressure) const;

    spool& spool_;
    serve_options options_;

    mutable std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::condition_variable idle_cv_;
    std::deque<pending_job> queue_;
    std::size_t active_ = 0;
    bool stopping_ = false;
    bool started_ = false;

    mutable std::mutex status_mutex_;
    std::unordered_map<std::uint64_t, job_status> status_;

    std::vector<std::thread> workers_;
};

}  // namespace ftc::serve
