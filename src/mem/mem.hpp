/// \file mem.hpp
/// Tracked allocation accounting and the memory governor (ftc::mem).
///
/// The pipeline's dominant data structures — the dense dissimilarity upper
/// triangle above all — are quadratic in the number of unique segments, and
/// until now they were the one resource the run neither accounted for nor
/// survived running out of: an oversized trace ended in an OOM kill instead
/// of the partial-progress exit the deadline/segment/byte budgets already
/// guarantee. ftc::mem closes that gap with three pieces:
///
///  - **Always-on accounting.** Every tracked allocation (containers using
///    mem::tracking_allocator, plus explicit mem::charge scopes for storage
///    the pipeline sizes itself) updates process-global current/peak byte
///    counters. The disabled-path cost is a handful of relaxed atomics per
///    *container allocation* — never per element — so tracking stays on
///    unconditionally and benches report peak_bytes for free.
///
///  - **A scoped governor** carrying the `max_memory` budget dimension.
///    While a governor is installed, any tracked charge that would push the
///    tracked footprint past the limit throws ftc::memory_budget_exceeded_error
///    (a budget_exceeded_error, so every partial-progress catch site already
///    handles it), and stages can *project* a footprint with would_exceed()
///    before committing to it — that projection is what drives the
///    degradation ladder in core::analyze (weighted dedup, then triangular
///    tiled matrix construction, then a typed error; DESIGN.md §11).
///
///  - **Deterministic fault injection.** A process-global fault plan makes
///    the Nth tracked charge — or every charge past a byte high-water mark —
///    fail with the same typed error, so tests can prove that every stage
///    either completes, degrades, or exits cleanly from any allocation site
///    (ftc::testing::alloc_fault_injector is the RAII front end).
///
/// Live gauges `mem.tracked_bytes` / `mem.tracked_bytes_peak` and the
/// counter `mem.tracked_allocs_total` are published through ftc::obs;
/// gauge publication is throttled to peak growth steps so the per-charge
/// obs cost stays bounded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "util/error.hpp"

namespace ftc::mem {

// ---------------------------------------------------------------------------
// Always-on accounting
// ---------------------------------------------------------------------------

/// Bytes currently held by tracked allocations/charges.
std::uint64_t current_bytes() noexcept;

/// High-water mark of current_bytes() since process start or reset_peak().
std::uint64_t peak_bytes() noexcept;

/// Number of tracked charge events so far (allocations + explicit charges).
std::uint64_t tracked_allocations() noexcept;

/// Reset the peak to the current footprint (benches isolate per-run peaks).
void reset_peak() noexcept;

/// Force-publish the mem.* gauges into the active ftc::obs registry (the
/// throttled per-charge path publishes only on peak growth; stage
/// boundaries call this so manifests carry exact final values).
void publish_gauges() noexcept;

// ---------------------------------------------------------------------------
// Fault injection (see ftc::testing::alloc_fault_injector)
// ---------------------------------------------------------------------------

/// Deterministic allocation-fault plan; zero fields mean "disabled".
struct fault_plan {
    /// Fail the Nth tracked charge after the plan is installed (1-based).
    std::uint64_t fail_nth = 0;
    /// Fail every tracked charge that would push current_bytes() above
    /// this mark — a simulated hard heap ceiling.
    std::uint64_t fail_above_bytes = 0;

    bool armed() const noexcept { return fail_nth > 0 || fail_above_bytes > 0; }
};

/// Install (or, with a default-constructed plan, clear) the process-global
/// fault plan. The fail_nth countdown restarts at every install.
void set_fault_plan(const fault_plan& plan) noexcept;

/// The currently installed plan (all-zero when none).
fault_plan get_fault_plan() noexcept;

// ---------------------------------------------------------------------------
// The governor: scoped max_memory budget
// ---------------------------------------------------------------------------

/// Scoped memory budget. Installing a governor makes every tracked charge
/// check the limit; uninstalling (destruction) restores the previous
/// governor (they nest, innermost wins). A limit of 0 keeps charges
/// unchecked but still lets fault plans and accounting apply — and marks
/// memory governance as "on" for reporting purposes.
///
/// The governor stack is *per thread*: install and uninstall must happen
/// on the same thread, and only charges made on that thread are governed.
/// This is what lets the serve daemon run concurrent sessions, each on its
/// own worker thread under its own nested governor, without the install/
/// restore pairs interleaving. The tracked charge sites are coarse
/// coordinator-thread allocations, so a session's governor sees all of
/// that session's tracked footprint; a process-wide ceiling across
/// sessions is enforced by admission control, not by a shared governor.
class governor {
public:
    explicit governor(std::uint64_t limit_bytes) noexcept;
    ~governor();

    governor(const governor&) = delete;
    governor& operator=(const governor&) = delete;

    std::uint64_t limit() const noexcept { return limit_; }

    /// Would charging \p extra bytes cross this governor's limit?
    /// Always false for an unlimited (limit 0) governor.
    bool would_exceed(std::uint64_t extra) const noexcept;

    /// The innermost installed governor, or nullptr.
    static governor* active() noexcept;

private:
    std::uint64_t limit_ = 0;
    governor* previous_ = nullptr;
};

/// Projection against the active governor; false when none is installed.
inline bool would_exceed(std::uint64_t extra) noexcept {
    governor* g = governor::active();
    return g != nullptr && g->would_exceed(extra);
}

// ---------------------------------------------------------------------------
// Charge/release primitives
// ---------------------------------------------------------------------------

/// Record a tracked charge of \p bytes. Consults the fault plan and the
/// active governor's limit *before* touching the counters; throws
/// ftc::memory_budget_exceeded_error naming \p what when either trips, in
/// which case nothing was charged.
void on_charge(std::uint64_t bytes, const char* what);

/// Release \p bytes of a previous charge. Saturates at zero (a container
/// allocated under one governor scope may be destroyed under another), and
/// never throws — release sits on destructor paths.
void on_release(std::uint64_t bytes) noexcept;

/// RAII explicit charge for storage whose container type the tracker does
/// not own (occurrence lists, k-NN curves held as plain std::vector).
/// Charges on construction (which may throw, leaving a disarmed charge
/// behind only if it succeeded), releases on destruction. Copying
/// re-charges the same amount — so a struct carrying a charge stays
/// copyable — and moving transfers the obligation.
class charge {
public:
    charge() = default;

    charge(std::uint64_t bytes, const char* what) : bytes_(bytes) {
        on_charge(bytes_, what);
        armed_ = true;
    }

    charge(const charge& other) : bytes_(other.bytes_) {
        if (other.armed_) {
            on_charge(bytes_, "mem.charge.copy");
            armed_ = true;
        }
    }

    charge(charge&& other) noexcept : bytes_(other.bytes_), armed_(other.armed_) {
        other.armed_ = false;
        other.bytes_ = 0;
    }

    charge& operator=(charge other) noexcept {
        swap(other);
        return *this;
    }

    ~charge() { release(); }

    void swap(charge& other) noexcept {
        std::swap(bytes_, other.bytes_);
        std::swap(armed_, other.armed_);
    }

    /// Release early (idempotent).
    void release() noexcept {
        if (armed_) {
            on_release(bytes_);
            armed_ = false;
            bytes_ = 0;
        }
    }

    std::uint64_t bytes() const noexcept { return armed_ ? bytes_ : 0; }

private:
    std::uint64_t bytes_ = 0;
    bool armed_ = false;
};

// ---------------------------------------------------------------------------
// Tracking allocator
// ---------------------------------------------------------------------------

/// Standard-allocator shim charging the global accounting (and therefore
/// the active governor and fault plan) around every block. Stateless: all
/// instances are interchangeable, so containers move/swap freely across
/// governor scopes — release saturation keeps the books sane either way.
template <typename T>
struct tracking_allocator {
    using value_type = T;

    tracking_allocator() noexcept = default;
    template <typename U>
    tracking_allocator(const tracking_allocator<U>&) noexcept {}

    T* allocate(std::size_t n) {
        const std::uint64_t bytes = static_cast<std::uint64_t>(n) * sizeof(T);
        on_charge(bytes, "mem.alloc");
        try {
            return static_cast<T*>(::operator new(static_cast<std::size_t>(bytes)));
        } catch (...) {
            on_release(bytes);
            throw;
        }
    }

    void deallocate(T* p, std::size_t n) noexcept {
        ::operator delete(p);
        on_release(static_cast<std::uint64_t>(n) * sizeof(T));
    }

    template <typename U>
    bool operator==(const tracking_allocator<U>&) const noexcept {
        return true;
    }
};

/// std::vector whose backing store is tracked — the type of the matrix
/// storage and other footprint-dominant buffers.
template <typename T>
using vector = std::vector<T, tracking_allocator<T>>;

}  // namespace ftc::mem
