#include "mem/mem.hpp"

#include <algorithm>
#include <atomic>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace ftc::mem {

namespace {

// Global accounting. Relaxed ordering everywhere: the counters are
// monotonic tallies consumed for reporting and budget checks, never for
// synchronization; budget enforcement tolerates the (single-charge-sized)
// windows concurrent charges open, because the tracked sites are coarse
// container allocations, not per-element traffic.
std::atomic<std::uint64_t> g_current{0};
std::atomic<std::uint64_t> g_peak{0};
std::atomic<std::uint64_t> g_allocs{0};

// Fault plan. The plan fields change only from set_fault_plan (tests, CLI
// startup); the countdown is decremented from charge sites.
std::atomic<std::uint64_t> g_fail_countdown{0};
std::atomic<std::uint64_t> g_fail_above{0};

// Innermost governor of the *calling thread*. Thread-local rather than
// process-global: the serve daemon runs concurrent sessions on separate
// worker threads, each under its own nested governor, and a shared pointer
// stack would interleave their install/restore pairs. Tracked charges are
// coarse coordinator-thread allocations (see testing/alloc_fault.hpp), so
// the thread that installs a governor is the thread whose charges it must
// govern; cross-thread ceilings are the admission controller's job.
thread_local governor* t_governor = nullptr;

// Gauge publication throttle: publish only when the peak grows past the
// last published value by at least this step, so a charge-heavy run does
// not hammer the (mutexed) gauge path of the obs registry.
constexpr std::uint64_t kGaugeStep = 256 * 1024;
std::atomic<std::uint64_t> g_last_published_peak{0};

void publish(std::uint64_t current, std::uint64_t peak) noexcept {
    obs::gauge_set("mem.tracked_bytes", static_cast<double>(current));
    obs::gauge_set("mem.tracked_bytes_peak", static_cast<double>(peak));
}

/// Raise the peak to at least \p candidate; returns the resulting peak.
std::uint64_t raise_peak(std::uint64_t candidate) noexcept {
    std::uint64_t seen = g_peak.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !g_peak.compare_exchange_weak(seen, candidate, std::memory_order_relaxed)) {
    }
    return std::max(candidate, seen);
}

}  // namespace

std::uint64_t current_bytes() noexcept { return g_current.load(std::memory_order_relaxed); }

std::uint64_t peak_bytes() noexcept { return g_peak.load(std::memory_order_relaxed); }

std::uint64_t tracked_allocations() noexcept {
    return g_allocs.load(std::memory_order_relaxed);
}

void reset_peak() noexcept {
    const std::uint64_t now = g_current.load(std::memory_order_relaxed);
    g_peak.store(now, std::memory_order_relaxed);
    g_last_published_peak.store(now, std::memory_order_relaxed);
}

void publish_gauges() noexcept {
    const std::uint64_t current = g_current.load(std::memory_order_relaxed);
    const std::uint64_t peak = g_peak.load(std::memory_order_relaxed);
    g_last_published_peak.store(peak, std::memory_order_relaxed);
    publish(current, peak);
    obs::counter_add("mem.tracked_allocs_total", 0.0);  // materialize the series
}

void set_fault_plan(const fault_plan& plan) noexcept {
    g_fail_countdown.store(plan.fail_nth, std::memory_order_relaxed);
    g_fail_above.store(plan.fail_above_bytes, std::memory_order_relaxed);
}

fault_plan get_fault_plan() noexcept {
    fault_plan plan;
    plan.fail_nth = g_fail_countdown.load(std::memory_order_relaxed);
    plan.fail_above_bytes = g_fail_above.load(std::memory_order_relaxed);
    return plan;
}

governor::governor(std::uint64_t limit_bytes) noexcept : limit_(limit_bytes) {
    previous_ = t_governor;
    t_governor = this;
}

governor::~governor() { t_governor = previous_; }

bool governor::would_exceed(std::uint64_t extra) const noexcept {
    return limit_ > 0 && current_bytes() + extra > limit_;
}

governor* governor::active() noexcept { return t_governor; }

void on_charge(std::uint64_t bytes, const char* what) {
    const std::uint64_t ordinal = g_allocs.fetch_add(1, std::memory_order_relaxed) + 1;

    // Injected faults first: they simulate the hard failure a real
    // allocation would have hit at this exact site, so they must fire even
    // when the budget below would have let the charge through.
    if (g_fail_countdown.load(std::memory_order_relaxed) > 0) {
        if (g_fail_countdown.fetch_sub(1, std::memory_order_relaxed) == 1) {
            obs::counter_add("mem.faults_injected_total", 1.0);
            throw memory_budget_exceeded_error(
                message(what, ": injected allocation fault at tracked allocation #", ordinal,
                        " (", bytes, " bytes)"));
        }
    }
    const std::uint64_t fail_above = g_fail_above.load(std::memory_order_relaxed);
    const std::uint64_t current = g_current.load(std::memory_order_relaxed);
    if (fail_above > 0 && current + bytes > fail_above) {
        obs::counter_add("mem.faults_injected_total", 1.0);
        throw memory_budget_exceeded_error(
            message(what, ": injected allocation fault — ", bytes,
                    " bytes would push tracked footprint past the ", fail_above,
                    "-byte fault mark (current ", current, ")"));
    }

    if (const governor* g = governor::active();
        g != nullptr && g->limit() > 0 && current + bytes > g->limit()) {
        obs::counter_add("mem.budget_exceeded_total", 1.0);
        throw memory_budget_exceeded_error(
            message(what, ": allocating ", bytes, " bytes would exceed the memory budget (",
                    current, " of ", g->limit(), " bytes tracked)"));
    }

    const std::uint64_t now = g_current.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    const std::uint64_t peak = raise_peak(now);
    obs::counter_add("mem.tracked_allocs_total", 1.0);

    // Throttled gauge publication on peak growth.
    std::uint64_t last = g_last_published_peak.load(std::memory_order_relaxed);
    if (peak >= last + kGaugeStep &&
        g_last_published_peak.compare_exchange_strong(last, peak, std::memory_order_relaxed)) {
        publish(now, peak);
    }
}

void on_release(std::uint64_t bytes) noexcept {
    // Saturating decrement: a buffer allocated before tracking scope math
    // changed (e.g. moved across a reset) must never wrap the counter.
    std::uint64_t seen = g_current.load(std::memory_order_relaxed);
    std::uint64_t next;
    do {
        next = seen >= bytes ? seen - bytes : 0;
    } while (!g_current.compare_exchange_weak(seen, next, std::memory_order_relaxed));
}

}  // namespace ftc::mem
