/// \file ecdf.hpp
/// Empirical cumulative distribution function (ECDF).
///
/// The epsilon auto-configuration (paper Sec. III-D) builds the ECDF of the
/// k-nearest-neighbor dissimilarities of all unique segments and looks for
/// its knee. The ECDF over n samples is a step function jumping by 1/n at
/// each sample value.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ftc::mathx {

/// A sampled curve: parallel x/y vectors with x strictly increasing.
struct curve {
    std::vector<double> xs;
    std::vector<double> ys;

    std::size_t size() const { return xs.size(); }
    bool empty() const { return xs.empty(); }
};

/// Empirical CDF of a sample set.
class ecdf {
public:
    /// Build from (unsorted) samples. Throws ftc::precondition_error when
    /// the sample set is empty.
    explicit ecdf(std::span<const double> samples);

    /// Fraction of samples <= x, in [0, 1].
    double operator()(double x) const;

    /// Number of samples.
    std::size_t sample_count() const { return sorted_.size(); }

    /// Sorted sample values (ascending, duplicates preserved).
    const std::vector<double>& sorted_samples() const { return sorted_; }

    /// The ECDF as a curve over its distinct sample values:
    /// points (d, fraction of samples <= d). Suitable as Kneedle input.
    curve as_curve() const;

    /// ECDF restricted to samples strictly below \p limit (the trimmed
    /// ECDF Ê'_k of Sec. III-E used when the detected knee was too large).
    /// Throws ftc::precondition_error if no sample lies below the limit.
    ecdf trimmed_below(double limit) const;

private:
    std::vector<double> sorted_;
};

/// Resample a curve onto \p points evenly spaced x positions between the
/// curve's first and last x, by linear interpolation. A curve with a single
/// point is replicated. Throws on empty input or points < 2.
curve resample_uniform(const curve& input, std::size_t points);

}  // namespace ftc::mathx
