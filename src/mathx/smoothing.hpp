/// \file smoothing.hpp
/// Curve smoothing used before knee detection and by the NEMESYS segmenter.
///
/// * whittaker_smooth — penalized least-squares smoother (Whittaker-Eilers)
///   with a second-order difference penalty; the discrete equivalent of the
///   cubic smoothing spline the paper applies to the ECDF before Kneedle
///   (substitution documented in DESIGN.md Sec. 1).
/// * gaussian_filter1d — Gaussian convolution with reflected boundaries,
///   matching scipy.ndimage.gaussian_filter1d, used by NEMESYS on the delta
///   bit-congruence sequence (sigma = 0.6 in the WOOT'18 paper).
#pragma once

#include <span>
#include <vector>

namespace ftc::mathx {

/// Whittaker-Eilers smoother: returns z minimizing
///   sum_i (z_i - y_i)^2 + lambda * sum_i (z_{i-1} - 2 z_i + z_{i+1})^2.
/// Larger lambda gives a smoother result; lambda = 0 returns the input.
/// Sequences shorter than 3 are returned unchanged.
std::vector<double> whittaker_smooth(std::span<const double> ys, double lambda);

/// 1-D Gaussian filter, kernel truncated at 4 sigma, reflect boundary mode.
/// sigma <= 0 returns the input unchanged.
std::vector<double> gaussian_filter1d(std::span<const double> ys, double sigma);

}  // namespace ftc::mathx
