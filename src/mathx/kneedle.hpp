/// \file kneedle.hpp
/// Kneedle knee/elbow detection (Satopaa, Albrecht, Irwin, Raghavan:
/// "Finding a 'Kneedle' in a Haystack", ICDCSW 2011).
///
/// The epsilon auto-configuration (paper Sec. III-D) applies Kneedle to the
/// smoothed ECDF of k-NN dissimilarities and uses the *rightmost* detected
/// knee as the DBSCAN epsilon.
#pragma once

#include <optional>
#include <vector>

#include "mathx/ecdf.hpp"

namespace ftc::mathx {

/// Curve orientation for Kneedle's normalization step.
enum class curve_shape {
    concave_increasing,  ///< e.g. an ECDF: rises fast, then flattens (knee)
    convex_increasing,   ///< flat first, then rises (elbow on the right)
    concave_decreasing,
    convex_decreasing,
};

/// Parameters of the Kneedle detector.
struct kneedle_options {
    /// Sensitivity S: how far the difference curve must fall below a local
    /// maximum before it is declared a knee. Smaller is more aggressive.
    double sensitivity = 1.0;
    curve_shape shape = curve_shape::concave_increasing;
};

/// Result of a Kneedle run.
struct kneedle_result {
    /// All detected knee x positions, in ascending order.
    std::vector<double> knees;

    /// The rightmost knee, if any was found.
    std::optional<double> rightmost() const {
        if (knees.empty()) {
            return std::nullopt;
        }
        return knees.back();
    }
};

/// Run Kneedle on a (pre-smoothed) curve. Curves with fewer than five points
/// yield no knees. x values must be strictly increasing.
kneedle_result kneedle(const curve& input, const kneedle_options& options = {});

}  // namespace ftc::mathx
