#include "mathx/kneedle.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ftc::mathx {

namespace {

/// Normalize values to [0, 1]; constant input maps to all zeros.
std::vector<double> normalize(const std::vector<double>& values) {
    const auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
    const double mn = *mn_it;
    const double mx = *mx_it;
    std::vector<double> out(values.size(), 0.0);
    if (mx == mn) {
        return out;
    }
    for (std::size_t i = 0; i < values.size(); ++i) {
        out[i] = (values[i] - mn) / (mx - mn);
    }
    return out;
}

}  // namespace

kneedle_result kneedle(const curve& input, const kneedle_options& options) {
    expects(input.xs.size() == input.ys.size(), "kneedle: xs/ys size mismatch");
    kneedle_result result;
    const std::size_t n = input.size();
    if (n < 5) {
        return result;
    }
    for (std::size_t i = 1; i < n; ++i) {
        expects(input.xs[i] > input.xs[i - 1], "kneedle: xs must be strictly increasing");
    }

    // Step 1: normalize to the unit square.
    std::vector<double> xn = normalize(input.xs);
    std::vector<double> yn = normalize(input.ys);

    // Step 2: transform so every shape becomes "concave increasing", whose
    // knee maximizes y - x.
    switch (options.shape) {
        case curve_shape::concave_increasing:
            break;
        case curve_shape::convex_increasing:
            for (double& y : yn) {
                y = 1.0 - y;
            }
            std::reverse(yn.begin(), yn.end());
            // x axis keeps its spacing after mirroring.
            {
                std::vector<double> xr(n);
                for (std::size_t i = 0; i < n; ++i) {
                    xr[i] = xn.back() - xn[n - 1 - i];
                }
                xn = std::move(xr);
            }
            break;
        case curve_shape::concave_decreasing: {
            std::vector<double> xr(n);
            std::vector<double> yr(n);
            for (std::size_t i = 0; i < n; ++i) {
                xr[i] = xn.back() - xn[n - 1 - i];
                yr[i] = yn[n - 1 - i];
            }
            xn = std::move(xr);
            yn = std::move(yr);
            break;
        }
        case curve_shape::convex_decreasing:
            for (double& y : yn) {
                y = 1.0 - y;
            }
            break;
    }

    // Step 3: difference curve.
    std::vector<double> yd(n);
    for (std::size_t i = 0; i < n; ++i) {
        yd[i] = yn[i] - xn[i];
    }

    // Step 4: local maxima and minima of the difference curve.
    std::vector<std::size_t> maxima;
    std::vector<std::size_t> minima;
    for (std::size_t i = 1; i + 1 < n; ++i) {
        if (yd[i] >= yd[i - 1] && yd[i] > yd[i + 1]) {
            maxima.push_back(i);
        } else if (yd[i] <= yd[i - 1] && yd[i] < yd[i + 1]) {
            minima.push_back(i);
        }
    }
    if (maxima.empty()) {
        return result;
    }

    // Step 5: sensitivity thresholds T = y_lm - S * mean(delta x).
    double mean_dx = 0.0;
    for (std::size_t i = 1; i < n; ++i) {
        mean_dx += xn[i] - xn[i - 1];
    }
    mean_dx /= static_cast<double>(n - 1);

    // Step 6: scan forward from each local max; a knee is confirmed when the
    // difference curve drops below the threshold before the next local max.
    std::vector<double> knees_transformed;
    std::size_t max_cursor = 0;
    std::size_t min_cursor = 0;
    constexpr std::size_t kNoCandidate = static_cast<std::size_t>(-1);
    std::size_t candidate = kNoCandidate;
    double threshold = 0.0;
    for (std::size_t i = 1; i + 1 < n; ++i) {
        if (max_cursor < maxima.size() && i == maxima[max_cursor]) {
            candidate = i;
            threshold = yd[i] - options.sensitivity * mean_dx;
            ++max_cursor;
        }
        if (min_cursor < minima.size() && i == minima[min_cursor]) {
            // Reaching a local minimum resets the pending candidate.
            candidate = kNoCandidate;
            ++min_cursor;
        }
        if (candidate != kNoCandidate && i > candidate && yd[i] < threshold) {
            knees_transformed.push_back(xn[candidate]);
            candidate = kNoCandidate;
        }
    }

    // Map transformed x back to original coordinates.
    const double x_min = *std::min_element(input.xs.begin(), input.xs.end());
    const double x_max = *std::max_element(input.xs.begin(), input.xs.end());
    const double span = x_max - x_min;
    const bool mirrored = options.shape == curve_shape::convex_increasing ||
                          options.shape == curve_shape::concave_decreasing;
    for (double kx : knees_transformed) {
        const double unit = mirrored ? (1.0 - kx) : kx;
        result.knees.push_back(x_min + unit * span);
    }
    std::sort(result.knees.begin(), result.knees.end());
    return result;
}

}  // namespace ftc::mathx
