#include "mathx/ecdf.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ftc::mathx {

ecdf::ecdf(std::span<const double> samples) : sorted_(samples.begin(), samples.end()) {
    expects(!sorted_.empty(), "ecdf: empty sample set");
    std::sort(sorted_.begin(), sorted_.end());
}

double ecdf::operator()(double x) const {
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

curve ecdf::as_curve() const {
    curve out;
    const double n = static_cast<double>(sorted_.size());
    for (std::size_t i = 0; i < sorted_.size(); ++i) {
        // Collapse runs of equal values into one point at the run's end.
        if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) {
            continue;
        }
        out.xs.push_back(sorted_[i]);
        out.ys.push_back(static_cast<double>(i + 1) / n);
    }
    return out;
}

ecdf ecdf::trimmed_below(double limit) const {
    std::vector<double> kept;
    for (double v : sorted_) {
        if (v < limit) {
            kept.push_back(v);
        }
    }
    expects(!kept.empty(), "ecdf::trimmed_below: no samples below limit");
    return ecdf(kept);
}

curve resample_uniform(const curve& input, std::size_t points) {
    expects(!input.empty(), "resample_uniform: empty curve");
    expects(points >= 2, "resample_uniform: need at least two points");
    curve out;
    out.xs.reserve(points);
    out.ys.reserve(points);
    const double x0 = input.xs.front();
    const double x1 = input.xs.back();
    if (x1 == x0) {
        // Degenerate: all x equal; replicate the single level.
        for (std::size_t i = 0; i < points; ++i) {
            out.xs.push_back(x0);
            out.ys.push_back(input.ys.back());
        }
        return out;
    }
    std::size_t seg = 0;
    for (std::size_t i = 0; i < points; ++i) {
        const double t = static_cast<double>(i) / static_cast<double>(points - 1);
        const double x = x0 + t * (x1 - x0);
        while (seg + 1 < input.xs.size() && input.xs[seg + 1] < x) {
            ++seg;
        }
        double y;
        if (seg + 1 >= input.xs.size()) {
            y = input.ys.back();
        } else {
            const double xa = input.xs[seg];
            const double xb = input.xs[seg + 1];
            const double ya = input.ys[seg];
            const double yb = input.ys[seg + 1];
            const double u = (x - xa) / (xb - xa);
            y = ya + std::clamp(u, 0.0, 1.0) * (yb - ya);
        }
        out.xs.push_back(x);
        out.ys.push_back(y);
    }
    return out;
}

}  // namespace ftc::mathx
