#include "mathx/smoothing.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ftc::mathx {

std::vector<double> whittaker_smooth(std::span<const double> ys, double lambda) {
    expects(lambda >= 0.0, "whittaker_smooth: lambda must be non-negative");
    const std::size_t n = ys.size();
    std::vector<double> z(ys.begin(), ys.end());
    if (n < 3 || lambda == 0.0) {
        return z;
    }

    // Build A = I + lambda * D2' D2 where D2 is the (n-2) x n second
    // difference matrix. A is symmetric pentadiagonal; store three bands:
    // d0 (main), d1 (first sub/super), d2 (second sub/super).
    std::vector<double> d0(n), d1(n > 1 ? n - 1 : 0), d2(n > 2 ? n - 2 : 0);
    for (std::size_t i = 0; i < n; ++i) {
        // Row i of D2'D2: squared coefficients of the D2 rows touching
        // column i. D2 row r has entries (1, -2, 1) at columns r, r+1, r+2.
        double diag = 0.0;
        if (i + 2 < n) {
            diag += 1.0;  // row r = i contributes 1^2
        }
        if (i >= 1 && i + 1 < n) {
            diag += 4.0;  // row r = i-1 contributes (-2)^2
        }
        if (i >= 2) {
            diag += 1.0;  // row r = i-2 contributes 1^2
        }
        d0[i] = 1.0 + lambda * diag;
    }
    for (std::size_t i = 0; i + 1 < n; ++i) {
        // (D2'D2)[i][i+1]: rows touching both columns i and i+1.
        double v = 0.0;
        if (i + 2 < n) {
            v += 1.0 * -2.0;  // row r=i: cols i (1), i+1 (-2)
        }
        if (i >= 1) {
            v += -2.0 * 1.0;  // row r=i-1: cols i (-2), i+1 (1)
        }
        d1[i] = lambda * v;
    }
    for (std::size_t i = 0; i + 2 < n; ++i) {
        d2[i] = lambda * 1.0;  // row r=i: cols i (1), i+2 (1)
    }

    // Banded Cholesky factorization A = L D L' for bandwidth 2.
    std::vector<double> diag(n), l1(n > 1 ? n - 1 : 0), l2(n > 2 ? n - 2 : 0);
    for (std::size_t i = 0; i < n; ++i) {
        double di = d0[i];
        if (i >= 1) {
            di -= l1[i - 1] * l1[i - 1] * diag[i - 1];
        }
        if (i >= 2) {
            di -= l2[i - 2] * l2[i - 2] * diag[i - 2];
        }
        ensures(di > 0.0, "whittaker_smooth: matrix not positive definite");
        diag[i] = di;
        if (i + 1 < n) {
            double v = d1[i];
            if (i >= 1) {
                v -= l1[i - 1] * l2[i - 1] * diag[i - 1];
            }
            l1[i] = v / di;
        }
        if (i + 2 < n) {
            l2[i] = d2[i] / di;
        }
    }

    // Solve L w = y (forward), then D v = w, then L' z = v (backward).
    std::vector<double> w(n);
    for (std::size_t i = 0; i < n; ++i) {
        double v = ys[i];
        if (i >= 1) {
            v -= l1[i - 1] * w[i - 1];
        }
        if (i >= 2) {
            v -= l2[i - 2] * w[i - 2];
        }
        w[i] = v;
    }
    for (std::size_t i = 0; i < n; ++i) {
        w[i] /= diag[i];
    }
    for (std::size_t ri = 0; ri < n; ++ri) {
        const std::size_t i = n - 1 - ri;
        double v = w[i];
        if (i + 1 < n) {
            v -= l1[i] * z[i + 1];
        }
        if (i + 2 < n) {
            v -= l2[i] * z[i + 2];
        }
        z[i] = v;
    }
    return z;
}

std::vector<double> gaussian_filter1d(std::span<const double> ys, double sigma) {
    std::vector<double> out(ys.begin(), ys.end());
    const std::size_t n = ys.size();
    if (sigma <= 0.0 || n == 0) {
        return out;
    }
    const int radius = std::max(1, static_cast<int>(std::lround(4.0 * sigma)));
    std::vector<double> kernel(static_cast<std::size_t>(2 * radius + 1));
    double sum = 0.0;
    for (int k = -radius; k <= radius; ++k) {
        const double v = std::exp(-0.5 * (k / sigma) * (k / sigma));
        kernel[static_cast<std::size_t>(k + radius)] = v;
        sum += v;
    }
    for (double& v : kernel) {
        v /= sum;
    }
    // Reflect boundary mode (scipy default "reflect"): index -1 -> 0, -2 -> 1, ...
    auto reflect = [n](long idx) -> std::size_t {
        const long size = static_cast<long>(n);
        while (idx < 0 || idx >= size) {
            if (idx < 0) {
                idx = -idx - 1;
            }
            if (idx >= size) {
                idx = 2 * size - idx - 1;
            }
        }
        return static_cast<std::size_t>(idx);
    };
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (int k = -radius; k <= radius; ++k) {
            acc += kernel[static_cast<std::size_t>(k + radius)] *
                   ys[reflect(static_cast<long>(i) + k)];
        }
        out[i] = acc;
    }
    return out;
}

}  // namespace ftc::mathx
