/// \file matrix.hpp
/// Unique-segment condensation and the pairwise dissimilarity matrix D
/// (paper Sec. III-C).
///
/// The clustering pipeline analyzes *unique* segment values of at least two
/// bytes: one-byte segments are excluded (coincidental similarity of
/// arbitrary single bytes), and duplicate values are considered once. The
/// condensation keeps the mapping back to every concrete occurrence so that
/// evaluation metrics and coverage can be computed over the full trace —
/// unless memory pressure forces the weighted form (condense_weighted),
/// which keeps only per-value multiplicities (see DESIGN.md §11).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "mem/mem.hpp"
#include "segmentation/segment.hpp"
#include "util/byteio.hpp"
#include "util/stopwatch.hpp"

namespace ftc::dissim {

/// Unique segment values with their occurrences (full form) or per-value
/// multiplicities (weighted form, occurrences elided under memory pressure).
/// Either way `values` is the same vector in the same first-occurrence
/// order, so everything downstream of it — the matrix, the k-NN curves, the
/// clustering labels — is bitwise identical across the two forms.
struct unique_segments {
    /// Distinct segment values (each at least min_length bytes).
    std::vector<byte_vector> values;
    /// For each value, every concrete segment carrying it. Empty in the
    /// weighted form — the occurrence lists are exactly what the weighted
    /// form exists to not materialize.
    std::vector<std::vector<segmentation::segment>> occurrences;
    /// Per-value occurrence counts in the weighted form (empty otherwise).
    std::vector<std::uint32_t> multiplicities;
    /// True when this is the weighted form: occurrence *counts* survive
    /// (refinement weights, report columns, coverage), the per-occurrence
    /// (message, offset) mapping does not (ground-truth evaluation and the
    /// position-sensitive semantics rules need the full form).
    bool occurrences_elided = false;
    /// Segments skipped because they were shorter than min_length.
    std::size_t short_segments = 0;
    /// Tracked footprint of the value/occurrence storage (ftc::mem), so the
    /// memory governor sees this stage's contribution for its lifetime.
    mem::charge footprint;

    std::size_t size() const { return values.size(); }

    /// Occurrences of value \p i across the trace, valid in both forms.
    std::size_t occurrence_count(std::size_t i) const {
        return occurrences_elided ? multiplicities[i] : occurrences[i].size();
    }

    /// Concrete segments across all values (the pre-condensation count
    /// minus short_segments).
    std::size_t total_occurrences() const {
        std::size_t total = 0;
        for (std::size_t i = 0; i < size(); ++i) {
            total += occurrence_count(i);
        }
        return total;
    }
};

/// Condense a segmentation into unique segment values.
/// \p min_length excludes short segments (paper: 2, i.e. one-byte segments
/// are dropped).
unique_segments condense(const std::vector<byte_vector>& messages,
                         const segmentation::message_segments& segs,
                         std::size_t min_length = 2);

/// Memory-lean condensation: digest-indexed dedup that records how *often*
/// each value occurs but not *where* — the per-occurrence segment lists
/// (24 bytes each, one per concrete segment in the trace) are the
/// footprint-dominant part of the full form. Produces `values` bitwise
/// identical to condense() in the identical first-occurrence order (both
/// assign indices at first sight of a value), so clustering output is
/// provably unchanged; only occurrence-position consumers degrade.
unique_segments condense_weighted(const std::vector<byte_vector>& messages,
                                  const segmentation::message_segments& segs,
                                  std::size_t min_length = 2);

/// Storage layout of the dissimilarity matrix.
enum class layout {
    dense,       ///< n*n floats, mirrored — fastest at(), the default
    triangular,  ///< n*(n-1)/2 floats, upper triangle only — half the bytes
};

/// Sink invoked with each completed tile of a tiled triangular build:
/// rows [row_begin, row_end) of the upper triangle as one contiguous cell
/// run. Tiles arrive in row order, exactly cover the triangle, and every
/// cell is final when its tile is announced — the checkpoint spill hook.
using tile_sink = std::function<void(std::size_t row_begin, std::size_t row_end,
                                     std::size_t n, std::span<const float> cells)>;

/// Construction knobs of dissimilarity_matrix.
struct build_options {
    layout storage = layout::dense;
    /// Worker lanes (0 = hardware concurrency, 1 = serial).
    std::size_t threads = 1;
    /// Triangular builds only: rows of the upper triangle per tile
    /// (0 = the whole triangle as one tile). Tiling bounds how much work a
    /// crash can lose when on_tile spills tiles to disk; it never changes
    /// any cell value.
    std::size_t tile_rows = 0;
    /// Called after each completed tile (triangular builds only).
    tile_sink on_tile;
};

/// Symmetric matrix of pairwise sliding-Canberra dissimilarities.
/// Every entry is in [0, 1] (the range guarantee of the sliding-Canberra
/// measure, canberra.hpp) with an exactly-zero diagonal.
///
/// Construction and k-NN extraction accept a worker-thread count
/// (0 = hardware concurrency, 1 = the legacy serial path). Both are pure
/// fan-outs over independent entries — every (i, j) pair is computed by
/// exactly one lane and written to locations no other lane touches — so
/// the result is bitwise identical at any thread count. Pairs are
/// evaluated through the runtime-dispatched kernel backend (kernel.hpp;
/// numerics in DESIGN.md §9), which is bitwise identical to the scalar
/// reference, so the matrix is also independent of the selected backend.
/// Because each pair's value is the single-call kernel result regardless
/// of how pairs are batched or ordered, the dense and triangular layouts
/// hold bit-identical cell values — layout is a footprint knob, never a
/// result knob. Storage is tracked (ftc::mem), so the allocation charges
/// the active memory governor: the one place an oversized trace used to
/// OOM now raises ftc::memory_budget_exceeded_error instead.
class dissimilarity_matrix {
public:
    /// Compute all pairwise dissimilarities on \p threads lanes
    /// (row-blocked upper-triangle fan-out, partners visited in
    /// length-bucketed order so equal-length pairs take the fast
    /// equal-length kernel path). Polls \p dl cooperatively from every
    /// lane. O(n²) kernel calls, each O(m·(n−m+1)) worst case before
    /// early-exit pruning (DESIGN.md §9); O(n²) floats of storage.
    explicit dissimilarity_matrix(std::span<const byte_vector> values,
                                  const deadline& dl = {}, std::size_t threads = 1);

    /// As above with full layout/tiling control. Triangular builds walk
    /// rows in plain index order tile by tile; dense builds keep the
    /// length-bucketed visit order (opts.tile_rows/on_tile ignored).
    dissimilarity_matrix(std::span<const byte_vector> values, const build_options& opts,
                         const deadline& dl = {});

    /// Build from a precomputed dense row-major n*n matrix — for callers
    /// with their own dissimilarity measure (and for tests). Throws unless
    /// the input is square, symmetric and zero on the diagonal.
    static dissimilarity_matrix from_dense(std::span<const double> dense, std::size_t n);

    /// Rebuild from an upper-triangle float dump in (i, j > i) row order —
    /// the checkpoint wire form (ftc::ckpt) — into the requested layout.
    /// The exact float bit patterns are restored (both triangles mirrored
    /// for dense, verbatim for triangular), so a matrix round-tripped
    /// through upper_triangle_f32()/from_upper is bitwise identical to the
    /// original whatever the layouts involved. Throws unless \p upper holds
    /// exactly n*(n-1)/2 entries, each finite and in [0, 1].
    static dissimilarity_matrix from_upper(std::span<const float> upper, std::size_t n,
                                           layout storage = layout::dense);

    /// The upper triangle (i < j, row order) as raw floats — the lossless
    /// counterpart of upper_triangle() used by checkpoint serialization.
    std::vector<float> upper_triangle_f32() const;

    std::size_t size() const { return n_; }

    /// How the cells are stored (result-neutral; see class comment).
    layout storage() const { return layout_; }

    /// Dissimilarity between values i and j (0 on the diagonal).
    double at(std::size_t i, std::size_t j) const {
        if (layout_ == layout::dense) {
            return data_[i * n_ + j];
        }
        if (i == j) {
            return 0.0;
        }
        return i < j ? data_[tri_cell(i, j)] : data_[tri_cell(j, i)];
    }

    /// For every element, the dissimilarity to its k-th nearest neighbour
    /// (k >= 1; k is clamped to n-1). Result has size() entries. Rows are
    /// independent, so \p threads lanes may extract them concurrently.
    /// O(n²) per call (one full row scan + selection per element).
    std::vector<double> kth_nn(std::size_t k, std::size_t threads = 1) const;

    /// kth_nn for every k in 1..k_max from a single row scan: result[k-1]
    /// is bitwise identical to kth_nn(k) (the k-th order statistic of a
    /// row does not depend on how it is selected), but the whole batch
    /// costs one O(n²) pass instead of k_max of them — the epsilon
    /// auto-configuration sweep (cluster/autoconf.cpp) is the consumer.
    /// Empty inner vectors when the matrix has fewer than 2 elements.
    std::vector<std::vector<double>> kth_nn_many(std::size_t k_max,
                                                 std::size_t threads = 1) const;

    /// All pairwise dissimilarities (i < j), unsorted.
    std::vector<double> upper_triangle() const;

    /// Raw row-major storage (n*n floats) — lets tests assert bitwise
    /// equality of matrices built at different thread counts. Dense
    /// layout only; triangular storage is reached via upper_triangle_f32.
    std::span<const float> data() const;

private:
    dissimilarity_matrix() = default;

    /// Cells of upper-triangle rows before row \p i (row r holds n-1-r).
    std::size_t tri_offset(std::size_t i) const {
        return i * (n_ - 1) - i * (i - 1) / 2;
    }

    /// Flat index of cell (i, j), i < j, in triangular storage.
    std::size_t tri_cell(std::size_t i, std::size_t j) const {
        return tri_offset(i) + (j - i - 1);
    }

    /// The n-1 off-diagonal entries of row \p i, in column order, into
    /// \p out — the layout-agnostic row scan behind the k-NN paths.
    void gather_row(std::size_t i, float* out) const;

    void build_dense(std::span<const byte_vector> values, const deadline& dl,
                     std::size_t threads);
    void build_triangular(std::span<const byte_vector> values, const build_options& opts,
                          const deadline& dl);

    std::size_t n_ = 0;
    layout layout_ = layout::dense;
    mem::vector<float> data_;
};

}  // namespace ftc::dissim
