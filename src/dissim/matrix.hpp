/// \file matrix.hpp
/// Unique-segment condensation and the pairwise dissimilarity matrix D
/// (paper Sec. III-C).
///
/// The clustering pipeline analyzes *unique* segment values of at least two
/// bytes: one-byte segments are excluded (coincidental similarity of
/// arbitrary single bytes), and duplicate values are considered once. The
/// condensation keeps the mapping back to every concrete occurrence so that
/// evaluation metrics and coverage can be computed over the full trace.
#pragma once

#include <span>
#include <vector>

#include "segmentation/segment.hpp"
#include "util/byteio.hpp"
#include "util/stopwatch.hpp"

namespace ftc::dissim {

/// Unique segment values with their occurrences.
struct unique_segments {
    /// Distinct segment values (each at least min_length bytes).
    std::vector<byte_vector> values;
    /// For each value, every concrete segment carrying it.
    std::vector<std::vector<segmentation::segment>> occurrences;
    /// Segments skipped because they were shorter than min_length.
    std::size_t short_segments = 0;

    std::size_t size() const { return values.size(); }
};

/// Condense a segmentation into unique segment values.
/// \p min_length excludes short segments (paper: 2, i.e. one-byte segments
/// are dropped).
unique_segments condense(const std::vector<byte_vector>& messages,
                         const segmentation::message_segments& segs,
                         std::size_t min_length = 2);

/// Dense symmetric matrix of pairwise sliding-Canberra dissimilarities.
/// Every entry is in [0, 1] (the range guarantee of the sliding-Canberra
/// measure, canberra.hpp) with an exactly-zero diagonal.
///
/// Construction and k-NN extraction accept a worker-thread count
/// (0 = hardware concurrency, 1 = the legacy serial path). Both are pure
/// fan-outs over independent entries — every (i, j) pair is computed by
/// exactly one lane and written to locations no other lane touches — so
/// the result is bitwise identical at any thread count. Pairs are
/// evaluated through the runtime-dispatched kernel backend (kernel.hpp;
/// numerics in DESIGN.md §9), which is bitwise identical to the scalar
/// reference, so the matrix is also independent of the selected backend.
class dissimilarity_matrix {
public:
    /// Compute all pairwise dissimilarities on \p threads lanes
    /// (row-blocked upper-triangle fan-out, partners visited in
    /// length-bucketed order so equal-length pairs take the fast
    /// equal-length kernel path). Polls \p dl cooperatively from every
    /// lane. O(n²) kernel calls, each O(m·(n−m+1)) worst case before
    /// early-exit pruning (DESIGN.md §9); O(n²) floats of storage.
    explicit dissimilarity_matrix(std::span<const byte_vector> values,
                                  const deadline& dl = {}, std::size_t threads = 1);

    /// Build from a precomputed dense row-major n*n matrix — for callers
    /// with their own dissimilarity measure (and for tests). Throws unless
    /// the input is square, symmetric and zero on the diagonal.
    static dissimilarity_matrix from_dense(std::span<const double> dense, std::size_t n);

    /// Rebuild from an upper-triangle float dump in (i, j > i) row order —
    /// the checkpoint wire form (ftc::ckpt). The exact float bit patterns
    /// are restored into both triangles with a zero diagonal, so a matrix
    /// round-tripped through upper_triangle_f32()/from_upper is bitwise
    /// identical to the original. Throws unless \p upper holds exactly
    /// n*(n-1)/2 entries, each finite and in [0, 1].
    static dissimilarity_matrix from_upper(std::span<const float> upper, std::size_t n);

    /// The upper triangle (i < j, row order) as raw floats — the lossless
    /// counterpart of upper_triangle() used by checkpoint serialization.
    std::vector<float> upper_triangle_f32() const;

    std::size_t size() const { return n_; }

    /// Dissimilarity between values i and j (0 on the diagonal).
    double at(std::size_t i, std::size_t j) const {
        return data_[i * n_ + j];
    }

    /// For every element, the dissimilarity to its k-th nearest neighbour
    /// (k >= 1; k is clamped to n-1). Result has size() entries. Rows are
    /// independent, so \p threads lanes may extract them concurrently.
    /// O(n²) per call (one full row scan + selection per element).
    std::vector<double> kth_nn(std::size_t k, std::size_t threads = 1) const;

    /// kth_nn for every k in 1..k_max from a single row scan: result[k-1]
    /// is bitwise identical to kth_nn(k) (the k-th order statistic of a
    /// row does not depend on how it is selected), but the whole batch
    /// costs one O(n²) pass instead of k_max of them — the epsilon
    /// auto-configuration sweep (cluster/autoconf.cpp) is the consumer.
    /// Empty inner vectors when the matrix has fewer than 2 elements.
    std::vector<std::vector<double>> kth_nn_many(std::size_t k_max,
                                                 std::size_t threads = 1) const;

    /// All pairwise dissimilarities (i < j), unsorted.
    std::vector<double> upper_triangle() const;

    /// Raw row-major storage (n*n floats) — lets tests assert bitwise
    /// equality of matrices built at different thread counts.
    std::span<const float> data() const { return data_; }

private:
    dissimilarity_matrix() = default;

    std::size_t n_ = 0;
    std::vector<float> data_;
};

}  // namespace ftc::dissim
