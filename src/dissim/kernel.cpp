#include "dissim/kernel.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstring>
#include <limits>

#include "dissim/canberra.hpp"
#include "dissim/kernel_impl.hpp"
#include "util/check.hpp"

namespace ftc::dissim::kernel {

namespace {

/// The shared per-byte term table. Each entry runs exactly the arithmetic
/// of the scalar loop in canberra.cpp (same operand order, same select of
/// |x−y|), so a LUT lookup and a scalar evaluation of the same byte pair
/// are the same double.
struct term_table_holder {
    alignas(64) std::array<double, 256 * 256> terms{};

    term_table_holder() {
        for (int x = 0; x < 256; ++x) {
            for (int y = 0; y < 256; ++y) {
                const double xi = x;
                const double yi = y;
                const double denom = xi + yi;
                terms[static_cast<std::size_t>(x) * 256 + static_cast<std::size_t>(y)] =
                    denom != 0.0 ? (xi > yi ? xi - yi : yi - xi) / denom : 0.0;
            }
        }
    }
};

backend default_backend() { return simd_available() ? backend::simd : backend::lut; }

std::atomic<backend>& backend_slot() {
    static std::atomic<backend> slot{default_backend()};
    return slot;
}

/// Per-backend operation bundles. Distinct types (not detail::row_fn
/// pointers) so each sliding_pruned instantiation sees direct, inlinable
/// calls — on the short segments that dominate real traces an opaque
/// indirect call per window would swamp the LUT win.
///
/// batch8 sums eight consecutive windows (y+0..y+7 against x) into
/// sums[0..7], each window a strictly in-order add chain; the speedup
/// comes from the eight independent chains overlapping in the pipeline,
/// never from reordering one window's sum (DESIGN.md §9). Returns true
/// when abandoned at a kPruneChunk checkpoint with every partial already
/// above \p bound.
struct lut_ops {
    static double row(const std::uint8_t* x, const std::uint8_t* y, std::size_t len,
                      double sum, const double* lut) {
        return detail::row_terms_lut(x, y, len, sum, lut);
    }

    static bool batch8(const std::uint8_t* x, const std::uint8_t* y, std::size_t m,
                       const double* lut, double bound, double* sums) {
        double s0 = 0.0;
        double s1 = 0.0;
        double s2 = 0.0;
        double s3 = 0.0;
        double s4 = 0.0;
        double s5 = 0.0;
        double s6 = 0.0;
        double s7 = 0.0;
        std::size_t i = 0;
        while (i < m) {
            const std::size_t stop = std::min(i + detail::kPruneChunk, m);
            for (; i < stop; ++i) {
                // Lane k needs term (x[i], y[i + k]); one LUT row per x byte.
                // The eight y bytes arrive in a single 64-bit load (the loop
                // is load-port-bound otherwise) and shifts recover each lane's
                // byte — index values, and therefore sums, are unchanged.
                const double* lut_row = lut + (static_cast<std::size_t>(x[i]) << 8);
                std::uint64_t y8;
                std::memcpy(&y8, y + i, sizeof(y8));
                if constexpr (std::endian::native != std::endian::little) {
                    y8 = __builtin_bswap64(y8);
                }
                s0 += lut_row[y8 & 0xff];
                s1 += lut_row[(y8 >> 8) & 0xff];
                s2 += lut_row[(y8 >> 16) & 0xff];
                s3 += lut_row[(y8 >> 24) & 0xff];
                s4 += lut_row[(y8 >> 32) & 0xff];
                s5 += lut_row[(y8 >> 40) & 0xff];
                s6 += lut_row[(y8 >> 48) & 0xff];
                s7 += lut_row[y8 >> 56];
            }
            if (i < m && s0 > bound && s1 > bound && s2 > bound && s3 > bound &&
                s4 > bound && s5 > bound && s6 > bound && s7 > bound) {
                return true;
            }
        }
        sums[0] = s0;
        sums[1] = s1;
        sums[2] = s2;
        sums[3] = s3;
        sums[4] = s4;
        sums[5] = s5;
        sums[6] = s6;
        sums[7] = s7;
        return false;
    }

    static bool batch4(const std::uint8_t* x, const std::uint8_t* y, std::size_t m,
                       const double* lut, double bound, double* sums) {
        double s0 = 0.0;
        double s1 = 0.0;
        double s2 = 0.0;
        double s3 = 0.0;
        std::size_t i = 0;
        while (i < m) {
            const std::size_t stop = std::min(i + detail::kPruneChunk, m);
            for (; i < stop; ++i) {
                const double* lut_row = lut + (static_cast<std::size_t>(x[i]) << 8);
                std::uint32_t y4;
                std::memcpy(&y4, y + i, sizeof(y4));
                if constexpr (std::endian::native != std::endian::little) {
                    y4 = __builtin_bswap32(y4);
                }
                s0 += lut_row[y4 & 0xff];
                s1 += lut_row[(y4 >> 8) & 0xff];
                s2 += lut_row[(y4 >> 16) & 0xff];
                s3 += lut_row[y4 >> 24];
            }
            if (i < m && s0 > bound && s1 > bound && s2 > bound && s3 > bound) {
                return true;
            }
        }
        sums[0] = s0;
        sums[1] = s1;
        sums[2] = s2;
        sums[3] = s3;
        return false;
    }
};

#ifdef FTC_SIMD_AVX2
struct avx2_ops {
    static double row(const std::uint8_t* x, const std::uint8_t* y, std::size_t len,
                      double sum, const double* lut) {
        return detail::row_terms_avx2(x, y, len, sum, lut);
    }

    static bool batch8(const std::uint8_t* x, const std::uint8_t* y, std::size_t m,
                       const double* lut, double bound, double* sums) {
        return detail::batch8_terms_avx2(x, y, m, lut, bound, sums);
    }

    static bool batch4(const std::uint8_t* x, const std::uint8_t* y, std::size_t m,
                       const double* lut, double bound, double* sums) {
        return detail::batch4_terms_avx2(x, y, m, lut, bound, sums);
    }
};
#endif

/// Reference scalar sliding loop (full window sums, no pruning) with the
/// kernel-stats hooks — operation-for-operation the loop in canberra.cpp.
double sliding_scalar(byte_view s, byte_view l, stats* st) {
    const std::size_t m = s.size();
    const std::size_t n = l.size();
    double d_min = 1.0;
    for (std::size_t off = 0; off + m <= n; ++off) {
        if (st != nullptr) {
            ++st->windows_total;
        }
        const double d = canberra_dissimilarity(s, l.subspan(off, m));
        d_min = std::min(d_min, d);
        if (d_min == 0.0) {
            break;
        }
    }
    const double ratio = static_cast<double>(m) / static_cast<double>(n);
    const double penalty = 1.0 - ratio * (1.0 - d_min);
    return (static_cast<double>(m) * d_min + static_cast<double>(n - m) * penalty) /
           static_cast<double>(n);
}

/// LUT/SIMD sliding loop with early-exit pruning. The best window's raw
/// term sum is the running bound; a window whose partial sum exceeds it
/// cannot become the minimum (terms are non-negative and double addition
/// of non-negative terms is monotone), so it is abandoned mid-window. The
/// winning window is always summed to completion, in the scalar order, so
/// d_min — and therefore the returned dissimilarity — is bitwise identical
/// to the unpruned loop (DESIGN.md §9).
template <typename Ops>
double sliding_pruned(byte_view s, byte_view l, stats* st) {
    const std::size_t m = s.size();
    const std::size_t n = l.size();
    const double* lut = term_table();

    // The bound starts at +inf, so the first batch is computed in full and
    // seeds it — no special-cased first window, which would otherwise be a
    // standalone latency-bound chain per pair. min over raw window sums
    // equals the reference's min over per-window dissimilarities because
    // division by the positive constant m preserves order (DESIGN.md §9).
    double best = std::numeric_limits<double>::infinity();

    // Main loop: eight windows per step. Each window's sum is the exact
    // in-order scalar double, so taking the running min over them in
    // offset order reproduces the reference loop bitwise. A batch may run
    // up to seven windows past a zero-valued one before the best != 0.0
    // exit fires — harmless, since later windows cannot go below zero.
    std::size_t off = 0;
    for (; off + 7 + m <= n && best != 0.0; off += 8) {
        if (st != nullptr) {
            st->windows_total += 8;
        }
        double sums[8];
        if (Ops::batch8(s.data(), l.data() + off, m, lut, best, sums)) {
            if (st != nullptr) {
                st->windows_pruned += 8;
            }
            continue;
        }
        for (int k = 0; k < 8; ++k) {
            if (sums[k] > best) {
                if (st != nullptr) {
                    ++st->windows_pruned;
                }
            } else if (sums[k] < best) {
                best = sums[k];
            }
        }
    }

    // Four-window step for the mid remainder (short slide distances —
    // DHCP-style near-equal lengths — never reach the eight-window loop).
    for (; off + 3 + m <= n && best != 0.0; off += 4) {
        if (st != nullptr) {
            st->windows_total += 4;
        }
        double sums[4];
        if (Ops::batch4(s.data(), l.data() + off, m, lut, best, sums)) {
            if (st != nullptr) {
                st->windows_pruned += 4;
            }
            continue;
        }
        for (int k = 0; k < 4; ++k) {
            if (sums[k] > best) {
                if (st != nullptr) {
                    ++st->windows_pruned;
                }
            } else if (sums[k] < best) {
                best = sums[k];
            }
        }
    }

    // Remainder windows (fewer than four left), chunk-checked singly.
    for (; off + m <= n && best != 0.0; ++off) {
        if (st != nullptr) {
            ++st->windows_total;
        }
        const std::uint8_t* lp = l.data() + off;
        double sum = 0.0;
        bool pruned = false;
        for (std::size_t i = 0; i < m; i += detail::kPruneChunk) {
            sum = Ops::row(s.data() + i, lp + i, std::min(detail::kPruneChunk, m - i), sum,
                           lut);
            if (sum > best) {
                pruned = true;
                break;
            }
        }
        if (pruned) {
            if (st != nullptr) {
                ++st->windows_pruned;
            }
            continue;
        }
        if (sum < best) {
            best = sum;
        }
    }

    // min over off of (sum_off / m) equals (min over off of sum_off) / m:
    // IEEE division by a positive constant is monotone, so dividing once at
    // the end reproduces the scalar loop's per-window divide-then-min.
    const double d_min = best / static_cast<double>(m);
    const double ratio = static_cast<double>(m) / static_cast<double>(n);
    const double penalty = 1.0 - ratio * (1.0 - d_min);
    return (static_cast<double>(m) * d_min + static_cast<double>(n - m) * penalty) /
           static_cast<double>(n);
}

}  // namespace

namespace detail {

double row_terms_lut(const std::uint8_t* x, const std::uint8_t* y, std::size_t len,
                     double sum, const double* lut) {
    std::size_t i = 0;
    for (; i + 4 <= len; i += 4) {
        const double t0 = lut[static_cast<std::size_t>(x[i]) << 8 | y[i]];
        const double t1 = lut[static_cast<std::size_t>(x[i + 1]) << 8 | y[i + 1]];
        const double t2 = lut[static_cast<std::size_t>(x[i + 2]) << 8 | y[i + 2]];
        const double t3 = lut[static_cast<std::size_t>(x[i + 3]) << 8 | y[i + 3]];
        sum += t0;
        sum += t1;
        sum += t2;
        sum += t3;
    }
    for (; i < len; ++i) {
        sum += lut[static_cast<std::size_t>(x[i]) << 8 | y[i]];
    }
    return sum;
}

}  // namespace detail

const char* backend_name(backend b) {
    switch (b) {
        case backend::scalar:
            return "scalar";
        case backend::lut:
            return "lut";
        case backend::simd:
            return "simd";
    }
    return "unknown";
}

bool simd_compiled() {
#ifdef FTC_SIMD_AVX2
    return true;
#else
    return false;
#endif
}

bool simd_available() {
#ifdef FTC_SIMD_AVX2
    static const bool available = detail::avx2_runtime_supported();
    return available;
#else
    return false;
#endif
}

backend active() { return backend_slot().load(std::memory_order_relaxed); }

void force(backend b) {
    expects(b != backend::simd || simd_available(),
            "kernel::force: SIMD backend not available in this build/CPU");
    backend_slot().store(b, std::memory_order_relaxed);
}

void reset() { backend_slot().store(default_backend(), std::memory_order_relaxed); }

const double* term_table() {
    static const term_table_holder holder;
    return holder.terms.data();
}

double equal_dissimilarity(byte_view x, byte_view y, stats* st) {
    expects(!x.empty(), "equal_dissimilarity: empty vector");
    expects(x.size() == y.size(), "equal_dissimilarity: length mismatch");
    if (st != nullptr) {
        ++st->invocations;
        ++st->equal_fast_path;
    }
    const backend be = active();
    if (be == backend::scalar) {
        return canberra_dissimilarity(x, y);
    }
#ifdef FTC_SIMD_AVX2
    if (be == backend::simd) {
        const double sum =
            detail::row_terms_avx2(x.data(), y.data(), x.size(), 0.0, term_table());
        return sum / static_cast<double>(x.size());
    }
#endif
    const double sum =
        detail::row_terms_lut(x.data(), y.data(), x.size(), 0.0, term_table());
    return sum / static_cast<double>(x.size());
}

void equal_dissimilarity_batch(byte_view x, const byte_view* ys, std::size_t count,
                               double* out, stats* st) {
    expects(count >= 1 && count <= kEqualBatch,
            "equal_dissimilarity_batch: count must be in [1, kEqualBatch]");
    // Partial batches and the scalar backend go pair by pair; only a full
    // batch pays for the eight-chain loop. The eight chains are scalar
    // loads and adds on purpose — the loop is port-limited, not
    // latency-bound, so an AVX2 gather variant buys nothing here and the
    // simd backend shares this path (DESIGN.md §9).
    if (count < kEqualBatch || active() == backend::scalar) {
        for (std::size_t k = 0; k < count; ++k) {
            out[k] = equal_dissimilarity(x, ys[k], st);
        }
        return;
    }
    expects(!x.empty(), "equal_dissimilarity_batch: empty vector");
    const std::size_t m = x.size();
    for (std::size_t k = 0; k < count; ++k) {
        expects(ys[k].size() == m, "equal_dissimilarity_batch: length mismatch");
    }
    if (st != nullptr) {
        st->invocations += count;
        st->equal_fast_path += count;
    }
    const double* lut = term_table();
    const std::uint8_t* xp = x.data();
    const std::uint8_t* y0 = ys[0].data();
    const std::uint8_t* y1 = ys[1].data();
    const std::uint8_t* y2 = ys[2].data();
    const std::uint8_t* y3 = ys[3].data();
    const std::uint8_t* y4 = ys[4].data();
    const std::uint8_t* y5 = ys[5].data();
    const std::uint8_t* y6 = ys[6].data();
    const std::uint8_t* y7 = ys[7].data();
    double s0 = 0.0;
    double s1 = 0.0;
    double s2 = 0.0;
    double s3 = 0.0;
    double s4 = 0.0;
    double s5 = 0.0;
    double s6 = 0.0;
    double s7 = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
        // Pair k's chain appends term (x[i], ys[k][i]) — in-order per pair.
        const double* lut_row = lut + (static_cast<std::size_t>(xp[i]) << 8);
        s0 += lut_row[y0[i]];
        s1 += lut_row[y1[i]];
        s2 += lut_row[y2[i]];
        s3 += lut_row[y3[i]];
        s4 += lut_row[y4[i]];
        s5 += lut_row[y5[i]];
        s6 += lut_row[y6[i]];
        s7 += lut_row[y7[i]];
    }
    const double denom = static_cast<double>(m);
    out[0] = s0 / denom;
    out[1] = s1 / denom;
    out[2] = s2 / denom;
    out[3] = s3 / denom;
    out[4] = s4 / denom;
    out[5] = s5 / denom;
    out[6] = s6 / denom;
    out[7] = s7 / denom;
}

double sliding_dissimilarity(byte_view a, byte_view b, stats* st) {
    expects(!a.empty() && !b.empty(), "sliding_dissimilarity: empty segment");
    if (a.size() == b.size()) {
        return equal_dissimilarity(a, b, st);
    }
    if (st != nullptr) {
        ++st->invocations;
    }
    const byte_view s = a.size() <= b.size() ? a : b;  // shorter
    const byte_view l = a.size() <= b.size() ? b : a;  // longer
    const backend be = active();
    if (be == backend::scalar) {
        return sliding_scalar(s, l, st);
    }
#ifdef FTC_SIMD_AVX2
    if (be == backend::simd) {
        return sliding_pruned<avx2_ops>(s, l, st);
    }
#endif
    return sliding_pruned<lut_ops>(s, l, st);
}

namespace {

/// Batch body shared by the non-scalar backends: one dispatch for the
/// whole batch, per-pair loops otherwise identical to the single-call
/// path (bitwise-identical results by construction).
template <typename Ops>
void sliding_batch_loop(byte_view a, const byte_view* bs, std::size_t count, double* out,
                        stats* st) {
    for (std::size_t k = 0; k < count; ++k) {
        const byte_view b = bs[k];
        expects(!b.empty(), "sliding_dissimilarity_batch: empty segment");
        if (a.size() == b.size()) {
            out[k] = equal_dissimilarity(a, b, st);
            continue;
        }
        if (st != nullptr) {
            ++st->invocations;
        }
        const byte_view s = a.size() <= b.size() ? a : b;  // shorter
        const byte_view l = a.size() <= b.size() ? b : a;  // longer
        out[k] = sliding_pruned<Ops>(s, l, st);
    }
}

}  // namespace

void sliding_dissimilarity_batch(byte_view a, const byte_view* bs, std::size_t count,
                                 double* out, stats* st) {
    expects(count >= 1 && count <= kSlideBatch,
            "sliding_dissimilarity_batch: count must be in [1, kSlideBatch]");
    expects(!a.empty(), "sliding_dissimilarity_batch: empty segment");
    const backend be = active();
    if (be == backend::scalar) {
        for (std::size_t k = 0; k < count; ++k) {
            out[k] = sliding_dissimilarity(a, bs[k], st);
        }
        return;
    }
#ifdef FTC_SIMD_AVX2
    if (be == backend::simd) {
        sliding_batch_loop<avx2_ops>(a, bs, count, out, st);
        return;
    }
#endif
    sliding_batch_loop<lut_ops>(a, bs, count, out, st);
}

}  // namespace ftc::dissim::kernel
