#include "dissim/neighborhood.hpp"

#include "util/check.hpp"

namespace ftc::dissim {

const char* neighborhood_mode_name(neighborhood_mode mode) {
    switch (mode) {
        case neighborhood_mode::dense:
            return "dense";
        case neighborhood_mode::sparse:
            return "sparse";
        case neighborhood_mode::auto_:
            return "auto";
    }
    return "auto";
}

neighborhood_mode parse_neighborhood_mode(std::string_view text) {
    if (text == "dense") {
        return neighborhood_mode::dense;
    }
    if (text == "sparse") {
        return neighborhood_mode::sparse;
    }
    if (text == "auto") {
        return neighborhood_mode::auto_;
    }
    throw precondition_error(message("unknown neighborhood mode '", text,
                                     "' (expected dense, sparse or auto)"));
}

std::vector<std::uint32_t> matrix_neighborhood::neighbors_within(std::size_t i,
                                                                 double epsilon) const {
    expects(i < matrix_.size(), "neighbors_within: point index out of range");
    // The exact row scan cluster::dbscan historically ran: ascending j,
    // diagonal included (at(i, i) == 0 <= epsilon for any non-negative
    // epsilon), double comparison against the widened f32 cell.
    std::vector<std::uint32_t> out;
    for (std::size_t j = 0; j < matrix_.size(); ++j) {
        if (matrix_.at(i, j) <= epsilon) {
            out.push_back(static_cast<std::uint32_t>(j));
        }
    }
    return out;
}

}  // namespace ftc::dissim
