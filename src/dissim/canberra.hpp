/// \file canberra.hpp
/// Canberra dissimilarity between message segments (paper Sec. III-C;
/// originally Kleber, van der Heijden, Kargl — INFOCOM 2020).
///
/// Segments are interpreted as vectors of byte values. For equal lengths m
/// the normalized Canberra dissimilarity is
///   d(x, y) = (1/m) * sum_i |x_i - y_i| / (x_i + y_i)      in [0, 1],
/// with 0/0 terms contributing 0. For unequal lengths (m = |s| < n = |l|)
/// the shorter segment is slid over the longer one; with d_min the best
/// (smallest) normalized Canberra over all m-length windows of l, the
/// dissimilarity is
///   d(s, l) = ( m * d_min + (n - m) * p ) / n,
///   p       = 1 - (m/n) * (1 - d_min),
/// a non-linear penalty that charges the unmatched bytes less when the
/// matched window fits well and the lengths are close — the behaviour the
/// INFOCOM'20 "Canberra-Ulm dissimilarity" is designed for.
///
/// The functions here are the *reference scalar* implementations — the
/// semantics-defining code every optimized backend must match bit for bit.
/// Hot paths (matrix construction, benches) go through the LUT/SIMD kernel
/// layer in kernel.hpp instead, whose bitwise-identity argument is spelled
/// out in DESIGN.md §9.
#pragma once

#include "util/byteio.hpp"

namespace ftc::dissim {

/// Unnormalized Canberra distance of two equal-length byte vectors, in
/// [0, m] for length m (each per-byte term is in [0, 1]). O(m) with one
/// divide per non-zero byte pair.
/// Throws ftc::precondition_error on length mismatch.
double canberra_distance(byte_view x, byte_view y);

/// Normalized Canberra dissimilarity of two equal-length non-empty byte
/// vectors, in [0, 1]. O(m).
/// Throws ftc::precondition_error when empty.
double canberra_dissimilarity(byte_view x, byte_view y);

/// Sliding Canberra dissimilarity for segments of arbitrary non-zero
/// lengths, in [0, 1]. Symmetric; 0 iff one segment is embedded in the
/// other with a perfect window match (equal-length: iff identical).
/// O(m·(n−m+1)) for lengths m ≤ n — this reference loop sums every window
/// in full; kernel.hpp provides the pruned drop-in with identical output.
/// Throws ftc::precondition_error when either segment is empty.
double sliding_canberra_dissimilarity(byte_view a, byte_view b);

}  // namespace ftc::dissim
