/// \file sparse.hpp
/// Sparse epsilon-neighborhood construction (ftc::dissim::sparse,
/// DESIGN.md §13) — the sub-quadratic replacement for the dense matrix.
///
/// Instead of materializing all n·(n−1)/2 pairwise cells, the sparse engine
/// keeps, per unique segment, a short sorted list of its nearest neighbors
/// (capped at the autoconf k horizon) and answers everything else with
/// bucket-pruned on-demand scans:
///
///  - **Length buckets.** Representatives are grouped by byte length. For
///    lengths m <= n the sliding-Canberra dissimilarity is bounded below by
///    ((n−m)/n)² (derivation in DESIGN.md §13), so whole buckets whose
///    bound provably exceeds the current epsilon ceiling are skipped
///    without a single kernel call. Buckets are visited in ascending-bound
///    order, so the first pruned bucket ends the scan.
///  - **Phase 1: capped k-NN lists.** One bucket-pruned scan per point
///    collects its min(cap, n−1) nearest neighbors exactly — the same f32
///    order statistics a dense row selection yields — shrinking the prune
///    ceiling as the candidate heap fills. This serves every
///    kth_nn/kth_nn_many request up to the cap bitwise identically to the
///    matrix path.
///  - **Phase 2: cached range queries.** neighbors_within(i, eps) is exact
///    at ANY epsilon: served from the phase-1 list while eps lies below the
///    list's completeness radius, re-scanned (bucket-pruned, at eps) and
///    cached otherwise. DBSCAN's epsilon walk re-uses the caches across
///    re-clustering sweeps.
///  - **On-demand pairs.** dissimilarity(i, j) computes the kernel value at
///    f32 storage precision on first use and memoizes it — the refinement
///    pass reads the same few intra-cluster pairs repeatedly.
///
/// Everything is charged against ftc::mem (the sparse path is rung 0 of the
/// degradation ladder: it avoids the O(n²) allocation entirely), progress is
/// published through the obs seqlock ("dissim.sparse" stage), and the
/// pairs-scored/pairs-skipped/buckets-pruned counters quantify the
/// reduction. Clustering output over a sparse source is byte-identical to
/// the dense path (tests/test_pipeline_sparse.cpp) because every value it
/// exposes is the value the matrix would have stored.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "dissim/neighborhood.hpp"
#include "mem/mem.hpp"
#include "util/byteio.hpp"
#include "util/stopwatch.hpp"

namespace ftc::dissim {

/// Construction knobs of sparse_neighborhood.
struct sparse_build_options {
    /// Neighbors retained per point (>= 1) — the k horizon kth_nn_many can
    /// serve. The pipeline passes cluster::knn_k_max(n).
    std::size_t knn_cap = 2;
    /// Worker lanes for the phase-1 build (0 = hardware concurrency).
    /// Per-point scans are independent, so the lists are bitwise identical
    /// at any thread count.
    std::size_t threads = 1;
};

/// Sparse neighborhood_source over capped per-point neighbor lists (file
/// comment above; interface contract in neighborhood.hpp). Does not own
/// \p values — they back the on-demand kernel scans and must outlive the
/// object (the pipeline keeps unique_segments alive for the whole run).
class sparse_neighborhood final : public neighborhood_source {
public:
    /// Phase-1 build: bucket the values, scan each point's capped k-NN list.
    /// Polls \p dl cooperatively from every lane.
    sparse_neighborhood(std::span<const byte_vector> values,
                        const sparse_build_options& opts, const deadline& dl = {});

    /// Adopt previously built lists (checkpoint resume). \p lists must
    /// cover exactly \p values — deep validation happened at decode time
    /// (ckpt::decode_neighbors); this checks the shape invariants.
    sparse_neighborhood(std::span<const byte_vector> values, capped_neighbors lists);

    std::size_t size() const override { return n_; }
    double dissimilarity(std::size_t i, std::size_t j) const override;
    std::vector<std::uint32_t> neighbors_within(std::size_t i,
                                                double epsilon) const override;
    std::size_t knn_cap() const override { return capped_.cap; }
    std::vector<double> kth_nn(std::size_t k, std::size_t threads = 1) const override;
    std::vector<std::vector<double>> kth_nn_many(std::size_t k_max,
                                                 std::size_t threads = 1) const override;

    /// The phase-1 lists — what ftc::ckpt persists as the neighbors section.
    const capped_neighbors& capped() const { return capped_; }

    /// Kernel pairs actually scored so far (phase 1 + rescans + on-demand);
    /// the bench's pair-reduction numerator.
    std::uint64_t pairs_scored() const {
        return pairs_scored_.load(std::memory_order_relaxed);
    }

    /// Number of length buckets the values fell into.
    std::size_t bucket_count() const { return bucket_len_.size(); }

    /// Conservative f32 lower bound of the sliding-Canberra dissimilarity
    /// of two segments given only their lengths: ((n−m)/n)² for m <= n,
    /// deflated by two float ulps so that float-narrowed kernel results can
    /// never fall below it (proof sketch in DESIGN.md §13). Exposed for the
    /// property tests.
    static float length_lower_bound(std::size_t len_a, std::size_t len_b);

private:
    /// Range-query cache of one point: `items` (d, id)-ascending, the point
    /// itself excluded. Exact for every epsilon <= complete_through. Until
    /// the first rescan the phase-1 list itself is the cache (rescanned ==
    /// false) with completeness just below its largest stored distance.
    struct range_cache {
        double complete_through = -1.0;
        bool rescanned = false;
        std::vector<neighbor> items;
    };

    void build_buckets();
    void build_lists(const sparse_build_options& opts, const deadline& dl);
    void seed_caches();
    void charge_storage();
    void rescan(std::size_t i, double epsilon) const;
    float memoized_pair(std::uint32_t lo, std::uint32_t hi) const;

    template <typename Visit>
    std::pair<std::uint64_t, std::uint64_t> walk_buckets(std::size_t home,
                                                         std::size_t len,
                                                         Visit&& visit) const;

    std::span<const byte_vector> values_;
    std::size_t n_ = 0;

    // Length buckets: distinct lengths ascending, member ids grouped per
    // bucket (ascending within), and each point's home bucket.
    std::vector<std::size_t> bucket_len_;
    std::vector<std::uint32_t> bucket_begin_;  ///< bucket_count()+1 offsets
    std::vector<std::uint32_t> by_length_;
    std::vector<std::uint32_t> bucket_of_;

    capped_neighbors capped_;
    mutable std::vector<range_cache> cache_;

    // Open-addressed memo of on-demand pair values, keyed (lo << 32) | hi.
    mutable std::vector<std::uint64_t> memo_keys_;
    mutable std::vector<float> memo_vals_;
    mutable std::size_t memo_used_ = 0;

    mutable std::atomic<std::uint64_t> pairs_scored_{0};

    mem::charge lists_charge_;
    mutable std::uint64_t cache_bytes_ = 0;
    mutable mem::charge cache_charge_;
    mutable mem::charge memo_charge_;
};

}  // namespace ftc::dissim
