#include "dissim/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "dissim/kernel.hpp"
#include "obs/obs.hpp"
#include "obs/progress.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace ftc::dissim {

namespace {

/// Publish one scan block's kernel counters through ftc::obs (the same
/// counters the matrix build publishes, so dashboards see one kernel
/// workload regardless of the neighborhood mode).
void publish_kernel_stats(const kernel::stats& st) {
    obs::counter_add("dissim.kernel.invocations_total",
                     static_cast<double>(st.invocations));
    obs::counter_add("dissim.kernel.equal_fast_path_total",
                     static_cast<double>(st.equal_fast_path));
    obs::counter_add("dissim.kernel.windows_total",
                     static_cast<double>(st.windows_total));
    obs::counter_add("dissim.kernel.windows_pruned_total",
                     static_cast<double>(st.windows_pruned));
}

/// Pending kernel batches of one point's bucket scan — the row_batcher of
/// matrix.cpp with a candidate sink instead of matrix cells. Partners
/// accumulate per path (equal / sliding length) and flush through the batch
/// entry points; each pair's value is bitwise the single-call kernel result
/// narrowed to f32, i.e. exactly what the matrix cell would store. Batches
/// are flushed at every bucket boundary, so the sink sees each bucket's
/// candidates before the next bucket's prune decision.
struct scan_batcher {
    static_assert(kernel::kEqualBatch == kernel::kSlideBatch);

    struct pending_batch {
        std::uint32_t ids[kernel::kEqualBatch];
        byte_view views[kernel::kEqualBatch];
        double out[kernel::kEqualBatch];
        std::size_t count = 0;
    };

    byte_view a;
    kernel::stats* stp = nullptr;
    pending_batch equal_pend;
    pending_batch slide_pend;

    template <typename Sink>
    void flush(pending_batch& pend, Sink&& sink) {
        if (pend.count == 0) {
            return;
        }
        if (&pend == &equal_pend) {
            kernel::equal_dissimilarity_batch(a, pend.views, pend.count, pend.out, stp);
        } else {
            kernel::sliding_dissimilarity_batch(a, pend.views, pend.count, pend.out, stp);
        }
        for (std::size_t k = 0; k < pend.count; ++k) {
            sink(pend.ids[k], static_cast<float>(pend.out[k]));
        }
        pend.count = 0;
    }

    template <typename Sink>
    void add(std::uint32_t id, byte_view b, Sink&& sink) {
        pending_batch& pend = a.size() == b.size() ? equal_pend : slide_pend;
        pend.ids[pend.count] = id;
        pend.views[pend.count] = b;
        if (++pend.count == kernel::kEqualBatch) {
            flush(pend, sink);
        }
    }

    template <typename Sink>
    void finish_bucket(Sink&& sink) {
        flush(equal_pend, sink);
        flush(slide_pend, sink);
    }
};

/// Ascending (d, id) — the storage order of capped lists and range caches.
bool neighbor_less(const neighbor& a, const neighbor& b) {
    return a.d < b.d || (a.d == b.d && a.id < b.id);
}

/// Max-heap comparator over the candidate heap (largest kept distance on
/// top — the prune ceiling). Plain distance order: replacement is strict
/// (f < top), so equal-valued candidates never churn the heap.
bool heap_less(const neighbor& a, const neighbor& b) {
    return a.d < b.d;
}

std::uint64_t pair_key(std::uint32_t lo, std::uint32_t hi) {
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

std::size_t pair_hash(std::uint64_t key) {
    // splitmix64 finalizer — full-width mix of the packed (lo, hi) key.
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ull;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebull;
    key ^= key >> 31;
    return static_cast<std::size_t>(key);
}

constexpr std::uint64_t kEmptyKey = ~0ull;  // lo == hi is impossible for a pair

}  // namespace

float sparse_neighborhood::length_lower_bound(std::size_t len_a, std::size_t len_b) {
    if (len_a == len_b) {
        return 0.0f;
    }
    const std::size_t m = std::min(len_a, len_b);
    const std::size_t n = std::max(len_a, len_b);
    // d(a, b) = (m·d_min + (n−m)·p)/n with p = 1 − (m/n)(1−d_min) is
    // monotone increasing in d_min ∈ [0, 1]; at d_min = 0 it evaluates to
    // ((n−m)/n)² — the length lower bound (derivation in DESIGN.md §13).
    const double shorter = static_cast<double>(m);
    const double longer = static_cast<double>(n);
    const double diff = (longer - shorter) / longer;
    float bound = static_cast<float>(diff * diff);
    // Stored values are doubles narrowed to f32 by round-to-nearest, which
    // is monotone — but the bound itself is also rounded, and the kernel's
    // sum chain carries its own double rounding (~1e-13 relative). Deflate
    // by two float ulps (~1.2e-7 relative) to make the bound strictly
    // conservative against both; pruning must never discard a pair the
    // dense matrix would keep.
    bound = std::nextafterf(std::nextafterf(bound, 0.0f), 0.0f);
    return bound > 0.0f ? bound : 0.0f;
}

template <typename Visit>
std::pair<std::uint64_t, std::uint64_t> sparse_neighborhood::walk_buckets(
    std::size_t home, std::size_t len, Visit&& visit) const {
    // Two-pointer walk outward from the home bucket in ascending
    // lower-bound order (LB is monotone in the length gap on either side,
    // so the frontier minimum is always one of the two next buckets; ties
    // prefer the shorter side to fix the visit order). The first refused
    // bucket ends the walk: every unvisited bucket's bound is >= the
    // refused one's. Returns {pruned buckets, points inside them}.
    const std::size_t nb = bucket_len_.size();
    std::size_t down = home;      // next down candidate is down-1
    std::size_t up = home + 1;    // next up candidate is up
    constexpr float kInf = std::numeric_limits<float>::infinity();
    if (visit(home, 0.0f)) {
        while (down > 0 || up < nb) {
            const float lb_down =
                down > 0 ? length_lower_bound(bucket_len_[down - 1], len) : kInf;
            const float lb_up = up < nb ? length_lower_bound(len, bucket_len_[up]) : kInf;
            if (lb_down <= lb_up) {
                if (!visit(down - 1, lb_down)) {
                    break;
                }
                --down;
            } else {
                if (!visit(up, lb_up)) {
                    break;
                }
                ++up;
            }
        }
    }
    const std::uint64_t pruned_buckets = down + (nb - up);
    const std::uint64_t pruned_points =
        bucket_begin_[down] + (static_cast<std::uint64_t>(n_) - bucket_begin_[up]);
    return {pruned_buckets, pruned_points};
}

sparse_neighborhood::sparse_neighborhood(std::span<const byte_vector> values,
                                         const sparse_build_options& opts,
                                         const deadline& dl)
    : values_(values), n_(values.size()) {
    expects(opts.knn_cap >= 1, "sparse_neighborhood: knn_cap must be at least 1");
    expects(n_ <= 0xffffffffull, "sparse_neighborhood: point ids are 32-bit");
    obs::span sp("dissim.sparse.build");
    build_buckets();
    build_lists(opts, dl);
    seed_caches();
    charge_storage();
    sp.count("n", n_);
    sp.count("cap", capped_.cap);
    sp.count("buckets", bucket_len_.size());
    sp.count("pairs_scored", pairs_scored());
    obs::counter_add("dissim.sparse.builds_total", 1.0);
}

sparse_neighborhood::sparse_neighborhood(std::span<const byte_vector> values,
                                         capped_neighbors lists)
    : values_(values), n_(values.size()) {
    expects(n_ <= 0xffffffffull, "sparse_neighborhood: point ids are 32-bit");
    expects(lists.lists.size() == n_,
            "sparse_neighborhood: adopted lists must cover every value");
    expects(n_ < 2 || lists.cap >= 1,
            "sparse_neighborhood: adopted cap must be at least 1");
    build_buckets();
    capped_ = std::move(lists);
    const std::size_t want = std::min<std::size_t>(capped_.cap, n_ > 0 ? n_ - 1 : 0);
    for (const std::vector<neighbor>& list : capped_.lists) {
        expects(list.size() == want,
                "sparse_neighborhood: adopted list has the wrong length");
    }
    seed_caches();
    charge_storage();
}

void sparse_neighborhood::build_buckets() {
    by_length_.resize(n_);
    std::iota(by_length_.begin(), by_length_.end(), 0u);
    // Stable sort keeps ids ascending within one length — the scan order
    // every query relies on for determinism.
    std::stable_sort(by_length_.begin(), by_length_.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return values_[a].size() < values_[b].size();
                     });
    bucket_of_.assign(n_, 0);
    bucket_len_.clear();
    bucket_begin_.clear();
    for (std::size_t pos = 0; pos < n_; ++pos) {
        const std::size_t len = values_[by_length_[pos]].size();
        if (bucket_len_.empty() || bucket_len_.back() != len) {
            bucket_len_.push_back(len);
            bucket_begin_.push_back(static_cast<std::uint32_t>(pos));
        }
        bucket_of_[by_length_[pos]] =
            static_cast<std::uint32_t>(bucket_len_.size() - 1);
    }
    bucket_begin_.push_back(static_cast<std::uint32_t>(n_));
}

void sparse_neighborhood::build_lists(const sparse_build_options& opts,
                                      const deadline& dl) {
    capped_.cap = static_cast<std::uint32_t>(
        std::min<std::size_t>(opts.knn_cap, 0xffffffffull));
    capped_.lists.assign(n_, {});
    if (n_ < 2) {
        return;
    }
    const std::size_t want = std::min<std::size_t>(capped_.cap, n_ - 1);
    const std::size_t lanes = util::resolve_threads(opts.threads);
    const std::size_t grain = std::max<std::size_t>(1, n_ / (8 * lanes));
    obs::progress_stage("dissim.sparse", n_);
    // Per-point scans are independent (each lane writes only its own
    // points' lists), and the per-point candidate sequence is fixed by the
    // bucket walk — so the lists are bitwise identical at any thread count.
    util::parallel_for(n_, grain, lanes, [&](std::size_t begin, std::size_t end) {
        kernel::stats st;
        kernel::stats* stp = obs::current() != nullptr ? &st : nullptr;
        std::uint64_t scored = 0;
        std::uint64_t skipped = 0;
        std::uint64_t buckets_pruned = 0;
        std::vector<neighbor> heap;
        heap.reserve(want);
        for (std::size_t i = begin; i < end; ++i) {
            if ((i - begin) % 32 == 0) {
                dl.check("sparse neighborhood");
            }
            const std::uint32_t self = static_cast<std::uint32_t>(i);
            heap.clear();
            scan_batcher batch;
            batch.a = byte_view{values_[i]};
            batch.stp = stp;
            // Exact capped selection: the heap top is the running k-th
            // order statistic; replacement is strict (f < top), so every
            // value below the final k-th is admitted and the kept values
            // equal the dense row's k smallest, bit for bit. A refused
            // bucket's bound >= top means no candidate in it (or beyond)
            // can displace anything.
            const auto consider = [&](std::uint32_t id, float f) {
                if (heap.size() < want) {
                    heap.push_back({id, f});
                    std::push_heap(heap.begin(), heap.end(), heap_less);
                } else if (f < heap.front().d) {
                    std::pop_heap(heap.begin(), heap.end(), heap_less);
                    heap.back() = {id, f};
                    std::push_heap(heap.begin(), heap.end(), heap_less);
                }
            };
            const auto [pb, pp] =
                walk_buckets(bucket_of_[i], values_[i].size(),
                             [&](std::size_t b, float lbf) {
                                 if (heap.size() == want && lbf >= heap.front().d) {
                                     return false;
                                 }
                                 for (std::uint32_t pos = bucket_begin_[b];
                                      pos < bucket_begin_[b + 1]; ++pos) {
                                     const std::uint32_t j = by_length_[pos];
                                     if (j == self) {
                                         continue;
                                     }
                                     batch.add(j, byte_view{values_[j]}, consider);
                                     ++scored;
                                 }
                                 batch.finish_bucket(consider);
                                 return true;
                             });
            buckets_pruned += pb;
            skipped += pp;
            std::sort(heap.begin(), heap.end(), neighbor_less);
            capped_.lists[i].assign(heap.begin(), heap.end());
            obs::progress_add(1);
        }
        pairs_scored_.fetch_add(scored, std::memory_order_relaxed);
        if (stp != nullptr) {
            publish_kernel_stats(st);
            obs::counter_add("dissim.sparse.pairs_scored_total",
                             static_cast<double>(scored));
            obs::counter_add("dissim.sparse.pairs_skipped_total",
                             static_cast<double>(skipped));
            obs::counter_add("dissim.sparse.buckets_pruned_total",
                             static_cast<double>(buckets_pruned));
        }
    });
}

void sparse_neighborhood::seed_caches() {
    cache_.assign(n_, {});
    for (std::size_t i = 0; i < n_; ++i) {
        range_cache& rc = cache_[i];
        if (n_ < 2 || capped_.lists[i].size() == n_ - 1) {
            // The list IS the full neighbor set — complete at any epsilon.
            rc.complete_through = std::numeric_limits<double>::infinity();
        } else if (!capped_.lists[i].empty()) {
            // A truncated list is complete strictly below its largest
            // stored distance: neighbors tied with the cut-off value may
            // have been dropped by the cap, so the largest value itself is
            // already suspect. nextafter toward −1 keeps zero-distance
            // cut-offs honest (the threshold goes negative, forcing a
            // rescan even at epsilon = 0).
            rc.complete_through =
                std::nextafter(static_cast<double>(capped_.lists[i].back().d), -1.0);
        }
    }
}

void sparse_neighborhood::charge_storage() {
    std::uint64_t bytes = by_length_.size() * sizeof(std::uint32_t) * 2 +
                          bucket_len_.size() * sizeof(std::size_t) +
                          bucket_begin_.size() * sizeof(std::uint32_t);
    for (const std::vector<neighbor>& list : capped_.lists) {
        bytes += list.size() * sizeof(neighbor) + sizeof(std::vector<neighbor>);
    }
    bytes += cache_.size() * sizeof(range_cache);
    lists_charge_ = mem::charge(bytes, "dissim.sparse");
}

double sparse_neighborhood::dissimilarity(std::size_t i, std::size_t j) const {
    expects(i < n_ && j < n_, "dissimilarity: point index out of range");
    if (i == j) {
        return 0.0;
    }
    const std::uint32_t lo = static_cast<std::uint32_t>(std::min(i, j));
    const std::uint32_t hi = static_cast<std::uint32_t>(std::max(i, j));
    return static_cast<double>(memoized_pair(lo, hi));
}

float sparse_neighborhood::memoized_pair(std::uint32_t lo, std::uint32_t hi) const {
    const std::uint64_t key = pair_key(lo, hi);
    if (!memo_keys_.empty()) {
        const std::size_t mask = memo_keys_.size() - 1;
        std::size_t at = pair_hash(key) & mask;
        while (memo_keys_[at] != kEmptyKey) {
            if (memo_keys_[at] == key) {
                obs::counter_add("dissim.sparse.cache_hits_total", 1.0);
                return memo_vals_[at];
            }
            at = (at + 1) & mask;
        }
    }
    kernel::stats st;
    kernel::stats* stp = obs::current() != nullptr ? &st : nullptr;
    // The single-call kernel falls through to the equal-length path when
    // the lengths match, so this is the same double the batched matrix
    // build produces for the pair; the f32 narrowing matches the cell
    // store. Memoized because refinement re-reads intra-cluster pairs many
    // times over.
    const float value = static_cast<float>(
        kernel::sliding_dissimilarity(byte_view{values_[lo]}, byte_view{values_[hi]}, stp));
    if (2 * (memo_used_ + 1) > memo_keys_.size()) {
        const std::size_t grown_size = memo_keys_.empty() ? 64 : memo_keys_.size() * 2;
        std::vector<std::uint64_t> keys(grown_size, kEmptyKey);
        std::vector<float> vals(grown_size, 0.0f);
        const std::size_t mask = grown_size - 1;
        for (std::size_t from = 0; from < memo_keys_.size(); ++from) {
            if (memo_keys_[from] == kEmptyKey) {
                continue;
            }
            std::size_t at = pair_hash(memo_keys_[from]) & mask;
            while (keys[at] != kEmptyKey) {
                at = (at + 1) & mask;
            }
            keys[at] = memo_keys_[from];
            vals[at] = memo_vals_[from];
        }
        memo_keys_.swap(keys);
        memo_vals_.swap(vals);
        memo_charge_ = mem::charge(
            memo_keys_.size() * (sizeof(std::uint64_t) + sizeof(float)),
            "dissim.sparse.memo");
    }
    const std::size_t mask = memo_keys_.size() - 1;
    std::size_t at = pair_hash(key) & mask;
    while (memo_keys_[at] != kEmptyKey) {
        at = (at + 1) & mask;
    }
    memo_keys_[at] = key;
    memo_vals_[at] = value;
    ++memo_used_;
    pairs_scored_.fetch_add(1, std::memory_order_relaxed);
    if (stp != nullptr) {
        publish_kernel_stats(st);
        obs::counter_add("dissim.sparse.ondemand_pairs_total", 1.0);
    }
    return value;
}

std::vector<std::uint32_t> sparse_neighborhood::neighbors_within(std::size_t i,
                                                                 double epsilon) const {
    expects(i < n_, "neighbors_within: point index out of range");
    range_cache& rc = cache_[i];
    if (epsilon > rc.complete_through) {
        rescan(i, epsilon);
    } else {
        obs::counter_add("dissim.sparse.cache_hits_total", 1.0);
    }
    const std::vector<neighbor>& items = rc.rescanned ? rc.items : capped_.lists[i];
    std::vector<std::uint32_t> out;
    out.reserve(items.size() + 1);
    out.push_back(static_cast<std::uint32_t>(i));
    for (const neighbor& nb : items) {
        if (static_cast<double>(nb.d) > epsilon) {
            break;  // items ascend by (d, id); the prefix is the answer
        }
        out.push_back(nb.id);
    }
    std::sort(out.begin(), out.end());
    return out;
}

void sparse_neighborhood::rescan(std::size_t i, double epsilon) const {
    // Bucket-pruned full range scan at this epsilon; replaces the cache
    // with a strictly more complete one (complete_through only grows).
    range_cache& rc = cache_[i];
    kernel::stats st;
    kernel::stats* stp = obs::current() != nullptr ? &st : nullptr;
    std::uint64_t scored = 0;
    std::vector<neighbor> found;
    scan_batcher batch;
    batch.a = byte_view{values_[i]};
    batch.stp = stp;
    const std::uint32_t self = static_cast<std::uint32_t>(i);
    const auto consider = [&](std::uint32_t id, float f) {
        if (static_cast<double>(f) <= epsilon) {
            found.push_back({id, f});
        }
    };
    walk_buckets(bucket_of_[i], values_[i].size(), [&](std::size_t b, float lbf) {
        // Strict >: at lbf == epsilon a pair could still land exactly on
        // the (deflated) bound and pass the <= epsilon test.
        if (static_cast<double>(lbf) > epsilon) {
            return false;
        }
        for (std::uint32_t pos = bucket_begin_[b]; pos < bucket_begin_[b + 1]; ++pos) {
            const std::uint32_t j = by_length_[pos];
            if (j == self) {
                continue;
            }
            batch.add(j, byte_view{values_[j]}, consider);
            ++scored;
        }
        batch.finish_bucket(consider);
        return true;
    });
    std::sort(found.begin(), found.end(), neighbor_less);
    cache_bytes_ -= rc.items.capacity() * sizeof(neighbor);
    rc.items = std::move(found);
    rc.items.shrink_to_fit();
    rc.rescanned = true;
    rc.complete_through = epsilon;
    cache_bytes_ += rc.items.capacity() * sizeof(neighbor);
    cache_charge_ = mem::charge(cache_bytes_, "dissim.sparse.cache");
    pairs_scored_.fetch_add(scored, std::memory_order_relaxed);
    if (stp != nullptr) {
        publish_kernel_stats(st);
        obs::counter_add("dissim.sparse.range_rescans_total", 1.0);
        obs::counter_add("dissim.sparse.pairs_scored_total",
                         static_cast<double>(scored));
    }
}

std::vector<double> sparse_neighborhood::kth_nn(std::size_t k,
                                                std::size_t /*threads*/) const {
    expects(k >= 1, "kth_nn: k must be at least 1");
    if (n_ < 2) {
        return {};
    }
    const std::size_t kk = std::min(k, n_ - 1);
    const std::size_t held = std::min<std::size_t>(capped_.cap, n_ - 1);
    if (kk > held) {
        throw knn_cap_error(message("kth_nn: k ", k, " exceeds the sparse neighbor cap ",
                                    capped_.cap, " (", held, " neighbors held per point)"));
    }
    std::vector<double> out(n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
        out[i] = static_cast<double>(capped_.lists[i][kk - 1].d);
    }
    return out;
}

std::vector<std::vector<double>> sparse_neighborhood::kth_nn_many(
    std::size_t k_max, std::size_t /*threads*/) const {
    expects(k_max >= 1, "kth_nn_many: k_max must be at least 1");
    if (n_ < 2) {
        return std::vector<std::vector<double>>(k_max);
    }
    const std::size_t kk_max = std::min(k_max, n_ - 1);
    const std::size_t held = std::min<std::size_t>(capped_.cap, n_ - 1);
    if (kk_max > held) {
        throw knn_cap_error(message("kth_nn_many: k_max ", k_max,
                                    " exceeds the sparse neighbor cap ", capped_.cap,
                                    " (", held, " neighbors held per point)"));
    }
    obs::span sp("dissim.kth_nn_many");
    sp.count("n", n_);
    sp.count("k_max", k_max);
    const mem::charge curves_charge(
        static_cast<std::uint64_t>(k_max) * n_ * sizeof(double), "dissim.knn_curves");
    // The lists already hold each point's sorted k smallest distances —
    // the exact f32 order statistics partial_sort finds on a matrix row —
    // so every curve is a column read, no kernel work.
    std::vector<std::vector<double>> out(k_max, std::vector<double>(n_, 0.0));
    for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t k = 1; k <= k_max; ++k) {
            out[k - 1][i] = static_cast<double>(capped_.lists[i][std::min(k, n_ - 1) - 1].d);
        }
    }
    return out;
}

}  // namespace ftc::dissim
