// AVX2 gather backend for the Canberra kernel (compiled only when
// -DFTC_SIMD=ON on x86-64; this translation unit gets -mavx2 while the
// rest of the library stays at the baseline ISA, so the runtime dispatch
// in kernel.cpp is the only place that may call into it).
//
// Two vector axes, both reorder-free per window (DESIGN.md §9):
//  - row_terms_avx2: vectorized index computation (x<<8 | y) and table
//    loads (_mm256_i32gather_pd); the gathered terms are folded into the
//    accumulator one lane at a time, in element order. Splitting ONE
//    window's sum across parallel accumulators would break the
//    bitwise-identity contract, so it is deliberately not done.
//  - batch4_terms_avx2: four INDEPENDENT sliding windows, one per lane,
//    advanced with vertical adds. Each lane is a strictly in-order chain
//    over its own window's terms — the parallelism is across windows, not
//    within one sum, so every window's total is the scalar double.
#include "dissim/kernel_impl.hpp"

#ifdef FTC_SIMD_AVX2

#include <immintrin.h>

#include <algorithm>
#include <cstring>

namespace ftc::dissim::kernel::detail {

namespace {

inline std::uint32_t load_u32(const std::uint8_t* p) {
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

}  // namespace

bool avx2_runtime_supported() { return __builtin_cpu_supports("avx2") != 0; }

double row_terms_avx2(const std::uint8_t* x, const std::uint8_t* y, std::size_t len,
                      double sum, const double* lut) {
    std::size_t i = 0;
    for (; i + 4 <= len; i += 4) {
        const __m128i xb = _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(load_u32(x + i))));
        const __m128i yb = _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(load_u32(y + i))));
        const __m128i idx = _mm_or_si128(_mm_slli_epi32(xb, 8), yb);
        const __m256d terms = _mm256_i32gather_pd(lut, idx, sizeof(double));
        alignas(32) double t[4];
        _mm256_store_pd(t, terms);
        sum += t[0];
        sum += t[1];
        sum += t[2];
        sum += t[3];
    }
    for (; i < len; ++i) {
        sum += lut[static_cast<std::size_t>(x[i]) << 8 | y[i]];
    }
    return sum;
}

bool batch8_terms_avx2(const std::uint8_t* x, const std::uint8_t* y, std::size_t m,
                       const double* lut, double bound, double* sums) {
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    const __m256d vbound = _mm256_set1_pd(bound);
    std::size_t i = 0;
    while (i < m) {
        const std::size_t stop = std::min(i + kPruneChunk, m);
        for (; i < stop; ++i) {
            // Lane k needs term (x[i], y[i + k]); y[i..i+7] are consecutive.
            std::uint64_t y8;
            std::memcpy(&y8, y + i, sizeof(y8));
            const __m256i yb =
                _mm256_cvtepu8_epi32(_mm_cvtsi64_si128(static_cast<long long>(y8)));
            const __m256i idx =
                _mm256_or_si256(_mm256_set1_epi32(static_cast<int>(x[i]) << 8), yb);
            acc_lo = _mm256_add_pd(
                acc_lo, _mm256_i32gather_pd(lut, _mm256_castsi256_si128(idx), sizeof(double)));
            acc_hi = _mm256_add_pd(
                acc_hi, _mm256_i32gather_pd(lut, _mm256_extracti128_si256(idx, 1),
                                            sizeof(double)));
        }
        if (i < m &&
            _mm256_movemask_pd(_mm256_cmp_pd(acc_lo, vbound, _CMP_GT_OQ)) == 0xF &&
            _mm256_movemask_pd(_mm256_cmp_pd(acc_hi, vbound, _CMP_GT_OQ)) == 0xF) {
            return true;
        }
    }
    _mm256_storeu_pd(sums, acc_lo);
    _mm256_storeu_pd(sums + 4, acc_hi);
    return false;
}

bool batch4_terms_avx2(const std::uint8_t* x, const std::uint8_t* y, std::size_t m,
                       const double* lut, double bound, double* sums) {
    __m256d acc = _mm256_setzero_pd();
    const __m256d vbound = _mm256_set1_pd(bound);
    std::size_t i = 0;
    while (i < m) {
        const std::size_t stop = std::min(i + kPruneChunk, m);
        for (; i < stop; ++i) {
            // Lane k needs term (x[i], y[i + k]); y[i..i+3] are consecutive.
            const __m128i yb =
                _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(load_u32(y + i))));
            const __m128i idx =
                _mm_or_si128(_mm_set1_epi32(static_cast<int>(x[i]) << 8), yb);
            acc = _mm256_add_pd(acc, _mm256_i32gather_pd(lut, idx, sizeof(double)));
        }
        if (i < m && _mm256_movemask_pd(_mm256_cmp_pd(acc, vbound, _CMP_GT_OQ)) == 0xF) {
            return true;
        }
    }
    _mm256_storeu_pd(sums, acc);
    return false;
}

}  // namespace ftc::dissim::kernel::detail

#endif  // FTC_SIMD_AVX2
