/// \file kernel_impl.hpp
/// Private contract between the kernel dispatcher (kernel.cpp) and the
/// optional SIMD translation unit (kernel_avx2.cpp, compiled only under
/// -DFTC_SIMD=ON). Not installed; include from src/dissim only.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ftc::dissim::kernel::detail {

/// Accumulate the LUT terms of len byte pairs onto \p sum, strictly in
/// element order (sum = ((sum + t_0) + t_1) + ...). Every backend's row
/// accumulator has this exact signature and ordering — that is what makes
/// the backends interchangeable under the bitwise-identity contract.
using row_fn = double (*)(const std::uint8_t* x, const std::uint8_t* y, std::size_t len,
                          double sum, const double* lut);

/// Portable unrolled LUT row accumulator.
double row_terms_lut(const std::uint8_t* x, const std::uint8_t* y, std::size_t len,
                     double sum, const double* lut);

/// Chunk granularity (bytes) of the early-exit prune checks inside the
/// sliding loops. Coarse enough to amortize the comparison, fine enough
/// that a hopeless long window dies early.
inline constexpr std::size_t kPruneChunk = 32;

#ifdef FTC_SIMD_AVX2
/// True when the running CPU supports AVX2 (runtime dispatch gate).
bool avx2_runtime_supported();

/// AVX2 gather row accumulator: vectorized index computation and table
/// loads, scalar in-order folding of the gathered terms.
double row_terms_avx2(const std::uint8_t* x, const std::uint8_t* y, std::size_t len,
                      double sum, const double* lut);

/// AVX2 eight-window batch: sums the windows y+0..y+7 against x into
/// sums[0..7], one vector lane per window (two 4-lane accumulators),
/// vertical adds so every lane is a strictly in-order chain. Returns true
/// when abandoned at a kPruneChunk checkpoint because every lane's partial
/// already exceeds \p bound. Caller guarantees y[0 .. m+6] is readable
/// (i.e. the eighth window fits).
bool batch8_terms_avx2(const std::uint8_t* x, const std::uint8_t* y, std::size_t m,
                       const double* lut, double bound, double* sums);

/// Four-window variant of batch8_terms_avx2 for the sliding remainder
/// (same lane-per-window contract; caller guarantees y[0 .. m+2] readable).
bool batch4_terms_avx2(const std::uint8_t* x, const std::uint8_t* y, std::size_t m,
                       const double* lut, double bound, double* sums);
#endif

}  // namespace ftc::dissim::kernel::detail
