#include "dissim/canberra.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ftc::dissim {

double canberra_distance(byte_view x, byte_view y) {
    expects(x.size() == y.size(), "canberra_distance: length mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double xi = x[i];
        const double yi = y[i];
        const double denom = xi + yi;
        if (denom != 0.0) {
            sum += (xi > yi ? xi - yi : yi - xi) / denom;
        }
    }
    return sum;
}

double canberra_dissimilarity(byte_view x, byte_view y) {
    expects(!x.empty(), "canberra_dissimilarity: empty vector");
    return canberra_distance(x, y) / static_cast<double>(x.size());
}

double sliding_canberra_dissimilarity(byte_view a, byte_view b) {
    expects(!a.empty() && !b.empty(), "sliding_canberra_dissimilarity: empty segment");
    const byte_view s = a.size() <= b.size() ? a : b;  // shorter
    const byte_view l = a.size() <= b.size() ? b : a;  // longer
    const std::size_t m = s.size();
    const std::size_t n = l.size();
    if (m == n) {
        return canberra_dissimilarity(s, l);
    }
    double d_min = 1.0;
    for (std::size_t off = 0; off + m <= n; ++off) {
        const double d = canberra_dissimilarity(s, l.subspan(off, m));
        d_min = std::min(d_min, d);
        if (d_min == 0.0) {
            break;
        }
    }
    const double ratio = static_cast<double>(m) / static_cast<double>(n);
    const double penalty = 1.0 - ratio * (1.0 - d_min);
    return (static_cast<double>(m) * d_min + static_cast<double>(n - m) * penalty) /
           static_cast<double>(n);
}

}  // namespace ftc::dissim
