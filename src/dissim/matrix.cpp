#include "dissim/matrix.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "dissim/kernel.hpp"
#include "obs/obs.hpp"
#include "obs/progress.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace ftc::dissim {

namespace {

/// Storage behind one unique_segments instance, for its mem::charge: the
/// value byte payloads plus per-value container headers, plus either the
/// occurrence structs (full form) or the multiplicity words (weighted).
std::uint64_t unique_footprint_bytes(const unique_segments& u) {
    std::uint64_t bytes = 0;
    for (const byte_vector& v : u.values) {
        bytes += v.size() + sizeof(byte_vector);
    }
    if (u.occurrences_elided) {
        bytes += u.multiplicities.size() * sizeof(std::uint32_t);
    } else {
        for (const auto& occs : u.occurrences) {
            bytes += occs.size() * sizeof(segmentation::segment) +
                     sizeof(std::vector<segmentation::segment>);
        }
    }
    return bytes;
}

}  // namespace

unique_segments condense(const std::vector<byte_vector>& messages,
                         const segmentation::message_segments& segs,
                         std::size_t min_length) {
    unique_segments out;
    std::map<byte_vector, std::size_t> index;
    for (const std::vector<segmentation::segment>& per_message : segs) {
        for (const segmentation::segment& seg : per_message) {
            if (seg.length < min_length) {
                ++out.short_segments;
                continue;
            }
            const byte_view bytes = segmentation::segment_bytes(messages, seg);
            byte_vector value(bytes.begin(), bytes.end());
            const auto [it, inserted] = index.try_emplace(std::move(value), out.values.size());
            if (inserted) {
                out.values.emplace_back(it->first);
                out.occurrences.emplace_back();
            }
            out.occurrences[it->second].push_back(seg);
        }
    }
    out.footprint = mem::charge(unique_footprint_bytes(out), "dissim.unique");
    return out;
}

unique_segments condense_weighted(const std::vector<byte_vector>& messages,
                                  const segmentation::message_segments& segs,
                                  std::size_t min_length) {
    unique_segments out;
    out.occurrences_elided = true;

    // Open-addressed digest index over out.values: slots hold value indices,
    // probed linearly from the FNV-1a64 digest of the bytes, byte-compared
    // on hit (digests dedup candidates, bytes decide). Indices are assigned
    // at first sight of a value — the same rule condense() applies — so
    // out.values is identical to the full form's, entry for entry.
    constexpr std::uint32_t kEmpty = 0xffffffffu;
    std::vector<std::uint32_t> slots(64, kEmpty);

    const auto digest_of = [](byte_view bytes) {
        std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
        for (const std::uint8_t b : bytes) {
            h = (h ^ b) * 1099511628211ull;  // FNV-1a 64 prime
        }
        return h;
    };

    const auto rehash = [&] {
        std::vector<std::uint32_t> grown(slots.size() * 2, kEmpty);
        const std::size_t mask = grown.size() - 1;
        for (const std::uint32_t idx : slots) {
            if (idx == kEmpty) {
                continue;
            }
            std::size_t at = digest_of(byte_view{out.values[idx]}) & mask;
            while (grown[at] != kEmpty) {
                at = (at + 1) & mask;
            }
            grown[at] = idx;
        }
        slots.swap(grown);
    };

    for (const std::vector<segmentation::segment>& per_message : segs) {
        for (const segmentation::segment& seg : per_message) {
            if (seg.length < min_length) {
                ++out.short_segments;
                continue;
            }
            const byte_view bytes = segmentation::segment_bytes(messages, seg);
            if (2 * (out.values.size() + 1) > slots.size()) {
                rehash();
            }
            const std::size_t mask = slots.size() - 1;
            std::size_t at = digest_of(bytes) & mask;
            while (true) {
                const std::uint32_t idx = slots[at];
                if (idx == kEmpty) {
                    slots[at] = static_cast<std::uint32_t>(out.values.size());
                    out.values.emplace_back(bytes.begin(), bytes.end());
                    out.multiplicities.push_back(1);
                    break;
                }
                if (out.values[idx].size() == bytes.size() &&
                    std::equal(bytes.begin(), bytes.end(), out.values[idx].begin())) {
                    ++out.multiplicities[idx];
                    break;
                }
                at = (at + 1) & mask;
            }
        }
    }
    obs::counter_add("mem.dedup_condensations_total", 1.0);
    out.footprint = mem::charge(unique_footprint_bytes(out), "dissim.unique.weighted");
    return out;
}

namespace {

/// Publish one block's kernel counters through ftc::obs (no-op without a
/// recorder; called once per work block, never per pair).
void publish_kernel_stats(const kernel::stats& st) {
    obs::counter_add("dissim.kernel.invocations_total",
                     static_cast<double>(st.invocations));
    obs::counter_add("dissim.kernel.equal_fast_path_total",
                     static_cast<double>(st.equal_fast_path));
    obs::counter_add("dissim.kernel.windows_total",
                     static_cast<double>(st.windows_total));
    obs::counter_add("dissim.kernel.windows_pruned_total",
                     static_cast<double>(st.windows_pruned));
}

/// Per-row pending kernel batches: partners accumulate per path (equal /
/// sliding length) and flush through the batch entry points. Each pair's
/// value is bitwise the single-call kernel result, so batch composition
/// only changes how the independent computations overlap in the pipeline.
struct row_batcher {
    static_assert(kernel::kEqualBatch == kernel::kSlideBatch);

    struct pending_batch {
        std::size_t cells[kernel::kEqualBatch];  // flat storage index
        byte_view views[kernel::kEqualBatch];
        double out[kernel::kEqualBatch];
        std::size_t count = 0;
    };

    byte_view a;
    float* data = nullptr;
    kernel::stats* stp = nullptr;
    pending_batch equal_pend;
    pending_batch slide_pend;

    void flush(pending_batch& pend) {
        if (pend.count == 0) {
            return;
        }
        if (&pend == &equal_pend) {
            kernel::equal_dissimilarity_batch(a, pend.views, pend.count, pend.out, stp);
        } else {
            kernel::sliding_dissimilarity_batch(a, pend.views, pend.count, pend.out, stp);
        }
        for (std::size_t k = 0; k < pend.count; ++k) {
            data[pend.cells[k]] = static_cast<float>(pend.out[k]);
        }
        pend.count = 0;
    }

    void add(byte_view b, std::size_t cell) {
        pending_batch& pend = a.size() == b.size() ? equal_pend : slide_pend;
        pend.cells[pend.count] = cell;
        pend.views[pend.count] = b;
        if (++pend.count == kernel::kEqualBatch) {
            flush(pend);
        }
    }

    void finish_row() {
        flush(equal_pend);
        flush(slide_pend);
    }
};

}  // namespace

namespace {

build_options dense_options(std::size_t threads) {
    build_options opts;
    opts.threads = threads;
    return opts;
}

}  // namespace

dissimilarity_matrix::dissimilarity_matrix(std::span<const byte_vector> values,
                                           const deadline& dl, std::size_t threads)
    : dissimilarity_matrix(values, dense_options(threads), dl) {}

dissimilarity_matrix::dissimilarity_matrix(std::span<const byte_vector> values,
                                           const build_options& opts, const deadline& dl)
    : n_(values.size()), layout_(opts.storage) {
    obs::span sp("dissim.matrix");
    sp.count("n", n_);
    sp.count("pairs", n_ * (n_ - (n_ > 0 ? 1 : 0)) / 2);
    sp.count("kernel_backend", static_cast<std::uint64_t>(kernel::active()));
    sp.count("triangular", layout_ == layout::triangular ? 1 : 0);
    // The footprint-dominant allocation of the whole pipeline: tracked, so
    // an active memory governor turns "this matrix cannot fit" into
    // ftc::memory_budget_exceeded_error here instead of an OOM kill later.
    if (layout_ == layout::dense) {
        data_.assign(n_ * n_, 0.0f);
        build_dense(values, dl, opts.threads);
    } else {
        data_.assign(n_ * (n_ - (n_ > 0 ? 1 : 0)) / 2, 0.0f);
        build_triangular(values, opts, dl);
    }
}

void dissimilarity_matrix::build_dense(std::span<const byte_vector> values,
                                       const deadline& dl, std::size_t threads) {
    // Length-bucketed visit order: rows walk their partners grouped by
    // segment length (stable within a group), so equal-length pairs hit the
    // branch-predictable fast path back to back and sliding pairs of one
    // length class stay contiguous. The set of (i, j) pairs and the value
    // written per cell are unchanged — only the visit order moves — so the
    // matrix stays bitwise identical to an unbucketed build.
    std::vector<std::uint32_t> order(n_);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        return values[a].size() < values[b].size();
    });
    // Row-blocked upper-triangle fan-out over ORDER POSITIONS: block rows
    // are positions p in the bucketed order, and row p pairs order[p] with
    // every order[q], q > p — each unordered pair lands in exactly one
    // block and each cell has exactly one writer, so the matrix is bitwise
    // identical at any thread count. Iterating in order-space (instead of
    // index-space with a j <= i skip scan) halves the inner-loop visits
    // and keeps every row's equal-length partners in one contiguous run.
    // Blocks are handed out dynamically because row p carries n-1-p pairs
    // — late rows are much cheaper than early ones.
    const std::size_t lanes = util::resolve_threads(threads);
    const std::size_t grain = std::max<std::size_t>(1, n_ / (8 * lanes));
    obs::progress_stage("dissim.matrix", n_);
    util::parallel_for(n_, grain, lanes, [&](std::size_t begin, std::size_t end) {
        kernel::stats st;
        row_batcher batch;
        batch.data = data_.data();
        batch.stp = obs::current() != nullptr ? &st : nullptr;
        for (std::size_t p = begin; p < end; ++p) {
            if ((p - begin) % 32 == 0) {
                dl.check("dissimilarity matrix");
            }
            const std::uint32_t i = order[p];
            batch.a = byte_view{values[i]};
            for (std::size_t q = p + 1; q < n_; ++q) {
                const std::uint32_t j = order[q];
                batch.add(byte_view{values[j]},
                          i < j ? i * n_ + j : static_cast<std::size_t>(j) * n_ + i);
            }
            batch.finish_row();
            obs::progress_add(1);
        }
        if (batch.stp != nullptr) {
            publish_kernel_stats(st);
        }
    });
    // The fan-out writes only the upper triangle (a strided mirror store
    // per pair would miss the cache across the whole matrix); mirror once
    // here in 64×64 blocks so reads and writes both stay resident. Pure
    // copies of already-final cells — deterministic at any thread count.
    constexpr std::size_t kMirrorBlock = 64;
    for (std::size_t ib = 0; ib < n_; ib += kMirrorBlock) {
        const std::size_t ie = std::min(ib + kMirrorBlock, n_);
        for (std::size_t jb = ib; jb < n_; jb += kMirrorBlock) {
            const std::size_t je = std::min(jb + kMirrorBlock, n_);
            for (std::size_t i = ib; i < ie; ++i) {
                for (std::size_t j = std::max(jb, i + 1); j < je; ++j) {
                    data_[j * n_ + i] = data_[i * n_ + j];
                }
            }
        }
    }
}

void dissimilarity_matrix::build_triangular(std::span<const byte_vector> values,
                                            const build_options& opts, const deadline& dl) {
    // Plain row order, tile by tile: tile cells are one contiguous run of
    // the upper triangle, so a completed tile can be spilled (opts.on_tile)
    // as final bytes the moment its last row lands. Rows inside a tile fan
    // out across lanes; each row's cells have exactly one writer. Per-pair
    // values are the single-call kernel results, so this build is bitwise
    // identical to the dense build cell for cell — only layout and the
    // batch composition differ, and neither affects any value.
    const std::size_t lanes = util::resolve_threads(opts.threads);
    const std::size_t tile_rows = opts.tile_rows == 0 ? (n_ > 0 ? n_ : 1) : opts.tile_rows;
    obs::progress_stage("dissim.matrix", n_);
    for (std::size_t row_begin = 0; row_begin < n_; row_begin += tile_rows) {
        const std::size_t row_end = std::min(row_begin + tile_rows, n_);
        const std::size_t grain =
            std::max<std::size_t>(1, (row_end - row_begin) / (8 * lanes));
        util::parallel_for(row_end - row_begin, grain, lanes,
                           [&](std::size_t begin, std::size_t end) {
            kernel::stats st;
            row_batcher batch;
            batch.data = data_.data();
            batch.stp = obs::current() != nullptr ? &st : nullptr;
            for (std::size_t r = begin; r < end; ++r) {
                const std::size_t i = row_begin + r;
                if (r % 32 == 0) {
                    dl.check("dissimilarity matrix");
                }
                batch.a = byte_view{values[i]};
                const std::size_t base = tri_offset(i);
                for (std::size_t j = i + 1; j < n_; ++j) {
                    batch.add(byte_view{values[j]}, base + (j - i - 1));
                }
                batch.finish_row();
                obs::progress_add(1);
            }
            if (batch.stp != nullptr) {
                publish_kernel_stats(st);
            }
        });
        dl.check("dissimilarity matrix tile");
        if (opts.on_tile) {
            const std::size_t begin = tri_offset(row_begin);
            const std::size_t end = tri_offset(row_end);
            opts.on_tile(row_begin, row_end, n_,
                         std::span<const float>(data_.data() + begin, end - begin));
        }
    }
}

dissimilarity_matrix dissimilarity_matrix::from_dense(std::span<const double> dense,
                                                      std::size_t n) {
    expects(dense.size() == n * n, "from_dense: matrix must be n*n");
    dissimilarity_matrix m;
    m.n_ = n;
    m.data_.resize(n * n);
    for (std::size_t i = 0; i < n; ++i) {
        expects(dense[i * n + i] == 0.0, "from_dense: diagonal must be zero");
        for (std::size_t j = 0; j < n; ++j) {
            expects(dense[i * n + j] == dense[j * n + i], "from_dense: matrix must be symmetric");
            m.data_[i * n + j] = static_cast<float>(dense[i * n + j]);
        }
    }
    return m;
}

dissimilarity_matrix dissimilarity_matrix::from_upper(std::span<const float> upper,
                                                      std::size_t n, layout storage) {
    expects(upper.size() == n * (n - (n > 0 ? 1 : 0)) / 2,
            "from_upper: need exactly n*(n-1)/2 entries");
    dissimilarity_matrix m;
    m.n_ = n;
    m.layout_ = storage;
    for (const float d : upper) {
        // The sliding-Canberra range guarantee; a checkpoint restoring
        // values outside it is damaged in a way the digest cannot see
        // (e.g. forged), and NaNs would poison DBSCAN comparisons.
        expects(d >= 0.0f && d <= 1.0f, "from_upper: entry outside [0, 1]");
    }
    if (storage == layout::triangular) {
        m.data_.assign(upper.begin(), upper.end());
        return m;
    }
    m.data_.assign(n * n, 0.0f);
    std::size_t r = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j, ++r) {
            m.data_[i * n + j] = upper[r];
            m.data_[j * n + i] = upper[r];
        }
    }
    return m;
}

std::vector<float> dissimilarity_matrix::upper_triangle_f32() const {
    if (layout_ == layout::triangular) {
        return std::vector<float>(data_.begin(), data_.end());
    }
    std::vector<float> out;
    out.reserve(n_ * (n_ - (n_ > 0 ? 1 : 0)) / 2);
    for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t j = i + 1; j < n_; ++j) {
            out.push_back(data_[i * n_ + j]);
        }
    }
    return out;
}

std::span<const float> dissimilarity_matrix::data() const {
    expects(layout_ == layout::dense,
            "data: raw row-major storage exists only in the dense layout");
    return {data_.data(), data_.size()};
}

void dissimilarity_matrix::gather_row(std::size_t i, float* out) const {
    std::size_t w = 0;
    if (layout_ == layout::dense) {
        for (std::size_t j = 0; j < n_; ++j) {
            if (j != i) {
                out[w++] = data_[i * n_ + j];
            }
        }
        return;
    }
    // Column i of rows above (one strided pick per row), then the
    // contiguous tail of row i.
    for (std::size_t j = 0; j < i; ++j) {
        out[w++] = data_[tri_cell(j, i)];
    }
    const std::size_t base = tri_offset(i);
    for (std::size_t j = i + 1; j < n_; ++j) {
        out[w++] = data_[base + (j - i - 1)];
    }
}

std::vector<double> dissimilarity_matrix::kth_nn(std::size_t k, std::size_t threads) const {
    expects(k >= 1, "kth_nn: k must be at least 1");
    if (n_ < 2) {
        return {};
    }
    obs::span sp("dissim.kth_nn");
    sp.count("n", n_);
    sp.count("k", k);
    const std::size_t kk = std::min(k, n_ - 1);
    // Each row selects its k-th neighbour independently into out[i]; the
    // per-lane scratch row keeps nth_element off shared state.
    std::vector<double> out(n_, 0.0);
    util::parallel_for(n_, 64, threads, [&](std::size_t begin, std::size_t end) {
        std::vector<float> row(n_ - 1);
        for (std::size_t i = begin; i < end; ++i) {
            gather_row(i, row.data());
            std::nth_element(row.begin(), row.begin() + static_cast<long>(kk - 1), row.end());
            out[i] = static_cast<double>(row[kk - 1]);
        }
    });
    return out;
}

std::vector<std::vector<double>> dissimilarity_matrix::kth_nn_many(std::size_t k_max,
                                                                   std::size_t threads) const {
    expects(k_max >= 1, "kth_nn_many: k_max must be at least 1");
    if (n_ < 2) {
        return std::vector<std::vector<double>>(k_max);
    }
    obs::span sp("dissim.kth_nn_many");
    sp.count("n", n_);
    sp.count("k_max", k_max);
    const std::size_t kk_max = std::min(k_max, n_ - 1);
    // The curve batch is the second-largest buffer of the dissimilarity
    // stage (k_max curves of n doubles); charge it so the governor sees the
    // spike while it exists.
    const mem::charge curves_charge(
        static_cast<std::uint64_t>(k_max) * n_ * sizeof(double), "dissim.knn_curves");
    std::vector<std::vector<double>> out(k_max, std::vector<double>(n_, 0.0));
    // One row scan serves every k: partially sorting the kk_max smallest
    // neighbours yields each k-th order statistic — the same float values
    // nth_element finds in kth_nn, so curves are bitwise identical to
    // k_max individual extractions at a fraction of the scans. Each lane
    // writes only column i of each curve, so any thread count produces the
    // same result.
    obs::progress_stage("dissim.knn", n_);
    util::parallel_for(n_, 64, threads, [&](std::size_t begin, std::size_t end) {
        std::vector<float> row(n_ - 1);
        for (std::size_t i = begin; i < end; ++i) {
            gather_row(i, row.data());
            std::partial_sort(row.begin(), row.begin() + static_cast<long>(kk_max), row.end());
            for (std::size_t k = 1; k <= k_max; ++k) {
                out[k - 1][i] = static_cast<double>(row[std::min(k, n_ - 1) - 1]);
            }
            obs::progress_add(1);
        }
    });
    return out;
}

std::vector<double> dissimilarity_matrix::upper_triangle() const {
    std::vector<double> out;
    out.reserve(n_ * (n_ - (n_ > 0 ? 1 : 0)) / 2);
    if (layout_ == layout::triangular) {
        for (const float d : data_) {
            out.push_back(static_cast<double>(d));
        }
        return out;
    }
    for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t j = i + 1; j < n_; ++j) {
            out.push_back(static_cast<double>(data_[i * n_ + j]));
        }
    }
    return out;
}

}  // namespace ftc::dissim
