#include "dissim/matrix.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "dissim/kernel.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace ftc::dissim {

unique_segments condense(const std::vector<byte_vector>& messages,
                         const segmentation::message_segments& segs,
                         std::size_t min_length) {
    unique_segments out;
    std::map<byte_vector, std::size_t> index;
    for (const std::vector<segmentation::segment>& per_message : segs) {
        for (const segmentation::segment& seg : per_message) {
            if (seg.length < min_length) {
                ++out.short_segments;
                continue;
            }
            const byte_view bytes = segmentation::segment_bytes(messages, seg);
            byte_vector value(bytes.begin(), bytes.end());
            const auto [it, inserted] = index.try_emplace(std::move(value), out.values.size());
            if (inserted) {
                out.values.emplace_back(it->first);
                out.occurrences.emplace_back();
            }
            out.occurrences[it->second].push_back(seg);
        }
    }
    return out;
}

namespace {

/// Publish one block's kernel counters through ftc::obs (no-op without a
/// recorder; called once per work block, never per pair).
void publish_kernel_stats(const kernel::stats& st) {
    obs::counter_add("dissim.kernel.invocations_total",
                     static_cast<double>(st.invocations));
    obs::counter_add("dissim.kernel.equal_fast_path_total",
                     static_cast<double>(st.equal_fast_path));
    obs::counter_add("dissim.kernel.windows_total",
                     static_cast<double>(st.windows_total));
    obs::counter_add("dissim.kernel.windows_pruned_total",
                     static_cast<double>(st.windows_pruned));
}

}  // namespace

dissimilarity_matrix::dissimilarity_matrix(std::span<const byte_vector> values,
                                           const deadline& dl, std::size_t threads)
    : n_(values.size()), data_(values.size() * values.size(), 0.0f) {
    obs::span sp("dissim.matrix");
    sp.count("n", n_);
    sp.count("pairs", n_ * (n_ - (n_ > 0 ? 1 : 0)) / 2);
    sp.count("kernel_backend", static_cast<std::uint64_t>(kernel::active()));
    // Length-bucketed visit order: rows walk their partners grouped by
    // segment length (stable within a group), so equal-length pairs hit the
    // branch-predictable fast path back to back and sliding pairs of one
    // length class stay contiguous. The set of (i, j) pairs and the value
    // written per cell are unchanged — only the visit order moves — so the
    // matrix stays bitwise identical to an unbucketed build.
    std::vector<std::uint32_t> order(n_);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        return values[a].size() < values[b].size();
    });
    // Row-blocked upper-triangle fan-out over ORDER POSITIONS: block rows
    // are positions p in the bucketed order, and row p pairs order[p] with
    // every order[q], q > p — each unordered pair lands in exactly one
    // block and each cell has exactly one writer, so the matrix is bitwise
    // identical at any thread count. Iterating in order-space (instead of
    // index-space with a j <= i skip scan) halves the inner-loop visits
    // and keeps every row's equal-length partners in one contiguous run.
    // Blocks are handed out dynamically because row p carries n-1-p pairs
    // — late rows are much cheaper than early ones.
    const std::size_t lanes = util::resolve_threads(threads);
    const std::size_t grain = std::max<std::size_t>(1, n_ / (8 * lanes));
    util::parallel_for(n_, grain, lanes, [&](std::size_t begin, std::size_t end) {
        kernel::stats st;
        kernel::stats* stp = obs::current() != nullptr ? &st : nullptr;
        // Partners are collected per row and computed a batch at a time —
        // equal-length pairs through equal_dissimilarity_batch, the rest
        // through sliding_dissimilarity_batch. Each pair's value is bitwise
        // the single-call result, so batching only changes how the
        // independent computations overlap in the pipeline.
        static_assert(kernel::kEqualBatch == kernel::kSlideBatch);
        struct pending_batch {
            std::size_t cells[kernel::kEqualBatch];  // upper-triangle index
            byte_view views[kernel::kEqualBatch];
            double out[kernel::kEqualBatch];
            std::size_t count = 0;
        };
        pending_batch equal_pend;
        pending_batch slide_pend;
        for (std::size_t p = begin; p < end; ++p) {
            if ((p - begin) % 32 == 0) {
                dl.check("dissimilarity matrix");
            }
            const std::uint32_t i = order[p];
            const byte_view a{values[i]};
            const auto flush_equal = [&] {
                if (equal_pend.count == 0) {
                    return;
                }
                kernel::equal_dissimilarity_batch(a, equal_pend.views, equal_pend.count,
                                                  equal_pend.out, stp);
                for (std::size_t k = 0; k < equal_pend.count; ++k) {
                    data_[equal_pend.cells[k]] = static_cast<float>(equal_pend.out[k]);
                }
                equal_pend.count = 0;
            };
            const auto flush_slide = [&] {
                if (slide_pend.count == 0) {
                    return;
                }
                kernel::sliding_dissimilarity_batch(a, slide_pend.views, slide_pend.count,
                                                    slide_pend.out, stp);
                for (std::size_t k = 0; k < slide_pend.count; ++k) {
                    data_[slide_pend.cells[k]] = static_cast<float>(slide_pend.out[k]);
                }
                slide_pend.count = 0;
            };
            for (std::size_t q = p + 1; q < n_; ++q) {
                const std::uint32_t j = order[q];
                const byte_view b{values[j]};
                const std::size_t cell = i < j ? i * n_ + j : j * n_ + i;
                pending_batch& pend = a.size() == b.size() ? equal_pend : slide_pend;
                pend.cells[pend.count] = cell;
                pend.views[pend.count] = b;
                if (++pend.count == kernel::kEqualBatch) {
                    if (&pend == &equal_pend) {
                        flush_equal();
                    } else {
                        flush_slide();
                    }
                }
            }
            flush_equal();
            flush_slide();
        }
        if (stp != nullptr) {
            publish_kernel_stats(st);
        }
    });
    // The fan-out writes only the upper triangle (a strided mirror store
    // per pair would miss the cache across the whole matrix); mirror once
    // here in 64×64 blocks so reads and writes both stay resident. Pure
    // copies of already-final cells — deterministic at any thread count.
    constexpr std::size_t kMirrorBlock = 64;
    for (std::size_t ib = 0; ib < n_; ib += kMirrorBlock) {
        const std::size_t ie = std::min(ib + kMirrorBlock, n_);
        for (std::size_t jb = ib; jb < n_; jb += kMirrorBlock) {
            const std::size_t je = std::min(jb + kMirrorBlock, n_);
            for (std::size_t i = ib; i < ie; ++i) {
                for (std::size_t j = std::max(jb, i + 1); j < je; ++j) {
                    data_[j * n_ + i] = data_[i * n_ + j];
                }
            }
        }
    }
}

dissimilarity_matrix dissimilarity_matrix::from_dense(std::span<const double> dense,
                                                      std::size_t n) {
    expects(dense.size() == n * n, "from_dense: matrix must be n*n");
    dissimilarity_matrix m;
    m.n_ = n;
    m.data_.resize(n * n);
    for (std::size_t i = 0; i < n; ++i) {
        expects(dense[i * n + i] == 0.0, "from_dense: diagonal must be zero");
        for (std::size_t j = 0; j < n; ++j) {
            expects(dense[i * n + j] == dense[j * n + i], "from_dense: matrix must be symmetric");
            m.data_[i * n + j] = static_cast<float>(dense[i * n + j]);
        }
    }
    return m;
}

dissimilarity_matrix dissimilarity_matrix::from_upper(std::span<const float> upper,
                                                      std::size_t n) {
    expects(upper.size() == n * (n - (n > 0 ? 1 : 0)) / 2,
            "from_upper: need exactly n*(n-1)/2 entries");
    dissimilarity_matrix m;
    m.n_ = n;
    m.data_.assign(n * n, 0.0f);
    std::size_t r = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j, ++r) {
            const float d = upper[r];
            // The sliding-Canberra range guarantee; a checkpoint restoring
            // values outside it is damaged in a way the digest cannot see
            // (e.g. forged), and NaNs would poison DBSCAN comparisons.
            expects(d >= 0.0f && d <= 1.0f, "from_upper: entry outside [0, 1]");
            m.data_[i * n + j] = d;
            m.data_[j * n + i] = d;
        }
    }
    return m;
}

std::vector<float> dissimilarity_matrix::upper_triangle_f32() const {
    std::vector<float> out;
    out.reserve(n_ * (n_ - (n_ > 0 ? 1 : 0)) / 2);
    for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t j = i + 1; j < n_; ++j) {
            out.push_back(data_[i * n_ + j]);
        }
    }
    return out;
}

std::vector<double> dissimilarity_matrix::kth_nn(std::size_t k, std::size_t threads) const {
    expects(k >= 1, "kth_nn: k must be at least 1");
    if (n_ < 2) {
        return {};
    }
    obs::span sp("dissim.kth_nn");
    sp.count("n", n_);
    sp.count("k", k);
    const std::size_t kk = std::min(k, n_ - 1);
    // Each row selects its k-th neighbour independently into out[i]; the
    // per-lane scratch row keeps nth_element off shared state.
    std::vector<double> out(n_, 0.0);
    util::parallel_for(n_, 64, threads, [&](std::size_t begin, std::size_t end) {
        std::vector<float> row(n_ - 1);
        for (std::size_t i = begin; i < end; ++i) {
            std::size_t w = 0;
            for (std::size_t j = 0; j < n_; ++j) {
                if (j != i) {
                    row[w++] = data_[i * n_ + j];
                }
            }
            std::nth_element(row.begin(), row.begin() + static_cast<long>(kk - 1), row.end());
            out[i] = static_cast<double>(row[kk - 1]);
        }
    });
    return out;
}

std::vector<std::vector<double>> dissimilarity_matrix::kth_nn_many(std::size_t k_max,
                                                                   std::size_t threads) const {
    expects(k_max >= 1, "kth_nn_many: k_max must be at least 1");
    if (n_ < 2) {
        return std::vector<std::vector<double>>(k_max);
    }
    obs::span sp("dissim.kth_nn_many");
    sp.count("n", n_);
    sp.count("k_max", k_max);
    const std::size_t kk_max = std::min(k_max, n_ - 1);
    std::vector<std::vector<double>> out(k_max, std::vector<double>(n_, 0.0));
    // One row scan serves every k: partially sorting the kk_max smallest
    // neighbours yields each k-th order statistic — the same float values
    // nth_element finds in kth_nn, so curves are bitwise identical to
    // k_max individual extractions at a fraction of the scans. Each lane
    // writes only column i of each curve, so any thread count produces the
    // same result.
    util::parallel_for(n_, 64, threads, [&](std::size_t begin, std::size_t end) {
        std::vector<float> row(n_ - 1);
        for (std::size_t i = begin; i < end; ++i) {
            std::size_t w = 0;
            for (std::size_t j = 0; j < n_; ++j) {
                if (j != i) {
                    row[w++] = data_[i * n_ + j];
                }
            }
            std::partial_sort(row.begin(), row.begin() + static_cast<long>(kk_max), row.end());
            for (std::size_t k = 1; k <= k_max; ++k) {
                out[k - 1][i] = static_cast<double>(row[std::min(k, n_ - 1) - 1]);
            }
        }
    });
    return out;
}

std::vector<double> dissimilarity_matrix::upper_triangle() const {
    std::vector<double> out;
    out.reserve(n_ * (n_ - 1) / 2);
    for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t j = i + 1; j < n_; ++j) {
            out.push_back(static_cast<double>(data_[i * n_ + j]));
        }
    }
    return out;
}

}  // namespace ftc::dissim
