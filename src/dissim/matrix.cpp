#include "dissim/matrix.hpp"

#include <algorithm>
#include <map>

#include "dissim/canberra.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace ftc::dissim {

unique_segments condense(const std::vector<byte_vector>& messages,
                         const segmentation::message_segments& segs,
                         std::size_t min_length) {
    unique_segments out;
    std::map<byte_vector, std::size_t> index;
    for (const std::vector<segmentation::segment>& per_message : segs) {
        for (const segmentation::segment& seg : per_message) {
            if (seg.length < min_length) {
                ++out.short_segments;
                continue;
            }
            const byte_view bytes = segmentation::segment_bytes(messages, seg);
            byte_vector value(bytes.begin(), bytes.end());
            const auto [it, inserted] = index.try_emplace(std::move(value), out.values.size());
            if (inserted) {
                out.values.emplace_back(it->first);
                out.occurrences.emplace_back();
            }
            out.occurrences[it->second].push_back(seg);
        }
    }
    return out;
}

dissimilarity_matrix::dissimilarity_matrix(std::span<const byte_vector> values,
                                           const deadline& dl, std::size_t threads)
    : n_(values.size()), data_(values.size() * values.size(), 0.0f) {
    obs::span sp("dissim.matrix");
    sp.count("n", n_);
    sp.count("pairs", n_ * (n_ - (n_ > 0 ? 1 : 0)) / 2);
    // Row-blocked upper-triangle fan-out. Each (i, j) pair with i < j is
    // computed by exactly one block and written to the two mirrored cells
    // that no other block touches, so the matrix is bitwise identical at
    // any thread count. Blocks are handed out dynamically because row i
    // carries n-1-i pairs — late rows are much cheaper than early ones.
    const std::size_t lanes = util::resolve_threads(threads);
    const std::size_t grain = std::max<std::size_t>(1, n_ / (8 * lanes));
    util::parallel_for(n_, grain, lanes, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            if ((i - begin) % 32 == 0) {
                dl.check("dissimilarity matrix");
            }
            const byte_view a{values[i]};
            for (std::size_t j = i + 1; j < n_; ++j) {
                const auto d =
                    static_cast<float>(sliding_canberra_dissimilarity(a, byte_view{values[j]}));
                data_[i * n_ + j] = d;
                data_[j * n_ + i] = d;
            }
        }
    });
}

dissimilarity_matrix dissimilarity_matrix::from_dense(std::span<const double> dense,
                                                      std::size_t n) {
    expects(dense.size() == n * n, "from_dense: matrix must be n*n");
    dissimilarity_matrix m;
    m.n_ = n;
    m.data_.resize(n * n);
    for (std::size_t i = 0; i < n; ++i) {
        expects(dense[i * n + i] == 0.0, "from_dense: diagonal must be zero");
        for (std::size_t j = 0; j < n; ++j) {
            expects(dense[i * n + j] == dense[j * n + i], "from_dense: matrix must be symmetric");
            m.data_[i * n + j] = static_cast<float>(dense[i * n + j]);
        }
    }
    return m;
}

std::vector<double> dissimilarity_matrix::kth_nn(std::size_t k, std::size_t threads) const {
    expects(k >= 1, "kth_nn: k must be at least 1");
    if (n_ < 2) {
        return {};
    }
    obs::span sp("dissim.kth_nn");
    sp.count("n", n_);
    sp.count("k", k);
    const std::size_t kk = std::min(k, n_ - 1);
    // Each row selects its k-th neighbour independently into out[i]; the
    // per-lane scratch row keeps nth_element off shared state.
    std::vector<double> out(n_, 0.0);
    util::parallel_for(n_, 64, threads, [&](std::size_t begin, std::size_t end) {
        std::vector<float> row(n_ - 1);
        for (std::size_t i = begin; i < end; ++i) {
            std::size_t w = 0;
            for (std::size_t j = 0; j < n_; ++j) {
                if (j != i) {
                    row[w++] = data_[i * n_ + j];
                }
            }
            std::nth_element(row.begin(), row.begin() + static_cast<long>(kk - 1), row.end());
            out[i] = static_cast<double>(row[kk - 1]);
        }
    });
    return out;
}

std::vector<double> dissimilarity_matrix::upper_triangle() const {
    std::vector<double> out;
    out.reserve(n_ * (n_ - 1) / 2);
    for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t j = i + 1; j < n_; ++j) {
            out.push_back(static_cast<double>(data_[i * n_ + j]));
        }
    }
    return out;
}

}  // namespace ftc::dissim
