/// \file kernel.hpp
/// Optimized sliding-Canberra kernel backends (DESIGN.md §9).
///
/// The pairwise sliding-Canberra dissimilarity dominates pipeline wall time:
/// for every (segment, segment) pair the reference code runs an
/// O(m·(n−m+1)) sliding loop with one floating-point divide per byte. This
/// layer removes the divides and most of the window work without changing a
/// single output bit:
///
///  - **LUT backend.** Byte values are 8-bit, so every per-byte term
///    |x−y|/(x+y) is one of 256×256 doubles. They are precomputed once into
///    a 512 KB table (term_table()); each term is produced by exactly the
///    arithmetic the scalar code uses and the accumulation order is
///    unchanged, so all sums are bitwise identical to the scalar backend.
///  - **Early-exit pruning.** Sliding windows track the best raw window sum
///    seen so far and abandon a window as soon as its partial sum exceeds
///    that bound (terms are non-negative, so the window cannot become the
///    minimum). The winning window is always summed in full, so d_min is
///    bitwise unchanged (exactness argument in DESIGN.md §9).
///  - **Batching.** A single pair's sum is a strictly in-order add chain —
///    latency-bound, not throughput-bound — so the admissible parallelism
///    is across *independent* sums: the sliding loop computes eight (then
///    four) consecutive windows at once and the batch entry points below
///    compute up to eight pairs at once, every individual chain still in
///    scalar element order. This is where most of the speedup comes from.
///  - **SIMD backend** (`-DFTC_SIMD=ON`, x86-64). AVX2 variants of the same
///    loops: the multi-window batches put one window per vector lane
///    (vertical adds keep each lane a strictly in-order chain) and the
///    single-row path gathers four LUT terms per instruction, folding them
///    in element order — which is what keeps both admissible under the
///    bitwise-identity contract. Selected at runtime only when the CPU
///    supports AVX2; everything else falls back to the portable LUT loop.
///
/// Complexity per pair (m = shorter length, n = longer): equal path
/// O(m) adds, no divides; sliding path O(m·(n−m+1)) worst case, typically
/// far less because of pruning; all backends O(1) extra space beyond the
/// shared table. Results of every backend are in [0, 1] and bitwise equal
/// to ftc::dissim::sliding_canberra_dissimilarity
/// (tests/test_dissim_kernel.cpp proves this property-wise and end to end).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/byteio.hpp"

namespace ftc::dissim::kernel {

/// Selectable kernel implementations.
///  - scalar: the reference per-byte divide loop (canberra.cpp), full
///    window sums, no pruning — the semantics-defining baseline.
///  - lut:    portable table-driven loop with window pruning.
///  - simd:   AVX2 gather variant of the LUT loop (same summation order).
enum class backend { scalar, lut, simd };

/// Stable lower-case name of a backend ("scalar", "lut", "simd").
const char* backend_name(backend b);

/// True when this build compiled the SIMD translation unit
/// (-DFTC_SIMD=ON on a supported architecture).
bool simd_compiled();

/// True when the SIMD backend is compiled in *and* the running CPU
/// supports it (AVX2). When false, forcing backend::simd throws.
bool simd_available();

/// The backend the dispatcher currently resolves to. Defaults to the best
/// available one: simd when simd_available(), else lut.
backend active();

/// Force a specific backend (tests, benches). Throws
/// ftc::precondition_error when \p b is backend::simd but
/// simd_available() is false.
void force(backend b);

/// Restore the default dispatch choice (best available backend).
void reset();

/// RAII backend override: forces \p b for the enclosing scope and restores
/// the previously active backend on destruction.
class scoped_backend {
public:
    explicit scoped_backend(backend b) : previous_(active()) { force(b); }
    ~scoped_backend() { force(previous_); }

    scoped_backend(const scoped_backend&) = delete;
    scoped_backend& operator=(const scoped_backend&) = delete;

private:
    backend previous_;
};

/// Kernel work counters, accumulated locally by callers (one atomic-free
/// struct per worker block) and published through ftc::obs by the matrix
/// construction — never updated per byte.
struct stats {
    std::uint64_t invocations = 0;      ///< kernel entry calls (pairs)
    std::uint64_t equal_fast_path = 0;  ///< pairs taking the equal-length path
    std::uint64_t windows_total = 0;    ///< sliding windows started
    std::uint64_t windows_pruned = 0;   ///< windows abandoned by the bound

    void merge(const stats& other) {
        invocations += other.invocations;
        equal_fast_path += other.equal_fast_path;
        windows_total += other.windows_total;
        windows_pruned += other.windows_pruned;
    }
};

/// The shared 256×256 row-major term table: term_table()[x*256 + y] is the
/// double |x−y|/(x+y) (0.0 when x = y = 0), bitwise equal to the term the
/// scalar loop computes. Built on first use, immutable afterwards.
const double* term_table();

/// Normalized Canberra dissimilarity of two equal-length non-empty byte
/// vectors through the active backend, in [0, 1]. O(m) adds.
/// Preconditions as ftc::dissim::canberra_dissimilarity.
double equal_dissimilarity(byte_view x, byte_view y, stats* st = nullptr);

/// Lane count of equal_dissimilarity_batch. Eight independent in-order add
/// chains saturate the FP pipeline; a single pair's chain is latency-bound.
inline constexpr std::size_t kEqualBatch = 8;

/// Computes out[k] = equal_dissimilarity(x, ys[k]) for k < count
/// (1 ≤ count ≤ kEqualBatch; every ys[k] has x's length). Bitwise identical
/// to count single calls — each pair keeps its own strictly in-order sum;
/// the batch only lets the independent chains overlap in the pipeline
/// (DESIGN.md §9). The matrix construction feeds this from its
/// length-bucketed visit order, where equal-length partners are contiguous.
void equal_dissimilarity_batch(byte_view x, const byte_view* ys, std::size_t count,
                               double* out, stats* st = nullptr);

/// Sliding Canberra dissimilarity of two non-empty byte vectors through
/// the active backend, in [0, 1]; falls through to the equal-length path
/// when the lengths match. O(m·(n−m+1)) worst case, pruned in practice.
/// Bitwise equal to ftc::dissim::sliding_canberra_dissimilarity.
double sliding_dissimilarity(byte_view a, byte_view b, stats* st = nullptr);

/// Lane count of sliding_dissimilarity_batch (call-overhead amortization,
/// not a numeric contract — any count up to this is accepted).
inline constexpr std::size_t kSlideBatch = 8;

/// Computes out[k] = sliding_dissimilarity(a, bs[k]) for k < count
/// (1 ≤ count ≤ kSlideBatch), bitwise identical to count single calls.
/// Each pair still runs its own full sliding loop; the batch resolves the
/// backend once and lets the independent per-pair normalization chains
/// overlap in the pipeline, which matters for the short segments that
/// dominate real traces.
void sliding_dissimilarity_batch(byte_view a, const byte_view* bs, std::size_t count,
                                 double* out, stats* st = nullptr);

}  // namespace ftc::dissim::kernel
