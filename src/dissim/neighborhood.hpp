/// \file neighborhood.hpp
/// The epsilon-neighborhood abstraction between the dissimilarity layer and
/// the clustering layer (DESIGN.md §13).
///
/// DBSCAN, the epsilon auto-configuration and the refinement pass never need
/// the full pairwise matrix — they consume three queries: "who is within
/// epsilon of i", "the k-th-nearest-neighbour curve", and "the dissimilarity
/// of one specific pair". neighborhood_source names exactly that contract so
/// the clustering layer can run against either backing store:
///
///  - matrix_neighborhood wraps the existing dense/triangular
///    dissimilarity_matrix (every query answered from stored cells), or
///  - sparse_neighborhood (sparse.hpp) answers them from capped per-point
///    neighbor lists plus bucket-pruned on-demand scans, never materializing
///    the O(n²) matrix.
///
/// Contract (every implementation, verified by tests/test_dissim_sparse.cpp):
///  - dissimilarity(i, j) returns the value the matrix cell would hold: the
///    kernel result narrowed to f32 storage precision and widened back, so
///    both sources are bitwise interchangeable.
///  - neighbors_within(i, eps) returns every j (including i itself, distance
///    zero) with dissimilarity(i, j) <= eps, ids ascending — the exact
///    neighbor set DBSCAN's row scan produces, in the same order, so the
///    BFS expansion and therefore the labels are identical.
///  - kth_nn / kth_nn_many return the same doubles the matrix extraction
///    yields, for every k up to knn_cap(); beyond the cap they throw
///    knn_cap_error (typed, so the caller can distinguish "this source
///    cannot serve k" from a malformed request).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "dissim/matrix.hpp"
#include "util/error.hpp"

namespace ftc::dissim {

/// A k-NN request exceeded the horizon a neighborhood source retained
/// (sparse sources keep only knn_cap() neighbors per point). Derives from
/// precondition_error: the fix is on the caller — request fewer neighbors
/// or build the source with a larger cap.
class knn_cap_error : public precondition_error {
public:
    using precondition_error::precondition_error;
};

/// One stored neighbor: partner id and the f32 dissimilarity exactly as a
/// matrix cell would store it.
struct neighbor {
    std::uint32_t id = 0;
    float d = 0.0f;
};

/// Per-point sorted neighbor lists capped at a k horizon — the persistable
/// substrate of a sparse_neighborhood (checkpoint section `neighbors`).
/// lists[i] holds point i's min(cap, n-1) nearest neighbors ascending by
/// (d, id), excluding i itself; the values are the same f32 order
/// statistics a dense matrix row scan yields.
struct capped_neighbors {
    std::uint32_t cap = 0;
    std::vector<std::vector<neighbor>> lists;

    std::size_t size() const { return lists.size(); }
};

/// Which neighborhood construction the pipeline uses (--neighborhood).
/// Result-neutral by construction — both paths produce byte-identical
/// cluster reports — so the mode is deliberately NOT part of the checkpoint
/// fingerprint, exactly like thread counts and kernel backends.
enum class neighborhood_mode {
    dense,   ///< always build the full dissimilarity matrix
    sparse,  ///< always build capped neighbor lists (ftc::dissim::sparse)
    auto_,   ///< sparse at scale (>= auto threshold uniques), dense below
};

/// Unique-segment count at which neighborhood_mode::auto_ switches to the
/// sparse engine. Below it the dense matrix is small enough that the O(n²)
/// build is not the bottleneck and its unlimited k horizon keeps every
/// legacy path available.
inline constexpr std::size_t kSparseAutoUniques = 4096;

/// Stable lower-case name ("dense", "sparse", "auto").
const char* neighborhood_mode_name(neighborhood_mode mode);

/// Parse a --neighborhood value; throws ftc::precondition_error on anything
/// but "dense", "sparse" or "auto".
neighborhood_mode parse_neighborhood_mode(std::string_view text);

/// The epsilon-neighborhood queries the clustering layer consumes (contract
/// in the file comment). Query methods are logically const; sparse
/// implementations memoize behind the interface, so a single source must
/// not be queried from multiple threads concurrently (the clustering
/// consumers are serial; kth_nn/kth_nn_many parallelize internally).
class neighborhood_source {
public:
    virtual ~neighborhood_source() = default;

    /// Number of points (unique segment values).
    virtual std::size_t size() const = 0;

    /// Dissimilarity of the pair (i, j) at f32 storage precision, widened
    /// to double; 0 on the diagonal.
    virtual double dissimilarity(std::size_t i, std::size_t j) const = 0;

    /// Every j (including i itself) with dissimilarity(i, j) <= epsilon,
    /// ids ascending.
    virtual std::vector<std::uint32_t> neighbors_within(std::size_t i,
                                                        double epsilon) const = 0;

    /// Largest k kth_nn/kth_nn_many can serve (requests are clamped to
    /// size()-1 first, so a cap >= size()-1 means unlimited).
    virtual std::size_t knn_cap() const = 0;

    /// Per-point k-th-nearest-neighbor dissimilarity (semantics of
    /// dissimilarity_matrix::kth_nn). Throws knn_cap_error when the clamped
    /// k exceeds knn_cap().
    virtual std::vector<double> kth_nn(std::size_t k, std::size_t threads = 1) const = 0;

    /// All curves k = 1..k_max in one batch (semantics of
    /// dissimilarity_matrix::kth_nn_many). Throws knn_cap_error when the
    /// clamped k_max exceeds knn_cap().
    virtual std::vector<std::vector<double>> kth_nn_many(std::size_t k_max,
                                                         std::size_t threads = 1) const = 0;
};

/// neighborhood_source over a prebuilt dense/triangular matrix: every query
/// forwards to the stored cells. Does not own the matrix; it must outlive
/// the adapter.
class matrix_neighborhood final : public neighborhood_source {
public:
    explicit matrix_neighborhood(const dissimilarity_matrix& matrix) : matrix_(matrix) {}

    std::size_t size() const override { return matrix_.size(); }

    double dissimilarity(std::size_t i, std::size_t j) const override {
        return matrix_.at(i, j);
    }

    std::vector<std::uint32_t> neighbors_within(std::size_t i,
                                                double epsilon) const override;

    /// A matrix row holds every neighbor, so any clamped k is servable.
    std::size_t knn_cap() const override { return matrix_.size(); }

    std::vector<double> kth_nn(std::size_t k, std::size_t threads = 1) const override {
        return matrix_.kth_nn(k, threads);
    }

    std::vector<std::vector<double>> kth_nn_many(std::size_t k_max,
                                                 std::size_t threads = 1) const override {
        return matrix_.kth_nn_many(k_max, threads);
    }

private:
    const dissimilarity_matrix& matrix_;
};

}  // namespace ftc::dissim
