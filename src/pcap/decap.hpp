/// \file decap.hpp
/// Decapsulation of captured frames down to application payloads.
///
/// Supports Ethernet II -> IPv4 -> UDP/TCP. UDP datagrams map 1:1 to
/// application messages; TCP segments are reassembled per flow in sequence
/// order (enough for the captures ftclust generates: in-order, no loss) and
/// then split into messages by a caller-provided framing function, e.g. the
/// NetBIOS session service length prefix used by SMB.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pcap/pcap.hpp"

namespace ftc::pcap {

/// A MAC address.
using mac_address = std::array<std::uint8_t, 6>;

/// IPv4 address as a host-order integer; use dotted() for display.
struct ipv4_address {
    std::uint32_t value = 0;

    auto operator<=>(const ipv4_address&) const = default;

    /// Dotted-quad rendering, e.g. "192.168.1.17".
    std::string dotted() const;
};

/// Make an address from four octets.
constexpr ipv4_address make_ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) {
    return ipv4_address{(static_cast<std::uint32_t>(a) << 24) |
                        (static_cast<std::uint32_t>(b) << 16) |
                        (static_cast<std::uint32_t>(c) << 8) | d};
}

/// Transport protocol of an extracted payload.
enum class transport : std::uint8_t { udp = 17, tcp = 6 };

/// Flow identity of an extracted application message.
struct flow_key {
    ipv4_address src_ip;
    ipv4_address dst_ip;
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    transport proto = transport::udp;

    auto operator<=>(const flow_key&) const = default;

    /// The same flow seen from the other direction.
    flow_key reversed() const { return {dst_ip, src_ip, dst_port, src_port, proto}; }
};

/// One application-layer message extracted from a capture.
struct datagram {
    flow_key flow;
    std::uint32_t ts_sec = 0;
    std::uint32_t ts_usec = 0;
    byte_vector payload;
};

/// Parsed Ethernet II header.
struct ethernet_header {
    mac_address dst{};
    mac_address src{};
    std::uint16_t ethertype = 0;
    static constexpr std::size_t size = 14;
};

/// Parsed IPv4 header (options are skipped, not interpreted).
struct ipv4_header {
    std::uint8_t header_length = 20;  ///< in bytes
    std::uint8_t ttl = 0;
    std::uint8_t protocol = 0;
    std::uint16_t total_length = 0;
    std::uint16_t identification = 0;
    ipv4_address src;
    ipv4_address dst;
};

/// Parsed UDP header.
struct udp_header {
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint16_t length = 0;
    static constexpr std::size_t size = 8;
};

/// Parsed TCP header.
struct tcp_header {
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint32_t seq = 0;
    std::uint32_t ack = 0;
    std::uint8_t data_offset = 20;  ///< in bytes
    std::uint8_t flags = 0;
};

/// RFC 1071 Internet checksum over \p data (with virtual trailing zero pad
/// for odd lengths).
std::uint16_t internet_checksum(byte_view data);

/// Parse headers at the given offsets; all throw ftc::parse_error on
/// truncation or structural errors (e.g. IHL < 5).
ethernet_header parse_ethernet(byte_view frame);
ipv4_header parse_ipv4(byte_view packet_bytes, bool verify_checksum = true);
udp_header parse_udp(byte_view segment);
tcp_header parse_tcp(byte_view segment);

/// Splits a reassembled TCP byte stream into application messages.
/// Returns the length of the first complete message at the stream head, or
/// nullopt if more bytes are needed.
using stream_framer = std::function<std::optional<std::size_t>(byte_view stream)>;

/// Framer for the NetBIOS session service (RFC 1002, used by SMB over TCP):
/// a 4-byte header whose low 24 bits give the following message length; the
/// returned message includes the 4-byte NBSS header.
std::optional<std::size_t> nbss_framer(byte_view stream);

/// TCP stream reassembly per flow. Segments beyond the expected sequence
/// number are buffered until the gap closes; a segment that precedes the
/// current buffer start (the stream head was reordered and no bytes have
/// been consumed yet) is prepended when it is exactly adjacent;
/// retransmissions of already-delivered data are dropped.
class tcp_reassembler {
public:
    /// Feed one TCP segment's payload. Returns messages completed by it.
    std::vector<byte_vector> feed(const flow_key& flow, std::uint32_t seq, byte_view payload,
                                  const stream_framer& framer);

private:
    struct stream_state {
        bool initialized = false;
        bool consumed_any = false;   ///< bytes already framed away
        std::uint32_t buffer_seq = 0;  ///< sequence number of buffer.front()
        std::uint32_t next_seq = 0;    ///< sequence number after buffer.back()
        byte_vector buffer;
        std::map<std::uint32_t, byte_vector> out_of_order;
    };

    std::map<flow_key, stream_state> streams_;
};

/// Options for extract_datagrams.
struct extract_options {
    /// Verify IPv4 header checksums and drop packets failing the check.
    bool verify_checksums = true;
    /// Framer for TCP payload streams (default: NBSS framing).
    stream_framer tcp_framer = nbss_framer;
};

/// Walk a capture and extract application messages: UDP payloads directly,
/// TCP via reassembly + framing. Frames for linktype::user0 / raw captures
/// are returned as messages with a zeroed flow key. Non-IPv4 ethertypes and
/// unsupported IP protocols are skipped.
std::vector<datagram> extract_datagrams(const capture& cap, const extract_options& options = {});

/// Like the overload above, but malformed frames are reported into \p sink
/// as quarantine diagnostics (category decap, record_index = packet index)
/// and benign skips (non-IPv4 ethertype, unsupported IP protocol) as notes.
/// Decapsulation has always skipped bad frames rather than thrown, so the
/// sink's strict/lenient policy does not change which packets survive —
/// it only makes the drops observable.
std::vector<datagram> extract_datagrams(const capture& cap, const extract_options& options,
                                        diag::error_sink& sink);

}  // namespace ftc::pcap
