/// \file encap.hpp
/// Encapsulation: wrap application messages into Ethernet/IPv4/UDP/TCP
/// frames with valid lengths and checksums, producing captures that the
/// decapsulation path (decap.hpp) — or any other pcap consumer — can read.
#pragma once

#include "pcap/decap.hpp"
#include "pcap/pcap.hpp"

namespace ftc::pcap {

/// Build an Ethernet II + IPv4 + UDP frame around \p payload.
/// The IPv4 header checksum is computed; identification/ttl are fixed,
/// deterministic values.
byte_vector build_udp_frame(const mac_address& src_mac, const mac_address& dst_mac,
                            const flow_key& flow, byte_view payload,
                            std::uint16_t ip_identification = 0);

/// Build an Ethernet II + IPv4 + TCP frame (PSH|ACK) carrying \p payload at
/// the given sequence number.
byte_vector build_tcp_frame(const mac_address& src_mac, const mac_address& dst_mac,
                            const flow_key& flow, std::uint32_t seq, byte_view payload,
                            std::uint16_t ip_identification = 0);

/// Prefix \p smb_message with a NetBIOS session service header (RFC 1002)
/// as used by SMB over TCP.
byte_vector wrap_nbss(byte_view smb_message);

/// Helper that appends application messages to a capture, choosing the
/// appropriate encapsulation per flow. UDP messages become single frames;
/// TCP messages are NBSS-wrapped and sequenced per flow.
class capture_builder {
public:
    /// Create a builder for the given link type. For linktype::user0 the
    /// messages are stored without any headers.
    explicit capture_builder(linktype link);

    /// Append one message; timestamps advance by ~1 ms per message.
    void add_message(const flow_key& flow, byte_view payload);

    /// Append a raw (non-IP) message; only valid for linktype::user0.
    void add_raw(byte_view payload);

    /// Take the finished capture.
    capture finish() &&;

private:
    capture cap_;
    std::uint32_t ts_sec_ = 1300000000;  // deterministic base timestamp
    std::uint32_t ts_usec_ = 0;
    std::uint16_t next_ip_id_ = 1;
    std::map<flow_key, std::uint32_t> tcp_seq_;

    void advance_clock();
    void push_packet(byte_vector frame);
};

}  // namespace ftc::pcap
