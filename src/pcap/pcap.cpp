#include "pcap/pcap.hpp"

#include <algorithm>
#include <fstream>

#include "util/check.hpp"

namespace ftc::pcap {

namespace {

constexpr std::uint32_t kMagicUsec = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNsec = 0xa1b23c4d;
constexpr std::uint32_t kMagicUsecSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNsecSwapped = 0x4d3cb2a1;
constexpr std::uint16_t kVersionMajor = 2;
constexpr std::uint16_t kVersionMinor = 4;
constexpr std::size_t kGlobalHeaderSize = 24;
constexpr std::size_t kRecordHeaderSize = 16;

/// Absolute ceiling on a single record's captured length. No sane link
/// carries larger frames; a bigger incl_len is a corrupt header, and
/// honoring it would attempt a multi-GB allocation before the parse error
/// ever fired.
constexpr std::uint32_t kMaxRecordBytes = 64u * 1024 * 1024;

/// Floor of the per-record plausibility bound: files whose global header
/// understates the snaplen (off-spec producers) still parse as long as
/// records stay under 256 KiB.
constexpr std::uint32_t kMinRecordBound = 256u * 1024;

}  // namespace

byte_vector to_pcap_bytes(const capture& cap) {
    byte_vector out;
    out.reserve(kGlobalHeaderSize + cap.packets.size() * kRecordHeaderSize);
    put_u32_be(out, kMagicUsec);
    put_u16_be(out, kVersionMajor);
    put_u16_be(out, kVersionMinor);
    put_u32_be(out, 0);  // thiszone
    put_u32_be(out, 0);  // sigfigs
    put_u32_be(out, cap.snaplen);
    put_u32_be(out, static_cast<std::uint32_t>(cap.link));
    for (const packet& p : cap.packets) {
        put_u32_be(out, p.ts_sec);
        put_u32_be(out, p.ts_usec);
        put_u32_be(out, static_cast<std::uint32_t>(p.data.size()));  // incl_len
        put_u32_be(out, static_cast<std::uint32_t>(p.data.size()));  // orig_len
        put_bytes(out, p.data);
    }
    return out;
}

capture from_pcap_bytes(byte_view bytes, diag::error_sink& sink) {
    if (bytes.size() < kGlobalHeaderSize) {
        throw parse_error(message("pcap: file too short (", bytes.size(), " bytes)"));
    }
    // The magic is written in the producer's byte order; try big-endian
    // first, then the byte-swapped variants.
    const std::uint32_t magic_be = get_u32_be(bytes, 0);
    bool little_endian = false;
    bool nanosecond = false;
    switch (magic_be) {
        case kMagicUsec:
            break;
        case kMagicNsec:
            nanosecond = true;
            break;
        case kMagicUsecSwapped:
            little_endian = true;
            break;
        case kMagicNsecSwapped:
            little_endian = true;
            nanosecond = true;
            break;
        default:
            throw parse_error(message("pcap: bad magic 0x", std::hex, magic_be));
    }
    auto u16 = [&](std::size_t off) {
        return little_endian ? get_u16_le(bytes, off) : get_u16_be(bytes, off);
    };
    auto u32 = [&](std::size_t off) {
        return little_endian ? get_u32_le(bytes, off) : get_u32_be(bytes, off);
    };

    const std::uint16_t major = u16(4);
    if (major != kVersionMajor) {
        throw parse_error(message("pcap: unsupported version ", major));
    }
    capture cap;
    cap.snaplen = u32(16);
    cap.link = static_cast<linktype>(u32(20));
    if (nanosecond) {
        sink.report({diag::category::file_header, diag::severity::note, 0, 0,
                     "pcap: nanosecond timestamps downscaled to microseconds"});
    }

    // Per-record plausibility bound: the stated snaplen with headroom for
    // off-spec producers, but never past the hard allocation ceiling.
    const std::uint32_t record_bound =
        std::min(kMaxRecordBytes, std::max(cap.snaplen, kMinRecordBound));

    // Timestamp plausibility, the discriminator that keeps the
    // resynchronization scan from matching inside packet data: writers keep
    // the sub-second field below one tick unit per second, and neighboring
    // records in a capture are close in time. Both fail for the small
    // integers and text that fill record bodies.
    const std::uint32_t tick_limit = nanosecond ? 1'000'000'000u : 1'000'000u;
    constexpr std::uint32_t kResyncTsWindow = 7 * 24 * 3600;  // seconds
    auto ts_sane = [&](std::size_t pos, std::uint32_t ref_sec) {
        const std::uint32_t sec = u32(pos);
        const std::uint32_t delta = sec > ref_sec ? sec - ref_sec : ref_sec - sec;
        return delta <= kResyncTsWindow && u32(pos + 4) < tick_limit;
    };

    // Find the next offset >= from that looks like a record header, given
    // the seconds timestamp of the record whose length field was corrupt
    // (its timestamp words survive a bad length). Two shapes qualify: a
    // healthy record (plausible timestamp and incl_len, body fits the file,
    // followed by end-of-file or another plausible header), or the intact
    // header of a further length-corrupted record (plausible timestamp and
    // orig_len, absurd incl_len) — resuming on the latter lets the main
    // loop quarantine that record under its own index.
    auto find_next_record = [&](std::size_t from, std::uint32_t ref_sec) {
        for (std::size_t pos = from; pos + kRecordHeaderSize <= bytes.size(); ++pos) {
            if (!ts_sane(pos, ref_sec)) {
                continue;
            }
            const std::uint32_t incl = u32(pos + 8);
            if (incl > record_bound) {
                if (u32(pos + 12) <= record_bound) {
                    return pos;  // another corrupt length field, header intact
                }
                continue;
            }
            const std::size_t end = pos + kRecordHeaderSize + incl;
            if (end > bytes.size()) {
                continue;
            }
            if (end == bytes.size()) {
                return pos;
            }
            if (end + kRecordHeaderSize <= bytes.size() && ts_sane(end, u32(pos))) {
                return pos;
            }
        }
        return bytes.size();
    };

    std::size_t offset = kGlobalHeaderSize;
    std::size_t record_index = 0;
    while (offset < bytes.size()) {
        if (offset + kRecordHeaderSize > bytes.size()) {
            sink.fail({diag::category::record, diag::severity::error, record_index, offset,
                       "pcap: truncated record header"});
            break;  // lenient: the tail cannot hold a record
        }
        packet p;
        p.ts_sec = u32(offset);
        p.ts_usec = u32(offset + 4);
        if (nanosecond) {
            p.ts_usec /= 1000;
        }
        const std::uint32_t incl_len = u32(offset + 8);
        const std::uint32_t orig_len = u32(offset + 12);
        std::string fault;
        if (incl_len > record_bound) {
            fault = message("pcap: implausible record length ", incl_len, " (bound ",
                            record_bound, ")");
        } else if (offset + kRecordHeaderSize + incl_len > bytes.size()) {
            fault = "pcap: truncated packet data";
        }
        if (!fault.empty()) {
            sink.fail({diag::category::record, diag::severity::error, record_index, offset,
                       std::move(fault)});
            // Lenient: quarantine this record and resynchronize on the next
            // plausible record header.
            const std::size_t next = find_next_record(offset + kRecordHeaderSize, p.ts_sec);
            if (next < bytes.size()) {
                sink.report({diag::category::record, diag::severity::note, record_index,
                             next,
                             message("pcap: resynchronized after skipping ", next - offset,
                                     " bytes")});
            }
            offset = next;
            ++record_index;
            continue;
        }
        if (incl_len < orig_len) {
            sink.report({diag::category::record, diag::severity::note, record_index, offset,
                         message("pcap: record snapped from ", orig_len, " to ", incl_len,
                                 " bytes")});
        }
        offset += kRecordHeaderSize;
        const byte_view body = bytes.subspan(offset, incl_len);
        p.data.assign(body.begin(), body.end());
        offset += incl_len;
        cap.packets.push_back(std::move(p));
        ++record_index;
    }
    return cap;
}

capture from_pcap_bytes(byte_view bytes) {
    diag::error_sink strict;
    return from_pcap_bytes(bytes, strict);
}

void write_file(const std::filesystem::path& path, const capture& cap) {
    const byte_vector bytes = to_pcap_bytes(cap);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw error(message("pcap: cannot open for writing: ", path.string()));
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
        throw error(message("pcap: write failed: ", path.string()));
    }
}

capture read_file(const std::filesystem::path& path, diag::error_sink& sink) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
        throw error(message("pcap: cannot open for reading: ", path.string()));
    }
    const std::streamsize size = in.tellg();
    in.seekg(0);
    byte_vector bytes(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char*>(bytes.data()), size);
    if (!in) {
        throw error(message("pcap: read failed: ", path.string()));
    }
    return from_pcap_bytes(bytes, sink);
}

capture read_file(const std::filesystem::path& path) {
    diag::error_sink strict;
    return read_file(path, strict);
}

}  // namespace ftc::pcap
