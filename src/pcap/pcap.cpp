#include "pcap/pcap.hpp"

#include <fstream>

#include "util/check.hpp"

namespace ftc::pcap {

namespace {

constexpr std::uint32_t kMagicUsec = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNsec = 0xa1b23c4d;
constexpr std::uint32_t kMagicUsecSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNsecSwapped = 0x4d3cb2a1;
constexpr std::uint16_t kVersionMajor = 2;
constexpr std::uint16_t kVersionMinor = 4;
constexpr std::size_t kGlobalHeaderSize = 24;
constexpr std::size_t kRecordHeaderSize = 16;

}  // namespace

byte_vector to_pcap_bytes(const capture& cap) {
    byte_vector out;
    out.reserve(kGlobalHeaderSize + cap.packets.size() * kRecordHeaderSize);
    put_u32_be(out, kMagicUsec);
    put_u16_be(out, kVersionMajor);
    put_u16_be(out, kVersionMinor);
    put_u32_be(out, 0);  // thiszone
    put_u32_be(out, 0);  // sigfigs
    put_u32_be(out, cap.snaplen);
    put_u32_be(out, static_cast<std::uint32_t>(cap.link));
    for (const packet& p : cap.packets) {
        put_u32_be(out, p.ts_sec);
        put_u32_be(out, p.ts_usec);
        put_u32_be(out, static_cast<std::uint32_t>(p.data.size()));  // incl_len
        put_u32_be(out, static_cast<std::uint32_t>(p.data.size()));  // orig_len
        put_bytes(out, p.data);
    }
    return out;
}

capture from_pcap_bytes(byte_view bytes) {
    if (bytes.size() < kGlobalHeaderSize) {
        throw parse_error(message("pcap: file too short (", bytes.size(), " bytes)"));
    }
    // The magic is written in the producer's byte order; try big-endian
    // first, then the byte-swapped variants.
    const std::uint32_t magic_be = get_u32_be(bytes, 0);
    bool little_endian = false;
    switch (magic_be) {
        case kMagicUsec:
        case kMagicNsec:
            little_endian = false;
            break;
        case kMagicUsecSwapped:
        case kMagicNsecSwapped:
            little_endian = true;
            break;
        default:
            throw parse_error(message("pcap: bad magic 0x", std::hex, magic_be));
    }
    auto u16 = [&](std::size_t off) {
        return little_endian ? get_u16_le(bytes, off) : get_u16_be(bytes, off);
    };
    auto u32 = [&](std::size_t off) {
        return little_endian ? get_u32_le(bytes, off) : get_u32_be(bytes, off);
    };

    const std::uint16_t major = u16(4);
    if (major != kVersionMajor) {
        throw parse_error(message("pcap: unsupported version ", major));
    }
    capture cap;
    cap.snaplen = u32(16);
    cap.link = static_cast<linktype>(u32(20));

    std::size_t offset = kGlobalHeaderSize;
    while (offset < bytes.size()) {
        if (offset + kRecordHeaderSize > bytes.size()) {
            throw parse_error("pcap: truncated record header");
        }
        packet p;
        p.ts_sec = u32(offset);
        p.ts_usec = u32(offset + 4);
        const std::uint32_t incl_len = u32(offset + 8);
        offset += kRecordHeaderSize;
        if (offset + incl_len > bytes.size()) {
            throw parse_error("pcap: truncated packet data");
        }
        const byte_view body = bytes.subspan(offset, incl_len);
        p.data.assign(body.begin(), body.end());
        offset += incl_len;
        cap.packets.push_back(std::move(p));
    }
    return cap;
}

void write_file(const std::filesystem::path& path, const capture& cap) {
    const byte_vector bytes = to_pcap_bytes(cap);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw error(message("pcap: cannot open for writing: ", path.string()));
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
        throw error(message("pcap: write failed: ", path.string()));
    }
}

capture read_file(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
        throw error(message("pcap: cannot open for reading: ", path.string()));
    }
    const std::streamsize size = in.tellg();
    in.seekg(0);
    byte_vector bytes(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char*>(bytes.data()), size);
    if (!in) {
        throw error(message("pcap: read failed: ", path.string()));
    }
    return from_pcap_bytes(bytes);
}

}  // namespace ftc::pcap
