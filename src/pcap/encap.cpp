#include "pcap/encap.hpp"

#include "util/check.hpp"

namespace ftc::pcap {

namespace {

void put_mac(byte_vector& out, const mac_address& mac) {
    out.insert(out.end(), mac.begin(), mac.end());
}

/// IPv4 header with checksum; returns the full packet bytes (header + payload).
byte_vector build_ipv4(std::uint8_t protocol, const flow_key& flow, byte_view l4_bytes,
                       std::uint16_t identification) {
    byte_vector ip;
    const std::size_t total_length = 20 + l4_bytes.size();
    expects(total_length <= 0xffff, "ipv4: payload too large");
    put_u8(ip, 0x45);  // version 4, IHL 5
    put_u8(ip, 0x00);  // DSCP/ECN
    put_u16_be(ip, static_cast<std::uint16_t>(total_length));
    put_u16_be(ip, identification);
    put_u16_be(ip, 0x4000);  // flags: DF
    put_u8(ip, 64);          // TTL
    put_u8(ip, protocol);
    put_u16_be(ip, 0);  // checksum placeholder
    put_u32_be(ip, flow.src_ip.value);
    put_u32_be(ip, flow.dst_ip.value);
    const std::uint16_t sum = internet_checksum(ip);
    ip[10] = static_cast<std::uint8_t>(sum >> 8);
    ip[11] = static_cast<std::uint8_t>(sum & 0xff);
    put_bytes(ip, l4_bytes);
    return ip;
}

byte_vector build_ethernet(const mac_address& src_mac, const mac_address& dst_mac,
                           byte_view ip_bytes) {
    byte_vector frame;
    frame.reserve(ethernet_header::size + ip_bytes.size());
    put_mac(frame, dst_mac);
    put_mac(frame, src_mac);
    put_u16_be(frame, 0x0800);
    put_bytes(frame, ip_bytes);
    return frame;
}

}  // namespace

byte_vector build_udp_frame(const mac_address& src_mac, const mac_address& dst_mac,
                            const flow_key& flow, byte_view payload,
                            std::uint16_t ip_identification) {
    byte_vector udp;
    const std::size_t udp_length = udp_header::size + payload.size();
    expects(udp_length <= 0xffff, "udp: payload too large");
    put_u16_be(udp, flow.src_port);
    put_u16_be(udp, flow.dst_port);
    put_u16_be(udp, static_cast<std::uint16_t>(udp_length));
    put_u16_be(udp, 0);  // UDP checksum optional over IPv4; 0 = unused
    put_bytes(udp, payload);
    const byte_vector ip = build_ipv4(static_cast<std::uint8_t>(transport::udp), flow, udp,
                                      ip_identification);
    return build_ethernet(src_mac, dst_mac, ip);
}

byte_vector build_tcp_frame(const mac_address& src_mac, const mac_address& dst_mac,
                            const flow_key& flow, std::uint32_t seq, byte_view payload,
                            std::uint16_t ip_identification) {
    byte_vector tcp;
    put_u16_be(tcp, flow.src_port);
    put_u16_be(tcp, flow.dst_port);
    put_u32_be(tcp, seq);
    put_u32_be(tcp, 0);     // ack (synthetic stream; receiver side not modeled)
    put_u8(tcp, 5 << 4);    // data offset 5 words, no options
    put_u8(tcp, 0x18);      // PSH | ACK
    put_u16_be(tcp, 0xffff);  // window
    put_u16_be(tcp, 0);       // checksum (not verified by decap path)
    put_u16_be(tcp, 0);       // urgent pointer
    put_bytes(tcp, payload);
    const byte_vector ip = build_ipv4(static_cast<std::uint8_t>(transport::tcp), flow, tcp,
                                      ip_identification);
    return build_ethernet(src_mac, dst_mac, ip);
}

byte_vector wrap_nbss(byte_view smb_message) {
    expects(smb_message.size() < (1u << 17),
            "nbss: message exceeds session service length field");
    byte_vector out;
    put_u8(out, 0x00);  // session message
    put_u8(out, static_cast<std::uint8_t>((smb_message.size() >> 16) & 0x01));
    put_u16_be(out, static_cast<std::uint16_t>(smb_message.size() & 0xffff));
    put_bytes(out, smb_message);
    return out;
}

capture_builder::capture_builder(linktype link) { cap_.link = link; }

void capture_builder::advance_clock() {
    ts_usec_ += 1000;
    if (ts_usec_ >= 1000000) {
        ts_usec_ -= 1000000;
        ++ts_sec_;
    }
}

void capture_builder::push_packet(byte_vector frame) {
    packet p;
    p.ts_sec = ts_sec_;
    p.ts_usec = ts_usec_;
    p.data = std::move(frame);
    cap_.packets.push_back(std::move(p));
    advance_clock();
}

void capture_builder::add_message(const flow_key& flow, byte_view payload) {
    expects(cap_.link == linktype::ethernet, "capture_builder: IP messages need ethernet link");
    // Deterministic locally-administered MACs derived from the IPs.
    const auto mac_for = [](ipv4_address ip) {
        return mac_address{0x02, 0x00, static_cast<std::uint8_t>(ip.value >> 24),
                           static_cast<std::uint8_t>(ip.value >> 16),
                           static_cast<std::uint8_t>(ip.value >> 8),
                           static_cast<std::uint8_t>(ip.value)};
    };
    if (flow.proto == transport::udp) {
        push_packet(build_udp_frame(mac_for(flow.src_ip), mac_for(flow.dst_ip), flow, payload,
                                    next_ip_id_++));
    } else {
        const byte_vector framed = wrap_nbss(payload);
        std::uint32_t& seq = tcp_seq_[flow];
        if (seq == 0) {
            seq = 0x10000;  // deterministic initial sequence number
        }
        push_packet(build_tcp_frame(mac_for(flow.src_ip), mac_for(flow.dst_ip), flow, seq, framed,
                                    next_ip_id_++));
        seq += static_cast<std::uint32_t>(framed.size());
    }
}

void capture_builder::add_raw(byte_view payload) {
    expects(cap_.link == linktype::user0 || cap_.link == linktype::ieee802_11,
            "capture_builder: raw messages need a non-IP link type");
    push_packet(byte_vector(payload.begin(), payload.end()));
}

capture capture_builder::finish() && { return std::move(cap_); }

}  // namespace ftc::pcap
