#include "pcap/decap.hpp"

#include <cstdio>

#include "obs/obs.hpp"
#include "obs/progress.hpp"
#include "util/check.hpp"

namespace ftc::pcap {

std::string ipv4_address::dotted() const {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value >> 24) & 0xff, (value >> 16) & 0xff,
                  (value >> 8) & 0xff, value & 0xff);
    return buf;
}

std::uint16_t internet_checksum(byte_view data) {
    std::uint32_t sum = 0;
    std::size_t i = 0;
    for (; i + 1 < data.size(); i += 2) {
        sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
    }
    if (i < data.size()) {
        sum += static_cast<std::uint32_t>(data[i] << 8);
    }
    while (sum >> 16) {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    return static_cast<std::uint16_t>(~sum & 0xffff);
}

ethernet_header parse_ethernet(byte_view frame) {
    if (frame.size() < ethernet_header::size) {
        throw parse_error(message("ethernet: frame too short (", frame.size(), " bytes)"));
    }
    ethernet_header h;
    for (std::size_t i = 0; i < 6; ++i) {
        h.dst[i] = frame[i];
        h.src[i] = frame[6 + i];
    }
    h.ethertype = get_u16_be(frame, 12);
    return h;
}

ipv4_header parse_ipv4(byte_view packet_bytes, bool verify_checksum) {
    if (packet_bytes.size() < 20) {
        throw parse_error(message("ipv4: header too short (", packet_bytes.size(), " bytes)"));
    }
    const std::uint8_t version_ihl = packet_bytes[0];
    if ((version_ihl >> 4) != 4) {
        throw parse_error(message("ipv4: not version 4: ", version_ihl >> 4));
    }
    const std::uint8_t ihl = static_cast<std::uint8_t>(version_ihl & 0x0f);
    if (ihl < 5) {
        throw parse_error(message("ipv4: IHL below minimum: ", static_cast<int>(ihl)));
    }
    ipv4_header h;
    h.header_length = static_cast<std::uint8_t>(ihl * 4);
    if (packet_bytes.size() < h.header_length) {
        throw parse_error("ipv4: truncated options");
    }
    h.total_length = get_u16_be(packet_bytes, 2);
    h.identification = get_u16_be(packet_bytes, 4);
    h.ttl = packet_bytes[8];
    h.protocol = packet_bytes[9];
    h.src = ipv4_address{get_u32_be(packet_bytes, 12)};
    h.dst = ipv4_address{get_u32_be(packet_bytes, 16)};
    if (verify_checksum) {
        const std::uint16_t sum = internet_checksum(packet_bytes.subspan(0, h.header_length));
        if (sum != 0) {
            throw parse_error(message("ipv4: header checksum mismatch (residual 0x", sum, ")"));
        }
    }
    if (h.total_length < h.header_length || h.total_length > packet_bytes.size()) {
        throw parse_error(message("ipv4: inconsistent total length ", h.total_length));
    }
    return h;
}

udp_header parse_udp(byte_view segment) {
    if (segment.size() < udp_header::size) {
        throw parse_error("udp: header too short");
    }
    udp_header h;
    h.src_port = get_u16_be(segment, 0);
    h.dst_port = get_u16_be(segment, 2);
    h.length = get_u16_be(segment, 4);
    if (h.length < udp_header::size || h.length > segment.size()) {
        throw parse_error(message("udp: inconsistent length ", h.length));
    }
    return h;
}

tcp_header parse_tcp(byte_view segment) {
    if (segment.size() < 20) {
        throw parse_error("tcp: header too short");
    }
    tcp_header h;
    h.src_port = get_u16_be(segment, 0);
    h.dst_port = get_u16_be(segment, 2);
    h.seq = get_u32_be(segment, 4);
    h.ack = get_u32_be(segment, 8);
    const std::uint8_t offset_words = static_cast<std::uint8_t>(segment[12] >> 4);
    if (offset_words < 5) {
        throw parse_error(message("tcp: data offset below minimum: ", int{offset_words}));
    }
    h.data_offset = static_cast<std::uint8_t>(offset_words * 4);
    if (segment.size() < h.data_offset) {
        throw parse_error("tcp: truncated options");
    }
    h.flags = segment[13];
    return h;
}

std::optional<std::size_t> nbss_framer(byte_view stream) {
    constexpr std::size_t kHeader = 4;
    if (stream.size() < kHeader) {
        return std::nullopt;
    }
    // RFC 1002 session message: type byte, then a 24-bit length minus flags;
    // for the session message type (0x00) the low 17 bits carry the length.
    const std::size_t body = (static_cast<std::size_t>(stream[1] & 0x01) << 16) |
                             (static_cast<std::size_t>(stream[2]) << 8) | stream[3];
    const std::size_t total = kHeader + body;
    if (stream.size() < total) {
        return std::nullopt;
    }
    return total;
}

std::vector<byte_vector> tcp_reassembler::feed(const flow_key& flow, std::uint32_t seq,
                                               byte_view payload, const stream_framer& framer) {
    std::vector<byte_vector> completed;
    stream_state& state = streams_[flow];
    if (!state.initialized) {
        state.initialized = true;
        state.buffer_seq = seq;
        state.next_seq = seq;
    }

    auto append_in_order = [&state](byte_view bytes) {
        state.buffer.insert(state.buffer.end(), bytes.begin(), bytes.end());
        state.next_seq += static_cast<std::uint32_t>(bytes.size());
    };

    if (seq == state.next_seq) {
        append_in_order(payload);
        // Drain any buffered continuation segments.
        auto it = state.out_of_order.find(state.next_seq);
        while (it != state.out_of_order.end()) {
            append_in_order(it->second);
            state.out_of_order.erase(it);
            it = state.out_of_order.find(state.next_seq);
        }
    } else if (static_cast<std::int32_t>(seq - state.next_seq) > 0) {
        state.out_of_order.emplace(seq, byte_vector(payload.begin(), payload.end()));
    } else if (!state.consumed_any &&
               seq + static_cast<std::uint32_t>(payload.size()) == state.buffer_seq) {
        // The stream head was reordered: this segment directly precedes the
        // buffered data and nothing has been framed yet — prepend it.
        state.buffer.insert(state.buffer.begin(), payload.begin(), payload.end());
        state.buffer_seq = seq;
    }
    // else: retransmission of already-delivered data; drop.

    // Frame complete messages off the stream head.
    while (true) {
        const std::optional<std::size_t> frame_len = framer(state.buffer);
        if (!frame_len || *frame_len == 0 || *frame_len > state.buffer.size()) {
            break;
        }
        completed.emplace_back(state.buffer.begin(),
                               state.buffer.begin() + static_cast<std::ptrdiff_t>(*frame_len));
        state.buffer.erase(state.buffer.begin(),
                           state.buffer.begin() + static_cast<std::ptrdiff_t>(*frame_len));
        state.buffer_seq += static_cast<std::uint32_t>(*frame_len);
        state.consumed_any = true;
    }
    return completed;
}

std::vector<datagram> extract_datagrams(const capture& cap, const extract_options& options,
                                        diag::error_sink& sink) {
    obs::span sp("pcap.decap");
    sp.count("packets", cap.packets.size());
    obs::progress_stage("pcap.decap", cap.packets.size());
    std::vector<datagram> out;
    tcp_reassembler reassembler;

    // Record a quarantined frame (historically a silent skip).
    auto quarantine = [&sink](std::size_t index, std::string detail) {
        sink.report({diag::category::decap, diag::severity::error, index, 0,
                     std::move(detail)});
    };

    for (std::size_t index = 0; index < cap.packets.size(); ++index) {
        obs::progress_add(1);
        const packet& p = cap.packets[index];
        const byte_view frame{p.data};
        if (cap.link == linktype::user0 || cap.link == linktype::ieee802_11) {
            // Non-IP capture: the whole record is one application message.
            datagram d;
            d.ts_sec = p.ts_sec;
            d.ts_usec = p.ts_usec;
            d.payload.assign(frame.begin(), frame.end());
            out.push_back(std::move(d));
            continue;
        }

        byte_view ip_bytes;
        if (cap.link == linktype::ethernet) {
            ethernet_header eth;
            try {
                eth = parse_ethernet(frame);
            } catch (const parse_error& e) {
                quarantine(index, e.what());  // runt frame
                continue;
            }
            if (eth.ethertype != 0x0800) {
                sink.report({diag::category::decap, diag::severity::note, index, 0,
                             message("skipped non-IPv4 ethertype 0x", std::hex,
                                     eth.ethertype)});
                continue;
            }
            ip_bytes = frame.subspan(ethernet_header::size);
        } else {
            ip_bytes = frame;  // raw_ip
        }

        ipv4_header ip;
        try {
            ip = parse_ipv4(ip_bytes, options.verify_checksums);
        } catch (const parse_error& e) {
            quarantine(index, e.what());  // malformed or failed checksum
            continue;
        }
        const byte_view ip_payload =
            ip_bytes.subspan(ip.header_length, ip.total_length - ip.header_length);

        if (ip.protocol == static_cast<std::uint8_t>(transport::udp)) {
            udp_header udp;
            try {
                udp = parse_udp(ip_payload);
            } catch (const parse_error& e) {
                quarantine(index, e.what());
                continue;
            }
            datagram d;
            d.flow = {ip.src, ip.dst, udp.src_port, udp.dst_port, transport::udp};
            d.ts_sec = p.ts_sec;
            d.ts_usec = p.ts_usec;
            const byte_view body = ip_payload.subspan(udp_header::size, udp.length - udp_header::size);
            d.payload.assign(body.begin(), body.end());
            out.push_back(std::move(d));
        } else if (ip.protocol == static_cast<std::uint8_t>(transport::tcp)) {
            tcp_header tcp;
            try {
                tcp = parse_tcp(ip_payload);
            } catch (const parse_error& e) {
                quarantine(index, e.what());
                continue;
            }
            const byte_view body = ip_payload.subspan(tcp.data_offset);
            if (body.empty()) {
                continue;  // pure ACK / handshake
            }
            const flow_key flow{ip.src, ip.dst, tcp.src_port, tcp.dst_port, transport::tcp};
            for (byte_vector& msg : reassembler.feed(flow, tcp.seq, body, options.tcp_framer)) {
                datagram d;
                d.flow = flow;
                d.ts_sec = p.ts_sec;
                d.ts_usec = p.ts_usec;
                d.payload = std::move(msg);
                out.push_back(std::move(d));
            }
        } else {
            sink.report({diag::category::decap, diag::severity::note, index, 0,
                         message("skipped unsupported IP protocol ",
                                 static_cast<int>(ip.protocol))});
        }
    }
    if (sp.enabled()) {
        sp.count("datagrams", out.size());
        obs::counter_add("pcap.datagrams_total", static_cast<double>(out.size()));
    }
    return out;
}

std::vector<datagram> extract_datagrams(const capture& cap, const extract_options& options) {
    diag::error_sink discard;
    return extract_datagrams(cap, options, discard);
}

}  // namespace ftc::pcap
