/// \file pcap.hpp
/// Reader/writer for the classic libpcap capture file format.
///
/// The evaluation traces travel through real capture files: the protocol
/// generators write pcap files, and the analysis pipeline reads them back,
/// exercising the same ingestion path an analyst would use with recorded
/// traffic. Both file byte orders (magic 0xa1b2c3d4 / 0xd4c3b2a1) and
/// microsecond as well as nanosecond (0xa1b23c4d) timestamp variants are
/// supported for reading — nanosecond timestamps are downscaled to
/// microseconds so packet::ts_usec always carries microseconds. Writing
/// always uses native big-endian microsecond format for determinism.
///
/// Malformed-input handling follows the sink's policy (util/diag.hpp):
/// with a strict sink (and in the legacy overloads) the first bad record
/// throws ftc::parse_error; with a lenient sink bad records are
/// quarantined — counted, reported, and skipped with a resynchronization
/// scan for the next plausible record header. Global-header errors (bad
/// magic, unsupported version, short file) always throw: a file that is
/// not a pcap at all must not silently parse as an empty capture.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "util/byteio.hpp"
#include "util/diag.hpp"

namespace ftc::pcap {

/// Subset of IANA linktype registry values used by ftclust.
enum class linktype : std::uint32_t {
    ethernet = 1,    ///< LINKTYPE_ETHERNET
    raw_ip = 101,    ///< LINKTYPE_RAW (starts with the IPv4/IPv6 header)
    ieee802_11 = 105,///< LINKTYPE_IEEE802_11
    user0 = 147,     ///< LINKTYPE_USER0: ftclust uses it for non-IP payloads
};

/// One captured packet.
struct packet {
    std::uint32_t ts_sec = 0;   ///< seconds since epoch
    std::uint32_t ts_usec = 0;  ///< microseconds (ns files are downscaled)
    byte_vector data;           ///< captured bytes (we never truncate)
};

/// An in-memory capture: a link type plus packet records.
struct capture {
    linktype link = linktype::ethernet;
    std::uint32_t snaplen = 262144;
    std::vector<packet> packets;
};

/// Serialize a capture into pcap file bytes (big-endian, microsecond magic).
byte_vector to_pcap_bytes(const capture& cap);

/// Parse pcap file bytes. Throws ftc::parse_error on malformed input
/// (bad magic, truncated header or record).
capture from_pcap_bytes(byte_view bytes);

/// Parse pcap file bytes under \p sink's policy: strict throws like the
/// overload above, lenient quarantines malformed records into \p sink and
/// returns the surviving packets.
capture from_pcap_bytes(byte_view bytes, diag::error_sink& sink);

/// Write a capture to disk. Throws ftc::error on I/O failure.
void write_file(const std::filesystem::path& path, const capture& cap);

/// Read a capture from disk. Throws ftc::error / ftc::parse_error.
capture read_file(const std::filesystem::path& path);

/// Read a capture from disk under \p sink's policy (see from_pcap_bytes).
capture read_file(const std::filesystem::path& path, diag::error_sink& sink);

}  // namespace ftc::pcap
