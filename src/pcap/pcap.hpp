/// \file pcap.hpp
/// Reader/writer for the classic libpcap capture file format.
///
/// The evaluation traces travel through real capture files: the protocol
/// generators write pcap files, and the analysis pipeline reads them back,
/// exercising the same ingestion path an analyst would use with recorded
/// traffic. Both file byte orders (magic 0xa1b2c3d4 / 0xd4c3b2a1) and
/// microsecond as well as nanosecond (0xa1b23c4d) timestamp variants are
/// supported for reading; writing always uses native big-endian microsecond
/// format for determinism.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "util/byteio.hpp"

namespace ftc::pcap {

/// Subset of IANA linktype registry values used by ftclust.
enum class linktype : std::uint32_t {
    ethernet = 1,    ///< LINKTYPE_ETHERNET
    raw_ip = 101,    ///< LINKTYPE_RAW (starts with the IPv4/IPv6 header)
    ieee802_11 = 105,///< LINKTYPE_IEEE802_11
    user0 = 147,     ///< LINKTYPE_USER0: ftclust uses it for non-IP payloads
};

/// One captured packet.
struct packet {
    std::uint32_t ts_sec = 0;   ///< seconds since epoch
    std::uint32_t ts_usec = 0;  ///< microseconds (or ns for ns-format files)
    byte_vector data;           ///< captured bytes (we never truncate)
};

/// An in-memory capture: a link type plus packet records.
struct capture {
    linktype link = linktype::ethernet;
    std::uint32_t snaplen = 262144;
    std::vector<packet> packets;
};

/// Serialize a capture into pcap file bytes (big-endian, microsecond magic).
byte_vector to_pcap_bytes(const capture& cap);

/// Parse pcap file bytes. Throws ftc::parse_error on malformed input
/// (bad magic, truncated header or record).
capture from_pcap_bytes(byte_view bytes);

/// Write a capture to disk. Throws ftc::error on I/O failure.
void write_file(const std::filesystem::path& path, const capture& cap);

/// Read a capture from disk. Throws ftc::error / ftc::parse_error.
capture read_file(const std::filesystem::path& path);

}  // namespace ftc::pcap
