#include "segmentation/segment.hpp"

#include "obs/obs.hpp"
#include "obs/progress.hpp"
#include "segmentation/csp.hpp"
#include "segmentation/nemesys.hpp"
#include "segmentation/netzob.hpp"
#include "util/check.hpp"

namespace ftc::segmentation {

byte_view segment_bytes(const std::vector<byte_vector>& messages, const segment& seg) {
    expects(seg.message_index < messages.size(), "segment_bytes: message index out of range");
    const byte_vector& msg = messages[seg.message_index];
    expects(seg.offset + seg.length <= msg.size(), "segment_bytes: segment exceeds message");
    return byte_view{msg}.subspan(seg.offset, seg.length);
}

void validate_segmentation(const std::vector<byte_vector>& messages,
                           const message_segments& segs) {
    ensures(messages.size() == segs.size(),
            message("segmentation covers ", segs.size(), " of ", messages.size(), " messages"));
    for (std::size_t m = 0; m < messages.size(); ++m) {
        std::size_t cursor = 0;
        for (const segment& s : segs[m]) {
            ensures(s.message_index == m, "segment has wrong message index");
            ensures(s.length > 0, "segment has zero length");
            ensures(s.offset == cursor,
                    message("message ", m, ": segment at ", s.offset, ", expected ", cursor));
            cursor += s.length;
        }
        ensures(cursor == messages[m].size(),
                message("message ", m, ": segments cover ", cursor, " of ", messages[m].size(),
                        " bytes"));
    }
}

message_segments segments_from_annotations(const protocols::trace& input) {
    message_segments out;
    out.reserve(input.messages.size());
    for (std::size_t m = 0; m < input.messages.size(); ++m) {
        std::vector<segment> segs;
        segs.reserve(input.messages[m].fields.size());
        for (const protocols::field_annotation& f : input.messages[m].fields) {
            segs.push_back(segment{m, f.offset, f.length});
        }
        out.push_back(std::move(segs));
    }
    return out;
}

std::vector<byte_vector> message_bytes(const protocols::trace& input) {
    std::vector<byte_vector> out;
    out.reserve(input.messages.size());
    for (const protocols::annotated_message& msg : input.messages) {
        out.push_back(msg.bytes);
    }
    return out;
}

lenient_segmentation segment_lenient(const segmenter& seg,
                                     const std::vector<byte_vector>& messages,
                                     const deadline& dl, diag::error_sink& sink) {
    obs::span sp("segmentation");
    sp.count("messages", messages.size());
    lenient_segmentation out;
    out.messages.reserve(messages.size());
    out.surviving.reserve(messages.size());
    for (std::size_t m = 0; m < messages.size(); ++m) {
        // Empty payloads carry nothing to segment; quarantining them is a
        // lenient-mode nicety — strict mode passes them through untouched
        // to keep the legacy behavior byte-identical.
        if (sink.lenient() && messages[m].empty()) {
            sink.report({diag::category::segmentation, diag::severity::error, m, 0,
                         message("message ", m, ": empty payload")});
            continue;
        }
        out.messages.push_back(messages[m]);
        out.surviving.push_back(m);
    }

    obs::progress_stage("segmentation", out.messages.size());
    try {
        out.segments = seg.run(out.messages, dl);
        // Batch segmenters report completion wholesale; the per-message
        // fallback below ticks message by message.
        obs::progress_add(out.messages.size());
        sp.count("surviving", out.messages.size());
        return out;
    } catch (const budget_exceeded_error&) {
        throw;
    } catch (const parse_error& e) {
        if (!sink.lenient()) {
            throw;
        }
        sink.report({diag::category::segmentation, diag::severity::warning, 0, 0,
                     message("batch segmentation failed (", e.what(),
                             "); retrying per message")});
    }

    // Per-message fallback: quarantine the individual offenders.
    lenient_segmentation retried;
    obs::progress_stage("segmentation.retry", out.messages.size());
    for (std::size_t i = 0; i < out.messages.size(); ++i) {
        obs::progress_add(1);
        const std::vector<byte_vector> single{out.messages[i]};
        try {
            message_segments segs = seg.run(single, dl);
            for (segment& s : segs.front()) {
                s.message_index = retried.messages.size();
            }
            retried.segments.push_back(std::move(segs.front()));
            retried.messages.push_back(std::move(out.messages[i]));
            retried.surviving.push_back(out.surviving[i]);
        } catch (const budget_exceeded_error&) {
            throw;
        } catch (const parse_error& e) {
            sink.report({diag::category::segmentation, diag::severity::error,
                         out.surviving[i], 0, e.what()});
        }
    }
    sp.count("surviving", retried.messages.size());
    return retried;
}

std::unique_ptr<segmenter> make_segmenter(std::string_view name) {
    if (name == "NEMESYS") {
        return std::make_unique<nemesys_segmenter>();
    }
    if (name == "CSP") {
        return std::make_unique<csp_segmenter>();
    }
    if (name == "Netzob") {
        return std::make_unique<netzob_segmenter>();
    }
    throw precondition_error(message("unknown segmenter: ", std::string{name}));
}

}  // namespace ftc::segmentation
