/// \file segment.hpp
/// Segment model: field candidates produced by message segmentation.
///
/// A *segment* (paper Sec. III-B) is a byte range of one message, produced
/// by a segmenter as a candidate for a true protocol field. Segments of one
/// message are contiguous and cover it completely.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "protocols/field.hpp"
#include "util/byteio.hpp"
#include "util/diag.hpp"
#include "util/stopwatch.hpp"

namespace ftc::segmentation {

/// A byte range within one message of a trace.
struct segment {
    std::size_t message_index = 0;
    std::size_t offset = 0;
    std::size_t length = 0;

    auto operator<=>(const segment&) const = default;
};

/// Segmentation of a whole trace: one segment list per message, in message
/// order. Invariant (checked by validate_segmentation): per message the
/// segments are sorted, contiguous and cover the message exactly.
using message_segments = std::vector<std::vector<segment>>;

/// View of a segment's bytes within its message.
byte_view segment_bytes(const std::vector<byte_vector>& messages, const segment& seg);

/// Throws ftc::error unless \p segs is a valid segmentation of \p messages.
void validate_segmentation(const std::vector<byte_vector>& messages,
                           const message_segments& segs);

/// Abstract message segmenter.
class segmenter {
public:
    virtual ~segmenter() = default;

    /// Display name ("NEMESYS", "CSP", "Netzob", "true fields").
    virtual std::string_view name() const = 0;

    /// Segment all messages. Implementations periodically poll \p dl and
    /// throw ftc::budget_exceeded_error when the budget is exhausted
    /// (reproducing the paper's "fails" entries).
    virtual message_segments run(const std::vector<byte_vector>& messages,
                                 const deadline& dl) const = 0;
};

/// Perfect segmentation from ground-truth annotations (the "Wireshark
/// dissector" path used for Table I).
message_segments segments_from_annotations(const protocols::trace& input);

/// Extract the raw message bytes of a trace (segmenter input).
std::vector<byte_vector> message_bytes(const protocols::trace& input);

/// Factory: "NEMESYS", "CSP" or "Netzob". Throws on unknown names.
std::unique_ptr<segmenter> make_segmenter(std::string_view name);

/// Result of segment_lenient: segmentation of the surviving messages plus
/// the mapping back to the caller's message indices.
struct lenient_segmentation {
    std::vector<byte_vector> messages;   ///< surviving messages, in order
    message_segments segments;           ///< segmentation of `messages`
    std::vector<std::size_t> surviving;  ///< original index of messages[i]
};

/// Segment \p messages with per-message quarantine under \p sink's policy.
///
/// Empty payloads are quarantined up front (category segmentation). The
/// segmenter then runs on the surviving batch; if it throws ftc::parse_error
/// under a lenient sink, it is re-run message by message and the individual
/// offenders are quarantined instead of aborting the batch. Under a strict
/// sink any segmenter parse_error propagates unchanged, matching the legacy
/// all-or-nothing behavior. ftc::budget_exceeded_error always propagates:
/// running out of budget is not a property of one malformed message.
lenient_segmentation segment_lenient(const segmenter& seg,
                                     const std::vector<byte_vector>& messages,
                                     const deadline& dl, diag::error_sink& sink);

}  // namespace ftc::segmentation
