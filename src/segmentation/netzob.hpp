/// \file netzob.hpp
/// Netzob-style alignment segmenter (after Bossert, Guihéry, Hiet —
/// AsiaCCS 2014: "Towards Automated Protocol Reverse Engineering Using
/// Semantic Information").
///
/// Netzob infers message formats by *sequence alignment*: a global multiple
/// alignment of all messages is built progressively along a UPGMA guide
/// tree computed from pairwise Needleman-Wunsch similarities; aligned
/// columns are then classified as static (conserved byte value) or dynamic,
/// and runs of equal classification become fields whose boundaries are
/// projected back onto each message.
///
/// The pairwise alignment stage is quadratic in both trace size and message
/// length — exactly the "exponential increase in runtime [for] large
/// messages" that makes Netzob fail on the larger DHCP and SMB traces in
/// the paper's Table II. Implementations poll the deadline and throw
/// ftc::budget_exceeded_error, which the benches report as "fails".
#pragma once

#include "segmentation/segment.hpp"

namespace ftc::segmentation {

/// Tunables of the alignment pipeline.
struct netzob_options {
    int match_score = 2;      ///< NW score for equal bytes
    int mismatch_score = -1;  ///< NW score for differing bytes
    int gap_score = -2;       ///< NW gap penalty
    /// Columns whose dominant value covers at least this fraction of
    /// non-gap rows count as static.
    double static_threshold = 1.0;
    /// Hard cap on profile width (defensive; alignment of related messages
    /// stays far below it).
    std::size_t max_profile_width = 8192;
};

/// Multiple-sequence-alignment segmenter.
class netzob_segmenter final : public segmenter {
public:
    netzob_segmenter() = default;
    explicit netzob_segmenter(netzob_options options) : options_(options) {}

    std::string_view name() const override { return "Netzob"; }

    message_segments run(const std::vector<byte_vector>& messages,
                         const deadline& dl) const override;

    /// Needleman-Wunsch similarity score of two byte strings — exposed for
    /// tests.
    int pairwise_score(byte_view a, byte_view b) const;

private:
    netzob_options options_;
};

}  // namespace ftc::segmentation
