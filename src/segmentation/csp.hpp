/// \file csp.hpp
/// CSP heuristic segmenter (Goo, Shim, Lee, Kim — IEEE Access 2019:
/// "Protocol Specification Extraction Based on Contiguous Sequential
/// Pattern Algorithm").
///
/// CSP performs frequency analysis of contiguous byte strings across the
/// whole trace: byte n-grams whose *message support* (fraction of messages
/// containing them) exceeds a threshold are protocol constants/keywords.
/// Placing the maximal frequent patterns greedily in each message marks
/// field boundaries at the pattern edges; uncovered gaps become segments.
/// Because support is counted across messages, CSP "is more dependent on
/// the variance in the trace [and] is best applied to large traces"
/// (paper Sec. IV-C) — with few messages, few patterns clear the threshold
/// and segmentation degenerates.
#pragma once

#include "segmentation/segment.hpp"

namespace ftc::segmentation {

/// Tunables of the CSP pattern mining.
struct csp_options {
    std::size_t min_pattern_length = 2;
    std::size_t max_pattern_length = 4;
    /// Minimum fraction of messages that must contain an n-gram.
    double min_support = 0.3;
};

/// Trace-global frequency-analysis segmenter.
class csp_segmenter final : public segmenter {
public:
    csp_segmenter() = default;
    explicit csp_segmenter(csp_options options) : options_(options) {}

    std::string_view name() const override { return "CSP"; }

    message_segments run(const std::vector<byte_vector>& messages,
                         const deadline& dl) const override;

    /// The mined frequent patterns (sorted, longest first) — exposed for
    /// tests.
    std::vector<byte_vector> mine_patterns(const std::vector<byte_vector>& messages,
                                           const deadline& dl) const;

private:
    csp_options options_;
};

}  // namespace ftc::segmentation
