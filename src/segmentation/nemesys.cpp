#include "segmentation/nemesys.hpp"

#include <algorithm>
#include <bit>
#include <optional>

#include "mathx/smoothing.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/hex.hpp"

namespace ftc::segmentation {

namespace {

/// Merge adjacent segments whose union still reads as a character sequence
/// — heuristic segmenters shred text fields, and the WOOT'18 refinement
/// glues them back together. "Char-like" tolerates a minority of embedded
/// structural bytes (e.g. DNS label length prefixes) but no null bytes.
std::vector<std::size_t> merge_char_runs(byte_view msg, std::vector<std::size_t> bounds,
                                         std::size_t min_run) {
    if (bounds.empty()) {
        return bounds;
    }
    auto charlike = [&](std::size_t begin, std::size_t end) {
        if (end <= begin || end - begin < min_run) {
            return false;
        }
        std::size_t printable = 0;
        for (std::size_t i = begin; i < end; ++i) {
            if (msg[i] == 0x00) {
                return false;
            }
            printable += is_printable_ascii(msg[i]) ? 1 : 0;
        }
        return 3 * printable >= 2 * (end - begin);  // at least two thirds text
    };
    // Iterate to a fixpoint: dropping one boundary can enable the next
    // merge (long names split into many fragments).
    bool changed = true;
    while (changed) {
        changed = false;
        std::vector<std::size_t> kept;
        std::size_t prev_start = 0;
        for (std::size_t i = 0; i < bounds.size(); ++i) {
            const std::size_t b = bounds[i];
            const std::size_t next_end = i + 1 < bounds.size() ? bounds[i + 1] : msg.size();
            // Merge when both sides are char-like and so is their union.
            if (charlike(prev_start, b) && charlike(b, next_end) &&
                charlike(prev_start, next_end)) {
                changed = true;
                continue;  // drop boundary inside the char run
            }
            kept.push_back(b);
            prev_start = b;
        }
        bounds = std::move(kept);
    }
    return bounds;
}

/// Isolate maximal runs of >= min_run zero bytes into their own segments,
/// approximating padding detection.
std::vector<std::size_t> isolate_null_runs(byte_view msg, std::vector<std::size_t> bounds,
                                           std::size_t min_run) {
    std::vector<std::size_t> extra;
    std::size_t i = 0;
    while (i < msg.size()) {
        if (msg[i] != 0) {
            ++i;
            continue;
        }
        std::size_t j = i;
        while (j < msg.size() && msg[j] == 0) {
            ++j;
        }
        if (j - i >= min_run) {
            if (i != 0) {
                extra.push_back(i);
            }
            if (j != msg.size()) {
                extra.push_back(j);
            }
        }
        i = j;
    }
    bounds.insert(bounds.end(), extra.begin(), extra.end());
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    return bounds;
}

}  // namespace

std::vector<double> nemesys_segmenter::bit_congruence(byte_view msg) {
    std::vector<double> bc;
    if (msg.size() < 2) {
        return bc;
    }
    bc.reserve(msg.size() - 1);
    for (std::size_t i = 1; i < msg.size(); ++i) {
        const int differing = std::popcount(static_cast<unsigned>(msg[i - 1] ^ msg[i]));
        bc.push_back(static_cast<double>(8 - differing) / 8.0);
    }
    return bc;
}

std::vector<std::size_t> nemesys_segmenter::boundaries(byte_view msg) const {
    std::vector<std::size_t> bounds;
    if (msg.size() < 3) {
        return bounds;
    }
    // bc[i] describes the transition between bytes i and i+1.
    const std::vector<double> bc = bit_congruence(msg);
    // delta[i] = bc[i+1] - bc[i]; describes the change at byte i+1.
    std::vector<double> delta(bc.size() - 1);
    for (std::size_t i = 0; i + 1 < bc.size(); ++i) {
        delta[i] = bc[i + 1] - bc[i];
    }
    const std::vector<double> smooth = mathx::gaussian_filter1d(delta, options_.smoothing_sigma);

    // Local extrema of the smoothed delta.
    auto is_min = [&](std::size_t i) {
        return smooth[i] <= smooth[i - 1] && smooth[i] < smooth[i + 1];
    };
    auto is_max = [&](std::size_t i) {
        return smooth[i] >= smooth[i - 1] && smooth[i] > smooth[i + 1];
    };

    constexpr std::size_t kNoMin = static_cast<std::size_t>(-1);
    std::size_t pending_min = kNoMin;
    if (smooth.size() >= 2 && smooth[0] < smooth[1]) {
        pending_min = 0;  // leading slope counts as a minimum
    }
    for (std::size_t i = 1; i + 1 < smooth.size(); ++i) {
        if (is_min(i)) {
            pending_min = i;
        } else if (is_max(i) && pending_min != kNoMin) {
            // Steepest rise of the *raw* delta between min and max gives the
            // most probable boundary position.
            std::size_t best = pending_min + 1;
            double best_rise = -1.0;
            for (std::size_t k = pending_min + 1; k <= i; ++k) {
                const double rise = delta[k] - delta[k - 1];
                if (rise > best_rise) {
                    best_rise = rise;
                    best = k;
                }
            }
            // delta[k] describes the change at byte k+1 -> boundary offset.
            const std::size_t boundary = best + 1;
            if (boundary > 0 && boundary < msg.size()) {
                bounds.push_back(boundary);
            }
            pending_min = kNoMin;
        }
    }

    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    bounds = merge_char_runs(msg, std::move(bounds), options_.char_merge_min_run);
    bounds = isolate_null_runs(msg, std::move(bounds), options_.null_run_min);
    return bounds;
}

message_segments nemesys_segmenter::run(const std::vector<byte_vector>& messages,
                                        const deadline& dl) const {
    obs::span sp("segmentation.nemesys");
    sp.count("messages", messages.size());
    message_segments out;
    out.reserve(messages.size());
    for (std::size_t m = 0; m < messages.size(); ++m) {
        if (m % 64 == 0) {
            dl.check("NEMESYS segmentation");
        }
        const byte_view msg{messages[m]};
        std::vector<std::size_t> bounds = boundaries(msg);
        std::vector<segment> segs;
        std::size_t start = 0;
        for (std::size_t b : bounds) {
            segs.push_back(segment{m, start, b - start});
            start = b;
        }
        if (msg.size() > start) {
            segs.push_back(segment{m, start, msg.size() - start});
        }
        if (msg.empty()) {
            segs.clear();
        }
        out.push_back(std::move(segs));
    }
    validate_segmentation(messages, out);
    return out;
}

}  // namespace ftc::segmentation
