#include "segmentation/csp.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace ftc::segmentation {

namespace {

/// Key an n-gram as a std::string for hashing.
std::string gram_key(byte_view msg, std::size_t offset, std::size_t length) {
    return std::string(reinterpret_cast<const char*>(msg.data() + offset), length);
}

}  // namespace

std::vector<byte_vector> csp_segmenter::mine_patterns(const std::vector<byte_vector>& messages,
                                                      const deadline& dl) const {
    expects(options_.min_pattern_length >= 2, "csp: patterns must be at least 2 bytes");
    expects(options_.max_pattern_length >= options_.min_pattern_length,
            "csp: max pattern length below min");

    // Message support per n-gram: count each n-gram once per message.
    std::unordered_map<std::string, std::uint32_t> support;
    std::unordered_map<std::string, std::uint32_t> last_message;
    for (std::size_t m = 0; m < messages.size(); ++m) {
        if (m % 16 == 0) {
            dl.check("CSP pattern mining");
        }
        const byte_view msg{messages[m]};
        for (std::size_t len = options_.min_pattern_length; len <= options_.max_pattern_length;
             ++len) {
            if (msg.size() < len) {
                continue;
            }
            for (std::size_t off = 0; off + len <= msg.size(); ++off) {
                std::string key = gram_key(msg, off, len);
                auto [it, inserted] = last_message.try_emplace(std::move(key), 0);
                if (inserted || it->second != m + 1) {
                    it->second = static_cast<std::uint32_t>(m + 1);
                    ++support[it->first];
                }
            }
        }
    }

    const auto threshold = static_cast<std::uint32_t>(
        std::max<double>(2.0, options_.min_support * static_cast<double>(messages.size())));

    // Keep frequent patterns; prefer maximal ones by dropping any frequent
    // pattern that is a substring of a longer frequent pattern.
    std::vector<std::string> frequent;
    for (const auto& [gram, count] : support) {
        if (count >= threshold) {
            frequent.push_back(gram);
        }
    }
    std::sort(frequent.begin(), frequent.end(), [](const std::string& a, const std::string& b) {
        return a.size() != b.size() ? a.size() > b.size() : a < b;
    });
    std::vector<std::string> maximal;
    for (const std::string& gram : frequent) {
        bool contained = false;
        for (const std::string& longer : maximal) {
            if (longer.size() > gram.size() && longer.find(gram) != std::string::npos) {
                contained = true;
                break;
            }
        }
        if (!contained) {
            maximal.push_back(gram);
        }
    }

    std::vector<byte_vector> out;
    out.reserve(maximal.size());
    for (const std::string& gram : maximal) {
        out.emplace_back(gram.begin(), gram.end());
    }
    return out;
}

message_segments csp_segmenter::run(const std::vector<byte_vector>& messages,
                                    const deadline& dl) const {
    obs::span sp("segmentation.csp");
    sp.count("messages", messages.size());
    const std::vector<byte_vector> patterns = mine_patterns(messages, dl);

    // Index patterns by their first two bytes for fast lookup.
    std::unordered_map<std::uint32_t, std::vector<const byte_vector*>> by_prefix;
    for (const byte_vector& p : patterns) {
        const std::uint32_t prefix = (static_cast<std::uint32_t>(p[0]) << 8) | p[1];
        by_prefix[prefix].push_back(&p);
    }
    for (auto& entry : by_prefix) {
        std::vector<const byte_vector*>& list = entry.second;
        std::sort(list.begin(), list.end(),
                  [](const byte_vector* a, const byte_vector* b) { return a->size() > b->size(); });
    }

    message_segments out;
    out.reserve(messages.size());
    for (std::size_t m = 0; m < messages.size(); ++m) {
        if (m % 64 == 0) {
            dl.check("CSP placement");
        }
        const byte_view msg{messages[m]};
        // Greedy longest-match placement of mined patterns.
        std::vector<std::size_t> bounds;
        std::size_t pos = 0;
        while (pos + 1 < msg.size()) {
            const std::uint32_t prefix =
                (static_cast<std::uint32_t>(msg[pos]) << 8) | msg[pos + 1];
            const auto it = by_prefix.find(prefix);
            const byte_vector* hit = nullptr;
            if (it != by_prefix.end()) {
                for (const byte_vector* p : it->second) {
                    if (p->size() <= msg.size() - pos &&
                        std::equal(p->begin(), p->end(), msg.begin() + static_cast<long>(pos))) {
                        hit = p;
                        break;
                    }
                }
            }
            if (hit != nullptr) {
                if (pos != 0) {
                    bounds.push_back(pos);
                }
                if (pos + hit->size() != msg.size()) {
                    bounds.push_back(pos + hit->size());
                }
                pos += hit->size();
            } else {
                ++pos;
            }
        }
        std::sort(bounds.begin(), bounds.end());
        bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

        std::vector<segment> segs;
        std::size_t start = 0;
        for (std::size_t b : bounds) {
            segs.push_back(segment{m, start, b - start});
            start = b;
        }
        if (msg.size() > start) {
            segs.push_back(segment{m, start, msg.size() - start});
        }
        out.push_back(std::move(segs));
    }
    validate_segmentation(messages, out);
    return out;
}

}  // namespace ftc::segmentation
