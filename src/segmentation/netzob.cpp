#include "segmentation/netzob.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace ftc::segmentation {

namespace {

/// One aligned message: byte values, or kGap for an alignment gap.
constexpr std::int16_t kGap = -1;
using aligned_row = std::vector<std::int16_t>;

/// A profile: a set of messages aligned to a common column space.
struct profile {
    std::vector<std::size_t> message_indices;  ///< original message ids per row
    std::vector<aligned_row> rows;             ///< all rows have equal width

    std::size_t width() const { return rows.empty() ? 0 : rows.front().size(); }
};

/// Column summary for profile-profile alignment: the dominant value and its
/// conservation among non-gap cells.
struct column_summary {
    std::int16_t consensus = kGap;
    double conservation = 0.0;  ///< dominant count / non-gap count
    double gap_fraction = 1.0;
};

std::vector<column_summary> summarize(const profile& p) {
    std::vector<column_summary> out(p.width());
    for (std::size_t c = 0; c < p.width(); ++c) {
        std::array<std::uint32_t, 256> counts{};
        std::uint32_t non_gap = 0;
        for (const aligned_row& row : p.rows) {
            if (row[c] != kGap) {
                ++counts[static_cast<std::size_t>(row[c])];
                ++non_gap;
            }
        }
        column_summary& s = out[c];
        if (non_gap == 0) {
            continue;
        }
        std::uint32_t best = 0;
        for (std::size_t v = 0; v < counts.size(); ++v) {
            if (counts[v] > best) {
                best = counts[v];
                s.consensus = static_cast<std::int16_t>(v);
            }
        }
        s.conservation = static_cast<double>(best) / static_cast<double>(non_gap);
        s.gap_fraction =
            1.0 - static_cast<double>(non_gap) / static_cast<double>(p.rows.size());
    }
    return out;
}

/// Alignment op emitted by the profile-profile traceback.
enum class align_op : std::uint8_t { both, gap_a, gap_b };

}  // namespace

int netzob_segmenter::pairwise_score(byte_view a, byte_view b) const {
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    std::vector<int> prev(m + 1);
    std::vector<int> curr(m + 1);
    for (std::size_t j = 0; j <= m; ++j) {
        prev[j] = static_cast<int>(j) * options_.gap_score;
    }
    for (std::size_t i = 1; i <= n; ++i) {
        curr[0] = static_cast<int>(i) * options_.gap_score;
        const std::uint8_t ai = a[i - 1];
        for (std::size_t j = 1; j <= m; ++j) {
            const int diag =
                prev[j - 1] + (ai == b[j - 1] ? options_.match_score : options_.mismatch_score);
            const int up = prev[j] + options_.gap_score;
            const int left = curr[j - 1] + options_.gap_score;
            curr[j] = std::max(diag, std::max(up, left));
        }
        std::swap(prev, curr);
    }
    return prev[m];
}

namespace {

/// Profile-profile Needleman-Wunsch over column summaries; returns the op
/// sequence from start to end.
std::vector<align_op> align_profiles(const std::vector<column_summary>& a,
                                     const std::vector<column_summary>& b,
                                     const netzob_options& opt, const deadline& dl) {
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    auto score_cols = [&](const column_summary& ca, const column_summary& cb) {
        if (ca.consensus == kGap || cb.consensus == kGap) {
            return 0.0;  // all-gap column aligns neutrally
        }
        if (ca.consensus == cb.consensus) {
            return static_cast<double>(opt.match_score) *
                   std::min(ca.conservation, cb.conservation);
        }
        return static_cast<double>(opt.mismatch_score);
    };

    // Full DP with traceback matrix (byte-sized ops).
    std::vector<double> prev(m + 1);
    std::vector<double> curr(m + 1);
    std::vector<std::uint8_t> back((n + 1) * (m + 1));
    const double gap = opt.gap_score;
    for (std::size_t j = 0; j <= m; ++j) {
        prev[j] = static_cast<double>(j) * gap;
        back[j] = 2;  // gap_a (consume b)
    }
    for (std::size_t i = 1; i <= n; ++i) {
        if (i % 128 == 0) {
            dl.check("Netzob profile alignment");
        }
        curr[0] = static_cast<double>(i) * gap;
        back[i * (m + 1)] = 1;  // gap_b (consume a)
        for (std::size_t j = 1; j <= m; ++j) {
            const double diag = prev[j - 1] + score_cols(a[i - 1], b[j - 1]);
            const double up = prev[j] + gap;
            const double left = curr[j - 1] + gap;
            double best = diag;
            std::uint8_t op = 0;
            if (up > best) {
                best = up;
                op = 1;
            }
            if (left > best) {
                best = left;
                op = 2;
            }
            curr[j] = best;
            back[i * (m + 1) + j] = op;
        }
        std::swap(prev, curr);
    }

    std::vector<align_op> ops;
    std::size_t i = n;
    std::size_t j = m;
    while (i > 0 || j > 0) {
        const std::uint8_t op = back[i * (m + 1) + j];
        if (i > 0 && j > 0 && op == 0) {
            ops.push_back(align_op::both);
            --i;
            --j;
        } else if (i > 0 && (op == 1 || j == 0)) {
            ops.push_back(align_op::gap_b);
            --i;
        } else {
            ops.push_back(align_op::gap_a);
            --j;
        }
    }
    std::reverse(ops.begin(), ops.end());
    return ops;
}

/// Merge two profiles along an op sequence.
profile merge_profiles(const profile& a, const profile& b, const std::vector<align_op>& ops,
                       std::size_t max_width) {
    profile out;
    out.message_indices = a.message_indices;
    out.message_indices.insert(out.message_indices.end(), b.message_indices.begin(),
                               b.message_indices.end());
    const std::size_t width = ops.size();
    ensures(width <= max_width, "netzob: profile width exceeds cap");
    out.rows.reserve(a.rows.size() + b.rows.size());
    for (const aligned_row& row : a.rows) {
        aligned_row expanded;
        expanded.reserve(width);
        std::size_t c = 0;
        for (const align_op op : ops) {
            if (op == align_op::gap_a) {
                expanded.push_back(kGap);
            } else {
                expanded.push_back(row[c]);
                ++c;
            }
        }
        out.rows.push_back(std::move(expanded));
    }
    for (const aligned_row& row : b.rows) {
        aligned_row expanded;
        expanded.reserve(width);
        std::size_t c = 0;
        for (const align_op op : ops) {
            if (op == align_op::gap_b) {
                expanded.push_back(kGap);
            } else {
                expanded.push_back(row[c]);
                ++c;
            }
        }
        out.rows.push_back(std::move(expanded));
    }
    return out;
}

}  // namespace

message_segments netzob_segmenter::run(const std::vector<byte_vector>& messages,
                                       const deadline& dl) const {
    obs::span sp("segmentation.netzob");
    sp.count("messages", messages.size());
    const std::size_t n = messages.size();
    expects(n > 0, "netzob: empty trace");

    if (n == 1) {
        message_segments single(1);
        if (!messages[0].empty()) {
            single[0].push_back(segment{0, 0, messages[0].size()});
        }
        return single;
    }

    // Stage 1: pairwise NW similarity -> normalized distance matrix.
    // This is the quadratic stage that blows up on long messages.
    std::vector<double> dist(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        dl.check("Netzob pairwise alignment");
        const byte_view a{messages[i]};
        for (std::size_t j = i + 1; j < n; ++j) {
            const byte_view b{messages[j]};
            const int score = pairwise_score(a, b);
            const double best = static_cast<double>(options_.match_score) *
                                static_cast<double>(std::max(a.size(), b.size()));
            const double d = best > 0.0 ? 1.0 - static_cast<double>(score) / best : 0.0;
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }

    // Stage 2: UPGMA guide tree, executed as an agglomeration order over
    // active profiles (average linkage).
    std::vector<profile> profiles(n);
    std::vector<std::size_t> cluster_size(n, 1);
    std::vector<bool> active(n, true);
    for (std::size_t i = 0; i < n; ++i) {
        profiles[i].message_indices = {i};
        aligned_row row(messages[i].size());
        for (std::size_t c = 0; c < messages[i].size(); ++c) {
            row[c] = static_cast<std::int16_t>(messages[i][c]);
        }
        profiles[i].rows.push_back(std::move(row));
    }

    for (std::size_t merges = 0; merges + 1 < n; ++merges) {
        dl.check("Netzob progressive alignment");
        // Find the closest active pair.
        double best = std::numeric_limits<double>::max();
        std::size_t bi = 0;
        std::size_t bj = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!active[i]) {
                continue;
            }
            for (std::size_t j = i + 1; j < n; ++j) {
                if (!active[j]) {
                    continue;
                }
                if (dist[i * n + j] < best) {
                    best = dist[i * n + j];
                    bi = i;
                    bj = j;
                }
            }
        }
        // Align and merge bj into bi.
        const std::vector<column_summary> sa = summarize(profiles[bi]);
        const std::vector<column_summary> sb = summarize(profiles[bj]);
        const std::vector<align_op> ops = align_profiles(sa, sb, options_, dl);
        profiles[bi] = merge_profiles(profiles[bi], profiles[bj], ops,
                                      options_.max_profile_width);
        profiles[bj] = profile{};
        active[bj] = false;
        // Average-linkage distance update.
        const double wi = static_cast<double>(cluster_size[bi]);
        const double wj = static_cast<double>(cluster_size[bj]);
        for (std::size_t k = 0; k < n; ++k) {
            if (!active[k] || k == bi) {
                continue;
            }
            const double dik = dist[bi * n + k];
            const double djk = dist[bj * n + k];
            const double merged = (wi * dik + wj * djk) / (wi + wj);
            dist[bi * n + k] = merged;
            dist[k * n + bi] = merged;
        }
        cluster_size[bi] += cluster_size[bj];
    }

    // The single remaining active profile holds the full alignment.
    std::size_t root = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (active[i]) {
            root = i;
            break;
        }
    }
    const profile& full = profiles[root];

    // Stage 3: column classification -> field boundaries in column space.
    const std::vector<column_summary> cols = summarize(full);
    std::vector<bool> is_static(cols.size());
    for (std::size_t c = 0; c < cols.size(); ++c) {
        is_static[c] = cols[c].consensus != kGap &&
                       cols[c].conservation >= options_.static_threshold &&
                       cols[c].gap_fraction == 0.0;
    }
    std::vector<std::size_t> column_bounds;  // boundary *before* column c
    for (std::size_t c = 1; c < cols.size(); ++c) {
        if (is_static[c] != is_static[c - 1]) {
            column_bounds.push_back(c);
        }
    }

    // Stage 4: project boundaries back onto each message.
    message_segments out(n);
    for (std::size_t r = 0; r < full.rows.size(); ++r) {
        const std::size_t msg_idx = full.message_indices[r];
        const aligned_row& row = full.rows[r];
        const std::size_t msg_len = messages[msg_idx].size();
        std::vector<std::size_t> bounds;
        std::size_t offset = 0;
        std::size_t bound_cursor = 0;
        for (std::size_t c = 0; c < row.size(); ++c) {
            while (bound_cursor < column_bounds.size() && column_bounds[bound_cursor] == c) {
                if (offset > 0 && offset < msg_len) {
                    bounds.push_back(offset);
                }
                ++bound_cursor;
            }
            if (row[c] != kGap) {
                ++offset;
            }
        }
        std::vector<segment>& segs = out[msg_idx];
        std::size_t start = 0;
        for (std::size_t b : bounds) {
            if (b > start) {
                segs.push_back(segment{msg_idx, start, b - start});
                start = b;
            }
        }
        if (msg_len > start) {
            segs.push_back(segment{msg_idx, start, msg_len - start});
        }
    }
    validate_segmentation(messages, out);
    return out;
}

}  // namespace ftc::segmentation
