/// \file nemesys.hpp
/// NEMESYS heuristic segmenter (Kleber, Kopp, Kargl — WOOT 2018).
///
/// NEMESYS infers field boundaries from the *intrinsic structure of a
/// single message*: the bit congruence between consecutive bytes drops
/// where a new field begins. The pipeline is
///   bit congruence -> delta -> Gaussian smoothing (sigma 0.6) ->
///   boundary at the steepest raw-delta rise between each local minimum
///   and the following local maximum of the smoothed delta,
/// followed by refinements that merge printable-character runs and isolate
/// long null-padding runs. The paper selects NEMESYS for "large and complex
/// messages ... a mixture of number values and chars" (Sec. IV-C).
#pragma once

#include "segmentation/segment.hpp"

namespace ftc::segmentation {

/// Tunables of the NEMESYS heuristic (defaults follow the WOOT'18 paper).
struct nemesys_options {
    double smoothing_sigma = 0.6;  ///< Gaussian sigma on the delta sequence
    std::size_t char_merge_min_run = 2;   ///< min printable run to merge
    std::size_t null_run_min = 3;         ///< min null run split into padding
};

/// Single-message statistical segmenter.
class nemesys_segmenter final : public segmenter {
public:
    nemesys_segmenter() = default;
    explicit nemesys_segmenter(nemesys_options options) : options_(options) {}

    std::string_view name() const override { return "NEMESYS"; }

    message_segments run(const std::vector<byte_vector>& messages,
                         const deadline& dl) const override;

    /// Segment boundaries (offsets, excluding 0 and size) for one message —
    /// exposed for tests and the Fig. 3 boundary-error bench.
    std::vector<std::size_t> boundaries(byte_view msg) const;

    /// Bit congruence sequence of a message: bc[i] is the fraction of equal
    /// bits between bytes i and i+1 (size = len-1). Exposed for tests.
    static std::vector<double> bit_congruence(byte_view msg);

private:
    nemesys_options options_;
};

}  // namespace ftc::segmentation
