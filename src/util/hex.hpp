/// \file hex.hpp
/// Hex encoding/decoding and hexdump rendering for diagnostics and reports.
#pragma once

#include <string>
#include <string_view>

#include "util/byteio.hpp"

namespace ftc {

/// Lower-case hex string without separators, e.g. {0xd2,0x3d} -> "d23d".
std::string to_hex(byte_view data);

/// Parse a hex string (even length, case-insensitive); throws parse_error on
/// malformed input.
byte_vector from_hex(std::string_view hex);

/// Classic 16-bytes-per-line hexdump with offsets and printable-ASCII gutter.
std::string hexdump(byte_view data);

/// True if the byte is printable ASCII (0x20..0x7e).
constexpr bool is_printable_ascii(std::uint8_t b) { return b >= 0x20 && b <= 0x7e; }

}  // namespace ftc
