#include "util/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/check.hpp"

namespace ftc {

double mean(std::span<const double> values) {
    if (values.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (double v : values) {
        sum += v;
    }
    return sum / static_cast<double>(values.size());
}

double median(std::span<const double> values) {
    if (values.empty()) {
        return 0.0;
    }
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    const std::size_t mid = sorted.size() / 2;
    if (sorted.size() % 2 == 1) {
        return sorted[mid];
    }
    return 0.5 * (sorted[mid - 1] + sorted[mid]);
}

double stddev(std::span<const double> values) {
    if (values.size() < 2) {
        return 0.0;
    }
    const double m = mean(values);
    double sum_sq = 0.0;
    for (double v : values) {
        const double d = v - m;
        sum_sq += d * d;
    }
    return std::sqrt(sum_sq / static_cast<double>(values.size()));
}

double min_value(std::span<const double> values) {
    expects(!values.empty(), "min_value: empty input");
    return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
    expects(!values.empty(), "max_value: empty input");
    return *std::max_element(values.begin(), values.end());
}

double percent_rank(std::span<const double> values, double score) {
    if (values.empty()) {
        return 0.0;
    }
    std::size_t below = 0;
    std::size_t equal = 0;
    for (double v : values) {
        if (v < score) {
            ++below;
        } else if (v == score) {
            ++equal;
        }
    }
    const double n = static_cast<double>(values.size());
    return 100.0 * (static_cast<double>(below) + 0.5 * static_cast<double>(equal)) / n;
}

double byte_entropy(std::span<const std::uint8_t> data) {
    if (data.empty()) {
        return 0.0;
    }
    std::array<std::size_t, 256> counts{};
    for (std::uint8_t b : data) {
        ++counts[b];
    }
    const double n = static_cast<double>(data.size());
    double h = 0.0;
    for (std::size_t c : counts) {
        if (c == 0) {
            continue;
        }
        const double p = static_cast<double>(c) / n;
        h -= p * std::log2(p);
    }
    return h;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
    expects(xs.size() == ys.size(), "pearson: length mismatch");
    if (xs.size() < 2) {
        return 0.0;
    }
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0) {
        return 0.0;
    }
    return sxy / std::sqrt(sxx * syy);
}

}  // namespace ftc
