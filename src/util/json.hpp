/// \file json.hpp
/// Minimal JSON parser: the read side of the machine-readable artifacts
/// this project emits (BENCH_*.json, run manifests, telemetry NDJSON).
///
/// obs::json_writer has always produced those files; until now nothing in
/// the repo could read them back, so cross-run tooling (tools/bench_compare,
/// the telemetry schema tests) shelled out to python. This parser closes
/// the loop in-process: strict RFC 8259 subset — objects, arrays, strings
/// with escapes (incl. \uXXXX for BMP code points), numbers as double,
/// true/false/null — with one-line error messages carrying the byte offset.
///
/// Numbers are stored as double. Every integer this project writes fits a
/// double exactly (counters, byte totals < 2^53); a document needing more
/// is out of scope.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace ftc::util {

/// One parsed JSON value (tree-owning).
class json_value {
public:
    enum class kind { null, boolean, number, string, array, object };

    json_value() = default;  ///< null

    kind type() const { return kind_; }
    bool is_null() const { return kind_ == kind::null; }
    bool is_bool() const { return kind_ == kind::boolean; }
    bool is_number() const { return kind_ == kind::number; }
    bool is_string() const { return kind_ == kind::string; }
    bool is_array() const { return kind_ == kind::array; }
    bool is_object() const { return kind_ == kind::object; }

    /// Typed accessors; throw ftc::error on a kind mismatch so a schema
    /// drift in a BENCH file fails with a message, not UB.
    bool as_bool() const;
    double as_number() const;
    const std::string& as_string() const;
    const std::vector<json_value>& as_array() const;
    const std::map<std::string, json_value>& as_object() const;

    /// Object member lookup; throws when not an object or key missing.
    const json_value& at(std::string_view key) const;

    /// Object member lookup returning nullptr when absent (or not an
    /// object) — the tolerant path for optional schema fields.
    const json_value* find(std::string_view key) const;

    /// Convenience: member \p key as number/string/bool, or \p fallback
    /// when absent. Throws on a present-but-wrong-kind member.
    double number_or(std::string_view key, double fallback) const;
    std::string string_or(std::string_view key, std::string fallback) const;
    bool bool_or(std::string_view key, bool fallback) const;

private:
    friend json_value parse_json(std::string_view);
    friend class json_parser;

    kind kind_ = kind::null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<json_value> array_;
    std::map<std::string, json_value> object_;
};

/// Parse one JSON document (the whole input must be consumed apart from
/// trailing whitespace). Throws ftc::error with a byte offset on malformed
/// input.
json_value parse_json(std::string_view text);

}  // namespace ftc::util
