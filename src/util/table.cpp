#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace ftc {

text_table::text_table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    expects(!headers_.empty(), "text_table: need at least one column");
    aligns_.assign(headers_.size(), align::right);
}

void text_table::set_align(std::size_t index, align a) {
    expects(index < aligns_.size(), "text_table::set_align: column out of range");
    aligns_[index] = a;
}

void text_table::add_row(std::vector<std::string> cells) {
    expects(cells.size() == headers_.size(), "text_table::add_row: cell count mismatch");
    rows_.push_back(std::move(cells));
}

std::string text_table::render() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto pad = [](const std::string& text, std::size_t width, align a) {
        std::string out;
        const std::size_t fill = width - std::min(width, text.size());
        if (a == align::right) {
            out.append(fill, ' ');
            out += text;
        } else {
            out += text;
            out.append(fill, ' ');
        }
        return out;
    };

    std::string out;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        out += pad(headers_[c], widths[c], align::left);
        out += (c + 1 < headers_.size()) ? "  " : "";
    }
    out += '\n';
    std::size_t rule_width = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        rule_width += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    }
    out.append(rule_width, '-');
    out += '\n';
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += pad(row[c], widths[c], aligns_[c]);
            out += (c + 1 < row.size()) ? "  " : "";
        }
        out += '\n';
    }
    return out;
}

std::string format_fixed(double value, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return buf;
}

std::string format_percent(double fraction) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.0f%%", 100.0 * fraction);
    return buf;
}

}  // namespace ftc
