/// \file build_info.hpp
/// Build provenance shared by every artifact that names its producer: the
/// `ftclust version` subcommand, the run-manifest `version` field and the
/// BENCH_*.json `meta` block all report the same values, so the
/// bench-history tooling (tools/bench_compare) can align runs on the commit
/// that produced them.
///
/// Values are burned in at CMake configure time (FTC_GIT_SHA /
/// FTC_BUILD_TYPE / FTC_VERSION compile definitions on build_info.cpp
/// alone, so a SHA change rebuilds one translation unit, not the world).
#pragma once

#include <string>

namespace ftc::util {

/// Short git SHA the build was configured at ("unknown" outside a
/// checkout, e.g. a source tarball).
const char* build_git_sha();

/// CMake build type ("RelWithDebInfo", "Debug", ...).
const char* build_type();

/// Project semantic version (CMake project VERSION).
const char* build_version();

/// "VERSION+gSHA" — the single string stamped into manifests.
std::string build_version_string();

/// Hostname of this machine ("unknown" when unavailable). Runtime, not
/// build-time: a binary may run on a different box than it was built on,
/// and bench history cares about where the numbers were *measured*.
std::string run_hostname();

/// Current wall-clock time as ISO-8601 UTC ("2026-08-09T12:34:56Z").
std::string iso8601_utc_now();

}  // namespace ftc::util
