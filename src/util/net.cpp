#include "util/net.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace ftc::util::net {

namespace {

// Fault plan. Mirrors ftc::mem's allocation plan: fields change only from
// set_io_fault_plan (tests, CLI startup), the countdown is decremented from
// the operation sites.
std::atomic<std::uint64_t> g_fail_countdown{0};
std::atomic<int> g_fail_kind{static_cast<int>(io_fault::none)};
std::atomic<std::uint64_t> g_socket_ops{0};
std::atomic<std::uint64_t> g_spool_ops{0};

/// Milliseconds left until \p deadline (clamped to >= 0).
int remaining_ms(std::chrono::steady_clock::time_point deadline) noexcept {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

}  // namespace

void set_io_fault_plan(const io_fault_plan& plan) noexcept {
    g_fail_countdown.store(plan.fail_nth, std::memory_order_relaxed);
    g_fail_kind.store(static_cast<int>(plan.kind), std::memory_order_relaxed);
}

io_fault_plan get_io_fault_plan() noexcept {
    io_fault_plan plan;
    plan.fail_nth = g_fail_countdown.load(std::memory_order_relaxed);
    plan.kind = static_cast<io_fault>(g_fail_kind.load(std::memory_order_relaxed));
    return plan;
}

io_fault consume_io_fault(io_op op) noexcept {
    if (op == io_op::spool_op) {
        g_spool_ops.fetch_add(1, std::memory_order_relaxed);
    } else {
        g_socket_ops.fetch_add(1, std::memory_order_relaxed);
    }
    const io_fault kind = static_cast<io_fault>(g_fail_kind.load(std::memory_order_relaxed));
    if (kind == io_fault::none) {
        return io_fault::none;
    }
    // The countdown only ticks on operations in the kind's domain; sweeps
    // over N are then deterministic per kind.
    const bool spool_kind = kind == io_fault::corrupt_spool;
    if (spool_kind != (op == io_op::spool_op)) {
        return io_fault::none;
    }
    if (g_fail_countdown.load(std::memory_order_relaxed) == 0) {
        return io_fault::none;
    }
    if (g_fail_countdown.fetch_sub(1, std::memory_order_relaxed) == 1) {
        obs::counter_add("net.io_faults_injected_total", 1.0);
        return kind;
    }
    return io_fault::none;
}

std::uint64_t socket_ops_observed() noexcept {
    return g_socket_ops.load(std::memory_order_relaxed);
}

std::uint64_t spool_ops_observed() noexcept {
    return g_spool_ops.load(std::memory_order_relaxed);
}

#if defined(__unix__) || defined(__APPLE__)

namespace {

void set_cloexec(int fd) noexcept {
    const int flags = fcntl(fd, F_GETFD);
    if (flags >= 0) {
        fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
    }
}

/// poll() one fd for \p events, retrying EINTR inside the deadline.
/// Returns > 0 ready, 0 timeout, < 0 hard error.
int poll_bounded(int fd, short events, std::chrono::steady_clock::time_point deadline) noexcept {
    for (;;) {
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = events;
        const int ready = poll(&pfd, 1, remaining_ms(deadline));
        if (ready >= 0) {
            return ready;
        }
        if (errno != EINTR) {
            return -1;
        }
        if (remaining_ms(deadline) == 0) {
            return 0;  // the signal ate the rest of the wait
        }
    }
}

}  // namespace

int listen_tcp(const std::string& host, std::uint16_t port, int backlog,
               std::uint16_t* bound_port, const char* what) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        throw ftc::error(std::string{what} + ": not an IPv4 address: '" + host + "'");
    }
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        throw ftc::error(std::string{what} + ": socket: " + std::strerror(errno));
    }
    set_cloexec(fd);
    // SO_REUSEADDR: a restarted daemon must rebind its port through the
    // TIME_WAIT the previous incarnation's connections left behind.
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
        listen(fd, backlog) != 0) {
        const std::string why = std::strerror(errno);
        close_fd(fd);
        throw ftc::error(std::string{what} + ": cannot listen on " + host + ":" +
                         std::to_string(port) + ": " + why);
    }
    if (bound_port != nullptr) {
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        *bound_port = getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0
                          ? ntohs(bound.sin_port)
                          : port;
    }
    return fd;
}

int accept_client(int listen_fd, int timeout_ms) noexcept {
    switch (consume_io_fault(io_op::accept_op)) {
        case io_fault::reset:
        case io_fault::stall:
            return -1;  // callers loop; an accept fault just drops this round
        default:
            break;
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    if (poll_bounded(listen_fd, POLLIN, deadline) <= 0) {
        return -1;
    }
    for (;;) {
        const int client = accept(listen_fd, nullptr, nullptr);
        if (client >= 0) {
            set_cloexec(client);
            return client;
        }
        if (errno != EINTR) {
            return -1;
        }
    }
}

io_result read_some(int fd, void* buf, std::size_t cap, int timeout_ms) noexcept {
    std::size_t limit = cap;
    switch (consume_io_fault(io_op::recv_op)) {
        case io_fault::reset:
            return {io_result::status::reset, 0};
        case io_fault::stall:
            return {io_result::status::timeout, 0};
        case io_fault::short_io:
            limit = 1;  // the kernel moved one byte; callers must re-loop
            break;
        case io_fault::fake_eintr:
        default:
            break;  // fake_eintr: observationally one extra loop iteration
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
        const int ready = poll_bounded(fd, POLLIN, deadline);
        if (ready == 0) {
            return {io_result::status::timeout, 0};
        }
        if (ready < 0) {
            return {io_result::status::reset, 0};
        }
        const ssize_t n = recv(fd, buf, limit, 0);
        if (n > 0) {
            return {io_result::status::ok, static_cast<std::size_t>(n)};
        }
        if (n == 0) {
            return {io_result::status::eof, 0};
        }
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
            continue;  // retry inside the deadline
        }
        return {io_result::status::reset, 0};
    }
}

io_result write_all(int fd, const void* buf, std::size_t len, int timeout_ms) noexcept {
    std::size_t chunk_cap = len;
    switch (consume_io_fault(io_op::send_op)) {
        case io_fault::reset:
            return {io_result::status::reset, 0};
        case io_fault::stall:
            return {io_result::status::timeout, 0};
        case io_fault::short_io:
            chunk_cap = 1;  // first round moves one byte; the loop finishes the rest
            break;
        case io_fault::fake_eintr:
        default:
            break;
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    const char* p = static_cast<const char*>(buf);
    std::size_t sent = 0;
    while (sent < len) {
        const int ready = poll_bounded(fd, POLLOUT, deadline);
        if (ready == 0) {
            return {io_result::status::timeout, sent};
        }
        if (ready < 0) {
            return {io_result::status::reset, sent};
        }
        const std::size_t want = len - sent < chunk_cap ? len - sent : chunk_cap;
        const ssize_t n = send(fd, p + sent, want,
#ifdef MSG_NOSIGNAL
                               MSG_NOSIGNAL
#else
                               0
#endif
        );
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            chunk_cap = len;  // an injected short round happens exactly once
            continue;
        }
        if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
            continue;  // the whole point: a signal must not tear the response
        }
        return {io_result::status::reset, sent};
    }
    return {io_result::status::ok, sent};
}

void close_fd(int fd) noexcept {
    if (fd < 0) {
        return;
    }
    while (close(fd) != 0 && errno == EINTR) {
    }
}

#else  // !unix: no sockets — the serve daemon and scrape endpoint report
       // the platform gap at construction; these stubs keep links working.

int listen_tcp(const std::string& host, std::uint16_t port, int, std::uint16_t*,
               const char* what) {
    throw ftc::error(std::string{what} + ": sockets not supported on this platform (" +
                     host + ":" + std::to_string(port) + ")");
}
int accept_client(int, int) noexcept { return -1; }
io_result read_some(int, void*, std::size_t, int) noexcept {
    return {io_result::status::reset, 0};
}
io_result write_all(int, const void*, std::size_t, int) noexcept {
    return {io_result::status::reset, 0};
}
void close_fd(int) noexcept {}

#endif

}  // namespace ftc::util::net
