/// \file check.hpp
/// Precondition / invariant helpers in the spirit of GSL Expects/Ensures.
///
/// These are always-on checks (not asserts): violating a documented
/// precondition of a public API throws ftc::precondition_error so that
/// misuse is caught early even in release builds (Core Guidelines P.7, I.5).
#pragma once

#include <sstream>
#include <string_view>

#include "util/error.hpp"

namespace ftc {

/// Throw ftc::precondition_error unless \p condition holds.
inline void expects(bool condition, std::string_view message) {
    if (!condition) {
        throw precondition_error(std::string{message});
    }
}

/// Throw ftc::error unless the postcondition/invariant \p condition holds.
inline void ensures(bool condition, std::string_view message) {
    if (!condition) {
        throw error("internal invariant violated: " + std::string{message});
    }
}

namespace detail {
inline void format_into(std::ostringstream&) {}

template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& value, const Rest&... rest) {
    os << value;
    format_into(os, rest...);
}
}  // namespace detail

/// Build an error message from streamable parts, e.g.
/// `ftc::message("offset ", off, " out of range [0,", size, ")")`.
template <typename... Parts>
std::string message(const Parts&... parts) {
    std::ostringstream os;
    detail::format_into(os, parts...);
    return os.str();
}

}  // namespace ftc
