#include "util/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FTC_ATOMIC_FILE_POSIX 1
#include <fcntl.h>
#include <unistd.h>
#else
#include <fstream>
#endif

namespace ftc::util {

namespace {

[[noreturn]] void raise_io(const char* verb, const std::filesystem::path& path, int err) {
    throw error(message("atomic_write_file: cannot ", verb, " ", path.string(), ": ",
                        std::strerror(err)));
}

#ifdef FTC_ATOMIC_FILE_POSIX

/// Full write with EINTR/short-write handling: a signal landing mid-write
/// (the graceful-shutdown SIGINT path makes that routine, not exotic) must
/// restart the interrupted syscall, and a short write must continue from
/// where it stopped — failing the whole atomic write over either would turn
/// a survivable interruption into a lost exporter file.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::write(fd, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

/// open(2) restarted on EINTR (it is interruptible on some filesystems and
/// is not covered by SA_RESTART semantics everywhere).
int open_retry(const char* path, int flags, mode_t mode) {
    for (;;) {
        const int fd = ::open(path, flags, mode);
        if (fd >= 0 || errno != EINTR) {
            return fd;
        }
    }
}

/// fsync(2) restarted on EINTR. Note close(2) is deliberately NOT retried:
/// POSIX leaves the fd state unspecified after EINTR from close, and
/// retrying can double-close an fd another thread just received.
int fsync_retry(int fd) {
    for (;;) {
        const int rc = ::fsync(fd);
        if (rc == 0 || errno != EINTR) {
            return rc;
        }
    }
}

/// fsync the directory holding \p path so the rename is itself durable.
/// Best-effort: some filesystems reject directory fsync; the data fsync
/// already happened, so a failure here is not worth failing the run over.
void sync_parent_dir(const std::filesystem::path& path) {
    std::filesystem::path dir = path.parent_path();
    if (dir.empty()) {
        dir = ".";
    }
    const int fd = open_retry(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC, 0);
    if (fd >= 0) {
        fsync_retry(fd);
        ::close(fd);
    }
}

#endif  // FTC_ATOMIC_FILE_POSIX

}  // namespace

void atomic_write_file(const std::filesystem::path& path, byte_view bytes) {
    std::filesystem::path tmp = path;
    tmp += ".tmp";
#ifdef FTC_ATOMIC_FILE_POSIX
    const int fd = open_retry(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
        raise_io("open", tmp, errno);
    }
    if (!write_all(fd, bytes.data(), bytes.size())) {
        const int err = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        raise_io("write", tmp, err);
    }
    if (fsync_retry(fd) != 0) {
        const int err = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        raise_io("fsync", tmp, err);
    }
    if (::close(fd) != 0) {
        const int err = errno;
        ::unlink(tmp.c_str());
        raise_io("close", tmp, err);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        ::unlink(tmp.c_str());
        raise_io("rename into", path, err);
    }
    sync_parent_dir(path);
#else
    // Portable fallback: still write-temp-then-rename (atomic on every
    // mainstream filesystem), minus the fsync durability barrier.
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            raise_io("open", tmp, errno);
        }
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out) {
            const int err = errno;
            out.close();
            std::remove(tmp.string().c_str());
            raise_io("write", tmp, err);
        }
    }
    if (std::rename(tmp.string().c_str(), path.string().c_str()) != 0) {
        const int err = errno;
        std::remove(tmp.string().c_str());
        raise_io("rename into", path, err);
    }
#endif
}

void atomic_write_file(const std::filesystem::path& path, std::string_view text) {
    atomic_write_file(path,
                      byte_view{reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
}

}  // namespace ftc::util
