/// \file parse.hpp
/// Strict numeric parsing for CLI flags and environment knobs.
///
/// atoi/atoll/atof silently accept trailing garbage ("100x" -> 100), turn
/// overflow into implementation-defined values, and fold negatives into
/// huge size_t counts when the caller casts — all three have bitten real
/// tools. These helpers accept exactly one well-formed number spanning the
/// whole string and throw ftc::error with a diagnostic naming the flag
/// otherwise, so `--max-segments -1` or `--deadline-ms 10q` fail loudly
/// instead of silently bounding nothing.
#pragma once

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <string_view>

#include "util/check.hpp"
#include "util/error.hpp"

namespace ftc::util {

/// Parse a non-negative decimal integer occupying all of \p text.
/// Rejects empty input, signs, trailing garbage and overflow.
inline std::uint64_t parse_u64(std::string_view text, std::string_view what) {
    if (text.empty()) {
        throw error(message("invalid value for ", what, ": empty"));
    }
    if (text.front() == '-' || text.front() == '+') {
        throw error(message("invalid value for ", what, ": '", std::string{text},
                            "' (must be a plain non-negative integer)"));
    }
    std::uint64_t value = 0;
    const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value, 10);
    if (ec == std::errc::result_out_of_range) {
        throw error(message("invalid value for ", what, ": '", std::string{text},
                            "' overflows a 64-bit count"));
    }
    if (ec != std::errc{} || end != text.data() + text.size()) {
        throw error(message("invalid value for ", what, ": '", std::string{text},
                            "' is not a whole number"));
    }
    return value;
}

/// Parse a finite, non-negative decimal number occupying all of \p text.
inline double parse_double(std::string_view text, std::string_view what) {
    if (text.empty()) {
        throw error(message("invalid value for ", what, ": empty"));
    }
    const std::string owned{text};  // strtod needs NUL termination
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size() || owned.empty()) {
        throw error(message("invalid value for ", what, ": '", owned, "' is not a number"));
    }
    if (errno == ERANGE || !(value <= std::numeric_limits<double>::max())) {
        throw error(message("invalid value for ", what, ": '", owned, "' is out of range"));
    }
    if (value < 0.0) {
        throw error(message("invalid value for ", what, ": '", owned,
                            "' (must be non-negative)"));
    }
    return value;
}

/// Parse a byte size: a non-negative integer with an optional binary-scale
/// suffix K/M/G/T (case-insensitive, optionally followed by "iB" or "B",
/// e.g. "64M", "2GiB", "512kb"). Rejects trailing garbage and values whose
/// scaled result overflows 64 bits.
inline std::uint64_t parse_size_bytes(std::string_view text, std::string_view what) {
    std::string_view digits = text;
    std::uint64_t shift = 0;
    // Peel an optional suffix off the end: [KMGT](iB|B)?
    std::string_view tail = text;
    while (!tail.empty() && (std::isalpha(static_cast<unsigned char>(tail.back())) != 0)) {
        tail.remove_suffix(1);
    }
    std::string_view suffix = text.substr(tail.size());
    digits = tail;
    if (!suffix.empty()) {
        std::string lower;
        for (char c : suffix) {
            lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
        }
        std::string_view unit = lower;
        if (unit.size() > 1 && (unit.substr(1) == "ib" || unit.substr(1) == "b")) {
            unit = unit.substr(0, 1);
        }
        if (unit == "k") {
            shift = 10;
        } else if (unit == "m") {
            shift = 20;
        } else if (unit == "g") {
            shift = 30;
        } else if (unit == "t") {
            shift = 40;
        } else if (unit == "b" && suffix.size() == 1) {
            shift = 0;
        } else {
            throw error(message("invalid value for ", what, ": '", std::string{text},
                                "' (unknown size suffix '", std::string{suffix},
                                "'; use K, M, G or T)"));
        }
    }
    const std::uint64_t base = parse_u64(digits, what);
    if (shift > 0 && base > (std::numeric_limits<std::uint64_t>::max() >> shift)) {
        throw error(message("invalid value for ", what, ": '", std::string{text},
                            "' overflows a 64-bit byte count"));
    }
    return base << shift;
}

}  // namespace ftc::util
