/// \file error.hpp
/// Error hierarchy used throughout ftclust.
///
/// All library errors derive from ftc::error (itself a std::runtime_error),
/// so callers can catch either the precise category or the whole family.
///
/// The resilience layer builds on this hierarchy:
///  - ftc::diag::error_sink (util/diag.hpp) collects structured ingestion
///    diagnostics; its strict policy throws parse_error exactly like the
///    legacy code, its lenient policy quarantines malformed records.
///  - ftc::resource_budget (util/budget.hpp) bounds wall-clock time and
///    segment/byte volume; exceeding a bound throws budget_exceeded_error
///    carrying a partial-progress report instead of hanging or OOMing.
#pragma once

#include <stdexcept>
#include <string>

namespace ftc {

/// Base class of all errors thrown by the ftclust library.
class error : public std::runtime_error {
public:
    explicit error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// A caller violated a documented precondition of a public API.
class precondition_error : public error {
public:
    explicit precondition_error(const std::string& what_arg) : error(what_arg) {}
};

/// Input data (trace, pcap file, message bytes) is malformed.
class parse_error : public error {
public:
    explicit parse_error(const std::string& what_arg) : error(what_arg) {}
};

/// An analysis could not complete within its configured resource budget.
/// Used to reproduce the paper's "fails" entries (runtime/memory blowup)
/// and by ftc::resource_budget (util/budget.hpp) for deadline / volume
/// bounded runs. The optional partial-progress report describes how far
/// the run got (stage reached, counters, elapsed time) so a caller can
/// still show partial diagnostics instead of a bare timeout.
class budget_exceeded_error : public error {
public:
    explicit budget_exceeded_error(const std::string& what_arg) : error(what_arg) {}

    /// Construct with a partial-progress report (see partial_report()).
    budget_exceeded_error(const std::string& what_arg, std::string partial)
        : error(what_arg), partial_report_(std::move(partial)) {}

    /// Human-readable progress made before the budget ran out; empty when
    /// the throw site had nothing to report.
    const std::string& partial_report() const { return partial_report_; }

private:
    std::string partial_report_;
};

/// A run's tracked memory footprint crossed the configured --max-memory
/// budget (ftc::mem, src/mem/mem.hpp) and no further degradation rung was
/// available. Derives from budget_exceeded_error for the same reason
/// interrupted_error does: the partial-progress/checkpoint unwinding path is
/// shared, so every existing budget catch site handles memory pressure too;
/// callers that must tell it apart (the CLI's manifest status) catch this
/// type first. Raised both on *projected* pressure (a stage's footprint
/// estimate cannot fit even degraded) and on *actual* pressure (a tracked
/// allocation would cross the limit, or an injected allocation fault fired).
class memory_budget_exceeded_error : public budget_exceeded_error {
public:
    using budget_exceeded_error::budget_exceeded_error;
};

/// The process was asked to stop (SIGINT/SIGTERM via ftc::request_interrupt,
/// util/interrupt.hpp) and a cooperative cancellation point unwound the run.
/// Derives from budget_exceeded_error deliberately: an interruption follows
/// the exact same partial-progress/checkpoint path as a tripped deadline, so
/// every existing budget catch site handles it; callers that must tell the
/// two apart (the CLI's exit code) catch this type first.
class interrupted_error : public budget_exceeded_error {
public:
    using budget_exceeded_error::budget_exceeded_error;
};

}  // namespace ftc
