/// \file error.hpp
/// Error hierarchy used throughout ftclust.
///
/// All library errors derive from ftc::error (itself a std::runtime_error),
/// so callers can catch either the precise category or the whole family.
#pragma once

#include <stdexcept>
#include <string>

namespace ftc {

/// Base class of all errors thrown by the ftclust library.
class error : public std::runtime_error {
public:
    explicit error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// A caller violated a documented precondition of a public API.
class precondition_error : public error {
public:
    explicit precondition_error(const std::string& what_arg) : error(what_arg) {}
};

/// Input data (trace, pcap file, message bytes) is malformed.
class parse_error : public error {
public:
    explicit parse_error(const std::string& what_arg) : error(what_arg) {}
};

/// An analysis could not complete within its configured resource budget.
/// Used to reproduce the paper's "fails" entries (runtime/memory blowup).
class budget_exceeded_error : public error {
public:
    explicit budget_exceeded_error(const std::string& what_arg) : error(what_arg) {}
};

}  // namespace ftc
