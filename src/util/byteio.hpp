/// \file byteio.hpp
/// Endian-explicit serialization helpers for wire formats.
///
/// Network protocol fields are big-endian unless stated otherwise; the pcap
/// file format is host-endian with a magic number announcing byte order.
/// These helpers make every read/write site state its endianness explicitly.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

#include "util/check.hpp"

namespace ftc {

using byte_vector = std::vector<std::uint8_t>;
using byte_view = std::span<const std::uint8_t>;

// ---------------------------------------------------------------------------
// Appending writers (grow a byte_vector)
// ---------------------------------------------------------------------------

inline void put_u8(byte_vector& out, std::uint8_t v) { out.push_back(v); }

inline void put_u16_be(byte_vector& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v));
}

inline void put_u16_le(byte_vector& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void put_u32_be(byte_vector& out, std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v >> 24));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v));
}

inline void put_u32_le(byte_vector& out, std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

inline void put_u64_be(byte_vector& out, std::uint64_t v) {
    put_u32_be(out, static_cast<std::uint32_t>(v >> 32));
    put_u32_be(out, static_cast<std::uint32_t>(v));
}

inline void put_u64_le(byte_vector& out, std::uint64_t v) {
    put_u32_le(out, static_cast<std::uint32_t>(v));
    put_u32_le(out, static_cast<std::uint32_t>(v >> 32));
}

inline void put_bytes(byte_vector& out, byte_view data) {
    out.insert(out.end(), data.begin(), data.end());
}

inline void put_chars(byte_vector& out, std::string_view text) {
    out.insert(out.end(), text.begin(), text.end());
}

/// Append \p count copies of \p value (zero padding and the like).
inline void put_fill(byte_vector& out, std::size_t count, std::uint8_t value = 0) {
    out.insert(out.end(), count, value);
}

// ---------------------------------------------------------------------------
// Bounds-checked readers
// ---------------------------------------------------------------------------

inline std::uint8_t get_u8(byte_view data, std::size_t offset) {
    if (offset + 1 > data.size()) {
        throw parse_error(message("get_u8: offset ", offset, " beyond size ", data.size()));
    }
    return data[offset];
}

inline std::uint16_t get_u16_be(byte_view data, std::size_t offset) {
    if (offset + 2 > data.size()) {
        throw parse_error(message("get_u16_be: offset ", offset, " beyond size ", data.size()));
    }
    return static_cast<std::uint16_t>((data[offset] << 8) | data[offset + 1]);
}

inline std::uint16_t get_u16_le(byte_view data, std::size_t offset) {
    if (offset + 2 > data.size()) {
        throw parse_error(message("get_u16_le: offset ", offset, " beyond size ", data.size()));
    }
    return static_cast<std::uint16_t>(data[offset] | (data[offset + 1] << 8));
}

inline std::uint32_t get_u32_be(byte_view data, std::size_t offset) {
    if (offset + 4 > data.size()) {
        throw parse_error(message("get_u32_be: offset ", offset, " beyond size ", data.size()));
    }
    return (static_cast<std::uint32_t>(data[offset]) << 24) |
           (static_cast<std::uint32_t>(data[offset + 1]) << 16) |
           (static_cast<std::uint32_t>(data[offset + 2]) << 8) |
           static_cast<std::uint32_t>(data[offset + 3]);
}

inline std::uint32_t get_u32_le(byte_view data, std::size_t offset) {
    if (offset + 4 > data.size()) {
        throw parse_error(message("get_u32_le: offset ", offset, " beyond size ", data.size()));
    }
    return static_cast<std::uint32_t>(data[offset]) |
           (static_cast<std::uint32_t>(data[offset + 1]) << 8) |
           (static_cast<std::uint32_t>(data[offset + 2]) << 16) |
           (static_cast<std::uint32_t>(data[offset + 3]) << 24);
}

inline std::uint64_t get_u64_be(byte_view data, std::size_t offset) {
    return (static_cast<std::uint64_t>(get_u32_be(data, offset)) << 32) |
           get_u32_be(data, offset + 4);
}

inline std::uint64_t get_u64_le(byte_view data, std::size_t offset) {
    return static_cast<std::uint64_t>(get_u32_le(data, offset)) |
           (static_cast<std::uint64_t>(get_u32_le(data, offset + 4)) << 32);
}

/// A bounds-checked subspan; throws parse_error instead of UB on overrun.
inline byte_view get_slice(byte_view data, std::size_t offset, std::size_t length) {
    if (offset + length > data.size()) {
        throw parse_error(
            message("get_slice: [", offset, ", ", offset + length, ") beyond size ", data.size()));
    }
    return data.subspan(offset, length);
}

}  // namespace ftc
