/// \file interrupt.hpp
/// Process-wide cooperative stop flag for signal-driven graceful shutdown.
///
/// A long analysis run must survive SIGINT/SIGTERM gracefully: finish the
/// statement it is on, flush a final checkpoint (ftc::ckpt) and exit with a
/// partial-progress report instead of dying mid-write. Signal handlers are
/// allowed to do almost nothing, so the contract here is flag-only:
///
///  - the CLI's handler calls request_interrupt(sig) — a single relaxed
///    store on a lock-free atomic, which is async-signal-safe;
///  - every cooperative cancellation point the pipeline already has
///    (ftc::deadline::check, ftc::resource_budget::check) consults
///    interrupt_requested() and throws ftc::interrupted_error on the main
///    or worker thread, where unwinding, checkpointing and I/O are safe.
///
/// The flag is process-global by design: it models "this process was told
/// to stop", not a per-run condition. Tests that raise it must clear it
/// (scoped_interrupt_clear) so later tests in the binary are unaffected.
#pragma once

#include <atomic>

namespace ftc {

namespace detail {
// int (not bool): the value remembers WHICH signal asked us to stop, so the
// CLI can exit with the conventional 128+signo code. 0 means "not
// interrupted"; -1 a programmatic request with no signal attached.
inline std::atomic<int> g_interrupt_signal{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handlers may only touch lock-free atomics");
}  // namespace detail

/// Ask the process to stop at the next cooperative cancellation point.
/// Async-signal-safe; \p signal_number is remembered for interrupt_signal()
/// (pass nothing for a programmatic, signal-less request).
inline void request_interrupt(int signal_number = -1) noexcept {
    detail::g_interrupt_signal.store(signal_number == 0 ? -1 : signal_number,
                                     std::memory_order_relaxed);
}

/// True once request_interrupt() was called and the flag not yet cleared.
inline bool interrupt_requested() noexcept {
    return detail::g_interrupt_signal.load(std::memory_order_relaxed) != 0;
}

/// The signal number that requested the stop, or 0 when none (not
/// interrupted, or a programmatic request).
inline int interrupt_signal() noexcept {
    const int s = detail::g_interrupt_signal.load(std::memory_order_relaxed);
    return s > 0 ? s : 0;
}

/// Re-arm the process (tests; a CLI would exit instead).
inline void clear_interrupt() noexcept {
    detail::g_interrupt_signal.store(0, std::memory_order_relaxed);
}

/// RAII guard for tests that raise the flag: clears it on scope exit so an
/// early ASSERT cannot leak an interrupted state into the next test.
class scoped_interrupt_clear {
public:
    scoped_interrupt_clear() = default;
    ~scoped_interrupt_clear() { clear_interrupt(); }

    scoped_interrupt_clear(const scoped_interrupt_clear&) = delete;
    scoped_interrupt_clear& operator=(const scoped_interrupt_clear&) = delete;
};

}  // namespace ftc
