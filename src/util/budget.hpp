/// \file budget.hpp
/// Cooperative resource budgeting for unattended analysis runs.
///
/// A trace of unknown provenance can be arbitrarily large; the clustering
/// stages are quadratic in the number of unique segments. ftc::resource_budget
/// bounds a run along three axes — wall-clock deadline, total segments,
/// total message bytes — so an oversized input ends in a typed
/// ftc::budget_exceeded_error carrying a partial-progress report rather
/// than an OOM kill or a hang. The wall-clock axis reuses ftc::deadline,
/// whose cooperative check() hooks already abort the thread-pool fan-outs
/// (dissimilarity matrix, k-NN, epsilon sweep) mid-flight.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "mem/mem.hpp"
#include "obs/obs.hpp"
#include "util/stopwatch.hpp"

namespace ftc {

/// Limits of a resource_budget; 0 on any axis means unlimited.
struct resource_limits {
    double deadline_seconds = 0.0;  ///< wall-clock budget
    std::size_t max_segments = 0;   ///< cap on segments produced
    std::size_t max_bytes = 0;      ///< cap on message payload bytes
    /// Cap on the tracked heap footprint (ftc::mem). Unlike the other axes
    /// the budget object does not enforce this one itself: the pipeline
    /// installs a mem::governor carrying it, so every tracked allocation —
    /// wherever it happens — is a checkpoint, and projection checks drive
    /// the degradation ladder before the limit is ever actually hit
    /// (DESIGN.md §11). It lives here so one struct names the whole
    /// resource envelope of a run.
    std::size_t max_memory = 0;
};

/// Tracks consumption against resource_limits. Checks are cooperative:
/// stages charge what they are about to materialize and the budget throws
/// budget_exceeded_error — with a progress report — once a limit is hit.
class resource_budget {
public:
    /// Unlimited budget; every check is a no-op.
    resource_budget() = default;

    explicit resource_budget(const resource_limits& limits)
        : limits_(limits),
          wall_clock_(limits.deadline_seconds > 0.0 ? deadline(limits.deadline_seconds)
                                                    : deadline()) {}

    const resource_limits& limits() const { return limits_; }

    /// The wall-clock deadline, for handing down to stages that poll a
    /// ftc::deadline directly (segmenters, the parallel matrix fan-outs).
    const deadline& wall_clock() const { return wall_clock_; }

    std::size_t segments_used() const { return segments_; }
    std::size_t bytes_used() const { return bytes_; }

    /// Record \p n more segments; throws budget_exceeded_error naming
    /// \p what once the segment cap is crossed. Every charge is mirrored
    /// into the active ftc::obs registry, so the numbers in progress() /
    /// partial_report() and in the run manifest come from the same charge
    /// events — there is no second tally to drift.
    void charge_segments(std::size_t n, std::string_view what) {
        segments_ += n;
        obs::counter_add("budget.segments", static_cast<double>(n));
        if (limits_.max_segments > 0 && segments_ > limits_.max_segments) {
            throw_exceeded(what, "segment cap (" + std::to_string(limits_.max_segments) +
                                     ") exceeded");
        }
    }

    /// Record \p n more payload bytes; throws once the byte cap is crossed.
    void charge_bytes(std::size_t n, std::string_view what) {
        bytes_ += n;
        obs::counter_add("budget.bytes", static_cast<double>(n));
        if (limits_.max_bytes > 0 && bytes_ > limits_.max_bytes) {
            throw_exceeded(what, "byte cap (" + std::to_string(limits_.max_bytes) +
                                     ") exceeded");
        }
    }

    /// Cooperative poll; throws interrupted_error (with the same progress
    /// report) on a pending stop request, else budget_exceeded_error when
    /// the wall-clock budget has elapsed. Interrupt first: an interrupted
    /// run must report "interrupted", not a coincidentally-expired deadline.
    void check(std::string_view what) const {
        if (interrupt_requested()) {
            obs::counter_add("budget.interrupted_total", 1.0);
            throw interrupted_error(std::string{what} + ": interrupted by stop request",
                                    progress());
        }
        if (wall_clock_.expired()) {
            throw_exceeded(what, "wall-clock deadline (" +
                                     format_seconds(limits_.deadline_seconds) + "s) exceeded");
        }
    }

    /// "segments N, bytes M, elapsed T" — the partial_report() payload.
    /// When a memory governor is active the tracked-heap footprint joins
    /// the report: memory pressure is then a budget axis like any other,
    /// and the analyst deciding how much --max-memory a retry needs reads
    /// the answer straight out of the failure message.
    std::string progress() const {
        std::string out = "segments " + std::to_string(segments_) + ", bytes " +
                          std::to_string(bytes_) + ", elapsed " +
                          format_seconds(watch_.elapsed_seconds()) + "s";
        if (const mem::governor* g = mem::governor::active()) {
            out += ", tracked mem " + std::to_string(mem::current_bytes()) + " (peak " +
                   std::to_string(mem::peak_bytes());
            if (g->limit() > 0) {
                out += ", limit " + std::to_string(g->limit());
            }
            out += ")";
        }
        return out;
    }

private:
    [[noreturn]] void throw_exceeded(std::string_view what, const std::string& why) const {
        obs::counter_add("budget.exceeded_total", 1.0);
        throw budget_exceeded_error(std::string{what} + ": " + why, progress());
    }

    static std::string format_seconds(double s) {
        std::string text = std::to_string(s);
        // Trim to millisecond precision for readable messages.
        const std::size_t dot = text.find('.');
        if (dot != std::string::npos && text.size() > dot + 4) {
            text.resize(dot + 4);
        }
        return text;
    }

    resource_limits limits_;
    deadline wall_clock_;
    stopwatch watch_;
    std::size_t segments_ = 0;
    std::size_t bytes_ = 0;
};

}  // namespace ftc
