/// \file atomic_file.hpp
/// Crash-durable whole-file replacement: write-temp, fsync, rename.
///
/// Every artifact a run leaves behind — checkpoints (ftc::ckpt), trace and
/// metrics exports, run manifests, reports — must be either the complete
/// old version or the complete new version on disk, even if the process is
/// killed or the machine loses power mid-write. atomic_write_file provides
/// that guarantee the standard POSIX way: the bytes go to `<path>.tmp` on
/// the same filesystem, are fsync'ed, and only then renamed over the target
/// (rename(2) is atomic within a filesystem); the containing directory is
/// fsync'ed afterwards so the rename itself survives a crash. Failures
/// throw ftc::error naming the path and the OS error — a run must fail
/// loudly when its outputs cannot be written, not succeed with a truncated
/// file nobody notices.
#pragma once

#include <filesystem>
#include <string_view>

#include "util/byteio.hpp"

namespace ftc::util {

/// Atomically replace \p path with \p bytes (write `<path>.tmp`, fsync,
/// rename, fsync directory). Throws ftc::error on any failure; the
/// temporary file is removed on the error paths, and the previous content
/// of \p path — if any — is left untouched.
void atomic_write_file(const std::filesystem::path& path, byte_view bytes);

/// Text overload of atomic_write_file.
void atomic_write_file(const std::filesystem::path& path, std::string_view text);

}  // namespace ftc::util
